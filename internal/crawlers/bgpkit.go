package crawlers

import (
	"context"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// BGPKITPfx2as imports BGPKIT's prefix-to-origin-AS mapping: the prefix
// originations seen across all RIS and RouteViews collectors. This is the
// routing backbone of the graph (paper Table 1).
type BGPKITPfx2as struct{ ingest.Base }

// NewBGPKITPfx2as returns the crawler.
func NewBGPKITPfx2as() *BGPKITPfx2as {
	return &BGPKITPfx2as{ingest.Base{
		Org: "BGPKIT", Name: "bgpkit.pfx2asn",
		InfoURL: "https://data.bgpkit.com/pfx2as", DataURL: source.PathBGPKITPfx2as,
	}}
}

// Run implements ingest.Crawler.
func (c *BGPKITPfx2as) Run(ctx context.Context, s *ingest.Session) error {
	type row struct {
		Prefix string `json:"prefix"`
		ASN    uint32 `json:"asn"`
		Count  int    `json:"count"`
	}
	return fetchJSONLines(ctx, s, source.PathBGPKITPfx2as, func(r row) error {
		pfx, err := s.Node(ontology.Prefix, r.Prefix)
		if err != nil {
			return nil // skip malformed prefixes, never corrupt the import
		}
		as, err := s.Node(ontology.AS, r.ASN)
		if err != nil {
			return err
		}
		return s.Link(ontology.Originate, as, pfx, graph.Props{"count": graph.Int(int64(r.Count))})
	})
}

// BGPKITAs2rel imports BGPKIT's AS-level relationship inference
// (peer-to-peer and provider-customer edges).
type BGPKITAs2rel struct{ ingest.Base }

// NewBGPKITAs2rel returns the crawler.
func NewBGPKITAs2rel() *BGPKITAs2rel {
	return &BGPKITAs2rel{ingest.Base{
		Org: "BGPKIT", Name: "bgpkit.as2rel",
		InfoURL: "https://data.bgpkit.com", DataURL: source.PathBGPKITAs2rel,
	}}
}

// Run implements ingest.Crawler.
func (c *BGPKITAs2rel) Run(ctx context.Context, s *ingest.Session) error {
	type row struct {
		ASN1 uint32 `json:"asn1"`
		ASN2 uint32 `json:"asn2"`
		Rel  int    `json:"rel"`
	}
	return fetchJSONLines(ctx, s, source.PathBGPKITAs2rel, func(r row) error {
		a1, err := s.Node(ontology.AS, r.ASN1)
		if err != nil {
			return err
		}
		a2, err := s.Node(ontology.AS, r.ASN2)
		if err != nil {
			return err
		}
		return s.Link(ontology.PeersWith, a1, a2, graph.Props{"rel": graph.Int(int64(r.Rel))})
	})
}

// BGPKITPeerStats imports BGPKIT's collector peer statistics, yielding the
// AS-to-BGP-collector peering edges shown in the paper's Figure 4 (AT&T
// peering with rrc00).
type BGPKITPeerStats struct{ ingest.Base }

// NewBGPKITPeerStats returns the crawler.
func NewBGPKITPeerStats() *BGPKITPeerStats {
	return &BGPKITPeerStats{ingest.Base{
		Org: "BGPKIT", Name: "bgpkit.peerstats",
		InfoURL: "https://data.bgpkit.com", DataURL: source.PathBGPKITPeerStats,
	}}
}

// Run implements ingest.Crawler.
func (c *BGPKITPeerStats) Run(ctx context.Context, s *ingest.Session) error {
	type row struct {
		Collector string `json:"collector"`
		ASN       uint32 `json:"asn"`
		NumV4Pfxs int    `json:"num_v4_pfxs"`
	}
	return fetchJSONLines(ctx, s, source.PathBGPKITPeerStats, func(r row) error {
		col, err := s.Node(ontology.BGPCollector, r.Collector)
		if err != nil {
			return err
		}
		as, err := s.Node(ontology.AS, r.ASN)
		if err != nil {
			return err
		}
		return s.Link(ontology.PeersWith, as, col, graph.Props{
			"num_v4_pfxs": graph.Int(int64(r.NumV4Pfxs)),
		})
	})
}
