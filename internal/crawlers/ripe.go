package crawlers

import (
	"context"
	"strconv"
	"strings"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/netutil"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// RIPEASNames imports RIPE NCC's asnames.txt ("<asn> <NAME>, <CC>").
type RIPEASNames struct{ ingest.Base }

// NewRIPEASNames returns the crawler.
func NewRIPEASNames() *RIPEASNames {
	return &RIPEASNames{ingest.Base{
		Org: "RIPE NCC", Name: "ripe.as_names",
		InfoURL: "https://ftp.ripe.net/ripe/asnames", DataURL: source.PathRIPEASNames,
	}}
}

// Run implements ingest.Crawler.
func (c *RIPEASNames) Run(ctx context.Context, s *ingest.Session) error {
	return fetchLines(ctx, s, source.PathRIPEASNames, func(line string) error {
		sp := strings.SplitN(line, " ", 2)
		if len(sp) != 2 {
			return nil
		}
		asn, err := netutil.ParseASN(sp[0])
		if err != nil {
			return nil
		}
		rest := sp[1]
		name := rest
		cc := ""
		if i := strings.LastIndex(rest, ", "); i >= 0 {
			name, cc = rest[:i], strings.TrimSpace(rest[i+2:])
		}
		as, err := s.Node(ontology.AS, asn)
		if err != nil {
			return err
		}
		nameID, err := s.NameNode(name)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.NameRel, as, nameID, nil); err != nil {
			return err
		}
		if cc != "" {
			if ccID, err := s.Node(ontology.Country, cc); err == nil {
				return s.Link(ontology.CountryRel, as, ccID, nil)
			}
		}
		return nil
	})
}

// RIPERPKI imports the validated RPKI ROAs: the
// ROUTE_ORIGIN_AUTHORIZATION relationships of Figure 4.
type RIPERPKI struct{ ingest.Base }

// NewRIPERPKI returns the crawler.
func NewRIPERPKI() *RIPERPKI {
	return &RIPERPKI{ingest.Base{
		Org: "RIPE NCC", Name: "ripe.roa",
		InfoURL: "https://ftp.ripe.net/rpki", DataURL: source.PathRIPERPKIROAs,
	}}
}

// Run implements ingest.Crawler.
func (c *RIPERPKI) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		ROAs []struct {
			ASN       string `json:"asn"`
			Prefix    string `json:"prefix"`
			MaxLength int    `json:"maxLength"`
			TA        string `json:"ta"`
		} `json:"roas"`
	}
	d, err := fetchJSON[doc](ctx, s, source.PathRIPERPKIROAs)
	if err != nil {
		return err
	}
	for _, roa := range d.ROAs {
		asn, err := netutil.ParseASN(roa.ASN)
		if err != nil {
			continue
		}
		as, err := s.Node(ontology.AS, asn)
		if err != nil {
			return err
		}
		pfx, err := s.Node(ontology.Prefix, roa.Prefix)
		if err != nil {
			continue
		}
		if err := s.Link(ontology.RouteOriginAuthorization, as, pfx, graph.Props{
			"maxLength": graph.Int(int64(roa.MaxLength)),
			"ta":        graph.String(roa.TA),
		}); err != nil {
			return err
		}
	}
	return nil
}

// RIPEAtlas imports RIPE Atlas probe and measurement metadata: probes with
// their host AS, country and address; measurements with their targets
// (TARGET relationships, Figure 4's top branch).
type RIPEAtlas struct{ ingest.Base }

// NewRIPEAtlas returns the crawler.
func NewRIPEAtlas() *RIPEAtlas {
	return &RIPEAtlas{ingest.Base{
		Org: "RIPE NCC", Name: "ripe.atlas",
		InfoURL: "https://atlas.ripe.net", DataURL: source.PathRIPEAtlasMeas,
	}}
}

// Run implements ingest.Crawler.
func (c *RIPEAtlas) Run(ctx context.Context, s *ingest.Session) error {
	type probesDoc struct {
		Results []struct {
			ID          int    `json:"id"`
			ASNv4       uint32 `json:"asn_v4"`
			CountryCode string `json:"country_code"`
			AddressV4   string `json:"address_v4"`
			Status      struct {
				Name string `json:"name"`
			} `json:"status"`
		} `json:"results"`
	}
	pd, err := fetchJSON[probesDoc](ctx, s, source.PathRIPEAtlasProbes)
	if err != nil {
		return err
	}
	probeNode := map[int]graph.NodeID{}
	for _, p := range pd.Results {
		node, err := s.NodeWithProps(ontology.AtlasProbe, p.ID, graph.Props{
			"status": graph.String(p.Status.Name),
		})
		if err != nil {
			return err
		}
		probeNode[p.ID] = node
		if p.ASNv4 != 0 {
			as, err := s.Node(ontology.AS, p.ASNv4)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.LocatedIn, node, as, nil); err != nil {
				return err
			}
		}
		if p.CountryCode != "" {
			if cc, err := s.Node(ontology.Country, p.CountryCode); err == nil {
				if err := s.Link(ontology.CountryRel, node, cc, nil); err != nil {
					return err
				}
			}
		}
		if p.AddressV4 != "" {
			if ip, err := s.Node(ontology.IP, p.AddressV4); err == nil {
				if err := s.Link(ontology.Assigned, node, ip, nil); err != nil {
					return err
				}
			}
		}
	}

	type measDoc struct {
		Results []struct {
			ID       int    `json:"id"`
			Type     string `json:"type"`
			AF       int    `json:"af"`
			Target   string `json:"target"`
			TargetIP string `json:"target_ip"`
			Status   struct {
				Name string `json:"name"`
			} `json:"status"`
			Probes []int `json:"probes"`
		} `json:"results"`
	}
	md, err := fetchJSON[measDoc](ctx, s, source.PathRIPEAtlasMeas)
	if err != nil {
		return err
	}
	for _, m := range md.Results {
		node, err := s.NodeWithProps(ontology.AtlasMeasurement, m.ID, graph.Props{
			"type":   graph.String(m.Type),
			"af":     graph.Int(int64(m.AF)),
			"status": graph.String(m.Status.Name),
		})
		if err != nil {
			return err
		}
		// Target is an IP or a hostname.
		var target graph.NodeID
		if m.TargetIP != "" {
			target, err = s.Node(ontology.IP, m.TargetIP)
		} else if _, perr := strconv.Atoi(strings.ReplaceAll(m.Target, ".", "")); perr == nil && strings.Count(m.Target, ".") == 3 {
			target, err = s.Node(ontology.IP, m.Target)
		} else {
			target, err = s.Node(ontology.HostName, m.Target)
		}
		if err == nil && target != 0 {
			if err := s.Link(ontology.Target, node, target, nil); err != nil {
				return err
			}
		}
		for _, pid := range m.Probes {
			pn, ok := probeNode[pid]
			if !ok {
				continue
			}
			if err := s.Link(ontology.PartOf, pn, node, nil); err != nil {
				return err
			}
		}
	}
	return nil
}
