package crawlers

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/netutil"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// PCHRouting imports a Packet Clearing House daily routing snapshot (one
// address family per crawler, as PCH publishes them).
type PCHRouting struct {
	ingest.Base
	path string
}

// NewPCHRoutingV4 returns the IPv4 snapshot crawler.
func NewPCHRoutingV4() *PCHRouting {
	return &PCHRouting{
		Base: ingest.Base{Org: "PCH", Name: "pch.daily_routing_snapshots_v4",
			InfoURL: "https://www.pch.net/resources/Routing_Data", DataURL: source.PathPCHRoutingV4},
		path: source.PathPCHRoutingV4,
	}
}

// NewPCHRoutingV6 returns the IPv6 snapshot crawler.
func NewPCHRoutingV6() *PCHRouting {
	return &PCHRouting{
		Base: ingest.Base{Org: "PCH", Name: "pch.daily_routing_snapshots_v6",
			InfoURL: "https://www.pch.net/resources/Routing_Data", DataURL: source.PathPCHRoutingV6},
		path: source.PathPCHRoutingV6,
	}
}

// Run implements ingest.Crawler.
func (c *PCHRouting) Run(ctx context.Context, s *ingest.Session) error {
	return fetchLines(ctx, s, c.path, func(line string) error {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil
		}
		pfx, err := s.Node(ontology.Prefix, fields[0])
		if err != nil {
			return nil
		}
		as, err := s.Node(ontology.AS, fields[1])
		if err != nil {
			return nil
		}
		return s.Link(ontology.Originate, as, pfx, nil)
	})
}

// EmileAbenASNames imports the community-maintained asnames list.
type EmileAbenASNames struct{ ingest.Base }

// NewEmileAbenASNames returns the crawler.
func NewEmileAbenASNames() *EmileAbenASNames {
	return &EmileAbenASNames{ingest.Base{
		Org: "Emile Aben", Name: "emileaben.as_names",
		InfoURL: "https://github.com/emileaben/asnames", DataURL: source.PathEmileAbenASNames,
	}}
}

// Run implements ingest.Crawler.
func (c *EmileAbenASNames) Run(ctx context.Context, s *ingest.Session) error {
	return fetchLines(ctx, s, source.PathEmileAbenASNames, func(line string) error {
		sp := strings.SplitN(line, " ", 2)
		if len(sp) != 2 {
			return nil
		}
		asn, err := netutil.ParseASN(sp[0])
		if err != nil {
			return nil
		}
		name := strings.Trim(sp[1], `"`)
		as, err := s.Node(ontology.AS, asn)
		if err != nil {
			return err
		}
		nameID, err := s.NameNode(name)
		if err != nil {
			return err
		}
		return s.Link(ontology.NameRel, as, nameID, nil)
	})
}

// StanfordASdb imports Stanford's ASdb business-type classification.
type StanfordASdb struct{ ingest.Base }

// NewStanfordASdb returns the crawler.
func NewStanfordASdb() *StanfordASdb {
	return &StanfordASdb{ingest.Base{
		Org: "Stanford", Name: "stanford.asdb",
		InfoURL: "https://asdb.stanford.edu", DataURL: source.PathStanfordASdb,
	}}
}

// Run implements ingest.Crawler.
func (c *StanfordASdb) Run(ctx context.Context, s *ingest.Session) error {
	return fetchCSV(ctx, s, source.PathStanfordASdb, true, func(rec []string) error {
		if len(rec) < 3 {
			return nil
		}
		as, err := s.Node(ontology.AS, rec[0])
		if err != nil {
			return nil
		}
		for layer, label := range []string{1: rec[1], 2: rec[2]} {
			if label == "" {
				continue
			}
			tag, err := s.TagNode(label)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.Categorized, as, tag, graph.Props{
				"layer": graph.Int(int64(layer)),
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// RoVista imports Virginia Tech's RoVista ROV-filtering measurements.
type RoVista struct{ ingest.Base }

// NewRoVista returns the crawler.
func NewRoVista() *RoVista {
	return &RoVista{ingest.Base{
		Org: "Virginia Tech", Name: "rovista.validating_rov",
		InfoURL: "https://rovista.netsecurelab.org", DataURL: source.PathRoVista,
	}}
}

// Run implements ingest.Crawler.
func (c *RoVista) Run(ctx context.Context, s *ingest.Session) error {
	type row struct {
		ASN   uint32  `json:"asn"`
		Ratio float64 `json:"ratio"`
	}
	rows, err := fetchJSON[[]row](ctx, s, source.PathRoVista)
	if err != nil {
		return err
	}
	validating, err := s.TagNode("Validating RPKI ROV")
	if err != nil {
		return err
	}
	notValidating, err := s.TagNode("Not Validating RPKI ROV")
	if err != nil {
		return err
	}
	for _, r := range rows {
		as, err := s.Node(ontology.AS, r.ASN)
		if err != nil {
			return err
		}
		tag := notValidating
		if r.Ratio > 0.5 {
			tag = validating
		}
		if err := s.Link(ontology.Categorized, as, tag, graph.Props{
			"ratio": graph.Float(r.Ratio),
		}); err != nil {
			return err
		}
	}
	return nil
}

// APNICPopulation imports APNIC's per-economy AS population estimates.
type APNICPopulation struct{ ingest.Base }

// NewAPNICPopulation returns the crawler.
func NewAPNICPopulation() *APNICPopulation {
	return &APNICPopulation{ingest.Base{
		Org: "APNIC", Name: "apnic.eyeball",
		InfoURL: "https://stats.labs.apnic.net/aspop", DataURL: source.PathAPNICPop,
	}}
}

// Run implements ingest.Crawler.
func (c *APNICPopulation) Run(ctx context.Context, s *ingest.Session) error {
	type row struct {
		CC      string  `json:"cc"`
		ASN     uint32  `json:"asn"`
		Percent float64 `json:"percent"`
	}
	return fetchJSONLines(ctx, s, source.PathAPNICPop, func(r row) error {
		cc, err := s.Node(ontology.Country, r.CC)
		if err != nil {
			return nil
		}
		as, err := s.Node(ontology.AS, r.ASN)
		if err != nil {
			return err
		}
		return s.Link(ontology.Population, as, cc, graph.Props{
			"percent": graph.Float(r.Percent),
		})
	})
}

// WorldBankPopulation imports the World Bank country population estimate.
type WorldBankPopulation struct{ ingest.Base }

// NewWorldBankPopulation returns the crawler.
func NewWorldBankPopulation() *WorldBankPopulation {
	return &WorldBankPopulation{ingest.Base{
		Org: "World Bank", Name: "worldbank.country_pop",
		InfoURL: "https://www.worldbank.org", DataURL: source.PathWorldBankPop,
	}}
}

// Run implements ingest.Crawler.
func (c *WorldBankPopulation) Run(ctx context.Context, s *ingest.Session) error {
	estimate, err := s.Node(ontology.Estimate, "World Bank population estimate")
	if err != nil {
		return err
	}
	return fetchCSV(ctx, s, source.PathWorldBankPop, true, func(rec []string) error {
		if len(rec) < 2 {
			return nil
		}
		pop, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil
		}
		cc, err := s.Node(ontology.Country, rec[0])
		if err != nil {
			return nil
		}
		return s.Link(ontology.Population, cc, estimate, graph.Props{
			"value": graph.Int(pop),
		})
	})
}

// CitizenLab imports the Citizen Lab URL testing lists.
type CitizenLab struct{ ingest.Base }

// NewCitizenLab returns the crawler.
func NewCitizenLab() *CitizenLab {
	return &CitizenLab{ingest.Base{
		Org: "Citizen Lab", Name: "citizenlab.urldb",
		InfoURL: "https://github.com/citizenlab/test-lists", DataURL: source.PathCitizenLab,
	}}
}

// Run implements ingest.Crawler.
func (c *CitizenLab) Run(ctx context.Context, s *ingest.Session) error {
	return fetchCSV(ctx, s, source.PathCitizenLab, true, func(rec []string) error {
		if len(rec) < 2 {
			return nil
		}
		url, err := s.Node(ontology.URL, rec[0])
		if err != nil {
			return nil
		}
		tag, err := s.TagNode(rec[1])
		if err != nil {
			return err
		}
		if err := s.Link(ontology.Categorized, url, tag, nil); err != nil {
			return err
		}
		if len(rec) >= 5 && rec[4] != "" && rec[4] != "GLOBAL" {
			if cc, err := s.Node(ontology.Country, rec[4]); err == nil {
				return s.Link(ontology.CountryRel, url, cc, nil)
			}
		}
		return nil
	})
}

// SimulaMetRDNS imports rir-data.org's reverse-DNS delegations: which
// nameservers manage the reverse zones of each prefix.
type SimulaMetRDNS struct{ ingest.Base }

// NewSimulaMetRDNS returns the crawler.
func NewSimulaMetRDNS() *SimulaMetRDNS {
	return &SimulaMetRDNS{ingest.Base{
		Org: "SimulaMet", Name: "simulamet.rdns",
		InfoURL: "https://rir-data.org", DataURL: source.PathSimulaMetRDNS,
	}}
}

// Run implements ingest.Crawler.
func (c *SimulaMetRDNS) Run(ctx context.Context, s *ingest.Session) error {
	type row struct {
		Prefix      string   `json:"prefix"`
		Nameservers []string `json:"nameservers"`
	}
	return fetchJSONLines(ctx, s, source.PathSimulaMetRDNS, func(r row) error {
		pfx, err := s.Node(ontology.Prefix, r.Prefix)
		if err != nil {
			return nil
		}
		for _, nsName := range r.Nameservers {
			ns, err := s.Node(ontology.HostName, nsName)
			if err != nil {
				continue
			}
			if err := s.AddLabel(ns, ontology.AuthoritativeNameServer); err != nil {
				return err
			}
			if err := s.Link(ontology.ManagedBy, pfx, ns, nil); err != nil {
				return err
			}
		}
		return nil
	})
}

// InetIntelAS2Org imports Georgia Tech's Internet Intelligence Lab
// AS-to-Organization mapping, including sibling relations.
type InetIntelAS2Org struct{ ingest.Base }

// NewInetIntelAS2Org returns the crawler.
func NewInetIntelAS2Org() *InetIntelAS2Org {
	return &InetIntelAS2Org{ingest.Base{
		Org: "Internet Intelligence Lab", Name: "inetintel.as_org",
		InfoURL: "https://github.com/InetIntel/Dataset-AS-to-Organization-Mapping",
		DataURL: source.PathInetIntelAS2Org,
	}}
}

// Run implements ingest.Crawler.
func (c *InetIntelAS2Org) Run(ctx context.Context, s *ingest.Session) error {
	type row struct {
		ASN      uint32   `json:"asn"`
		OrgName  string   `json:"org_name"`
		Country  string   `json:"country"`
		Siblings []uint32 `json:"siblings"`
	}
	return fetchJSONLines(ctx, s, source.PathInetIntelAS2Org, func(r row) error {
		as, err := s.Node(ontology.AS, r.ASN)
		if err != nil {
			return err
		}
		org, err := s.Node(ontology.Organization, r.OrgName)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.ManagedBy, as, org, nil); err != nil {
			return err
		}
		for _, sib := range r.Siblings {
			if sib <= r.ASN {
				continue // one SIBLING_OF edge per pair
			}
			sibNode, err := s.Node(ontology.AS, sib)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.SiblingOf, as, sibNode, nil); err != nil {
				return err
			}
		}
		return nil
	})
}

// AliceLG imports one IXP route-server looking glass (Alice-LG API): the
// route server's neighbors become IXP memberships.
type AliceLG struct {
	ingest.Base
	lg string
}

// NewAliceLG returns the crawler for one looking glass.
func NewAliceLG(lg string) *AliceLG {
	return &AliceLG{
		Base: ingest.Base{Org: "Alice-LG", Name: "alice_lg." + lg,
			InfoURL: "https://github.com/alice-lg/alice-lg",
			DataURL: source.PathAliceLGPrefix + lg + "/neighbors.json"},
		lg: lg,
	}
}

// Run implements ingest.Crawler.
func (c *AliceLG) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		IXPName   string `json:"ixp_name"`
		Neighbors []struct {
			ASN         uint32 `json:"asn"`
			Description string `json:"description"`
			State       string `json:"state"`
		} `json:"neighbors"`
	}
	d, err := fetchJSON[doc](ctx, s, fmt.Sprintf("%s%s/neighbors.json", source.PathAliceLGPrefix, c.lg))
	if err != nil {
		return err
	}
	ixp, err := s.Node(ontology.IXP, d.IXPName)
	if err != nil {
		return err
	}
	for _, n := range d.Neighbors {
		as, err := s.Node(ontology.AS, n.ASN)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.MemberOf, as, ixp, graph.Props{
			"state": graph.String(n.State),
		}); err != nil {
			return err
		}
	}
	return nil
}
