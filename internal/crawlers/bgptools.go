package crawlers

import (
	"context"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// BGPToolsASNames imports BGP.Tools AS names.
type BGPToolsASNames struct{ ingest.Base }

// NewBGPToolsASNames returns the crawler.
func NewBGPToolsASNames() *BGPToolsASNames {
	return &BGPToolsASNames{ingest.Base{
		Org: "BGP.Tools", Name: "bgptools.as_names",
		InfoURL: "https://bgp.tools/kb/api", DataURL: source.PathBGPToolsASNames,
	}}
}

// Run implements ingest.Crawler.
func (c *BGPToolsASNames) Run(ctx context.Context, s *ingest.Session) error {
	return fetchCSV(ctx, s, source.PathBGPToolsASNames, true, func(rec []string) error {
		if len(rec) < 2 {
			return nil
		}
		as, err := s.Node(ontology.AS, rec[0])
		if err != nil {
			return nil
		}
		name, err := s.NameNode(rec[1])
		if err != nil {
			return err
		}
		return s.Link(ontology.NameRel, as, name, nil)
	})
}

// BGPToolsTags imports the BGP.Tools AS classification tags — the source
// of the 'Content Delivery Network', 'Academic', 'Government' and 'DDoS
// Mitigation' tags the RPKI study groups by (paper §4.1.4).
type BGPToolsTags struct{ ingest.Base }

// NewBGPToolsTags returns the crawler.
func NewBGPToolsTags() *BGPToolsTags {
	return &BGPToolsTags{ingest.Base{
		Org: "BGP.Tools", Name: "bgptools.tags",
		InfoURL: "https://bgp.tools/kb/api", DataURL: source.PathBGPToolsTags,
	}}
}

// Run implements ingest.Crawler.
func (c *BGPToolsTags) Run(ctx context.Context, s *ingest.Session) error {
	return fetchCSV(ctx, s, source.PathBGPToolsTags, false, func(rec []string) error {
		if len(rec) < 2 {
			return nil
		}
		as, err := s.Node(ontology.AS, rec[0])
		if err != nil {
			return nil
		}
		tag, err := s.TagNode(rec[1])
		if err != nil {
			return err
		}
		return s.Link(ontology.Categorized, as, tag, nil)
	})
}

// BGPToolsAnycast imports the BGP.Tools anycast prefix tags (both address
// families), tagging prefixes as 'Anycast' as in the paper's Figure 4.
type BGPToolsAnycast struct{ ingest.Base }

// NewBGPToolsAnycast returns the crawler.
func NewBGPToolsAnycast() *BGPToolsAnycast {
	return &BGPToolsAnycast{ingest.Base{
		Org: "BGP.Tools", Name: "bgptools.anycast_prefixes",
		InfoURL: "https://github.com/bgptools/anycast-prefixes", DataURL: source.PathBGPToolsAnycast4,
	}}
}

// Run implements ingest.Crawler.
func (c *BGPToolsAnycast) Run(ctx context.Context, s *ingest.Session) error {
	tag, err := s.TagNode("Anycast")
	if err != nil {
		return err
	}
	importFile := func(path string, af int) error {
		return fetchLines(ctx, s, path, func(line string) error {
			pfx, err := s.Node(ontology.Prefix, line)
			if err != nil {
				return nil
			}
			return s.Link(ontology.Categorized, pfx, tag, graph.Props{"af": graph.Int(int64(af))})
		})
	}
	if err := importFile(source.PathBGPToolsAnycast4, 4); err != nil {
		return err
	}
	return importFile(source.PathBGPToolsAnycast6, 6)
}
