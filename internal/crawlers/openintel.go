package crawlers

import (
	"context"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// openintelResolutionRow is one processed OpenINTEL record.
type openintelResolutionRow struct {
	QueryName    string `json:"query_name"`
	ResponseType string `json:"response_type"`
	Answer       string `json:"answer"`
}

// importResolutions maps A/AAAA records to (:HostName)-[:RESOLVES_TO]->(:IP).
func importResolutions(ctx context.Context, s *ingest.Session, path string) error {
	return fetchJSONLines(ctx, s, path, func(r openintelResolutionRow) error {
		if r.ResponseType != "A" && r.ResponseType != "AAAA" {
			return nil
		}
		host, err := s.Node(ontology.HostName, r.QueryName)
		if err != nil {
			return nil
		}
		ip, err := s.Node(ontology.IP, r.Answer)
		if err != nil {
			return nil
		}
		return s.Link(ontology.ResolvesTo, host, ip, nil)
	})
}

// OpenINTELTranco1M imports the OpenINTEL active DNS measurements for the
// Tranco top-1M list: the dataset Listing 3 pins with
// {reference_name:'openintel.tranco1m'}.
type OpenINTELTranco1M struct{ ingest.Base }

// NewOpenINTELTranco1M returns the crawler.
func NewOpenINTELTranco1M() *OpenINTELTranco1M {
	return &OpenINTELTranco1M{ingest.Base{
		Org: "OpenINTEL", Name: "openintel.tranco1m",
		InfoURL: "https://openintel.nl", DataURL: source.PathOpenINTELTranco1M,
	}}
}

// Run implements ingest.Crawler.
func (c *OpenINTELTranco1M) Run(ctx context.Context, s *ingest.Session) error {
	return importResolutions(ctx, s, source.PathOpenINTELTranco1M)
}

// OpenINTELUmbrella1M imports the OpenINTEL measurements for the Cisco
// Umbrella list.
type OpenINTELUmbrella1M struct{ ingest.Base }

// NewOpenINTELUmbrella1M returns the crawler.
func NewOpenINTELUmbrella1M() *OpenINTELUmbrella1M {
	return &OpenINTELUmbrella1M{ingest.Base{
		Org: "OpenINTEL", Name: "openintel.umbrella1m",
		InfoURL: "https://openintel.nl", DataURL: source.PathOpenINTELUmbrella1M,
	}}
}

// Run implements ingest.Crawler.
func (c *OpenINTELUmbrella1M) Run(ctx context.Context, s *ingest.Session) error {
	return importResolutions(ctx, s, source.PathOpenINTELUmbrella1M)
}

// OpenINTELNS imports the OpenINTEL nameserver measurements: NS
// delegations become (:DomainName)-[:MANAGED_BY]->(:AuthoritativeNameServer)
// and glue records become nameserver RESOLVES_TO edges. This replaces the
// original DNS-robustness study's zone files (paper §4.2).
type OpenINTELNS struct{ ingest.Base }

// NewOpenINTELNS returns the crawler.
func NewOpenINTELNS() *OpenINTELNS {
	return &OpenINTELNS{ingest.Base{
		Org: "OpenINTEL", Name: "openintel.ns",
		InfoURL: "https://openintel.nl", DataURL: source.PathOpenINTELNS,
	}}
}

// Run implements ingest.Crawler.
func (c *OpenINTELNS) Run(ctx context.Context, s *ingest.Session) error {
	// The feed repeats records across measured zones; a relationship is
	// imported once (IYP's batched importers deduplicate the same way).
	seen := map[openintelResolutionRow]bool{}
	return fetchJSONLines(ctx, s, source.PathOpenINTELNS, func(r openintelResolutionRow) error {
		if seen[r] {
			return nil
		}
		seen[r] = true
		switch r.ResponseType {
		case "NS":
			dom, err := s.Node(ontology.DomainName, r.QueryName)
			if err != nil {
				return nil
			}
			// Nameservers are HostName nodes carrying the
			// AuthoritativeNameServer label: one node per name, whatever
			// datasets mention it.
			ns, err := s.Node(ontology.HostName, r.Answer)
			if err != nil {
				return nil
			}
			if err := s.AddLabel(ns, ontology.AuthoritativeNameServer); err != nil {
				return err
			}
			return s.Link(ontology.ManagedBy, dom, ns, nil)
		case "A", "AAAA":
			host, err := s.Node(ontology.HostName, r.QueryName)
			if err != nil {
				return nil
			}
			ip, err := s.Node(ontology.IP, r.Answer)
			if err != nil {
				return nil
			}
			return s.Link(ontology.ResolvesTo, host, ip, graph.Props{"glue": graph.Bool(true)})
		}
		return nil
	})
}

// OpenINTELDNSGraph imports the UTwente DNS dependency graph: per-domain
// transitive infrastructure dependencies with their type (direct,
// third-party, hierarchical), powering the SPoF analysis of paper §5.2.
type OpenINTELDNSGraph struct{ ingest.Base }

// NewOpenINTELDNSGraph returns the crawler.
func NewOpenINTELDNSGraph() *OpenINTELDNSGraph {
	return &OpenINTELDNSGraph{ingest.Base{
		Org: "UTwente", Name: "openintel.dnsgraph",
		InfoURL: "https://dnsgraph.dacs.utwente.nl", DataURL: source.PathOpenINTELDNSGraph,
	}}
}

// Run implements ingest.Crawler.
func (c *OpenINTELDNSGraph) Run(ctx context.Context, s *ingest.Session) error {
	type row struct {
		Domain  string `json:"domain"`
		DepASN  uint32 `json:"dep_asn"`
		DepCC   string `json:"dep_cc"`
		DepType string `json:"dep_type"`
	}
	return fetchJSONLines(ctx, s, source.PathOpenINTELDNSGraph, func(r row) error {
		dom, err := s.Node(ontology.DomainName, r.Domain)
		if err != nil {
			return nil
		}
		as, err := s.Node(ontology.AS, r.DepASN)
		if err != nil {
			return err
		}
		return s.Link(ontology.DependsOn, dom, as, graph.Props{
			"dep_type": graph.String(r.DepType),
			"dep_cc":   graph.String(r.DepCC),
		})
	})
}
