package crawlers

import (
	"context"
	"sort"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// CloudflareRanking imports the Cloudflare Radar domain ranking.
type CloudflareRanking struct{ ingest.Base }

// NewCloudflareRanking returns the crawler.
func NewCloudflareRanking() *CloudflareRanking {
	return &CloudflareRanking{ingest.Base{
		Org: "Cloudflare", Name: "cloudflare.ranking_bucket",
		InfoURL: "https://radar.cloudflare.com", DataURL: source.PathCloudflareRanking,
	}}
}

// Run implements ingest.Crawler.
func (c *CloudflareRanking) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		Result struct {
			Top []struct {
				Domain string `json:"domain"`
				Rank   int    `json:"rank"`
			} `json:"top_0"`
		} `json:"result"`
	}
	d, err := fetchJSON[doc](ctx, s, source.PathCloudflareRanking)
	if err != nil {
		return err
	}
	ranking, err := s.Node(ontology.Ranking, "Cloudflare top 1M")
	if err != nil {
		return err
	}
	for _, e := range d.Result.Top {
		dom, err := s.Node(ontology.DomainName, e.Domain)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.Rank, dom, ranking, graph.Props{"rank": graph.Int(int64(e.Rank))}); err != nil {
			return err
		}
	}
	return nil
}

// CloudflareTopDomains imports the Cloudflare Radar top-domains dataset
// (the static top-1000 bucket).
type CloudflareTopDomains struct{ ingest.Base }

// NewCloudflareTopDomains returns the crawler.
func NewCloudflareTopDomains() *CloudflareTopDomains {
	return &CloudflareTopDomains{ingest.Base{
		Org: "Cloudflare", Name: "cloudflare.top_domains",
		InfoURL: "https://radar.cloudflare.com", DataURL: source.PathCloudflareTopDomains,
	}}
}

// Run implements ingest.Crawler.
func (c *CloudflareTopDomains) Run(ctx context.Context, s *ingest.Session) error {
	ranking, err := s.Node(ontology.Ranking, "Cloudflare top 1000 domains")
	if err != nil {
		return err
	}
	rank := 0
	return fetchLines(ctx, s, source.PathCloudflareTopDomains, func(line string) error {
		rank++
		dom, err := s.Node(ontology.DomainName, line)
		if err != nil {
			return err
		}
		return s.Link(ontology.Rank, dom, ranking, graph.Props{"rank": graph.Int(int64(rank))})
	})
}

// CloudflareDNSTopAses imports the Radar per-domain top querying ASes
// (QUERIED_FROM relationships, Figure 4's bottom branch).
type CloudflareDNSTopAses struct{ ingest.Base }

// NewCloudflareDNSTopAses returns the crawler.
func NewCloudflareDNSTopAses() *CloudflareDNSTopAses {
	return &CloudflareDNSTopAses{ingest.Base{
		Org: "Cloudflare", Name: "cloudflare.dns_top_ases",
		InfoURL: "https://radar.cloudflare.com", DataURL: source.PathCloudflareDNSTopAses,
	}}
}

// Run implements ingest.Crawler.
func (c *CloudflareDNSTopAses) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		Result map[string][]struct {
			ClientASN    uint32  `json:"clientASN"`
			ClientASName string  `json:"clientASName"`
			Value        float64 `json:"value"`
		} `json:"result"`
	}
	d, err := fetchJSON[doc](ctx, s, source.PathCloudflareDNSTopAses)
	if err != nil {
		return err
	}
	for _, domain := range sortedKeys(d.Result) {
		ases := d.Result[domain]
		dom, err := s.Node(ontology.DomainName, domain)
		if err != nil {
			return err
		}
		for _, a := range ases {
			as, err := s.Node(ontology.AS, a.ClientASN)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.QueriedFrom, dom, as, graph.Props{"value": graph.Float(a.Value)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// CloudflareDNSTopLocations imports the Radar per-domain top querying
// countries.
type CloudflareDNSTopLocations struct{ ingest.Base }

// NewCloudflareDNSTopLocations returns the crawler.
func NewCloudflareDNSTopLocations() *CloudflareDNSTopLocations {
	return &CloudflareDNSTopLocations{ingest.Base{
		Org: "Cloudflare", Name: "cloudflare.dns_top_locations",
		InfoURL: "https://radar.cloudflare.com", DataURL: source.PathCloudflareDNSTopLoc,
	}}
}

// Run implements ingest.Crawler.
func (c *CloudflareDNSTopLocations) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		Result map[string][]struct {
			ClientCountryAlpha2 string  `json:"clientCountryAlpha2"`
			Value               float64 `json:"value"`
		} `json:"result"`
	}
	d, err := fetchJSON[doc](ctx, s, source.PathCloudflareDNSTopLoc)
	if err != nil {
		return err
	}
	for _, domain := range sortedKeys(d.Result) {
		locs := d.Result[domain]
		dom, err := s.Node(ontology.DomainName, domain)
		if err != nil {
			return err
		}
		for _, l := range locs {
			cc, err := s.Node(ontology.Country, l.ClientCountryAlpha2)
			if err != nil {
				continue
			}
			if err := s.Link(ontology.QueriedFrom, dom, cc, graph.Props{"value": graph.Float(l.Value)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedKeys returns a map's keys in sorted order so JSON-object iteration
// is deterministic — required for byte-identical snapshots and resume.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
