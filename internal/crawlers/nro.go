package crawlers

import (
	"context"
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// NRODelegated imports the NRO extended allocation and assignment report
// ("delegated-extended"): which RIR delegated which AS numbers and address
// blocks to which resource holder (opaque-id), in which country.
type NRODelegated struct{ ingest.Base }

// NewNRODelegated returns the crawler.
func NewNRODelegated() *NRODelegated {
	return &NRODelegated{ingest.Base{
		Org: "NRO", Name: "nro.delegated_stats",
		InfoURL: "https://www.nro.net/about/rirs/statistics", DataURL: source.PathNRODelegated,
	}}
}

// Run implements ingest.Crawler.
func (c *NRODelegated) Run(ctx context.Context, s *ingest.Session) error {
	return fetchLines(ctx, s, source.PathNRODelegated, func(line string) error {
		fields := strings.Split(line, "|")
		if len(fields) < 8 {
			return nil // version or summary line
		}
		registry, cc, typ, start, value, _, status, opaque :=
			fields[0], fields[1], fields[2], fields[3], fields[4], fields[5], fields[6], fields[7]

		var resource graph.NodeID
		var err error
		switch typ {
		case "asn":
			resource, err = s.Node(ontology.AS, start)
			if err != nil {
				return nil
			}
		case "ipv4":
			// value = number of addresses; decompose into CIDR blocks.
			n, perr := strconv.Atoi(value)
			if perr != nil {
				return nil
			}
			prefixes, perr := v4RangeToPrefixes(start, n)
			if perr != nil || len(prefixes) == 0 {
				return nil
			}
			// Import the first (covering) block; delegations in the
			// simulated files are always CIDR-aligned.
			resource, err = s.Node(ontology.Prefix, prefixes[0])
			if err != nil {
				return nil
			}
		case "ipv6":
			bits, perr := strconv.Atoi(value)
			if perr != nil {
				return nil
			}
			resource, err = s.Node(ontology.Prefix, fmt.Sprintf("%s/%d", start, bits))
			if err != nil {
				return nil
			}
		default:
			return nil
		}

		opaqueNode, err := s.NodeWithProps(ontology.OpaqueID, opaque, graph.Props{
			"registry": graph.String(registry),
		})
		if err != nil {
			return err
		}
		props := graph.Props{"registry": graph.String(registry)}
		var relType string
		switch status {
		case "allocated", "assigned":
			relType = ontology.Assigned
		case "available":
			relType = ontology.Available
		case "reserved":
			relType = ontology.Reserved
		default:
			relType = ontology.Assigned
		}
		if err := s.Link(relType, resource, opaqueNode, props); err != nil {
			return err
		}
		if cc != "" && cc != "ZZ" {
			if ccNode, err := s.Node(ontology.Country, cc); err == nil {
				if err := s.Link(ontology.CountryRel, resource, ccNode, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// v4RangeToPrefixes converts an (address, count) IPv4 delegation into the
// minimal list of covering CIDR prefixes.
func v4RangeToPrefixes(start string, count int) ([]string, error) {
	addr, err := netip.ParseAddr(start)
	if err != nil || !addr.Is4() {
		return nil, fmt.Errorf("crawlers: invalid IPv4 start %q", start)
	}
	a4 := addr.As4()
	cur := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	remaining := uint32(count)
	var out []string
	for remaining > 0 {
		// Largest block that is both aligned at cur and <= remaining.
		size := uint32(1) << 31
		for size > remaining || (size > 1 && cur%size != 0) {
			size >>= 1
		}
		bits := 32
		for b := size; b > 1; b >>= 1 {
			bits--
		}
		ip := netip.AddrFrom4([4]byte{byte(cur >> 24), byte(cur >> 16), byte(cur >> 8), byte(cur)})
		out = append(out, fmt.Sprintf("%s/%d", ip, bits))
		cur += size
		remaining -= size
		if len(out) > 64 {
			return nil, fmt.Errorf("crawlers: range %s+%d too fragmented", start, count)
		}
	}
	return out, nil
}
