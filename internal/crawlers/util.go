// Package crawlers implements the 47 dataset importers of Table 8 — one
// per dataset from the paper's 23 organizations. Each crawler fetches its
// dataset in the provider's native format through the session's Fetcher
// and maps it onto the IYP ontology, annotating every relationship with
// provenance. Crawlers are independent of each other and of the data
// simulator; they only see bytes.
package crawlers

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"iyp/internal/ingest"
)

// fetchJSONLines fetches a JSONL dataset and decodes each line into T,
// invoking fn per record.
func fetchJSONLines[T any](ctx context.Context, s *ingest.Session, path string, fn func(T) error) error {
	data, err := s.Fetch(ctx, path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var row T
		if err := dec.Decode(&row); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("crawlers: %s: decode: %w", path, err)
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// fetchJSON fetches and decodes a single JSON document.
func fetchJSON[T any](ctx context.Context, s *ingest.Session, path string) (T, error) {
	var out T
	data, err := s.Fetch(ctx, path)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return out, fmt.Errorf("crawlers: %s: decode: %w", path, err)
	}
	return out, nil
}

// fetchCSV fetches a CSV dataset and invokes fn per record. When header is
// true the first row is skipped.
func fetchCSV(ctx context.Context, s *ingest.Session, path string, header bool, fn func([]string) error) error {
	data, err := s.Fetch(ctx, path)
	if err != nil {
		return err
	}
	r := csv.NewReader(bytes.NewReader(data))
	r.FieldsPerRecord = -1
	first := true
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("crawlers: %s: csv: %w", path, err)
		}
		if first && header {
			first = false
			continue
		}
		first = false
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// fetchLines fetches a plain-text dataset and invokes fn per non-empty
// line.
func fetchLines(ctx context.Context, s *ingest.Session, path string, fn func(string) error) error {
	data, err := s.Fetch(ctx, path)
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return sc.Err()
}
