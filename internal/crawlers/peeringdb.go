package crawlers

import (
	"context"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// PeeringDBOrg imports PeeringDB organizations.
type PeeringDBOrg struct{ ingest.Base }

// NewPeeringDBOrg returns the crawler.
func NewPeeringDBOrg() *PeeringDBOrg {
	return &PeeringDBOrg{ingest.Base{
		Org: "PeeringDB", Name: "peeringdb.org",
		InfoURL: "https://www.peeringdb.com", DataURL: source.PathPeeringDBOrg,
	}}
}

// Run implements ingest.Crawler.
func (c *PeeringDBOrg) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		Data []struct {
			ID      int    `json:"id"`
			Name    string `json:"name"`
			Country string `json:"country"`
			Website string `json:"website"`
		} `json:"data"`
	}
	d, err := fetchJSON[doc](ctx, s, source.PathPeeringDBOrg)
	if err != nil {
		return err
	}
	for _, o := range d.Data {
		org, err := s.Node(ontology.Organization, o.Name)
		if err != nil {
			return err
		}
		pdbID, err := s.Node(ontology.PeeringdbOrgID, o.ID)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.ExternalID, org, pdbID, nil); err != nil {
			return err
		}
		if o.Country != "" {
			if cc, err := s.Node(ontology.Country, o.Country); err == nil {
				if err := s.Link(ontology.CountryRel, org, cc, nil); err != nil {
					return err
				}
			}
		}
		if o.Website != "" {
			url, err := s.Node(ontology.URL, o.Website)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.Website, org, url, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// PeeringDBFac imports PeeringDB co-location facilities.
type PeeringDBFac struct{ ingest.Base }

// NewPeeringDBFac returns the crawler.
func NewPeeringDBFac() *PeeringDBFac {
	return &PeeringDBFac{ingest.Base{
		Org: "PeeringDB", Name: "peeringdb.fac",
		InfoURL: "https://www.peeringdb.com", DataURL: source.PathPeeringDBFac,
	}}
}

// Run implements ingest.Crawler.
func (c *PeeringDBFac) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		Data []struct {
			ID      int    `json:"id"`
			Name    string `json:"name"`
			Country string `json:"country"`
			OrgID   int    `json:"org_id"`
			OrgName string `json:"org_name"`
		} `json:"data"`
	}
	d, err := fetchJSON[doc](ctx, s, source.PathPeeringDBFac)
	if err != nil {
		return err
	}
	for _, f := range d.Data {
		fac, err := s.Node(ontology.Facility, f.Name)
		if err != nil {
			return err
		}
		pdbID, err := s.Node(ontology.PeeringdbFacID, f.ID)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.ExternalID, fac, pdbID, nil); err != nil {
			return err
		}
		if f.Country != "" {
			if cc, err := s.Node(ontology.Country, f.Country); err == nil {
				if err := s.Link(ontology.CountryRel, fac, cc, nil); err != nil {
					return err
				}
			}
		}
		if f.OrgName != "" {
			org, err := s.Node(ontology.Organization, f.OrgName)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.ManagedBy, fac, org, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// PeeringDBIX imports PeeringDB exchanges.
type PeeringDBIX struct{ ingest.Base }

// NewPeeringDBIX returns the crawler.
func NewPeeringDBIX() *PeeringDBIX {
	return &PeeringDBIX{ingest.Base{
		Org: "PeeringDB", Name: "peeringdb.ix",
		InfoURL: "https://www.peeringdb.com", DataURL: source.PathPeeringDBIX,
	}}
}

// Run implements ingest.Crawler.
func (c *PeeringDBIX) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		Data []struct {
			ID      int    `json:"id"`
			Name    string `json:"name"`
			Country string `json:"country"`
		} `json:"data"`
	}
	d, err := fetchJSON[doc](ctx, s, source.PathPeeringDBIX)
	if err != nil {
		return err
	}
	for _, ix := range d.Data {
		ixp, err := s.Node(ontology.IXP, ix.Name)
		if err != nil {
			return err
		}
		pdbID, err := s.Node(ontology.PeeringdbIXID, ix.ID)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.ExternalID, ixp, pdbID, nil); err != nil {
			return err
		}
		if ix.Country != "" {
			if cc, err := s.Node(ontology.Country, ix.Country); err == nil {
				if err := s.Link(ontology.CountryRel, ixp, cc, nil); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// PeeringDBIXLan imports IXP memberships (the ix/ixlan API), including the
// peering policy and port-speed details the paper cites as relationship
// properties (§2.2).
type PeeringDBIXLan struct{ ingest.Base }

// NewPeeringDBIXLan returns the crawler.
func NewPeeringDBIXLan() *PeeringDBIXLan {
	return &PeeringDBIXLan{ingest.Base{
		Org: "PeeringDB", Name: "peeringdb.ixlan",
		InfoURL: "https://www.peeringdb.com", DataURL: source.PathPeeringDBIXLan,
	}}
}

// Run implements ingest.Crawler.
func (c *PeeringDBIXLan) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		Data []struct {
			IXID   int    `json:"ix_id"`
			IXName string `json:"ix_name"`
			ASN    uint32 `json:"asn"`
			Speed  int    `json:"speed"`
			Policy string `json:"policy"`
		} `json:"data"`
	}
	d, err := fetchJSON[doc](ctx, s, source.PathPeeringDBIXLan)
	if err != nil {
		return err
	}
	for _, m := range d.Data {
		ixp, err := s.Node(ontology.IXP, m.IXName)
		if err != nil {
			return err
		}
		as, err := s.Node(ontology.AS, m.ASN)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.MemberOf, as, ixp, graph.Props{
			"speed":  graph.Int(int64(m.Speed)),
			"policy": graph.String(m.Policy),
		}); err != nil {
			return err
		}
	}
	return nil
}

// PeeringDBNetFac imports AS presence at facilities.
type PeeringDBNetFac struct{ ingest.Base }

// NewPeeringDBNetFac returns the crawler.
func NewPeeringDBNetFac() *PeeringDBNetFac {
	return &PeeringDBNetFac{ingest.Base{
		Org: "PeeringDB", Name: "peeringdb.netfac",
		InfoURL: "https://www.peeringdb.com", DataURL: source.PathPeeringDBNetFac,
	}}
}

// Run implements ingest.Crawler.
func (c *PeeringDBNetFac) Run(ctx context.Context, s *ingest.Session) error {
	type doc struct {
		Data []struct {
			LocalASN uint32 `json:"local_asn"`
			FacID    int    `json:"fac_id"`
			FacName  string `json:"fac_name"`
		} `json:"data"`
	}
	d, err := fetchJSON[doc](ctx, s, source.PathPeeringDBNetFac)
	if err != nil {
		return err
	}
	for _, nf := range d.Data {
		fac, err := s.Node(ontology.Facility, nf.FacName)
		if err != nil {
			return err
		}
		as, err := s.Node(ontology.AS, nf.LocalASN)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.LocatedIn, as, fac, nil); err != nil {
			return err
		}
	}
	return nil
}
