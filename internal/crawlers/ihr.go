package crawlers

import (
	"context"
	"strconv"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// IHRHegemony imports IHR's AS Hegemony scores: the inter-dependence of
// ASes inferred from BGP data.
type IHRHegemony struct{ ingest.Base }

// NewIHRHegemony returns the crawler.
func NewIHRHegemony() *IHRHegemony {
	return &IHRHegemony{ingest.Base{
		Org: "IHR", Name: "ihr.hegemony",
		InfoURL: "https://ihr.iijlab.net", DataURL: source.PathIHRHegemony,
	}}
}

// Run implements ingest.Crawler.
func (c *IHRHegemony) Run(ctx context.Context, s *ingest.Session) error {
	return fetchCSV(ctx, s, source.PathIHRHegemony, true, func(rec []string) error {
		if len(rec) < 4 {
			return nil
		}
		origin, err1 := strconv.ParseUint(rec[0], 10, 32)
		asn, err2 := strconv.ParseUint(rec[1], 10, 32)
		hege, err3 := strconv.ParseFloat(rec[2], 64)
		af, err4 := strconv.Atoi(rec[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil
		}
		as, err := s.Node(ontology.AS, uint32(asn))
		if err != nil {
			return err
		}
		if origin == 0 {
			// Global hegemony: a property of the AS itself.
			return s.SetNodeProp(as, "hegemony", graph.Float(hege))
		}
		org, err := s.Node(ontology.AS, uint32(origin))
		if err != nil {
			return err
		}
		return s.Link(ontology.DependsOn, org, as, graph.Props{
			"hege": graph.Float(hege),
			"af":   graph.Int(int64(af)),
		})
	})
}

// IHRCountryDependency imports IHR's country-level AS dependency.
type IHRCountryDependency struct{ ingest.Base }

// NewIHRCountryDependency returns the crawler.
func NewIHRCountryDependency() *IHRCountryDependency {
	return &IHRCountryDependency{ingest.Base{
		Org: "IHR", Name: "ihr.country_dependency",
		InfoURL: "https://ihr.iijlab.net", DataURL: source.PathIHRCountryDep,
	}}
}

// Run implements ingest.Crawler.
func (c *IHRCountryDependency) Run(ctx context.Context, s *ingest.Session) error {
	return fetchCSV(ctx, s, source.PathIHRCountryDep, true, func(rec []string) error {
		if len(rec) < 3 {
			return nil
		}
		asn, err1 := strconv.ParseUint(rec[1], 10, 32)
		hege, err2 := strconv.ParseFloat(rec[2], 64)
		if err1 != nil || err2 != nil {
			return nil
		}
		cc, err := s.Node(ontology.Country, rec[0])
		if err != nil {
			return nil
		}
		as, err := s.Node(ontology.AS, uint32(asn))
		if err != nil {
			return err
		}
		return s.Link(ontology.CountryRel, as, cc, graph.Props{"hege": graph.Float(hege)})
	})
}

// IHRROVTags are the RPKI/IRR validation tags produced by IHR's ROV
// dataset — the exact labels the paper's Listing 4 matches with STARTS
// WITH 'RPKI Invalid'.
type IHRROV struct{ ingest.Base }

// NewIHRROV returns the crawler.
func NewIHRROV() *IHRROV {
	return &IHRROV{ingest.Base{
		Org: "IHR", Name: "ihr.rov",
		InfoURL: "https://ihr.iijlab.net/ihr/en-us/rov", DataURL: source.PathIHRROV,
	}}
}

// Run implements ingest.Crawler.
func (c *IHRROV) Run(ctx context.Context, s *ingest.Session) error {
	return fetchCSV(ctx, s, source.PathIHRROV, true, func(rec []string) error {
		if len(rec) < 4 {
			return nil
		}
		asn, err := strconv.ParseUint(rec[1], 10, 32)
		if err != nil {
			return nil
		}
		pfx, err := s.Node(ontology.Prefix, rec[0])
		if err != nil {
			return nil
		}
		props := graph.Props{"origin_asn": graph.Int(int64(asn))}
		for _, label := range []string{rec[2], rec[3]} {
			if label == "" {
				continue
			}
			tag, err := s.TagNode(label)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.Categorized, pfx, tag, props); err != nil {
				return err
			}
		}
		return nil
	})
}
