package crawlers

import (
	"iyp/internal/ingest"
	"iyp/internal/source"
)

// All returns every crawler of the reproduction: 47 datasets across 23
// organizations, mirroring the paper's Table 8.
func All() []ingest.Crawler {
	var cs []ingest.Crawler
	// Alice-LG looking glasses (7 datasets).
	for _, lg := range source.AliceLGNames {
		cs = append(cs, NewAliceLG(lg))
	}
	cs = append(cs,
		// APNIC.
		NewAPNICPopulation(),
		// BGPKIT.
		NewBGPKITPfx2as(),
		NewBGPKITAs2rel(),
		NewBGPKITPeerStats(),
		// BGP.Tools.
		NewBGPToolsASNames(),
		NewBGPToolsTags(),
		NewBGPToolsAnycast(),
		// CAIDA.
		NewCAIDAASRank(),
		NewCAIDAIXPs(),
		// Cisco.
		NewCiscoUmbrella(),
		// Citizen Lab.
		NewCitizenLab(),
		// Cloudflare.
		NewCloudflareRanking(),
		NewCloudflareTopDomains(),
		NewCloudflareDNSTopAses(),
		NewCloudflareDNSTopLocations(),
		// Emile Aben.
		NewEmileAbenASNames(),
		// IHR.
		NewIHRHegemony(),
		NewIHRCountryDependency(),
		NewIHRROV(),
		// Internet Intelligence Lab.
		NewInetIntelAS2Org(),
		// NRO.
		NewNRODelegated(),
		// OpenINTEL.
		NewOpenINTELTranco1M(),
		NewOpenINTELUmbrella1M(),
		NewOpenINTELNS(),
		NewOpenINTELDNSGraph(),
		// PCH.
		NewPCHRoutingV4(),
		NewPCHRoutingV6(),
		// PeeringDB.
		NewPeeringDBOrg(),
		NewPeeringDBFac(),
		NewPeeringDBIX(),
		NewPeeringDBIXLan(),
		NewPeeringDBNetFac(),
		// RIPE NCC.
		NewRIPEASNames(),
		NewRIPERPKI(),
		NewRIPEAtlas(),
		// SimulaMet.
		NewSimulaMetRDNS(),
		// Stanford.
		NewStanfordASdb(),
		// Tranco.
		NewTranco(),
		// Virginia Tech.
		NewRoVista(),
		// World Bank.
		NewWorldBankPopulation(),
	)
	return cs
}

// Organizations returns the distinct data-provider organizations covered
// by All(), for the dataset inventory report.
func Organizations() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range All() {
		org := c.Reference().Organization
		if !seen[org] {
			seen[org] = true
			out = append(out, org)
		}
	}
	return out
}
