package crawlers

import (
	"context"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// CAIDAASRank imports CAIDA's ASRank: customer-cone ranking, AS names,
// organizations and countries.
type CAIDAASRank struct{ ingest.Base }

// NewCAIDAASRank returns the crawler.
func NewCAIDAASRank() *CAIDAASRank {
	return &CAIDAASRank{ingest.Base{
		Org: "CAIDA", Name: "caida.asrank",
		InfoURL: "https://doi.org/10.21986/CAIDA.DATA.AS-RANK", DataURL: source.PathCAIDAASRank,
	}}
}

// Run implements ingest.Crawler.
func (c *CAIDAASRank) Run(ctx context.Context, s *ingest.Session) error {
	ranking, err := s.Node(ontology.Ranking, "CAIDA ASRank")
	if err != nil {
		return err
	}
	type row struct {
		Rank    int    `json:"rank"`
		ASN     uint32 `json:"asn"`
		ASNName string `json:"asnName"`
		Cone    struct {
			NumberASNs int `json:"numberAsns"`
		} `json:"cone"`
		Country struct {
			ISO string `json:"iso"`
		} `json:"country"`
		Organization struct {
			OrgID   string `json:"orgId"`
			OrgName string `json:"orgName"`
		} `json:"organization"`
	}
	return fetchJSONLines(ctx, s, source.PathCAIDAASRank, func(r row) error {
		as, err := s.Node(ontology.AS, r.ASN)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.Rank, as, ranking, graph.Props{
			"rank":        graph.Int(int64(r.Rank)),
			"cone_number": graph.Int(int64(r.Cone.NumberASNs)),
		}); err != nil {
			return err
		}
		if r.ASNName != "" {
			name, err := s.NameNode(r.ASNName)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.NameRel, as, name, nil); err != nil {
				return err
			}
		}
		if r.Country.ISO != "" {
			cc, err := s.Node(ontology.Country, r.Country.ISO)
			if err == nil {
				if err := s.Link(ontology.CountryRel, as, cc, nil); err != nil {
					return err
				}
			}
		}
		if r.Organization.OrgName != "" {
			org, err := s.Node(ontology.Organization, r.Organization.OrgName)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.ManagedBy, as, org, nil); err != nil {
				return err
			}
		}
		return nil
	})
}

// CAIDAIXPs imports CAIDA's IXP dataset: exchanges, their external
// identifiers, and AS memberships.
type CAIDAIXPs struct{ ingest.Base }

// NewCAIDAIXPs returns the crawler.
func NewCAIDAIXPs() *CAIDAIXPs {
	return &CAIDAIXPs{ingest.Base{
		Org: "CAIDA", Name: "caida.ixs",
		InfoURL: "https://www.caida.org/catalog/datasets/ixps", DataURL: source.PathCAIDAIXPs,
	}}
}

// Run implements ingest.Crawler.
func (c *CAIDAIXPs) Run(ctx context.Context, s *ingest.Session) error {
	type ixRow struct {
		IXID    int    `json:"ix_id"`
		Name    string `json:"name"`
		Country string `json:"country"`
		PDBID   int    `json:"pdb_id"`
	}
	// ix_id → IXP node, for the membership pass below.
	ixByID := map[int]graph.NodeID{}
	err := fetchJSONLines(ctx, s, source.PathCAIDAIXPs, func(r ixRow) error {
		ixp, err := s.Node(ontology.IXP, r.Name)
		if err != nil {
			return err
		}
		ixByID[r.IXID] = ixp
		caidaID, err := s.Node(ontology.CaidaIXID, r.IXID)
		if err != nil {
			return err
		}
		if err := s.Link(ontology.ExternalID, ixp, caidaID, nil); err != nil {
			return err
		}
		if r.PDBID != 0 {
			pdbID, err := s.Node(ontology.PeeringdbIXID, r.PDBID)
			if err != nil {
				return err
			}
			if err := s.Link(ontology.ExternalID, ixp, pdbID, nil); err != nil {
				return err
			}
		}
		if r.Country != "" {
			if cc, err := s.Node(ontology.Country, r.Country); err == nil {
				if err := s.Link(ontology.CountryRel, ixp, cc, nil); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	type memberRow struct {
		IXID int    `json:"ix_id"`
		ASN  uint32 `json:"asn"`
	}
	return fetchJSONLines(ctx, s, source.PathCAIDAIXPASNs, func(r memberRow) error {
		ixp, ok := ixByID[r.IXID]
		if !ok {
			return nil
		}
		as, err := s.Node(ontology.AS, r.ASN)
		if err != nil {
			return err
		}
		return s.Link(ontology.MemberOf, as, ixp, nil)
	})
}
