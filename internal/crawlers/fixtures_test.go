package crawlers

import (
	"context"
	"testing"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// runOn runs one crawler against a hand-written catalog and returns the
// resulting graph.
func runOn(t *testing.T, c ingest.Crawler, files map[string]string) *graph.Graph {
	t.Helper()
	cat := source.NewCatalog()
	for path, data := range files {
		cat.Put(path, []byte(data))
	}
	g := graph.New()
	s := ingest.NewSession(g, cat, c.Reference())
	if err := c.Run(context.Background(), s); err != nil {
		t.Fatalf("%s: %v", c.Reference().Name, err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("%s: commit: %v", c.Reference().Name, err)
	}
	return g
}

func singleNode(t *testing.T, g *graph.Graph, label, key string, v graph.Value) graph.NodeID {
	t.Helper()
	ids := g.NodesByProp(label, key, v)
	if len(ids) != 1 {
		t.Fatalf("%s %v: %d nodes", label, v, len(ids))
	}
	return ids[0]
}

func TestRIPEASNamesParsing(t *testing.T) {
	g := runOn(t, NewRIPEASNames(), map[string]string{
		source.PathRIPEASNames: "2497 IIJ Internet Initiative Japan Inc., JP\n" +
			"65001 NONAME-NET\n" + // no country suffix
			"garbage line without asn\n",
	})
	as := singleNode(t, g, ontology.AS, "asn", graph.Int(2497))
	// NAME edge to the name (comma suffix stripped).
	nameRels := g.Rels(as, graph.DirBoth, []string{ontology.NameRel}, nil)
	if len(nameRels) != 1 {
		t.Fatalf("NAME edges = %d", len(nameRels))
	}
	nameNode := nameRels[0]
	_, to := g.RelEndpoints(nameNode)
	if v, _ := g.NodeProp(to, "name").AsString(); v != "IIJ Internet Initiative Japan Inc." {
		t.Errorf("name = %q", v)
	}
	// COUNTRY edge to JP.
	if got := g.Rels(as, graph.DirBoth, []string{ontology.CountryRel}, nil); len(got) != 1 {
		t.Errorf("COUNTRY edges = %d", len(got))
	}
	// The no-country AS still gets its name.
	as2 := singleNode(t, g, ontology.AS, "asn", graph.Int(65001))
	if got := g.Rels(as2, graph.DirBoth, []string{ontology.NameRel}, nil); len(got) != 1 {
		t.Errorf("no-country NAME edges = %d", len(got))
	}
	if got := g.Rels(as2, graph.DirBoth, []string{ontology.CountryRel}, nil); len(got) != 0 {
		t.Errorf("no-country COUNTRY edges = %d", len(got))
	}
}

func TestRIPERPKICanonicalizesROAPrefixes(t *testing.T) {
	g := runOn(t, NewRIPERPKI(), map[string]string{
		source.PathRIPERPKIROAs: `{"roas": [
			{"asn": "AS2497", "prefix": "2001:0DB8::/32", "maxLength": 48, "ta": "apnic"},
			{"asn": "ASbogus", "prefix": "10.0.0.0/8", "maxLength": 8, "ta": "arin"}
		]}`,
	})
	// Bad ASN rows are skipped; good rows canonicalize the prefix.
	pfx := singleNode(t, g, ontology.Prefix, "prefix", graph.String("2001:db8::/32"))
	rels := g.Rels(pfx, graph.DirIn, []string{ontology.RouteOriginAuthorization}, nil)
	if len(rels) != 1 {
		t.Fatalf("ROA edges = %d", len(rels))
	}
	if v, _ := g.RelProp(rels[0], "maxLength").AsInt(); v != 48 {
		t.Errorf("maxLength = %v", v)
	}
	if got := g.CountByLabel(ontology.Prefix); got != 1 {
		t.Errorf("prefixes = %d (the bogus-ASN row must be skipped)", got)
	}
}

func TestAtlasTargetDetection(t *testing.T) {
	g := runOn(t, NewRIPEAtlas(), map[string]string{
		source.PathRIPEAtlasProbes: `{"results": [
			{"id": 1, "asn_v4": 2497, "country_code": "JP", "address_v4": "192.0.2.9", "status": {"name": "Connected"}}
		]}`,
		source.PathRIPEAtlasMeas: `{"results": [
			{"id": 10, "type": "ping", "af": 4, "target": "www.example.com", "status": {"name": "Ongoing"}, "probes": [1]},
			{"id": 11, "type": "ping", "af": 4, "target": "198.51.100.7", "status": {"name": "Ongoing"}, "probes": [1]},
			{"id": 12, "type": "ping", "af": 6, "target": "ignored", "target_ip": "2001:db8::1", "status": {"name": "Stopped"}, "probes": []}
		]}`,
	})
	// Hostname target becomes a HostName node.
	m10 := singleNode(t, g, ontology.AtlasMeasurement, "id", graph.Int(10))
	rels := g.Rels(m10, graph.DirOut, []string{ontology.Target}, nil)
	if len(rels) != 1 {
		t.Fatalf("measurement 10 TARGET edges = %d", len(rels))
	}
	_, to := g.RelEndpoints(rels[0])
	if !g.NodeHasLabel(to, ontology.HostName) {
		t.Error("hostname target not a HostName node")
	}
	// Dotted-quad target becomes an IP node.
	m11 := singleNode(t, g, ontology.AtlasMeasurement, "id", graph.Int(11))
	rels = g.Rels(m11, graph.DirOut, []string{ontology.Target}, nil)
	_, to = g.RelEndpoints(rels[0])
	if !g.NodeHasLabel(to, ontology.IP) {
		t.Error("IPv4 target not an IP node")
	}
	// Explicit target_ip wins and canonicalizes.
	if ids := g.NodesByProp(ontology.IP, "ip", graph.String("2001:db8::1")); len(ids) != 1 {
		t.Error("target_ip not imported canonically")
	}
	// Probe wiring: LOCATED_IN AS, ASSIGNED IP, PART_OF measurement.
	probe := singleNode(t, g, ontology.AtlasProbe, "id", graph.Int(1))
	if got := g.Rels(probe, graph.DirOut, []string{ontology.LocatedIn}, nil); len(got) != 1 {
		t.Errorf("probe LOCATED_IN edges = %d", len(got))
	}
	if got := g.Rels(probe, graph.DirOut, []string{ontology.PartOf}, nil); len(got) != 2 {
		t.Errorf("probe PART_OF edges = %d, want 2 (measurements 10 and 11)", len(got))
	}
}

func TestNRODelegatedStatuses(t *testing.T) {
	g := runOn(t, NewNRODelegated(), map[string]string{
		source.PathNRODelegated: "2.0|nro|20240501|4|19830101|20240501|+0000\n" +
			"apnic|JP|asn|2497|1|19980101|allocated|handle-a\n" +
			"apnic|JP|ipv4|203.0.113.0|256|19980101|assigned|handle-a\n" +
			"arin||ipv4|198.51.100.0|256|19980101|available|arin-pool\n" +
			"ripencc|ZZ|ipv6|2001:db8::|32|19980101|reserved|ripe-pool\n",
	})
	as := singleNode(t, g, ontology.AS, "asn", graph.Int(2497))
	if got := g.Rels(as, graph.DirOut, []string{ontology.Assigned}, nil); len(got) != 1 {
		t.Errorf("AS ASSIGNED edges = %d", len(got))
	}
	p1 := singleNode(t, g, ontology.Prefix, "prefix", graph.String("203.0.113.0/24"))
	if got := g.Rels(p1, graph.DirOut, []string{ontology.Assigned}, nil); len(got) != 1 {
		t.Errorf("assigned prefix edges = %d", len(got))
	}
	p2 := singleNode(t, g, ontology.Prefix, "prefix", graph.String("198.51.100.0/24"))
	if got := g.Rels(p2, graph.DirOut, []string{ontology.Available}, nil); len(got) != 1 {
		t.Errorf("available prefix edges = %d", len(got))
	}
	p3 := singleNode(t, g, ontology.Prefix, "prefix", graph.String("2001:db8::/32"))
	if got := g.Rels(p3, graph.DirOut, []string{ontology.Reserved}, nil); len(got) != 1 {
		t.Errorf("reserved prefix edges = %d", len(got))
	}
	// Both resources share the same opaque-id node (same holder).
	holder := singleNode(t, g, ontology.OpaqueID, "id", graph.String("handle-a"))
	if got := g.Degree(holder, graph.DirIn, nil); got != 2 {
		t.Errorf("holder in-degree = %d, want 2", got)
	}
	// ZZ country codes are skipped.
	if got := g.Rels(p1, graph.DirOut, []string{ontology.CountryRel}, nil); len(got) != 1 {
		t.Errorf("JP prefix COUNTRY edges = %d", len(got))
	}
	if got := g.Rels(p3, graph.DirOut, []string{ontology.CountryRel}, nil); len(got) != 0 {
		t.Errorf("ZZ prefix COUNTRY edges = %d, want 0", len(got))
	}
}

func TestAliceLGResolvesIXPByName(t *testing.T) {
	g := runOn(t, NewAliceLG("amsix"), map[string]string{
		source.PathAliceLGPrefix + "amsix/neighbors.json": `{
			"ixp_name": "IX-NL-01",
			"neighbors": [
				{"asn": 2497, "description": "IIJ", "state": "up"},
				{"asn": 65001, "description": "", "state": "up"}
			]
		}`,
	})
	ixp := singleNode(t, g, ontology.IXP, "name", graph.String("IX-NL-01"))
	if got := g.Degree(ixp, graph.DirIn, []string{ontology.MemberOf}); got != 2 {
		t.Errorf("MEMBER_OF edges = %d", got)
	}
}

func TestBGPToolsTagsQuotedCSV(t *testing.T) {
	g := runOn(t, NewBGPToolsTags(), map[string]string{
		source.PathBGPToolsTags: "AS2497,\"Internet Service Provider\"\nAS65001,\"DDoS Mitigation\"\n",
	})
	tag := singleNode(t, g, ontology.Tag, "label", graph.String("DDoS Mitigation"))
	if got := g.Degree(tag, graph.DirIn, []string{ontology.Categorized}); got != 1 {
		t.Errorf("CATEGORIZED edges = %d", got)
	}
}

func TestIHRROVCommaLabelImport(t *testing.T) {
	g := runOn(t, NewIHRROV(), map[string]string{
		source.PathIHRROV: "prefix,origin_asn,rpki_status,irr_status\n" +
			"\"192.0.2.0/24\",2497,\"RPKI Invalid, more specific\",\"IRR NotFound\"\n",
	})
	// The comma-bearing tag must survive as one label.
	tag := singleNode(t, g, ontology.Tag, "label", graph.String("RPKI Invalid, more specific"))
	rels := g.Rels(tag, graph.DirIn, []string{ontology.Categorized}, nil)
	if len(rels) != 1 {
		t.Fatalf("CATEGORIZED edges = %d", len(rels))
	}
	if v, _ := g.RelProp(rels[0], "origin_asn").AsInt(); v != 2497 {
		t.Errorf("origin_asn = %v", v)
	}
}

func TestCiscoUmbrellaHostVsDomainSplit(t *testing.T) {
	g := runOn(t, NewCiscoUmbrella(), map[string]string{
		source.PathCiscoUmbrella: "1,example.com\n2,www.example.com\n3,api.cdn.example.net\n",
	})
	if got := g.CountByLabel(ontology.DomainName); got != 1 {
		t.Errorf("DomainName nodes = %d, want 1 (apex only)", got)
	}
	if got := g.CountByLabel(ontology.HostName); got != 2 {
		t.Errorf("HostName nodes = %d, want 2 (FQDNs)", got)
	}
}
