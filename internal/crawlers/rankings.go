package crawlers

import (
	"context"
	"strconv"
	"strings"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/netutil"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// TrancoRanking is the canonical Tranco node name used by paper queries
// (Listings 4-6).
const TrancoRanking = "Tranco top 1M"

// Tranco imports the Tranco top-1M list: the popularity ranking both
// reproduced studies are built on.
type Tranco struct{ ingest.Base }

// NewTranco returns the crawler.
func NewTranco() *Tranco {
	return &Tranco{ingest.Base{
		Org: "Tranco", Name: "tranco.top1m",
		InfoURL: "https://tranco-list.eu", DataURL: source.PathTranco,
	}}
}

// Run implements ingest.Crawler.
func (c *Tranco) Run(ctx context.Context, s *ingest.Session) error {
	ranking, err := s.Node(ontology.Ranking, TrancoRanking)
	if err != nil {
		return err
	}
	return fetchCSV(ctx, s, source.PathTranco, false, func(rec []string) error {
		if len(rec) < 2 {
			return nil
		}
		rank, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil
		}
		dom, err := s.Node(ontology.DomainName, rec[1])
		if err != nil {
			return err
		}
		return s.Link(ontology.Rank, dom, ranking, graph.Props{"rank": graph.Int(int64(rank))})
	})
}

// CiscoUmbrella imports the Cisco Umbrella popularity list. Umbrella ranks
// hostnames (FQDNs), so entries with more than two labels become HostName
// nodes while registered domains become DomainName nodes, as in IYP.
type CiscoUmbrella struct{ ingest.Base }

// NewCiscoUmbrella returns the crawler.
func NewCiscoUmbrella() *CiscoUmbrella {
	return &CiscoUmbrella{ingest.Base{
		Org: "Cisco", Name: "cisco.umbrella_top1m",
		InfoURL: "https://s3-us-west-1.amazonaws.com/umbrella-static/index.html",
		DataURL: source.PathCiscoUmbrella,
	}}
}

// Run implements ingest.Crawler.
func (c *CiscoUmbrella) Run(ctx context.Context, s *ingest.Session) error {
	ranking, err := s.Node(ontology.Ranking, "Cisco Umbrella Top 1M")
	if err != nil {
		return err
	}
	return fetchCSV(ctx, s, source.PathCiscoUmbrella, false, func(rec []string) error {
		if len(rec) < 2 {
			return nil
		}
		rank, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil
		}
		host := netutil.CanonicalHostname(rec[1])
		entity := ontology.DomainName
		if strings.Count(host, ".") > 1 {
			entity = ontology.HostName
		}
		node, err := s.Node(entity, host)
		if err != nil {
			return err
		}
		return s.Link(ontology.Rank, node, ranking, graph.Props{"rank": graph.Int(int64(rank))})
	})
}
