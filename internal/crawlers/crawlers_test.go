package crawlers

import (
	"context"
	"sync"
	"testing"

	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/simnet"
	"iyp/internal/source"
)

// shared fixture: one small simulated Internet + rendered catalog + fully
// crawled graph, built once for the whole package.
var (
	fixtureOnce sync.Once
	fixInternet *simnet.Internet
	fixCatalog  *source.Catalog
	fixGraph    *graph.Graph
	fixReport   ingest.Report
)

func fixture(t *testing.T) (*simnet.Internet, *source.Catalog, *graph.Graph) {
	t.Helper()
	fixtureOnce.Do(func() {
		in, err := simnet.Generate(simnet.DefaultConfig().Scale(0.05))
		if err != nil {
			t.Fatal(err)
		}
		fixInternet = in
		fixCatalog = source.Render(in)
		fixGraph = graph.New()
		for _, e := range ontology.Entities() {
			if e.IdentityKey != "" {
				fixGraph.EnsureIndex(e.Name, e.IdentityKey)
			}
		}
		p := &ingest.Pipeline{Graph: fixGraph, Fetcher: fixCatalog, Crawlers: All(), Concurrency: 4}
		rep, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		fixReport = rep
	})
	return fixInternet, fixCatalog, fixGraph
}

func TestRegistryMatchesTable8(t *testing.T) {
	cs := All()
	if len(cs) != 47 {
		t.Errorf("crawlers = %d, want 47", len(cs))
	}
	// The paper's abstract says "23 organizations" while its Table 8
	// enumerates 21 provider rows; this registry reproduces the table
	// (plus UTwente credited separately for the DNS dependency graph).
	orgs := Organizations()
	if len(orgs) != 22 {
		t.Errorf("organizations = %d, want 22: %v", len(orgs), orgs)
	}
	// Dataset names are unique and follow the <org>.<dataset> style.
	seen := map[string]bool{}
	for _, c := range cs {
		ref := c.Reference()
		if ref.Name == "" || ref.Organization == "" {
			t.Errorf("crawler with empty reference: %+v", ref)
		}
		if seen[ref.Name] {
			t.Errorf("duplicate dataset name %q", ref.Name)
		}
		seen[ref.Name] = true
	}
}

func TestAllCrawlersSucceedOnRenderedData(t *testing.T) {
	fixture(t)
	for _, c := range fixReport.Crawls {
		if c.Err != nil {
			t.Errorf("crawler %s failed: %v", c.Dataset, c.Err)
		}
		if c.LinksCreated == 0 {
			t.Errorf("crawler %s imported no relationships", c.Dataset)
		}
	}
}

func TestCrawledGraphShape(t *testing.T) {
	in, _, g := fixture(t)

	// Every simulated AS must exist exactly once.
	if got := g.CountByLabel(ontology.AS); got < len(in.ASes) {
		t.Errorf("AS nodes = %d, want >= %d", got, len(in.ASes))
	}
	// All prefixes from pfx2asn.
	if got := g.CountByLabel(ontology.Prefix); got < len(in.Prefixes) {
		t.Errorf("Prefix nodes = %d, want >= %d", got, len(in.Prefixes))
	}
	// Tranco ranking node with one RANK edge per domain.
	ranks := g.NodesByProp(ontology.Ranking, "name", graph.String("Tranco top 1M"))
	if len(ranks) != 1 {
		t.Fatalf("Tranco ranking nodes = %d", len(ranks))
	}
	if deg := g.Degree(ranks[0], graph.DirBoth, []string{ontology.Rank}); deg != len(in.Domains) {
		t.Errorf("RANK degree = %d, want %d", deg, len(in.Domains))
	}

	st := g.Stats()
	// Relationship types that must exist after a full crawl.
	for _, ty := range []string{
		ontology.Originate, ontology.ResolvesTo, ontology.ManagedBy,
		ontology.Categorized, ontology.CountryRel, ontology.MemberOf,
		ontology.PeersWith, ontology.Rank, ontology.DependsOn,
		ontology.RouteOriginAuthorization, ontology.Assigned,
		ontology.NameRel, ontology.Population, ontology.ExternalID,
		ontology.LocatedIn, ontology.SiblingOf, ontology.Target,
		ontology.Website, ontology.QueriedFrom,
	} {
		if st.ByRelType[ty] == 0 {
			t.Errorf("no %s relationships after full crawl", ty)
		}
	}
	// Node labels that must exist.
	for _, l := range []string{
		ontology.AS, ontology.Prefix, ontology.IP, ontology.HostName,
		ontology.DomainName, ontology.AuthoritativeNameServer,
		ontology.Country, ontology.Organization, ontology.IXP,
		ontology.Facility, ontology.Tag, ontology.OpaqueID,
		ontology.AtlasProbe, ontology.AtlasMeasurement,
		ontology.BGPCollector, ontology.URL, ontology.Estimate,
		ontology.CaidaIXID, ontology.PeeringdbIXID, ontology.PeeringdbOrgID,
		ontology.PeeringdbFacID, ontology.Ranking, ontology.Name,
	} {
		if st.ByLabel[l] == 0 {
			t.Errorf("no %s nodes after full crawl", l)
		}
	}
}

func TestOriginationsMatchModel(t *testing.T) {
	in, _, g := fixture(t)
	// Spot-check: every model prefix's origin has an ORIGINATE edge from
	// the bgpkit dataset.
	checked := 0
	for _, p := range in.Prefixes {
		if checked >= 50 {
			break
		}
		checked++
		pfxNodes := g.NodesByProp(ontology.Prefix, "prefix", graph.String(p.CIDR))
		if len(pfxNodes) != 1 {
			t.Fatalf("prefix %s: %d nodes", p.CIDR, len(pfxNodes))
		}
		asNodes := g.NodesByProp(ontology.AS, "asn", graph.Int(int64(p.Origin.ASN)))
		if len(asNodes) != 1 {
			t.Fatalf("AS%d: %d nodes", p.Origin.ASN, len(asNodes))
		}
		found := false
		for _, rid := range g.Rels(pfxNodes[0], graph.DirIn, []string{ontology.Originate}, nil) {
			from, _ := g.RelEndpoints(rid)
			if from == asNodes[0] {
				found = true
				// Provenance present.
				if v, _ := g.RelProp(rid, ontology.PropReferenceName).AsString(); v == "" {
					t.Error("ORIGINATE edge lacks provenance")
				}
			}
		}
		if !found {
			t.Errorf("no ORIGINATE %d -> %s", p.Origin.ASN, p.CIDR)
		}
	}
}

func TestSameLinkFromMultipleDatasets(t *testing.T) {
	// Paper §2.3: semantically identical links from different datasets
	// coexist as distinct relationships distinguished by reference_name.
	// BGPKIT and PCH both provide originations.
	in, _, g := fixture(t)
	var moas *simnet.Prefix
	for i, p := range in.Prefixes {
		if i%10 != 9 { // present in the PCH snapshot (see renderPCH)
			moas = p
			break
		}
	}
	pfxNode := g.NodesByProp(ontology.Prefix, "prefix", graph.String(moas.CIDR))[0]
	sources := map[string]bool{}
	for _, rid := range g.Rels(pfxNode, graph.DirIn, []string{ontology.Originate}, nil) {
		ref, _ := g.RelProp(rid, ontology.PropReferenceName).AsString()
		sources[ref] = true
	}
	if !sources["bgpkit.pfx2asn"] {
		t.Errorf("missing bgpkit origination: %v", sources)
	}
	if !sources["pch.daily_routing_snapshots_v4"] && !sources["pch.daily_routing_snapshots_v6"] {
		t.Errorf("missing pch origination: %v", sources)
	}
}

func TestNameserverNodesCarryBothLabels(t *testing.T) {
	_, _, g := fixture(t)
	// openintel.ns creates HostName nodes with the
	// AuthoritativeNameServer label — one node, two labels.
	ids := g.NodesByLabel(ontology.AuthoritativeNameServer)
	if len(ids) == 0 {
		t.Fatal("no nameserver nodes")
	}
	for _, id := range ids[:min(20, len(ids))] {
		if !g.NodeHasLabel(id, ontology.HostName) {
			t.Errorf("nameserver node %d lacks HostName label", id)
		}
	}
}

func TestROVTagsPresent(t *testing.T) {
	_, _, g := fixture(t)
	for _, label := range []string{"RPKI Valid", "RPKI NotFound", "IRR Valid"} {
		tags := g.NodesByProp(ontology.Tag, "label", graph.String(label))
		if len(tags) != 1 {
			t.Errorf("tag %q: %d nodes", label, len(tags))
			continue
		}
		if g.Degree(tags[0], graph.DirBoth, []string{ontology.Categorized}) == 0 {
			t.Errorf("tag %q has no CATEGORIZED edges", label)
		}
	}
}

func TestV4RangeToPrefixes(t *testing.T) {
	cases := []struct {
		start string
		count int
		want  []string
	}{
		{"10.0.0.0", 256, []string{"10.0.0.0/24"}},
		{"10.0.0.0", 4096, []string{"10.0.0.0/20"}},
		{"10.0.0.0", 768, []string{"10.0.0.0/23", "10.0.2.0/24"}},
		{"10.0.1.0", 512, []string{"10.0.1.0/24", "10.0.2.0/24"}}, // alignment forces split
	}
	for _, tc := range cases {
		got, err := v4RangeToPrefixes(tc.start, tc.count)
		if err != nil {
			t.Errorf("v4RangeToPrefixes(%s, %d): %v", tc.start, tc.count, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("v4RangeToPrefixes(%s, %d) = %v, want %v", tc.start, tc.count, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("v4RangeToPrefixes(%s, %d)[%d] = %s, want %s", tc.start, tc.count, i, got[i], tc.want[i])
			}
		}
	}
	if _, err := v4RangeToPrefixes("bogus", 256); err == nil {
		t.Error("invalid start should error")
	}
}

func TestCrawlerMissingDatasetFails(t *testing.T) {
	// A crawler against an empty catalog must return an error (which the
	// pipeline then isolates), not panic.
	g := graph.New()
	s := ingest.NewSession(g, source.NewCatalog(), NewTranco().Reference())
	if err := NewTranco().Run(context.Background(), s); err == nil {
		t.Error("crawler against empty catalog should fail")
	}
}

func TestCrawlerToleratesMalformedRows(t *testing.T) {
	// Malformed rows are skipped; valid rows still import.
	c := source.NewCatalog()
	c.Put(source.PathTranco, []byte("1,good.com\nnot-a-rank,bad.com\n2,also-good.org\n"))
	g := graph.New()
	s := ingest.NewSession(g, c, NewTranco().Reference())
	if err := NewTranco().Run(context.Background(), s); err != nil {
		t.Fatalf("tolerant crawler errored: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := g.CountByLabel(ontology.DomainName); got != 2 {
		t.Errorf("domains = %d, want 2", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFullCrawlValidatesAgainstOntology(t *testing.T) {
	// The whole pipeline's output must conform to the ontology: only
	// defined entities and relationship types, canonical identifiers,
	// provenance on every relationship. (Refinement has not run here, so
	// only crawler output is validated.)
	_, _, g := fixture(t)
	if got := ontology.ValidateGraph(g, 20); len(got) != 0 {
		t.Errorf("crawled graph violates the ontology:\n%v", got)
	}
}
