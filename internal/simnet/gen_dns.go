package simnet

import (
	"fmt"
	"net/netip"
	"sort"
)

// ccTLDWeights spreads the non-gTLD share of the domain list over
// country-code TLDs. Russia, China and the UK lead, which is what produces
// the hierarchical-dependency concentration of Figure 5.
var ccTLDWeights = []struct {
	TLD     string
	Country string
	Weight  float64
}{
	{"ru", "RU", 0.14}, {"cn", "CN", 0.12}, {"uk", "GB", 0.11},
	{"de", "DE", 0.09}, {"jp", "JP", 0.07}, {"fr", "FR", 0.06},
	{"br", "BR", 0.05}, {"in", "IN", 0.05}, {"nl", "NL", 0.04},
	{"pl", "PL", 0.04}, {"it", "IT", 0.03}, {"es", "ES", 0.03},
	{"ua", "UA", 0.03}, {"tr", "TR", 0.03}, {"se", "SE", 0.02},
	{"ch", "CH", 0.02}, {"au", "AU", 0.02}, {"kr", "KR", 0.02},
	{"ca", "CA", 0.02}, {"mx", "MX", 0.01},
}

func (g *generator) genTLDs() {
	registries := g.byCategory[CatRegistry]
	if len(registries) == 0 {
		registries = g.in.ASes[:1]
	}
	// One registry operator per country: assigned once, never reused for
	// another country (a TLD's hierarchical dependency must be stable).
	assigned := map[string]*AS{}
	used := map[*AS]bool{}
	ri := 0
	nextRegistry := func(cc string) *AS {
		if a, ok := assigned[cc]; ok {
			return a
		}
		// Prefer an unused registry AS already in the right country.
		var pick *AS
		for _, a := range registries {
			if !used[a] && a.Country == cc {
				pick = a
				break
			}
		}
		// Otherwise repatriate the next unused registry AS.
		if pick == nil {
			for ; ri < len(registries); ri++ {
				if !used[registries[ri]] {
					pick = registries[ri]
					break
				}
			}
		}
		// Registry pool exhausted (tiny configs): promote a government
		// or enterprise AS from that country, else any unused AS.
		if pick == nil {
			for _, pool := range []string{CatGovernment, CatEnterprise, CatISP} {
				for _, a := range g.byCategory[pool] {
					if !used[a] && (a.Country == cc || pick == nil) {
						pick = a
						if a.Country == cc {
							break
						}
					}
				}
				if pick != nil && pick.Country == cc {
					break
				}
			}
		}
		if pick == nil {
			pick = registries[0] // degenerate fallback
		}
		pick.Country = cc
		pick.RIR = rirForCountry(cc)
		used[pick] = true
		assigned[cc] = pick
		return pick
	}

	// Generic TLDs operated from the US.
	gtlds := make([]string, 0, len(g.cfg.DNS.TLDShares))
	for t := range g.cfg.DNS.TLDShares {
		gtlds = append(gtlds, t)
	}
	sort.Strings(gtlds)
	for _, t := range gtlds {
		g.in.TLDs = append(g.in.TLDs, &TLD{
			Name: t, CC: false, Country: "US", RegistryAS: nextRegistry("US"),
		})
	}
	for _, cw := range ccTLDWeights {
		g.in.TLDs = append(g.in.TLDs, &TLD{
			Name: cw.TLD, CC: true, Country: cw.Country,
			RegistryAS: nextRegistry(cw.Country),
		})
	}
}

func (g *generator) tldByName(name string) *TLD {
	for _, t := range g.in.TLDs {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// --- nameserver providers ---

func isComNetOrg(tld string) bool { return tld == "com" || tld == "net" || tld == "org" }

func (g *generator) genNSProviders() {
	dnsASes := append([]*AS(nil), g.byCategory[CatDNS]...)
	dnsASes = append(dnsASes, g.byCategory[CatHosting]...)
	dnsASes = append(dnsASes, g.byCategory[CatCloud]...)
	if len(dnsASes) == 0 {
		dnsASes = g.in.ASes
	}

	n := g.cfg.NumNSProviders
	managed := int(0.45 * float64(g.cfg.NumDomains))
	sizes := g.r.zipfSizes(managed, n, 1.25)
	groupTarget := max(8, int(0.006*float64(g.cfg.NumDomains)))

	// Zone TLDs are assigned against a domain-weighted quota: ~30% of
	// managed domains must sit behind out-of-zone (.io) nameservers so the
	// in-zone glue share of Table 3 lands near the calibrated 76%.
	var cumAll, cumIo int
	for i := 0; i < n; i++ {
		a := dnsASes[i%len(dnsASes)]
		zoneTLD := "com"
		cumAll += sizes[i]
		if float64(cumIo+sizes[i]) < 0.45*float64(cumAll) {
			zoneTLD = "io"
			cumIo += sizes[i]
		} else if g.r.bernoulli(0.12) {
			zoneTLD = "net"
		} else if g.r.bernoulli(0.12) {
			zoneTLD = "org"
		}
		p := &NSProvider{
			ID:      i + 1,
			Name:    fmt.Sprintf("dnsprov%d", i+1),
			Org:     a.Org,
			AS:      a,
			Zone:    fmt.Sprintf("dnsprov%d.%s", i+1, zoneTLD),
			ZoneTLD: zoneTLD,
		}
		// Nameserver-prefix RPKI coverage with a popularity bias: the
		// biggest providers (lowest index = largest Zipf share) are
		// covered, the tail mostly is not. Prefix-level coverage lands
		// near cfg.DNS.NSRPKICoverage while domain-level coverage is
		// much higher (paper §5.1.1: 48% vs 84%).
		// Band probabilities scale with the configured nameserver-prefix
		// coverage (0.48 reproduces the paper's 2024 stratification; a
		// 2015-calibrated config shrinks all bands proportionally).
		nsCov := g.cfg.DNS.NSRPKICoverage
		var wantCovered bool
		switch {
		case i < n*32/100:
			wantCovered = g.r.bernoulli(minF(1, nsCov/0.48))
		case i < n*70/100:
			wantCovered = g.r.bernoulli(nsCov * 0.62)
		default:
			wantCovered = g.r.bernoulli(nsCov * 0.31)
		}

		// Carve this provider's nameserver hosting prefixes out of its
		// AS's address space (up to 3 v4, 1 v6). The AS's first three v4
		// prefixes are skipped when possible: they belong to the
		// customer-nameserver pool stratified separately in genRPKI.
		var v4all, v6pool []*Prefix
		for _, pf := range a.Prefixes {
			if pf.AF == 4 {
				v4all = append(v4all, pf)
			}
			if pf.AF == 6 && len(v6pool) < 1 {
				v6pool = append(v6pool, pf)
			}
		}
		// Take the AS's *last* v4 prefixes: the first three belong to the
		// customer-nameserver pool and the low-index content prefixes to
		// web hosting, both stratified separately in genRPKI.
		v4pool := v4all
		if len(v4pool) > 3 {
			v4pool = v4pool[len(v4pool)-3:]
		}
		for _, pf := range append(append([]*Prefix(nil), v4pool...), v6pool...) {
			forceRPKI(pf, wantCovered)
		}

		nVariants := len(v4pool)
		if sizes[i] > 0 {
			nVariants = clampInt(sizes[i]/groupTarget, 1, 400)
		}
		for v := 0; v < nVariants; v++ {
			// Variant size drives the best-practice buckets of Table 3:
			// 1 NS (not meet), 2 NS (meet), 3+ (exceed).
			nServers := g.sampleNSCount()
			variant := &NSVariant{}
			for s := 0; s < nServers; s++ {
				// Slot-indexed prefix choice plus /24-wrapped addresses
				// keep the whole provider inside a handful of /24s, the
				// consolidation signature Table 4's grouping measures.
				vp := v4pool[s%max(len(v4pool), 1)]
				ns := &Nameserver{
					Name:     fmt.Sprintf("ns%d-%02d.%s", s+1, v+1, p.Zone),
					IPv4:     nsIP(vp),
					V4Prefix: vp,
					Provider: p,
				}
				if len(v6pool) > 0 {
					ns.IPv6 = v6pool[0].NextHostIP()
					ns.V6Prefix = v6pool[0]
				}
				variant.Servers = append(variant.Servers, ns)
			}
			p.Variants = append(p.Variants, variant)
		}
		g.in.NSProviders = append(g.in.NSProviders, p)
	}
	// Third-party dependency chains: the second provider (an
	// Akamai-like infrastructure operator) hosts the zones of roughly a
	// third of the other providers. Providers 0 and 1 self-host.
	if len(g.in.NSProviders) > 2 {
		infra := g.in.NSProviders[1]
		for _, p := range g.in.NSProviders[2:] {
			if g.r.bernoulli(0.35) {
				p.ThirdParty = infra
			}
		}
	}
}

// sampleNSCount draws a nameserver-set size matching the calibrated
// meet/exceed/not-meet shares (normalized over kept domains).
func (g *generator) sampleNSCount() int {
	d := g.cfg.DNS
	kept := 1 - d.DiscardedShare
	x := g.r.Float64() * kept
	switch {
	case x < d.NotMeetShare:
		return 1
	case x < d.NotMeetShare+d.MeetShare:
		return 2
	default:
		return g.r.intBetween(3, 7)
	}
}

// forceRPKI overrides a prefix's ROA state (used to stratify nameserver
// hosting prefixes after genRPKI's category-level pass).
func forceRPKI(p *Prefix, covered bool) {
	if covered {
		if p.ROA == nil {
			pp := netip.MustParsePrefix(p.CIDR)
			p.ROA = &ROA{Prefix: p.CIDR, ASN: p.Origin.ASN, MaxLength: pp.Bits()}
		}
		if p.RPKIStatus != RPKIInvalid && p.RPKIStatus != RPKIInvalidMoreSpecific {
			p.RPKIStatus = RPKIValid
		}
		return
	}
	p.ROA = nil
	p.RPKIStatus = RPKINotFound
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// --- domains ---

// hostBand describes hosting-category shares for a popularity band. The
// asymmetry between top and bottom is what reproduces Table 2's
// counter-intuitive result: bottom-100k prefixes have better RPKI coverage
// than top-100k prefixes, because top domains often sit on dedicated
// enterprise space with poor coverage, while their CDN-hosted share
// concentrates on few (well-covered) prefixes.
type hostBand struct {
	cats    []string
	weights []float64
}

var (
	topBand = hostBand{
		cats:    []string{CatCDN, CatCloud, CatHosting, CatEnterprise, CatISP},
		weights: []float64{0.30, 0.12, 0.13, 0.35, 0.10},
	}
	midBand = hostBand{
		cats:    []string{CatCDN, CatCloud, CatHosting, CatEnterprise, CatISP, CatAcademic, CatGovernment},
		weights: []float64{0.22, 0.28, 0.35, 0.05, 0.06, 0.02, 0.02},
	}
	bottomBand = hostBand{
		cats:    []string{CatCDN, CatCloud, CatHosting, CatEnterprise, CatISP, CatAcademic, CatGovernment},
		weights: []float64{0.05, 0.25, 0.52, 0.05, 0.09, 0.02, 0.02},
	}
)

func (g *generator) genDomains() {
	n := g.cfg.NumDomains

	// TLD assignment honoring configured shares; remainder spreads over
	// ccTLDs by weight.
	tldList := g.tldAssignment(n)

	// Managed-provider assignment pool: sizes were fixed in
	// genNSProviders; rebuild the same Zipf split and shuffle so
	// provider size correlates only weakly with rank.
	managed := int(0.45 * float64(n))
	provSizes := g.r.zipfSizes(managed, len(g.in.NSProviders), 1.25)
	var provPool []*NSProvider
	for i, s := range provSizes {
		for j := 0; j < s; j++ {
			provPool = append(provPool, g.in.NSProviders[i])
		}
	}
	g.r.Shuffle(len(provPool), func(i, j int) { provPool[i], provPool[j] = provPool[j], provPool[i] })

	// Reseller NS sets for "hosted-unique" domains that share a small
	// default set, keyed per hosting AS.
	resellerSets := map[uint32][]*NSVariant{}

	hostingASes := g.byCategory[CatHosting]
	if len(hostingASes) == 0 {
		hostingASes = g.in.ASes
	}

	provIdx := 0
	for i := 0; i < n; i++ {
		tld := tldList[i]
		d := &Domain{
			Name: fmt.Sprintf("%s%d.%s", domainWord(g.r), i+1, tld.Name),
			TLD:  tld,
			Rank: i + 1,
		}
		g.assignHosting(d, i, n)

		// Glue: a share of com/net/org domains has no usable glue and
		// lands in the study's "discarded" bucket; other TLDs rarely.
		noGlueP := 0.05
		if isComNetOrg(tld.Name) {
			noGlueP = g.cfg.DNS.DiscardedShare
		}
		if g.r.bernoulli(noGlueP) {
			d.HasGlue = false
			g.in.Domains = append(g.in.Domains, d)
			continue
		}
		d.HasGlue = true

		// Nameserver deployment mode.
		mode := g.r.Float64()
		switch {
		case mode < 0.45 && provIdx < len(provPool):
			// Managed-DNS provider.
			p := provPool[provIdx]
			provIdx++
			d.Provider = p
			v := p.Variants[g.r.Intn(len(p.Variants))]
			d.NS = v.Servers
			d.InZoneGlue = isComNetOrg(p.ZoneTLD)
		case mode < 0.88:
			// Hosted-unique: nameservers named per customer but living
			// in a hosting provider's address space.
			host := hostingASes[g.r.powerLawInt(0, len(hostingASes)-1, 1.3)]
			if g.r.bernoulli(0.4) {
				// Reseller default set shared by a handful of domains.
				sets := resellerSets[host.ASN]
				if len(sets) == 0 || g.r.bernoulli(0.15) {
					v := g.makeUniqueNS(host, fmt.Sprintf("res%d.hoster%d.com", len(sets)+1, host.ASN), g.sampleNSCount())
					resellerSets[host.ASN] = append(sets, v)
					d.NS = v.Servers
				} else {
					d.NS = sets[g.r.Intn(len(sets))].Servers
				}
				d.InZoneGlue = true // reseller zones are .com above
			} else {
				var base string
				if g.r.bernoulli(0.35) {
					base = d.Name // ns under the customer domain
					d.InZoneGlue = isComNetOrg(tld.Name)
				} else {
					base = fmt.Sprintf("cust%d.hoster%d.com", i, host.ASN)
					d.InZoneGlue = true
				}
				v := g.makeUniqueNS(host, base, g.sampleNSCount())
				d.NS = v.Servers
			}
		default:
			// Self-hosted on the domain's own infrastructure.
			d.SelfHosted = true
			host := d.HostAS
			if host == nil {
				host = g.in.ASes[g.r.Intn(len(g.in.ASes))]
			}
			v := g.makeUniqueNS(host, d.Name, g.sampleNSCount())
			d.NS = v.Servers
			d.InZoneGlue = isComNetOrg(tld.Name)
		}
		g.in.Domains = append(g.in.Domains, d)
	}
}

// tldAssignment builds the per-rank TLD list.
func (g *generator) tldAssignment(n int) []*TLD {
	var (
		tlds    []*TLD
		weights []float64
		gsum    float64
	)
	for t, share := range g.cfg.DNS.TLDShares {
		gsum += share
		tlds = append(tlds, g.tldByName(t))
		weights = append(weights, share)
	}
	// Stable iteration: sort by name alongside weights.
	sort.Sort(&tldSorter{tlds, weights})
	rest := 1 - gsum
	var ccsum float64
	for _, cw := range ccTLDWeights {
		ccsum += cw.Weight
	}
	for _, cw := range ccTLDWeights {
		tlds = append(tlds, g.tldByName(cw.TLD))
		weights = append(weights, rest*cw.Weight/ccsum)
	}
	out := make([]*TLD, n)
	for i := range out {
		out[i] = tlds[g.r.weightedIndex(weights)]
	}
	return out
}

type tldSorter struct {
	tlds    []*TLD
	weights []float64
}

func (s *tldSorter) Len() int           { return len(s.tlds) }
func (s *tldSorter) Less(i, j int) bool { return s.tlds[i].Name < s.tlds[j].Name }
func (s *tldSorter) Swap(i, j int) {
	s.tlds[i], s.tlds[j] = s.tlds[j], s.tlds[i]
	s.weights[i], s.weights[j] = s.weights[j], s.weights[i]
}

// assignHosting picks the apex hosting for a ranked domain.
func (g *generator) assignHosting(d *Domain, rank, n int) {
	band := midBand
	switch {
	case rank < n/10:
		band = topBand
	case rank >= n*9/10:
		band = bottomBand
	}
	cat := band.cats[g.r.weightedIndex(band.weights)]
	pool := g.byCategory[cat]
	if len(pool) == 0 {
		pool = g.in.ASes
	}
	// Zipf over the category's ASes: big CDNs absorb most sites.
	a := pool[g.r.powerLawInt(0, len(pool)-1, 1.1)]
	d.HostAS = a
	var v4, v6 []*Prefix
	for _, p := range a.Prefixes {
		if p.AF == 4 {
			v4 = append(v4, p)
		} else {
			v6 = append(v6, p)
		}
	}
	// Hosting companies keep their first prefixes for customer
	// nameservers; web content lives in the rest.
	if cat == CatHosting && len(v4) > 3 {
		v4 = v4[3:]
	}
	if len(v4) == 0 {
		return // unresolvable apex; rare and harmless
	}
	nIPs := 1
	if rank < n/10 {
		nIPs = g.r.intBetween(1, 3)
	}
	// Consolidation: CDN and cloud hosting concentrates on the
	// first (well-covered) prefixes; others spread out.
	zipfExp := 2.2
	switch cat {
	case CatHosting:
		zipfExp = 1.8
	case CatISP, CatEnterprise:
		zipfExp = 0.5
	}
	for k := 0; k < nIPs; k++ {
		p := v4[g.r.powerLawInt(0, len(v4)-1, zipfExp)]
		p.WebHosted = true
		d.HostIPv4 = append(d.HostIPv4, p.NextHostIP())
		d.HostPrefix = append(d.HostPrefix, p)
	}
	if len(v6) > 0 && g.r.bernoulli(0.5) {
		p := v6[g.r.powerLawInt(0, len(v6)-1, zipfExp)]
		d.HostIPv6 = append(d.HostIPv6, p.NextHostIP())
		d.HostPrefix = append(d.HostPrefix, p)
	}
}

// makeUniqueNS creates a dedicated nameserver set under base, with IPs in
// the host AS's space.
func (g *generator) makeUniqueNS(host *AS, base string, count int) *NSVariant {
	var v4 []*Prefix
	for _, p := range host.Prefixes {
		if p.AF == 4 {
			v4 = append(v4, p)
		}
	}
	v := &NSVariant{}
	for s := 0; s < count; s++ {
		ns := &Nameserver{Name: fmt.Sprintf("ns%d.%s", s+1, base)}
		if len(v4) > 0 {
			p := v4[s%min(len(v4), 3)] // NS concentrated in few prefixes
			ns.IPv4 = nsIP(p)
			ns.V4Prefix = p
		}
		v.Servers = append(v.Servers, ns)
	}
	return v
}

// nsIP allocates a nameserver address from p's first /24, wrapping after
// 250 hosts: nameservers of one operator share a handful of /24s (and
// occasionally an address, as real anycast nameservers do).
func nsIP(p *Prefix) string {
	ip := ipFrom(p, p.HostedIPs%250)
	p.HostedIPs++
	return ip
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// hosterTLD deterministically assigns a hosting company's nameserver zone
// TLD (mostly .com, some .net/.io) from its ASN.
func hosterTLD(asn uint32) string {
	switch asn % 10 {
	case 0, 2, 4, 7:
		return "io"
	case 3:
		return "net"
	default:
		return "com"
	}
}

var domainWords = []string{
	"alpha", "breeze", "cobalt", "dune", "ember", "flux", "glade", "harbor",
	"iris", "juniper", "krait", "lumen", "mesa", "nova", "onyx", "pique",
	"quartz", "raven", "sable", "tundra", "umber", "vertex", "willow",
	"xenon", "yonder", "zephyr",
}

func domainWord(r *rng) string {
	return domainWords[r.Intn(len(domainWords))] + domainWords[r.Intn(len(domainWords))]
}

// --- rankings & query popularity ---

func (g *generator) genRankings() {
	umbrella := 1
	cloudflare := 1
	for i, d := range g.in.Domains {
		popTop := i < len(g.in.Domains)/2
		// Cisco Umbrella: DNS-popularity list, strongly overlapping
		// Tranco at the top.
		p := 0.45
		if popTop {
			p = 0.8
		}
		if g.r.bernoulli(p) {
			d.UmbrellaRank = umbrella
			umbrella++
		}
		// Cloudflare Radar ranking covers a smaller head.
		if i < len(g.in.Domains)*2/5 && g.r.bernoulli(0.8) {
			d.CloudflareRank = cloudflare
			cloudflare++
		}
		// QUERIED_FROM: popular domains see their top querying ASes.
		if i < len(g.in.Domains)/5 {
			k := g.r.intBetween(2, 5)
			for j := 0; j < k; j++ {
				cc := g.pickCountry()
				pool := g.eyeballs[cc]
				if len(pool) == 0 {
					continue
				}
				a := pool[g.r.powerLawInt(0, len(pool)-1, 1.4)]
				if !hasASN(d.TopQueryASNs, a.ASN) {
					d.TopQueryASNs = append(d.TopQueryASNs, a.ASN)
				}
			}
		}
	}
}
