package simnet

// Scale-benchmark generator. The full simnet pipeline (Generate + the 47
// dataset renderings + crawlers) tops out around paper scale because it
// models the statistical shape of every feed; the columnar-store benchmark
// instead needs raw graph volume — tens of millions of nodes — with the
// paper's *string profile*: a handful of labels, identity properties that
// are unique per node (ASNs, prefixes, IPs), and provenance strings drawn
// from a small dataset pool and repeated on every relationship. BuildScale
// streams that shape straight into a graph.Graph with no intermediate
// model, so a 100x graph costs only the graph's own memory.

import (
	"fmt"
	"strconv"

	"iyp/internal/graph"
)

// ScaleSpec sizes a scale-benchmark graph. Node count is
// ASes x (1 + PrefixesPerAS x (1 + IPsPerPrefix)) plus one node per
// country; relationship count is slightly higher (ORIGINATE + PART_OF +
// COUNTRY + PEERS_WITH).
type ScaleSpec struct {
	ASes          int
	PrefixesPerAS int
	IPsPerPrefix  int
	PeersPerAS    int
	Seed          int64
}

// ScaleSpecFor returns the calibrated spec at mult x the paper-scale
// baseline: mult=1 is ~100k nodes, mult=100 is ~10.05M nodes (the ISSUE's
// 100x bar).
func ScaleSpecFor(mult int) ScaleSpec {
	if mult < 1 {
		mult = 1
	}
	return ScaleSpec{
		ASes:          500 * mult,
		PrefixesPerAS: 40,
		IPsPerPrefix:  4,
		PeersPerAS:    2,
		Seed:          42,
	}
}

// Nodes is the exact node count BuildScale will produce for the spec.
func (s ScaleSpec) Nodes() int {
	return s.ASes*(1+s.PrefixesPerAS*(1+s.IPsPerPrefix)) + len(scaleCountries)
}

// scaleCountries is the alpha-2 pool ASes register in; the Zipf-ish pick
// below gives the aggregation benchmark a realistically skewed grouping.
var scaleCountries = []string{
	"US", "DE", "BR", "RU", "GB", "IN", "CN", "FR", "NL", "JP",
	"AU", "CA", "IT", "ES", "PL", "UA", "ID", "KR", "ZA", "MX",
	"AR", "SE", "CH", "TR", "VN", "TH", "RO", "CZ", "BD", "NG",
	"EG", "IR", "PK", "CO", "CL", "PH", "MY", "HK", "SG", "TW",
	"AT", "BE", "DK", "FI", "NO", "PT", "GR", "HU", "IE", "NZ",
}

// scaleProvenance is the reference_name pool stamped on relationships —
// the dataset names the paper's provenance model attaches to every edge.
// A real IYP build repeats each of these millions of times, which is
// exactly the redundancy the dictionary encoder exploits.
var scaleProvenance = []string{
	"bgpkit.pfx2asn", "ripe.as_names", "bgptools.tags", "peeringdb.ix",
	"ihr.hegemony", "openintel.tranco1m", "cloudflare.radar", "caida.asrank",
}

// BuildScale streams a deterministic AS/Prefix/IP topology into a fresh
// graph: per AS one COUNTRY edge and PeersPerAS PEERS_WITH edges, per
// prefix an ORIGINATE edge from its AS, per IP a PART_OF edge into its
// prefix. Identity strings (asn names, prefixes, addresses) are unique;
// country codes and provenance strings repeat from small pools. The
// returned graph is mutable; callers freeze or index as needed.
func BuildScale(spec ScaleSpec) *graph.Graph {
	g := graph.New()
	r := newRNG(spec.Seed)

	countryIDs := make([]graph.NodeID, len(scaleCountries))
	for i, cc := range scaleCountries {
		countryIDs[i] = g.AddNode([]string{"Country"}, graph.Props{
			"country_code": graph.String(cc),
		})
	}

	prov := func(i int) graph.Value {
		return graph.String(scaleProvenance[i%len(scaleProvenance)])
	}

	asIDs := make([]graph.NodeID, spec.ASes)
	prefixSeq := 0
	for a := 0; a < spec.ASes; a++ {
		asn := int64(64512 + a)
		ci := r.powerLawInt(0, len(scaleCountries)-1, 1.1)
		asID := g.AddNode([]string{"AS"}, graph.Props{
			"asn":          graph.Int(asn),
			"name":         graph.String("AS-" + strconv.FormatInt(asn, 10) + "-NET"),
			"country_code": graph.String(scaleCountries[ci]),
		})
		asIDs[a] = asID
		mustRel(g, "COUNTRY", asID, countryIDs[ci], graph.Props{
			"reference_name": prov(a),
		})

		for p := 0; p < spec.PrefixesPerAS; p++ {
			// The sequence number maps to unique dotted octets: with
			// PrefixesPerAS*ASes prefixes the top octet stays < 255
			// for any spec this package hands out.
			pfx := fmt.Sprintf("%d.%d.%d.0/24",
				1+(prefixSeq>>16), (prefixSeq>>8)&0xff, prefixSeq&0xff)
			prefixSeq++
			pfxID := g.AddNode([]string{"Prefix"}, graph.Props{
				"prefix": graph.String(pfx),
				"af":     graph.Int(4),
			})
			mustRel(g, "ORIGINATE", asID, pfxID, graph.Props{
				"reference_name": prov(a + p),
			})
			host := pfx[:len(pfx)-len("0/24")]
			for h := 0; h < spec.IPsPerPrefix; h++ {
				ipID := g.AddNode([]string{"IP"}, graph.Props{
					"ip": graph.String(host + strconv.Itoa(h+1)),
				})
				mustRel(g, "PART_OF", ipID, pfxID, graph.Props{
					"reference_name": prov(a + p + h),
				})
			}
		}
	}

	// Peering edges close the topology over already-created ASes.
	for a, asID := range asIDs {
		for k := 0; k < spec.PeersPerAS; k++ {
			peer := asIDs[r.Intn(len(asIDs))]
			if peer == asID {
				continue
			}
			mustRel(g, "PEERS_WITH", asID, peer, graph.Props{
				"reference_name": prov(a + k),
			})
		}
	}

	g.EnsureIndex("AS", "asn")
	return g
}

// mustRel panics on AddRel failure: BuildScale only wires node IDs it just
// created, so an error is a generator bug, not a runtime condition.
func mustRel(g *graph.Graph, typ string, from, to graph.NodeID, props graph.Props) {
	if _, err := g.AddRel(typ, from, to, props); err != nil {
		panic(fmt.Sprintf("simnet: scale generator: %v", err))
	}
}
