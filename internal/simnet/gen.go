package simnet

import (
	"fmt"
	"net/netip"
	"sort"

	"iyp/internal/netutil"
)

// Generate builds a synthetic Internet from cfg. Generation is
// deterministic: identical configs produce identical models.
func Generate(cfg Config) (*Internet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg: cfg,
		r:   newRNG(cfg.Seed),
		in: &Internet{
			Cfg:         cfg,
			Countries:   netutil.Countries(),
			Populations: map[string]int64{},
			asByASN:     map[uint32]*AS{},
		},
		v4cursor: netip.MustParseAddr("20.0.0.0"),
		v6cursor: netip.MustParseAddr("2400::"),
	}
	g.genOrgs()
	g.genASes()
	g.genTopology()
	g.genPrefixes()
	g.genRPKI()
	g.genIXPs()
	g.genTLDs()
	g.genNSProviders()
	g.genDomains()
	g.genInvalids()
	g.genPlantedErrors()
	g.genRankings()
	g.genCollectors()
	g.genAtlas()
	g.genCitizenLab()
	g.genPopulations()
	return g.in, nil
}

type generator struct {
	cfg Config
	r   *rng
	in  *Internet

	v4cursor netip.Addr
	v6cursor netip.Addr

	// eyeballASes per country for population estimates and probes.
	eyeballs map[string][]*AS
	// byCategory indexes ASes by primary category.
	byCategory map[string][]*AS
}

// countryWeights biases resource registration to large economies, keeping
// the US-heavy concentration the SPoF figures depend on.
var countryWeights = map[string]float64{
	"US": 0.22, "CN": 0.08, "RU": 0.05, "DE": 0.05, "GB": 0.05,
	"JP": 0.04, "FR": 0.04, "BR": 0.04, "IN": 0.04, "NL": 0.03,
	"CA": 0.03, "AU": 0.02, "KR": 0.02, "IT": 0.02, "ES": 0.02,
	"PL": 0.02, "UA": 0.015, "TR": 0.015, "SE": 0.015, "CH": 0.015,
}

const defaultCountryWeight = 0.006

func (g *generator) pickCountry() string {
	cs := g.in.Countries
	weights := make([]float64, len(cs))
	for i, c := range cs {
		w, ok := countryWeights[c.Alpha2]
		if !ok {
			w = defaultCountryWeight
		}
		weights[i] = w
	}
	return cs[g.r.weightedIndex(weights)].Alpha2
}

// rirForCountry maps a registration country to its RIR, as in NRO
// delegated files.
func rirForCountry(cc string) string {
	switch cc {
	case "US", "CA":
		return "arin"
	case "BR", "AR", "CL", "CO", "MX":
		return "lacnic"
	case "ZA", "NG", "KE", "EG":
		return "afrinic"
	case "CN", "JP", "KR", "IN", "AU", "NZ", "SG", "HK", "TW", "ID",
		"TH", "VN", "MY", "PH":
		return "apnic"
	default:
		return "ripencc"
	}
}

// --- organizations ---

func (g *generator) genOrgs() {
	for i := 0; i < g.cfg.NumOrgs; i++ {
		cc := g.pickCountry()
		o := &Org{
			ID:      i + 1,
			Name:    fmt.Sprintf("ORG-%s-%04d", cc, i+1),
			Country: cc,
		}
		if g.r.bernoulli(0.45) {
			o.PeeringdbOrgID = 10000 + i
		}
		g.in.Orgs = append(g.in.Orgs, o)
	}
}

// --- ASes ---

func (g *generator) genASes() {
	n := g.cfg.NumASes
	// Deterministic category assignment honoring categoryShares.
	cats := make([]string, 0, n)
	for _, cs := range categoryShares {
		k := int(cs.Share * float64(n))
		if k == 0 && cs.Share > 0 {
			k = 1
		}
		for i := 0; i < k && len(cats) < n; i++ {
			cats = append(cats, cs.Cat)
		}
	}
	for len(cats) < n {
		cats = append(cats, CatEnterprise)
	}
	g.r.Shuffle(len(cats), func(i, j int) { cats[i], cats[j] = cats[j], cats[i] })
	// Keep a handful of category anchors at fixed ranks so the model
	// always contains the roles the studies need, regardless of shuffle.
	anchors := []string{CatTier1, CatCDN, CatCDN, CatDNS, CatDNS, CatCloud, CatHosting, CatDDoS, CatRegistry, CatRegistry}
	for i, c := range anchors {
		if i < len(cats) {
			cats[i] = c
		}
	}

	asn := uint32(1000)
	for i := 0; i < n; i++ {
		cat := cats[i]
		cc := g.pickCountry()
		// Infrastructure heavyweights skew American, which drives the
		// third-party SPoF concentration of Figure 5.
		usBias := map[string]float64{CatCDN: 0.7, CatDNS: 0.7, CatDDoS: 0.7, CatCloud: 0.7, CatHosting: 0.45}
		if g.r.bernoulli(usBias[cat]) {
			cc = "US"
		}
		org := g.in.Orgs[g.r.Intn(len(g.in.Orgs))]
		// A fifth of orgs hold several ASes (siblings); the rest get a
		// dedicated org on first use.
		if len(org.ASes) > 0 && !g.r.bernoulli(0.2) {
			for tries := 0; tries < 4 && len(org.ASes) > 0; tries++ {
				org = g.in.Orgs[g.r.Intn(len(g.in.Orgs))]
			}
		}
		asn += uint32(g.r.intBetween(1, 7))
		a := &AS{
			ASN:      asn,
			Name:     asName(cat, cc, i),
			Org:      org,
			Country:  cc,
			RIR:      rirForCountry(cc),
			OpaqueID: fmt.Sprintf("%s-%s-%05d", rirForCountry(cc), "hdl", org.ID),
			Category: cat,
			PopShare: map[string]float64{},
		}
		a.Tags = tagsFor(cat, g.r)
		a.ASdbLayer1, a.ASdbLayer2 = asdbFor(cat)
		a.RoVistaScore = g.r.Float64() * 0.6
		if cat == CatTier1 || cat == CatISP {
			a.RoVistaScore = 0.3 + g.r.Float64()*0.7
		}
		if g.r.bernoulli(0.35) {
			a.PeeringdbNetID = 20000 + i
		}
		org.ASes = append(org.ASes, a)
		g.in.ASes = append(g.in.ASes, a)
		g.in.asByASN[a.ASN] = a
	}

	g.byCategory = map[string][]*AS{}
	g.eyeballs = map[string][]*AS{}
	for _, a := range g.in.ASes {
		g.byCategory[a.Category] = append(g.byCategory[a.Category], a)
		if a.Category == CatISP || a.Category == CatTier1 {
			g.eyeballs[a.Country] = append(g.eyeballs[a.Country], a)
		}
	}
}

func asName(cat, cc string, i int) string {
	switch cat {
	case CatTier1:
		return fmt.Sprintf("BACKBONE-%d Global Transit", i+1)
	case CatCDN:
		return fmt.Sprintf("EDGECAST-%d CDN", i+1)
	case CatCloud:
		return fmt.Sprintf("NIMBUS-%d Cloud", i+1)
	case CatHosting:
		return fmt.Sprintf("RACKFARM-%d Hosting", i+1)
	case CatDNS:
		return fmt.Sprintf("ZONEHOST-%d DNS", i+1)
	case CatAcademic:
		return fmt.Sprintf("UNIV-NET-%s-%d", cc, i+1)
	case CatGovernment:
		return fmt.Sprintf("GOV-NET-%s-%d", cc, i+1)
	case CatDDoS:
		return fmt.Sprintf("SHIELDWALL-%d Mitigation", i+1)
	case CatRegistry:
		return fmt.Sprintf("REGISTRY-OPS-%d", i+1)
	case CatISP:
		return fmt.Sprintf("TELECOM-%s-%d", cc, i+1)
	default:
		return fmt.Sprintf("CORP-NET-%s-%d", cc, i+1)
	}
}

// tagsFor produces BGP.Tools-style tags for an AS.
func tagsFor(cat string, r *rng) []string {
	tags := []string{bgpToolsTag(cat)}
	if cat == CatISP && r.bernoulli(0.6) {
		tags = append(tags, "Eyeball")
	}
	if cat == CatTier1 {
		tags = append(tags, "Tier1")
	}
	if (cat == CatCDN || cat == CatDNS || cat == CatDDoS) && r.bernoulli(0.7) {
		tags = append(tags, "Anycast")
	}
	return tags
}

// bgpToolsTag maps model categories to the tag vocabulary the BGP.Tools
// dataset uses (and the paper quotes: 'Content Delivery Network',
// 'Academic', 'Government', 'DDoS Mitigation').
func bgpToolsTag(cat string) string {
	switch cat {
	case CatCDN:
		return "Content Delivery Network"
	case CatCloud:
		return "Cloud Computing"
	case CatHosting:
		return "Server Hosting"
	case CatDNS:
		return "Managed DNS"
	case CatAcademic:
		return "Academic"
	case CatGovernment:
		return "Government"
	case CatDDoS:
		return "DDoS Mitigation"
	case CatTier1:
		return "Tier1"
	case CatRegistry:
		return "Internet Critical Infra"
	case CatISP:
		return "Internet Service Provider"
	default:
		return "Corporate Network"
	}
}

func asdbFor(cat string) (string, string) {
	switch cat {
	case CatTier1, CatISP:
		return "Computer and Information Technology", "Internet Service Provider (ISP)"
	case CatCDN, CatCloud, CatHosting:
		return "Computer and Information Technology", "Hosting, Cloud Provider, or CDN"
	case CatDNS:
		return "Computer and Information Technology", "Internet Exchange Point, DNS, or Infrastructure"
	case CatAcademic:
		return "Education and Research", "Colleges, Universities, and Professional Schools"
	case CatGovernment:
		return "Government and Public Administration", "Government"
	case CatDDoS:
		return "Computer and Information Technology", "Computer and Network Security"
	case CatRegistry:
		return "Computer and Information Technology", "Internet Exchange Point, DNS, or Infrastructure"
	default:
		return "Other", "Corporate"
	}
}

// --- topology ---

func (g *generator) genTopology() {
	ases := g.in.ASes
	n := len(ases)
	// Size weight drives provider attractiveness (preferential
	// attachment): earlier index = bigger network.
	tier1s := g.byCategory[CatTier1]
	// Full mesh among tier-1s.
	for i, a := range tier1s {
		for _, b := range tier1s[i+1:] {
			a.Peers = append(a.Peers, b.ASN)
			b.Peers = append(b.Peers, a.ASN)
		}
	}
	// Every non-tier1 AS picks 1-3 providers among ASes with a lower
	// index (preferential attachment by inverse index weight).
	for i, a := range ases {
		if a.Category == CatTier1 {
			continue
		}
		nProv := g.r.intBetween(1, 3)
		for p := 0; p < nProv; p++ {
			// Bias to small indexes.
			j := g.r.powerLawInt(0, max(i-1, 0), 1.6)
			prov := ases[j]
			if prov == a || hasASN(a.Providers, prov.ASN) {
				continue
			}
			a.Providers = append(a.Providers, prov.ASN)
			prov.Customers = append(prov.Customers, a.ASN)
		}
		// Lateral peering.
		if g.r.bernoulli(0.5) {
			j := g.r.Intn(n)
			if peer := ases[j]; peer != a && !hasASN(a.Peers, peer.ASN) {
				a.Peers = append(a.Peers, peer.ASN)
				peer.Peers = append(peer.Peers, a.ASN)
			}
		}
	}
	// Customer-cone sizes: accumulate bottom-up (index order approximates
	// hierarchy depth because providers always have smaller indexes).
	cone := make(map[uint32]int, n)
	for i := n - 1; i >= 0; i-- {
		a := ases[i]
		c := 1
		for _, cust := range a.Customers {
			c += cone[cust]
		}
		cone[a.ASN] = c
	}
	order := append([]*AS(nil), ases...)
	sort.SliceStable(order, func(i, j int) bool { return cone[order[i].ASN] > cone[order[j].ASN] })
	total := 0
	for _, c := range cone {
		total += c
	}
	for rank, a := range order {
		a.Rank = rank + 1
		a.ConeSize = cone[a.ASN]
		a.Hegemony = float64(a.ConeSize) / float64(total) * (0.8 + g.r.Float64()*0.4)
		if a.Hegemony > 1 {
			a.Hegemony = 1
		}
	}
	// Population shares: per country, Zipf over its eyeball networks.
	for cc, list := range g.eyeballs {
		shares := g.r.zipfSizes(1000, len(list), 1.2)
		for i, a := range list {
			a.PopShare[cc] = float64(shares[i]) / 1000.0
		}
	}
}

func hasASN(s []uint32, asn uint32) bool {
	for _, x := range s {
		if x == asn {
			return true
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- addressing ---

// allocV4 carves the next /bits IPv4 prefix. The cursor is aligned *up*
// to the block size first — masking down would overlap a previously
// allocated smaller block.
func (g *generator) allocV4(bits int) *Prefix {
	step := uint32(1) << (32 - bits)
	a4 := g.v4cursor.As4()
	cur := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	if cur%step != 0 {
		cur = (cur/step + 1) * step
	}
	start := netip.AddrFrom4([4]byte{byte(cur >> 24), byte(cur >> 16), byte(cur >> 8), byte(cur)})
	p := netip.PrefixFrom(start, bits)
	cur += step
	g.v4cursor = netip.AddrFrom4([4]byte{byte(cur >> 24), byte(cur >> 16), byte(cur >> 8), byte(cur)})
	return &Prefix{CIDR: p.String(), AF: 4}
}

// allocV6 carves the next /bits IPv6 prefix (bits <= 64), aligning the
// cursor up like allocV4.
func (g *generator) allocV6(bits int) *Prefix {
	a16 := g.v6cursor.As16()
	var hi uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(a16[i])
	}
	step := uint64(1) << (64 - bits)
	if hi%step != 0 {
		hi = (hi/step + 1) * step
	}
	var start [16]byte
	v := hi
	for i := 7; i >= 0; i-- {
		start[i] = byte(v)
		v >>= 8
	}
	p := netip.PrefixFrom(netip.AddrFrom16(start), bits)
	hi += step
	var out [16]byte
	for i := 7; i >= 0; i-- {
		out[i] = byte(hi)
		hi >>= 8
	}
	g.v6cursor = netip.AddrFrom16(out)
	return &Prefix{CIDR: p.String(), AF: 6}
}

// ipFrom returns the n-th usable address inside prefix p.
func ipFrom(p *Prefix, n int) string {
	pp := netip.MustParsePrefix(p.CIDR)
	addr := pp.Addr()
	for i := 0; i <= n; i++ {
		addr = addr.Next()
	}
	return addr.String()
}

// NextHostIP assigns the next unused address from p.
func (p *Prefix) NextHostIP() string {
	ip := ipFrom(p, p.HostedIPs)
	p.HostedIPs++
	return ip
}

// --- prefixes & BGP ---

func (g *generator) genPrefixes() {
	for _, a := range g.in.ASes {
		nv4 := g.prefixCount(a)
		for i := 0; i < nv4; i++ {
			bits := g.r.intBetween(20, 24)
			p := g.allocV4(bits)
			p.Origin = a
			a.Prefixes = append(a.Prefixes, p)
			g.in.Prefixes = append(g.in.Prefixes, p)
		}
		// ~40% of ASes also announce IPv6.
		if g.r.bernoulli(0.4) {
			nv6 := max(1, nv4/2)
			for i := 0; i < nv6; i++ {
				bits := []int{32, 40, 44, 48}[g.r.Intn(4)]
				p := g.allocV6(bits)
				p.Origin = a
				a.Prefixes = append(a.Prefixes, p)
				g.in.Prefixes = append(g.in.Prefixes, p)
			}
		}
	}
	// MOAS: a small fraction of prefixes has a second origin.
	for _, p := range g.in.Prefixes {
		if g.r.bernoulli(0.004) {
			other := g.in.ASes[g.r.Intn(len(g.in.ASes))]
			if other != p.Origin {
				p.MOASOrigin = other
			}
		}
	}
	// Anycast tagging.
	for _, p := range g.in.Prefixes {
		switch p.Origin.Category {
		case CatCDN:
			p.Anycast = g.r.bernoulli(0.6)
		case CatDDoS:
			p.Anycast = g.r.bernoulli(0.8)
		case CatDNS:
			p.Anycast = g.r.bernoulli(0.5)
		default:
			p.Anycast = g.r.bernoulli(0.01)
		}
	}
}

func (g *generator) prefixCount(a *AS) int {
	switch a.Category {
	case CatTier1:
		return g.r.intBetween(12, 30)
	case CatCDN:
		return g.r.intBetween(10, 24)
	case CatCloud:
		return g.r.intBetween(12, 30)
	case CatHosting:
		return g.r.intBetween(5, 14)
	case CatDNS:
		return g.r.intBetween(4, 10)
	case CatISP:
		// Scale with topological importance.
		base := g.r.intBetween(2, 8)
		if a.ConeSize > 10 {
			base += g.r.intBetween(4, 12)
		}
		return base
	case CatDDoS:
		return g.r.intBetween(4, 10)
	default:
		return g.r.intBetween(1, 3)
	}
}

// genInvalids flips a calibrated fraction of covered (prefix, origin)
// pairs to RPKI-invalid. It runs after domain hosting is assigned and
// prefers prefixes that actually host content, so the (tiny) invalid rate
// is observable in the Tranco-centric Table 2 statistics even at reduced
// scale — in the real Internet the rate is measured over the full table.
func (g *generator) genInvalids() {
	cfg := g.cfg.RPKI
	var hosting, other []*Prefix
	for _, p := range g.in.Prefixes {
		if p.ROA == nil || p.RPKIStatus != RPKIValid {
			continue
		}
		if p.WebHosted {
			hosting = append(hosting, p)
		} else {
			other = append(other, p)
		}
	}
	nInvalid := int(cfg.InvalidRate * float64(len(g.in.Prefixes)))
	if nInvalid < 1 {
		nInvalid = 1
	}
	for i := 0; i < nInvalid; i++ {
		var p *Prefix
		// The first invalid is always drawn from content-hosting space so
		// the tiny invalid rate stays observable in the Tranco-centric
		// Table 2 statistic at any scale; the rest spread 35/65.
		fromHosting := i == 0 || g.r.bernoulli(0.35)
		switch {
		case len(hosting) > 0 && (fromHosting || len(other) == 0):
			k := g.r.Intn(len(hosting))
			p = hosting[k]
			hosting = append(hosting[:k], hosting[k+1:]...)
		case len(other) > 0:
			k := g.r.Intn(len(other))
			p = other[k]
			other = append(other[:k], other[k+1:]...)
		default:
			return
		}
		if g.r.bernoulli(cfg.InvalidMaxLenShare) {
			// Announcement more specific than the ROA's max length.
			pp := netip.MustParsePrefix(p.CIDR)
			p.ROA.MaxLength = pp.Bits() - g.r.intBetween(1, 2)
			cover := netip.PrefixFrom(pp.Addr(), p.ROA.MaxLength).Masked()
			p.ROA.Prefix = cover.String()
			p.RPKIStatus = RPKIInvalidMoreSpecific
		} else {
			// ROA registered to a different origin.
			other := g.in.ASes[g.r.Intn(len(g.in.ASes))]
			if other == p.Origin {
				continue
			}
			p.ROA.ASN = other.ASN
			p.RPKIStatus = RPKIInvalid
		}
	}
}

// genPlantedErrors selects IPv6 prefixes whose BGPKIT rendering will
// carry a wrong origin (paper §6.1: comparing pfx2asn against other
// origin datasets in IYP exposed an IPv6 bug in the real feed).
func (g *generator) genPlantedErrors() {
	n := g.cfg.PlantedOriginErrors
	if n <= 0 {
		return
	}
	var v6 []*Prefix
	for _, p := range g.in.Prefixes {
		if p.AF == 6 && p.MOASOrigin == nil {
			v6 = append(v6, p)
		}
	}
	for i := 0; i < n && len(v6) > 0; i++ {
		k := g.r.Intn(len(v6))
		p := v6[k]
		v6 = append(v6[:k], v6[k+1:]...)
		wrong := g.in.ASes[g.r.Intn(len(g.in.ASes))]
		if wrong == p.Origin {
			continue
		}
		g.in.PlantedErrors = append(g.in.PlantedErrors, PlantedOriginError{
			Prefix: p.CIDR, TrueOrigin: p.Origin.ASN, WrongOrigin: wrong.ASN,
		})
	}
}

// --- RPKI & IRR ---

func (g *generator) genRPKI() {
	cfg := g.cfg.RPKI
	coverage := func(cat string) float64 {
		if v, ok := cfg.CoverageByCategory[cat]; ok {
			return v
		}
		return cfg.DefaultCoverage
	}
	hostingIdx := map[*AS]int{}
	for i, a := range g.byCategory[CatHosting] {
		hostingIdx[a] = i
	}
	nHosting := len(g.byCategory[CatHosting])
	for _, a := range g.in.ASes {
		cov := coverage(a.Category)
		a.RPKIAdopter = cov > 0
		// Infrastructure categories cover their busiest (lowest-index)
		// prefixes first — this concentration is what makes
		// domain-weighted coverage exceed prefix-weighted coverage
		// (paper §5.1.2). Other categories cover at random. Hosting
		// companies under-cover their first three prefixes (where their
		// customers' vanity nameservers live) and over-cover the rest,
		// keeping the category average while reproducing the lower RPKI
		// coverage of the DNS infrastructure (§5.1.1).
		deterministic := a.Category == CatCDN || a.Category == CatDNS || a.Category == CatDDoS || a.Category == CatCloud
		for i, p := range a.Prefixes {
			var covered bool
			switch {
			case deterministic:
				covered = i < int(cov*float64(len(a.Prefixes))+0.5)
			case a.Category == CatHosting && i < 3 && hostingIdx[a] < nHosting/4:
				// The big hosting companies (which absorb most vanity
				// nameservers) have their NS prefixes in RPKI...
				covered = true
			case a.Category == CatHosting && i < 3:
				// ...while the long tail mostly does not (§5.1.1).
				covered = g.r.bernoulli(cov * 0.35)
			case a.Category == CatHosting:
				covered = g.r.bernoulli(cov * 1.2)
			default:
				covered = g.r.bernoulli(cov)
			}
			if !covered {
				p.RPKIStatus = RPKINotFound
				continue
			}
			pp := netip.MustParsePrefix(p.CIDR)
			p.ROA = &ROA{Prefix: p.CIDR, ASN: a.ASN, MaxLength: pp.Bits()}
			p.RPKIStatus = RPKIValid
		}
	}
	// IRR: broader but sloppier coverage.
	for _, p := range g.in.Prefixes {
		switch {
		case g.r.bernoulli(0.70):
			p.IRRStatus = IRRValid
		case g.r.bernoulli(0.05):
			p.IRRStatus = IRRInvalid
		default:
			p.IRRStatus = IRRNotFound
		}
	}
}
