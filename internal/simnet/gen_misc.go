package simnet

import "fmt"

// --- IXPs and facilities ---

func (g *generator) genIXPs() {
	nIXP := g.cfg.NumIXPs
	nFac := g.cfg.NumFacilities
	for i := 0; i < nFac; i++ {
		cc := g.pickCountry()
		f := &Facility{
			ID:      3000 + i,
			Name:    fmt.Sprintf("DataDock %s-%02d", cc, i+1),
			Country: cc,
		}
		if g.r.bernoulli(0.8) {
			f.PeeringdbOrgID = g.in.Orgs[g.r.Intn(len(g.in.Orgs))].PeeringdbOrgID
		}
		g.in.Facilities = append(g.in.Facilities, f)
	}
	// IXP member counts follow a heavy-tailed distribution: the biggest
	// exchanges (DE-CIX/AMS-IX/LINX-alikes) connect a large share of
	// all networks.
	memberSizes := g.r.zipfSizes(len(g.in.ASes)*2, nIXP, 1.1)
	for i := 0; i < nIXP; i++ {
		cc := g.pickCountry()
		ix := &IXP{
			ID:             100 + i,
			PeeringdbIXID:  500 + i,
			Name:           fmt.Sprintf("IX-%s-%02d", cc, i+1),
			Country:        cc,
			RouteServerASN: uint32(64496 + i),
			AliceLG:        i < 7, // the paper imports seven Alice-LG looking glasses
		}
		seen := map[uint32]bool{}
		for m := 0; m < memberSizes[i]; m++ {
			a := g.in.ASes[g.r.powerLawInt(0, len(g.in.ASes)-1, 1.2)]
			if seen[a.ASN] {
				continue
			}
			seen[a.ASN] = true
			ix.Members = append(ix.Members, a.ASN)
			a.IXPMemberships = append(a.IXPMemberships, ix.ID)
		}
		// Each IXP is present in 1-3 facilities.
		nf := g.r.intBetween(1, 3)
		for f := 0; f < nf; f++ {
			fac := g.in.Facilities[g.r.Intn(len(g.in.Facilities))]
			if !hasInt(ix.FacilityIDs, fac.ID) {
				ix.FacilityIDs = append(ix.FacilityIDs, fac.ID)
				fac.IXPIDs = append(fac.IXPIDs, ix.ID)
			}
		}
		g.in.IXPs = append(g.in.IXPs, ix)
	}
	// Facility tenants.
	for _, f := range g.in.Facilities {
		nt := g.r.intBetween(2, 25)
		for t := 0; t < nt; t++ {
			a := g.in.ASes[g.r.powerLawInt(0, len(g.in.ASes)-1, 1.2)]
			if !hasASN(f.TenantASNs, a.ASN) {
				f.TenantASNs = append(f.TenantASNs, a.ASN)
			}
		}
	}
}

func hasInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// --- BGP collectors ---

func (g *generator) genCollectors() {
	specs := []struct{ name, project string }{
		{"rrc00", "ris"}, {"rrc01", "ris"}, {"rrc03", "ris"},
		{"rrc04", "ris"}, {"rrc06", "ris"}, {"rrc10", "ris"},
		{"route-views2", "routeviews"}, {"route-views3", "routeviews"},
		{"route-views.linx", "routeviews"}, {"route-views.sydney", "routeviews"},
	}
	for _, sp := range specs {
		c := &Collector{Name: sp.name, Project: sp.project}
		// Collectors peer preferentially with large networks.
		nPeers := g.r.intBetween(15, 60)
		seen := map[uint32]bool{}
		for i := 0; i < nPeers; i++ {
			a := g.in.ASes[g.r.powerLawInt(0, len(g.in.ASes)-1, 1.5)]
			if !seen[a.ASN] {
				seen[a.ASN] = true
				c.Peers = append(c.Peers, a.ASN)
			}
		}
		g.in.Collectors = append(g.in.Collectors, c)
	}
}

// --- RIPE Atlas ---

func (g *generator) genAtlas() {
	for i := 0; i < g.cfg.NumProbes; i++ {
		cc := g.pickCountry()
		pool := g.eyeballs[cc]
		if len(pool) == 0 {
			continue
		}
		a := pool[g.r.powerLawInt(0, len(pool)-1, 1.2)]
		p := &Probe{
			ID:      1000 + i,
			ASNv4:   a.ASN,
			Country: cc,
			Status:  []string{"Connected", "Connected", "Connected", "Disconnected", "Abandoned"}[g.r.Intn(5)],
		}
		for _, pf := range a.Prefixes {
			if pf.AF == 4 {
				p.IPv4 = pf.NextHostIP()
				break
			}
		}
		g.in.Probes = append(g.in.Probes, p)
	}
	connected := make([]*Probe, 0, len(g.in.Probes))
	for _, p := range g.in.Probes {
		if p.Status == "Connected" {
			connected = append(connected, p)
		}
	}
	for i := 0; i < g.cfg.NumMeasurements; i++ {
		m := &Measurement{
			ID:     5000 + i,
			Type:   []string{"ping", "ping", "traceroute"}[g.r.Intn(3)],
			AF:     []int{4, 4, 6}[g.r.Intn(3)],
			Status: []string{"Ongoing", "Ongoing", "Stopped"}[g.r.Intn(3)],
		}
		// Measurements target popular hostnames, occasionally raw IPs.
		d := g.in.Domains[g.r.powerLawInt(0, len(g.in.Domains)-1, 1.6)]
		if g.r.bernoulli(0.8) || len(d.HostIPv4) == 0 {
			m.Target = d.Name
		} else {
			m.Target = d.HostIPv4[0]
			m.TargetIsIP = true
		}
		nP := g.r.intBetween(3, 15)
		for j := 0; j < nP && len(connected) > 0; j++ {
			m.ProbeIDs = append(m.ProbeIDs, connected[g.r.Intn(len(connected))].ID)
		}
		g.in.Measures = append(g.in.Measures, m)
	}
}

// --- Citizen Lab URL test lists ---

var citizenLabCategories = []string{
	"NEWS", "POLR", "HUMR", "GRP", "SRCH", "COMT", "ECON", "GOVT", "CULTR",
}

func (g *generator) genCitizenLab() {
	for i := 0; i < g.cfg.NumCitizenLabURLs; i++ {
		d := g.in.Domains[g.r.powerLawInt(0, len(g.in.Domains)-1, 1.1)]
		scheme := "https"
		if g.r.bernoulli(0.2) {
			scheme = "http"
		}
		path := ""
		if g.r.bernoulli(0.4) {
			path = fmt.Sprintf("/%s", []string{"news", "about", "index.html", "en"}[g.r.Intn(4)])
		}
		country := "GLOBAL"
		if g.r.bernoulli(0.5) {
			country = g.pickCountry()
		}
		g.in.CitizenURLs = append(g.in.CitizenURLs, &CitizenLabURL{
			URL:      fmt.Sprintf("%s://www.%s%s", scheme, d.Name, path),
			Category: citizenLabCategories[g.r.Intn(len(citizenLabCategories))],
			Country:  country,
		})
	}
}

// --- populations ---

func (g *generator) genPopulations() {
	for _, c := range g.in.Countries {
		w, ok := countryWeights[c.Alpha2]
		if !ok {
			w = defaultCountryWeight
		}
		// Rough absolute scale: weights sum to ~1 over 5B Internet users.
		g.in.Populations[c.Alpha2] = int64(w * 5e9 * (0.8 + g.r.Float64()*0.4))
	}
}
