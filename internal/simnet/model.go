package simnet

import "iyp/internal/netutil"

// Internet is the fully generated synthetic Internet model. All slices are
// in deterministic order; Domains is ordered by Tranco rank (index 0 =
// rank 1).
type Internet struct {
	Cfg Config

	Countries   []netutil.CountryInfo
	Orgs        []*Org
	ASes        []*AS
	Prefixes    []*Prefix
	IXPs        []*IXP
	Facilities  []*Facility
	TLDs        []*TLD
	NSProviders []*NSProvider
	Domains     []*Domain
	Collectors  []*Collector
	Probes      []*Probe
	Measures    []*Measurement
	CitizenURLs []*CitizenLabURL

	// Populations maps alpha-2 country code to an absolute population
	// estimate (World Bank dataset).
	Populations map[string]int64

	// PlantedErrors records the (prefix, wrong origin) pairs deliberately
	// corrupted in the BGPKIT rendering (paper §6.1: IYP surfaced exactly
	// such an IPv6 error in the real BGPKIT dataset). Ground truth for
	// the dataset-comparison study.
	PlantedErrors []PlantedOriginError

	asByASN map[uint32]*AS
}

// PlantedOriginError is one deliberately corrupted pfx2as record.
type PlantedOriginError struct {
	Prefix      string
	TrueOrigin  uint32
	WrongOrigin uint32
}

// ASByASN resolves an ASN to its model record.
func (in *Internet) ASByASN(asn uint32) *AS { return in.asByASN[asn] }

// Org is a resource-holding organization.
type Org struct {
	ID      int
	Name    string
	Country string // alpha-2
	// PeeringdbOrgID is this org's PeeringDB identifier (0 = not in
	// PeeringDB).
	PeeringdbOrgID int
	// ASes managed by this organization.
	ASes []*AS
}

// AS is an Autonomous System.
type AS struct {
	ASN      uint32
	Name     string
	Org      *Org
	Country  string // alpha-2 registration country
	RIR      string // "arin", "ripencc", "apnic", "lacnic", "afrinic"
	OpaqueID string // RIR delegated-file opaque id

	// Category is the primary business category (see Cat* constants).
	Category string
	// Tags are BGP.Tools-style classification tags (includes Category).
	Tags []string
	// ASdbLayer1/Layer2 are the Stanford ASdb classification.
	ASdbLayer1 string
	ASdbLayer2 string

	// Rank is the CAIDA ASRank position (1 = biggest customer cone).
	Rank     int
	ConeSize int
	// Hegemony is the IHR AS-hegemony score in [0, 1].
	Hegemony float64
	// RoVistaScore is the Virginia Tech ROV-filtering score in [0, 1].
	RoVistaScore float64

	// Peers, Providers and Customers are AS-level adjacencies (ASNs).
	Peers     []uint32
	Providers []uint32
	Customers []uint32

	// RPKIAdopter gates whether this AS registers ROAs at all.
	RPKIAdopter bool
	// PeeringdbNetID is the PeeringDB net identifier (0 = absent).
	PeeringdbNetID int
	// IXPMemberships lists IXP IDs this AS peers at.
	IXPMemberships []int
	// PopShare maps country code to the fraction of that country's
	// Internet population served by this AS (APNIC-style estimate).
	PopShare map[string]float64

	// Prefixes originated by this AS.
	Prefixes []*Prefix
}

// RPKI validation states for a routed (prefix, origin) pair, mirroring the
// tags IHR's ROV dataset assigns in IYP.
const (
	RPKIValid               = "RPKI Valid"
	RPKIInvalid             = "RPKI Invalid"
	RPKIInvalidMoreSpecific = "RPKI Invalid, more specific"
	RPKINotFound            = "RPKI NotFound"
)

// IRR validation states.
const (
	IRRValid    = "IRR Valid"
	IRRInvalid  = "IRR Invalid"
	IRRNotFound = "IRR NotFound"
)

// ROA is a Route Origin Authorization.
type ROA struct {
	Prefix    string
	ASN       uint32
	MaxLength int
}

// Prefix is a routed BGP prefix.
type Prefix struct {
	CIDR string // canonical form
	AF   int    // 4 or 6
	// Origin is the AS originating this prefix in BGP.
	Origin *AS
	// MOASOrigin is a second origin AS (nil unless multi-origin).
	MOASOrigin *AS
	// ROA covering this prefix (nil when RPKI does not cover it).
	ROA *ROA
	// RPKIStatus is the validation outcome of the (prefix, Origin) pair.
	RPKIStatus string
	// IRRStatus is the IRR validation outcome.
	IRRStatus string
	// Anycast marks BGP.Tools-anycast-tagged prefixes.
	Anycast bool
	// HostedIPs counts addresses assigned out of this prefix so far
	// (used by the generator to carve IPs).
	HostedIPs int
	// WebHosted marks prefixes that host ranked web content (apex
	// addresses), as opposed to nameserver or probe space.
	WebHosted bool
}

// IXP is an Internet Exchange Point.
type IXP struct {
	ID            int // CAIDA IX ID
	PeeringdbIXID int
	Name          string
	Country       string
	Members       []uint32 // member ASNs
	FacilityIDs   []int
	// RouteServerASN is the IXP's route-server ASN (for Alice-LG).
	RouteServerASN uint32
	// AliceLG marks the IXPs whose route server exposes an Alice-LG
	// looking glass (the paper imports seven of them).
	AliceLG bool
}

// Facility is a co-location facility.
type Facility struct {
	ID             int // PeeringDB fac id
	Name           string
	Country        string
	TenantASNs     []uint32
	IXPIDs         []int
	PeeringdbOrgID int
}

// TLD is a top-level domain with its registry operator.
type TLD struct {
	Name    string // without dot, e.g. "com"
	CC      bool   // country-code TLD
	Country string // registry country (alpha-2)
	// RegistryAS runs the TLD's authoritative infrastructure; resolving
	// any name under the TLD hierarchically depends on it.
	RegistryAS *AS
}

// NSProvider is a managed-DNS provider.
type NSProvider struct {
	ID   int
	Name string // e.g. "dnsprov3"
	Org  *Org
	AS   *AS
	// Zone is the provider's nameserver domain, e.g. "dnsprov3.net".
	Zone string
	// ZoneTLD is the TLD of Zone (decides in-zone glue for com/net/org).
	ZoneTLD string
	// Variants are the provider's nameserver sets; a customer domain is
	// assigned one variant. Grouping domains by NS set therefore groups
	// by (provider, variant), while grouping by nameserver /24 or BGP
	// prefix merges the whole provider.
	Variants []*NSVariant
	// ThirdParty is the provider whose nameservers serve the provider's
	// own Zone (nil = self-hosted), creating third-party dependency
	// chains in the DNS resolution graph.
	ThirdParty *NSProvider
}

// NSVariant is one of a provider's nameserver sets.
type NSVariant struct {
	Servers []*Nameserver
}

// Nameserver is one authoritative DNS server.
type Nameserver struct {
	Name     string // FQDN
	IPv4     string
	IPv6     string
	V4Prefix *Prefix
	V6Prefix *Prefix
	Provider *NSProvider // nil for self-hosted domain nameservers
}

// Domain is one ranked (Tranco) domain.
type Domain struct {
	Name string // registered domain, e.g. "example042.com"
	TLD  *TLD
	Rank int // Tranco rank, 1-based

	// Apex hosting.
	HostIPv4   []string
	HostIPv6   []string
	HostPrefix []*Prefix // prefixes covering the apex IPs
	HostAS     *AS

	// Nameservers serving the zone; empty when the domain has no glue
	// (the "discarded" bucket of the DNS-robustness study).
	NS []*Nameserver
	// Provider is the managed-DNS provider (nil when self-hosted).
	Provider *NSProvider
	// SelfHosted marks domains running their own nameservers.
	SelfHosted bool
	// HasGlue reports whether the zone has usable glue records.
	HasGlue bool
	// InZoneGlue reports whether the nameserver names fall under
	// .com/.net/.org (the original study's in-zone criterion).
	InZoneGlue bool

	// UmbrellaRank is the Cisco Umbrella rank (0 = not listed).
	UmbrellaRank int
	// CloudflareRank is the Cloudflare Radar rank (0 = not listed).
	CloudflareRank int
	// TopQueryASNs are the ASes querying this domain the most
	// (Cloudflare Radar QUERIED_FROM).
	TopQueryASNs []uint32
}

// Hostnames returns the resolvable FQDNs of the domain (apex and www).
func (d *Domain) Hostnames() []string {
	return []string{d.Name, "www." + d.Name}
}

// Collector is a RIPE RIS or RouteViews BGP collector.
type Collector struct {
	Name    string // e.g. "rrc00", "route-views2"
	Project string // "ris" or "routeviews"
	Peers   []uint32
}

// Probe is a RIPE Atlas probe.
type Probe struct {
	ID      int
	ASNv4   uint32
	Country string
	IPv4    string
	Status  string // "Connected", "Disconnected", "Abandoned"
}

// Measurement is a RIPE Atlas measurement.
type Measurement struct {
	ID     int
	Type   string // "ping", "traceroute"
	AF     int
	Target string // hostname or IP
	// TargetIsIP distinguishes IP targets from hostname targets.
	TargetIsIP bool
	ProbeIDs   []int
	Status     string // "Ongoing", "Stopped"
}

// CitizenLabURL is an entry of the Citizen Lab URL test lists.
type CitizenLabURL struct {
	URL      string
	Category string
	Country  string // "GLOBAL" or alpha-2
}
