package simnet

import (
	"bytes"
	"testing"
)

func TestBuildScaleShapeAndDeterminism(t *testing.T) {
	spec := ScaleSpecFor(1)
	spec.ASes = 50 // keep the unit test fast; the bench runs real sizes
	g := BuildScale(spec)

	st := g.Stats()
	if st.Nodes != spec.Nodes() {
		t.Fatalf("nodes = %d, want %d", st.Nodes, spec.Nodes())
	}
	if got := g.CountByLabel("AS"); got != spec.ASes {
		t.Fatalf("AS nodes = %d, want %d", got, spec.ASes)
	}
	if got := g.CountByLabel("Prefix"); got != spec.ASes*spec.PrefixesPerAS {
		t.Fatalf("Prefix nodes = %d, want %d", got, spec.ASes*spec.PrefixesPerAS)
	}
	if got := g.CountByLabel("IP"); got != spec.ASes*spec.PrefixesPerAS*spec.IPsPerPrefix {
		t.Fatalf("IP nodes = %d, want %d", got, spec.ASes*spec.PrefixesPerAS*spec.IPsPerPrefix)
	}
	if !g.HasIndex("AS", "asn") {
		t.Fatal("scale graph missing the AS(asn) identity index")
	}
	// Every relationship carries provenance; the dictionary should hold the
	// pool's strings exactly once no matter how many edges repeat them.
	if st.Rels == 0 {
		t.Fatal("scale graph has no relationships")
	}

	// Determinism: identical specs produce byte-identical snapshots.
	var a, b bytes.Buffer
	if err := g.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := BuildScale(spec).Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("BuildScale is not deterministic: snapshots differ")
	}
}
