package simnet

import (
	"net/netip"
	"sync"
	"testing"

	"iyp/internal/netutil"
)

var (
	genOnce sync.Once
	genNet  *Internet
)

// testNet generates a 0.2-scale Internet once for the whole package.
func testNet(t *testing.T) *Internet {
	t.Helper()
	genOnce.Do(func() {
		in, err := Generate(DefaultConfig().Scale(0.2))
		if err != nil {
			t.Fatal(err)
		}
		genNet = in
	})
	return genNet
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.NumASes = 2
	if bad.Validate() == nil {
		t.Error("tiny NumASes should fail validation")
	}
	bad = DefaultConfig()
	bad.NumIXPs = 3
	if bad.Validate() == nil {
		t.Error("NumIXPs < 7 should fail validation")
	}
	bad = DefaultConfig()
	bad.DNS.MeetShare = 0.95
	if bad.Validate() == nil {
		t.Error("DNS shares > 1 should fail validation")
	}
	bad = DefaultConfig()
	bad.RPKI.InvalidRate = 0.9
	if bad.Validate() == nil {
		t.Error("absurd invalid rate should fail validation")
	}
}

func TestScaleRespectsMinimums(t *testing.T) {
	c := DefaultConfig().Scale(0.001)
	if err := c.Validate(); err != nil {
		t.Errorf("heavily scaled-down config must stay valid: %v", err)
	}
	if c.NumIXPs < 7 {
		t.Errorf("NumIXPs = %d after scaling", c.NumIXPs)
	}
	up := DefaultConfig().Scale(2)
	if up.NumDomains != 40000 {
		t.Errorf("scale 2 domains = %d", up.NumDomains)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig().Scale(0.05)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ASes) != len(b.ASes) || len(a.Domains) != len(b.Domains) {
		t.Fatal("sizes differ between identical seeds")
	}
	for i := range a.ASes {
		if a.ASes[i].ASN != b.ASes[i].ASN || a.ASes[i].Category != b.ASes[i].Category {
			t.Fatalf("AS %d differs", i)
		}
	}
	for i := range a.Domains {
		if a.Domains[i].Name != b.Domains[i].Name {
			t.Fatalf("domain %d differs: %s vs %s", i, a.Domains[i].Name, b.Domains[i].Name)
		}
	}
	// A different seed must actually change the output.
	cfg2 := cfg
	cfg2.Seed = 43
	c, _ := Generate(cfg2)
	same := true
	for i := range a.Domains {
		if a.Domains[i].Name != c.Domains[i].Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical domain lists")
	}
}

func TestPrefixesAreDisjointAndCanonical(t *testing.T) {
	in := testNet(t)
	seen := map[string]bool{}
	for _, p := range in.Prefixes {
		if seen[p.CIDR] {
			t.Fatalf("duplicate prefix %s", p.CIDR)
		}
		seen[p.CIDR] = true
		pp, err := netip.ParsePrefix(p.CIDR)
		if err != nil {
			t.Fatalf("invalid prefix %s: %v", p.CIDR, err)
		}
		if pp != pp.Masked() {
			t.Fatalf("prefix %s not canonical", p.CIDR)
		}
		if (p.AF == 4) != pp.Addr().Is4() {
			t.Fatalf("prefix %s AF mismatch", p.CIDR)
		}
		if p.Origin == nil {
			t.Fatalf("prefix %s has no origin", p.CIDR)
		}
	}
	// No prefix may be contained in another (overlaps would corrupt the
	// IP-to-prefix refinement): every covering lookup must come up empty.
	trie := netutil.NewPrefixTrie[int]()
	for i, p := range in.Prefixes {
		trie.Insert(netip.MustParsePrefix(p.CIDR), i)
	}
	for _, p := range in.Prefixes {
		if cover, _, ok := trie.Covering(netip.MustParsePrefix(p.CIDR)); ok {
			t.Fatalf("prefix %s is covered by allocated prefix %s", p.CIDR, cover)
		}
	}
}

func TestTopologyInvariants(t *testing.T) {
	in := testNet(t)
	ranks := map[int]bool{}
	for _, a := range in.ASes {
		if a.Rank <= 0 || a.Rank > len(in.ASes) {
			t.Fatalf("AS%d rank %d out of range", a.ASN, a.Rank)
		}
		if ranks[a.Rank] {
			t.Fatalf("duplicate rank %d", a.Rank)
		}
		ranks[a.Rank] = true
		if a.Hegemony < 0 || a.Hegemony > 1 {
			t.Fatalf("AS%d hegemony %f", a.ASN, a.Hegemony)
		}
		// Provider/customer edges are symmetric.
		for _, prov := range a.Providers {
			p := in.ASByASN(prov)
			if p == nil {
				t.Fatalf("AS%d provider %d missing", a.ASN, prov)
			}
			if !hasASN(p.Customers, a.ASN) {
				t.Fatalf("provider edge %d->%d not mirrored", a.ASN, prov)
			}
		}
	}
	// Tier-1s form a full mesh.
	var tier1 []*AS
	for _, a := range in.ASes {
		if a.Category == CatTier1 {
			tier1 = append(tier1, a)
		}
	}
	if len(tier1) < 2 {
		t.Fatal("not enough tier-1 ASes")
	}
	for _, a := range tier1 {
		for _, b := range tier1 {
			if a != b && !hasASN(a.Peers, b.ASN) {
				t.Errorf("tier1 %d and %d not peered", a.ASN, b.ASN)
			}
		}
	}
}

func TestRPKICalibration(t *testing.T) {
	in := testNet(t)
	var covered, invalid int
	for _, p := range in.Prefixes {
		if p.ROA != nil {
			covered++
		}
		switch p.RPKIStatus {
		case RPKIInvalid, RPKIInvalidMoreSpecific:
			invalid++
		case RPKIValid, RPKINotFound:
		default:
			t.Fatalf("prefix %s has unknown status %q", p.CIDR, p.RPKIStatus)
		}
		// Invariant: a status other than NotFound implies a ROA.
		if p.RPKIStatus != RPKINotFound && p.ROA == nil {
			t.Fatalf("prefix %s status %s without ROA", p.CIDR, p.RPKIStatus)
		}
	}
	covRate := float64(covered) / float64(len(in.Prefixes))
	if covRate < 0.40 || covRate > 0.65 {
		t.Errorf("overall ROA coverage %.3f outside plausible band", covRate)
	}
	invRate := float64(invalid) / float64(len(in.Prefixes))
	if invRate > 0.01 {
		t.Errorf("invalid rate %.4f too high", invRate)
	}
}

func TestDomainInvariants(t *testing.T) {
	in := testNet(t)
	if len(in.Domains) == 0 {
		t.Fatal("no domains")
	}
	seen := map[string]bool{}
	var glue, inZone int
	for i, d := range in.Domains {
		if d.Rank != i+1 {
			t.Fatalf("domain %s rank %d at index %d", d.Name, d.Rank, i)
		}
		if seen[d.Name] {
			t.Fatalf("duplicate domain %s", d.Name)
		}
		seen[d.Name] = true
		if d.TLD == nil {
			t.Fatalf("domain %s has no TLD", d.Name)
		}
		if d.HasGlue {
			glue++
			if len(d.NS) == 0 {
				t.Fatalf("domain %s has glue but no nameservers", d.Name)
			}
			if d.InZoneGlue {
				inZone++
			}
		} else if len(d.NS) != 0 {
			t.Fatalf("domain %s has nameservers without glue", d.Name)
		}
	}
	glueRate := float64(glue) / float64(len(in.Domains))
	if glueRate < 0.80 || glueRate > 0.97 {
		t.Errorf("glue rate %.3f outside calibration band", glueRate)
	}
	inZoneRate := float64(inZone) / float64(glue)
	if inZoneRate < 0.6 || inZoneRate > 0.9 {
		t.Errorf("in-zone rate %.3f outside calibration band", inZoneRate)
	}
}

func TestTLDRegistryStability(t *testing.T) {
	in := testNet(t)
	// Each TLD keeps a registry AS registered in the TLD's country — the
	// invariant behind Figure 5's hierarchical dependencies.
	for _, tld := range in.TLDs {
		if tld.RegistryAS == nil {
			t.Fatalf("TLD %s has no registry", tld.Name)
		}
		if tld.RegistryAS.Country != tld.Country {
			t.Errorf("TLD .%s registry in %s, want %s", tld.Name, tld.RegistryAS.Country, tld.Country)
		}
	}
	// gTLD registries are American.
	for _, name := range []string{"com", "net", "org"} {
		for _, tld := range in.TLDs {
			if tld.Name == name && tld.Country != "US" {
				t.Errorf("gTLD .%s registered in %s", name, tld.Country)
			}
		}
	}
}

func TestNSProviderInvariants(t *testing.T) {
	in := testNet(t)
	for _, p := range in.NSProviders {
		if len(p.Variants) == 0 {
			t.Fatalf("provider %s has no variants", p.Name)
		}
		for _, v := range p.Variants {
			if len(v.Servers) < 1 || len(v.Servers) > 7 {
				t.Fatalf("provider %s variant size %d", p.Name, len(v.Servers))
			}
			for _, srv := range v.Servers {
				if srv.Provider != p {
					t.Fatal("server provider backlink broken")
				}
				if srv.IPv4 == "" {
					t.Fatalf("provider %s server %s lacks IPv4", p.Name, srv.Name)
				}
			}
		}
		if p.ThirdParty == p {
			t.Fatalf("provider %s is its own third party", p.Name)
		}
	}
}

func TestRandHelpers(t *testing.T) {
	r := newRNG(1)
	// zipfSizes conserves the total and is non-increasing in the head.
	sizes := r.zipfSizes(1000, 10, 1.2)
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != 1000 {
		t.Errorf("zipfSizes sum = %d", sum)
	}
	if sizes[0] < sizes[len(sizes)-1] {
		t.Errorf("zipf head %d < tail %d", sizes[0], sizes[len(sizes)-1])
	}
	// powerLawInt stays in bounds and is head-heavy — including with a
	// zero lower bound (regression: the old implementation degenerated
	// for lo = 0 and alpha > 1).
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.powerLawInt(0, 9, 1.5)
		if v < 0 || v > 9 {
			t.Fatalf("powerLawInt out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[9] {
		t.Errorf("power law not head-heavy: %v", counts)
	}
	if counts[9] == 0 {
		t.Errorf("power law never reaches the tail: %v", counts)
	}
	if got := r.powerLawInt(5, 5, 2); got != 5 {
		t.Errorf("degenerate range = %d", got)
	}
	// intBetween inclusive bounds.
	for i := 0; i < 100; i++ {
		v := r.intBetween(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("intBetween out of range: %d", v)
		}
	}
}

func TestNextHostIPStaysInPrefix(t *testing.T) {
	in := testNet(t)
	p := in.Prefixes[0]
	pp := netip.MustParsePrefix(p.CIDR)
	ip := p.NextHostIP()
	a, err := netip.ParseAddr(ip)
	if err != nil || !pp.Contains(a) {
		t.Errorf("NextHostIP %s outside %s", ip, p.CIDR)
	}
}

func TestConfig2015(t *testing.T) {
	cfg := Config2015()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("2015 config invalid: %v", err)
	}
	in, err := Generate(cfg.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	cov := 0
	for _, p := range in.Prefixes {
		if p.ROA != nil {
			cov++
		}
	}
	rate := float64(cov) / float64(len(in.Prefixes))
	if rate > 0.15 {
		t.Errorf("2015 coverage %.3f too high", rate)
	}
	if rate == 0 {
		t.Error("2015 coverage exactly zero — the era had *some* ROAs")
	}
}

func TestPlantedErrorsDeterministicAndV6(t *testing.T) {
	cfg := DefaultConfig().Scale(0.1)
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if len(a.PlantedErrors) != cfg.PlantedOriginErrors {
		t.Fatalf("planted = %d, want %d", len(a.PlantedErrors), cfg.PlantedOriginErrors)
	}
	if len(a.PlantedErrors) != len(b.PlantedErrors) {
		t.Fatal("planted errors differ between identical seeds")
	}
	for i := range a.PlantedErrors {
		if a.PlantedErrors[i] != b.PlantedErrors[i] {
			t.Fatal("planted errors not deterministic")
		}
		if a.PlantedErrors[i].TrueOrigin == a.PlantedErrors[i].WrongOrigin {
			t.Error("planted error with identical origins")
		}
	}
	// Disabled knob plants nothing.
	cfg.PlantedOriginErrors = 0
	c, _ := Generate(cfg)
	if len(c.PlantedErrors) != 0 {
		t.Errorf("planted = %d with knob off", len(c.PlantedErrors))
	}
}
