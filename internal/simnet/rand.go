package simnet

import (
	"math"
	"math/rand"
)

// rng wraps math/rand with the sampling helpers the generator uses.
// Everything derives from the single seeded source so generation is fully
// deterministic.
type rng struct {
	*rand.Rand
}

func newRNG(seed int64) *rng {
	return &rng{rand.New(rand.NewSource(seed))}
}

// bernoulli returns true with probability p.
func (r *rng) bernoulli(p float64) bool {
	return r.Float64() < p
}

// intBetween returns a uniform integer in [lo, hi] inclusive.
func (r *rng) intBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// zipfSizes partitions total items over n buckets with a Zipf-like
// distribution of exponent s (bucket i gets weight 1/(i+1)^s). Every
// bucket receives at least one item while items remain.
func (r *rng) zipfSizes(total, n int, s float64) []int {
	if n <= 0 {
		return nil
	}
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = 1.0 / pow(float64(i+1), s)
		sum += weights[i]
	}
	sizes := make([]int, n)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(weights[i] / sum * float64(total))
		assigned += sizes[i]
	}
	// Distribute rounding remainder over the head.
	for i := 0; assigned < total; i = (i + 1) % n {
		sizes[i]++
		assigned++
	}
	return sizes
}

// weightedIndex samples an index proportionally to weights.
func (r *rng) weightedIndex(weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	x := r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// powerLawInt samples an integer in [lo, hi] with density proportional to
// (x-lo+1)^(-alpha) — heavy head at lo. Sampling is shifted to start at 1
// so a zero lower bound is well-defined for any alpha.
func (r *rng) powerLawInt(lo, hi int, alpha float64) int {
	if hi <= lo {
		return lo
	}
	// Inverse-CDF sampling of a bounded Pareto over [1, hi-lo+1].
	u := r.Float64()
	h := float64(hi-lo) + 2
	x := pow(1+u*(pow(h, 1-alpha)-1), 1/(1-alpha))
	v := lo + int(x) - 1
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }
