// Package simnet generates a deterministic synthetic Internet: AS-level
// topology, address allocation, RPKI, DNS hosting, IXPs, rankings, and
// measurement infrastructure. It is the reproduction's substitute for the
// live data feeds the paper ingests (BGPKIT, OpenINTEL, PeeringDB, RIPE,
// Cloudflare, ...): internal/source renders slices of this model in each
// provider's native format, and the crawlers parse those renderings exactly
// as the real pipeline would.
//
// Generator parameters are calibrated so that the 2024-side statistics of
// the paper's evaluation (Tables 2-5, Figures 5-6, §5.1) come out with the
// same shape: who wins, by what rough factor, and where the crossovers sit.
package simnet

import "fmt"

// Config controls the size and statistical shape of the generated
// Internet. The zero value is not usable; start from DefaultConfig.
type Config struct {
	// Seed makes generation deterministic. Two runs with identical
	// Config produce identical Internets.
	Seed int64

	// NumASes is the number of Autonomous Systems.
	NumASes int
	// NumOrgs is the number of organizations; several ASes may map to
	// one organization (SIBLING_OF).
	NumOrgs int
	// NumDomains is the length of the simulated Tranco list. The paper
	// uses the real top-1M; benchmarks use 20k-100k scaled replicas.
	NumDomains int
	// NumIXPs is the number of Internet Exchange Points.
	NumIXPs int
	// NumFacilities is the number of co-location facilities.
	NumFacilities int
	// NumNSProviders is the number of managed-DNS providers.
	NumNSProviders int
	// NumProbes is the number of RIPE Atlas probes.
	NumProbes int
	// NumMeasurements is the number of RIPE Atlas measurements.
	NumMeasurements int
	// NumCitizenLabURLs is the number of Citizen Lab test-list URLs.
	NumCitizenLabURLs int

	// RPKI calibration (paper Table 2 and §4.1, 2024 side).
	RPKI RPKIConfig
	// DNS calibration (paper Tables 3-5, §5, 2024 side).
	DNS DNSConfig

	// PlantedOriginErrors is the number of IPv6 prefixes whose BGPKIT
	// pfx2as rendering carries a wrong origin AS — the data-quality bug
	// the paper reports discovering by comparing datasets in IYP (§6.1).
	// The comparison study (studies.CompareOriginDatasets) must find
	// exactly these.
	PlantedOriginErrors int
}

// RPKIConfig holds per-category ROA coverage rates and the invalid rate.
type RPKIConfig struct {
	// InvalidRate is the fraction of routed (prefix, origin) pairs whose
	// BGP origin conflicts with RPKI (paper: 0.12%).
	InvalidRate float64
	// InvalidMaxLenShare is the fraction of invalids caused by a wrong
	// max-length in the ROA rather than a wrong origin (paper: 75%).
	InvalidMaxLenShare float64
	// CoverageByCategory maps an AS category to the fraction of its
	// prefixes covered by a ROA. Categories absent from the map use
	// DefaultCoverage.
	CoverageByCategory map[string]float64
	// DefaultCoverage applies to categories not listed above.
	DefaultCoverage float64
}

// DNSConfig calibrates domain hosting and nameserver infrastructure.
type DNSConfig struct {
	// TLDShares maps TLD (without dot) to its share of the domain list.
	// Shares must sum to <= 1; the remainder spreads over ccTLDs.
	TLDShares map[string]float64
	// DiscardedShare is the fraction of .com/.net/.org domains with no
	// usable glue records (paper Table 3: 10%).
	DiscardedShare float64
	// NotMeetShare is the fraction with a single nameserver (4%).
	NotMeetShare float64
	// MeetShare is the fraction with exactly two nameservers (18%).
	MeetShare float64
	// The remainder exceeds the RFC 2182 requirements (67%).

	// InZoneGlueShare is the fraction of kept domains whose nameservers
	// live under .com/.net/.org (76%).
	InZoneGlueShare float64
	// SelfHostedShare is the fraction of domains operating their own
	// nameservers (unique NS sets) instead of a managed provider.
	SelfHostedShare float64
	// NSRPKICoverage is the fraction of nameserver-hosting prefixes
	// covered by RPKI (paper §5.1.1: 48%), applied with a popularity
	// bias so that ~84% of domains sit behind covered nameservers.
	NSRPKICoverage float64
}

// DefaultConfig returns the calibrated configuration at roughly 1/50 of
// the real Internet's scale: 20k Tranco domains, 3k ASes. Tests use
// smaller copies via Scale.
func DefaultConfig() Config {
	return Config{
		Seed:                42,
		NumASes:             3000,
		NumOrgs:             2400,
		NumDomains:          20000,
		NumIXPs:             60,
		NumFacilities:       120,
		NumNSProviders:      120,
		NumProbes:           800,
		NumMeasurements:     300,
		NumCitizenLabURLs:   500,
		PlantedOriginErrors: 3,
		RPKI: RPKIConfig{
			InvalidRate:        0.0012,
			InvalidMaxLenShare: 0.75,
			CoverageByCategory: map[string]float64{
				CatCDN:        0.65,
				CatDDoS:       0.76,
				CatAcademic:   0.16,
				CatGovernment: 0.21,
				CatCloud:      0.62,
				CatHosting:    0.60,
				CatDNS:        0.48,
				CatISP:        0.45,
				CatEnterprise: 0.35,
			},
			DefaultCoverage: 0.42,
		},
		DNS: DNSConfig{
			TLDShares: map[string]float64{
				"com": 0.40, "net": 0.05, "org": 0.04,
				"io": 0.03, "co": 0.02, "info": 0.02,
			},
			DiscardedShare:  0.10,
			NotMeetShare:    0.04,
			MeetShare:       0.18,
			InZoneGlueShare: 0.76,
			SelfHostedShare: 0.12,
			NSRPKICoverage:  0.48,
		},
	}
}

// Config2015 returns a configuration calibrated to the original RiPKI
// study's 2015 measurements (Table 2's first row): RPKI deployment nearly
// nonexistent (6% coverage overall, 0.9% for CDNs), so the reproduction
// can generate the paper's historical baseline instead of quoting it.
func Config2015() Config {
	c := DefaultConfig()
	c.Seed = 2015
	c.RPKI = RPKIConfig{
		InvalidRate:        0.0009,
		InvalidMaxLenShare: 0.5,
		CoverageByCategory: map[string]float64{
			CatCDN:        0.009,
			CatDDoS:       0.05,
			CatAcademic:   0.03,
			CatGovernment: 0.02,
			CatCloud:      0.05,
			CatHosting:    0.06,
			CatDNS:        0.05,
			CatISP:        0.08,
			CatEnterprise: 0.05,
		},
		DefaultCoverage: 0.05,
	}
	c.DNS.NSRPKICoverage = 0.04
	return c
}

// Scale returns a copy of c with all size knobs multiplied by f (rates are
// untouched). Useful for quick tests (f < 1) and heavyweight benchmarks
// (f > 1).
func (c Config) Scale(f float64) Config {
	scale := func(n int, minimum int) int {
		v := int(float64(n) * f)
		if v < minimum {
			return minimum
		}
		return v
	}
	c.NumASes = scale(c.NumASes, 60)
	c.NumOrgs = scale(c.NumOrgs, 40)
	c.NumDomains = scale(c.NumDomains, 200)
	// At least as many IXPs as Alice-LG looking glasses (7).
	c.NumIXPs = scale(c.NumIXPs, 8)
	c.NumFacilities = scale(c.NumFacilities, 8)
	c.NumNSProviders = scale(c.NumNSProviders, 10)
	c.NumProbes = scale(c.NumProbes, 20)
	c.NumMeasurements = scale(c.NumMeasurements, 10)
	c.NumCitizenLabURLs = scale(c.NumCitizenLabURLs, 20)
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumASes < 10 {
		return fmt.Errorf("simnet: NumASes %d too small (need >= 10)", c.NumASes)
	}
	if c.NumOrgs < 5 {
		return fmt.Errorf("simnet: NumOrgs %d too small (need >= 5)", c.NumOrgs)
	}
	if c.NumDomains < 50 {
		return fmt.Errorf("simnet: NumDomains %d too small (need >= 50)", c.NumDomains)
	}
	if c.NumNSProviders < 2 {
		return fmt.Errorf("simnet: NumNSProviders %d too small (need >= 2)", c.NumNSProviders)
	}
	if c.NumIXPs < 7 {
		return fmt.Errorf("simnet: NumIXPs %d too small (need >= 7, one per Alice-LG looking glass)", c.NumIXPs)
	}
	share := c.DNS.DiscardedShare + c.DNS.NotMeetShare + c.DNS.MeetShare
	if share > 1 {
		return fmt.Errorf("simnet: DNS shares sum to %.2f > 1", share)
	}
	if c.RPKI.InvalidRate < 0 || c.RPKI.InvalidRate > 0.5 {
		return fmt.Errorf("simnet: RPKI invalid rate %.4f out of range", c.RPKI.InvalidRate)
	}
	var sum float64
	for _, s := range c.DNS.TLDShares {
		sum += s
	}
	if sum > 1 {
		return fmt.Errorf("simnet: TLD shares sum to %.2f > 1", sum)
	}
	return nil
}

// AS categories used throughout the model. These double as BGP.Tools-style
// tags and ASdb-style classifications in the rendered datasets.
const (
	CatTier1      = "Tier1"
	CatISP        = "ISP"
	CatCDN        = "CDN"
	CatCloud      = "Cloud"
	CatHosting    = "Hosting"
	CatDNS        = "DNS"
	CatAcademic   = "Academic"
	CatGovernment = "Government"
	CatDDoS       = "DDoS Mitigation"
	CatEnterprise = "Enterprise"
	CatRegistry   = "Registry"
)

// categoryShares is the distribution of primary categories over ASes.
var categoryShares = []struct {
	Cat   string
	Share float64
}{
	{CatTier1, 0.004},
	{CatISP, 0.42},
	{CatCDN, 0.012},
	{CatCloud, 0.03},
	{CatHosting, 0.12},
	{CatDNS, 0.02},
	{CatAcademic, 0.07},
	{CatGovernment, 0.05},
	{CatDDoS, 0.008},
	{CatRegistry, 0.012},
	{CatEnterprise, 0.254},
}
