package ingest

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"iyp/internal/graph"
	"iyp/internal/source"
)

// Pipeline runs a set of crawlers against one graph, in parallel, with
// per-crawler error isolation: a failing dataset never aborts the build
// (the real IYP pipeline behaves the same way — a stale or broken feed
// costs one dataset, not the snapshot).
type Pipeline struct {
	Graph   *graph.Graph
	Fetcher source.Fetcher
	// Crawlers to run. Order is irrelevant; dependencies between
	// datasets do not exist by design (refinement passes run after).
	Crawlers []Crawler
	// Concurrency bounds parallel crawler execution (0 = 4).
	Concurrency int
	// FetchTime is stamped on all provenance (zero = now).
	FetchTime time.Time
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// CrawlReport describes one crawler's outcome.
type CrawlReport struct {
	Dataset      string
	Organization string
	Duration     time.Duration
	NodesCreated int
	LinksCreated int
	Err          error
}

// Report is the pipeline outcome.
type Report struct {
	Crawls []CrawlReport
	Total  time.Duration
}

// Failed returns the subset of crawls that errored.
func (r Report) Failed() []CrawlReport {
	var out []CrawlReport
	for _, c := range r.Crawls {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// String renders the report as a table.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %-22s %10s %10s %10s\n", "dataset", "organization", "nodes", "links", "duration")
	for _, c := range r.Crawls {
		status := fmt.Sprintf("%10d %10d %10s", c.NodesCreated, c.LinksCreated, c.Duration.Round(time.Millisecond))
		if c.Err != nil {
			status = "ERROR: " + c.Err.Error()
		}
		fmt.Fprintf(&sb, "%-32s %-22s %s\n", c.Dataset, c.Organization, status)
	}
	fmt.Fprintf(&sb, "total: %s\n", r.Total.Round(time.Millisecond))
	return sb.String()
}

// Run executes all crawlers and returns the report. The only error
// returned is a context cancellation; dataset-level failures are recorded
// in the report.
func (p *Pipeline) Run(ctx context.Context) (Report, error) {
	start := time.Now()
	conc := p.Concurrency
	if conc <= 0 {
		conc = 4
	}
	fetchTime := p.FetchTime
	if fetchTime.IsZero() {
		fetchTime = time.Now().UTC()
	}
	logf := p.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	sem := make(chan struct{}, conc)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		reports []CrawlReport
	)
	for _, c := range p.Crawlers {
		if err := ctx.Err(); err != nil {
			return Report{}, err
		}
		wg.Add(1)
		go func(c Crawler) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			ref := c.Reference()
			ref.FetchTime = fetchTime
			s := NewSession(p.Graph, p.Fetcher, ref)
			t0 := time.Now()
			err := runIsolated(ctx, c, s)
			nodes, links := s.Counts()
			mu.Lock()
			reports = append(reports, CrawlReport{
				Dataset:      ref.Name,
				Organization: ref.Organization,
				Duration:     time.Since(t0),
				NodesCreated: nodes,
				LinksCreated: links,
				Err:          err,
			})
			mu.Unlock()
			if err != nil {
				logf("crawler %s failed: %v", ref.Name, err)
			} else {
				logf("crawler %s done: %d nodes, %d links in %s", ref.Name, nodes, links, time.Since(t0).Round(time.Millisecond))
			}
		}(c)
	}
	wg.Wait()
	sort.Slice(reports, func(i, j int) bool { return reports[i].Dataset < reports[j].Dataset })
	return Report{Crawls: reports, Total: time.Since(start)}, ctx.Err()
}

// runIsolated converts crawler panics into errors so one malformed dataset
// cannot take down the build.
func runIsolated(ctx context.Context, c Crawler, s *Session) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ingest: crawler panic: %v", r)
		}
	}()
	return c.Run(ctx, s)
}
