package ingest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"iyp/internal/graph"
	"iyp/internal/source"
)

// ErrCrawlTimeout marks a crawler that exceeded the pipeline's per-crawler
// deadline. Its staged writes were discarded.
var ErrCrawlTimeout = errors.New("ingest: crawler timed out")

// Pipeline runs a set of crawlers against one graph, in parallel, with
// per-crawler fault isolation: a failing, panicking, or hung dataset never
// aborts the build (the real IYP pipeline behaves the same way — a stale or
// broken feed costs one dataset, not the snapshot), and because every
// crawler stages its writes in its session and commits only on success, a
// failed dataset also never leaves partial nodes or links behind.
//
// Crawls run concurrently, but commits are applied in crawler-declaration
// order: the order in which batches reach the graph — and therefore node-ID
// assignment and the final snapshot bytes — is the same on every run with
// the same inputs. That determinism is what makes checkpointed builds
// resumable: a resumed build replays the journaled prefix and re-runs the
// rest, landing on a byte-identical snapshot.
type Pipeline struct {
	Graph   *graph.Graph
	Fetcher source.Fetcher
	// Crawlers to run. Declaration order fixes commit order; dependencies
	// between datasets do not exist by design (refinement passes run after).
	Crawlers []Crawler
	// Concurrency bounds parallel crawler execution (0 = 4).
	Concurrency int
	// Timeout bounds one crawler's run (0 = none). A crawler that
	// overruns is abandoned and reported failed with ErrCrawlTimeout;
	// its staged writes are discarded and the rest of the build proceeds.
	Timeout time.Duration
	// MaxFetchBytes caps a single dataset payload (0 = source default).
	MaxFetchBytes int64
	// FetchTime is stamped on all provenance (zero = now).
	FetchTime time.Time
	// Checkpoint, when set, durably journals every committed batch so an
	// interrupted build can resume without re-fetching committed datasets.
	Checkpoint *Checkpoint
	// OnCommit, when set, is called after each successful commit with the
	// dataset name, in commit order.
	OnCommit func(dataset string)
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// CrawlReport describes one crawler's outcome. For failed crawlers the
// write counts are zero by construction: nothing was committed.
type CrawlReport struct {
	Dataset      string
	Organization string
	Duration     time.Duration
	NodesCreated int
	LinksCreated int
	// Inputs is the dataset's input fingerprint — the payloads fetched, in
	// order, with content hashes. Empty for failed crawls and for datasets
	// replayed from a checkpoint (the journal does not record fetches); a
	// delta build treats a dataset without inputs as changed.
	Inputs []FetchRecord
	Err    error
}

// Report is the pipeline outcome.
type Report struct {
	Crawls []CrawlReport
	Total  time.Duration
	// Degraded is set when the snapshot was built without every dataset
	// (some crawls failed but the build-policy allowed proceeding).
	Degraded bool
	// PolicyNote records the degraded-build decision for operators, e.g.
	// "degraded: 45/47 datasets ingested".
	PolicyNote string
}

// Failed returns the subset of crawls that errored.
func (r Report) Failed() []CrawlReport {
	var out []CrawlReport
	for _, c := range r.Crawls {
		if c.Err != nil {
			out = append(out, c)
		}
	}
	return out
}

// String renders the report as a table.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-32s %-22s %10s %10s %10s\n", "dataset", "organization", "nodes", "links", "duration")
	for _, c := range r.Crawls {
		status := fmt.Sprintf("%10d %10d %10s", c.NodesCreated, c.LinksCreated, c.Duration.Round(time.Millisecond))
		if c.Err != nil {
			status = "ERROR: " + c.Err.Error()
		}
		fmt.Fprintf(&sb, "%-32s %-22s %s\n", c.Dataset, c.Organization, status)
	}
	fmt.Fprintf(&sb, "total: %s\n", r.Total.Round(time.Millisecond))
	if r.PolicyNote != "" {
		fmt.Fprintf(&sb, "policy: %s\n", r.PolicyNote)
	}
	return sb.String()
}

// crawlOutcome carries one finished (or abandoned) crawl from its runner
// goroutine to the in-order committer.
type crawlOutcome struct {
	started bool
	s       *Session
	rep     CrawlReport
}

// Run executes all crawlers and returns the report. The only error
// returned is a context cancellation; dataset-level failures are recorded
// in the report. Every launched crawler is always awaited (or abandoned at
// its deadline) before Run returns — an aborted build never leaves
// goroutines racing on the report or the graph. Crawls overlap up to
// Concurrency; their staged batches are committed strictly in
// declaration order.
func (p *Pipeline) Run(ctx context.Context) (Report, error) {
	start := time.Now()
	conc := p.Concurrency
	if conc <= 0 {
		conc = 4
	}
	fetchTime := p.FetchTime
	if fetchTime.IsZero() {
		fetchTime = time.Now().UTC()
	}
	logf := p.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	sem := make(chan struct{}, conc)
	slots := make([]chan crawlOutcome, len(p.Crawlers))
	var wg sync.WaitGroup
	for i, c := range p.Crawlers {
		slots[i] = make(chan crawlOutcome, 1)
		if ctx.Err() != nil {
			// Never launched: omitted from the report entirely.
			slots[i] <- crawlOutcome{}
			continue
		}
		wg.Add(1)
		go func(i int, c Crawler) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, rep := p.crawlOne(ctx, c, fetchTime)
			slots[i] <- crawlOutcome{started: true, s: s, rep: rep}
		}(i, c)
	}

	// In-order committer: drain outcomes in declaration order so batches
	// reach the graph deterministically regardless of crawl scheduling.
	var reports []CrawlReport
	for i := range slots {
		out := <-slots[i]
		if !out.started {
			continue
		}
		rep := out.rep
		if rep.Err == nil && ctx.Err() != nil {
			// Cancelled between this crawl finishing and its commit slot
			// coming up: discard the staged writes so the build stops at a
			// clean commit boundary (which is what makes -resume exact).
			rep.Err = ctx.Err()
		}
		if rep.Err == nil {
			if err := out.s.Commit(); err != nil {
				rep.Err = err
			} else {
				rep.NodesCreated, rep.LinksCreated = out.s.Counts()
				rep.Inputs = out.s.Fetches()
				if err := p.Checkpoint.Record(rep.Dataset, out.s); err != nil {
					logf("%v", err)
				}
				if p.OnCommit != nil {
					p.OnCommit(rep.Dataset)
				}
			}
		}
		if rep.Err != nil {
			logf("crawler %s failed: %v", rep.Dataset, rep.Err)
		} else {
			logf("crawler %s done: %d nodes, %d links in %s", rep.Dataset, rep.NodesCreated, rep.LinksCreated, rep.Duration.Round(time.Millisecond))
		}
		reports = append(reports, rep)
	}
	wg.Wait()
	sort.Slice(reports, func(i, j int) bool { return reports[i].Dataset < reports[j].Dataset })
	return Report{Crawls: reports, Total: time.Since(start)}, ctx.Err()
}

// crawlOne supervises a single crawler's run with the per-crawler deadline,
// returning its session with the writes still staged — the caller commits
// (in declaration order) only when the report carries no error. A crawler
// that ignores its context past the deadline is abandoned — safe, because
// an uncommitted session only ever writes to its private staging buffer.
func (p *Pipeline) crawlOne(ctx context.Context, c Crawler, fetchTime time.Time) (*Session, CrawlReport) {
	ref := c.Reference()
	ref.FetchTime = fetchTime
	s := NewSession(p.Graph, p.Fetcher, ref)
	s.MaxFetchBytes = p.MaxFetchBytes

	cctx := ctx
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}

	t0 := time.Now()
	done := make(chan error, 1)
	go func() { done <- runIsolated(cctx, c, s) }()

	var err error
	select {
	case err = <-done:
	case <-cctx.Done():
		// The crawler is still running; abandon it without touching the
		// session again (it keeps writing to its own staging buffer, which
		// is never committed).
		if p.Timeout > 0 && errors.Is(cctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
			err = fmt.Errorf("%w after %s (staged writes discarded)", ErrCrawlTimeout, p.Timeout)
		} else {
			err = cctx.Err()
		}
	}
	return s, CrawlReport{
		Dataset:      ref.Name,
		Organization: ref.Organization,
		Duration:     time.Since(t0),
		Err:          err,
	}
}

// runIsolated converts crawler panics into errors so one malformed dataset
// cannot take down the build.
func runIsolated(ctx context.Context, c Crawler, s *Session) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ingest: crawler panic: %v", r)
		}
	}()
	return c.Run(ctx, s)
}
