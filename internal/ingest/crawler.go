// Package ingest is the ETL framework of the reproduction: the Crawler
// interface each dataset importer implements, the Session API that gives
// crawlers canonicalizing, provenance-annotating access to the graph
// (paper §2.3), and the parallel pipeline runner with per-crawler error
// isolation.
package ingest

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"iyp/internal/graph"
	"iyp/internal/netutil"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// Crawler imports one dataset into the knowledge graph.
type Crawler interface {
	// Reference identifies the dataset (organization, unique name,
	// URLs). The pipeline stamps fetch time.
	Reference() ontology.Reference
	// Run fetches the dataset through the session's fetcher and writes
	// nodes and relationships via the session.
	Run(ctx context.Context, s *Session) error
}

// Session is a crawler's window into the graph. It enforces the ontology's
// canonical identifier forms, deduplicates nodes, annotates every
// relationship with the dataset's provenance, and counts writes.
//
// A Session is a staging write-buffer: node upserts and links are recorded
// against the session and applied to the graph in one atomic Commit, which
// the pipeline issues only when the crawler's Run returned nil. A crawler
// that errors, panics, or times out therefore contributes zero nodes, zero
// links, and zero provenance to the shared graph — the paper's "a broken
// feed costs one dataset, not the snapshot" promise extended to writes.
//
// Node IDs handed out by a session are staging handles, valid only for
// calls back into the same session; they resolve to graph nodes at commit.
//
// A Session is used by a single crawler goroutine; commits from parallel
// sessions are serialized by the graph.
type Session struct {
	Fetcher source.Fetcher
	// MaxFetchBytes caps one Fetch payload (0 = source default). Oversized
	// payloads fail the fetch with source.ErrPayloadTooLarge instead of
	// ballooning the build.
	MaxFetchBytes int64

	g     *graph.Graph
	ref   ontology.Reference
	batch *graph.Batch
	cache map[cacheKey]graph.NodeID

	// Write counters for the pipeline report. Before Commit these count
	// staged writes; after Commit, the writes actually applied.
	committed    bool
	resolved     []graph.NodeID
	nodesCreated int
	linksCreated int
	fetches      []FetchRecord
}

// FetchRecord identifies one dataset payload read during a crawl: the path
// fetched and the SHA-256 of the bytes received. The ordered record list is
// a dataset's input fingerprint — a later build whose payloads hash the
// same at these paths would crawl to the same result, which is what lets a
// delta build skip the dataset entirely.
type FetchRecord struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
}

type cacheKey struct {
	entity string
	id     string
}

// NewSession builds a session for one crawler run. Most callers go through
// Pipeline.Run; tests use this directly.
func NewSession(g *graph.Graph, f source.Fetcher, ref ontology.Reference) *Session {
	return &Session{g: g, Fetcher: f, ref: ref, batch: graph.NewBatch(), cache: map[cacheKey]graph.NodeID{}}
}

// Reference returns the provenance attached to this session's writes.
func (s *Session) Reference() ontology.Reference { return s.ref }

// Graph returns the target graph. Staged writes are invisible here until
// Commit.
func (s *Session) Graph() *graph.Graph { return s.g }

// Fetch retrieves a dataset payload through the session's fetcher and
// records its content hash (see Fetches).
func (s *Session) Fetch(ctx context.Context, path string) ([]byte, error) {
	data, err := source.ReadAllLimit(ctx, s.Fetcher, path, s.MaxFetchBytes)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	s.fetches = append(s.fetches, FetchRecord{Path: path, SHA256: hex.EncodeToString(sum[:])})
	return data, nil
}

// Fetches returns the payloads this session has read, in fetch order —
// the dataset's input fingerprint. The slice is owned by the session.
func (s *Session) Fetches() []FetchRecord { return s.fetches }

// Commit atomically applies every staged write to the graph and records the
// applied write counts. It is idempotent; the pipeline calls it once after
// a successful crawler run. Sessions that are never committed leave the
// graph untouched.
func (s *Session) Commit() error {
	if s.committed {
		return nil
	}
	res, err := s.g.ApplyBatch(s.batch)
	if err != nil {
		return fmt.Errorf("ingest: %s: commit: %w", s.ref.Name, err)
	}
	s.committed = true
	s.resolved = res.IDs
	s.nodesCreated = res.NodesCreated
	s.linksCreated = res.RelsCreated
	return nil
}

// Committed reports whether the session's writes have been applied.
func (s *Session) Committed() bool { return s.committed }

// Resolve translates a staging handle returned by Node into the graph node
// it committed to (0 before Commit or for unknown handles).
func (s *Session) Resolve(id graph.NodeID) graph.NodeID {
	if !s.committed || id == 0 || int(id) > len(s.resolved) {
		return 0
	}
	return s.resolved[id-1]
}

// Node upserts the node of the given entity with identity value id,
// canonicalizing the identifier per the ontology (paper §2.3: IP
// addresses, prefixes, ASNs and country codes are normalized so that one
// node uniquely represents one resource across all datasets).
func (s *Session) Node(entity string, id any) (graph.NodeID, error) {
	key := ontology.IdentityKey(entity)
	if key == "" {
		return 0, fmt.Errorf("ingest: entity %q has no identity property", entity)
	}
	v, err := canonicalValue(entity, id)
	if err != nil {
		return 0, err
	}
	ck := cacheKey{entity, v.String()}
	if nid, ok := s.cache[ck]; ok {
		return nid, nil
	}
	nid := s.batch.MergeNode(entity, key, v, nil, nil)
	s.nodesCreated++
	s.cache[ck] = nid
	return nid, nil
}

// NodeWithProps is Node plus extra properties set on creation (existing
// values win, as in the IYP importers).
func (s *Session) NodeWithProps(entity string, id any, props graph.Props) (graph.NodeID, error) {
	nid, err := s.Node(entity, id)
	if err != nil {
		return 0, err
	}
	if err := s.batch.MergeProps(nid, props); err != nil {
		return 0, fmt.Errorf("ingest: %s: %w", s.ref.Name, err)
	}
	return nid, nil
}

// SetNodeProp stages an unconditional property write on a session node
// (crawlers that publish per-node metrics, e.g. hegemony scores, overwrite
// rather than merge).
func (s *Session) SetNodeProp(id graph.NodeID, key string, v graph.Value) error {
	if err := s.batch.SetNodeProp(id, key, v); err != nil {
		return fmt.Errorf("ingest: %s: %w", s.ref.Name, err)
	}
	return nil
}

// AddLabel stages an extra label on a session node (e.g. marking a
// HostName as AuthoritativeNameServer).
func (s *Session) AddLabel(id graph.NodeID, label string) error {
	if err := s.batch.AddLabel(id, label); err != nil {
		return fmt.Errorf("ingest: %s: %w", s.ref.Name, err)
	}
	return nil
}

// canonicalValue normalizes an identity value for the entity.
func canonicalValue(entity string, id any) (graph.Value, error) {
	switch entity {
	case ontology.AS:
		switch x := id.(type) {
		case string:
			asn, err := netutil.ParseASN(x)
			if err != nil {
				return graph.Null(), err
			}
			return graph.Int(int64(asn)), nil
		default:
			return graph.Of(id), nil
		}
	case ontology.IP:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: IP identity must be a string, got %T", id)
		}
		c, err := netutil.CanonicalIP(sv)
		if err != nil {
			return graph.Null(), err
		}
		return graph.String(c), nil
	case ontology.Prefix:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: prefix identity must be a string, got %T", id)
		}
		c, err := netutil.CanonicalPrefix(sv)
		if err != nil {
			return graph.Null(), err
		}
		return graph.String(c), nil
	case ontology.Country:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: country identity must be a string, got %T", id)
		}
		cc, ok := netutil.CanonicalCountryCode(sv)
		if !ok {
			// Keep unknown codes as-is (upper-cased); refinement fills
			// in what it can.
			cc = strings.ToUpper(strings.TrimSpace(sv))
		}
		return graph.String(cc), nil
	case ontology.HostName, ontology.DomainName, ontology.AuthoritativeNameServer:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: hostname identity must be a string, got %T", id)
		}
		return graph.String(netutil.CanonicalHostname(sv)), nil
	case ontology.URL:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: URL identity must be a string, got %T", id)
		}
		return graph.String(strings.TrimSpace(sv)), nil
	default:
		return graph.Of(id), nil
	}
}

func asString(id any) (string, bool) {
	switch x := id.(type) {
	case string:
		return x, true
	case graph.Value:
		return x.AsString()
	}
	return "", false
}

// Link stages a relationship annotated with the session's provenance
// reference. Extra props are merged in (reference properties win on
// collision, guaranteeing provenance integrity).
func (s *Session) Link(typ string, from, to graph.NodeID, props graph.Props) error {
	all := s.ref.Annotate(props.Clone())
	if err := s.batch.AddRel(typ, from, to, all); err != nil {
		return fmt.Errorf("ingest: %s: %w", s.ref.Name, err)
	}
	s.linksCreated++
	return nil
}

// Counts returns the session's write counters: staged writes before Commit,
// applied writes after (upserts that merged into pre-existing nodes no
// longer count as created).
func (s *Session) Counts() (nodes, links int) { return s.nodesCreated, s.linksCreated }

// --- base crawler ---

// Base provides the Reference plumbing shared by all crawlers; embed it
// and set the fields.
type Base struct {
	Org     string
	Name    string
	InfoURL string
	DataURL string
}

// Reference implements the Crawler interface's provenance half.
func (b Base) Reference() ontology.Reference {
	return ontology.Reference{
		Organization: b.Org,
		Name:         b.Name,
		InfoURL:      b.InfoURL,
		DataURL:      b.DataURL,
	}
}

// --- shared helpers used by multiple crawlers ---

// NameNode upserts a Name node (shared helper, used by every AS-names
// crawler). Cross-crawler deduplication is handled by the graph's
// identity-index upsert, which is atomic.
func (s *Session) NameNode(name string) (graph.NodeID, error) {
	return s.Node(ontology.Name, name)
}

// TagNode upserts a Tag node by label.
func (s *Session) TagNode(label string) (graph.NodeID, error) {
	return s.Node(ontology.Tag, label)
}
