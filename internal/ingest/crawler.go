// Package ingest is the ETL framework of the reproduction: the Crawler
// interface each dataset importer implements, the Session API that gives
// crawlers canonicalizing, provenance-annotating access to the graph
// (paper §2.3), and the parallel pipeline runner with per-crawler error
// isolation.
package ingest

import (
	"context"
	"fmt"
	"strings"

	"iyp/internal/graph"
	"iyp/internal/netutil"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// Crawler imports one dataset into the knowledge graph.
type Crawler interface {
	// Reference identifies the dataset (organization, unique name,
	// URLs). The pipeline stamps fetch time.
	Reference() ontology.Reference
	// Run fetches the dataset through the session's fetcher and writes
	// nodes and relationships via the session.
	Run(ctx context.Context, s *Session) error
}

// Session is a crawler's window into the graph. It enforces the ontology's
// canonical identifier forms, deduplicates nodes, annotates every
// relationship with the dataset's provenance, and counts writes.
//
// A Session is used by a single crawler goroutine; the underlying graph
// handles cross-crawler synchronization.
type Session struct {
	G       *graph.Graph
	Fetcher source.Fetcher

	ref   ontology.Reference
	cache map[cacheKey]graph.NodeID

	// Write counters for the pipeline report.
	nodesCreated int
	linksCreated int
}

type cacheKey struct {
	entity string
	id     string
}

// NewSession builds a session for one crawler run. Most callers go through
// Pipeline.Run; tests use this directly.
func NewSession(g *graph.Graph, f source.Fetcher, ref ontology.Reference) *Session {
	return &Session{G: g, Fetcher: f, ref: ref, cache: map[cacheKey]graph.NodeID{}}
}

// Reference returns the provenance attached to this session's writes.
func (s *Session) Reference() ontology.Reference { return s.ref }

// Fetch retrieves a dataset payload through the session's fetcher.
func (s *Session) Fetch(ctx context.Context, path string) ([]byte, error) {
	return source.ReadAll(ctx, s.Fetcher, path)
}

// Node upserts the node of the given entity with identity value id,
// canonicalizing the identifier per the ontology (paper §2.3: IP
// addresses, prefixes, ASNs and country codes are normalized so that one
// node uniquely represents one resource across all datasets).
func (s *Session) Node(entity string, id any) (graph.NodeID, error) {
	key := ontology.IdentityKey(entity)
	if key == "" {
		return 0, fmt.Errorf("ingest: entity %q has no identity property", entity)
	}
	v, err := canonicalValue(entity, id)
	if err != nil {
		return 0, err
	}
	ck := cacheKey{entity, v.String()}
	if nid, ok := s.cache[ck]; ok {
		return nid, nil
	}
	nid, created := s.G.MergeNode(entity, key, v, nil, nil)
	if created {
		s.nodesCreated++
	}
	s.cache[ck] = nid
	return nid, nil
}

// NodeWithProps is Node plus extra properties set on creation (existing
// values win, as in the IYP importers).
func (s *Session) NodeWithProps(entity string, id any, props graph.Props) (graph.NodeID, error) {
	nid, err := s.Node(entity, id)
	if err != nil {
		return 0, err
	}
	for k, v := range props {
		if s.G.NodeProp(nid, k).IsNull() {
			if err := s.G.SetNodeProp(nid, k, v); err != nil {
				return 0, err
			}
		}
	}
	return nid, nil
}

// canonicalValue normalizes an identity value for the entity.
func canonicalValue(entity string, id any) (graph.Value, error) {
	switch entity {
	case ontology.AS:
		switch x := id.(type) {
		case string:
			asn, err := netutil.ParseASN(x)
			if err != nil {
				return graph.Null(), err
			}
			return graph.Int(int64(asn)), nil
		default:
			return graph.Of(id), nil
		}
	case ontology.IP:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: IP identity must be a string, got %T", id)
		}
		c, err := netutil.CanonicalIP(sv)
		if err != nil {
			return graph.Null(), err
		}
		return graph.String(c), nil
	case ontology.Prefix:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: prefix identity must be a string, got %T", id)
		}
		c, err := netutil.CanonicalPrefix(sv)
		if err != nil {
			return graph.Null(), err
		}
		return graph.String(c), nil
	case ontology.Country:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: country identity must be a string, got %T", id)
		}
		cc, ok := netutil.CanonicalCountryCode(sv)
		if !ok {
			// Keep unknown codes as-is (upper-cased); refinement fills
			// in what it can.
			cc = strings.ToUpper(strings.TrimSpace(sv))
		}
		return graph.String(cc), nil
	case ontology.HostName, ontology.DomainName, ontology.AuthoritativeNameServer:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: hostname identity must be a string, got %T", id)
		}
		return graph.String(netutil.CanonicalHostname(sv)), nil
	case ontology.URL:
		sv, ok := asString(id)
		if !ok {
			return graph.Null(), fmt.Errorf("ingest: URL identity must be a string, got %T", id)
		}
		return graph.String(strings.TrimSpace(sv)), nil
	default:
		return graph.Of(id), nil
	}
}

func asString(id any) (string, bool) {
	switch x := id.(type) {
	case string:
		return x, true
	case graph.Value:
		return x.AsString()
	}
	return "", false
}

// Link creates a relationship annotated with the session's provenance
// reference. Extra props are merged in (reference properties win on
// collision, guaranteeing provenance integrity).
func (s *Session) Link(typ string, from, to graph.NodeID, props graph.Props) error {
	all := s.ref.Annotate(props.Clone())
	if _, err := s.G.AddRel(typ, from, to, all); err != nil {
		return fmt.Errorf("ingest: %s: %w", s.ref.Name, err)
	}
	s.linksCreated++
	return nil
}

// Counts returns the session's write counters.
func (s *Session) Counts() (nodes, links int) { return s.nodesCreated, s.linksCreated }

// --- base crawler ---

// Base provides the Reference plumbing shared by all crawlers; embed it
// and set the fields.
type Base struct {
	Org     string
	Name    string
	InfoURL string
	DataURL string
}

// Reference implements the Crawler interface's provenance half.
func (b Base) Reference() ontology.Reference {
	return ontology.Reference{
		Organization: b.Org,
		Name:         b.Name,
		InfoURL:      b.InfoURL,
		DataURL:      b.DataURL,
	}
}

// --- shared helpers used by multiple crawlers ---

// NameNode upserts a Name node (shared helper, used by every AS-names
// crawler). Cross-crawler deduplication is handled by the graph's
// identity-index upsert, which is atomic.
func (s *Session) NameNode(name string) (graph.NodeID, error) {
	return s.Node(ontology.Name, name)
}

// TagNode upserts a Tag node by label.
func (s *Session) TagNode(label string) (graph.NodeID, error) {
	return s.Node(ontology.Tag, label)
}
