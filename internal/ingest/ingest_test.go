package ingest

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"iyp/internal/graph"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

func testSession(t *testing.T) *Session {
	t.Helper()
	g := graph.New()
	return NewSession(g, source.NewCatalog(), ontology.Reference{
		Organization: "Test Org", Name: "test.dataset",
	})
}

func TestSessionNodeCanonicalization(t *testing.T) {
	s := testSession(t)

	// The paper's §2.3 example: two spellings of one IPv6 prefix must
	// merge into a single node.
	a, err := s.Node(ontology.Prefix, "2001:DB8::/32")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Node(ontology.Prefix, "2001:0db8::/32")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("prefix spellings did not deduplicate")
	}
	if v, _ := s.G.NodeProp(a, "prefix").AsString(); v != "2001:db8::/32" {
		t.Errorf("canonical form = %q", v)
	}

	// ASN spellings.
	x, _ := s.Node(ontology.AS, "AS2497")
	y, _ := s.Node(ontology.AS, uint32(2497))
	z, _ := s.Node(ontology.AS, "2497")
	if x != y || y != z {
		t.Error("ASN spellings did not deduplicate")
	}

	// IP spellings.
	i1, _ := s.Node(ontology.IP, "2001:DB8:0:0:0:0:0:1")
	i2, _ := s.Node(ontology.IP, "2001:db8::1")
	if i1 != i2 {
		t.Error("IP spellings did not deduplicate")
	}

	// Country codes: alpha-3 folds into alpha-2.
	c1, _ := s.Node(ontology.Country, "usa")
	c2, _ := s.Node(ontology.Country, "US")
	if c1 != c2 {
		t.Error("country codes did not deduplicate")
	}
	// Unknown codes survive upper-cased rather than erroring.
	c3, err := s.Node(ontology.Country, "zz")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.G.NodeProp(c3, "country_code").AsString(); v != "ZZ" {
		t.Errorf("unknown country = %q", v)
	}

	// Hostnames: case and trailing dot.
	h1, _ := s.Node(ontology.HostName, "WWW.Example.COM.")
	h2, _ := s.Node(ontology.HostName, "www.example.com")
	if h1 != h2 {
		t.Error("hostname spellings did not deduplicate")
	}

	// Invalid identifiers error instead of creating garbage nodes.
	if _, err := s.Node(ontology.IP, "not-an-ip"); err == nil {
		t.Error("invalid IP should error")
	}
	if _, err := s.Node(ontology.Prefix, "10.0.0.0/99"); err == nil {
		t.Error("invalid prefix should error")
	}
	if _, err := s.Node(ontology.AS, "ASxyz"); err == nil {
		t.Error("invalid ASN should error")
	}
	if _, err := s.Node("NotAnEntity", "x"); err == nil {
		t.Error("unknown entity should error")
	}
}

func TestSessionNodeCountsAndCache(t *testing.T) {
	s := testSession(t)
	for i := 0; i < 3; i++ {
		if _, err := s.Node(ontology.AS, uint32(1000)); err != nil {
			t.Fatal(err)
		}
	}
	nodes, _ := s.Counts()
	if nodes != 1 {
		t.Errorf("nodesCreated = %d, want 1", nodes)
	}
}

func TestSessionLinkProvenance(t *testing.T) {
	s := testSession(t)
	a, _ := s.Node(ontology.AS, uint32(1))
	p, _ := s.Node(ontology.Prefix, "10.0.0.0/8")
	if err := s.Link(ontology.Originate, a, p, graph.Props{"count": graph.Int(2)}); err != nil {
		t.Fatal(err)
	}
	_, links := s.Counts()
	if links != 1 {
		t.Errorf("linksCreated = %d", links)
	}
	rels := s.G.Rels(a, graph.DirOut, nil, nil)
	if len(rels) != 1 {
		t.Fatalf("rels = %d", len(rels))
	}
	props := s.G.RelProps(rels[0])
	if v, _ := props[ontology.PropReferenceName].AsString(); v != "test.dataset" {
		t.Errorf("provenance name = %v", props[ontology.PropReferenceName])
	}
	if v, _ := props[ontology.PropReferenceOrg].AsString(); v != "Test Org" {
		t.Errorf("provenance org = %v", props[ontology.PropReferenceOrg])
	}
	if v, _ := props["count"].AsInt(); v != 2 {
		t.Error("caller props lost")
	}
}

func TestNodeWithProps(t *testing.T) {
	s := testSession(t)
	id, err := s.NodeWithProps(ontology.AtlasProbe, 42, graph.Props{"status": graph.String("Connected")})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s.G.NodeProp(id, "status").AsString(); v != "Connected" {
		t.Error("props not set on create")
	}
	// Existing values win.
	if _, err := s.NodeWithProps(ontology.AtlasProbe, 42, graph.Props{"status": graph.String("Abandoned")}); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.G.NodeProp(id, "status").AsString(); v != "Connected" {
		t.Error("existing prop overwritten")
	}
}

// --- pipeline ---

type fakeCrawler struct {
	Base
	run func(ctx context.Context, s *Session) error
}

func (f *fakeCrawler) Run(ctx context.Context, s *Session) error { return f.run(ctx, s) }

func TestPipelineRunsAllCrawlersInParallel(t *testing.T) {
	g := graph.New()
	var crawlers []Crawler
	for i := 0; i < 10; i++ {
		asn := uint32(1000 + i)
		crawlers = append(crawlers, &fakeCrawler{
			Base: Base{Org: "T", Name: "t.ds" + string(rune('a'+i))},
			run: func(_ context.Context, s *Session) error {
				id, err := s.Node(ontology.AS, asn)
				if err != nil {
					return err
				}
				name, err := s.NameNode("X")
				if err != nil {
					return err
				}
				return s.Link(ontology.NameRel, id, name, nil)
			},
		})
	}
	p := &Pipeline{Graph: g, Fetcher: source.NewCatalog(), Crawlers: crawlers, Concurrency: 4}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Crawls) != 10 || len(rep.Failed()) != 0 {
		t.Fatalf("report: %d crawls, %d failed", len(rep.Crawls), len(rep.Failed()))
	}
	if got := g.CountByLabel("AS"); got != 10 {
		t.Errorf("AS nodes = %d", got)
	}
	// The shared Name node deduplicated across parallel sessions.
	if got := g.CountByLabel("Name"); got != 1 {
		t.Errorf("Name nodes = %d, want 1", got)
	}
	if !strings.Contains(rep.String(), "t.dsa") {
		t.Error("report table missing dataset names")
	}
}

func TestPipelineIsolatesErrorsAndPanics(t *testing.T) {
	g := graph.New()
	crawlers := []Crawler{
		&fakeCrawler{Base: Base{Org: "T", Name: "t.ok"}, run: func(_ context.Context, s *Session) error {
			_, err := s.Node(ontology.AS, uint32(1))
			return err
		}},
		&fakeCrawler{Base: Base{Org: "T", Name: "t.fails"}, run: func(context.Context, *Session) error {
			return errors.New("feed is down")
		}},
		&fakeCrawler{Base: Base{Org: "T", Name: "t.panics"}, run: func(context.Context, *Session) error {
			panic("malformed data")
		}},
	}
	p := &Pipeline{Graph: g, Fetcher: source.NewCatalog(), Crawlers: crawlers}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	failed := rep.Failed()
	if len(failed) != 2 {
		t.Fatalf("failed = %d, want 2", len(failed))
	}
	// One dataset failing must not abort the others.
	if got := g.CountByLabel("AS"); got != 1 {
		t.Errorf("AS nodes = %d (good crawler should have run)", got)
	}
	for _, f := range failed {
		if f.Err == nil {
			t.Error("failed crawl without error")
		}
		if f.Dataset == "t.panics" && !strings.Contains(f.Err.Error(), "panic") {
			t.Errorf("panic not converted to error: %v", f.Err)
		}
	}
}

func TestPipelineStampsFetchTime(t *testing.T) {
	g := graph.New()
	fixed := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	c := &fakeCrawler{Base: Base{Org: "T", Name: "t.x"}, run: func(_ context.Context, s *Session) error {
		a, _ := s.Node(ontology.AS, uint32(1))
		b, _ := s.Node(ontology.AS, uint32(2))
		return s.Link(ontology.PeersWith, a, b, nil)
	}}
	p := &Pipeline{Graph: g, Fetcher: source.NewCatalog(), Crawlers: []Crawler{c}, FetchTime: fixed}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var found bool
	g.EachRel(func(id graph.RelID) bool {
		if v, _ := g.RelProp(id, ontology.PropReferenceFetch).AsString(); v == "2024-05-01T00:00:00Z" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("fetch time not stamped on relationships")
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Pipeline{Graph: graph.New(), Fetcher: source.NewCatalog(), Crawlers: []Crawler{
		&fakeCrawler{Base: Base{Org: "T", Name: "t.x"}, run: func(context.Context, *Session) error { return nil }},
	}}
	if _, err := p.Run(ctx); err == nil {
		t.Error("cancelled context should surface an error")
	}
}
