package ingest

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"iyp/internal/graph"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

func testSession(t *testing.T) *Session {
	t.Helper()
	g := graph.New()
	return NewSession(g, source.NewCatalog(), ontology.Reference{
		Organization: "Test Org", Name: "test.dataset",
	})
}

// commit applies the session's staged writes and fails the test on error.
func commit(t *testing.T, s *Session) {
	t.Helper()
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionNodeCanonicalization(t *testing.T) {
	s := testSession(t)

	// The paper's §2.3 example: two spellings of one IPv6 prefix must
	// merge into a single node.
	a, err := s.Node(ontology.Prefix, "2001:DB8::/32")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Node(ontology.Prefix, "2001:0db8::/32")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("prefix spellings did not deduplicate")
	}

	// ASN spellings.
	x, _ := s.Node(ontology.AS, "AS2497")
	y, _ := s.Node(ontology.AS, uint32(2497))
	z, _ := s.Node(ontology.AS, "2497")
	if x != y || y != z {
		t.Error("ASN spellings did not deduplicate")
	}

	// IP spellings.
	i1, _ := s.Node(ontology.IP, "2001:DB8:0:0:0:0:0:1")
	i2, _ := s.Node(ontology.IP, "2001:db8::1")
	if i1 != i2 {
		t.Error("IP spellings did not deduplicate")
	}

	// Country codes: alpha-3 folds into alpha-2.
	c1, _ := s.Node(ontology.Country, "usa")
	c2, _ := s.Node(ontology.Country, "US")
	if c1 != c2 {
		t.Error("country codes did not deduplicate")
	}
	// Unknown codes survive upper-cased rather than erroring.
	c3, err := s.Node(ontology.Country, "zz")
	if err != nil {
		t.Fatal(err)
	}

	// Hostnames: case and trailing dot.
	h1, _ := s.Node(ontology.HostName, "WWW.Example.COM.")
	h2, _ := s.Node(ontology.HostName, "www.example.com")
	if h1 != h2 {
		t.Error("hostname spellings did not deduplicate")
	}

	// Invalid identifiers error instead of creating garbage nodes.
	if _, err := s.Node(ontology.IP, "not-an-ip"); err == nil {
		t.Error("invalid IP should error")
	}
	if _, err := s.Node(ontology.Prefix, "10.0.0.0/99"); err == nil {
		t.Error("invalid prefix should error")
	}
	if _, err := s.Node(ontology.AS, "ASxyz"); err == nil {
		t.Error("invalid ASN should error")
	}
	if _, err := s.Node("NotAnEntity", "x"); err == nil {
		t.Error("unknown entity should error")
	}

	// Canonical forms land in the graph at commit.
	commit(t, s)
	g := s.Graph()
	if v, _ := g.NodeProp(s.Resolve(a), "prefix").AsString(); v != "2001:db8::/32" {
		t.Errorf("canonical form = %q", v)
	}
	if v, _ := g.NodeProp(s.Resolve(c3), "country_code").AsString(); v != "ZZ" {
		t.Errorf("unknown country = %q", v)
	}
}

func TestSessionNodeCountsAndCache(t *testing.T) {
	s := testSession(t)
	for i := 0; i < 3; i++ {
		if _, err := s.Node(ontology.AS, uint32(1000)); err != nil {
			t.Fatal(err)
		}
	}
	nodes, _ := s.Counts()
	if nodes != 1 {
		t.Errorf("staged nodes = %d, want 1", nodes)
	}
	commit(t, s)
	nodes, _ = s.Counts()
	if nodes != 1 {
		t.Errorf("applied nodes = %d, want 1", nodes)
	}
}

func TestSessionStagesUntilCommit(t *testing.T) {
	s := testSession(t)
	a, _ := s.Node(ontology.AS, uint32(1))
	b, _ := s.Node(ontology.AS, uint32(2))
	if err := s.Link(ontology.PeersWith, a, b, nil); err != nil {
		t.Fatal(err)
	}
	if s.Graph().NumNodes() != 0 || s.Graph().NumRels() != 0 {
		t.Fatal("staged writes leaked into the graph before Commit")
	}
	if s.Committed() {
		t.Error("session reports committed before Commit")
	}
	commit(t, s)
	if s.Graph().NumNodes() != 2 || s.Graph().NumRels() != 1 {
		t.Errorf("graph after commit: %d nodes, %d rels", s.Graph().NumNodes(), s.Graph().NumRels())
	}
	// Commit is idempotent.
	commit(t, s)
	if s.Graph().NumRels() != 1 {
		t.Error("double commit duplicated writes")
	}
}

func TestSessionDiscardLeavesGraphUntouched(t *testing.T) {
	g := graph.New()
	s := NewSession(g, source.NewCatalog(), ontology.Reference{Organization: "T", Name: "t.x"})
	a, _ := s.Node(ontology.AS, uint32(1))
	p, _ := s.Node(ontology.Prefix, "10.0.0.0/8")
	if err := s.Link(ontology.Originate, a, p, nil); err != nil {
		t.Fatal(err)
	}
	// Never committed: the graph must show no trace of the session.
	if g.NumNodes() != 0 || g.NumRels() != 0 {
		t.Errorf("uncommitted session wrote to the graph: %d nodes, %d rels", g.NumNodes(), g.NumRels())
	}
}

func TestSessionLinkProvenance(t *testing.T) {
	s := testSession(t)
	a, _ := s.Node(ontology.AS, uint32(1))
	p, _ := s.Node(ontology.Prefix, "10.0.0.0/8")
	if err := s.Link(ontology.Originate, a, p, graph.Props{"count": graph.Int(2)}); err != nil {
		t.Fatal(err)
	}
	_, links := s.Counts()
	if links != 1 {
		t.Errorf("linksCreated = %d", links)
	}
	commit(t, s)
	g := s.Graph()
	rels := g.Rels(s.Resolve(a), graph.DirOut, nil, nil)
	if len(rels) != 1 {
		t.Fatalf("rels = %d", len(rels))
	}
	props := g.RelProps(rels[0])
	if v, _ := props[ontology.PropReferenceName].AsString(); v != "test.dataset" {
		t.Errorf("provenance name = %v", props[ontology.PropReferenceName])
	}
	if v, _ := props[ontology.PropReferenceOrg].AsString(); v != "Test Org" {
		t.Errorf("provenance org = %v", props[ontology.PropReferenceOrg])
	}
	if v, _ := props["count"].AsInt(); v != 2 {
		t.Error("caller props lost")
	}
}

func TestNodeWithProps(t *testing.T) {
	s := testSession(t)
	id, err := s.NodeWithProps(ontology.AtlasProbe, 42, graph.Props{"status": graph.String("Connected")})
	if err != nil {
		t.Fatal(err)
	}
	// First staged value wins within the session...
	if _, err := s.NodeWithProps(ontology.AtlasProbe, 42, graph.Props{"status": graph.String("Abandoned")}); err != nil {
		t.Fatal(err)
	}
	commit(t, s)
	if v, _ := s.Graph().NodeProp(s.Resolve(id), "status").AsString(); v != "Connected" {
		t.Error("first staged prop overwritten")
	}
	// ...and existing graph values win over a later session's props.
	s2 := NewSession(s.Graph(), source.NewCatalog(), ontology.Reference{Organization: "T", Name: "t.2"})
	id2, err := s2.NodeWithProps(ontology.AtlasProbe, 42, graph.Props{"status": graph.String("Abandoned")})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, s2)
	if v, _ := s2.Graph().NodeProp(s2.Resolve(id2), "status").AsString(); v != "Connected" {
		t.Error("existing prop overwritten by later session")
	}
}

func TestSessionSetNodePropAndAddLabel(t *testing.T) {
	s := testSession(t)
	as, _ := s.Node(ontology.AS, uint32(2497))
	if err := s.SetNodeProp(as, "hegemony", graph.Float(0.5)); err != nil {
		t.Fatal(err)
	}
	host, _ := s.Node(ontology.HostName, "ns1.example.com")
	if err := s.AddLabel(host, ontology.AuthoritativeNameServer); err != nil {
		t.Fatal(err)
	}
	// Stale handles from another session are rejected at staging time.
	if err := s.SetNodeProp(9999, "x", graph.Int(1)); err == nil {
		t.Error("invalid handle must error")
	}
	commit(t, s)
	g := s.Graph()
	if v, _ := g.NodeProp(s.Resolve(as), "hegemony").AsFloat(); v != 0.5 {
		t.Errorf("hegemony = %v", v)
	}
	if !g.NodeHasLabel(s.Resolve(host), ontology.AuthoritativeNameServer) {
		t.Error("staged label not applied")
	}
}

// --- pipeline ---

type fakeCrawler struct {
	Base
	run func(ctx context.Context, s *Session) error
}

func (f *fakeCrawler) Run(ctx context.Context, s *Session) error { return f.run(ctx, s) }

func TestPipelineRunsAllCrawlersInParallel(t *testing.T) {
	g := graph.New()
	var crawlers []Crawler
	for i := 0; i < 10; i++ {
		asn := uint32(1000 + i)
		crawlers = append(crawlers, &fakeCrawler{
			Base: Base{Org: "T", Name: "t.ds" + string(rune('a'+i))},
			run: func(_ context.Context, s *Session) error {
				id, err := s.Node(ontology.AS, asn)
				if err != nil {
					return err
				}
				name, err := s.NameNode("X")
				if err != nil {
					return err
				}
				return s.Link(ontology.NameRel, id, name, nil)
			},
		})
	}
	p := &Pipeline{Graph: g, Fetcher: source.NewCatalog(), Crawlers: crawlers, Concurrency: 4}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Crawls) != 10 || len(rep.Failed()) != 0 {
		t.Fatalf("report: %d crawls, %d failed", len(rep.Crawls), len(rep.Failed()))
	}
	if got := g.CountByLabel("AS"); got != 10 {
		t.Errorf("AS nodes = %d", got)
	}
	// The shared Name node deduplicated across parallel sessions.
	if got := g.CountByLabel("Name"); got != 1 {
		t.Errorf("Name nodes = %d, want 1", got)
	}
	if !strings.Contains(rep.String(), "t.dsa") {
		t.Error("report table missing dataset names")
	}
}

func TestPipelineIsolatesErrorsAndPanics(t *testing.T) {
	g := graph.New()
	crawlers := []Crawler{
		&fakeCrawler{Base: Base{Org: "T", Name: "t.ok"}, run: func(_ context.Context, s *Session) error {
			_, err := s.Node(ontology.AS, uint32(1))
			return err
		}},
		&fakeCrawler{Base: Base{Org: "T", Name: "t.fails"}, run: func(context.Context, *Session) error {
			return errors.New("feed is down")
		}},
		&fakeCrawler{Base: Base{Org: "T", Name: "t.panics"}, run: func(context.Context, *Session) error {
			panic("malformed data")
		}},
	}
	p := &Pipeline{Graph: g, Fetcher: source.NewCatalog(), Crawlers: crawlers}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	failed := rep.Failed()
	if len(failed) != 2 {
		t.Fatalf("failed = %d, want 2", len(failed))
	}
	// One dataset failing must not abort the others.
	if got := g.CountByLabel("AS"); got != 1 {
		t.Errorf("AS nodes = %d (good crawler should have run)", got)
	}
	for _, f := range failed {
		if f.Err == nil {
			t.Error("failed crawl without error")
		}
		if f.Dataset == "t.panics" && !strings.Contains(f.Err.Error(), "panic") {
			t.Errorf("panic not converted to error: %v", f.Err)
		}
	}
}

func TestPipelineDiscardsWritesOfFailedCrawlers(t *testing.T) {
	// The atomic-commit guarantee: a crawler that errors or panics midway
	// through writing leaves zero nodes, links, or provenance behind.
	g := graph.New()
	writeThenDie := func(die func()) func(context.Context, *Session) error {
		return func(_ context.Context, s *Session) error {
			a, _ := s.Node(ontology.AS, uint32(666))
			p, _ := s.Node(ontology.Prefix, "192.0.2.0/24")
			if err := s.Link(ontology.Originate, a, p, nil); err != nil {
				return err
			}
			die()
			return nil
		}
	}
	crawlers := []Crawler{
		&fakeCrawler{Base: Base{Org: "T", Name: "t.errs"}, run: func(ctx context.Context, s *Session) error {
			if err := writeThenDie(func() {})(ctx, s); err != nil {
				return err
			}
			return errors.New("died after writing half the dataset")
		}},
		&fakeCrawler{Base: Base{Org: "T", Name: "t.panics"}, run: writeThenDie(func() { panic("boom") })},
		&fakeCrawler{Base: Base{Org: "T", Name: "t.ok"}, run: func(_ context.Context, s *Session) error {
			_, err := s.Node(ontology.AS, uint32(1))
			return err
		}},
	}
	p := &Pipeline{Graph: g, Fetcher: source.NewCatalog(), Crawlers: crawlers}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed()) != 2 {
		t.Fatalf("failed = %d, want 2", len(rep.Failed()))
	}
	st := g.Stats()
	if st.Nodes != 1 || st.Rels != 0 {
		t.Errorf("failed crawlers left writes behind: %d nodes, %d rels", st.Nodes, st.Rels)
	}
	if len(g.NodesByProp(ontology.AS, "asn", graph.Int(666))) != 0 {
		t.Error("failed crawler's node survived")
	}
	// Failed crawls report zero writes.
	for _, f := range rep.Failed() {
		if f.NodesCreated != 0 || f.LinksCreated != 0 {
			t.Errorf("%s reports %d nodes, %d links despite failing", f.Dataset, f.NodesCreated, f.LinksCreated)
		}
	}
}

func TestPipelineTimeoutAbandonsHungCrawler(t *testing.T) {
	g := graph.New()
	hungStarted := make(chan struct{})
	crawlers := []Crawler{
		// Worst case: a crawler that ignores its context entirely.
		&fakeCrawler{Base: Base{Org: "T", Name: "t.hung"}, run: func(_ context.Context, s *Session) error {
			_, _ = s.Node(ontology.AS, uint32(666))
			close(hungStarted)
			time.Sleep(500 * time.Millisecond)
			return nil
		}},
		&fakeCrawler{Base: Base{Org: "T", Name: "t.ok"}, run: func(_ context.Context, s *Session) error {
			_, err := s.Node(ontology.AS, uint32(1))
			return err
		}},
	}
	p := &Pipeline{Graph: g, Fetcher: source.NewCatalog(), Crawlers: crawlers, Timeout: 30 * time.Millisecond}
	start := time.Now()
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-hungStarted
	if time.Since(start) > 400*time.Millisecond {
		t.Error("hung crawler stalled the build past its deadline")
	}
	failed := rep.Failed()
	if len(failed) != 1 || failed[0].Dataset != "t.hung" {
		t.Fatalf("failed = %v", failed)
	}
	if !errors.Is(failed[0].Err, ErrCrawlTimeout) {
		t.Errorf("timeout not classified: %v", failed[0].Err)
	}
	// The healthy crawler completed and committed; the hung one's staged
	// writes are gone.
	if got := g.CountByLabel("AS"); got != 1 {
		t.Errorf("AS nodes = %d, want 1", got)
	}
	if len(g.NodesByProp(ontology.AS, "asn", graph.Int(666))) != 0 {
		t.Error("hung crawler's staged write leaked into the graph")
	}
}

func TestPipelineStampsFetchTime(t *testing.T) {
	g := graph.New()
	fixed := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	c := &fakeCrawler{Base: Base{Org: "T", Name: "t.x"}, run: func(_ context.Context, s *Session) error {
		a, _ := s.Node(ontology.AS, uint32(1))
		b, _ := s.Node(ontology.AS, uint32(2))
		return s.Link(ontology.PeersWith, a, b, nil)
	}}
	p := &Pipeline{Graph: g, Fetcher: source.NewCatalog(), Crawlers: []Crawler{c}, FetchTime: fixed}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var found bool
	g.EachRel(func(id graph.RelID) bool {
		if v, _ := g.RelProp(id, ontology.PropReferenceFetch).AsString(); v == "2024-05-01T00:00:00Z" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("fetch time not stamped on relationships")
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Pipeline{Graph: graph.New(), Fetcher: source.NewCatalog(), Crawlers: []Crawler{
		&fakeCrawler{Base: Base{Org: "T", Name: "t.x"}, run: func(context.Context, *Session) error { return nil }},
	}}
	if _, err := p.Run(ctx); err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestPipelineCancellationAwaitsLaunchedCrawlers(t *testing.T) {
	// The mid-run cancellation path must wg.Wait() for every launched
	// supervisor before returning — no goroutines left racing on the
	// report slice (the race detector guards this test).
	g := graph.New()
	ctx, cancel := context.WithCancel(context.Background())
	var started sync.WaitGroup
	started.Add(1)
	var once sync.Once
	var crawlers []Crawler
	for i := 0; i < 8; i++ {
		crawlers = append(crawlers, &fakeCrawler{
			Base: Base{Org: "T", Name: "t.slow" + string(rune('a'+i))},
			run: func(ctx context.Context, s *Session) error {
				once.Do(func() { started.Done() })
				<-ctx.Done()
				return ctx.Err()
			},
		})
	}
	go func() {
		started.Wait()
		cancel()
	}()
	p := &Pipeline{Graph: g, Fetcher: source.NewCatalog(), Crawlers: crawlers, Concurrency: 2}
	rep, err := p.Run(ctx)
	if err == nil {
		t.Error("cancelled run should return the context error")
	}
	// Every recorded crawl belongs to a fully-supervised goroutine.
	for _, c := range rep.Crawls {
		if c.Err == nil {
			t.Errorf("crawler %s reported success under cancellation", c.Dataset)
		}
	}
	if g.NumNodes() != 0 {
		t.Error("cancelled crawlers committed writes")
	}
}

func TestRunIsolated(t *testing.T) {
	s := testSession(t)
	ok := &fakeCrawler{Base: Base{Org: "T", Name: "t.ok"}, run: func(context.Context, *Session) error { return nil }}
	if err := runIsolated(context.Background(), ok, s); err != nil {
		t.Errorf("clean run: %v", err)
	}
	fails := &fakeCrawler{Base: Base{Org: "T", Name: "t.f"}, run: func(context.Context, *Session) error {
		return errors.New("broken feed")
	}}
	if err := runIsolated(context.Background(), fails, s); err == nil || !strings.Contains(err.Error(), "broken feed") {
		t.Errorf("error not propagated: %v", err)
	}
	panics := &fakeCrawler{Base: Base{Org: "T", Name: "t.p"}, run: func(context.Context, *Session) error {
		var m map[string]int
		m["write"] = 1 // real runtime panic, not a panic(string)
		return nil
	}}
	err := runIsolated(context.Background(), panics, s)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Errorf("runtime panic not recovered: %v", err)
	}
}

func TestReportFailedAndString(t *testing.T) {
	rep := Report{
		Crawls: []CrawlReport{
			{Dataset: "a.ok", Organization: "A", NodesCreated: 3, LinksCreated: 5, Duration: 12 * time.Millisecond},
			{Dataset: "b.down", Organization: "B", Err: errors.New("503 upstream")},
			{Dataset: "c.ok", Organization: "C", NodesCreated: 1},
		},
		Total:      100 * time.Millisecond,
		Degraded:   true,
		PolicyNote: "degraded: 2/3 datasets ingested",
	}
	failed := rep.Failed()
	if len(failed) != 1 || failed[0].Dataset != "b.down" {
		t.Errorf("Failed() = %v", failed)
	}
	out := rep.String()
	for _, want := range []string{"a.ok", "ERROR: 503 upstream", "total:", "policy: degraded: 2/3"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// An all-clean report has no failures and no policy line.
	clean := Report{Crawls: []CrawlReport{{Dataset: "a.ok"}}}
	if len(clean.Failed()) != 0 {
		t.Error("clean report lists failures")
	}
	if strings.Contains(clean.String(), "policy:") {
		t.Error("clean report prints an empty policy line")
	}
}
