package ingest

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"iyp/internal/graph"
)

// Checkpoint makes builds resumable: after every successful crawler commit
// the pipeline journals the committed graph.Batch to disk (fsync'd) and
// appends a manifest record, so a crashed or cancelled build can replay the
// already-ingested datasets instead of re-fetching them. Because the
// pipeline commits in deterministic dataset order and a journal replays
// into an identical ApplyBatch call, a resumed build's final graph is
// byte-identical (as a snapshot) to an uninterrupted build's.
//
// Layout:
//
//	dir/MANIFEST          header + one "commit ..." line per journaled dataset
//	dir/j-000001.batch    batch journals (graph.WriteBatch format)
//
// The manifest header pins the build fingerprint (config + dataset set) and
// the fetch timestamp, so a checkpoint is only ever resumed into the build
// that started it. Records are appended and fsync'd one at a time; a torn
// tail invalidates only the records from the tear onward, and the journals'
// own checksums are verified again at replay.
type Checkpoint struct {
	dir         string
	fingerprint string
	fetchTime   time.Time

	mu        sync.Mutex
	manifest  *os.File // open for appending records
	committed []checkpointEntry
	disabled  bool
}

type checkpointEntry struct {
	seq     int
	dataset string
	file    string
	size    int64
	crc     uint32
}

const (
	checkpointManifest = "MANIFEST"
	checkpointHeader   = "iyp-checkpoint v1"
)

// ErrNoCheckpoint is returned by OpenCheckpoint when dir holds no usable
// checkpoint.
var ErrNoCheckpoint = errors.New("ingest: no checkpoint")

// CreateCheckpoint starts a fresh checkpoint in dir, discarding any
// previous contents, and pins the build fingerprint and fetch time.
func CreateCheckpoint(dir, fingerprint string, fetchTime time.Time) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Discard stale journals and manifest from a previous build.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.Name() == checkpointManifest || strings.HasSuffix(e.Name(), ".batch") || strings.Contains(e.Name(), ".tmp-") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, err
			}
		}
	}
	cp := &Checkpoint{dir: dir, fingerprint: fingerprint, fetchTime: fetchTime.UTC()}
	f, err := os.OpenFile(filepath.Join(dir, checkpointManifest), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(f, "%s %s %s\n", checkpointHeader, fingerprint, cp.fetchTime.Format(time.RFC3339Nano)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	cp.manifest = f
	return cp, nil
}

// OpenCheckpoint opens an existing checkpoint for resuming. It validates
// every manifest record against the journal file on disk (existence, size,
// whole-file CRC32C) and truncates at the first bad record — a torn append
// or a damaged journal costs the tail, not the checkpoint. The manifest is
// durably rewritten to the validated prefix and reopened for appending.
func OpenCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointManifest))
	if err != nil {
		return nil, fmt.Errorf("%w in %s: %v", ErrNoCheckpoint, dir, err)
	}
	lines := strings.Split(string(data), "\n")
	var fingerprint, stamp string
	if len(lines) == 0 {
		return nil, fmt.Errorf("%w in %s: empty manifest", ErrNoCheckpoint, dir)
	}
	if n, err := fmt.Sscanf(lines[0], checkpointHeader+" %s %s", &fingerprint, &stamp); n != 2 || err != nil {
		return nil, fmt.Errorf("%w in %s: bad manifest header", ErrNoCheckpoint, dir)
	}
	fetchTime, err := time.Parse(time.RFC3339Nano, stamp)
	if err != nil {
		return nil, fmt.Errorf("%w in %s: bad fetch time: %v", ErrNoCheckpoint, dir, err)
	}
	cp := &Checkpoint{dir: dir, fingerprint: fingerprint, fetchTime: fetchTime}
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var e checkpointEntry
		n, err := fmt.Sscanf(line, "commit %d %s %d %08x %q", &e.seq, &e.file, &e.size, &e.crc, &e.dataset)
		if n != 5 || err != nil {
			break // torn append: trust only the prefix
		}
		if e.seq != len(cp.committed)+1 {
			break
		}
		if reason := cp.verifyJournal(e); reason != "" {
			break // damaged journal: everything from here on must be re-run
		}
		cp.committed = append(cp.committed, e)
	}
	// Rewrite the manifest to the validated prefix so later appends never
	// land after a torn record, then reopen for appending.
	if err := cp.rewriteManifest(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, checkpointManifest), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cp.manifest = f
	return cp, nil
}

// verifyJournal checks a journal file against its manifest record. Empty
// string = good.
func (cp *Checkpoint) verifyJournal(e checkpointEntry) string {
	path := filepath.Join(cp.dir, e.file)
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Sprintf("missing: %v", err)
	}
	if info.Size() != e.size {
		return fmt.Sprintf("size mismatch (manifest %d, file %d)", e.size, info.Size())
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Sprintf("unreadable: %v", err)
	}
	defer f.Close()
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	if _, err := io.Copy(h, f); err != nil {
		return fmt.Sprintf("unreadable: %v", err)
	}
	if h.Sum32() != e.crc {
		return fmt.Sprintf("checksum mismatch (manifest %08x, file %08x)", e.crc, h.Sum32())
	}
	return ""
}

func (cp *Checkpoint) rewriteManifest() error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s %s\n", checkpointHeader, cp.fingerprint, cp.fetchTime.Format(time.RFC3339Nano))
	for _, e := range cp.committed {
		fmt.Fprintf(&sb, "commit %d %s %d %08x %q\n", e.seq, e.file, e.size, e.crc, e.dataset)
	}
	path := filepath.Join(cp.dir, checkpointManifest)
	f, err := os.CreateTemp(cp.dir, checkpointManifest+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.WriteString(sb.String()); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Fingerprint returns the build fingerprint pinned at creation.
func (cp *Checkpoint) Fingerprint() string { return cp.fingerprint }

// FetchTime returns the provenance timestamp pinned at creation; a resumed
// build must reuse it so replayed and freshly-crawled provenance agree.
func (cp *Checkpoint) FetchTime() time.Time { return cp.fetchTime }

// Datasets returns the journaled dataset names, in commit order.
func (cp *Checkpoint) Datasets() []string {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]string, len(cp.committed))
	for i, e := range cp.committed {
		out[i] = e.dataset
	}
	return out
}

// ReplayedCommit describes one dataset restored from the checkpoint.
type ReplayedCommit struct {
	Dataset      string
	NodesCreated int
	LinksCreated int
}

// Replay applies the journaled batches to g in their recorded commit order,
// reproducing exactly the graph state the interrupted build had reached
// after those commits. Journals were already CRC-verified at open; a decode
// failure here (disk went bad in between) aborts the replay.
func (cp *Checkpoint) Replay(g *graph.Graph) ([]ReplayedCommit, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]ReplayedCommit, 0, len(cp.committed))
	for _, e := range cp.committed {
		f, err := os.Open(filepath.Join(cp.dir, e.file))
		if err != nil {
			return nil, fmt.Errorf("ingest: checkpoint replay %s: %w", e.dataset, err)
		}
		b, err := graph.ReadBatch(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("ingest: checkpoint replay %s: %w", e.dataset, err)
		}
		res, err := g.ApplyBatch(b)
		if err != nil {
			return nil, fmt.Errorf("ingest: checkpoint replay %s: %w", e.dataset, err)
		}
		out = append(out, ReplayedCommit{Dataset: e.dataset, NodesCreated: res.NodesCreated, LinksCreated: res.RelsCreated})
	}
	return out, nil
}

// Record durably journals a just-committed session: the staged batch is
// written to a temp file, fsync'd, renamed, the directory is fsync'd, and
// only then is the manifest record appended and fsync'd — the record never
// exists without its journal. A recording failure disables further
// checkpointing (the build carries on; the affected datasets are simply
// re-crawled on resume) and is reported once.
func (cp *Checkpoint) Record(dataset string, s *Session) error {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.disabled {
		return nil
	}
	if err := cp.record(dataset, s.batch); err != nil {
		cp.disabled = true
		return fmt.Errorf("ingest: checkpoint %s: %w (checkpointing disabled)", dataset, err)
	}
	return nil
}

func (cp *Checkpoint) record(dataset string, b *graph.Batch) error {
	seq := len(cp.committed) + 1
	name := fmt.Sprintf("j-%06d.batch", seq)
	path := filepath.Join(cp.dir, name)

	f, err := os.CreateTemp(cp.dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	cw := io.MultiWriter(f, h)
	var size int64
	if err := graph.WriteBatch(&countingWriter{w: cw, n: &size}, b); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(cp.dir); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(cp.manifest, "commit %d %s %d %08x %q\n", seq, name, size, h.Sum32(), dataset); err != nil {
		return err
	}
	if err := cp.manifest.Sync(); err != nil {
		return err
	}
	cp.committed = append(cp.committed, checkpointEntry{seq: seq, dataset: dataset, file: name, size: size, crc: h.Sum32()})
	return nil
}

// Close releases the manifest handle. Recorded state stays on disk.
func (cp *Checkpoint) Close() error {
	if cp == nil || cp.manifest == nil {
		return nil
	}
	err := cp.manifest.Close()
	cp.manifest = nil
	return err
}

// Remove deletes the checkpoint directory — called after the final snapshot
// is durably saved, when the journals have served their purpose.
func (cp *Checkpoint) Remove() error {
	cp.Close()
	return os.RemoveAll(cp.dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

type countingWriter struct {
	w io.Writer
	n *int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	*cw.n += int64(n)
	return n, err
}
