package ingest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"iyp/internal/graph"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

var ckptFetchTime = time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)

// stagedSession returns a session with a few uncommitted writes, keyed by i
// so different sessions stage different data.
func stagedSession(t *testing.T, g *graph.Graph, dataset string, i int) *Session {
	t.Helper()
	s := NewSession(g, source.NewCatalog(), ontology.Reference{Organization: "T", Name: dataset, FetchTime: ckptFetchTime})
	as, err := s.Node(ontology.AS, uint32(64500+i))
	if err != nil {
		t.Fatal(err)
	}
	pfx, err := s.Node(ontology.Prefix, "192.0.2.0/24")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Link(ontology.Originate, as, pfx, nil); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckpointRecordOpenReplay(t *testing.T) {
	dir := t.TempDir()
	cp, err := CreateCheckpoint(dir, "fp-1", ckptFetchTime)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	datasets := []string{"t.a", "t.b", "t.c"}
	for i, d := range datasets {
		s := stagedSession(t, g, d, i)
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := cp.Record(d, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Fingerprint() != "fp-1" {
		t.Errorf("fingerprint = %q", re.Fingerprint())
	}
	if !re.FetchTime().Equal(ckptFetchTime) {
		t.Errorf("fetch time = %v", re.FetchTime())
	}
	if got := re.Datasets(); len(got) != 3 || got[0] != "t.a" || got[2] != "t.c" {
		t.Fatalf("datasets = %v", got)
	}

	// Replay reproduces the committed graph exactly.
	rg := graph.New()
	replayed, err := re.Replay(rg)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 3 {
		t.Fatalf("replayed %d commits", len(replayed))
	}
	if rg.NumNodes() != g.NumNodes() || rg.NumRels() != g.NumRels() {
		t.Fatalf("replay diverged: %d/%d nodes, %d/%d rels",
			rg.NumNodes(), g.NumNodes(), rg.NumRels(), g.NumRels())
	}
}

func TestCheckpointOpenMissing(t *testing.T) {
	if _, err := OpenCheckpoint(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointTornManifestTailKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	cp, err := CreateCheckpoint(dir, "fp", ckptFetchTime)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	for i, d := range []string{"t.a", "t.b"} {
		s := stagedSession(t, g, d, i)
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := cp.Record(d, s); err != nil {
			t.Fatal(err)
		}
	}
	cp.Close()

	// Simulate a crash mid-append: a half-written third record.
	f, err := os.OpenFile(filepath.Join(dir, checkpointManifest), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("commit 3 j-0000"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Datasets(); len(got) != 2 {
		t.Fatalf("datasets after torn tail = %v", got)
	}
}

func TestCheckpointDamagedJournalTruncatesFromThere(t *testing.T) {
	dir := t.TempDir()
	cp, err := CreateCheckpoint(dir, "fp", ckptFetchTime)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	for i, d := range []string{"t.a", "t.b", "t.c"} {
		s := stagedSession(t, g, d, i)
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := cp.Record(d, s); err != nil {
			t.Fatal(err)
		}
	}
	cp.Close()

	// Bit-flip the second journal: commits 2 and 3 must both be dropped
	// (the good prefix ends at 1), and resuming re-runs them.
	path := filepath.Join(dir, "j-000002.batch")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Datasets(); len(got) != 1 || got[0] != "t.a" {
		t.Fatalf("datasets after damaged journal = %v", got)
	}
	// Recording continues from the validated prefix.
	s := stagedSession(t, graph.New(), "t.d", 9)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := re.Record("t.d", s); err != nil {
		t.Fatal(err)
	}
	if got := re.Datasets(); len(got) != 2 || got[1] != "t.d" {
		t.Fatalf("datasets after recovery append = %v", got)
	}
}

func TestCreateCheckpointDiscardsStaleState(t *testing.T) {
	dir := t.TempDir()
	cp, err := CreateCheckpoint(dir, "old", ckptFetchTime)
	if err != nil {
		t.Fatal(err)
	}
	s := stagedSession(t, graph.New(), "t.a", 0)
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("t.a", s); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	cp2, err := CreateCheckpoint(dir, "new", ckptFetchTime)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if got := cp2.Datasets(); len(got) != 0 {
		t.Fatalf("fresh checkpoint inherited %v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".batch") {
			t.Errorf("stale journal %s survived CreateCheckpoint", e.Name())
		}
	}
}

func TestCheckpointRemove(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	cp, err := CreateCheckpoint(dir, "fp", ckptFetchTime)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("checkpoint dir survived Remove (err=%v)", err)
	}
}

// TestPipelineCommitsInDeclarationOrder pins the determinism contract the
// resumable-build guarantee rests on: crawls may finish in any order, but
// batches reach the graph in crawler-declaration order.
func TestPipelineCommitsInDeclarationOrder(t *testing.T) {
	g := graph.New()
	const n = 6
	var crawlers []Crawler
	for i := 0; i < n; i++ {
		i := i
		crawlers = append(crawlers, &fakeCrawler{
			Base: Base{Org: "T", Name: "t.ds" + string(rune('a'+i))},
			run: func(_ context.Context, s *Session) error {
				// Later-declared crawlers finish first.
				time.Sleep(time.Duration(n-i) * 5 * time.Millisecond)
				_, err := s.Node(ontology.AS, uint32(1000+i))
				return err
			},
		})
	}
	var mu sync.Mutex
	var order []string
	p := &Pipeline{
		Graph: g, Fetcher: source.NewCatalog(), Crawlers: crawlers, Concurrency: n,
		OnCommit: func(dataset string) {
			mu.Lock()
			order = append(order, dataset)
			mu.Unlock()
		},
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("committed %d datasets, want %d", len(order), n)
	}
	for i, d := range order {
		if want := "t.ds" + string(rune('a'+i)); d != want {
			t.Fatalf("commit order %v is not declaration order", order)
		}
	}
}

// TestPipelineCheckpointsCommits runs a pipeline with a checkpoint and
// verifies the journal replays to the same graph the pipeline built.
func TestPipelineCheckpointsCommits(t *testing.T) {
	dir := t.TempDir()
	cp, err := CreateCheckpoint(dir, "fp", ckptFetchTime)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	var crawlers []Crawler
	for i := 0; i < 4; i++ {
		i := i
		crawlers = append(crawlers, &fakeCrawler{
			Base: Base{Org: "T", Name: "t.ds" + string(rune('a'+i))},
			run: func(_ context.Context, s *Session) error {
				as, err := s.Node(ontology.AS, uint32(1000+i))
				if err != nil {
					return err
				}
				pfx, err := s.Node(ontology.Prefix, "10.0.0.0/8")
				if err != nil {
					return err
				}
				return s.Link(ontology.Originate, as, pfx, nil)
			},
		})
	}
	// One failing crawler: it must not be checkpointed.
	crawlers = append(crawlers, &fakeCrawler{
		Base: Base{Org: "T", Name: "t.broken"},
		run:  func(context.Context, *Session) error { return errors.New("feed down") },
	})
	p := &Pipeline{
		Graph: g, Fetcher: source.NewCatalog(), Crawlers: crawlers,
		FetchTime: ckptFetchTime, Checkpoint: cp,
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	re, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Datasets()
	if len(got) != 4 {
		t.Fatalf("checkpointed datasets = %v (failed crawler must be absent)", got)
	}
	for _, d := range got {
		if d == "t.broken" {
			t.Fatal("failed crawler was checkpointed")
		}
	}
	rg := graph.New()
	if _, err := re.Replay(rg); err != nil {
		t.Fatal(err)
	}
	if rg.NumNodes() != g.NumNodes() || rg.NumRels() != g.NumRels() {
		t.Fatalf("replay diverged: %d/%d nodes, %d/%d rels",
			rg.NumNodes(), g.NumNodes(), rg.NumRels(), g.NumRels())
	}
}
