// Package ontology defines the IYP ontology (paper §2.2): the entities
// (node types), relationship types, identity properties, and provenance
// annotations that give every element of the knowledge graph an
// unequivocal meaning. It is the contract between dataset importers
// (internal/crawlers), the graph, and queries.
package ontology

import "sort"

// Entity names (node labels), following the Neo4j naming convention used
// by IYP: camel-case beginning with an upper-case character. This is the
// complete list from Table 6 of the paper.
const (
	AS                      = "AS"
	AtlasMeasurement        = "AtlasMeasurement"
	AtlasProbe              = "AtlasProbe"
	AuthoritativeNameServer = "AuthoritativeNameServer"
	BGPCollector            = "BGPCollector"
	CaidaIXID               = "CaidaIXID"
	Country                 = "Country"
	DomainName              = "DomainName"
	Estimate                = "Estimate"
	Facility                = "Facility"
	HostName                = "HostName"
	IP                      = "IP"
	IXP                     = "IXP"
	Name                    = "Name"
	OpaqueID                = "OpaqueID"
	Organization            = "Organization"
	PeeringdbFacID          = "PeeringdbFacID"
	PeeringdbIXID           = "PeeringdbIXID"
	PeeringdbNetID          = "PeeringdbNetID"
	PeeringdbOrgID          = "PeeringdbOrgID"
	Prefix                  = "Prefix"
	Ranking                 = "Ranking"
	Tag                     = "Tag"
	URL                     = "URL"
)

// Relationship type names, upper-case with underscores per the Neo4j
// convention. This is the complete list from Table 7 of the paper.
const (
	AliasOf                  = "ALIAS_OF"
	Assigned                 = "ASSIGNED"
	Available                = "AVAILABLE"
	Categorized              = "CATEGORIZED"
	CountryRel               = "COUNTRY"
	DependsOn                = "DEPENDS_ON"
	ExternalID               = "EXTERNAL_ID"
	LocatedIn                = "LOCATED_IN"
	ManagedBy                = "MANAGED_BY"
	MemberOf                 = "MEMBER_OF"
	NameRel                  = "NAME"
	Originate                = "ORIGINATE"
	Parent                   = "PARENT"
	PartOf                   = "PART_OF"
	PeersWith                = "PEERS_WITH"
	Population               = "POPULATION"
	QueriedFrom              = "QUERIED_FROM"
	Rank                     = "RANK"
	Reserved                 = "RESERVED"
	ResolvesTo               = "RESOLVES_TO"
	RouteOriginAuthorization = "ROUTE_ORIGIN_AUTHORIZATION"
	SiblingOf                = "SIBLING_OF"
	Target                   = "TARGET"
	Website                  = "WEBSITE"
)

// EntityDef describes one entity: its identity property (the property that
// uniquely identifies a node, enforced in canonical form) and a
// human-readable description.
type EntityDef struct {
	Name        string
	IdentityKey string // "" when the entity is loosely identified
	Description string
}

// RelDef describes one relationship type.
type RelDef struct {
	Name        string
	Description string
}

// entities is the ontology's entity table (paper Table 6).
var entities = []EntityDef{
	{AS, "asn", "Autonomous System, uniquely identified by its AS number."},
	{AtlasMeasurement, "id", "RIPE Atlas measurement."},
	{AtlasProbe, "id", "RIPE Atlas probe."},
	{AuthoritativeNameServer, "name", "Authoritative DNS nameserver for a set of domain names."},
	{BGPCollector, "name", "A RIPE RIS or RouteViews BGP collector."},
	{CaidaIXID, "id", "Unique identifier for IXPs from CAIDA's IXP dataset."},
	{Country, "country_code", "An economy, identified by its two-letter (alpha-2) code; alpha3 and name are completed by refinement."},
	{DomainName, "name", "Any DNS domain name that is not a FQDN (see HostName)."},
	{Estimate, "name", "A report that approximates a quantity, e.g. the World Bank population estimate."},
	{Facility, "name", "Co-location facility for IXPs and ASes."},
	{HostName, "name", "A fully qualified domain name."},
	{IP, "ip", "An IPv4 or IPv6 address in canonical form; af property gives the address family."},
	{IXP, "name", "An Internet Exchange Point, loosely identified by name or via EXTERNAL_ID."},
	{Name, "name", "A name associated with a network resource."},
	{OpaqueID, "id", "The opaque-id value found in RIR delegated files; same id = same resource holder."},
	{Organization, "name", "An organization, loosely identified by name or via EXTERNAL_ID."},
	{PeeringdbFacID, "id", "Unique identifier for a Facility as assigned by PeeringDB."},
	{PeeringdbIXID, "id", "Unique identifier for an IXP as assigned by PeeringDB."},
	{PeeringdbNetID, "id", "Unique identifier for an AS as assigned by PeeringDB."},
	{PeeringdbOrgID, "id", "Unique identifier for an Organization as assigned by PeeringDB."},
	{Prefix, "prefix", "An IPv4 or IPv6 prefix in canonical form; af property gives the address family."},
	{Ranking, "name", "A specific ranking of Internet resources; rank values live on RANK relationships."},
	{Tag, "label", "The output of a manual or automated classification."},
	{URL, "url", "The full URL for an Internet resource."},
}

// rels is the ontology's relationship table (paper Table 7).
var rels = []RelDef{
	{AliasOf, "Equivalent to the CNAME record in DNS; relates two HostNames."},
	{Assigned, "RIR allocation of a resource (AS, Prefix) to a resource holder (OpaqueID), or the assigned IP of an AtlasProbe."},
	{Available, "Resource (AS, Prefix) not allocated and available at the related RIR (OpaqueID)."},
	{Categorized, "Resource (AS, Prefix, URL) classified according to the related Tag."},
	{CountryRel, "Relates any node to its country (geo-location or registration, depending on the dataset)."},
	{DependsOn, "AS or Prefix whose reachability depends on a certain AS (e.g. AS Hegemony)."},
	{ExternalID, "Relates a node to an identifier used by an organization (e.g. PeeringdbIXID)."},
	{LocatedIn, "Location of a resource at a geographical or topological location (e.g. IXP in Facility, AtlasProbe in AS)."},
	{ManagedBy, "Entity in charge of a resource: AS managed by Organization, DomainName managed by AuthoritativeNameServer."},
	{MemberOf, "Membership, e.g. AS member of IXP."},
	{NameRel, "Relates an entity to its usual or registered name."},
	{Originate, "Prefix seen as originated by an AS in BGP."},
	{Parent, "Zone cut between a parent DNS zone and a more specific zone (two DomainNames)."},
	{PartOf, "One entity contained in another: IP in Prefix, Prefix in covering Prefix, HostName/URL in DomainName."},
	{PeersWith, "BGP adjacency between two ASes or between an AS and a BGPCollector."},
	{Population, "AS hosting a fraction of a country's Internet population, or a country's population estimate."},
	{QueriedFrom, "DomainName queried most from an AS or Country (Cloudflare Radar)."},
	{Rank, "Resource appearing in a Ranking; rank property gives the position."},
	{Reserved, "AS or Prefix reserved for a certain purpose by RIRs or IANA."},
	{ResolvesTo, "HostName resolving to an IP address."},
	{RouteOriginAuthorization, "AS authorized by RPKI to originate the Prefix."},
	{SiblingOf, "ASes or Organizations representing the same entity."},
	{Target, "AtlasMeasurement probing an IP, HostName, or AS."},
	{Website, "Common website (URL) for an Organization, Facility, IXP, or AS."},
}

var (
	entityByName = map[string]EntityDef{}
	relByName    = map[string]RelDef{}
)

func init() {
	for _, e := range entities {
		entityByName[e.Name] = e
	}
	for _, r := range rels {
		relByName[r.Name] = r
	}
}

// Entities returns the entity definitions sorted by name.
func Entities() []EntityDef {
	out := append([]EntityDef(nil), entities...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Relationships returns the relationship definitions sorted by name.
func Relationships() []RelDef {
	out := append([]RelDef(nil), rels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupEntity returns the definition for an entity name.
func LookupEntity(name string) (EntityDef, bool) {
	e, ok := entityByName[name]
	return e, ok
}

// LookupRelationship returns the definition for a relationship type.
func LookupRelationship(name string) (RelDef, bool) {
	r, ok := relByName[name]
	return r, ok
}

// IdentityKey returns the identity property for an entity ("" when loosely
// identified or unknown).
func IdentityKey(entity string) string {
	return entityByName[entity].IdentityKey
}
