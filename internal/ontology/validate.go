package ontology

import (
	"fmt"

	"iyp/internal/graph"
	"iyp/internal/netutil"
)

// Violation is one ontology-conformance failure found in a graph.
type Violation struct {
	// Kind classifies the failure: "unknown-label", "unknown-rel-type",
	// "missing-identity", "non-canonical", "missing-provenance".
	Kind string
	// Detail identifies the offending element.
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// ValidateGraph checks a knowledge graph against the ontology: every node
// label must be a defined entity, every relationship type a defined type,
// every node must carry its identity property in canonical form, and every
// relationship must carry provenance (paper §2.2/§2.3). At most maxIssues
// violations are returned (0 = 100).
//
// A graph built by the standard pipeline validates cleanly; violations
// indicate a buggy custom crawler or hand-edited data.
func ValidateGraph(g *graph.Graph, maxIssues int) []Violation {
	if maxIssues <= 0 {
		maxIssues = 100
	}
	var out []Violation
	add := func(kind, format string, args ...any) bool {
		out = append(out, Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)})
		return len(out) < maxIssues
	}

	// Labels and relationship types must exist in the ontology.
	for _, l := range g.Labels() {
		if _, ok := LookupEntity(l); !ok {
			if !add("unknown-label", "node label %q is not an ontology entity", l) {
				return out
			}
		}
	}
	for _, ty := range g.RelTypes() {
		if _, ok := LookupRelationship(ty); !ok {
			if !add("unknown-rel-type", "relationship type %q is not in the ontology", ty) {
				return out
			}
		}
	}

	// Per-entity identity and canonical-form checks.
	for _, e := range Entities() {
		if e.IdentityKey == "" {
			continue
		}
		for _, id := range g.NodesByLabel(e.Name) {
			v := g.NodeProp(id, e.IdentityKey)
			if v.IsNull() {
				if !add("missing-identity", "%s node %d lacks %s", e.Name, id, e.IdentityKey) {
					return out
				}
				continue
			}
			if msg := canonicalViolation(e.Name, v); msg != "" {
				if !add("non-canonical", "%s node %d: %s", e.Name, id, msg) {
					return out
				}
			}
		}
	}

	// Every relationship carries its dataset provenance.
	ok := true
	g.EachRel(func(id graph.RelID) bool {
		if g.RelProp(id, PropReferenceName).IsNull() {
			ok = add("missing-provenance", "relationship %d (%s) lacks %s",
				id, g.RelType(id), PropReferenceName)
			return ok
		}
		return true
	})
	return out
}

// canonicalViolation reports why an identity value is not canonical ("" =
// fine).
func canonicalViolation(entity string, v graph.Value) string {
	s, isString := v.AsString()
	switch entity {
	case AS:
		if _, ok := v.AsInt(); !ok {
			return fmt.Sprintf("asn %v is not an integer", v)
		}
	case IP:
		if !isString {
			return "ip is not a string"
		}
		if c, err := netutil.CanonicalIP(s); err != nil || c != s {
			return fmt.Sprintf("ip %q is not canonical", s)
		}
	case Prefix:
		if !isString {
			return "prefix is not a string"
		}
		if c, err := netutil.CanonicalPrefix(s); err != nil || c != s {
			return fmt.Sprintf("prefix %q is not canonical", s)
		}
	case Country:
		if !isString {
			return "country_code is not a string"
		}
		if len(s) != 2 {
			return fmt.Sprintf("country_code %q is not alpha-2", s)
		}
		for _, r := range s {
			if r < 'A' || r > 'Z' {
				return fmt.Sprintf("country_code %q is not upper-case", s)
			}
		}
	case HostName, DomainName, AuthoritativeNameServer:
		if !isString {
			return "name is not a string"
		}
		if netutil.CanonicalHostname(s) != s {
			return fmt.Sprintf("hostname %q is not canonical", s)
		}
	}
	return ""
}
