package ontology

import (
	"time"

	"iyp/internal/graph"
)

// Reference is the provenance annotation that IYP systematically attaches
// to every relationship it imports (paper §2.2): it records which
// organization produced the data, which dataset it came from, where it was
// fetched, and when.
type Reference struct {
	// Organization that provides and maintains the dataset.
	Organization string
	// Name uniquely identifies the dataset, e.g. "bgpkit.pfx2asn". The
	// convention is "<org>.<dataset>" in lower-case.
	Name string
	// InfoURL links to a human-readable description of the dataset.
	InfoURL string
	// DataURL is the URL the dataset was retrieved from.
	DataURL string
	// ModificationTime is when the dataset was last modified upstream
	// (zero when unknown).
	ModificationTime time.Time
	// FetchTime is when the dataset was imported into IYP.
	FetchTime time.Time
}

// Relationship property names used for provenance. Kept identical to the
// IYP naming so published queries (e.g. Listing 3's
// {reference_name:'openintel.tranco1m'}) work unchanged.
const (
	PropReferenceOrg     = "reference_org"
	PropReferenceName    = "reference_name"
	PropReferenceURLInfo = "reference_url_info"
	PropReferenceURLData = "reference_url_data"
	PropReferenceModTime = "reference_time_modification"
	PropReferenceFetch   = "reference_time_fetch"
)

// timeLayout is how timestamps are stored in the graph (Neo4j-style ISO
// 8601 to the second, UTC).
const timeLayout = "2006-01-02T15:04:05Z"

// Props renders the reference as relationship properties.
func (r Reference) Props() graph.Props {
	p := graph.Props{
		PropReferenceOrg:  graph.String(r.Organization),
		PropReferenceName: graph.String(r.Name),
	}
	if r.InfoURL != "" {
		p[PropReferenceURLInfo] = graph.String(r.InfoURL)
	}
	if r.DataURL != "" {
		p[PropReferenceURLData] = graph.String(r.DataURL)
	}
	if !r.ModificationTime.IsZero() {
		p[PropReferenceModTime] = graph.String(r.ModificationTime.UTC().Format(timeLayout))
	}
	if !r.FetchTime.IsZero() {
		p[PropReferenceFetch] = graph.String(r.FetchTime.UTC().Format(timeLayout))
	}
	return p
}

// Annotate copies the reference properties into props (in place),
// returning props for chaining. A nil props allocates a new map.
func (r Reference) Annotate(props graph.Props) graph.Props {
	if props == nil {
		props = graph.Props{}
	}
	for k, v := range r.Props() {
		props[k] = v
	}
	return props
}
