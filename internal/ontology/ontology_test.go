package ontology

import (
	"strings"
	"testing"
	"time"

	"iyp/internal/graph"
)

func TestEntityTableMatchesPaper(t *testing.T) {
	// Paper Table 6 lists exactly 24 entities.
	es := Entities()
	if len(es) != 24 {
		t.Fatalf("entities = %d, want 24 (Table 6)", len(es))
	}
	want := []string{
		AS, AtlasMeasurement, AtlasProbe, AuthoritativeNameServer,
		BGPCollector, CaidaIXID, Country, DomainName, Estimate, Facility,
		HostName, IP, IXP, Name, OpaqueID, Organization, PeeringdbFacID,
		PeeringdbIXID, PeeringdbNetID, PeeringdbOrgID, Prefix, Ranking,
		Tag, URL,
	}
	for _, name := range want {
		e, ok := LookupEntity(name)
		if !ok {
			t.Errorf("entity %s missing", name)
			continue
		}
		if e.Description == "" {
			t.Errorf("entity %s lacks a description", name)
		}
	}
	// Entities follow the Neo4j camel-case convention (paper §3.1).
	for _, e := range es {
		if e.Name[0] < 'A' || e.Name[0] > 'Z' {
			t.Errorf("entity %q not camel-case", e.Name)
		}
		if strings.ContainsAny(e.Name, "_ ") {
			t.Errorf("entity %q contains separators", e.Name)
		}
	}
}

func TestRelationshipTableMatchesPaper(t *testing.T) {
	// Paper Table 7 lists exactly 24 relationship types.
	rs := Relationships()
	if len(rs) != 24 {
		t.Fatalf("relationships = %d, want 24 (Table 7)", len(rs))
	}
	want := []string{
		AliasOf, Assigned, Available, Categorized, CountryRel, DependsOn,
		ExternalID, LocatedIn, ManagedBy, MemberOf, NameRel, Originate,
		Parent, PartOf, PeersWith, Population, QueriedFrom, Rank,
		Reserved, ResolvesTo, RouteOriginAuthorization, SiblingOf,
		Target, Website,
	}
	for _, name := range want {
		r, ok := LookupRelationship(name)
		if !ok {
			t.Errorf("relationship %s missing", name)
			continue
		}
		if r.Description == "" {
			t.Errorf("relationship %s lacks a description", name)
		}
	}
	// Relationships are upper-case with underscores (paper §3.1).
	for _, r := range rs {
		if r.Name != strings.ToUpper(r.Name) {
			t.Errorf("relationship %q not upper-case", r.Name)
		}
	}
}

func TestIdentityKeys(t *testing.T) {
	cases := map[string]string{
		AS:         "asn",
		IP:         "ip",
		Prefix:     "prefix",
		Country:    "country_code",
		HostName:   "name",
		Tag:        "label",
		URL:        "url",
		OpaqueID:   "id",
		AtlasProbe: "id",
	}
	for entity, want := range cases {
		if got := IdentityKey(entity); got != want {
			t.Errorf("IdentityKey(%s) = %q, want %q", entity, got, want)
		}
	}
	if IdentityKey("NoSuchEntity") != "" {
		t.Error("unknown entity should have empty identity key")
	}
}

func TestLookupMisses(t *testing.T) {
	if _, ok := LookupEntity("Bogus"); ok {
		t.Error("LookupEntity(Bogus) should miss")
	}
	if _, ok := LookupRelationship("BOGUS_REL"); ok {
		t.Error("LookupRelationship(BOGUS_REL) should miss")
	}
}

func TestReferenceProps(t *testing.T) {
	mod := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	fetch := time.Date(2024, 5, 2, 12, 30, 0, 0, time.UTC)
	ref := Reference{
		Organization:     "BGPKIT",
		Name:             "bgpkit.pfx2asn",
		InfoURL:          "https://data.bgpkit.com/pfx2as",
		DataURL:          "bgpkit/pfx2as.jsonl",
		ModificationTime: mod,
		FetchTime:        fetch,
	}
	p := ref.Props()
	if v, _ := p[PropReferenceOrg].AsString(); v != "BGPKIT" {
		t.Errorf("org = %v", p[PropReferenceOrg])
	}
	if v, _ := p[PropReferenceName].AsString(); v != "bgpkit.pfx2asn" {
		t.Errorf("name = %v", p[PropReferenceName])
	}
	if v, _ := p[PropReferenceModTime].AsString(); v != "2024-05-01T00:00:00Z" {
		t.Errorf("mod time = %v", p[PropReferenceModTime])
	}
	if v, _ := p[PropReferenceFetch].AsString(); v != "2024-05-02T12:30:00Z" {
		t.Errorf("fetch time = %v", p[PropReferenceFetch])
	}

	// Optional fields omitted when empty.
	minimal := Reference{Organization: "X", Name: "x.y"}
	mp := minimal.Props()
	if _, ok := mp[PropReferenceURLInfo]; ok {
		t.Error("empty info URL should be absent")
	}
	if _, ok := mp[PropReferenceModTime]; ok {
		t.Error("zero mod time should be absent")
	}
}

func TestReferenceAnnotate(t *testing.T) {
	ref := Reference{Organization: "X", Name: "x.y"}
	// nil props allocates.
	p := ref.Annotate(nil)
	if v, _ := p[PropReferenceName].AsString(); v != "x.y" {
		t.Errorf("annotate nil: %v", p)
	}
	// Reference wins over caller-supplied collision.
	p = ref.Annotate(graph.Props{
		PropReferenceName: graph.String("spoofed"),
		"extra":           graph.Int(1),
	})
	if v, _ := p[PropReferenceName].AsString(); v != "x.y" {
		t.Errorf("reference should win collisions: %v", p[PropReferenceName])
	}
	if v, _ := p["extra"].AsInt(); v != 1 {
		t.Error("extra props must survive annotation")
	}
}

func TestValidateGraphFlagsViolations(t *testing.T) {
	g := graph.New()
	// Clean element.
	as := g.AddNode([]string{AS}, graph.Props{"asn": graph.Int(2497)})
	pfx := g.AddNode([]string{Prefix}, graph.Props{"prefix": graph.String("192.0.2.0/24")})
	ref := Reference{Organization: "T", Name: "t.ds"}
	if _, err := g.AddRel(Originate, as, pfx, ref.Props()); err != nil {
		t.Fatal(err)
	}
	if got := ValidateGraph(g, 0); len(got) != 0 {
		t.Fatalf("clean graph reported violations: %v", got)
	}

	// Unknown label.
	g.AddNode([]string{"Gremlin"}, nil)
	// Missing identity.
	g.AddNode([]string{Tag}, nil)
	// Non-canonical prefix and hostname.
	g.AddNode([]string{Prefix}, graph.Props{"prefix": graph.String("2001:0DB8::/32")})
	g.AddNode([]string{HostName}, graph.Props{"name": graph.String("WWW.Example.COM")})
	// Bad country code.
	g.AddNode([]string{Country}, graph.Props{"country_code": graph.String("usa")})
	// Unprovenanced relationship of an unknown type.
	x := g.AddNode([]string{AS}, graph.Props{"asn": graph.Int(1)})
	if _, err := g.AddRel("FROBNICATES", as, x, nil); err != nil {
		t.Fatal(err)
	}

	got := ValidateGraph(g, 0)
	kinds := map[string]int{}
	for _, v := range got {
		kinds[v.Kind]++
		if v.String() == "" {
			t.Error("empty violation rendering")
		}
	}
	for _, want := range []string{
		"unknown-label", "unknown-rel-type", "missing-identity",
		"non-canonical", "missing-provenance",
	} {
		if kinds[want] == 0 {
			t.Errorf("violation kind %s not detected (got %v)", want, kinds)
		}
	}
	if kinds["non-canonical"] != 3 {
		t.Errorf("non-canonical = %d, want 3 (prefix, hostname, country)", kinds["non-canonical"])
	}
	// The cap applies.
	if got := ValidateGraph(g, 2); len(got) > 2 {
		t.Errorf("maxIssues not applied: %d", len(got))
	}
}
