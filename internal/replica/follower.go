// Package replica implements the read-replica serving tier: N iyp-serve
// processes following one generation store that a single builder publishes
// into — the process-boundary version of the paper's "build weekly, serve
// continuously" workflow. A Follower polls the store's manifest, loads and
// verifies each new generation off the serving path, and hot-swaps the
// verified graph into the process's MVCC chain: in-flight queries finish on
// their pinned generation, new queries see the new one, and superseded
// generations drain through the existing pin-count reclamation.
//
// Robustness is the point. Every way a builder can betray a follower —
// torn manifest tails, truncated or bit-flipped snapshots, a crash between
// the snapshot rename and the manifest update, a snapshot pruned mid-read —
// is classified, counted, and survived: the follower keeps answering from
// its last good generation and converges to the builder's head once the
// store is sane again. Nothing a follower observes in the store is ever
// fatal; stale-but-consistent beats fresh-but-broken.
//
// The watcher is plain polling (no fsnotify dependency) with bounded,
// jittered backoff while the store misbehaves; in-process embedders can
// wire graph.Store.OnSave to Notify for immediate reloads.
package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"iyp/internal/graph"
)

// Reload result classes, the label set of iyp_replica_reloads_total. Every
// reload attempt (one candidate generation, one poll) lands in exactly one.
const (
	// ReloadOK: the candidate loaded, verified, and was swapped live.
	ReloadOK = "ok"
	// ReloadCorrupt: checksum or structural verification failed — a
	// bit-flipped snapshot, a lying manifest, garbage past the trailer.
	ReloadCorrupt = "corrupt"
	// ReloadTruncated: the file is shorter than the manifest records — a
	// torn write or a partial copy.
	ReloadTruncated = "truncated"
	// ReloadMissing: the snapshot vanished between listing and loading
	// (pruned by the builder, or never renamed into place).
	ReloadMissing = "missing"
	// ReloadIOError: the read itself failed (permissions, I/O errors,
	// injected slow-read faults that gave up).
	ReloadIOError = "io_error"
	// ReloadListError: the store directory could not be listed at all.
	ReloadListError = "list_error"
)

// ReloadResults fixes the metrics exposition order.
var ReloadResults = [...]string{
	ReloadOK, ReloadCorrupt, ReloadTruncated, ReloadMissing, ReloadIOError, ReloadListError,
}

// Config tunes a Follower. The zero value polls every 250ms, backs off to
// 5s under persistent faults, and retries a failing generation 4 times
// before skipping it until something newer appears.
type Config struct {
	// Interval between head polls when the store is healthy (0 = 250ms).
	Interval time.Duration
	// MaxBackoff caps the error backoff between polls while the store is
	// misbehaving (0 = 5s). Backoff doubles per consecutive failed poll
	// and carries bounded jitter so a replica fleet does not stampede the
	// store the moment it recovers.
	MaxBackoff time.Duration
	// MaxAttempts is how many times one failing generation is retried
	// before the follower stops re-verifying it and waits for a newer one
	// (0 = 4; a large snapshot that fails its CRC costs a full read per
	// attempt, so endless retries are their own denial of service).
	MaxAttempts int
	// StaleAfter is the age of the serving generation past which Status
	// reports Degraded — the "builder has been quiet too long" threshold
	// (0 = disabled). The follower keeps serving regardless.
	StaleAfter time.Duration
	// BumpInterval enables push-style notification for cross-process
	// builders: a watcher stats the store's manifest at this cadence and
	// Notify()s the poll loop the moment its mtime moves — one stat per
	// tick instead of a full listing, so Interval can be set much longer
	// without adding reload latency (0 = disabled; in-process builders
	// should wire graph.Store.OnSave to Notify instead).
	BumpInterval time.Duration
	// Seed fixes the backoff jitter (0 = 1); deterministic for tests.
	Seed int64
	// Load opens and parses a snapshot path. Nil uses the built-in loader,
	// which seeds each load with the last-good generation's string
	// dictionary so a reload re-allocates only the strings that actually
	// changed between generations (counted in Status.DictStrings/
	// DictReused). The fault harness injects slow and partial readers here;
	// a custom Load bypasses dictionary reuse.
	Load func(path string) (*graph.Graph, error)
	// Logf receives reload lifecycle logs (nil = silent).
	Logf func(format string, args ...any)

	// Now overrides the clock (nil = time.Now); for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Follower follows a generation store and keeps an MVStore's head on the
// newest generation that verifies. Construct with New, start the watch
// loop with Start, stop it with Close; Poll runs one synchronous iteration
// and is what the loop (and deterministic tests) call.
type Follower struct {
	st  *graph.Store
	mv  *graph.MVStore
	cfg Config

	// mu guards the mutable follow state below.
	mu          sync.Mutex
	lastGoodSeq uint64    // builder seq of the generation now serving
	lastGoodAt  time.Time // when it was swapped live
	loaded      bool      // at least one generation ever served
	attempts    map[uint64]int // verify/load failures per candidate seq

	// dict is the serving generation's string dictionary, fed to the next
	// reload so unchanged strings (the overwhelming majority between
	// weekly generations) are shared rather than re-allocated.
	dict *graph.Interner

	reloads     [len(ReloadResults)]atomic.Uint64
	polls       atomic.Uint64
	backoffs    atomic.Uint64
	dictStrings atomic.Uint64
	dictReused  atomic.Uint64

	wake     chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup
	started atomic.Bool
}

// New builds a follower that keeps mv's head on st's newest good
// generation. mv may start on an empty placeholder graph; Status reports
// not-ready until the first successful load.
func New(st *graph.Store, mv *graph.MVStore, cfg Config) *Follower {
	return &Follower{
		st:       st,
		mv:       mv,
		cfg:      cfg.withDefaults(),
		attempts: make(map[uint64]int),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// PollOutcome summarizes one Poll iteration.
type PollOutcome struct {
	// Loaded is true when this poll swapped a new generation live.
	Loaded bool
	// Seq is the builder generation now serving (0 before the first load).
	Seq uint64
	// Faulted is true when the poll saw candidates newer than the serving
	// generation but could not load any of them — the signal that drives
	// backoff.
	Faulted bool
	// Err carries the last classified failure of a faulted poll.
	Err error
}

// Poll runs one watch iteration: list the store, and if generations newer
// than the serving one exist, try them newest-good-first. The first that
// verifies and loads is swapped live; every failure is classified and
// counted. Poll never returns a fatal condition — a follower's job is to
// keep serving.
func (f *Follower) Poll() PollOutcome {
	f.polls.Add(1)
	gens, err := f.st.Generations()
	if err != nil {
		f.count(ReloadListError)
		f.logf("replica: listing store: %v", err)
		return PollOutcome{Seq: f.LastGood(), Faulted: true, Err: err}
	}

	last := f.LastGood()
	out := PollOutcome{Seq: last}
	sawNewer := false
	for _, gen := range gens {
		if gen.Seq <= last {
			break // gens are newest-first; nothing older can help
		}
		sawNewer = true
		if f.skipWorn(gen.Seq) {
			continue
		}
		g, result, err := f.fetch(gen)
		f.count(result)
		if err != nil {
			f.noteFailure(gen.Seq)
			out.Err = err
			f.logf("replica: generation %d rejected (%s): %v", gen.Seq, result, err)
			continue
		}
		// SwapAt keeps the chain numbering on the builder's seq, so a
		// client-pinned generation number and the persisted-history
		// fallback both mean the same on-disk generation.
		mvGen := f.mv.SwapAt(g, gen.Seq)
		f.setLastGood(gen.Seq, g.Interner())
		f.logf("replica: serving generation %d (%d nodes, %d rels) as chain gen %d",
			gen.Seq, g.NumNodes(), g.NumRels(), mvGen)
		return PollOutcome{Loaded: true, Seq: gen.Seq}
	}
	out.Faulted = sawNewer // saw news, served none of it
	return out
}

// fetch verifies and loads one candidate generation, classifying every
// failure into a ReloadResults class.
func (f *Follower) fetch(gen graph.Generation) (*graph.Graph, string, error) {
	if err := f.st.VerifyGen(gen); err != nil {
		return nil, classify(err), err
	}
	if f.cfg.Load != nil {
		g, err := f.cfg.Load(gen.Path)
		if err != nil {
			return nil, classify(err), err
		}
		return g, ReloadOK, nil
	}
	f.mu.Lock()
	dict := f.dict
	f.mu.Unlock()
	g, rep, err := graph.LoadFileWith(gen.Path, graph.LoadOptions{Dict: dict})
	if err != nil {
		return nil, classify(err), err
	}
	f.dictStrings.Add(uint64(rep.DictStrings))
	f.dictReused.Add(uint64(rep.DictReused))
	return g, ReloadOK, nil
}

// classify maps a verify/load failure onto its reload-result class.
func classify(err error) string {
	switch {
	case errors.Is(err, graph.ErrGenMissing) || os.IsNotExist(err):
		return ReloadMissing
	case errors.Is(err, graph.ErrGenTruncated):
		return ReloadTruncated
	case errors.Is(err, graph.ErrCorrupt):
		return ReloadCorrupt
	default:
		return ReloadIOError
	}
}

// skipWorn reports whether seq has exhausted its retry budget. Worn-out
// candidates stay skipped until a newer generation supersedes them (the
// builder republishing the same seq is not a thing the store does).
func (f *Follower) skipWorn(seq uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts[seq] >= f.cfg.MaxAttempts
}

func (f *Follower) noteFailure(seq uint64) {
	f.mu.Lock()
	f.attempts[seq]++
	f.mu.Unlock()
}

func (f *Follower) setLastGood(seq uint64, dict *graph.Interner) {
	f.mu.Lock()
	f.lastGoodSeq = seq
	f.lastGoodAt = f.cfg.Now()
	f.loaded = true
	f.dict = dict
	// Failure bookkeeping for superseded candidates is dead weight now.
	for s := range f.attempts {
		if s <= seq {
			delete(f.attempts, s)
		}
	}
	f.mu.Unlock()
}

// LastGood returns the builder seq of the generation currently serving (0
// before the first successful load).
func (f *Follower) LastGood() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastGoodSeq
}

func (f *Follower) count(result string) {
	for i, r := range ReloadResults {
		if r == result {
			f.reloads[i].Add(1)
			return
		}
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// Status is the follower's health snapshot, the payload behind
// GET /v1/ready and the iyp_replica_* metrics.
type Status struct {
	// Ready is true once one generation has been loaded and served.
	Ready bool
	// Degraded is true when Ready but the serving generation's age exceeds
	// Config.StaleAfter (never true with StaleAfter disabled).
	Degraded bool
	// LastGoodGen is the builder seq of the serving generation.
	LastGoodGen uint64
	// Age is how long ago the serving generation was swapped live.
	Age time.Duration
	// ServingChainGen is the MVStore chain generation serving reads.
	ServingChainGen uint64
	// Polls and Backoffs count watch iterations and backoff sleeps.
	Polls    uint64
	Backoffs uint64
	// Reloads counts reload attempts by result, indexed like ReloadResults.
	Reloads [len(ReloadResults)]uint64
	// DictStrings counts dictionary entries seen across all successful
	// reloads; DictReused is how many of them were already present in the
	// previous generation's dictionary and were shared instead of
	// re-allocated. A healthy weekly cadence reuses almost everything.
	DictStrings uint64
	DictReused  uint64
}

// Status reports the follower's current health. Safe to call from any
// goroutine.
func (f *Follower) Status() Status {
	f.mu.Lock()
	seq, at, loaded := f.lastGoodSeq, f.lastGoodAt, f.loaded
	f.mu.Unlock()
	s := Status{
		Ready:           loaded,
		LastGoodGen:     seq,
		ServingChainGen: f.mv.CurrentGen(),
		Polls:           f.polls.Load(),
		Backoffs:        f.backoffs.Load(),
		DictStrings:     f.dictStrings.Load(),
		DictReused:      f.dictReused.Load(),
	}
	if loaded {
		s.Age = f.cfg.Now().Sub(at)
		if f.cfg.StaleAfter > 0 && s.Age > f.cfg.StaleAfter {
			s.Degraded = true
		}
	}
	for i := range f.reloads {
		s.Reloads[i] = f.reloads[i].Load()
	}
	return s
}

// Start launches the watch loop (idempotent). An immediate first poll runs
// before the first sleep, so a populated store is served right away. With
// BumpInterval set, a manifest-mtime watcher runs alongside the loop and
// Notify()s it as soon as a builder publishes.
func (f *Follower) Start() {
	if f.started.Swap(true) {
		return
	}
	f.wg.Add(1)
	go f.run()
	if f.cfg.BumpInterval > 0 {
		f.wg.Add(1)
		go f.watchBump()
	}
}

// watchBump stats the store manifest every BumpInterval and wakes the poll
// loop when its mtime changes — the receive half of builder→replica push
// notification (the send half is Save's atomic manifest replace).
func (f *Follower) watchBump() {
	defer f.wg.Done()
	last, _ := f.st.MTime()
	tick := time.NewTicker(f.cfg.BumpInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.done:
			return
		case <-tick.C:
			if mt, ok := f.st.MTime(); ok && !mt.Equal(last) {
				last = mt
				f.Notify()
			}
		}
	}
}

// Notify wakes the watch loop for an immediate poll (used by in-process
// builders via graph.Store.OnSave). Never blocks.
func (f *Follower) Notify() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// Close stops the watch loop and waits for it to exit. The MVStore keeps
// serving whatever generation was last swapped in. Close is idempotent.
func (f *Follower) Close() {
	select {
	case <-f.done:
	default:
		close(f.done)
	}
	f.wg.Wait()
}

func (f *Follower) run() {
	defer f.wg.Done()
	rng := rand.New(rand.NewSource(f.cfg.Seed))
	consecutive := 0
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		out := f.Poll()
		var delay time.Duration
		if out.Faulted {
			consecutive++
			delay = f.backoffDelay(rng, consecutive)
			f.backoffs.Add(1)
		} else {
			consecutive = 0
			delay = f.cfg.Interval
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(delay)
		select {
		case <-f.done:
			return
		case <-f.wake:
		case <-timer.C:
		}
	}
}

// backoffDelay is the bounded-jitter exponential backoff: base doubling
// per consecutive failure, capped at MaxBackoff, scaled by a jitter factor
// in [0.5, 1.0) so a fleet of replicas spreads its retries.
func (f *Follower) backoffDelay(rng *rand.Rand, consecutive int) time.Duration {
	d := f.cfg.Interval
	for i := 1; i < consecutive && d < f.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > f.cfg.MaxBackoff {
		d = f.cfg.MaxBackoff
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// String implements fmt.Stringer for log lines.
func (s Status) String() string {
	state := "not_ready"
	switch {
	case s.Degraded:
		state = "degraded"
	case s.Ready:
		state = "ok"
	}
	return fmt.Sprintf("replica %s: gen=%d age=%s polls=%d", state, s.LastGoodGen, s.Age.Round(time.Millisecond), s.Polls)
}
