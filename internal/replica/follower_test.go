package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"iyp/internal/graph"
)

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// markerGraph builds a tiny graph stamped with seq so tests can tell which
// builder generation is serving.
func markerGraph(seq uint64) *graph.Graph {
	g := graph.New()
	g.AddNode([]string{"Marker"}, graph.Props{"gen": graph.Int(int64(seq))})
	for i := 0; i < 3; i++ {
		g.AddNode([]string{"Item"}, graph.Props{"n": graph.Int(int64(i))})
	}
	return g
}

// servingSeq reads the marker stamp out of the MVStore's current head, or 0
// for the placeholder graph.
func servingSeq(mv *graph.MVStore) uint64 {
	g, _, release := mv.Acquire()
	defer release()
	markers := g.NodesByLabel("Marker")
	if len(markers) != 1 {
		return 0
	}
	v, _ := g.NodeProp(markers[0], "gen").AsInt()
	return uint64(v)
}

func newTestFollower(t *testing.T, cfg Config) (*FaultStore, *graph.MVStore, *Follower) {
	t.Helper()
	fs, err := NewFaultStore(t.TempDir(), 42)
	if err != nil {
		t.Fatalf("NewFaultStore: %v", err)
	}
	mv := graph.NewMVStore(graph.New())
	mv.SetRetain(1)
	return fs, mv, New(fs.Store(), mv, cfg)
}

func TestFollowerServesFirstGoodGeneration(t *testing.T) {
	fs, mv, f := newTestFollower(t, Config{})

	// Empty store: not ready, not faulted — nothing to serve is not a fault.
	out := f.Poll()
	if out.Loaded || out.Faulted {
		t.Fatalf("empty-store poll = %+v, want idle", out)
	}
	if st := f.Status(); st.Ready {
		t.Fatalf("ready before any load: %+v", st)
	}

	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatalf("publish: %v", err)
	}
	out = f.Poll()
	if !out.Loaded || out.Seq != 1 {
		t.Fatalf("poll after publish = %+v, want Loaded seq 1", out)
	}
	if got := servingSeq(mv); got != 1 {
		t.Fatalf("serving seq = %d, want 1", got)
	}
	st := f.Status()
	if !st.Ready || st.Degraded || st.LastGoodGen != 1 || st.Reloads[0] != 1 {
		t.Fatalf("status after load: %+v", st)
	}

	// Re-poll with no news: no-op, still serving 1.
	out = f.Poll()
	if out.Loaded || out.Faulted || servingSeq(mv) != 1 {
		t.Fatalf("idle re-poll = %+v serving=%d", out, servingSeq(mv))
	}
}

func TestFollowerKeepsLastGoodPastCorruptHead(t *testing.T) {
	fs, mv, f := newTestFollower(t, Config{})
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	f.Poll()

	if _, err := fs.PublishBitFlip(markerGraph(2), false); err != nil {
		t.Fatalf("PublishBitFlip: %v", err)
	}
	out := f.Poll()
	if out.Loaded || !out.Faulted {
		t.Fatalf("poll over corrupt head = %+v, want faulted not loaded", out)
	}
	if !errors.Is(out.Err, graph.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", out.Err)
	}
	if got := servingSeq(mv); got != 1 {
		t.Fatalf("serving seq = %d, want last-good 1", got)
	}
	if n := f.Status().Reloads[indexOf(ReloadCorrupt)]; n != 1 {
		t.Fatalf("corrupt count = %d, want 1", n)
	}

	// Builder recovers with gen 3: follower converges.
	if _, err := fs.PublishGood(markerGraph(3)); err != nil {
		t.Fatal(err)
	}
	out = f.Poll()
	if !out.Loaded || out.Seq != 3 || servingSeq(mv) != 3 {
		t.Fatalf("recovery poll = %+v serving=%d, want 3", out, servingSeq(mv))
	}
}

func TestFollowerLyingManifestCaughtByLoader(t *testing.T) {
	fs, mv, f := newTestFollower(t, Config{})
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	f.Poll()

	// Lying manifest vouches for the flipped bytes: the CRC pre-check
	// passes, so only the snapshot's internal checksums can refuse it.
	if _, err := fs.PublishBitFlip(markerGraph(2), true); err != nil {
		t.Fatalf("PublishBitFlip lying: %v", err)
	}
	out := f.Poll()
	if out.Loaded || servingSeq(mv) != 1 {
		t.Fatalf("lying-manifest generation served: %+v serving=%d", out, servingSeq(mv))
	}
	if n := f.Status().Reloads[indexOf(ReloadCorrupt)]; n != 1 {
		t.Fatalf("corrupt count = %d, want 1", n)
	}
}

func TestFollowerClassifiesTruncation(t *testing.T) {
	fs, mv, f := newTestFollower(t, Config{})
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	f.Poll()

	if _, err := fs.PublishTruncated(markerGraph(2), false); err != nil {
		t.Fatalf("PublishTruncated: %v", err)
	}
	out := f.Poll()
	if out.Loaded || !errors.Is(out.Err, graph.ErrGenTruncated) {
		t.Fatalf("poll = %+v, want ErrGenTruncated", out)
	}
	if n := f.Status().Reloads[indexOf(ReloadTruncated)]; n != 1 {
		t.Fatalf("truncated count = %d, want 1", n)
	}
	if servingSeq(mv) != 1 {
		t.Fatalf("serving seq = %d, want 1", servingSeq(mv))
	}
}

func TestFollowerRecoversTornManifestViaOrphanScan(t *testing.T) {
	fs, mv, f := newTestFollower(t, Config{})
	// Tear needs an existing manifest line to ruin, so seed one first.
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	f.Poll()

	// The snapshot is intact; only its manifest record is torn. The orphan
	// scan finds it and the loader's internal checksums vouch for it.
	if _, err := fs.PublishTornManifest(markerGraph(2)); err != nil {
		t.Fatalf("PublishTornManifest: %v", err)
	}
	out := f.Poll()
	if !out.Loaded || out.Seq != 2 || servingSeq(mv) != 2 {
		t.Fatalf("torn-manifest poll = %+v serving=%d, want 2", out, servingSeq(mv))
	}
}

func TestFollowerRecoversRenameThenCrashOrphan(t *testing.T) {
	fs, mv, f := newTestFollower(t, Config{})
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	f.Poll()

	// Crash between the snapshot rename and the manifest rename: the new
	// generation exists only as an unmanifested file.
	if _, err := fs.PublishOrphan(markerGraph(2)); err != nil {
		t.Fatalf("PublishOrphan: %v", err)
	}
	out := f.Poll()
	if !out.Loaded || out.Seq != 2 || servingSeq(mv) != 2 {
		t.Fatalf("orphan poll = %+v serving=%d, want 2", out, servingSeq(mv))
	}
}

func TestFollowerRetryBudgetSkipsWornGeneration(t *testing.T) {
	fs, mv, f := newTestFollower(t, Config{MaxAttempts: 2})
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	f.Poll()
	if _, err := fs.PublishBitFlip(markerGraph(2), false); err != nil {
		t.Fatal(err)
	}

	// Two polls spend the budget; the third skips without re-reading.
	for i := 0; i < 3; i++ {
		if out := f.Poll(); out.Loaded || !out.Faulted {
			t.Fatalf("poll %d = %+v, want faulted", i, out)
		}
	}
	if n := f.Status().Reloads[indexOf(ReloadCorrupt)]; n != 2 {
		t.Fatalf("corrupt count = %d, want exactly MaxAttempts=2", n)
	}

	// A newer good generation clears the wedge and prunes the budget map.
	if _, err := fs.PublishGood(markerGraph(3)); err != nil {
		t.Fatal(err)
	}
	if out := f.Poll(); !out.Loaded || out.Seq != 3 {
		t.Fatalf("recovery poll = %+v, want 3", out)
	}
	if servingSeq(mv) != 3 {
		t.Fatalf("serving seq = %d, want 3", servingSeq(mv))
	}
	f.mu.Lock()
	pending := len(f.attempts)
	f.mu.Unlock()
	if pending != 0 {
		t.Fatalf("attempts map holds %d superseded entries, want 0", pending)
	}
}

func TestFollowerListErrorClassified(t *testing.T) {
	fs, _, f := newTestFollower(t, Config{})
	if err := os.RemoveAll(fs.Store().Dir()); err != nil {
		t.Fatal(err)
	}
	out := f.Poll()
	if !out.Faulted || out.Err == nil {
		t.Fatalf("poll on removed dir = %+v, want faulted", out)
	}
	if n := f.Status().Reloads[indexOf(ReloadListError)]; n != 1 {
		t.Fatalf("list_error count = %d, want 1", n)
	}
}

func TestFollowerChaosLoaderFailuresAreIOErrors(t *testing.T) {
	fs, mv, _ := newTestFollower(t, Config{})
	f := New(fs.Store(), mv, Config{
		Load: ChaosLoader(7, 1.0, 0, nil), // every read fails
	})
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	out := f.Poll()
	if out.Loaded || !out.Faulted {
		t.Fatalf("poll with failing loader = %+v", out)
	}
	if n := f.Status().Reloads[indexOf(ReloadIOError)]; n != 1 {
		t.Fatalf("io_error count = %d, want 1", n)
	}

	// Same store, healthy loader: the generation is fine.
	healthy := New(fs.Store(), mv, Config{})
	if out := healthy.Poll(); !out.Loaded || out.Seq != 1 {
		t.Fatalf("healthy poll = %+v, want loaded 1", out)
	}
}

func TestFollowerStartNotifyClose(t *testing.T) {
	before := runtime.NumGoroutine()
	fs, mv, f := newTestFollower(t, Config{Interval: time.Hour}) // polling off: Notify drives it
	fs.Store().OnSave(func(graph.Generation) { f.Notify() })
	f.Start()
	f.Start() // idempotent
	t.Cleanup(f.Close)

	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.LastGood() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never picked up gen 1: %v", f.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if servingSeq(mv) != 1 {
		t.Fatalf("serving seq = %d, want 1", servingSeq(mv))
	}

	f.Close()
	f.Close() // idempotent
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFollowerBackoffBoundedAndJittered(t *testing.T) {
	_, _, f := newTestFollower(t, Config{Interval: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 3})
	rng := newSeededRand(3)
	for consecutive := 1; consecutive <= 10; consecutive++ {
		d := f.backoffDelay(rng, consecutive)
		if d < 50*time.Millisecond || d >= time.Second {
			t.Fatalf("consecutive=%d: delay %v outside [Interval/2, MaxBackoff)", consecutive, d)
		}
	}
	// Determinism: the same seed replays the same schedule.
	a, b := newSeededRand(9), newSeededRand(9)
	for i := 1; i <= 5; i++ {
		if da, db := f.backoffDelay(a, i), f.backoffDelay(b, i); da != db {
			t.Fatalf("seeded backoff diverged at %d: %v vs %v", i, da, db)
		}
	}
}

func TestFollowerStatusDegradedPastStaleness(t *testing.T) {
	fs, _, _ := newTestFollower(t, Config{})
	now := time.Unix(1000, 0)
	mv := graph.NewMVStore(graph.New())
	f := New(fs.Store(), mv, Config{
		StaleAfter: time.Minute,
		Now:        func() time.Time { return now },
	})
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	f.Poll()

	if st := f.Status(); !st.Ready || st.Degraded {
		t.Fatalf("fresh status: %+v", st)
	}
	now = now.Add(2 * time.Minute)
	st := f.Status()
	if !st.Ready || !st.Degraded || st.Age != 2*time.Minute {
		t.Fatalf("stale status: %+v", st)
	}
	if !strings.Contains(st.String(), "degraded") {
		t.Fatalf("String() = %q, want degraded", st.String())
	}
}

func TestChaosLoaderDeterministic(t *testing.T) {
	okLoad := func(string) (*graph.Graph, error) { return graph.New(), nil }
	run := func(seed int64) string {
		ld := ChaosLoader(seed, 0.5, 0, okLoad)
		var sb strings.Builder
		for i := 0; i < 32; i++ {
			if _, err := ld("x"); err != nil {
				sb.WriteByte('F')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	if a, b := run(11), run(11); a != b {
		t.Fatalf("same seed diverged: %s vs %s", a, b)
	}
	if a, b := run(11), run(12); a == b {
		t.Fatalf("different seeds identical (suspicious): %s", a)
	}
}

// indexOf maps a reload-result label to its slot in Status.Reloads.
func indexOf(result string) int {
	for i, r := range ReloadResults {
		if r == result {
			return i
		}
	}
	panic(fmt.Sprintf("unknown reload result %q", result))
}

// TestFollowerBumpWatcherPicksUpPublish proves the push-notification path:
// polling is effectively off (hour-long interval), so the only way the
// follower can see the new generation inside the deadline is the manifest
// mtime watcher Notify()ing the poll loop.
func TestFollowerBumpWatcherPicksUpPublish(t *testing.T) {
	before := runtime.NumGoroutine()
	fs, mv, f := newTestFollower(t, Config{
		Interval:     time.Hour,
		BumpInterval: 2 * time.Millisecond,
	})
	f.Start()
	t.Cleanup(f.Close)

	// Let Start's immediate first poll (empty store) and the watcher's
	// initial mtime read settle, so the pickup below must come from a
	// detected mtime change, not the startup poll.
	time.Sleep(50 * time.Millisecond)

	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.LastGood() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("bump watcher never woke the poll loop: %v", f.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if servingSeq(mv) != 1 {
		t.Fatalf("serving seq = %d, want 1", servingSeq(mv))
	}

	f.Close()
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFollowerReloadsReuseDictionary pins the columnar reload win: the
// second generation's snapshot load is seeded with the first's string
// dictionary, so every string that survived the rebuild is shared rather
// than re-allocated, and the iyp_replica_dict_* counters show it.
func TestFollowerReloadsReuseDictionary(t *testing.T) {
	fs, mv, f := newTestFollower(t, Config{})

	stable := func(g *graph.Graph) {
		for i := 0; i < 20; i++ {
			g.AddNode([]string{"AS"}, graph.Props{
				"name":    graph.String(fmt.Sprintf("Example Network %d", i)),
				"country": graph.String("NL"),
			})
		}
	}
	g1 := markerGraph(1)
	stable(g1)
	if _, err := fs.PublishGood(g1); err != nil {
		t.Fatal(err)
	}
	if out := f.Poll(); !out.Loaded {
		t.Fatalf("poll 1 = %+v", out)
	}
	st := f.Status()
	if st.DictStrings == 0 {
		t.Fatal("first reload decoded no dictionary entries; snapshot not columnar?")
	}
	if st.DictReused != 0 {
		t.Fatalf("first reload reports %d reused entries with no previous dictionary", st.DictReused)
	}

	g2 := markerGraph(2)
	stable(g2)
	g2.AddNode([]string{"AS"}, graph.Props{"name": graph.String("Newcomer")})
	if _, err := fs.PublishGood(g2); err != nil {
		t.Fatal(err)
	}
	if out := f.Poll(); !out.Loaded || out.Seq != 2 {
		t.Fatalf("poll 2 = %+v", out)
	}
	st2 := f.Status()
	reused := st2.DictReused - st.DictReused
	decoded := st2.DictStrings - st.DictStrings
	if reused == 0 {
		t.Fatal("second reload reused no dictionary entries from the previous generation")
	}
	if reused >= decoded {
		t.Fatalf("second reload reused %d of %d entries; the new string should have missed", reused, decoded)
	}

	// The serving generation's graph really shares storage: its dictionary
	// is the same object the previous generation populated.
	g, _, release := mv.Acquire()
	defer release()
	if g.Interner() == nil {
		t.Fatal("serving graph has no dictionary")
	}
}
