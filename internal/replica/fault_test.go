package replica

// Tests pinning the fault harness's shapes at the store level: each Publish*
// method must leave the directory in exactly the state the corresponding
// real-world crash would, or the failover suite is testing fiction.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"iyp/internal/graph"
)

func TestFaultStoreBitFlipHonestManifestFailsPrecheck(t *testing.T) {
	fs, err := NewFaultStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PublishBitFlip(markerGraph(1), false); err != nil {
		t.Fatal(err)
	}
	// Re-list so the generation carries its manifest entry (the intact
	// size/CRC the builder meant to publish).
	head, ok, err := fs.Store().Head()
	if err != nil || !ok {
		t.Fatalf("Head: %v ok=%v", err, ok)
	}
	if err := fs.Store().VerifyGen(head); !errors.Is(err, graph.ErrCorrupt) {
		t.Fatalf("VerifyGen = %v, want ErrCorrupt", err)
	}
}

func TestFaultStoreBitFlipLyingManifestPassesPrecheck(t *testing.T) {
	fs, err := NewFaultStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PublishBitFlip(markerGraph(1), true); err != nil {
		t.Fatal(err)
	}
	// Re-list so the generation carries the rewritten (lying) manifest entry.
	head, ok, err := fs.Store().Head()
	if err != nil || !ok {
		t.Fatalf("Head: %v ok=%v", err, ok)
	}
	if err := fs.Store().VerifyGen(head); err != nil {
		t.Fatalf("lying manifest should pass the pre-check, got %v", err)
	}
	// ...but the loader's internal checksums must refuse it.
	if _, err := graph.LoadFile(head.Path); !errors.Is(err, graph.ErrCorrupt) {
		t.Fatalf("LoadFile = %v, want ErrCorrupt", err)
	}
}

func TestFaultStoreTruncationShapes(t *testing.T) {
	fs, err := NewFaultStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := fs.PublishTruncated(markerGraph(1), false)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(gen.Path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= gen.Size || info.Size() < 1 {
		t.Fatalf("truncated to %d of %d bytes, want strictly shorter and non-empty", info.Size(), gen.Size)
	}
	head, ok, err := fs.Store().Head()
	if err != nil || !ok {
		t.Fatalf("Head: %v ok=%v", err, ok)
	}
	if err := fs.Store().VerifyGen(head); !errors.Is(err, graph.ErrGenTruncated) {
		t.Fatalf("VerifyGen = %v, want ErrGenTruncated", err)
	}
}

func TestFaultStoreTornManifestLeavesIntactOrphan(t *testing.T) {
	fs, err := NewFaultStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	gen, err := fs.PublishTornManifest(markerGraph(2))
	if err != nil {
		t.Fatal(err)
	}

	gens, err := fs.Store().Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0].Seq != 2 {
		t.Fatalf("listing after torn manifest: %+v", gens)
	}
	// The tear lands inside the first (newest) entry, so every record after
	// the header is lost: both generations surface as unmanifested orphans.
	if gens[0].Manifested() || gens[1].Manifested() {
		t.Fatalf("torn manifest should leave only orphans: %+v", gens)
	}
	if gens[1].Seq != 1 {
		t.Fatalf("prior generation missing from orphan scan: %+v", gens[1])
	}
	// The snapshot itself is intact: the loader accepts it.
	if _, err := graph.LoadFile(gen.Path); err != nil {
		t.Fatalf("torn-manifest snapshot should load, got %v", err)
	}
}

func TestFaultStoreOrphanRevertsManifest(t *testing.T) {
	fs, err := NewFaultStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PublishGood(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(fs.Store().Dir(), "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PublishOrphan(markerGraph(2)); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(fs.Store().Dir(), "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("manifest changed across PublishOrphan:\nbefore: %q\nafter:  %q", before, after)
	}
	gens, err := fs.Store().Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0].Seq != 2 || gens[0].Manifested() {
		t.Fatalf("orphan listing: %+v", gens)
	}
}

func TestFaultStoreOrphanWithNoPriorManifest(t *testing.T) {
	fs, err := NewFaultStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PublishOrphan(markerGraph(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(fs.Store().Dir(), "MANIFEST")); !os.IsNotExist(err) {
		t.Fatalf("manifest should not exist after pre-manifest crash, stat err = %v", err)
	}
	// The store still recovers the snapshot by scanning.
	g, _, err := fs.Store().Open()
	if err != nil {
		t.Fatalf("Open after pre-manifest crash: %v", err)
	}
	if got := len(g.NodesByLabel("Marker")); got != 1 {
		t.Fatalf("recovered graph has %d markers, want 1", got)
	}
}
