package replica

// FaultStore is the deterministic fault-injection harness for the replica
// tier: it publishes generations into a graph.Store directory the way a
// misbehaving builder would — truncated and bit-flipped snapshots, lying
// manifests that vouch for damaged bytes, torn manifest tails, and crashes
// between the snapshot rename and the manifest update. Every fault is
// driven by a seeded RNG, so a failing failover run replays exactly.
//
// Faithfulness matters: a follower may poll the directory at any instant,
// so a damaged generation must never be visible intact, even transiently —
// real crashes leave damaged bytes from the first moment the file exists.
// Damage is therefore injected in an invisible staging file and published
// with the same atomic renames the honest builder uses.
//
// The read-side faults live in ChaosLoader, which wraps the follower's
// Config.Load seam with seeded slow and failing reads.

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"iyp/internal/graph"
)

// FaultStore publishes (possibly damaged) generations into a directory a
// Follower is watching. Methods are serialized; the builder side is
// single-writer by contract, same as graph.Store.
type FaultStore struct {
	mu  sync.Mutex
	dir string
	st  *graph.Store
	rng *rand.Rand
}

// NewFaultStore opens (creating if needed) the store at dir with a seeded
// fault RNG.
func NewFaultStore(dir string, seed int64) (*FaultStore, error) {
	st, err := graph.OpenStore(dir, graph.StoreOptions{})
	if err != nil {
		return nil, err
	}
	return &FaultStore{dir: dir, st: st, rng: rand.New(rand.NewSource(seed))}, nil
}

// Store returns the underlying (honest) generation store.
func (fs *FaultStore) Store() *graph.Store { return fs.st }

// PublishGood publishes g intact — the well-behaved builder.
func (fs *FaultStore) PublishGood(g *graph.Graph) (graph.Generation, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.st.Save(g)
}

// staged is a snapshot written to an invisible temp file, with the size
// and CRC of the intact bytes.
type staged struct {
	tmp   string
	size  int64
	crc   uint32
	nodes int
	rels  int
}

// stage serializes g into a temp file the store's directory scan ignores.
// The ".tmp-" infix means a leftover from a failed publish is collected by
// the store's own temp GC.
func (fs *FaultStore) stage(g *graph.Graph) (staged, error) {
	f, err := os.CreateTemp(fs.dir, "stage.tmp-*")
	if err != nil {
		return staged{}, err
	}
	h := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	cw := &countingWriter{f: f, h: h}
	if err := g.Save(cw); err != nil {
		f.Close()
		os.Remove(f.Name())
		return staged{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return staged{}, err
	}
	return staged{tmp: f.Name(), size: cw.n, crc: h.Sum32(), nodes: g.NumNodes(), rels: g.NumRels()}, nil
}

type countingWriter struct {
	f *os.File
	h interface{ Write([]byte) (int, error) }
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if _, err := cw.h.Write(p); err != nil {
		return 0, err
	}
	n, err := cw.f.Write(p)
	cw.n += int64(n)
	return n, err
}

// nextSeq is the seq the next publish will take: newest visible + 1.
func (fs *FaultStore) nextSeq() uint64 {
	head, ok, err := fs.st.Head()
	if err != nil || !ok {
		return 1
	}
	return head.Seq + 1
}

// install renames the staged (possibly damaged) file into place as seq's
// snapshot. The rename is atomic: the generation appears damaged from the
// first instant it exists, exactly like a real torn write.
func (fs *FaultStore) install(s staged, seq uint64) (string, error) {
	path := filepath.Join(fs.dir, fmt.Sprintf("gen-%06d.snapshot", seq))
	return path, os.Rename(s.tmp, path)
}

// manifestEntry formats one manifest line for seq with the given size/CRC.
func manifestEntry(seq uint64, path string, size int64, crc uint32, nodes, rels int) string {
	return fmt.Sprintf("gen %d %s %d %08x %d %d", seq, filepath.Base(path), size, crc, nodes, rels)
}

// existingEntries returns the manifest's current gen lines (no header).
func (fs *FaultStore) existingEntries() []string {
	raw, err := os.ReadFile(filepath.Join(fs.dir, "MANIFEST"))
	if err != nil {
		return nil
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	var out []string
	for _, line := range lines {
		if strings.HasPrefix(line, "gen ") {
			out = append(out, line)
		}
	}
	return out
}

// writeManifest atomically replaces the manifest with the given content.
func (fs *FaultStore) writeManifest(content string) error {
	f, err := os.CreateTemp(fs.dir, "MANIFEST.tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.WriteString(content); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(fs.dir, "MANIFEST"))
}

// publishEntry prepends entry (the newest generation) to the manifest.
func (fs *FaultStore) publishEntry(entry string) error {
	lines := append([]string{entry}, fs.existingEntries()...)
	return fs.writeManifest("iyp-store v1\n" + strings.Join(lines, "\n") + "\n")
}

// PublishBitFlip publishes g with one random bit flipped somewhere in the
// snapshot. With lying=false the manifest records the intact size/CRC (the
// builder wrote the manifest for what it meant to publish), so the CRC
// pre-check catches the damage; with lying=true the manifest vouches for
// the damaged bytes, so only the snapshot's internal checksums (the
// loader) can catch it.
func (fs *FaultStore) PublishBitFlip(g *graph.Graph, lying bool) (graph.Generation, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s, err := fs.stage(g)
	if err != nil {
		return graph.Generation{}, err
	}
	data, err := os.ReadFile(s.tmp)
	if err != nil {
		return graph.Generation{}, err
	}
	if len(data) == 0 {
		return graph.Generation{}, fmt.Errorf("faultstore: empty staged snapshot")
	}
	i := fs.rng.Intn(len(data))
	data[i] ^= 1 << uint(fs.rng.Intn(8))
	if err := os.WriteFile(s.tmp, data, 0o644); err != nil {
		return graph.Generation{}, err
	}
	size, crc := s.size, s.crc
	if lying {
		size = int64(len(data))
		crc = crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli))
	}
	seq := fs.nextSeq()
	path, err := fs.install(s, seq)
	if err != nil {
		return graph.Generation{}, err
	}
	gen := graph.Generation{Seq: seq, Path: path, Size: size, CRC: crc, Nodes: s.nodes, Rels: s.rels}
	return gen, fs.publishEntry(manifestEntry(seq, path, size, crc, s.nodes, s.rels))
}

// PublishTruncated publishes g with the snapshot cut to a random fraction
// of its length — the torn-write shape. With lying=true the manifest is
// written for the truncated bytes, pushing detection down to the loader.
func (fs *FaultStore) PublishTruncated(g *graph.Graph, lying bool) (graph.Generation, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s, err := fs.stage(g)
	if err != nil {
		return graph.Generation{}, err
	}
	// Keep at least one byte and lose at least one.
	n := 1 + fs.rng.Int63n(s.size-1)
	if err := os.Truncate(s.tmp, n); err != nil {
		return graph.Generation{}, err
	}
	size, crc := s.size, s.crc
	if lying {
		data, err := os.ReadFile(s.tmp)
		if err != nil {
			return graph.Generation{}, err
		}
		size = int64(len(data))
		crc = crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli))
	}
	seq := fs.nextSeq()
	path, err := fs.install(s, seq)
	if err != nil {
		return graph.Generation{}, err
	}
	gen := graph.Generation{Seq: seq, Path: path, Size: size, CRC: crc, Nodes: s.nodes, Rels: s.rels}
	return gen, fs.publishEntry(manifestEntry(seq, path, size, crc, s.nodes, s.rels))
}

// PublishTornManifest publishes g's snapshot intact but tears the manifest
// inside the new entry — the torn-manifest-write shape where only the
// header and a partial first line reached disk, losing every entry's
// record. The snapshots themselves are fine, so a follower's orphan scan
// can still find and serve them.
func (fs *FaultStore) PublishTornManifest(g *graph.Graph) (graph.Generation, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s, err := fs.stage(g)
	if err != nil {
		return graph.Generation{}, err
	}
	seq := fs.nextSeq()
	path, err := fs.install(s, seq)
	if err != nil {
		return graph.Generation{}, err
	}
	entry := manifestEntry(seq, path, s.size, s.crc, s.nodes, s.rels)
	// Cut strictly inside the entry line, at or before the last field's
	// separator: the torn line must always lose a whole field, or a cut in
	// the middle of the trailing digits would parse as a complete (wrong)
	// entry instead of being dropped.
	lastSpace := strings.LastIndexByte(entry, ' ')
	cut := 4 + fs.rng.Intn(lastSpace-4+1)
	gen := graph.Generation{Seq: seq, Path: path, Size: s.size, CRC: s.crc, Nodes: s.nodes, Rels: s.rels}
	return gen, fs.writeManifest("iyp-store v1\n" + entry[:cut])
}

// PublishOrphan publishes g's snapshot without touching the manifest — the
// crash between the snapshot rename and the manifest rename. The
// generation exists only as an unmanifested file.
func (fs *FaultStore) PublishOrphan(g *graph.Graph) (graph.Generation, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s, err := fs.stage(g)
	if err != nil {
		return graph.Generation{}, err
	}
	seq := fs.nextSeq()
	path, err := fs.install(s, seq)
	if err != nil {
		return graph.Generation{}, err
	}
	return graph.Generation{Seq: seq, Path: path, Size: s.size, CRC: s.crc, Nodes: s.nodes, Rels: s.rels}, nil
}

// ChaosLoader wraps load (nil = graph.LoadFile) with seeded read faults: a
// pFail chance of failing outright with an I/O error and a fixed delay per
// load (slow reads — the window in which a hot-swap must not block the
// serving path). Deterministic per seed.
func ChaosLoader(seed int64, pFail float64, delay time.Duration, load func(string) (*graph.Graph, error)) func(string) (*graph.Graph, error) {
	if load == nil {
		load = graph.LoadFile
	}
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(path string) (*graph.Graph, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		mu.Lock()
		fail := rng.Float64() < pFail
		mu.Unlock()
		if fail {
			return nil, fmt.Errorf("chaos loader: injected read failure for %s", path)
		}
		return load(path)
	}
}
