// Package postproc implements the graph refinement passes of paper §2.3:
// after all datasets are imported, IYP adds common knowledge that is
// implicit in the data — address families, IP-to-prefix containment,
// covering prefixes, URL-to-hostname and hostname-to-domain links, DNS
// zone cuts, and complete country identifiers. These additions are "safe
// to implement and simplify queries".
package postproc

import (
	"fmt"
	"net/netip"
	"time"

	"iyp/internal/graph"
	"iyp/internal/netutil"
	"iyp/internal/ontology"
)

// Pass is one refinement step.
type Pass struct {
	Name string
	Run  func(*graph.Graph, ontology.Reference) error
}

// Passes returns the standard refinement pipeline, in execution order.
func Passes() []Pass {
	return []Pass{
		{"iyp.address_family", addressFamily},
		{"iyp.ip2prefix", ipToPrefix},
		{"iyp.covering_prefix", coveringPrefix},
		{"iyp.url2hostname", urlToHostname},
		{"iyp.dns_hierarchy", dnsHierarchy},
		{"iyp.country_information", countryInformation},
	}
}

// Run executes all refinement passes.
func Run(g *graph.Graph, fetchTime time.Time, logf func(string, ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for _, p := range Passes() {
		ref := ontology.Reference{
			Organization: "Internet Yellow Pages",
			Name:         p.Name,
			FetchTime:    fetchTime,
		}
		t0 := time.Now()
		if err := p.Run(g, ref); err != nil {
			return fmt.Errorf("postproc: %s: %w", p.Name, err)
		}
		logf("refinement %s done in %s", p.Name, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// addressFamily sets the af property (4 or 6) on every IP and Prefix node.
func addressFamily(g *graph.Graph, _ ontology.Reference) error {
	for _, label := range []string{ontology.IP, ontology.Prefix} {
		key := ontology.IdentityKey(label)
		for _, id := range g.NodesByLabel(label) {
			v, ok := g.NodeProp(id, key).AsString()
			if !ok {
				continue
			}
			af, err := netutil.AddressFamily(v)
			if err != nil {
				continue
			}
			if err := g.SetNodeProp(id, "af", graph.Int(int64(af))); err != nil {
				return err
			}
		}
	}
	return nil
}

// prefixTrie builds an LPM trie over all Prefix nodes.
func prefixTrie(g *graph.Graph) *netutil.PrefixTrie[graph.NodeID] {
	trie := netutil.NewPrefixTrie[graph.NodeID]()
	for _, id := range g.NodesByLabel(ontology.Prefix) {
		v, ok := g.NodeProp(id, "prefix").AsString()
		if !ok {
			continue
		}
		p, err := netip.ParsePrefix(v)
		if err != nil {
			continue
		}
		trie.Insert(p, id)
	}
	return trie
}

// ipToPrefix links each IP node to the longest matching Prefix node
// (IP PART_OF Prefix).
func ipToPrefix(g *graph.Graph, ref ontology.Reference) error {
	trie := prefixTrie(g)
	props := ref.Props()
	for _, id := range g.NodesByLabel(ontology.IP) {
		ip, ok := g.NodeProp(id, "ip").AsString()
		if !ok {
			continue
		}
		_, pfxNode, found := trie.LookupString(ip)
		if !found {
			continue
		}
		if _, err := g.AddRel(ontology.PartOf, id, pfxNode, props); err != nil {
			return err
		}
	}
	return nil
}

// coveringPrefix links each Prefix node to its closest covering Prefix
// node (Prefix PART_OF Prefix).
func coveringPrefix(g *graph.Graph, ref ontology.Reference) error {
	trie := prefixTrie(g)
	props := ref.Props()
	for _, id := range g.NodesByLabel(ontology.Prefix) {
		v, ok := g.NodeProp(id, "prefix").AsString()
		if !ok {
			continue
		}
		p, err := netip.ParsePrefix(v)
		if err != nil {
			continue
		}
		_, coverNode, found := trie.Covering(p)
		if !found || coverNode == id {
			continue
		}
		if _, err := g.AddRel(ontology.PartOf, id, coverNode, props); err != nil {
			return err
		}
	}
	return nil
}

// urlToHostname links each URL node to its HostName node (URL PART_OF
// HostName), creating the hostname when needed.
func urlToHostname(g *graph.Graph, ref ontology.Reference) error {
	props := ref.Props()
	for _, id := range g.NodesByLabel(ontology.URL) {
		raw, ok := g.NodeProp(id, "url").AsString()
		if !ok {
			continue
		}
		host := netutil.HostnameFromURL(raw)
		if host == "" {
			continue
		}
		hostNode, _ := g.MergeNode(ontology.HostName, "name", graph.String(host), nil, nil)
		if _, err := g.AddRel(ontology.PartOf, id, hostNode, props); err != nil {
			return err
		}
	}
	return nil
}

// dnsHierarchy links HostName nodes to their registered DomainName
// (HostName PART_OF DomainName) and materializes zone cuts between
// registered domains and their TLD (DomainName PARENT DomainName, child
// pointing at parent zone).
func dnsHierarchy(g *graph.Graph, ref ontology.Reference) error {
	props := ref.Props()
	// HostName -> DomainName.
	for _, id := range g.NodesByLabel(ontology.HostName) {
		name, ok := g.NodeProp(id, "name").AsString()
		if !ok {
			continue
		}
		sld, ok := netutil.SecondLevelDomain(name)
		if !ok {
			continue
		}
		domNode, _ := g.MergeNode(ontology.DomainName, "name", graph.String(sld), nil, nil)
		if domNode == id {
			continue // hostname that *is* the registered domain node
		}
		if _, err := g.AddRel(ontology.PartOf, id, domNode, props); err != nil {
			return err
		}
	}
	// DomainName -> TLD zone cut.
	for _, id := range g.NodesByLabel(ontology.DomainName) {
		name, ok := g.NodeProp(id, "name").AsString()
		if !ok {
			continue
		}
		tld := netutil.TopLevelDomain(name)
		if tld == "" || tld == name {
			continue
		}
		tldNode, _ := g.MergeNode(ontology.DomainName, "name", graph.String(tld), nil, nil)
		if _, err := g.AddRel(ontology.Parent, id, tldNode, props); err != nil {
			return err
		}
	}
	return nil
}

// countryInformation guarantees every Country node has alpha-2, alpha-3,
// and common-name properties.
func countryInformation(g *graph.Graph, _ ontology.Reference) error {
	for _, id := range g.NodesByLabel(ontology.Country) {
		code, ok := g.NodeProp(id, "country_code").AsString()
		if !ok {
			continue
		}
		info, ok := netutil.LookupCountry(code)
		if !ok {
			continue
		}
		if err := g.SetNodeProp(id, "alpha3", graph.String(info.Alpha3)); err != nil {
			return err
		}
		if err := g.SetNodeProp(id, "name", graph.String(info.Name)); err != nil {
			return err
		}
	}
	return nil
}
