package postproc

import (
	"testing"
	"time"

	"iyp/internal/graph"
	"iyp/internal/ontology"
)

func runAll(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := Run(g, time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC), nil); err != nil {
		t.Fatal(err)
	}
}

func addNode(g *graph.Graph, label, key, val string) graph.NodeID {
	return g.AddNode([]string{label}, graph.Props{key: graph.String(val)})
}

func TestAddressFamilyPass(t *testing.T) {
	g := graph.New()
	ip4 := addNode(g, ontology.IP, "ip", "192.0.2.1")
	ip6 := addNode(g, ontology.IP, "ip", "2001:db8::1")
	p4 := addNode(g, ontology.Prefix, "prefix", "192.0.2.0/24")
	p6 := addNode(g, ontology.Prefix, "prefix", "2001:db8::/32")
	bogus := addNode(g, ontology.Prefix, "prefix", "not-a-prefix")
	runAll(t, g)
	for id, want := range map[graph.NodeID]int64{ip4: 4, ip6: 6, p4: 4, p6: 6} {
		if v, _ := g.NodeProp(id, "af").AsInt(); v != want {
			t.Errorf("af(%d) = %d, want %d", id, v, want)
		}
	}
	if !g.NodeProp(bogus, "af").IsNull() {
		t.Error("malformed prefix should not get an af")
	}
}

func TestIPToPrefixLPM(t *testing.T) {
	g := graph.New()
	ip := addNode(g, ontology.IP, "ip", "10.1.2.3")
	short := addNode(g, ontology.Prefix, "prefix", "10.0.0.0/8")
	long := addNode(g, ontology.Prefix, "prefix", "10.1.0.0/16")
	unrelated := addNode(g, ontology.Prefix, "prefix", "192.0.2.0/24")
	runAll(t, g)
	rels := g.Rels(ip, graph.DirOut, []string{ontology.PartOf}, nil)
	if len(rels) != 1 {
		t.Fatalf("IP PART_OF edges = %d, want 1 (longest match only)", len(rels))
	}
	_, to := g.RelEndpoints(rels[0])
	if to != long {
		t.Errorf("LPM chose node %d, want %d (/16)", to, long)
	}
	// Provenance on refinement links.
	if v, _ := g.RelProp(rels[0], ontology.PropReferenceName).AsString(); v != "iyp.ip2prefix" {
		t.Errorf("refinement reference = %q", v)
	}
	_ = short
	_ = unrelated
}

func TestCoveringPrefix(t *testing.T) {
	g := graph.New()
	p8 := addNode(g, ontology.Prefix, "prefix", "10.0.0.0/8")
	p16 := addNode(g, ontology.Prefix, "prefix", "10.1.0.0/16")
	p24 := addNode(g, ontology.Prefix, "prefix", "10.1.2.0/24")
	runAll(t, g)
	check := func(child, wantParent graph.NodeID) {
		t.Helper()
		rels := g.Rels(child, graph.DirOut, []string{ontology.PartOf}, nil)
		if len(rels) != 1 {
			t.Fatalf("prefix %d PART_OF edges = %d", child, len(rels))
		}
		if _, to := g.RelEndpoints(rels[0]); to != wantParent {
			t.Errorf("cover of %d = %d, want %d", child, to, wantParent)
		}
	}
	check(p24, p16)
	check(p16, p8)
	if got := g.Rels(p8, graph.DirOut, []string{ontology.PartOf}, nil); len(got) != 0 {
		t.Error("top prefix should have no cover")
	}
}

func TestURLToHostname(t *testing.T) {
	g := graph.New()
	url := addNode(g, ontology.URL, "url", "https://www.example.com/page")
	runAll(t, g)
	rels := g.Rels(url, graph.DirOut, []string{ontology.PartOf}, nil)
	if len(rels) != 1 {
		t.Fatalf("URL PART_OF edges = %d", len(rels))
	}
	_, host := g.RelEndpoints(rels[0])
	if v, _ := g.NodeProp(host, "name").AsString(); v != "www.example.com" {
		t.Errorf("URL hostname = %q", v)
	}
	if !g.NodeHasLabel(host, ontology.HostName) {
		t.Error("created node lacks HostName label")
	}
}

func TestDNSHierarchy(t *testing.T) {
	g := graph.New()
	host := addNode(g, ontology.HostName, "name", "www.example.com")
	dom := addNode(g, ontology.DomainName, "name", "example.com")
	runAll(t, g)

	// HostName PART_OF DomainName.
	rels := g.Rels(host, graph.DirOut, []string{ontology.PartOf}, nil)
	if len(rels) != 1 {
		t.Fatalf("host PART_OF edges = %d", len(rels))
	}
	if _, to := g.RelEndpoints(rels[0]); to != dom {
		t.Error("hostname linked to wrong domain")
	}
	// DomainName PARENT tld DomainName (created on demand).
	prels := g.Rels(dom, graph.DirOut, []string{ontology.Parent}, nil)
	if len(prels) != 1 {
		t.Fatalf("domain PARENT edges = %d", len(prels))
	}
	_, tld := g.RelEndpoints(prels[0])
	if v, _ := g.NodeProp(tld, "name").AsString(); v != "com" {
		t.Errorf("TLD node = %q", v)
	}
	// The created TLD node must not link to itself.
	if got := g.Rels(tld, graph.DirOut, []string{ontology.Parent}, nil); len(got) != 0 {
		t.Error("TLD must not have a PARENT")
	}
}

func TestCountryInformation(t *testing.T) {
	g := graph.New()
	us := addNode(g, ontology.Country, "country_code", "US")
	zz := addNode(g, ontology.Country, "country_code", "ZZ")
	runAll(t, g)
	if v, _ := g.NodeProp(us, "alpha3").AsString(); v != "USA" {
		t.Errorf("alpha3 = %q", v)
	}
	if v, _ := g.NodeProp(us, "name").AsString(); v != "United States" {
		t.Errorf("name = %q", v)
	}
	// Unknown codes are left as-is (no fabricated data).
	if !g.NodeProp(zz, "alpha3").IsNull() {
		t.Error("unknown country should not get alpha3")
	}
}

func TestPassesAreOrderedAndNamed(t *testing.T) {
	ps := Passes()
	if len(ps) != 6 {
		t.Fatalf("passes = %d, want 6", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Run == nil {
			t.Errorf("malformed pass %+v", p)
		}
		if names[p.Name] {
			t.Errorf("duplicate pass %q", p.Name)
		}
		names[p.Name] = true
	}
	// address_family must precede ip2prefix (the trie parses prefix
	// strings that af validation would have skipped).
	if ps[0].Name != "iyp.address_family" {
		t.Errorf("first pass = %s", ps[0].Name)
	}
}

func TestRunOnEmptyGraph(t *testing.T) {
	g := graph.New()
	runAll(t, g) // must not error or panic
	if g.NumNodes() != 0 {
		t.Error("refinement invented nodes on an empty graph")
	}
}
