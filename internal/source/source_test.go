package source

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"iyp/internal/simnet"
)

func testInternet(t testing.TB) *simnet.Internet {
	t.Helper()
	in, err := simnet.Generate(simnet.DefaultConfig().Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	c.Put("/a/b.txt", []byte("hello"))
	rc, err := c.Fetch(context.Background(), "a/b.txt")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := ReadAll(context.Background(), c, "/a/b.txt")
	rc.Close()
	if string(data) != "hello" {
		t.Errorf("payload = %q", data)
	}
	if _, err := c.Fetch(context.Background(), "missing"); err == nil {
		t.Error("missing path should error")
	}
	if got := c.Paths(); len(got) != 1 || got[0] != "a/b.txt" {
		t.Errorf("Paths = %v", got)
	}
	if c.Size() != 5 {
		t.Errorf("Size = %d", c.Size())
	}
}

func TestRenderProducesAllDatasets(t *testing.T) {
	in := testInternet(t)
	c := Render(in)
	// Every declared dataset path must be present and non-trivial.
	want := []string{
		PathAPNICPop, PathBGPKITPfx2as, PathBGPKITAs2rel, PathBGPKITPeerStats,
		PathBGPToolsASNames, PathBGPToolsTags, PathBGPToolsAnycast4, PathBGPToolsAnycast6,
		PathCAIDAASRank, PathCAIDAIXPs, PathCAIDAIXPASNs, PathCiscoUmbrella,
		PathCitizenLab, PathCloudflareRanking, PathCloudflareDNSTopAses,
		PathCloudflareDNSTopLoc, PathCloudflareTopDomains, PathEmileAbenASNames,
		PathIHRHegemony, PathIHRCountryDep, PathIHRROV, PathInetIntelAS2Org,
		PathNRODelegated, PathOpenINTELTranco1M, PathOpenINTELUmbrella1M,
		PathOpenINTELNS, PathOpenINTELDNSGraph, PathPCHRoutingV4, PathPCHRoutingV6,
		PathPeeringDBOrg, PathPeeringDBFac, PathPeeringDBIX, PathPeeringDBIXLan,
		PathPeeringDBNetFac, PathRIPEASNames, PathRIPERPKIROAs, PathRIPEAtlasMeas,
		PathRIPEAtlasProbes, PathSimulaMetRDNS, PathStanfordASdb, PathTranco,
		PathRoVista, PathWorldBankPop,
	}
	for _, lg := range AliceLGNames {
		want = append(want, PathAliceLGPrefix+lg+"/neighbors.json")
	}
	for _, p := range want {
		data, err := ReadAll(context.Background(), c, p)
		if err != nil {
			t.Errorf("dataset %s: %v", p, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("dataset %s is empty", p)
		}
	}
}

func TestRenderTrancoFormat(t *testing.T) {
	in := testInternet(t)
	c := Render(in)
	data, _ := ReadAll(context.Background(), c, PathTranco)
	r := csv.NewReader(bytes.NewReader(data))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(in.Domains) {
		t.Fatalf("tranco rows = %d, want %d", len(recs), len(in.Domains))
	}
	if recs[0][0] != "1" {
		t.Errorf("first rank = %q", recs[0][0])
	}
	if !strings.Contains(recs[0][1], ".") {
		t.Errorf("first domain = %q", recs[0][1])
	}
}

func TestRenderROVQuotesCommaLabels(t *testing.T) {
	in := testInternet(t)
	c := Render(in)
	data, _ := ReadAll(context.Background(), c, PathIHRROV)
	r := csv.NewReader(bytes.NewReader(data))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ROV CSV must parse cleanly: %v", err)
	}
	for _, rec := range recs[1:] {
		if len(rec) != 4 {
			t.Fatalf("ROV row has %d fields: %v", len(rec), rec)
		}
	}
	// At least one "more specific" label must round-trip intact when the
	// model generated any.
	hasMoreSpecific := false
	for _, p := range in.Prefixes {
		if p.RPKIStatus == simnet.RPKIInvalidMoreSpecific {
			hasMoreSpecific = true
		}
	}
	if hasMoreSpecific && !bytes.Contains(data, []byte(`"RPKI Invalid, more specific"`)) {
		t.Error("comma-bearing label not quoted")
	}
}

func TestRenderRPKIROAsJSON(t *testing.T) {
	in := testInternet(t)
	c := Render(in)
	data, _ := ReadAll(context.Background(), c, PathRIPERPKIROAs)
	var doc struct {
		ROAs []struct {
			ASN       string `json:"asn"`
			Prefix    string `json:"prefix"`
			MaxLength int    `json:"maxLength"`
			TA        string `json:"ta"`
		} `json:"roas"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, p := range in.Prefixes {
		if p.ROA != nil {
			covered++
		}
		if p.ROA != nil && p.MOASOrigin != nil {
			covered++ // second ROA for the second origin
		}
	}
	if len(doc.ROAs) != covered {
		t.Errorf("ROAs = %d, want %d", len(doc.ROAs), covered)
	}
	for _, roa := range doc.ROAs[:min(5, len(doc.ROAs))] {
		if !strings.HasPrefix(roa.ASN, "AS") || roa.MaxLength == 0 || roa.TA == "" {
			t.Errorf("malformed ROA: %+v", roa)
		}
	}
}

func TestRenderNRODelegatedFormat(t *testing.T) {
	in := testInternet(t)
	c := Render(in)
	data, _ := ReadAll(context.Background(), c, PathNRODelegated)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		t.Fatal("empty delegated file")
	}
	header := strings.Split(sc.Text(), "|")
	if len(header) != 7 || header[0] != "2.0" || header[1] != "nro" {
		t.Fatalf("header = %v", header)
	}
	rows := 0
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "|")
		if len(fields) != 8 {
			t.Fatalf("row has %d fields: %q", len(fields), sc.Text())
		}
		switch fields[2] {
		case "asn", "ipv4", "ipv6":
		default:
			t.Fatalf("unexpected type %q", fields[2])
		}
		rows++
	}
	if rows == 0 {
		t.Fatal("no delegation records")
	}
}

func TestRenderBGPKITPfx2asIncludesMOAS(t *testing.T) {
	in := testInternet(t)
	c := Render(in)
	data, _ := ReadAll(context.Background(), c, PathBGPKITPfx2as)
	dec := json.NewDecoder(bytes.NewReader(data))
	counts := map[string]int{}
	for dec.More() {
		var row struct {
			Prefix string `json:"prefix"`
			ASN    uint32 `json:"asn"`
		}
		if err := dec.Decode(&row); err != nil {
			t.Fatal(err)
		}
		counts[row.Prefix]++
	}
	moas := 0
	for _, p := range in.Prefixes {
		if p.MOASOrigin != nil {
			moas++
			if counts[p.CIDR] != 2 {
				t.Errorf("MOAS prefix %s has %d rows", p.CIDR, counts[p.CIDR])
			}
		}
	}
	if len(counts) != len(in.Prefixes) {
		t.Errorf("distinct prefixes = %d, want %d", len(counts), len(in.Prefixes))
	}
}

func TestHTTPServerRoundTrip(t *testing.T) {
	c := NewCatalog()
	c.Put("x/data.json", []byte(`{"ok": true}`))
	srv, err := Serve(c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f := &HTTPFetcher{Base: srv.BaseURL()}
	data, err := ReadAll(context.Background(), f, "x/data.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"ok": true}` {
		t.Errorf("payload = %q", data)
	}
	if _, err := ReadAll(context.Background(), f, "missing"); err == nil {
		t.Error("404 should surface as an error")
	}
	// Context cancellation propagates.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Fetch(ctx, "x/data.json"); err == nil {
		t.Error("cancelled fetch should error")
	}
}

func TestRenderDeterministic(t *testing.T) {
	cfg := simnet.DefaultConfig().Scale(0.05)
	in1, _ := simnet.Generate(cfg)
	in2, _ := simnet.Generate(cfg)
	c1, c2 := Render(in1), Render(in2)
	p1, p2 := c1.Paths(), c2.Paths()
	if len(p1) != len(p2) {
		t.Fatalf("path counts differ: %d vs %d", len(p1), len(p2))
	}
	for _, p := range p1 {
		d1, _ := ReadAll(context.Background(), c1, p)
		d2, _ := ReadAll(context.Background(), c2, p)
		if !bytes.Equal(d1, d2) {
			t.Errorf("dataset %s differs between identical seeds", p)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// flakyFetcher fails the first N fetches of each path.
type flakyFetcher struct {
	base     Fetcher
	failures int
	seen     map[string]int
}

func (f *flakyFetcher) Fetch(ctx context.Context, path string) (io.ReadCloser, error) {
	if f.seen == nil {
		f.seen = map[string]int{}
	}
	if f.seen[path] < f.failures {
		f.seen[path]++
		return nil, errors.New("transient failure")
	}
	return f.base.Fetch(ctx, path)
}

func TestRetryFetcherRecovers(t *testing.T) {
	c := NewCatalog()
	c.Put("d", []byte("payload"))
	rf := &RetryFetcher{
		Base:    &flakyFetcher{base: c, failures: 2},
		Backoff: time.Millisecond,
	}
	data, err := ReadAll(context.Background(), rf, "d")
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if string(data) != "payload" {
		t.Errorf("payload = %q", data)
	}
}

func TestRetryFetcherGivesUp(t *testing.T) {
	rf := &RetryFetcher{
		Base:     &flakyFetcher{base: NewCatalog(), failures: 100},
		Attempts: 2,
		Backoff:  time.Millisecond,
	}
	if _, err := ReadAll(context.Background(), rf, "d"); err == nil {
		t.Error("exhausted retries should fail")
	}
}

func TestRetryFetcherHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rf := &RetryFetcher{
		Base:    &flakyFetcher{base: NewCatalog(), failures: 100},
		Backoff: time.Minute, // would block without cancellation
	}
	start := time.Now()
	if _, err := rf.Fetch(ctx, "d"); err == nil {
		t.Error("cancelled retry should fail")
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation did not interrupt the backoff")
	}
}
