package source

import (
	"bytes"
	"encoding/json"
	"fmt"

	"iyp/internal/simnet"
)

// Render builds the full provider catalog from a simulated Internet: every
// dataset of Table 8 in its native format.
func Render(in *simnet.Internet) *Catalog {
	c := NewCatalog()
	renderRouting(c, in)
	renderDNS(c, in)
	renderOrgs(c, in)
	return c
}

// jsonLines renders a slice of records as JSONL (one JSON object per
// line), the dominant format among the imported datasets.
func jsonLines[T any](rows []T) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range rows {
		// Encode never fails for the plain structs used here.
		_ = enc.Encode(r)
	}
	return buf.Bytes()
}

func jsonBlob(v any) []byte {
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		panic(fmt.Sprintf("source: marshal: %v", err))
	}
	return b
}
