package source

import (
	"errors"
	"fmt"
	"net/http"
)

// ErrNotFound marks a dataset that does not exist at the provider (missing
// catalog path, HTTP 404). Retrying cannot cure it.
var ErrNotFound = errors.New("not found")

// ErrPayloadTooLarge marks a dataset payload that exceeded the fetch byte
// cap (see ReadAllLimit). Retrying cannot cure it either: the feed itself
// is malformed or hostile.
var ErrPayloadTooLarge = errors.New("payload too large")

// StatusError is a non-200 HTTP response from a provider.
type StatusError struct {
	URL        string
	StatusCode int
	Status     string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("source: fetch %s: unexpected status %s", e.URL, e.Status)
}

// Is lets errors.Is(err, ErrNotFound) match HTTP 404/410 responses.
func (e *StatusError) Is(target error) bool {
	return target == ErrNotFound &&
		(e.StatusCode == http.StatusNotFound || e.StatusCode == http.StatusGone)
}

// Permanent classifies a fetch error: true means retrying is pointless (the
// dataset is gone, forbidden, or oversized), false means the failure looks
// transient (network hiccups, 5xx, rate limits) and a retry may succeed.
// RetryFetcher fails fast on permanent errors instead of burning its
// backoff budget on them.
func Permanent(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNotFound) || errors.Is(err, ErrPayloadTooLarge) {
		return true
	}
	var se *StatusError
	if errors.As(err, &se) {
		switch se.StatusCode {
		case http.StatusRequestTimeout, http.StatusTooEarly, http.StatusTooManyRequests:
			return false // retryable 4xx
		}
		return se.StatusCode >= 400 && se.StatusCode < 500
	}
	return false
}
