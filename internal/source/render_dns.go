package source

import (
	"bytes"
	"fmt"
	"sort"

	"iyp/internal/simnet"
)

// renderDNS produces the domain-list and DNS-resolution datasets.
func renderDNS(c *Catalog, in *simnet.Internet) {
	renderTranco(c, in)
	renderUmbrella(c, in)
	renderCloudflare(c, in)
	renderOpenINTEL(c, in)
	renderSimulaMet(c, in)
	renderCitizenLab(c, in)
}

// --- Tranco (CSV "rank,domain") ---

func renderTranco(c *Catalog, in *simnet.Internet) {
	var buf bytes.Buffer
	for _, d := range in.Domains {
		fmt.Fprintf(&buf, "%d,%s\n", d.Rank, d.Name)
	}
	c.Put(PathTranco, buf.Bytes())
}

// --- Cisco Umbrella (CSV "rank,host") ---

func renderUmbrella(c *Catalog, in *simnet.Internet) {
	type entry struct {
		rank int
		host string
	}
	var rows []entry
	for _, d := range in.Domains {
		if d.UmbrellaRank == 0 {
			continue
		}
		// Umbrella lists hostnames: apex and frequently www.
		rows = append(rows, entry{d.UmbrellaRank, d.Name})
		if d.UmbrellaRank%3 != 0 {
			rows = append(rows, entry{d.UmbrellaRank, "www." + d.Name})
		}
	}
	var buf bytes.Buffer
	n := 1
	for _, r := range rows {
		fmt.Fprintf(&buf, "%d,%s\n", n, r.host)
		n++
	}
	c.Put(PathCiscoUmbrella, buf.Bytes())
}

// --- Cloudflare Radar ---

type cfRankingEntry struct {
	Domain string `json:"domain"`
	Rank   int    `json:"rank"`
}

type cfTopAS struct {
	ClientASN    uint32  `json:"clientASN"`
	ClientASName string  `json:"clientASName"`
	Value        float64 `json:"value"`
}

type cfTopLocation struct {
	ClientCountryAlpha2 string  `json:"clientCountryAlpha2"`
	Value               float64 `json:"value"`
}

func renderCloudflare(c *Catalog, in *simnet.Internet) {
	var ranking struct {
		Result struct {
			Top []cfRankingEntry `json:"top_0"`
		} `json:"result"`
	}
	var topCSV bytes.Buffer
	topAses := map[string][]cfTopAS{}
	topLocs := map[string][]cfTopLocation{}
	for _, d := range in.Domains {
		if d.CloudflareRank == 0 {
			continue
		}
		ranking.Result.Top = append(ranking.Result.Top, cfRankingEntry{Domain: d.Name, Rank: d.CloudflareRank})
		if d.CloudflareRank <= 1000 {
			fmt.Fprintf(&topCSV, "%s\n", d.Name)
		}
		if len(d.TopQueryASNs) > 0 {
			var ases []cfTopAS
			locSeen := map[string]float64{}
			for i, asn := range d.TopQueryASNs {
				name := ""
				cc := ""
				if a := in.ASByASN(asn); a != nil {
					name = a.Name
					cc = a.Country
				}
				v := 100.0 / float64(i+2)
				ases = append(ases, cfTopAS{ClientASN: asn, ClientASName: name, Value: v})
				if cc != "" {
					locSeen[cc] += v
				}
			}
			topAses[d.Name] = ases
			ccs := make([]string, 0, len(locSeen))
			for cc := range locSeen {
				ccs = append(ccs, cc)
			}
			sort.Strings(ccs)
			locs := make([]cfTopLocation, 0, len(ccs))
			for _, cc := range ccs {
				locs = append(locs, cfTopLocation{ClientCountryAlpha2: cc, Value: locSeen[cc]})
			}
			topLocs[d.Name] = locs
		}
	}
	c.Put(PathCloudflareRanking, jsonBlob(ranking))
	c.Put(PathCloudflareTopDomains, topCSV.Bytes())
	c.Put(PathCloudflareDNSTopAses, jsonBlob(map[string]any{"result": topAses}))
	c.Put(PathCloudflareDNSTopLoc, jsonBlob(map[string]any{"result": topLocs}))
}

// --- OpenINTEL ---

// openintelRow mirrors one record of the processed OpenINTEL dumps IYP
// imports: a DNS response for a measured query name.
type openintelRow struct {
	QueryName    string `json:"query_name"`
	ResponseType string `json:"response_type"` // A, AAAA, NS
	Answer       string `json:"answer"`
}

func renderOpenINTEL(c *Catalog, in *simnet.Internet) {
	var tranco, umbrella, ns []openintelRow
	emitHost := func(rows *[]openintelRow, host string, d *simnet.Domain) {
		for _, ip := range d.HostIPv4 {
			*rows = append(*rows, openintelRow{QueryName: host, ResponseType: "A", Answer: ip})
		}
		for _, ip := range d.HostIPv6 {
			*rows = append(*rows, openintelRow{QueryName: host, ResponseType: "AAAA", Answer: ip})
		}
	}
	// Glue records are emitted once per nameserver, not once per zone
	// delegating to it: a managed-DNS nameserver serves thousands of
	// zones and the processed dump deduplicates its address records.
	glueSeen := map[string]bool{}
	for _, d := range in.Domains {
		// tranco1m: A/AAAA for apex and www.
		emitHost(&tranco, d.Name, d)
		emitHost(&tranco, "www."+d.Name, d)
		if d.UmbrellaRank > 0 {
			emitHost(&umbrella, d.Name, d)
			emitHost(&umbrella, "www."+d.Name, d)
		}
		// ns: NS records for the zone plus glue A/AAAA for the
		// nameservers (only when glue exists, replicating the original
		// study's limitation).
		if !d.HasGlue {
			continue
		}
		for _, srv := range d.NS {
			ns = append(ns, openintelRow{QueryName: d.Name, ResponseType: "NS", Answer: srv.Name})
			if glueSeen[srv.Name] {
				continue
			}
			glueSeen[srv.Name] = true
			if srv.IPv4 != "" {
				ns = append(ns, openintelRow{QueryName: srv.Name, ResponseType: "A", Answer: srv.IPv4})
			}
			if srv.IPv6 != "" {
				ns = append(ns, openintelRow{QueryName: srv.Name, ResponseType: "AAAA", Answer: srv.IPv6})
			}
		}
	}
	c.Put(PathOpenINTELTranco1M, jsonLines(tranco))
	c.Put(PathOpenINTELUmbrella1M, jsonLines(umbrella))
	c.Put(PathOpenINTELNS, jsonLines(ns))

	renderDNSGraph(c, in)
}

// dnsgraphRow is one dependency edge of the UTwente DNS dependency graph:
// resolving Domain transitively requires infrastructure of DepASN
// (registered in DepCC).
type dnsgraphRow struct {
	Domain  string `json:"domain"`
	DepASN  uint32 `json:"dep_asn"`
	DepCC   string `json:"dep_cc"`
	DepType string `json:"dep_type"` // direct, thirdparty, hierarchical
}

func renderDNSGraph(c *Catalog, in *simnet.Internet) {
	var rows []dnsgraphRow
	for _, d := range in.Domains {
		if !d.HasGlue {
			continue
		}
		seen := map[string]bool{}
		emit := func(a *simnet.AS, typ string) {
			if a == nil {
				return
			}
			key := fmt.Sprintf("%d|%s", a.ASN, typ)
			if seen[key] {
				return
			}
			seen[key] = true
			rows = append(rows, dnsgraphRow{Domain: d.Name, DepASN: a.ASN, DepCC: a.Country, DepType: typ})
		}
		// Direct: the ASes announcing the nameserver addresses.
		for _, srv := range d.NS {
			if srv.V4Prefix != nil {
				emit(srv.V4Prefix.Origin, "direct")
			}
			if srv.V6Prefix != nil {
				emit(srv.V6Prefix.Origin, "direct")
			}
		}
		// Third-party: the provider's own zone is served by another
		// operator's infrastructure.
		if d.Provider != nil && d.Provider.ThirdParty != nil {
			emit(d.Provider.ThirdParty.AS, "thirdparty")
		}
		// Hierarchical: the TLD registry.
		emit(d.TLD.RegistryAS, "hierarchical")
	}
	c.Put(PathOpenINTELDNSGraph, jsonLines(rows))
}

// --- SimulaMet rDNS (rir-data.org) ---

type rdnsRow struct {
	Prefix      string   `json:"prefix"`
	Nameservers []string `json:"nameservers"`
}

func renderSimulaMet(c *Catalog, in *simnet.Internet) {
	var rows []rdnsRow
	for i, p := range in.Prefixes {
		if p.AF != 4 || i%3 != 0 { // a third of v4 space has rDNS delegations
			continue
		}
		rows = append(rows, rdnsRow{
			Prefix: p.CIDR,
			Nameservers: []string{
				fmt.Sprintf("ns1.rdns-as%d.net", p.Origin.ASN),
				fmt.Sprintf("ns2.rdns-as%d.net", p.Origin.ASN),
			},
		})
	}
	c.Put(PathSimulaMetRDNS, jsonLines(rows))
}

// --- Citizen Lab URL test lists ---

func renderCitizenLab(c *Catalog, in *simnet.Internet) {
	var buf bytes.Buffer
	buf.WriteString("url,category_code,category_description,date_added,source,notes\n")
	for _, u := range in.CitizenURLs {
		fmt.Fprintf(&buf, "%s,%s,%s,2023-06-01,%s,\n", u.URL, u.Category, u.Category, u.Country)
	}
	c.Put(PathCitizenLab, buf.Bytes())
}
