package source

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"
)

// Fault kinds injected by FaultFetcher, also the keys of InjectedFaults.
const (
	FaultTransient = "transient"  // fetch fails with a retryable error
	FaultNotFound  = "not-found"  // fetch fails permanently (ErrNotFound)
	FaultTruncate  = "truncate"   // body dies mid-read after some bytes
	FaultFailFirst = "fail-first" // deterministic fail-N-then-succeed
)

// FaultError is an injected failure. Transient kinds classify as retryable;
// the not-found kind matches ErrNotFound and is permanent.
type FaultError struct {
	Path string
	Kind string
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("source: injected %s fault on %s", e.Kind, e.Path)
}

// Unwrap makes injected not-found faults classify as permanent.
func (e *FaultError) Unwrap() error {
	if e.Kind == FaultNotFound {
		return ErrNotFound
	}
	return nil
}

// FaultRule shapes the faults injected for a path (or, as
// FaultConfig.Default, for every path without a specific rule).
type FaultRule struct {
	// ErrorRate is the probability in [0,1] that one fetch attempt fails
	// with a transient error. 1.0 makes the path permanently flaky —
	// every retry fails too.
	ErrorRate float64
	// NotFound fails every fetch permanently, as if the provider deleted
	// the dataset.
	NotFound bool
	// FailFirst fails the first N fetch attempts of the path with a
	// transient error, then lets them through — the classic flaky feed a
	// retry policy must cure.
	FailFirst int
	// TruncateRate is the probability in [0,1] that a successful fetch's
	// body dies mid-read (after TruncateAfter bytes) with a transient
	// error, exercising mid-body retry paths.
	TruncateRate float64
	// TruncateAfter is how many bytes a truncated body delivers before
	// failing (0 = 1024).
	TruncateAfter int64
	// Latency is added to every fetch of the path before any other fault
	// fires (simulates slow feeds; respects context cancellation).
	Latency time.Duration
}

// FaultConfig configures a FaultFetcher. All randomness derives from Seed,
// the path, and the path's attempt counter — so a given (seed, path,
// attempt) always rolls the same faults, independent of goroutine
// interleaving across paths. Chaos tests replay identical fault schedules
// from identical seeds.
type FaultConfig struct {
	Seed    int64
	Default FaultRule
	// Rules overrides Default per dataset path (leading "/" ignored).
	Rules map[string]FaultRule
}

// FaultFetcher wraps any Fetcher with seeded, deterministic fault
// injection: transient errors, permanent not-founds, added latency,
// truncated bodies, and fail-N-times-then-succeed schedules, globally or
// per path. It is the chaos half of the ingestion robustness suite — builds
// run under a FaultFetcher must degrade to exactly "clean build minus the
// failed datasets".
type FaultFetcher struct {
	Base   Fetcher
	Config FaultConfig

	mu       sync.Mutex
	attempts map[string]int
	injected map[string]int
}

func (f *FaultFetcher) rule(path string) FaultRule {
	if r, ok := f.Config.Rules[normalize(path)]; ok {
		return r
	}
	return f.Config.Default
}

// roll derives a deterministic uniform float in [0,1) for one decision.
func (f *FaultFetcher) roll(path string, attempt int, tag string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%s", f.Config.Seed, normalize(path), attempt, tag)
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

func (f *FaultFetcher) record(kind string) {
	if f.injected == nil {
		f.injected = map[string]int{}
	}
	f.injected[kind]++
}

// InjectedFaults returns how many faults of each kind have fired so far.
func (f *FaultFetcher) InjectedFaults() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// Fetch implements Fetcher with fault injection.
func (f *FaultFetcher) Fetch(ctx context.Context, path string) (io.ReadCloser, error) {
	r := f.rule(path)

	f.mu.Lock()
	if f.attempts == nil {
		f.attempts = map[string]int{}
	}
	attempt := f.attempts[normalize(path)]
	f.attempts[normalize(path)]++
	f.mu.Unlock()

	if r.Latency > 0 {
		if err := sleepCtx(ctx, r.Latency); err != nil {
			return nil, err
		}
	}
	fail := func(kind string) (io.ReadCloser, error) {
		f.mu.Lock()
		f.record(kind)
		f.mu.Unlock()
		return nil, &FaultError{Path: normalize(path), Kind: kind}
	}
	if r.NotFound {
		return fail(FaultNotFound)
	}
	if attempt < r.FailFirst {
		return fail(FaultFailFirst)
	}
	if r.ErrorRate > 0 && f.roll(path, attempt, "err") < r.ErrorRate {
		return fail(FaultTransient)
	}

	rc, err := f.Base.Fetch(ctx, path)
	if err != nil {
		return nil, err
	}
	if r.TruncateRate > 0 && f.roll(path, attempt, "trunc") < r.TruncateRate {
		f.mu.Lock()
		f.record(FaultTruncate)
		f.mu.Unlock()
		after := r.TruncateAfter
		if after <= 0 {
			after = 1024
		}
		return &truncReader{rc: rc, left: after, err: &FaultError{Path: normalize(path), Kind: FaultTruncate}}, nil
	}
	return rc, nil
}

// truncReader delivers up to left bytes then fails every subsequent read.
type truncReader struct {
	rc   io.ReadCloser
	left int64
	err  error
}

func (t *truncReader) Read(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, t.err
	}
	if int64(len(p)) > t.left {
		p = p[:t.left]
	}
	n, err := t.rc.Read(p)
	t.left -= int64(n)
	if err != nil {
		return n, err
	}
	return n, nil
}

func (t *truncReader) Close() error { return t.rc.Close() }
