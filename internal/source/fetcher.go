// Package source is the provider side of the reproduction's data pipeline:
// it renders slices of the simulated Internet (internal/simnet) into each
// data provider's native wire format — BGPKIT JSONL, PeeringDB-style JSON
// APIs, NRO delegated-extended records, RPKI ROA JSON, Tranco CSV, and so
// on — and serves them through a Fetcher, either in-process or over real
// HTTP. Crawlers (internal/crawlers) consume these payloads exactly as the
// real IYP pipeline consumes the live feeds.
package source

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Fetcher retrieves a dataset payload by its path (a provider-relative
// URL).
type Fetcher interface {
	// Fetch returns the payload at path. The caller closes the reader.
	Fetch(ctx context.Context, path string) (io.ReadCloser, error)
}

// Catalog is an immutable set of rendered datasets keyed by path. It
// implements Fetcher directly (in-process fetching) and can be served over
// HTTP.
type Catalog struct {
	mu    sync.RWMutex
	files map[string][]byte
	// ModTime simulates the provider-side last-modified timestamp.
	ModTime time.Time
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{files: map[string][]byte{}, ModTime: time.Now().UTC()}
}

// Put stores a payload under path.
func (c *Catalog) Put(path string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.files[normalize(path)] = data
}

// Paths returns all dataset paths, sorted.
func (c *Catalog) Paths() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.files))
	for p := range c.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Size returns the total byte size of all rendered datasets.
func (c *Catalog) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, b := range c.files {
		n += len(b)
	}
	return n
}

func normalize(p string) string { return strings.TrimPrefix(p, "/") }

// Fetch implements Fetcher.
func (c *Catalog) Fetch(_ context.Context, path string) (io.ReadCloser, error) {
	c.mu.RLock()
	data, ok := c.files[normalize(path)]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("source: dataset %q: %w", path, ErrNotFound)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// ServeHTTP lets a catalog be mounted as a provider web server.
func (c *Catalog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	data, ok := c.files[normalize(r.URL.Path)]
	mod := c.ModTime
	c.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Last-Modified", mod.Format(http.TimeFormat))
	w.Header().Set("Content-Type", contentType(r.URL.Path))
	_, _ = w.Write(data)
}

func contentType(path string) string {
	switch {
	case strings.HasSuffix(path, ".json"), strings.HasSuffix(path, ".jsonl"):
		return "application/json"
	case strings.HasSuffix(path, ".csv"):
		return "text/csv"
	default:
		return "text/plain; charset=utf-8"
	}
}

// Server runs a catalog behind a real HTTP listener on localhost, so the
// fetch path exercises the actual network stack (the closest offline
// equivalent of hitting the providers' servers).
type Server struct {
	srv  *http.Server
	ln   net.Listener
	base string
}

// Serve starts an HTTP server for the catalog on a random localhost port.
func Serve(c *Catalog) (*Server, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("source: listen: %w", err)
	}
	s := &Server{
		srv:  &http.Server{Handler: c, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		base: "http://" + ln.Addr().String(),
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// BaseURL returns the server's base URL (http://127.0.0.1:port).
func (s *Server) BaseURL() string { return s.base }

// Close shuts the server down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// HTTPFetcher fetches datasets from a base URL over HTTP.
type HTTPFetcher struct {
	Base   string
	Client *http.Client
}

// Fetch implements Fetcher over HTTP.
func (f *HTTPFetcher) Fetch(ctx context.Context, path string) (io.ReadCloser, error) {
	client := f.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	url := strings.TrimSuffix(f.Base, "/") + "/" + normalize(path)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("source: build request for %s: %w", url, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("source: fetch %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, &StatusError{URL: url, StatusCode: resp.StatusCode, Status: resp.Status}
	}
	return resp.Body, nil
}

// DefaultMaxPayloadBytes caps a single dataset payload read through
// ReadAll: generous for any real feed, but finite, so a malformed or
// fault-injected giant payload cannot OOM the build.
const DefaultMaxPayloadBytes int64 = 256 << 20 // 256 MiB

// ReadAll fetches a path and returns the full payload, capped at
// DefaultMaxPayloadBytes.
func ReadAll(ctx context.Context, f Fetcher, path string) ([]byte, error) {
	return ReadAllLimit(ctx, f, path, 0)
}

// ReadAllLimit is ReadAll with an explicit byte cap (0 = the default).
// Oversized payloads fail with an error matching ErrPayloadTooLarge.
func ReadAllLimit(ctx context.Context, f Fetcher, path string, limit int64) ([]byte, error) {
	if limit <= 0 {
		limit = DefaultMaxPayloadBytes
	}
	rc, err := f.Fetch(ctx, path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	data, err := io.ReadAll(io.LimitReader(rc, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("source: dataset %q exceeds the %d-byte fetch cap: %w", path, limit, ErrPayloadTooLarge)
	}
	return data, nil
}
