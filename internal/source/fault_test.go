package source

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func faultCatalog() *Catalog {
	c := NewCatalog()
	c.Put("a", []byte("payload-a"))
	c.Put("b", []byte("payload-b"))
	c.Put("c", []byte("payload-c-is-quite-a-bit-longer-than-the-others"))
	return c
}

func TestFaultFetcherDeterministicAcrossRuns(t *testing.T) {
	// Same seed, same access sequence → identical outcomes, byte for byte.
	run := func() []string {
		ff := &FaultFetcher{Base: faultCatalog(), Config: FaultConfig{
			Seed:    42,
			Default: FaultRule{ErrorRate: 0.5},
		}}
		var out []string
		for i := 0; i < 20; i++ {
			for _, p := range []string{"a", "b", "c"} {
				data, err := ReadAll(context.Background(), ff, p)
				if err != nil {
					out = append(out, fmt.Sprintf("%s:err:%v", p, err))
				} else {
					out = append(out, fmt.Sprintf("%s:ok:%d", p, len(data)))
				}
			}
		}
		return out
	}
	r1, r2 := run(), run()
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("outcome %d differs between identical seeds: %q vs %q", i, r1[i], r2[i])
		}
	}
	// A 0.5 error rate over 60 fetches must produce both outcomes.
	errs, oks := 0, 0
	for _, o := range r1 {
		if len(o) > 2 && o[2:5] == "err" {
			errs++
		} else {
			oks++
		}
	}
	if errs == 0 || oks == 0 {
		t.Errorf("0.5 error rate produced %d errors / %d successes over 60 fetches", errs, oks)
	}
}

func TestFaultFetcherSeedChangesSchedule(t *testing.T) {
	run := func(seed int64) string {
		ff := &FaultFetcher{Base: faultCatalog(), Config: FaultConfig{
			Seed:    seed,
			Default: FaultRule{ErrorRate: 0.5},
		}}
		s := ""
		for i := 0; i < 30; i++ {
			if _, err := ReadAll(context.Background(), ff, "a"); err != nil {
				s += "x"
			} else {
				s += "."
			}
		}
		return s
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical fault schedules")
	}
}

func TestFaultFetcherFailFirst(t *testing.T) {
	ff := &FaultFetcher{Base: faultCatalog(), Config: FaultConfig{
		Rules: map[string]FaultRule{"a": {FailFirst: 2}},
	}}
	for i := 0; i < 2; i++ {
		_, err := ReadAll(context.Background(), ff, "a")
		if err == nil {
			t.Fatalf("attempt %d should fail", i)
		}
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Kind != FaultFailFirst {
			t.Fatalf("attempt %d error = %v, want fail-first FaultError", i, err)
		}
		if Permanent(err) {
			t.Errorf("fail-first fault must classify as transient: %v", err)
		}
	}
	data, err := ReadAll(context.Background(), ff, "a")
	if err != nil {
		t.Fatalf("attempt 3 should succeed: %v", err)
	}
	if string(data) != "payload-a" {
		t.Errorf("payload = %q", data)
	}
	// Other paths are unaffected.
	if _, err := ReadAll(context.Background(), ff, "b"); err != nil {
		t.Errorf("unruled path failed: %v", err)
	}
	if got := ff.InjectedFaults()[FaultFailFirst]; got != 2 {
		t.Errorf("injected fail-first faults = %d, want 2", got)
	}
}

func TestFaultFetcherFailFirstCuredByRetry(t *testing.T) {
	// The canonical flaky feed: fails twice, then works — a RetryFetcher
	// with three attempts must cure it transparently.
	ff := &FaultFetcher{Base: faultCatalog(), Config: FaultConfig{
		Rules: map[string]FaultRule{"a": {FailFirst: 2}},
	}}
	rf := &RetryFetcher{Base: ff, Attempts: 3, Backoff: time.Millisecond, Seed: 7}
	data, err := ReadAll(context.Background(), rf, "a")
	if err != nil {
		t.Fatalf("retry did not cure the flaky feed: %v", err)
	}
	if string(data) != "payload-a" {
		t.Errorf("payload = %q", data)
	}
}

func TestFaultFetcherNotFoundIsPermanent(t *testing.T) {
	ff := &FaultFetcher{Base: faultCatalog(), Config: FaultConfig{
		Rules: map[string]FaultRule{"a": {NotFound: true}},
	}}
	_, err := ReadAll(context.Background(), ff, "a")
	if err == nil {
		t.Fatal("not-found fault should fail")
	}
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("not-found fault does not match ErrNotFound: %v", err)
	}
	if !Permanent(err) {
		t.Errorf("not-found fault must classify as permanent: %v", err)
	}
	// Wrapped in a RetryFetcher it fails fast: one attempt only.
	cf := &countingFetcher{base: ff}
	rf := &RetryFetcher{Base: cf, Attempts: 5, Backoff: time.Millisecond}
	if _, err := rf.Fetch(context.Background(), "a"); err == nil {
		t.Fatal("retrying a deleted dataset should still fail")
	}
	if cf.calls["a"] != 1 {
		t.Errorf("deleted dataset fetched %d times, want 1 (fail fast)", cf.calls["a"])
	}
}

func TestFaultFetcherTruncatesBodies(t *testing.T) {
	ff := &FaultFetcher{Base: faultCatalog(), Config: FaultConfig{
		Rules: map[string]FaultRule{"c": {TruncateRate: 1.0, TruncateAfter: 10}},
	}}
	data, err := ReadAll(context.Background(), ff, "c")
	if err == nil {
		t.Fatalf("truncated body should surface a read error (got %d bytes)", len(data))
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != FaultTruncate {
		t.Fatalf("error = %v, want truncate FaultError", err)
	}
	if got := ff.InjectedFaults()[FaultTruncate]; got == 0 {
		t.Error("truncate fault not recorded")
	}
}

func TestFaultFetcherTruncationCuredByRetry(t *testing.T) {
	// Truncation fires on roughly half the attempts (deterministically, per
	// seed); the refetch reader re-fetches after each mid-body death and
	// skips the prefix already delivered, so as soon as one attempt serves
	// the body whole the payload completes intact.
	ff := &FaultFetcher{Base: faultCatalog(), Config: FaultConfig{
		Seed:  3,
		Rules: map[string]FaultRule{"c": {TruncateRate: 0.5, TruncateAfter: 10}},
	}}
	rf := &RetryFetcher{Base: ff, Attempts: 8, Backoff: time.Millisecond, Seed: 7}
	data, err := ReadAll(context.Background(), rf, "c")
	if err != nil {
		t.Fatalf("mid-body resume did not cure truncation: %v", err)
	}
	if string(data) != "payload-c-is-quite-a-bit-longer-than-the-others" {
		t.Errorf("payload = %q", data)
	}
}

func TestFaultFetcherLatencyRespectsContext(t *testing.T) {
	ff := &FaultFetcher{Base: faultCatalog(), Config: FaultConfig{
		Rules: map[string]FaultRule{"a": {Latency: time.Minute}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := ff.Fetch(ctx, "a"); err == nil {
		t.Fatal("latency under a dead context should error")
	}
	if time.Since(start) > time.Second {
		t.Errorf("cancellation did not interrupt the injected latency (%s)", time.Since(start))
	}
}
