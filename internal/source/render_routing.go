package source

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"iyp/internal/simnet"
)

// renderRouting produces the BGP-, RPKI- and registry-flavoured datasets.
func renderRouting(c *Catalog, in *simnet.Internet) {
	renderBGPKIT(c, in)
	renderPCH(c, in)
	renderBGPTools(c, in)
	renderCAIDA(c, in)
	renderIHR(c, in)
	renderRIPE(c, in)
	renderNRO(c, in)
	renderRoVista(c, in)
	renderEmileAben(c, in)
	renderAliceLG(c, in)
}

// --- BGPKIT ---

type bgpkitPfx2asRow struct {
	Prefix string `json:"prefix"`
	ASN    uint32 `json:"asn"`
	Count  int    `json:"count"`
}

type bgpkitAs2relRow struct {
	ASN1 uint32 `json:"asn1"`
	ASN2 uint32 `json:"asn2"`
	Rel  int    `json:"rel"` // 0 = peer, 1 = asn1 is provider of asn2
}

type bgpkitPeerStatsRow struct {
	Collector string `json:"collector"`
	ASN       uint32 `json:"asn"`
	NumV4Pfxs int    `json:"num_v4_pfxs"`
}

func renderBGPKIT(c *Catalog, in *simnet.Internet) {
	// The planted data-quality errors (paper §6.1) corrupt only this
	// dataset; PCH and IHR keep the true origins, so cross-dataset
	// comparison can expose the bug.
	wrongOrigin := map[string]uint32{}
	for _, e := range in.PlantedErrors {
		wrongOrigin[e.Prefix] = e.WrongOrigin
	}
	var pfx []bgpkitPfx2asRow
	for _, p := range in.Prefixes {
		origin := p.Origin.ASN
		if w, ok := wrongOrigin[p.CIDR]; ok {
			origin = w
		}
		pfx = append(pfx, bgpkitPfx2asRow{Prefix: p.CIDR, ASN: origin, Count: 2})
		if p.MOASOrigin != nil {
			pfx = append(pfx, bgpkitPfx2asRow{Prefix: p.CIDR, ASN: p.MOASOrigin.ASN, Count: 1})
		}
	}
	c.Put(PathBGPKITPfx2as, jsonLines(pfx))

	var rels []bgpkitAs2relRow
	for _, a := range in.ASes {
		for _, peer := range a.Peers {
			if a.ASN < peer { // emit each peering once
				rels = append(rels, bgpkitAs2relRow{ASN1: a.ASN, ASN2: peer, Rel: 0})
			}
		}
		for _, cust := range a.Customers {
			rels = append(rels, bgpkitAs2relRow{ASN1: a.ASN, ASN2: cust, Rel: 1})
		}
	}
	c.Put(PathBGPKITAs2rel, jsonLines(rels))

	var stats []bgpkitPeerStatsRow
	for _, col := range in.Collectors {
		for _, peer := range col.Peers {
			n := 0
			if a := in.ASByASN(peer); a != nil {
				n = len(a.Prefixes)
			}
			stats = append(stats, bgpkitPeerStatsRow{Collector: col.Name, ASN: peer, NumV4Pfxs: n})
		}
	}
	c.Put(PathBGPKITPeerStats, jsonLines(stats))
}

// --- PCH daily routing snapshots ---

func renderPCH(c *Catalog, in *simnet.Internet) {
	var v4, v6 bytes.Buffer
	// PCH's view covers most but not all of the table.
	for i, p := range in.Prefixes {
		if i%10 == 9 { // ~90% visibility
			continue
		}
		out := &v4
		if p.AF == 6 {
			out = &v6
		}
		fmt.Fprintf(out, "%s %d\n", p.CIDR, p.Origin.ASN)
	}
	c.Put(PathPCHRoutingV4, v4.Bytes())
	c.Put(PathPCHRoutingV6, v6.Bytes())
}

// --- BGP.Tools ---

func renderBGPTools(c *Catalog, in *simnet.Internet) {
	var names, tags bytes.Buffer
	names.WriteString("asn,name,class\n")
	for _, a := range in.ASes {
		fmt.Fprintf(&names, "AS%d,%q,%s\n", a.ASN, a.Name, a.Category)
		for _, t := range a.Tags {
			fmt.Fprintf(&tags, "AS%d,%q\n", a.ASN, t)
		}
	}
	c.Put(PathBGPToolsASNames, names.Bytes())
	c.Put(PathBGPToolsTags, tags.Bytes())

	var any4, any6 bytes.Buffer
	for _, p := range in.Prefixes {
		if !p.Anycast {
			continue
		}
		if p.AF == 4 {
			fmt.Fprintln(&any4, p.CIDR)
		} else {
			fmt.Fprintln(&any6, p.CIDR)
		}
	}
	c.Put(PathBGPToolsAnycast4, any4.Bytes())
	c.Put(PathBGPToolsAnycast6, any6.Bytes())
}

// --- CAIDA ---

type caidaASRankRow struct {
	Rank    int    `json:"rank"`
	ASN     uint32 `json:"asn"`
	ASNName string `json:"asnName"`
	Cone    struct {
		NumberASNs int `json:"numberAsns"`
	} `json:"cone"`
	Country struct {
		ISO string `json:"iso"`
	} `json:"country"`
	Organization struct {
		OrgID   string `json:"orgId"`
		OrgName string `json:"orgName"`
	} `json:"organization"`
}

type caidaIXRow struct {
	IXID    int    `json:"ix_id"`
	Name    string `json:"name"`
	Country string `json:"country"`
	PDBID   int    `json:"pdb_id,omitempty"`
}

type caidaIXASNRow struct {
	IXID int    `json:"ix_id"`
	ASN  uint32 `json:"asn"`
}

func renderCAIDA(c *Catalog, in *simnet.Internet) {
	var ranks []caidaASRankRow
	for _, a := range in.ASes {
		var row caidaASRankRow
		row.Rank = a.Rank
		row.ASN = a.ASN
		row.ASNName = a.Name
		row.Cone.NumberASNs = a.ConeSize
		row.Country.ISO = a.Country
		row.Organization.OrgID = fmt.Sprintf("ORG-%d", a.Org.ID)
		row.Organization.OrgName = a.Org.Name
		ranks = append(ranks, row)
	}
	c.Put(PathCAIDAASRank, jsonLines(ranks))

	var ixs []caidaIXRow
	var members []caidaIXASNRow
	for _, ix := range in.IXPs {
		ixs = append(ixs, caidaIXRow{IXID: ix.ID, Name: ix.Name, Country: ix.Country, PDBID: ix.PeeringdbIXID})
		for _, m := range ix.Members {
			members = append(members, caidaIXASNRow{IXID: ix.ID, ASN: m})
		}
	}
	c.Put(PathCAIDAIXPs, jsonLines(ixs))
	c.Put(PathCAIDAIXPASNs, jsonLines(members))
}

// --- IHR ---

func renderIHR(c *Catalog, in *simnet.Internet) {
	var heg bytes.Buffer
	heg.WriteString("originasn,asn,hege,af\n")
	for _, a := range in.ASes {
		// Origin 0 rows are the global hegemony scores.
		if a.Hegemony > 0.0005 {
			fmt.Fprintf(&heg, "0,%d,%.6f,4\n", a.ASN, a.Hegemony)
		}
		for _, prov := range a.Providers {
			fmt.Fprintf(&heg, "%d,%d,%.6f,4\n", a.ASN, prov, 0.3+0.5/float64(1+len(a.Providers)))
		}
	}
	c.Put(PathIHRHegemony, heg.Bytes())

	var dep bytes.Buffer
	dep.WriteString("country,asn,hege\n")
	byCC := eyeballsByCountry(in)
	ccs := make([]string, 0, len(byCC))
	for cc := range byCC {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	for _, cc := range ccs {
		for _, a := range byCC[cc] {
			if share := a.PopShare[cc]; share > 0.01 {
				fmt.Fprintf(&dep, "%s,%d,%.4f\n", cc, a.ASN, share)
			}
		}
	}
	c.Put(PathIHRCountryDep, dep.Bytes())

	// Status labels contain commas ("RPKI Invalid, more specific"), so the
	// ROV dataset must be written with proper CSV quoting.
	var rov bytes.Buffer
	rovw := csv.NewWriter(&rov)
	_ = rovw.Write([]string{"prefix", "origin_asn", "rpki_status", "irr_status"})
	for _, p := range in.Prefixes {
		_ = rovw.Write([]string{p.CIDR, fmt.Sprint(p.Origin.ASN), p.RPKIStatus, p.IRRStatus})
		if p.MOASOrigin != nil {
			// Legitimate multi-origin prefixes carry a ROA per origin,
			// so a covered MOAS prefix validates for both origins.
			status := simnet.RPKINotFound
			if p.ROA != nil {
				status = simnet.RPKIValid
			}
			_ = rovw.Write([]string{p.CIDR, fmt.Sprint(p.MOASOrigin.ASN), status, simnet.IRRNotFound})
		}
	}
	rovw.Flush()
	c.Put(PathIHRROV, rov.Bytes())
}

func eyeballsByCountry(in *simnet.Internet) map[string][]*simnet.AS {
	out := map[string][]*simnet.AS{}
	for _, a := range in.ASes {
		for cc := range a.PopShare {
			out[cc] = append(out[cc], a)
		}
	}
	return out
}

// --- RIPE NCC ---

type ripeROA struct {
	ASN       string `json:"asn"`
	Prefix    string `json:"prefix"`
	MaxLength int    `json:"maxLength"`
	TA        string `json:"ta"`
}

func renderRIPE(c *Catalog, in *simnet.Internet) {
	var names bytes.Buffer
	for _, a := range in.ASes {
		// RIPE asnames.txt format: "<asn> <name>, <CC>".
		fmt.Fprintf(&names, "%d %s, %s\n", a.ASN, strings.ToUpper(strings.Fields(a.Name)[0]), a.Country)
	}
	c.Put(PathRIPEASNames, names.Bytes())

	var roas struct {
		ROAs []ripeROA `json:"roas"`
	}
	for _, p := range in.Prefixes {
		if p.ROA == nil {
			continue
		}
		ta := "ripe"
		switch p.Origin.RIR {
		case "arin":
			ta = "arin"
		case "apnic":
			ta = "apnic"
		case "lacnic":
			ta = "lacnic"
		case "afrinic":
			ta = "afrinic"
		}
		roas.ROAs = append(roas.ROAs, ripeROA{
			ASN:       fmt.Sprintf("AS%d", p.ROA.ASN),
			Prefix:    p.ROA.Prefix,
			MaxLength: p.ROA.MaxLength,
			TA:        ta,
		})
		if p.MOASOrigin != nil {
			// The second origin of a legitimately multi-origin prefix
			// registers its own ROA.
			roas.ROAs = append(roas.ROAs, ripeROA{
				ASN:       fmt.Sprintf("AS%d", p.MOASOrigin.ASN),
				Prefix:    p.CIDR,
				MaxLength: p.ROA.MaxLength,
				TA:        ta,
			})
		}
	}
	c.Put(PathRIPERPKIROAs, jsonBlob(roas))

	renderAtlas(c, in)
}

type atlasStatus struct {
	Name string `json:"name"`
}

type atlasProbeRow struct {
	ID          int         `json:"id"`
	ASNv4       uint32      `json:"asn_v4,omitempty"`
	CountryCode string      `json:"country_code"`
	AddressV4   string      `json:"address_v4,omitempty"`
	Status      atlasStatus `json:"status"`
}

type atlasMeasRow struct {
	ID       int         `json:"id"`
	Type     string      `json:"type"`
	AF       int         `json:"af"`
	Target   string      `json:"target"`
	TargetIP string      `json:"target_ip,omitempty"`
	Status   atlasStatus `json:"status"`
	Probes   []int       `json:"probes"`
}

func renderAtlas(c *Catalog, in *simnet.Internet) {
	var probes struct {
		Results []atlasProbeRow `json:"results"`
	}
	for _, p := range in.Probes {
		probes.Results = append(probes.Results, atlasProbeRow{
			ID: p.ID, ASNv4: p.ASNv4, CountryCode: p.Country,
			AddressV4: p.IPv4, Status: atlasStatus{Name: p.Status},
		})
	}
	c.Put(PathRIPEAtlasProbes, jsonBlob(probes))

	var meas struct {
		Results []atlasMeasRow `json:"results"`
	}
	for _, m := range in.Measures {
		row := atlasMeasRow{
			ID: m.ID, Type: m.Type, AF: m.AF, Target: m.Target,
			Status: atlasStatus{Name: m.Status}, Probes: m.ProbeIDs,
		}
		if m.TargetIsIP {
			row.TargetIP = m.Target
		}
		meas.Results = append(meas.Results, row)
	}
	c.Put(PathRIPEAtlasMeas, jsonBlob(meas))
}

// --- NRO delegated-extended ---

// renderNRO emits the NRO extended allocation and assignment report in its
// real pipe-separated format:
//
//	registry|cc|type|start|value|date|status|opaque-id
func renderNRO(c *Catalog, in *simnet.Internet) {
	var buf bytes.Buffer
	records := 0
	var body bytes.Buffer
	for _, a := range in.ASes {
		fmt.Fprintf(&body, "%s|%s|asn|%d|1|20150801|allocated|%s\n", a.RIR, a.Country, a.ASN, a.OpaqueID)
		records++
		for _, p := range a.Prefixes {
			pp := netip.MustParsePrefix(p.CIDR)
			if p.AF == 4 {
				count := 1 << (32 - pp.Bits())
				fmt.Fprintf(&body, "%s|%s|ipv4|%s|%d|20160101|allocated|%s\n", a.RIR, a.Country, pp.Addr(), count, a.OpaqueID)
			} else {
				fmt.Fprintf(&body, "%s|%s|ipv6|%s|%d|20160101|allocated|%s\n", a.RIR, a.Country, pp.Addr(), pp.Bits(), a.OpaqueID)
			}
			records++
		}
	}
	fmt.Fprintf(&buf, "2.0|nro|20240501|%d|19830101|20240501|+0000\n", records)
	buf.Write(body.Bytes())
	c.Put(PathNRODelegated, buf.Bytes())
}

// --- Virginia Tech RoVista ---

type rovistaRow struct {
	ASN   uint32  `json:"asn"`
	Ratio float64 `json:"ratio"`
}

func renderRoVista(c *Catalog, in *simnet.Internet) {
	var rows []rovistaRow
	for _, a := range in.ASes {
		rows = append(rows, rovistaRow{ASN: a.ASN, Ratio: a.RoVistaScore})
	}
	c.Put(PathRoVista, jsonBlob(rows))
}

// --- Emile Aben asnames ---

func renderEmileAben(c *Catalog, in *simnet.Internet) {
	var buf bytes.Buffer
	for _, a := range in.ASes {
		fmt.Fprintf(&buf, "%d \"%s\"\n", a.ASN, a.Name)
	}
	c.Put(PathEmileAbenASNames, buf.Bytes())
}

// --- Alice-LG looking glasses ---

type aliceNeighbor struct {
	ASN         uint32 `json:"asn"`
	Description string `json:"description"`
	State       string `json:"state"`
}

type aliceNeighborsDoc struct {
	IXPName   string          `json:"ixp_name"`
	Neighbors []aliceNeighbor `json:"neighbors"`
}

// AliceLGNames are the looking-glass identifiers the crawlers fetch, fixed
// regardless of model size (the paper imports these seven).
var AliceLGNames = []string{"amsix", "bcix", "decix", "ixbr", "linx", "megaport", "netnod"}

func renderAliceLG(c *Catalog, in *simnet.Internet) {
	i := 0
	for _, ix := range in.IXPs {
		if !ix.AliceLG || i >= len(AliceLGNames) {
			continue
		}
		doc := aliceNeighborsDoc{IXPName: ix.Name}
		for _, m := range ix.Members {
			desc := ""
			if a := in.ASByASN(m); a != nil {
				desc = a.Name
			}
			doc.Neighbors = append(doc.Neighbors, aliceNeighbor{ASN: m, Description: desc, State: "up"})
		}
		c.Put(PathAliceLGPrefix+AliceLGNames[i]+"/neighbors.json", jsonBlob(doc))
		i++
	}
}
