package source

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// countingFetcher wraps a Fetcher and counts Fetch calls per path.
type countingFetcher struct {
	base  Fetcher
	calls map[string]int
}

func (f *countingFetcher) Fetch(ctx context.Context, path string) (io.ReadCloser, error) {
	if f.calls == nil {
		f.calls = map[string]int{}
	}
	f.calls[path]++
	return f.base.Fetch(ctx, path)
}

func TestRetryFetcherFailsFastOnPermanentErrors(t *testing.T) {
	// A missing dataset is permanent: exactly one attempt, no backoff burn.
	cf := &countingFetcher{base: NewCatalog()}
	rf := &RetryFetcher{Base: cf, Attempts: 5, Backoff: time.Millisecond}
	_, err := rf.Fetch(context.Background(), "gone")
	if err == nil {
		t.Fatal("missing dataset should fail")
	}
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("error does not match ErrNotFound: %v", err)
	}
	if !strings.Contains(err.Error(), "not retried") {
		t.Errorf("error does not state the fail-fast: %v", err)
	}
	if cf.calls["gone"] != 1 {
		t.Errorf("permanent error fetched %d times, want 1", cf.calls["gone"])
	}
}

func TestRetryFetcherRetriesTransientErrors(t *testing.T) {
	c := NewCatalog()
	c.Put("d", []byte("ok"))
	cf := &countingFetcher{base: &flakyFetcher{base: c, failures: 2}}
	rf := &RetryFetcher{Base: cf, Attempts: 3, Backoff: time.Millisecond, Seed: 1}
	data, err := ReadAll(context.Background(), rf, "d")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "ok" {
		t.Errorf("payload = %q", data)
	}
	if cf.calls["d"] != 3 {
		t.Errorf("fetched %d times, want 3", cf.calls["d"])
	}
}

// hangingFetcher blocks until the context dies, then succeeds on later
// attempts.
type hangingFetcher struct {
	base  Fetcher
	hangs int
	seen  int
}

func (f *hangingFetcher) Fetch(ctx context.Context, path string) (io.ReadCloser, error) {
	f.seen++
	if f.seen <= f.hangs {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return f.base.Fetch(ctx, path)
}

func TestRetryFetcherAttemptTimeout(t *testing.T) {
	// The first attempt stalls forever; the per-attempt deadline must cut it
	// loose so the second attempt can succeed well before the caller's own
	// deadline.
	c := NewCatalog()
	c.Put("slow", []byte("finally"))
	rf := &RetryFetcher{
		Base:           &hangingFetcher{base: c, hangs: 1},
		Attempts:       3,
		Backoff:        time.Millisecond,
		AttemptTimeout: 20 * time.Millisecond,
		Seed:           1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	data, err := ReadAll(ctx, rf, "slow")
	if err != nil {
		t.Fatalf("per-attempt timeout did not recover: %v", err)
	}
	if string(data) != "finally" {
		t.Errorf("payload = %q", data)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("recovery took %s; the stalled attempt was not bounded", time.Since(start))
	}
}

// truncatingFetcher serves a body that dies mid-read for the first N
// fetches, then serves it whole.
type truncatingFetcher struct {
	base   Fetcher
	after  int64
	truncs int
	seen   int
}

func (f *truncatingFetcher) Fetch(ctx context.Context, path string) (io.ReadCloser, error) {
	f.seen++
	rc, err := f.base.Fetch(ctx, path)
	if err != nil {
		return nil, err
	}
	if f.seen <= f.truncs {
		return &truncReader{rc: rc, left: f.after, err: errors.New("connection reset mid-body")}, nil
	}
	return rc, nil
}

func TestRetryFetcherResumesMidBodyFailure(t *testing.T) {
	payload := strings.Repeat("0123456789", 1000) // 10 KB
	c := NewCatalog()
	c.Put("big", []byte(payload))
	rf := &RetryFetcher{
		Base:     &truncatingFetcher{base: c, after: 4096, truncs: 2},
		Attempts: 3,
		Backoff:  time.Millisecond,
		Seed:     1,
	}
	data, err := ReadAll(context.Background(), rf, "big")
	if err != nil {
		t.Fatalf("mid-body retry did not recover: %v", err)
	}
	if string(data) != payload {
		t.Fatalf("payload corrupted after resume: got %d bytes, want %d", len(data), len(payload))
	}
}

func TestRetryFetcherMidBodyBudgetExhausted(t *testing.T) {
	payload := strings.Repeat("x", 8192)
	c := NewCatalog()
	c.Put("big", []byte(payload))
	rf := &RetryFetcher{
		Base:     &truncatingFetcher{base: c, after: 1024, truncs: 100},
		Attempts: 2,
		Backoff:  time.Millisecond,
		Seed:     1,
	}
	_, err := ReadAll(context.Background(), rf, "big")
	if err == nil {
		t.Fatal("persistent truncation should exhaust the recovery budget")
	}
	if !strings.Contains(err.Error(), "body failed at byte") {
		t.Errorf("error does not describe the mid-body failure: %v", err)
	}
}

func TestHTTPFetcherStatusClassification(t *testing.T) {
	c := NewCatalog()
	c.Put("present", []byte("here"))
	srv, err := Serve(c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f := &HTTPFetcher{Base: srv.BaseURL()}

	// 404 surfaces as a StatusError matching ErrNotFound → permanent.
	_, err = f.Fetch(context.Background(), "absent")
	if err == nil {
		t.Fatal("404 should error")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusNotFound {
		t.Fatalf("404 error = %#v, want StatusError{404}", err)
	}
	if !errors.Is(err, ErrNotFound) {
		t.Error("404 does not match ErrNotFound")
	}
	if !Permanent(err) {
		t.Error("404 should classify as permanent")
	}

	// Connection errors are transient: retrying may reach a recovered server.
	srv.Close()
	_, err = f.Fetch(context.Background(), "present")
	if err == nil {
		t.Fatal("connection to closed server should error")
	}
	if Permanent(err) {
		t.Errorf("connection error should classify as transient: %v", err)
	}
}

func TestPermanentClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrNotFound, true},
		{ErrPayloadTooLarge, true},
		{errors.New("dial tcp: connection refused"), false},
		{&StatusError{StatusCode: http.StatusForbidden}, true},
		{&StatusError{StatusCode: http.StatusNotFound}, true},
		{&StatusError{StatusCode: http.StatusTooManyRequests}, false},
		{&StatusError{StatusCode: http.StatusRequestTimeout}, false},
		{&StatusError{StatusCode: http.StatusTooEarly}, false},
		{&StatusError{StatusCode: http.StatusInternalServerError}, false},
		{&StatusError{StatusCode: http.StatusBadGateway}, false},
	}
	for _, tc := range cases {
		if got := Permanent(tc.err); got != tc.want {
			t.Errorf("Permanent(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestReadAllLimitCapsPayloads(t *testing.T) {
	c := NewCatalog()
	c.Put("big", []byte(strings.Repeat("a", 2048)))

	// Under the cap: full payload.
	data, err := ReadAllLimit(context.Background(), c, "big", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2048 {
		t.Errorf("payload = %d bytes", len(data))
	}
	// Exactly at the cap: still fine.
	if _, err := ReadAllLimit(context.Background(), c, "big", 2048); err != nil {
		t.Errorf("payload at the cap should pass: %v", err)
	}
	// Over the cap: distinct, permanent error.
	_, err = ReadAllLimit(context.Background(), c, "big", 1024)
	if err == nil {
		t.Fatal("oversized payload should fail")
	}
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("error does not match ErrPayloadTooLarge: %v", err)
	}
	if !Permanent(err) {
		t.Error("oversized payload should classify as permanent")
	}
	// 0 means the generous default, not zero bytes.
	if _, err := ReadAllLimit(context.Background(), c, "big", 0); err != nil {
		t.Errorf("default cap rejected a 2 KB payload: %v", err)
	}
}
