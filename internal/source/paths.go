package source

// Dataset paths: the contract between renderers (provider side) and
// crawlers (consumer side). One path per dataset of Table 8.
const (
	// Alice-LG looking glasses: per-IXP neighbor dumps.
	PathAliceLGPrefix = "alice-lg/" // + <lg-name>/neighbors.json

	// APNIC population estimates.
	PathAPNICPop = "apnic/aspop.jsonl"

	// BGPKIT.
	PathBGPKITPfx2as    = "bgpkit/pfx2as.jsonl"
	PathBGPKITAs2rel    = "bgpkit/as2rel.jsonl"
	PathBGPKITPeerStats = "bgpkit/peer-stats.jsonl"

	// BGP.Tools.
	PathBGPToolsASNames  = "bgptools/asns.csv"
	PathBGPToolsTags     = "bgptools/tags.csv"
	PathBGPToolsAnycast4 = "bgptools/anycast-prefixes-v4.txt"
	PathBGPToolsAnycast6 = "bgptools/anycast-prefixes-v6.txt"

	// CAIDA.
	PathCAIDAASRank  = "caida/asrank.jsonl"
	PathCAIDAIXPs    = "caida/ixs.jsonl"
	PathCAIDAIXPASNs = "caida/ix-asns.jsonl"

	// Cisco Umbrella.
	PathCiscoUmbrella = "cisco/top-1m.csv"

	// Citizen Lab.
	PathCitizenLab = "citizenlab/global.csv"

	// Cloudflare Radar.
	PathCloudflareRanking    = "cloudflare/radar/ranking/top.json"
	PathCloudflareDNSTopAses = "cloudflare/radar/dns/top-ases.json"
	PathCloudflareDNSTopLoc  = "cloudflare/radar/dns/top-locations.json"
	PathCloudflareTopDomains = "cloudflare/radar/datasets/top-domains.csv"

	// Emile Aben AS names.
	PathEmileAbenASNames = "emileaben/asnames.txt"

	// IHR.
	PathIHRHegemony   = "ihr/hegemony.csv"
	PathIHRCountryDep = "ihr/country-dependency.csv"
	PathIHRROV        = "ihr/rov.csv"

	// Internet Intelligence Lab.
	PathInetIntelAS2Org = "inetintel/as2org.jsonl"

	// NRO delegated-extended.
	PathNRODelegated = "nro/delegated-extended"

	// OpenINTEL.
	PathOpenINTELTranco1M   = "openintel/tranco1m.jsonl"
	PathOpenINTELUmbrella1M = "openintel/umbrella1m.jsonl"
	PathOpenINTELNS         = "openintel/ns.jsonl"
	PathOpenINTELDNSGraph   = "openintel/dnsgraph.jsonl"

	// Packet Clearing House.
	PathPCHRoutingV4 = "pch/routing-snapshot-v4.txt"
	PathPCHRoutingV6 = "pch/routing-snapshot-v6.txt"

	// PeeringDB API endpoints.
	PathPeeringDBOrg    = "peeringdb/api/org.json"
	PathPeeringDBFac    = "peeringdb/api/fac.json"
	PathPeeringDBIX     = "peeringdb/api/ix.json"
	PathPeeringDBIXLan  = "peeringdb/api/ixlan.json"
	PathPeeringDBNetFac = "peeringdb/api/netfac.json"

	// RIPE NCC.
	PathRIPEASNames     = "ripe/asnames.txt"
	PathRIPERPKIROAs    = "ripe/rpki/roas.json"
	PathRIPEAtlasMeas   = "ripe/atlas/measurements.json"
	PathRIPEAtlasProbes = "ripe/atlas/probes.json"

	// SimulaMet rir-data.org rDNS.
	PathSimulaMetRDNS = "simulamet/rdns.jsonl"

	// Stanford ASdb.
	PathStanfordASdb = "stanford/asdb.csv"

	// Tranco.
	PathTranco = "tranco/top-1m.csv"

	// Virginia Tech RoVista.
	PathRoVista = "virginiatech/rovista.json"

	// World Bank.
	PathWorldBankPop = "worldbank/population.csv"
)
