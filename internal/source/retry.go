package source

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// RetryFetcher wraps another Fetcher with bounded retries, exponential
// backoff with full jitter, and error classification. Dataset providers
// rate-limit and flake; the real IYP pipeline re-fetches rather than losing
// a dataset for the week, and so does this one when fetching over HTTP.
//
// Hardening over a naive retry loop:
//
//   - Permanent errors (missing dataset, 4xx) fail fast instead of burning
//     the whole backoff budget on an outcome that cannot change.
//   - Backoff delays use full jitter (uniform in [0, cap]) so parallel
//     crawlers hammered by one flaky provider don't retry in lockstep.
//   - AttemptTimeout bounds each individual try, fetch and body read
//     included, so one stalled connection cannot eat the crawler deadline.
//   - The returned reader survives mid-body failures: a payload that dies
//     halfway through is re-fetched and resumed transparently.
type RetryFetcher struct {
	// Base performs the actual fetches.
	Base Fetcher
	// Attempts is the maximum number of tries per fetch (0 = 3).
	Attempts int
	// Backoff is the base delay between tries (0 = 100ms). The delay
	// before try n is uniform in [0, Backoff·2ⁿ⁻¹], capped at MaxBackoff.
	// Context cancellation interrupts the wait.
	Backoff time.Duration
	// MaxBackoff caps the jittered delay (0 = 10s).
	MaxBackoff time.Duration
	// AttemptTimeout bounds one try, including reading the body
	// (0 = no per-attempt bound beyond the caller's context).
	AttemptTimeout time.Duration
	// Seed fixes the jitter sequence for reproducible schedules in tests
	// (0 = seeded from the clock).
	Seed int64
	// IsPermanent overrides the error classifier (nil = Permanent).
	IsPermanent func(error) bool

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

func (f *RetryFetcher) attempts() int {
	if f.Attempts <= 0 {
		return 3
	}
	return f.Attempts
}

func (f *RetryFetcher) permanent(err error) bool {
	if f.IsPermanent != nil {
		return f.IsPermanent(err)
	}
	return Permanent(err)
}

// jittered returns a uniform delay in [0, min(base·2^try, MaxBackoff)].
func (f *RetryFetcher) jittered(try int) time.Duration {
	base := f.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := f.MaxBackoff
	if maxd <= 0 {
		maxd = 10 * time.Second
	}
	cap := base << uint(try)
	if cap > maxd || cap <= 0 {
		cap = maxd
	}
	f.once.Do(func() {
		seed := f.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		f.rng = rand.New(rand.NewSource(seed))
	})
	f.mu.Lock()
	d := time.Duration(f.rng.Int63n(int64(cap) + 1))
	f.mu.Unlock()
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// cancelOnClose ties a per-attempt context to the body's lifetime.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// fetchOnce performs a single try under the per-attempt timeout. The
// timeout covers reading the body too: the deadline is released only when
// the returned reader is closed.
func (f *RetryFetcher) fetchOnce(ctx context.Context, path string) (io.ReadCloser, error) {
	if f.AttemptTimeout <= 0 {
		return f.Base.Fetch(ctx, path)
	}
	actx, cancel := context.WithTimeout(ctx, f.AttemptTimeout)
	rc, err := f.Base.Fetch(actx, path)
	if err != nil {
		cancel()
		return nil, err
	}
	return &cancelOnClose{ReadCloser: rc, cancel: cancel}, nil
}

// fetchRetry runs the classified retry loop and returns the first
// successful body.
func (f *RetryFetcher) fetchRetry(ctx context.Context, path string) (io.ReadCloser, error) {
	attempts := f.attempts()
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			if err := sleepCtx(ctx, f.jittered(try-1)); err != nil {
				return nil, err
			}
		}
		rc, err := f.fetchOnce(ctx, path)
		if err == nil {
			return rc, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if f.permanent(err) {
			return nil, fmt.Errorf("source: fetch %s: permanent failure, not retried: %w", path, err)
		}
	}
	return nil, fmt.Errorf("source: fetch %s failed after %d attempts: %w", path, attempts, lastErr)
}

// Fetch implements Fetcher with retries. The returned reader additionally
// retries mid-body read failures by re-fetching the payload and skipping
// the bytes already delivered.
func (f *RetryFetcher) Fetch(ctx context.Context, path string) (io.ReadCloser, error) {
	rc, err := f.fetchRetry(ctx, path)
	if err != nil {
		return nil, err
	}
	return &refetchReader{f: f, ctx: ctx, path: path, rc: rc, budget: f.attempts() - 1}, nil
}

// refetchReader resumes a payload whose body failed mid-read: it re-fetches
// from the base fetcher and discards the prefix already handed to the
// caller. budget bounds how many mid-body recoveries one payload gets.
type refetchReader struct {
	f      *RetryFetcher
	ctx    context.Context
	path   string
	rc     io.ReadCloser
	offset int64
	budget int
}

func (r *refetchReader) Read(p []byte) (int, error) {
	for {
		n, err := r.rc.Read(p)
		r.offset += int64(n)
		if err == nil || errors.Is(err, io.EOF) {
			return n, err
		}
		if n > 0 {
			// Deliver what we got; the sticky error resurfaces on the next
			// call and is handled there.
			return n, nil
		}
		if rerr := r.reopen(err); rerr != nil {
			return 0, rerr
		}
	}
}

// reopen re-fetches the payload after a mid-body failure and fast-forwards
// past the bytes already delivered. cause is the read error being cured.
func (r *refetchReader) reopen(cause error) error {
	for {
		if r.ctx.Err() != nil {
			return cause
		}
		if r.budget <= 0 || r.f.permanent(cause) {
			return fmt.Errorf("source: fetch %s: body failed at byte %d: %w", r.path, r.offset, cause)
		}
		r.budget--
		r.rc.Close()
		if err := sleepCtx(r.ctx, r.f.jittered(0)); err != nil {
			return cause
		}
		rc, err := r.f.fetchOnce(r.ctx, r.path)
		if err != nil {
			cause = err
			// Keep a closed-but-valid reader so a caller retrying Read
			// after an error does not hit a nil body.
			r.rc = io.NopCloser(errReader{err})
			continue
		}
		if _, err := io.CopyN(io.Discard, rc, r.offset); err != nil && !errors.Is(err, io.EOF) {
			rc.Close()
			cause = err
			r.rc = io.NopCloser(errReader{err})
			continue
		}
		r.rc = rc
		return nil
	}
}

func (r *refetchReader) Close() error { return r.rc.Close() }

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }
