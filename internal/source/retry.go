package source

import (
	"context"
	"fmt"
	"io"
	"time"
)

// RetryFetcher wraps another Fetcher with bounded retries and exponential
// backoff. Dataset providers rate-limit and flake; the real IYP pipeline
// re-fetches rather than losing a dataset for the week, and so does this
// one when fetching over HTTP.
type RetryFetcher struct {
	// Base performs the actual fetches.
	Base Fetcher
	// Attempts is the maximum number of tries per fetch (0 = 3).
	Attempts int
	// Backoff is the initial delay between tries, doubled each retry
	// (0 = 100ms). Context cancellation interrupts the wait.
	Backoff time.Duration
}

// Fetch implements Fetcher with retries.
func (f *RetryFetcher) Fetch(ctx context.Context, path string) (io.ReadCloser, error) {
	attempts := f.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := f.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		rc, err := f.Base.Fetch(ctx, path)
		if err == nil {
			return rc, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("source: fetch %s failed after %d attempts: %w", path, attempts, lastErr)
}
