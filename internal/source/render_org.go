package source

import (
	"bytes"
	"fmt"

	"iyp/internal/simnet"
)

// renderOrgs produces the organization-, facility- and population-centric
// datasets.
func renderOrgs(c *Catalog, in *simnet.Internet) {
	renderPeeringDB(c, in)
	renderInetIntel(c, in)
	renderStanfordASdb(c, in)
	renderAPNIC(c, in)
	renderWorldBank(c, in)
}

// --- PeeringDB API ---

type pdbOrg struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Country string `json:"country"`
	Website string `json:"website,omitempty"`
}

type pdbFac struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Country string `json:"country"`
	OrgID   int    `json:"org_id,omitempty"`
	OrgName string `json:"org_name,omitempty"`
}

type pdbIX struct {
	ID      int    `json:"id"`
	Name    string `json:"name"`
	Country string `json:"country"`
}

type pdbIXLan struct {
	IXID   int    `json:"ix_id"`
	IXName string `json:"ix_name"`
	ASN    uint32 `json:"asn"`
	// Speed and policy become relationship properties in IYP.
	Speed  int    `json:"speed"`
	Policy string `json:"policy"`
}

type pdbNetFac struct {
	LocalASN uint32 `json:"local_asn"`
	FacID    int    `json:"fac_id"`
	FacName  string `json:"fac_name"`
}

func pdbData[T any](rows []T) []byte {
	return jsonBlob(map[string]any{"data": rows})
}

func renderPeeringDB(c *Catalog, in *simnet.Internet) {
	var orgs []pdbOrg
	for _, o := range in.Orgs {
		if o.PeeringdbOrgID == 0 {
			continue
		}
		orgs = append(orgs, pdbOrg{
			ID: o.PeeringdbOrgID, Name: o.Name, Country: o.Country,
			Website: fmt.Sprintf("https://www.org%d.example", o.ID),
		})
	}
	c.Put(PathPeeringDBOrg, pdbData(orgs))

	orgNameByID := map[int]string{}
	for _, o := range in.Orgs {
		if o.PeeringdbOrgID != 0 {
			orgNameByID[o.PeeringdbOrgID] = o.Name
		}
	}
	var facs []pdbFac
	for _, f := range in.Facilities {
		facs = append(facs, pdbFac{
			ID: f.ID, Name: f.Name, Country: f.Country,
			OrgID: f.PeeringdbOrgID, OrgName: orgNameByID[f.PeeringdbOrgID],
		})
	}
	c.Put(PathPeeringDBFac, pdbData(facs))

	var ixs []pdbIX
	var lans []pdbIXLan
	for _, ix := range in.IXPs {
		ixs = append(ixs, pdbIX{ID: ix.PeeringdbIXID, Name: ix.Name, Country: ix.Country})
		for i, m := range ix.Members {
			lans = append(lans, pdbIXLan{
				IXID: ix.PeeringdbIXID, IXName: ix.Name, ASN: m,
				Speed:  []int{1000, 10000, 100000}[i%3],
				Policy: []string{"Open", "Selective", "Restrictive"}[i%3],
			})
		}
	}
	c.Put(PathPeeringDBIX, pdbData(ixs))
	c.Put(PathPeeringDBIXLan, pdbData(lans))

	var netfacs []pdbNetFac
	for _, f := range in.Facilities {
		for _, asn := range f.TenantASNs {
			netfacs = append(netfacs, pdbNetFac{LocalASN: asn, FacID: f.ID, FacName: f.Name})
		}
	}
	c.Put(PathPeeringDBNetFac, pdbData(netfacs))
}

// --- Internet Intelligence Lab AS-to-Organization ---

type inetIntelRow struct {
	ASN      uint32   `json:"asn"`
	OrgName  string   `json:"org_name"`
	Country  string   `json:"country"`
	Siblings []uint32 `json:"siblings"`
}

func renderInetIntel(c *Catalog, in *simnet.Internet) {
	var rows []inetIntelRow
	for _, a := range in.ASes {
		var sib []uint32
		for _, other := range a.Org.ASes {
			if other.ASN != a.ASN {
				sib = append(sib, other.ASN)
			}
		}
		rows = append(rows, inetIntelRow{ASN: a.ASN, OrgName: a.Org.Name, Country: a.Org.Country, Siblings: sib})
	}
	c.Put(PathInetIntelAS2Org, jsonLines(rows))
}

// --- Stanford ASdb ---

func renderStanfordASdb(c *Catalog, in *simnet.Internet) {
	var buf bytes.Buffer
	buf.WriteString("asn,category_layer1,category_layer2\n")
	for _, a := range in.ASes {
		fmt.Fprintf(&buf, "AS%d,%q,%q\n", a.ASN, a.ASdbLayer1, a.ASdbLayer2)
	}
	c.Put(PathStanfordASdb, buf.Bytes())
}

// --- APNIC population estimates ---

type apnicPopRow struct {
	CC      string  `json:"cc"`
	ASN     uint32  `json:"asn"`
	Percent float64 `json:"percent"`
}

func renderAPNIC(c *Catalog, in *simnet.Internet) {
	var rows []apnicPopRow
	for _, a := range in.ASes {
		for cc, share := range a.PopShare {
			if share >= 0.005 {
				rows = append(rows, apnicPopRow{CC: cc, ASN: a.ASN, Percent: share * 100})
			}
		}
	}
	c.Put(PathAPNICPop, jsonLines(rows))
}

// --- World Bank population ---

func renderWorldBank(c *Catalog, in *simnet.Internet) {
	var buf bytes.Buffer
	buf.WriteString("country_code,population\n")
	for _, cinfo := range in.Countries {
		if pop, ok := in.Populations[cinfo.Alpha2]; ok {
			fmt.Fprintf(&buf, "%s,%d\n", cinfo.Alpha3, pop)
		}
	}
	c.Put(PathWorldBankPop, buf.Bytes())
}
