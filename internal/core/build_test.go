package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"iyp/internal/crawlers"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/simnet"
)

func smallConfig() simnet.Config {
	return simnet.DefaultConfig().Scale(0.03)
}

func TestBuildEndToEnd(t *testing.T) {
	// Logf is called from parallel crawler goroutines; guard the slice.
	var (
		mu   sync.Mutex
		logs []string
	)
	res, err := Build(context.Background(), BuildOptions{
		Config: smallConfig(),
		Logf: func(f string, a ...any) {
			mu.Lock()
			logs = append(logs, f)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumNodes() == 0 || res.Graph.NumRels() == 0 {
		t.Fatal("empty graph")
	}
	if res.Internet == nil || res.Catalog == nil {
		t.Error("build result missing model/catalog")
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
	if len(logs) == 0 {
		t.Error("Logf never called")
	}
	// Identity indexes exist for every ontology entity.
	for _, e := range ontology.Entities() {
		if e.IdentityKey != "" && !res.Graph.HasIndex(e.Name, e.IdentityKey) {
			t.Errorf("missing identity index on %s.%s", e.Name, e.IdentityKey)
		}
	}
	// Refinement ran: IP nodes carry af and PART_OF links.
	ips := res.Graph.NodesByLabel(ontology.IP)
	if len(ips) == 0 {
		t.Fatal("no IP nodes")
	}
	withAF := 0
	for _, id := range ips {
		if !res.Graph.NodeProp(id, "af").IsNull() {
			withAF++
		}
	}
	if withAF != len(ips) {
		t.Errorf("af set on %d/%d IPs", withAF, len(ips))
	}
}

func TestBuildDefaultsConfig(t *testing.T) {
	// A zero Config falls back to simnet.DefaultConfig — just verify the
	// plumbing decides sizes (full default build is exercised elsewhere).
	res, err := Build(context.Background(), BuildOptions{Config: smallConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Report.Crawls); got != 47 {
		t.Errorf("crawls = %d", got)
	}
}

func TestBuildWithCrawlerSubset(t *testing.T) {
	res, err := Build(context.Background(), BuildOptions{
		Config:   smallConfig(),
		Crawlers: []ingest.Crawler{crawlers.NewTranco(), crawlers.NewBGPKITPfx2as()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Report.Crawls); got != 2 {
		t.Fatalf("crawls = %d, want 2", got)
	}
	st := res.Graph.Stats()
	if st.ByLabel[ontology.DomainName] == 0 || st.ByLabel[ontology.Prefix] == 0 {
		t.Error("subset build missing expected nodes")
	}
	// Datasets not crawled must leave no trace.
	if st.ByRelType[ontology.MemberOf] != 0 {
		t.Error("unexpected MEMBER_OF relationships from uncrawled datasets")
	}
}

func TestBuildInvalidConfig(t *testing.T) {
	bad := smallConfig()
	bad.NumASes = 1
	if _, err := Build(context.Background(), BuildOptions{Config: bad}); err == nil {
		t.Error("invalid config should fail the build")
	}
}

func TestBuildHTTPFetchPath(t *testing.T) {
	res, err := Build(context.Background(), BuildOptions{Config: smallConfig(), UseHTTP: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Report.Failed() {
		t.Errorf("dataset %s failed over HTTP: %v", c.Dataset, c.Err)
	}
}

func TestBuildReportRendering(t *testing.T) {
	res, err := Build(context.Background(), BuildOptions{Config: smallConfig()})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Report.String()
	if !strings.Contains(out, "bgpkit.pfx2asn") || !strings.Contains(out, "total:") {
		t.Errorf("report rendering incomplete:\n%s", out)
	}
}

func TestBuiltGraphValidatesAgainstOntology(t *testing.T) {
	// The complete pipeline — crawl plus refinement — must produce a
	// graph that conforms to the ontology.
	res, err := Build(context.Background(), BuildOptions{Config: smallConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if got := ontology.ValidateGraph(res.Graph, 20); len(got) != 0 {
		t.Errorf("built graph violates the ontology:\n%v", got)
	}
}
