package core

import (
	"errors"
	"strings"
	"testing"

	"iyp/internal/ingest"
)

func reportWith(datasets map[string]error) ingest.Report {
	var rep ingest.Report
	for name, err := range datasets {
		rep.Crawls = append(rep.Crawls, ingest.CrawlReport{Dataset: name, Err: err})
	}
	return rep
}

func TestApplyBuildPolicyClean(t *testing.T) {
	rep := reportWith(map[string]error{"a": nil, "b": nil, "c": nil})
	if err := applyBuildPolicy(&rep, BuildOptions{MinSuccessRate: 1.0}); err != nil {
		t.Fatalf("clean report must pass any floor: %v", err)
	}
	if rep.Degraded {
		t.Error("clean report flagged degraded")
	}
	if !strings.Contains(rep.PolicyNote, "clean") || !strings.Contains(rep.PolicyNote, "3") {
		t.Errorf("policy note = %q", rep.PolicyNote)
	}
}

func TestApplyBuildPolicyBestEffortDegrades(t *testing.T) {
	rep := reportWith(map[string]error{"a": nil, "b": errors.New("boom"), "c": nil})
	if err := applyBuildPolicy(&rep, BuildOptions{}); err != nil {
		t.Fatalf("best-effort policy must tolerate failures: %v", err)
	}
	if !rep.Degraded {
		t.Error("lossy report not flagged degraded")
	}
	if !strings.Contains(rep.PolicyNote, "degraded: 2/3") {
		t.Errorf("policy note = %q", rep.PolicyNote)
	}
	// The note reaches the rendered report.
	if !strings.Contains(rep.String(), "policy: degraded: 2/3") {
		t.Errorf("rendered report lacks the policy line:\n%s", rep.String())
	}
}

func TestApplyBuildPolicyCriticalDataset(t *testing.T) {
	cause := errors.New("boom")
	rep := reportWith(map[string]error{"a": nil, "vital": cause})
	err := applyBuildPolicy(&rep, BuildOptions{CriticalDatasets: []string{"vital"}})
	if err == nil {
		t.Fatal("critical dataset failure must fail the policy")
	}
	if !errors.Is(err, cause) {
		t.Errorf("policy error does not wrap the crawl error: %v", err)
	}
	if !strings.Contains(rep.PolicyNote, "fail-fast") {
		t.Errorf("policy note = %q", rep.PolicyNote)
	}
	// A critical dataset that succeeded does not trip the policy.
	rep2 := reportWith(map[string]error{"vital": nil, "other": errors.New("boom")})
	if err := applyBuildPolicy(&rep2, BuildOptions{CriticalDatasets: []string{"vital"}}); err != nil {
		t.Errorf("non-critical failure tripped the critical policy: %v", err)
	}
}

func TestApplyBuildPolicyMinSuccessRate(t *testing.T) {
	// 3/4 = 75%.
	mk := func() ingest.Report {
		return reportWith(map[string]error{"a": nil, "b": nil, "c": nil, "d": errors.New("boom")})
	}
	rep := mk()
	if err := applyBuildPolicy(&rep, BuildOptions{MinSuccessRate: 0.75}); err != nil {
		t.Errorf("75%% success must satisfy a 75%% floor: %v", err)
	}
	rep = mk()
	err := applyBuildPolicy(&rep, BuildOptions{MinSuccessRate: 0.80})
	if err == nil {
		t.Fatal("75% success must fail an 80% floor")
	}
	if !strings.Contains(err.Error(), "3/4") {
		t.Errorf("floor error does not report the rate: %v", err)
	}
}
