// Package core orchestrates the construction of the IYP knowledge graph —
// the paper's primary contribution (§2.3): generate (or connect to) the
// data sources, run all dataset crawlers in parallel, then apply the
// refinement passes and build the identity indexes. The result is the
// single harmonized database the studies query.
package core

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sort"
	"time"

	"iyp/internal/crawlers"
	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/postproc"
	"iyp/internal/simnet"
	"iyp/internal/source"
)

// BuildOptions configures a knowledge-graph build.
type BuildOptions struct {
	// Config shapes the simulated Internet that stands in for the live
	// data feeds. The zero value means simnet.DefaultConfig().
	Config simnet.Config
	// UseHTTP serves the rendered datasets over a real localhost HTTP
	// server and fetches them through the network stack, exercising the
	// same code paths as a live deployment. When false, fetching is
	// in-process.
	UseHTTP bool
	// Concurrency bounds parallel crawler execution (0 = 4).
	Concurrency int
	// CrawlerTimeout bounds one crawler's run (0 = none). Hung feeds are
	// abandoned and reported failed; their staged writes are discarded.
	CrawlerTimeout time.Duration
	// MaxFetchBytes caps one dataset payload (0 = source default,
	// 256 MiB), so a malformed giant feed cannot OOM the build.
	MaxFetchBytes int64
	// WrapFetcher, when set, wraps the build's dataset fetcher — the hook
	// chaos tests use to inject faults (source.FaultFetcher) and operators
	// use to add retry policies (source.RetryFetcher).
	WrapFetcher func(source.Fetcher) source.Fetcher
	// FetchTime is stamped on all provenance (zero = now).
	FetchTime time.Time
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Crawlers overrides the dataset set (nil = all 47).
	Crawlers []ingest.Crawler

	// CheckpointDir, when set, makes the build resumable: every committed
	// dataset batch is journaled there, and a later Build with Resume set
	// replays the journals instead of re-fetching those datasets. The
	// directory can be removed once the final snapshot is durably saved.
	CheckpointDir string
	// Resume restores progress from CheckpointDir before crawling. A
	// checkpoint from a different configuration or dataset set is ignored
	// (the build starts fresh and overwrites it).
	Resume bool
	// onCommit is a test hook observing successful commits in order.
	onCommit func(dataset string)

	// MinSuccessRate is the fraction of datasets in (0,1] that must ingest
	// successfully for the build to be considered viable; below it the
	// build fails instead of producing a degraded snapshot. 0 means
	// best-effort: any number of dataset failures yields a (degraded)
	// snapshot, matching the paper's one-feed-costs-one-dataset promise.
	MinSuccessRate float64
	// CriticalDatasets lists dataset reference names (e.g.
	// "bgpkit.pfx2asn") whose failure always fails the build, regardless
	// of MinSuccessRate.
	CriticalDatasets []string
}

// BuildResult is a completed build.
type BuildResult struct {
	Graph    *graph.Graph
	Report   ingest.Report
	Internet *simnet.Internet
	Catalog  *source.Catalog
	// Resumed lists datasets restored from the checkpoint journal instead
	// of being re-fetched (empty for non-resumed builds).
	Resumed []string
	// Fingerprint identifies the build's inputs (config + dataset list);
	// it keys the checkpoint and the store's DATASETS manifest.
	Fingerprint string
	// FetchTime is the provenance timestamp stamped on this build.
	FetchTime time.Time
	// Elapsed is the total wall-clock build time.
	Elapsed time.Duration
}

// buildFingerprint identifies a build's inputs — the simulated-Internet
// configuration plus the exact dataset list, in order — so a checkpoint is
// never resumed into a build it does not belong to. FetchTime is excluded:
// the checkpoint pins it separately and the resumed build adopts it.
func buildFingerprint(cfg simnet.Config, datasets []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%#v\n", cfg)
	for _, d := range datasets {
		fmt.Fprintln(h, d)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// Build constructs a full IYP knowledge graph.
func Build(ctx context.Context, opts BuildOptions) (*BuildResult, error) {
	start := time.Now()
	cfg := opts.Config
	if cfg.NumASes == 0 {
		cfg = simnet.DefaultConfig()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("generating synthetic Internet (seed %d, %d ASes, %d domains)", cfg.Seed, cfg.NumASes, cfg.NumDomains)
	in, err := simnet.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	catalog := source.Render(in)
	logf("rendered %d datasets (%d bytes)", len(catalog.Paths()), catalog.Size())

	var fetcher source.Fetcher = catalog
	if opts.UseHTTP {
		srv, err := source.Serve(catalog)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		defer srv.Close()
		// Real network fetches get the hardened retry policy for free.
		fetcher = &source.RetryFetcher{Base: &source.HTTPFetcher{Base: srv.BaseURL()}}
		logf("serving datasets at %s", srv.BaseURL())
	}
	if opts.WrapFetcher != nil {
		fetcher = opts.WrapFetcher(fetcher)
	}

	g := graph.New()
	ensureIdentityIndexes(g)

	cs := opts.Crawlers
	if cs == nil {
		cs = crawlers.All()
	}
	datasets := make([]string, len(cs))
	orgs := make(map[string]string, len(cs))
	for i, c := range cs {
		ref := c.Reference()
		datasets[i] = ref.Name
		orgs[ref.Name] = ref.Organization
	}

	// Pin the provenance timestamp up front: a resumed build must stamp
	// freshly-crawled datasets with the same time the replayed ones carry.
	fetchTime := opts.FetchTime
	if fetchTime.IsZero() {
		fetchTime = time.Now().UTC()
	}

	var (
		cp       *ingest.Checkpoint
		replayed []ingest.ReplayedCommit
		runCs    = cs
	)
	if opts.CheckpointDir != "" {
		cp, replayed, g, err = openOrCreateCheckpoint(opts, buildFingerprint(cfg, datasets), fetchTime, g, logf)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		defer cp.Close()
		if len(replayed) > 0 {
			// The checkpoint owns the timestamp now; drop the committed
			// prefix from the crawl list.
			fetchTime = cp.FetchTime()
			done := make(map[string]bool, len(replayed))
			for _, r := range replayed {
				done[r.Dataset] = true
			}
			runCs = nil
			for _, c := range cs {
				if !done[c.Reference().Name] {
					runCs = append(runCs, c)
				}
			}
			logf("resumed %d dataset(s) from checkpoint %s; %d to crawl",
				len(replayed), opts.CheckpointDir, len(runCs))
		}
	}

	pipe := &ingest.Pipeline{
		Graph:         g,
		Fetcher:       fetcher,
		Crawlers:      runCs,
		Concurrency:   opts.Concurrency,
		Timeout:       opts.CrawlerTimeout,
		MaxFetchBytes: opts.MaxFetchBytes,
		FetchTime:     fetchTime,
		Checkpoint:    cp,
		OnCommit:      opts.onCommit,
		Logf:          logf,
	}
	report, err := pipe.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Replayed datasets count as ingested: fold them into the report so the
	// build policy and operators see the whole dataset set, not just the
	// re-crawled remainder.
	var resumed []string
	for _, r := range replayed {
		resumed = append(resumed, r.Dataset)
		report.Crawls = append(report.Crawls, ingest.CrawlReport{
			Dataset:      r.Dataset,
			Organization: orgs[r.Dataset],
			NodesCreated: r.NodesCreated,
			LinksCreated: r.LinksCreated,
		})
	}
	sort.Slice(report.Crawls, func(i, j int) bool { return report.Crawls[i].Dataset < report.Crawls[j].Dataset })
	if err := applyBuildPolicy(&report, opts); err != nil {
		logf("build policy: %v", err)
		return nil, fmt.Errorf("core: %w", err)
	}
	if report.Degraded {
		logf("build policy: %s", report.PolicyNote)
	}

	if err := postproc.Run(g, fetchTime, logf); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	logf("build complete: %d nodes, %d relationships in %s",
		g.NumNodes(), g.NumRels(), time.Since(start).Round(time.Millisecond))
	return &BuildResult{
		Graph:       g,
		Report:      report,
		Internet:    in,
		Catalog:     catalog,
		Resumed:     resumed,
		Fingerprint: buildFingerprint(cfg, datasets),
		FetchTime:   fetchTime,
		Elapsed:     time.Since(start),
	}, nil
}

// openOrCreateCheckpoint resolves the build's checkpoint: on Resume it
// opens the existing one, verifies it belongs to this build (fingerprint),
// and replays its journals into g; any mismatch, damage, or absence falls
// back to a fresh checkpoint — a bad checkpoint costs the resume, never the
// build. The returned graph's state always matches the returned replay list
// (after a failed replay the graph is rebuilt empty, identity indexes and
// all).
func openOrCreateCheckpoint(opts BuildOptions, fingerprint string, fetchTime time.Time, g *graph.Graph, logf func(string, ...any)) (*ingest.Checkpoint, []ingest.ReplayedCommit, *graph.Graph, error) {
	dir := opts.CheckpointDir
	if opts.Resume {
		cp, err := ingest.OpenCheckpoint(dir)
		switch {
		case err != nil:
			logf("resume: %v; starting fresh", err)
		case cp.Fingerprint() != fingerprint:
			cp.Close()
			logf("resume: checkpoint in %s belongs to a different build (fingerprint %s, want %s); starting fresh",
				dir, cp.Fingerprint(), fingerprint)
		default:
			replayed, err := cp.Replay(g)
			if err == nil {
				return cp, replayed, g, nil
			}
			cp.Close()
			logf("resume: %v; starting fresh", err)
			// A failed replay may have applied a partial prefix — discard
			// the graph and start over.
			g = graph.New()
			ensureIdentityIndexes(g)
		}
	}
	cp, err := ingest.CreateCheckpoint(dir, fingerprint, fetchTime)
	if err != nil {
		return nil, nil, nil, err
	}
	return cp, nil, g, nil
}

// applyBuildPolicy evaluates the degraded-build policy and records the
// decision on the report: fail the build when a critical dataset is lost or
// the success rate falls below the operator's floor; otherwise proceed,
// flagging the snapshot as degraded when any dataset failed.
func applyBuildPolicy(rep *ingest.Report, opts BuildOptions) error {
	total := len(rep.Crawls)
	failed := rep.Failed()
	if len(failed) == 0 {
		rep.PolicyNote = fmt.Sprintf("clean: all %d datasets ingested", total)
		return nil
	}
	rep.Degraded = true
	names := make(map[string]error, len(failed))
	for _, f := range failed {
		names[f.Dataset] = f.Err
	}
	for _, crit := range opts.CriticalDatasets {
		if err, ok := names[crit]; ok {
			rep.PolicyNote = fmt.Sprintf("fail-fast: critical dataset %s failed", crit)
			return fmt.Errorf("critical dataset %s failed: %w", crit, err)
		}
	}
	ok := total - len(failed)
	if total > 0 && opts.MinSuccessRate > 0 {
		rate := float64(ok) / float64(total)
		if rate < opts.MinSuccessRate {
			rep.PolicyNote = fmt.Sprintf("fail-fast: %d/%d datasets ingested, below the %.0f%% floor",
				ok, total, opts.MinSuccessRate*100)
			return fmt.Errorf("only %d/%d datasets ingested (%.1f%%), below the required %.1f%%",
				ok, total, 100*float64(ok)/float64(total), opts.MinSuccessRate*100)
		}
	}
	rep.PolicyNote = fmt.Sprintf("degraded: %d/%d datasets ingested", ok, total)
	return nil
}

// ensureIdentityIndexes creates the hash index behind every ontology
// identity property up front, so crawler upserts never fall back to label
// scans.
func ensureIdentityIndexes(g *graph.Graph) {
	for _, e := range ontology.Entities() {
		if e.IdentityKey != "" {
			g.EnsureIndex(e.Name, e.IdentityKey)
		}
	}
}
