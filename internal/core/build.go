// Package core orchestrates the construction of the IYP knowledge graph —
// the paper's primary contribution (§2.3): generate (or connect to) the
// data sources, run all dataset crawlers in parallel, then apply the
// refinement passes and build the identity indexes. The result is the
// single harmonized database the studies query.
package core

import (
	"context"
	"fmt"
	"time"

	"iyp/internal/crawlers"
	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/postproc"
	"iyp/internal/simnet"
	"iyp/internal/source"
)

// BuildOptions configures a knowledge-graph build.
type BuildOptions struct {
	// Config shapes the simulated Internet that stands in for the live
	// data feeds. The zero value means simnet.DefaultConfig().
	Config simnet.Config
	// UseHTTP serves the rendered datasets over a real localhost HTTP
	// server and fetches them through the network stack, exercising the
	// same code paths as a live deployment. When false, fetching is
	// in-process.
	UseHTTP bool
	// Concurrency bounds parallel crawler execution (0 = 4).
	Concurrency int
	// FetchTime is stamped on all provenance (zero = now).
	FetchTime time.Time
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Crawlers overrides the dataset set (nil = all 47).
	Crawlers []ingest.Crawler
}

// BuildResult is a completed build.
type BuildResult struct {
	Graph    *graph.Graph
	Report   ingest.Report
	Internet *simnet.Internet
	Catalog  *source.Catalog
	// Elapsed is the total wall-clock build time.
	Elapsed time.Duration
}

// Build constructs a full IYP knowledge graph.
func Build(ctx context.Context, opts BuildOptions) (*BuildResult, error) {
	start := time.Now()
	cfg := opts.Config
	if cfg.NumASes == 0 {
		cfg = simnet.DefaultConfig()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("generating synthetic Internet (seed %d, %d ASes, %d domains)", cfg.Seed, cfg.NumASes, cfg.NumDomains)
	in, err := simnet.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	catalog := source.Render(in)
	logf("rendered %d datasets (%d bytes)", len(catalog.Paths()), catalog.Size())

	var fetcher source.Fetcher = catalog
	if opts.UseHTTP {
		srv, err := source.Serve(catalog)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		defer srv.Close()
		fetcher = &source.HTTPFetcher{Base: srv.BaseURL()}
		logf("serving datasets at %s", srv.BaseURL())
	}

	g := graph.New()
	ensureIdentityIndexes(g)

	cs := opts.Crawlers
	if cs == nil {
		cs = crawlers.All()
	}
	pipe := &ingest.Pipeline{
		Graph:       g,
		Fetcher:     fetcher,
		Crawlers:    cs,
		Concurrency: opts.Concurrency,
		FetchTime:   opts.FetchTime,
		Logf:        logf,
	}
	report, err := pipe.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	fetchTime := opts.FetchTime
	if fetchTime.IsZero() {
		fetchTime = time.Now().UTC()
	}
	if err := postproc.Run(g, fetchTime, logf); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	logf("build complete: %d nodes, %d relationships in %s",
		g.NumNodes(), g.NumRels(), time.Since(start).Round(time.Millisecond))
	return &BuildResult{
		Graph:    g,
		Report:   report,
		Internet: in,
		Catalog:  catalog,
		Elapsed:  time.Since(start),
	}, nil
}

// ensureIdentityIndexes creates the hash index behind every ontology
// identity property up front, so crawler upserts never fall back to label
// scans.
func ensureIdentityIndexes(g *graph.Graph) {
	for _, e := range ontology.Entities() {
		if e.IdentityKey != "" {
			g.EnsureIndex(e.Name, e.IdentityKey)
		}
	}
}
