// Package core orchestrates the construction of the IYP knowledge graph —
// the paper's primary contribution (§2.3): generate (or connect to) the
// data sources, run all dataset crawlers in parallel, then apply the
// refinement passes and build the identity indexes. The result is the
// single harmonized database the studies query.
package core

import (
	"context"
	"fmt"
	"time"

	"iyp/internal/crawlers"
	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/postproc"
	"iyp/internal/simnet"
	"iyp/internal/source"
)

// BuildOptions configures a knowledge-graph build.
type BuildOptions struct {
	// Config shapes the simulated Internet that stands in for the live
	// data feeds. The zero value means simnet.DefaultConfig().
	Config simnet.Config
	// UseHTTP serves the rendered datasets over a real localhost HTTP
	// server and fetches them through the network stack, exercising the
	// same code paths as a live deployment. When false, fetching is
	// in-process.
	UseHTTP bool
	// Concurrency bounds parallel crawler execution (0 = 4).
	Concurrency int
	// CrawlerTimeout bounds one crawler's run (0 = none). Hung feeds are
	// abandoned and reported failed; their staged writes are discarded.
	CrawlerTimeout time.Duration
	// MaxFetchBytes caps one dataset payload (0 = source default,
	// 256 MiB), so a malformed giant feed cannot OOM the build.
	MaxFetchBytes int64
	// WrapFetcher, when set, wraps the build's dataset fetcher — the hook
	// chaos tests use to inject faults (source.FaultFetcher) and operators
	// use to add retry policies (source.RetryFetcher).
	WrapFetcher func(source.Fetcher) source.Fetcher
	// FetchTime is stamped on all provenance (zero = now).
	FetchTime time.Time
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// Crawlers overrides the dataset set (nil = all 47).
	Crawlers []ingest.Crawler

	// MinSuccessRate is the fraction of datasets in (0,1] that must ingest
	// successfully for the build to be considered viable; below it the
	// build fails instead of producing a degraded snapshot. 0 means
	// best-effort: any number of dataset failures yields a (degraded)
	// snapshot, matching the paper's one-feed-costs-one-dataset promise.
	MinSuccessRate float64
	// CriticalDatasets lists dataset reference names (e.g.
	// "bgpkit.pfx2asn") whose failure always fails the build, regardless
	// of MinSuccessRate.
	CriticalDatasets []string
}

// BuildResult is a completed build.
type BuildResult struct {
	Graph    *graph.Graph
	Report   ingest.Report
	Internet *simnet.Internet
	Catalog  *source.Catalog
	// Elapsed is the total wall-clock build time.
	Elapsed time.Duration
}

// Build constructs a full IYP knowledge graph.
func Build(ctx context.Context, opts BuildOptions) (*BuildResult, error) {
	start := time.Now()
	cfg := opts.Config
	if cfg.NumASes == 0 {
		cfg = simnet.DefaultConfig()
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	logf("generating synthetic Internet (seed %d, %d ASes, %d domains)", cfg.Seed, cfg.NumASes, cfg.NumDomains)
	in, err := simnet.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	catalog := source.Render(in)
	logf("rendered %d datasets (%d bytes)", len(catalog.Paths()), catalog.Size())

	var fetcher source.Fetcher = catalog
	if opts.UseHTTP {
		srv, err := source.Serve(catalog)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		defer srv.Close()
		// Real network fetches get the hardened retry policy for free.
		fetcher = &source.RetryFetcher{Base: &source.HTTPFetcher{Base: srv.BaseURL()}}
		logf("serving datasets at %s", srv.BaseURL())
	}
	if opts.WrapFetcher != nil {
		fetcher = opts.WrapFetcher(fetcher)
	}

	g := graph.New()
	ensureIdentityIndexes(g)

	cs := opts.Crawlers
	if cs == nil {
		cs = crawlers.All()
	}
	pipe := &ingest.Pipeline{
		Graph:         g,
		Fetcher:       fetcher,
		Crawlers:      cs,
		Concurrency:   opts.Concurrency,
		Timeout:       opts.CrawlerTimeout,
		MaxFetchBytes: opts.MaxFetchBytes,
		FetchTime:     opts.FetchTime,
		Logf:          logf,
	}
	report, err := pipe.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := applyBuildPolicy(&report, opts); err != nil {
		logf("build policy: %v", err)
		return nil, fmt.Errorf("core: %w", err)
	}
	if report.Degraded {
		logf("build policy: %s", report.PolicyNote)
	}

	fetchTime := opts.FetchTime
	if fetchTime.IsZero() {
		fetchTime = time.Now().UTC()
	}
	if err := postproc.Run(g, fetchTime, logf); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	logf("build complete: %d nodes, %d relationships in %s",
		g.NumNodes(), g.NumRels(), time.Since(start).Round(time.Millisecond))
	return &BuildResult{
		Graph:    g,
		Report:   report,
		Internet: in,
		Catalog:  catalog,
		Elapsed:  time.Since(start),
	}, nil
}

// applyBuildPolicy evaluates the degraded-build policy and records the
// decision on the report: fail the build when a critical dataset is lost or
// the success rate falls below the operator's floor; otherwise proceed,
// flagging the snapshot as degraded when any dataset failed.
func applyBuildPolicy(rep *ingest.Report, opts BuildOptions) error {
	total := len(rep.Crawls)
	failed := rep.Failed()
	if len(failed) == 0 {
		rep.PolicyNote = fmt.Sprintf("clean: all %d datasets ingested", total)
		return nil
	}
	rep.Degraded = true
	names := make(map[string]error, len(failed))
	for _, f := range failed {
		names[f.Dataset] = f.Err
	}
	for _, crit := range opts.CriticalDatasets {
		if err, ok := names[crit]; ok {
			rep.PolicyNote = fmt.Sprintf("fail-fast: critical dataset %s failed", crit)
			return fmt.Errorf("critical dataset %s failed: %w", crit, err)
		}
	}
	ok := total - len(failed)
	if total > 0 && opts.MinSuccessRate > 0 {
		rate := float64(ok) / float64(total)
		if rate < opts.MinSuccessRate {
			rep.PolicyNote = fmt.Sprintf("fail-fast: %d/%d datasets ingested, below the %.0f%% floor",
				ok, total, opts.MinSuccessRate*100)
			return fmt.Errorf("only %d/%d datasets ingested (%.1f%%), below the required %.1f%%",
				ok, total, 100*float64(ok)/float64(total), opts.MinSuccessRate*100)
		}
	}
	rep.PolicyNote = fmt.Sprintf("degraded: %d/%d datasets ingested", ok, total)
	return nil
}

// ensureIdentityIndexes creates the hash index behind every ontology
// identity property up front, so crawler upserts never fall back to label
// scans.
func ensureIdentityIndexes(g *graph.Graph) {
	for _, e := range ontology.Entities() {
		if e.IdentityKey != "" {
			g.EnsureIndex(e.Name, e.IdentityKey)
		}
	}
}
