package core

import (
	"context"
	"testing"
	"time"

	"iyp/internal/graph"
	"iyp/internal/temporal"
)

// fullBuildIntoStore runs a full build and publishes it as generation 1 of
// a fresh store, with the DATASETS manifest a delta build needs — the same
// sequence `iyp-build -store` performs.
func fullBuildIntoStore(t *testing.T, dir string, opts BuildOptions) *BuildResult {
	t.Helper()
	res, err := Build(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := graph.OpenStore(dir, graph.StoreOptions{Keep: 5})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := st.Save(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	man := ManifestFromReport(res.Fingerprint, gen.Seq, res.FetchTime, res.Report)
	if err := WriteDatasetsManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeltaUnchangedInputsPublishesNothing(t *testing.T) {
	dir := t.TempDir()
	opts := BuildOptions{Config: smallConfig()}
	full := fullBuildIntoStore(t, dir, opts)

	res, err := BuildDelta(context.Background(), DeltaOptions{Build: opts, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unchanged {
		t.Fatalf("delta against identical inputs re-crawled %v", res.Recrawled)
	}
	if res.PrevSeq != 1 || res.Gen.Seq != 0 {
		t.Fatalf("unchanged delta: prev=%d gen=%+v", res.PrevSeq, res.Gen)
	}
	// Nothing new on disk; the store still holds exactly generation 1.
	st, err := graph.OpenStore(dir, graph.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 1 || gens[0].Seq != 1 {
		t.Fatalf("store generations after no-op delta: %+v", gens)
	}
	// And the returned graph IS the previous build's content.
	full.Graph.Freeze()
	res.Graph.Freeze()
	d, err := temporal.Diff(context.Background(), full.Graph, res.Graph, temporal.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("no-op delta graph differs from the full build:\n%s", d)
	}
}

// TestDeltaForcedRecrawlEquivalentToFullBuild is the ISSUE's equivalence
// bar: a delta that re-crawls a dataset whose inputs did not change must
// publish a generation semantically identical to a full rebuild —
// temporal.Diff between the two is empty. FetchTime is pinned so
// provenance timestamps cannot differ between the two runs.
func TestDeltaForcedRecrawlEquivalentToFullBuild(t *testing.T) {
	fetchTime := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	opts := BuildOptions{Config: smallConfig(), FetchTime: fetchTime}

	dir := t.TempDir()
	fullBuildIntoStore(t, dir, opts)

	res, err := BuildDelta(context.Background(), DeltaOptions{
		Build:    opts,
		StoreDir: dir,
		Datasets: []string{"bgpkit.pfx2asn", "ripe.as_names"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unchanged {
		t.Fatal("forced re-crawl reported unchanged")
	}
	if len(res.Recrawled) != 2 {
		t.Fatalf("re-crawled %v, want exactly the 2 forced datasets", res.Recrawled)
	}
	if res.Gen.Seq != 2 || res.PrevSeq != 1 {
		t.Fatalf("delta published generation %d from %d, want 2 from 1", res.Gen.Seq, res.PrevSeq)
	}
	if res.RelsDeleted == 0 {
		t.Fatal("forced re-crawl deleted no relationships — the dataset drop did not run")
	}
	// The published generation's intern table was seeded from the previous
	// generation's: most strings carried over, only the re-crawl's new
	// strings allocated on top.
	if res.DictCarried == 0 {
		t.Fatal("delta carried no dictionary strings from the previous generation")
	}
	if res.DictTotal < res.DictCarried {
		t.Fatalf("delta dictionary shrank: %d carried, %d total (the table is append-only)", res.DictCarried, res.DictTotal)
	}

	// An independent full rebuild with the same pinned inputs.
	ref, err := Build(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	ref.Graph.Freeze()
	res.Graph.Freeze()
	d, err := temporal.Diff(context.Background(), ref.Graph, res.Graph, temporal.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("delta build differs from full rebuild:\n%s", d)
	}
}

func TestDeltaRejectsUnknownDatasetAndMissingManifest(t *testing.T) {
	opts := BuildOptions{Config: smallConfig()}

	// No manifest: the store was never written by a full -store build.
	dir := t.TempDir()
	if _, err := graph.OpenStore(dir, graph.StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDelta(context.Background(), DeltaOptions{Build: opts, StoreDir: dir}); err == nil {
		t.Fatal("delta without a DATASETS manifest succeeded")
	}

	dir2 := t.TempDir()
	fullBuildIntoStore(t, dir2, opts)
	if _, err := BuildDelta(context.Background(), DeltaOptions{
		Build: opts, StoreDir: dir2, Datasets: []string{"no.such.dataset"},
	}); err == nil {
		t.Fatal("delta with an unknown forced dataset succeeded")
	}

	// A different simulated Internet means a different fingerprint: the
	// delta must refuse rather than mix two worlds.
	other := opts
	other.Config.Seed += 1000
	if _, err := BuildDelta(context.Background(), DeltaOptions{Build: other, StoreDir: dir2}); err == nil {
		t.Fatal("delta against a mismatched build fingerprint succeeded")
	}
}
