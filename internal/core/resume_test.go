package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iyp/internal/source"
)

var resumeFetchTime = time.Date(2024, 7, 1, 0, 0, 0, 0, time.UTC)

// countingFetcher counts Fetch calls per dataset path.
type countingFetcher struct {
	base source.Fetcher
	mu   sync.Mutex
	n    map[string]int
}

func (c *countingFetcher) Fetch(ctx context.Context, path string) (io.ReadCloser, error) {
	c.mu.Lock()
	if c.n == nil {
		c.n = map[string]int{}
	}
	c.n[path]++
	c.mu.Unlock()
	return c.base.Fetch(ctx, path)
}

func (c *countingFetcher) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	sum := 0
	for _, v := range c.n {
		sum += v
	}
	return sum
}

func snapshotBytes(t *testing.T, res *BuildResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Graph.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBuildDeterministic pins the foundation of resumability: two clean
// builds with identical inputs produce byte-identical snapshots, despite
// crawls racing each other (commits are ordered).
func TestBuildDeterministic(t *testing.T) {
	build := func() []byte {
		res, err := Build(context.Background(), BuildOptions{
			Config:      smallConfig(),
			FetchTime:   resumeFetchTime,
			Concurrency: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return snapshotBytes(t, res)
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("two clean builds produced different snapshot bytes")
	}
}

// TestResumeProducesByteIdenticalSnapshot is the tentpole invariant: kill a
// build after K commits, resume it, and the final snapshot is byte-for-byte
// the snapshot of an uninterrupted build — with the K finished datasets not
// fetched again.
func TestResumeProducesByteIdenticalSnapshot(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "build.ckpt")

	// Reference: one uninterrupted build.
	ref, err := Build(context.Background(), BuildOptions{
		Config:    smallConfig(),
		FetchTime: resumeFetchTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, ref)
	totalDatasets := len(ref.Report.Crawls)

	// Interrupted: cancel after K successful commits.
	const kill = 9
	var commits atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Build(ctx, BuildOptions{
		Config:        smallConfig(),
		FetchTime:     resumeFetchTime,
		CheckpointDir: ckpt,
		onCommit: func(string) {
			if commits.Add(1) == kill {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted build returned %v, want context.Canceled", err)
	}
	committed := int(commits.Load())
	if committed < kill {
		t.Fatalf("only %d commits before cancel", committed)
	}

	// Resume: committed datasets replay from the journal, the rest crawl.
	var cf *countingFetcher
	var resumedCommits atomic.Int32
	res, err := Build(context.Background(), BuildOptions{
		Config:        smallConfig(),
		FetchTime:     resumeFetchTime,
		CheckpointDir: ckpt,
		Resume:        true,
		WrapFetcher: func(base source.Fetcher) source.Fetcher {
			cf = &countingFetcher{base: base}
			return cf
		},
		onCommit: func(string) { resumedCommits.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Resumed) != committed {
		t.Fatalf("resumed %d datasets, want the %d committed before the kill", len(res.Resumed), committed)
	}
	if got := int(resumedCommits.Load()); got != totalDatasets-committed {
		t.Fatalf("resumed build committed %d datasets, want %d", got, totalDatasets-committed)
	}
	if len(res.Report.Crawls) != totalDatasets {
		t.Fatalf("resumed report covers %d datasets, want all %d", len(res.Report.Crawls), totalDatasets)
	}
	if cf.total() == 0 {
		t.Fatal("resumed build fetched nothing — it should crawl the remainder")
	}

	got := snapshotBytes(t, res)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed snapshot differs from uninterrupted build (%d vs %d bytes)", len(got), len(want))
	}
}

// TestResumeSkipsCommittedFetches verifies resumption saves the re-fetch
// work: dataset paths fetched before the kill are not fetched again.
func TestResumeSkipsCommittedFetches(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "build.ckpt")

	var first *countingFetcher
	const kill = 12
	var commits atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Build(ctx, BuildOptions{
		Config:        smallConfig(),
		FetchTime:     resumeFetchTime,
		CheckpointDir: ckpt,
		WrapFetcher: func(base source.Fetcher) source.Fetcher {
			first = &countingFetcher{base: base}
			return first
		},
		onCommit: func(string) {
			if commits.Add(1) == kill {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted build returned %v", err)
	}

	var second *countingFetcher
	res, err := Build(context.Background(), BuildOptions{
		Config:        smallConfig(),
		FetchTime:     resumeFetchTime,
		CheckpointDir: ckpt,
		Resume:        true,
		WrapFetcher: func(base source.Fetcher) source.Fetcher {
			second = &countingFetcher{base: base}
			return second
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The resumed run fetches strictly less than a full build would: the
	// replayed datasets' work is saved.
	if second.total() >= first.total()+len(res.Report.Crawls) {
		t.Fatalf("resume did not save fetches: first=%d second=%d", first.total(), second.total())
	}
	if len(res.Resumed) == 0 {
		t.Fatal("nothing was resumed")
	}
}

// TestResumeIgnoresForeignCheckpoint: a checkpoint from a different build
// configuration must be discarded, not replayed into the wrong graph.
func TestResumeIgnoresForeignCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "build.ckpt")

	// Leave a checkpoint behind from a seed-1 build.
	cfgA := smallConfig()
	cfgA.Seed = 1
	var commits atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Build(ctx, BuildOptions{
		Config:        cfgA,
		FetchTime:     resumeFetchTime,
		CheckpointDir: ckpt,
		onCommit: func(string) {
			if commits.Add(1) == 5 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted build returned %v", err)
	}

	// Resume with a different seed: the checkpoint must be ignored and the
	// build must equal a clean build of that seed.
	cfgB := smallConfig()
	cfgB.Seed = 2
	res, err := Build(context.Background(), BuildOptions{
		Config:        cfgB,
		FetchTime:     resumeFetchTime,
		CheckpointDir: ckpt,
		Resume:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Resumed) != 0 {
		t.Fatalf("foreign checkpoint replayed %v", res.Resumed)
	}
	clean, err := Build(context.Background(), BuildOptions{
		Config:    cfgB,
		FetchTime: resumeFetchTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, res), snapshotBytes(t, clean)) {
		t.Fatal("build with ignored checkpoint diverged from clean build")
	}
}

// TestResumeWithoutCheckpointStartsFresh: -resume on a first run (no
// checkpoint yet) is not an error.
func TestResumeWithoutCheckpointStartsFresh(t *testing.T) {
	res, err := Build(context.Background(), BuildOptions{
		Config:        smallConfig(),
		FetchTime:     resumeFetchTime,
		CheckpointDir: filepath.Join(t.TempDir(), "fresh.ckpt"),
		Resume:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Resumed) != 0 {
		t.Fatalf("resumed %v from a nonexistent checkpoint", res.Resumed)
	}
	if res.Graph.NumNodes() == 0 {
		t.Fatal("empty graph")
	}
}

// TestResumedBuildFetchTimePinned: provenance timestamps in a resumed build
// come from the original build's pinned fetch time even when the resumed
// run does not pass one.
func TestResumedBuildFetchTimePinned(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "build.ckpt")
	var commits atomic.Int32
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Build(ctx, BuildOptions{
		Config:        smallConfig(),
		FetchTime:     resumeFetchTime,
		CheckpointDir: ckpt,
		onCommit: func(string) {
			if commits.Add(1) == 5 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted build returned %v", err)
	}

	// No FetchTime here: the checkpoint's pinned stamp must win.
	res, err := Build(context.Background(), BuildOptions{
		Config:        smallConfig(),
		CheckpointDir: ckpt,
		Resume:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Resumed) == 0 {
		t.Fatal("nothing resumed")
	}
	ref, err := Build(context.Background(), BuildOptions{
		Config:    smallConfig(),
		FetchTime: resumeFetchTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, res), snapshotBytes(t, ref)) {
		t.Fatal("resumed build without an explicit FetchTime diverged (timestamp not pinned)")
	}
}
