package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"iyp/internal/crawlers"
	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/postproc"
	"iyp/internal/simnet"
	"iyp/internal/source"
)

// DeltaOptions configures an incremental build against a generation store.
type DeltaOptions struct {
	// Build carries the same knobs as a full build. Its Config (plus the
	// dataset list) must fingerprint-match the store's DATASETS manifest:
	// a changed configuration invalidates every dataset, which is a full
	// rebuild, not a delta. CheckpointDir/Resume are ignored — a delta
	// build re-crawls only a handful of datasets and is cheap to restart.
	Build BuildOptions
	// StoreDir is the generation store holding the previous build and its
	// DATASETS manifest (written by a full -store build).
	StoreDir string
	// Keep is the store's retention count (0 = store default).
	Keep int
	// Datasets forces these dataset names to re-crawl even when their
	// inputs are unchanged (empty = changed datasets only).
	Datasets []string
}

// DeltaResult is a completed (or skipped) incremental build.
type DeltaResult struct {
	// Graph is the published graph (the previous generation's graph when
	// Unchanged).
	Graph *graph.Graph
	// PrevSeq is the generation the delta was computed against.
	PrevSeq uint64
	// Gen is the newly published generation (zero value when Unchanged).
	Gen graph.Generation
	// Unchanged is true when no dataset needed re-crawling: no new
	// generation was published.
	Unchanged bool
	// Recrawled lists the datasets re-crawled, sorted.
	Recrawled []string
	// RelsDeleted / NodesDeleted count what the delta removed from the
	// previous generation before re-crawling (refinement rels included).
	RelsDeleted  int
	NodesDeleted int
	// DictCarried is the string-dictionary size inherited from the previous
	// generation; DictTotal is the size after the delta. The published
	// generation's intern table is the previous one's, extended — only
	// strings the re-crawled datasets introduced were newly allocated.
	DictCarried int
	DictTotal   int
	// Report covers only the re-crawled datasets.
	Report  ingest.Report
	Elapsed time.Duration
}

// BuildDelta publishes the next generation of a store by re-crawling only
// the datasets whose inputs changed (plus any explicitly selected), against
// the previous generation's graph, instead of rebuilding from scratch:
//
//  1. Render the current inputs and compare every dataset's payload hashes
//     with the store's DATASETS manifest; unchanged datasets are skipped.
//  2. Load the previous generation, delete the relationships the changed
//     datasets contributed (by reference_name provenance) and all
//     refinement relationships (they derive from dataset relationships).
//  3. Re-crawl the changed datasets through the normal ingest pipeline —
//     each dataset commits as one journaled batch — then re-run the
//     refinement passes.
//  4. Drop nodes orphaned by the deletions that nothing re-created, and
//     publish the result as the next generation, updating DATASETS.
//
// On unchanged inputs the delta build is a no-op (Unchanged=true, nothing
// published) and the previous generation is, trivially, exactly what a full
// rebuild would have produced. When datasets did change, the delta matches
// a full rebuild up to node-property merges: merge-style properties keep
// the value the previous build saw first (existing-values-win), and nodes
// shared with unchanged datasets are never deleted. Any re-crawl failure
// fails the whole delta — a half-applied delta would silently drop the
// failed dataset's relationships.
func BuildDelta(ctx context.Context, opts DeltaOptions) (*DeltaResult, error) {
	start := time.Now()
	cfg := opts.Build.Config
	if cfg.NumASes == 0 {
		cfg = simnet.DefaultConfig()
	}
	logf := opts.Build.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	cs := opts.Build.Crawlers
	if cs == nil {
		cs = crawlers.All()
	}
	datasets := make([]string, len(cs))
	byName := make(map[string]ingest.Crawler, len(cs))
	for i, c := range cs {
		datasets[i] = c.Reference().Name
		byName[datasets[i]] = c
	}
	fingerprint := buildFingerprint(cfg, datasets)

	store, err := graph.OpenStore(opts.StoreDir, graph.StoreOptions{Keep: opts.Keep})
	if err != nil {
		return nil, fmt.Errorf("core: delta: %w", err)
	}
	man, err := ReadDatasetsManifest(store.Dir())
	if err != nil {
		return nil, fmt.Errorf("core: delta: no DATASETS manifest in %s (run a full build with -store first): %w", opts.StoreDir, err)
	}
	if man.Fingerprint != fingerprint {
		return nil, fmt.Errorf("core: delta: store %s was built from a different configuration (fingerprint %s, want %s); run a full build",
			opts.StoreDir, man.Fingerprint, fingerprint)
	}

	logf("delta: rendering current inputs (seed %d, %d ASes, %d domains)", cfg.Seed, cfg.NumASes, cfg.NumDomains)
	in, err := simnet.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: delta: %w", err)
	}
	catalog := source.Render(in)

	forced := make(map[string]bool, len(opts.Datasets))
	for _, d := range opts.Datasets {
		if _, ok := byName[d]; !ok {
			return nil, fmt.Errorf("core: delta: unknown dataset %q", d)
		}
		forced[d] = true
	}

	// Decide what to re-crawl. A dataset's fetch sequence is a function of
	// the payloads it reads (the first path is fixed by the crawler, later
	// ones follow from fetched content), so unchanged recorded payloads
	// mean an identical crawl — those are skipped.
	var changed []string
	for _, name := range datasets {
		entry, ok := man.Datasets[name]
		switch {
		case forced[name]:
			changed = append(changed, name)
		case !ok:
			logf("delta: %s has no recorded inputs; re-crawling", name)
			changed = append(changed, name)
		case rehash(ctx, catalog, entry.Inputs) != entry.Hash:
			logf("delta: %s inputs changed", name)
			changed = append(changed, name)
		}
	}
	sort.Strings(changed)

	g, openRep, err := store.Open()
	if err != nil {
		return nil, fmt.Errorf("core: delta: %w", err)
	}
	prevSeq := openRep.Loaded.Seq
	// The delta mutates the loaded graph in place, so the next generation
	// inherits this intern table and only newly-seen strings allocate.
	dictCarried := g.Interner().Len()

	if len(changed) == 0 {
		logf("delta: all %d datasets unchanged against generation %d; nothing to publish", len(datasets), prevSeq)
		return &DeltaResult{Graph: g, PrevSeq: prevSeq, Unchanged: true,
			DictCarried: dictCarried, DictTotal: dictCarried, Elapsed: time.Since(start)}, nil
	}
	logf("delta: re-crawling %d of %d datasets against generation %d", len(changed), len(datasets), prevSeq)

	// Delete what the changed datasets contributed, plus every refinement
	// relationship — refinement derives from dataset relationships and is
	// re-run below over the updated graph.
	drop := make(map[string]bool, len(changed)+8)
	for _, d := range changed {
		drop[d] = true
	}
	for _, p := range postproc.Passes() {
		drop[p.Name] = true
	}
	wasOrphan := orphanSet(g)
	relsDeleted := 0
	var doomed []graph.RelID
	g.EachRel(func(id graph.RelID) bool {
		if name, ok := g.RelProp(id, ontology.PropReferenceName).AsString(); ok && drop[name] {
			doomed = append(doomed, id)
		}
		return true
	})
	for _, id := range doomed {
		if err := g.DeleteRel(id); err != nil {
			return nil, fmt.Errorf("core: delta: %w", err)
		}
		relsDeleted++
	}

	ensureIdentityIndexes(g)
	fetchTime := opts.Build.FetchTime
	if fetchTime.IsZero() {
		fetchTime = time.Now().UTC()
	}

	var fetcher source.Fetcher = catalog
	if opts.Build.UseHTTP {
		srv, err := source.Serve(catalog)
		if err != nil {
			return nil, fmt.Errorf("core: delta: %w", err)
		}
		defer srv.Close()
		fetcher = &source.RetryFetcher{Base: &source.HTTPFetcher{Base: srv.BaseURL()}}
	}
	if opts.Build.WrapFetcher != nil {
		fetcher = opts.Build.WrapFetcher(fetcher)
	}

	runCs := make([]ingest.Crawler, 0, len(changed))
	for _, c := range cs { // declaration order, as in a full build
		if drop[c.Reference().Name] {
			runCs = append(runCs, c)
		}
	}
	pipe := &ingest.Pipeline{
		Graph:         g,
		Fetcher:       fetcher,
		Crawlers:      runCs,
		Concurrency:   opts.Build.Concurrency,
		Timeout:       opts.Build.CrawlerTimeout,
		MaxFetchBytes: opts.Build.MaxFetchBytes,
		FetchTime:     fetchTime,
		OnCommit:      opts.Build.onCommit,
		Logf:          logf,
	}
	report, err := pipe.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: delta: %w", err)
	}
	if failed := report.Failed(); len(failed) > 0 {
		return nil, fmt.Errorf("core: delta: dataset %s failed (%w); aborting so its relationships are not silently dropped",
			failed[0].Dataset, failed[0].Err)
	}

	if err := postproc.Run(g, fetchTime, logf); err != nil {
		return nil, fmt.Errorf("core: delta: %w", err)
	}

	// Orphan GC: nodes the deletions stranded (degree > 0 before, 0 after
	// re-crawl + refinement) no longer exist in a full rebuild either.
	nodesDeleted := 0
	nowOrphan := orphanSet(g)
	for id := range nowOrphan {
		if wasOrphan[id] {
			continue
		}
		if err := g.DeleteNode(id); err != nil {
			return nil, fmt.Errorf("core: delta: %w", err)
		}
		nodesDeleted++
	}

	gen, err := store.Save(g)
	if err != nil {
		return nil, fmt.Errorf("core: delta: %w", err)
	}
	for _, c := range report.Crawls {
		if c.Err == nil && len(c.Inputs) > 0 {
			man.Datasets[c.Dataset] = DatasetInputs{
				Hash:      inputsHash(c.Inputs),
				FetchTime: fetchTime,
				Inputs:    c.Inputs,
			}
		}
	}
	man.Generation = gen.Seq
	if err := WriteDatasetsManifest(store.Dir(), man); err != nil {
		return nil, fmt.Errorf("core: delta: %w", err)
	}

	dictTotal := g.Interner().Len()
	logf("delta: published generation %d (%d nodes, %d relationships; -%d rels, -%d nodes, %d datasets re-crawled; dictionary %d strings, %d carried) in %s",
		gen.Seq, g.NumNodes(), g.NumRels(), relsDeleted, nodesDeleted, len(changed), dictTotal, dictCarried, time.Since(start).Round(time.Millisecond))
	return &DeltaResult{
		Graph:        g,
		PrevSeq:      prevSeq,
		Gen:          gen,
		Recrawled:    changed,
		RelsDeleted:  relsDeleted,
		NodesDeleted: nodesDeleted,
		DictCarried:  dictCarried,
		DictTotal:    dictTotal,
		Report:       report,
		Elapsed:      time.Since(start),
	}, nil
}

// rehash recomputes the combined input hash of recorded fetch paths against
// the current catalog. Any unreadable path yields a never-matching hash, so
// the dataset counts as changed.
func rehash(ctx context.Context, catalog *source.Catalog, recs []ingest.FetchRecord) string {
	fresh := make([]ingest.FetchRecord, 0, len(recs))
	for _, r := range recs {
		data, err := source.ReadAll(ctx, catalog, r.Path)
		if err != nil {
			return "unreadable:" + r.Path
		}
		sum := sha256.Sum256(data)
		fresh = append(fresh, ingest.FetchRecord{Path: r.Path, SHA256: hex.EncodeToString(sum[:])})
	}
	return inputsHash(fresh)
}

// orphanSet returns the set of live nodes with no relationships at all.
func orphanSet(g *graph.Graph) map[graph.NodeID]bool {
	set := make(map[graph.NodeID]bool)
	var buf []graph.RelID
	g.EachNode(func(id graph.NodeID) bool {
		if len(g.Rels(id, graph.DirBoth, nil, buf[:0])) == 0 {
			set[id] = true
		}
		return true
	})
	return set
}
