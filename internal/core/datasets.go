package core

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"iyp/internal/ingest"
)

// DatasetsManifestName is the per-dataset input manifest a store-directory
// build writes next to the generation MANIFEST. It records, for every
// dataset ingested into the newest generation, which payloads the crawler
// read and their content hashes — the ground truth a delta build compares
// fresh inputs against to decide what needs re-crawling.
const DatasetsManifestName = "DATASETS"

// DatasetInputs is one dataset's recorded inputs.
type DatasetInputs struct {
	// Hash combines the ordered input records into one comparison key.
	Hash string `json:"hash"`
	// FetchTime is the provenance timestamp stamped on this dataset's
	// relationships in the generation the manifest describes.
	FetchTime time.Time `json:"fetch_time"`
	// Inputs lists the payloads read, in fetch order.
	Inputs []ingest.FetchRecord `json:"inputs"`
}

// DatasetsManifest maps every ingested dataset to its input fingerprint.
type DatasetsManifest struct {
	// Fingerprint identifies the build configuration (simulated-Internet
	// config plus dataset list). A delta build refuses a manifest with a
	// different fingerprint: a changed configuration invalidates every
	// dataset at once, which is a full rebuild, not a delta.
	Fingerprint string `json:"fingerprint"`
	// Generation is the store sequence number the manifest describes.
	Generation uint64                   `json:"generation"`
	Datasets   map[string]DatasetInputs `json:"datasets"`
}

// inputsHash folds ordered fetch records into one key.
func inputsHash(recs []ingest.FetchRecord) string {
	h := sha256.New()
	for _, r := range recs {
		fmt.Fprintf(h, "%s %s\n", r.Path, r.SHA256)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// ManifestFromReport builds the manifest for a completed full build.
// Datasets without recorded inputs (failed crawls, checkpoint replays) are
// omitted, so a later delta build conservatively re-crawls them.
func ManifestFromReport(fingerprint string, gen uint64, fetchTime time.Time, rep ingest.Report) *DatasetsManifest {
	m := &DatasetsManifest{
		Fingerprint: fingerprint,
		Generation:  gen,
		Datasets:    make(map[string]DatasetInputs, len(rep.Crawls)),
	}
	for _, c := range rep.Crawls {
		if c.Err != nil || len(c.Inputs) == 0 {
			continue
		}
		m.Datasets[c.Dataset] = DatasetInputs{
			Hash:      inputsHash(c.Inputs),
			FetchTime: fetchTime,
			Inputs:    c.Inputs,
		}
	}
	return m
}

// WriteDatasetsManifest durably replaces dir's DATASETS manifest.
func WriteDatasetsManifest(dir string, m *DatasetsManifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, DatasetsManifestName+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, DatasetsManifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadDatasetsManifest loads dir's DATASETS manifest.
func ReadDatasetsManifest(dir string) (*DatasetsManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, DatasetsManifestName))
	if err != nil {
		return nil, err
	}
	var m DatasetsManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: %s: %w", DatasetsManifestName, err)
	}
	if m.Datasets == nil {
		m.Datasets = map[string]DatasetInputs{}
	}
	return &m, nil
}
