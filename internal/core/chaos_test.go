package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"iyp/internal/crawlers"
	"iyp/internal/graph"
	"iyp/internal/ingest"
	"iyp/internal/ontology"
	"iyp/internal/source"
)

// chaosFetchTime pins provenance timestamps so faulted and reference builds
// are byte-comparable.
var chaosFetchTime = time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)

// chaosRules is the fault schedule of the chaos suite:
//
//   - tranco.top1m is deleted at the provider (permanent; retries must not
//     even be attempted),
//   - bgptools.tags is permanently flaky (every attempt fails; retries
//     exhaust),
//   - worldbank.country_pop truncates every body at the same offset, so
//     mid-body resumption can never progress past it,
//   - ihr.hegemony fails twice then recovers — the retry policy must cure
//     it, and the dataset must NOT count as failed.
func chaosRules() map[string]source.FaultRule {
	return map[string]source.FaultRule{
		source.PathTranco:       {NotFound: true},
		source.PathBGPToolsTags: {ErrorRate: 1.0},
		source.PathWorldBankPop: {TruncateRate: 1.0, TruncateAfter: 256},
		source.PathIHRHegemony:  {FailFirst: 2},
	}
}

// wantFailed is the exact dataset set chaosRules dooms.
var wantFailed = map[string]bool{
	"tranco.top1m":          true,
	"bgptools.tags":         true,
	"worldbank.country_pop": true,
}

func chaosBuild(t *testing.T, seed int64) (*BuildResult, *source.FaultFetcher) {
	t.Helper()
	var ff *source.FaultFetcher
	res, err := Build(context.Background(), BuildOptions{
		Config:    smallConfig(),
		FetchTime: chaosFetchTime,
		WrapFetcher: func(base source.Fetcher) source.Fetcher {
			ff = &source.FaultFetcher{Base: base, Config: source.FaultConfig{
				Seed:  seed,
				Rules: chaosRules(),
			}}
			return &source.RetryFetcher{Base: ff, Attempts: 3, Backoff: time.Millisecond, Seed: seed}
		},
	})
	if err != nil {
		t.Fatalf("seed %d: faulted build failed entirely: %v", seed, err)
	}
	return res, ff
}

// TestChaosBuildDegradesToExactlyTheFailedDatasets is the central chaos
// invariant: a build under fault injection must equal a clean build run
// with only the surviving crawlers — the blast radius of a broken feed is
// exactly that feed, nothing more.
func TestChaosBuildDegradesToExactlyTheFailedDatasets(t *testing.T) {
	seeds := []int64{1, 7, 42}
	// CI sweeps extra seeds through the environment (see the chaos job in
	// .github/workflows/ci.yml).
	if s := os.Getenv("IYP_CHAOS_SEED"); s != "" {
		extra, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad IYP_CHAOS_SEED %q: %v", s, err)
		}
		seeds = append(seeds, extra)
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, ff := chaosBuild(t, seed)

			// Exactly the doomed datasets failed.
			gotFailed := map[string]bool{}
			for _, c := range res.Report.Failed() {
				gotFailed[c.Dataset] = true
			}
			if len(gotFailed) != len(wantFailed) {
				t.Fatalf("failed datasets = %v, want %v", gotFailed, wantFailed)
			}
			for name := range wantFailed {
				if !gotFailed[name] {
					t.Fatalf("dataset %s should have failed; failures: %v", name, gotFailed)
				}
			}
			// The fail-twice-then-recover feed was cured by the retry
			// policy — faults fired, but the dataset survived.
			if gotFailed["ihr.hegemony"] {
				t.Error("retry policy did not cure the fail-first feed")
			}
			if got := ff.InjectedFaults()[source.FaultFailFirst]; got != 2 {
				t.Errorf("fail-first faults injected = %d, want 2", got)
			}
			// The build is flagged degraded.
			if !res.Report.Degraded || res.Report.PolicyNote == "" {
				t.Errorf("degraded build not flagged: degraded=%v note=%q",
					res.Report.Degraded, res.Report.PolicyNote)
			}

			// Zero-trace: no relationship in the graph carries a failed
			// dataset's provenance.
			res.Graph.EachRel(func(id graph.RelID) bool {
				ref, _ := res.Graph.RelProp(id, ontology.PropReferenceName).AsString()
				if wantFailed[ref] {
					t.Errorf("relationship %d carries provenance of failed dataset %s", id, ref)
					return false
				}
				return true
			})

			// Reference: a clean build with only the surviving crawlers.
			var survivors []ingest.Crawler
			for _, c := range crawlers.All() {
				if !gotFailed[c.Reference().Name] {
					survivors = append(survivors, c)
				}
			}
			ref, err := Build(context.Background(), BuildOptions{
				Config:    smallConfig(),
				FetchTime: chaosFetchTime,
				Crawlers:  survivors,
			})
			if err != nil {
				t.Fatalf("reference build failed: %v", err)
			}
			if n := len(ref.Report.Failed()); n != 0 {
				t.Fatalf("reference build had %d failures", n)
			}

			// The faulted graph and the reference graph are the same graph.
			got, want := res.Graph.Stats(), ref.Graph.Stats()
			if got.Nodes != want.Nodes || got.Rels != want.Rels {
				t.Errorf("graph size: faulted %d nodes/%d rels, reference %d nodes/%d rels",
					got.Nodes, got.Rels, want.Nodes, want.Rels)
			}
			for label, n := range want.ByLabel {
				if got.ByLabel[label] != n {
					t.Errorf("label %s: faulted %d, reference %d", label, got.ByLabel[label], n)
				}
			}
			for _, label := range res.Graph.Labels() {
				if want.ByLabel[label] == 0 && got.ByLabel[label] != 0 {
					t.Errorf("label %s: faulted build has %d extra nodes", label, got.ByLabel[label])
				}
			}
			for ty, n := range want.ByRelType {
				if got.ByRelType[ty] != n {
					t.Errorf("reltype %s: faulted %d, reference %d", ty, got.ByRelType[ty], n)
				}
			}
			for _, ty := range res.Graph.RelTypes() {
				if want.ByRelType[ty] == 0 && got.ByRelType[ty] != 0 {
					t.Errorf("reltype %s: faulted build has %d extra rels", ty, got.ByRelType[ty])
				}
			}

			// Per-dataset links are deterministic: every surviving dataset
			// imported the same number of relationships in both builds.
			refLinks := map[string]int{}
			for _, c := range ref.Report.Crawls {
				refLinks[c.Dataset] = c.LinksCreated
			}
			for _, c := range res.Report.Crawls {
				if c.Err != nil {
					if c.LinksCreated != 0 || c.NodesCreated != 0 {
						t.Errorf("failed dataset %s reports %d nodes/%d links, want 0/0",
							c.Dataset, c.NodesCreated, c.LinksCreated)
					}
					continue
				}
				if c.LinksCreated != refLinks[c.Dataset] {
					t.Errorf("dataset %s: faulted build imported %d links, reference %d",
						c.Dataset, c.LinksCreated, refLinks[c.Dataset])
				}
			}
		})
	}
}

// TestChaosBuildUnderRandomTransientFaults stresses the retry layer: a
// global low transient error rate plus latency jitter must be fully
// absorbed — no dataset may fail, and the graph must match a fault-free
// build exactly.
func TestChaosBuildUnderRandomTransientFaults(t *testing.T) {
	res, _ := func() (*BuildResult, *source.FaultFetcher) {
		var ff *source.FaultFetcher
		res, err := Build(context.Background(), BuildOptions{
			Config:    smallConfig(),
			FetchTime: chaosFetchTime,
			WrapFetcher: func(base source.Fetcher) source.Fetcher {
				ff = &source.FaultFetcher{Base: base, Config: source.FaultConfig{
					Seed:    99,
					Default: source.FaultRule{ErrorRate: 0.2, Latency: time.Microsecond},
				}}
				return &source.RetryFetcher{Base: ff, Attempts: 6, Backoff: time.Millisecond, Seed: 99}
			},
		})
		if err != nil {
			t.Fatalf("build under transient faults failed: %v", err)
		}
		return res, ff
	}()
	for _, c := range res.Report.Failed() {
		t.Errorf("dataset %s failed despite retries: %v", c.Dataset, c.Err)
	}
	if res.Report.Degraded {
		t.Error("fully-recovered build must not be flagged degraded")
	}

	clean, err := Build(context.Background(), BuildOptions{
		Config:    smallConfig(),
		FetchTime: chaosFetchTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.Graph.Stats(), clean.Graph.Stats()
	if got.Nodes != want.Nodes || got.Rels != want.Rels {
		t.Errorf("graph size: faulted %d/%d, clean %d/%d", got.Nodes, got.Rels, want.Nodes, want.Rels)
	}
}

func TestChaosCriticalDatasetFailsBuild(t *testing.T) {
	_, err := Build(context.Background(), BuildOptions{
		Config:    smallConfig(),
		FetchTime: chaosFetchTime,
		WrapFetcher: func(base source.Fetcher) source.Fetcher {
			return &source.FaultFetcher{Base: base, Config: source.FaultConfig{
				Rules: map[string]source.FaultRule{source.PathTranco: {NotFound: true}},
			}}
		},
		CriticalDatasets: []string{"tranco.top1m"},
	})
	if err == nil {
		t.Fatal("losing a critical dataset must fail the build")
	}
	if got := err.Error(); !errors.Is(err, source.ErrNotFound) || !containsAll(got, "critical", "tranco.top1m") {
		t.Errorf("error does not identify the critical dataset: %v", err)
	}
}

func TestChaosMinSuccessRateFailsBuild(t *testing.T) {
	_, err := Build(context.Background(), BuildOptions{
		Config:    smallConfig(),
		FetchTime: chaosFetchTime,
		Crawlers:  []ingest.Crawler{crawlers.NewTranco(), crawlers.NewBGPKITPfx2as()},
		WrapFetcher: func(base source.Fetcher) source.Fetcher {
			return &source.FaultFetcher{Base: base, Config: source.FaultConfig{
				Rules: map[string]source.FaultRule{source.PathTranco: {NotFound: true}},
			}}
		},
		MinSuccessRate: 0.9, // 1/2 ingested = 50% < 90%
	})
	if err == nil {
		t.Fatal("build below the success floor must fail")
	}
	if !containsAll(err.Error(), "1/2", "90") {
		t.Errorf("error does not describe the floor violation: %v", err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
