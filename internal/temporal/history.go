// Package temporal turns the generation machinery into a temporal
// knowledge graph: AS-OF reads over persisted generations (History), a
// deterministic generation-diff engine (Diff), and the glue that exposes
// both through Cypher (`AS OF`, `CALL temporal.diff`), HTTP and the CLI
// tools. The paper's workflow is weekly dumps; this package makes "how did
// the Internet change between builds" a first-class query instead of a
// hand-rolled two-snapshot comparison.
package temporal

import (
	"fmt"
	"sync"

	"iyp/internal/graph"
)

// DefaultMaxResident is how many materialized historical generations a
// History keeps in memory absent an override. Historical graphs are full
// snapshots, so the budget is deliberately small.
const DefaultMaxResident = 2

// History materializes persisted generations (gen-NNNNNN.snapshot files in
// a graph.Store) into frozen in-memory graphs on demand, serving
// `graph.MVStore.AcquireGen` misses for generations that have aged out of
// the in-memory retain window. It implements graph.HistorySource.
//
// Resident generations are bounded by an LRU budget: once more than
// maxResident are materialized, the least-recently-used unpinned one is
// dropped. A generation with pinned readers is never evicted — the cache
// overshoots its budget until the pins drain, and eviction re-runs on every
// release ("eviction by pin-drain"). While a generation is resident (or
// loading) the History protects its snapshot file from the store's
// keep-N pruning via Store.Protect, so an AS-OF reader can never have the
// file deleted out from under it.
//
// Loads are single-flight: concurrent requests for the same generation
// share one disk read; failures are returned to every waiter and are not
// cached negatively.
type History struct {
	store *graph.Store
	max   int

	mu        sync.Mutex
	entries   map[uint64]*histEntry
	clock     uint64
	loads     uint64
	hits      uint64
	evictions uint64
}

// histEntry is one materialized (or in-flight) historical generation.
type histEntry struct {
	seq     uint64
	g       *graph.Graph
	err     error
	pins    int
	lastUse uint64
	loading chan struct{} // closed once g/err is settled
}

// NewHistory wraps store with a materialization cache keeping at most
// maxResident generations in memory (0 means DefaultMaxResident). The
// History registers itself as a pruning protector on store.
func NewHistory(store *graph.Store, maxResident int) *History {
	if maxResident <= 0 {
		maxResident = DefaultMaxResident
	}
	h := &History{
		store:   store,
		max:     maxResident,
		entries: make(map[uint64]*histEntry),
	}
	store.Protect(h.protects)
	return h
}

// Attach wires st's AS-OF fallback to store through a new History and
// returns it: AcquireGen calls that miss the in-memory retain window load
// the persisted snapshot instead of failing.
func Attach(st *graph.MVStore, store *graph.Store, maxResident int) *History {
	h := NewHistory(store, maxResident)
	st.SetHistory(h)
	return h
}

// AcquireHistorical implements graph.HistorySource: it returns the frozen
// graph for gen, pinned until release is called, materializing the
// snapshot from the store on first use.
func (h *History) AcquireHistorical(gen uint64) (*graph.Graph, func(), error) {
	for {
		h.mu.Lock()
		e, ok := h.entries[gen]
		if !ok {
			e = &histEntry{seq: gen, loading: make(chan struct{})}
			h.entries[gen] = e
			h.mu.Unlock()

			g, err := h.load(gen)

			h.mu.Lock()
			if err != nil {
				e.err = err
				delete(h.entries, gen)
				close(e.loading)
				h.mu.Unlock()
				return nil, nil, err
			}
			e.g = g
			e.pins = 1
			e.lastUse = h.tickLocked()
			h.loads++
			close(e.loading)
			h.evictLocked()
			h.mu.Unlock()
			return g, h.releaseFunc(e), nil
		}
		select {
		case <-e.loading:
			if e.err != nil {
				// The failed load already removed itself from the map;
				// retry from scratch (the next pass creates a fresh entry).
				h.mu.Unlock()
				continue
			}
			e.pins++
			e.lastUse = h.tickLocked()
			h.hits++
			h.mu.Unlock()
			return e.g, h.releaseFunc(e), nil
		default:
			// Load in flight: wait outside the lock, then retry.
			h.mu.Unlock()
			<-e.loading
		}
	}
}

// load materializes gen from the store, verifying its manifest record first.
func (h *History) load(gen uint64) (*graph.Graph, error) {
	return LoadGeneration(h.store, gen)
}

// LoadGeneration materializes one persisted generation from the store as a
// frozen graph, verifying its manifest checksum first. Callers that need
// caching and pin management should go through History; this is the raw
// load used by offline tools (iyp-report -diff, iyp-bench -diff).
func LoadGeneration(store *graph.Store, gen uint64) (*graph.Graph, error) {
	gens, err := store.Generations()
	if err != nil {
		return nil, err
	}
	for _, cand := range gens {
		if cand.Seq != gen {
			continue
		}
		if err := store.VerifyGen(cand); err != nil {
			return nil, fmt.Errorf("temporal: generation %d failed verification: %w", gen, err)
		}
		g, err := graph.LoadFile(cand.Path)
		if err != nil {
			return nil, fmt.Errorf("temporal: generation %d: %w", gen, err)
		}
		g.Freeze()
		return g, nil
	}
	return nil, fmt.Errorf("temporal: generation %d is not present in store %s", gen, store.Dir())
}

// releaseFunc returns an idempotent unpin for e; the last release makes e
// evictable and re-runs eviction (pin-drain).
func (h *History) releaseFunc(e *histEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			h.mu.Lock()
			e.pins--
			h.evictLocked()
			h.mu.Unlock()
		})
	}
}

// evictLocked drops least-recently-used unpinned resident generations until
// the budget holds. Pinned generations are skipped — the cache overshoots
// until their pins drain.
func (h *History) evictLocked() {
	for h.residentLocked() > h.max {
		var victim *histEntry
		for _, e := range h.entries {
			if e.g == nil || e.pins > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return // everything pinned or loading: overshoot until pin-drain
		}
		delete(h.entries, victim.seq)
		h.evictions++
	}
}

// residentLocked counts fully materialized entries.
func (h *History) residentLocked() int {
	n := 0
	for _, e := range h.entries {
		if e.g != nil {
			n++
		}
	}
	return n
}

func (h *History) tickLocked() uint64 {
	h.clock++
	return h.clock
}

// protects is the Store.Protect predicate: any generation that is resident,
// loading, or pinned must survive keep-N pruning.
func (h *History) protects(seq uint64) bool {
	h.mu.Lock()
	_, ok := h.entries[seq]
	h.mu.Unlock()
	return ok
}

// HistoryStats is a point-in-time snapshot of the cache's counters.
type HistoryStats struct {
	Resident  int    `json:"resident"`
	Pinned    int    `json:"pinned"`
	Loads     uint64 `json:"loads"`
	Hits      uint64 `json:"hits"`
	Evictions uint64 `json:"evictions"`
}

// Stats reports the cache's current occupancy and counters.
func (h *History) Stats() HistoryStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistoryStats{Loads: h.loads, Hits: h.hits, Evictions: h.evictions}
	for _, e := range h.entries {
		if e.g != nil {
			s.Resident++
		}
		if e.pins > 0 {
			s.Pinned++
		}
	}
	return s
}
