package temporal

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"iyp/internal/graph"
	"iyp/internal/ontology"
)

// asGraph builds a small frozen graph of AS and Prefix nodes joined by
// ORIGINATE relationships with dataset provenance. asns/prefixes pair up
// by index; order controls node insertion order so tests can prove the
// diff matches semantically, not by internal ID.
func asGraph(t *testing.T, asns []int64, reversed bool) *graph.Graph {
	t.Helper()
	g := graph.New()
	order := make([]int, len(asns))
	for i := range order {
		order[i] = i
	}
	if reversed {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	for _, i := range order {
		asn := asns[i]
		a := g.AddNode([]string{"AS"}, graph.Props{"asn": graph.Int(asn)})
		p := g.AddNode([]string{"Prefix"}, graph.Props{"prefix": graph.String(fmt.Sprintf("10.%d.0.0/16", asn))})
		if _, err := g.AddRel("ORIGINATE", a, p, graph.Props{
			ontology.PropReferenceName: graph.String("bgpkit.pfx2asn"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

func mustDiff(t *testing.T, from, to *graph.Graph, workers int) *DiffResult {
	t.Helper()
	res, err := Diff(context.Background(), from, to, DiffOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDiffEmptyOnSemanticallyIdenticalGraphs(t *testing.T) {
	asns := []int64{2497, 2500, 7500, 9999}
	// Same content, opposite insertion order: internal IDs differ on
	// every node, so an ID-based comparison would report everything
	// changed. Identity matching must report no difference.
	a := asGraph(t, asns, false)
	b := asGraph(t, asns, true)
	res := mustDiff(t, a, b, 0)
	if !res.Empty() {
		t.Fatalf("diff of identical graphs not empty:\n%s", res)
	}
}

func TestDiffCountsAddedRemovedChanged(t *testing.T) {
	a := asGraph(t, []int64{1, 2, 3}, false)

	b := graph.New()
	// AS 1 unchanged; AS 2 removed; AS 4 added; AS 3's prefix node gets
	// a new property (changed), its ORIGINATE rel is identical.
	for _, asn := range []int64{1, 3, 4} {
		n := g2node(b, asn)
		p := b.AddNode([]string{"Prefix"}, prefixProps(asn, asn == 3))
		if _, err := b.AddRel("ORIGINATE", n, p, graph.Props{
			ontology.PropReferenceName: graph.String("bgpkit.pfx2asn"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	b.Freeze()

	res := mustDiff(t, a, b, 0)
	// Nodes: AS 4 + its prefix added, AS 2 + its prefix removed, prefix 3
	// changed.
	if res.Nodes != (Totals{Added: 2, Removed: 2, Changed: 1}) {
		t.Fatalf("node totals = %+v", res.Nodes)
	}
	// Rels: AS 2's ORIGINATE removed, AS 4's added. AS 3's rel is
	// identical (its endpoint identity is the prefix value, which did not
	// change — only the prefix node's extra property did).
	if res.Rels != (Totals{Added: 1, Removed: 1}) {
		t.Fatalf("rel totals = %+v", res.Rels)
	}
	wantLabel := map[string]GroupDelta{
		"AS":     {Name: "AS", Added: 1, Removed: 1},
		"Prefix": {Name: "Prefix", Added: 1, Removed: 1, Changed: 1},
	}
	for _, g := range res.ByLabel {
		if g != wantLabel[g.Name] {
			t.Errorf("label %s delta = %+v, want %+v", g.Name, g, wantLabel[g.Name])
		}
	}
	if len(res.ByLabel) != len(wantLabel) {
		t.Errorf("ByLabel = %+v", res.ByLabel)
	}
	if len(res.ByRelType) != 1 || res.ByRelType[0] != (GroupDelta{Name: "ORIGINATE", Added: 1, Removed: 1}) {
		t.Errorf("ByRelType = %+v", res.ByRelType)
	}
	if len(res.ByDataset) != 1 || res.ByDataset[0].Name != "bgpkit.pfx2asn" {
		t.Errorf("ByDataset = %+v", res.ByDataset)
	}
}

func g2node(g *graph.Graph, asn int64) graph.NodeID {
	return g.AddNode([]string{"AS"}, graph.Props{"asn": graph.Int(asn)})
}

func prefixProps(asn int64, tagged bool) graph.Props {
	p := graph.Props{"prefix": graph.String(fmt.Sprintf("10.%d.0.0/16", asn))}
	if tagged {
		p["af"] = graph.Int(4)
	}
	return p
}

func TestDiffRelPropertyChangeCountsAsChanged(t *testing.T) {
	mk := func(count graph.Value) *graph.Graph {
		g := graph.New()
		a := g2node(g, 1)
		p := g.AddNode([]string{"Prefix"}, prefixProps(1, false))
		if _, err := g.AddRel("ORIGINATE", a, p, graph.Props{
			ontology.PropReferenceName: graph.String("bgpkit.pfx2asn"),
			"count":                    count,
		}); err != nil {
			panic(err)
		}
		g.Freeze()
		return g
	}
	res := mustDiff(t, mk(graph.Int(10)), mk(graph.Int(20)), 0)
	if res.Nodes != (Totals{}) {
		t.Fatalf("node totals = %+v, want zero", res.Nodes)
	}
	if res.Rels != (Totals{Changed: 1}) {
		t.Fatalf("rel totals = %+v", res.Rels)
	}
}

func TestDiffParallelRelsMatchAsMultisets(t *testing.T) {
	mk := func(n int) *graph.Graph {
		g := graph.New()
		a := g2node(g, 1)
		p := g.AddNode([]string{"Prefix"}, prefixProps(1, false))
		for i := 0; i < n; i++ {
			if _, err := g.AddRel("ORIGINATE", a, p, graph.Props{
				ontology.PropReferenceName: graph.String("bgpkit.pfx2asn"),
			}); err != nil {
				panic(err)
			}
		}
		g.Freeze()
		return g
	}
	// Two identical parallel rels vs three: exactly one added, none
	// changed — equal fingerprints pair off first.
	res := mustDiff(t, mk(2), mk(3), 0)
	if res.Rels != (Totals{Added: 1}) {
		t.Fatalf("rel totals = %+v", res.Rels)
	}
}

// churnedPair builds two moderately sized random graphs that share most
// of their content, with seeded additions, removals and property churn —
// enough entropy to exercise every shard.
func churnedPair(t *testing.T, seed int64) (*graph.Graph, *graph.Graph) {
	t.Helper()
	build := func(skip, extra, mutate int) *graph.Graph {
		rr := rand.New(rand.NewSource(seed + 100))
		g := graph.New()
		var ases []graph.NodeID
		for asn := int64(1); asn <= 400; asn++ {
			if asn%97 == int64(skip) {
				continue // this generation is missing these ASes
			}
			props := graph.Props{"asn": graph.Int(asn)}
			if asn%89 == int64(mutate) {
				props["name"] = graph.String("MUTATED")
			} else {
				props["name"] = graph.String(fmt.Sprintf("AS-%d", asn))
			}
			ases = append(ases, g.AddNode([]string{"AS"}, props))
		}
		for i := 0; i < extra; i++ {
			g.AddNode([]string{"Tag"}, graph.Props{"label": graph.String(fmt.Sprintf("extra-%d", i))})
		}
		datasets := []string{"bgpkit.pfx2asn", "ripe.as_names", "nro.delegated_stats"}
		for i := 0; i < 1200; i++ {
			from := ases[rr.Intn(len(ases))]
			to := ases[rr.Intn(len(ases))]
			if _, err := g.AddRel("PEERS_WITH", from, to, graph.Props{
				ontology.PropReferenceName: graph.String(datasets[rr.Intn(len(datasets))]),
				"w":                        graph.Int(int64(rr.Intn(5))),
			}); err != nil {
				t.Fatal(err)
			}
		}
		g.Freeze()
		return g
	}
	return build(3, 5, 7), build(5, 9, 11)
}

// TestDiffDeterministicAcrossWorkerCounts is the kernel's core contract:
// the rendered diff (and its JSON form) is byte-identical at every worker
// count and at GOMAXPROCS 1 vs 8. The CI temporal job runs this under
// -race.
func TestDiffDeterministicAcrossWorkerCounts(t *testing.T) {
	a, b := churnedPair(t, 42)
	var wantStr string
	var wantJSON []byte
	for _, procs := range []int{1, 8} {
		old := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 4, 8} {
			res := mustDiff(t, a, b, workers)
			js, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if wantStr == "" {
				wantStr, wantJSON = res.String(), js
				if res.Empty() {
					t.Fatal("churned pair produced an empty diff; test is vacuous")
				}
				continue
			}
			if res.String() != wantStr {
				t.Errorf("GOMAXPROCS=%d workers=%d: rendered diff differs:\n%s\nwant:\n%s", procs, workers, res, wantStr)
			}
			if string(js) != string(wantJSON) {
				t.Errorf("GOMAXPROCS=%d workers=%d: JSON differs", procs, workers)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

func TestDiffHonorsContextCancellation(t *testing.T) {
	a, b := churnedPair(t, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Diff(ctx, a, b, DiffOptions{}); err == nil {
		t.Fatal("diff with cancelled context succeeded")
	}
}

func TestDiffStringRendersEmptyMarker(t *testing.T) {
	r := &DiffResult{From: 3, To: 5}
	s := r.String()
	if want := "generation 3 -> 5"; len(s) == 0 || s[:len(want)] != want {
		t.Fatalf("String() = %q", s)
	}
	if !r.Empty() {
		t.Fatal("zero DiffResult not Empty")
	}
}

// valueZoo builds a generation exercising every value kind — strings,
// ints, floats (integral and not), bools, lists, plus cross-kind numeric
// pairs — with a controlled mutation knob, into the provided empty graph.
func valueZoo(t *testing.T, g *graph.Graph, mutate bool) *graph.Graph {
	t.Helper()
	for asn := int64(1); asn <= 50; asn++ {
		name := fmt.Sprintf("AS Example %d — https://example.net/as/%d", asn, asn)
		if mutate && asn%11 == 3 {
			name += " (renamed)"
		}
		props := graph.Props{
			"asn":   graph.Int(asn),
			"name":  graph.String(name),
			"score": graph.Float(float64(asn) / 3),
			"flag":  graph.Bool(asn%2 == 0),
			"tags":  graph.List(graph.String("tag"), graph.Int(asn%5)),
		}
		if asn%7 == 0 {
			// Cross-kind numeric: the diff's value rendering folds
			// Int(2) and Float(2.0) together; both paths must agree.
			props["score"] = graph.Int(asn)
		}
		a := g.AddNode([]string{"AS"}, props)
		if mutate && asn%13 == 5 {
			continue // drop this AS's origination entirely
		}
		p := g.AddNode([]string{"Prefix"}, graph.Props{"prefix": graph.String(fmt.Sprintf("10.%d.0.0/16", asn))})
		if _, err := g.AddRel("ORIGINATE", a, p, graph.Props{
			ontology.PropReferenceName: graph.String("bgpkit.pfx2asn"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	g.Freeze()
	return g
}

// TestDiffSharedDictionaryMatchesDistinct pins the interned fast path:
// when both generations share one dictionary (delta builds, replica
// reloads), identity keys and fingerprints compare string payloads by
// dictionary id — and the result must be byte-identical to the literal
// comparison two unrelated lineages get.
func TestDiffSharedDictionaryMatchesDistinct(t *testing.T) {
	slowA := valueZoo(t, graph.New(), false)
	slowB := valueZoo(t, graph.New(), true)

	dict := graph.NewInterner()
	fastA := valueZoo(t, graph.NewWithInterner(dict), false)
	fastB := valueZoo(t, graph.NewWithInterner(dict), true)
	if fastA.Interner() != fastB.Interner() {
		t.Fatal("shared-dictionary pair does not share an Interner; fast path never engages")
	}

	want := mustDiff(t, slowA, slowB, 0)
	got := mustDiff(t, fastA, fastB, 0)
	if want.Empty() {
		t.Fatal("mutated zoo produced an empty diff; test is vacuous")
	}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if string(wj) != string(gj) {
		t.Fatalf("shared-dictionary diff differs from distinct-dictionary diff:\n%s\nwant:\n%s", got, want)
	}

	// Identical generations must also stay identical through the fast path.
	sameA := valueZoo(t, graph.NewWithInterner(dict), false)
	if res := mustDiff(t, fastA, sameA, 0); !res.Empty() {
		t.Fatalf("fast-path diff of identical graphs not empty:\n%s", res)
	}
}
