package temporal

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"iyp/internal/graph"
	"iyp/internal/ontology"
)

// Diff compares two frozen graph generations and reports what was added,
// removed and changed between them — the engine behind `CALL
// temporal.diff`, `GET /v1/diff` and `iyp-report -diff`.
//
// Entities are matched semantically, not by internal ID (IDs are assigned
// in ingestion order and carry no meaning across builds):
//
//   - A node's identity is its first ontology label (in sorted label
//     order) that has an identity property present on the node, plus that
//     property's value — e.g. (AS, asn=2497). Nodes without any ontology
//     identity fall back to their label set plus full property
//     fingerprint.
//   - A relationship's identity is its type, its endpoints' node
//     identities, and its provenance dataset (reference_name), matching
//     how ingestion dedups: the same fact re-crawled from the same
//     dataset is the same relationship.
//
// An entity present in both generations whose property fingerprint
// differs counts as changed; present only in `to` as added; only in
// `from` as removed. Duplicate identities (parallel relationships from
// one dataset) are matched as multisets: equal fingerprints pair off
// first, leftovers pair as changed, the excess counts as added/removed.
//
// The kernel is deterministic at any worker count: entities are
// partitioned by identity-hash into a fixed number of shards, each shard
// is diffed independently, and the per-shard counters merge by
// commutative addition before a final sort by group name.
func Diff(ctx context.Context, from, to *graph.Graph, opts DiffOptions) (*DiffResult, error) {
	var res *DiffResult
	var err error
	from.BulkRead(func(a *graph.BulkReader) {
		to.BulkRead(func(b *graph.BulkReader) {
			res, err = diff(ctx, a, b, opts)
		})
	})
	return res, err
}

// DiffOptions tunes Diff.
type DiffOptions struct {
	// Workers bounds the parallel scan/diff workers (0 = GOMAXPROCS).
	// The result is byte-identical at every setting.
	Workers int
}

// Totals counts entity-level differences.
type Totals struct {
	Added   int `json:"added"`
	Removed int `json:"removed"`
	Changed int `json:"changed"`
}

// GroupDelta is one named group's delta (a node label, a relationship
// type, or a provenance dataset).
type GroupDelta struct {
	Name    string `json:"name"`
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
	Changed int    `json:"changed"`
}

// DiffResult is the full diff between two generations. Group slices are
// sorted by name; groups with an all-zero delta are omitted.
type DiffResult struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`

	Nodes Totals `json:"nodes"`
	Rels  Totals `json:"rels"`

	// ByLabel counts node deltas per label; a node carrying several
	// labels counts once under each.
	ByLabel []GroupDelta `json:"by_label"`
	// ByRelType counts relationship deltas per type.
	ByRelType []GroupDelta `json:"by_reltype"`
	// ByDataset counts relationship deltas per provenance dataset
	// (reference_name); refinement passes appear under their iyp.* names.
	ByDataset []GroupDelta `json:"by_dataset"`
}

// Empty reports whether the diff found no differences at all.
func (r *DiffResult) Empty() bool {
	return r.Nodes == Totals{} && r.Rels == Totals{}
}

// String renders the diff as the aligned table iyp-report -diff prints.
func (r *DiffResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "generation %d -> %d\n", r.From, r.To)
	fmt.Fprintf(&sb, "  %-34s %8s %8s %8s\n", "", "added", "removed", "changed")
	fmt.Fprintf(&sb, "  %-34s %8d %8d %8d\n", "nodes", r.Nodes.Added, r.Nodes.Removed, r.Nodes.Changed)
	fmt.Fprintf(&sb, "  %-34s %8d %8d %8d\n", "relationships", r.Rels.Added, r.Rels.Removed, r.Rels.Changed)
	section := func(title string, groups []GroupDelta) {
		if len(groups) == 0 {
			return
		}
		fmt.Fprintf(&sb, "%s:\n", title)
		for _, g := range groups {
			fmt.Fprintf(&sb, "  %-34s %8d %8d %8d\n", g.Name, g.Added, g.Removed, g.Changed)
		}
	}
	section("by label", r.ByLabel)
	section("by relationship type", r.ByRelType)
	section("by dataset", r.ByDataset)
	if r.Empty() {
		sb.WriteString("(no differences)\n")
	}
	return sb.String()
}

// diffShards is the fixed shard count. Independent of the worker count so
// the partitioning — and therefore the result — never varies with it.
const diffShards = 64

// nodeEntry is one node's identity and content fingerprint.
type nodeEntry struct {
	key    string
	fp     string
	labels []string
}

// relEntry is one relationship's identity and content fingerprint.
type relEntry struct {
	key string
	fp  string
	typ string
	ds  string
}

// tokener renders property values inside identity keys and fingerprints.
// Keys and fingerprints are compared, never displayed, so their value
// encoding only has to preserve equality. When both generations share one
// Interner — a delta build against its parent, a replica following a store
// that seeds reloads — a string value's dictionary id IS its content
// address, and the token is a few base-36 digits instead of a re-quoted,
// re-escaped copy of the payload (provenance URLs, organisation names).
// Distinct lineages fall back to the literal rendering.
type tokener struct {
	shared bool
}

func newTokener(a, b *graph.BulkReader) tokener {
	return tokener{shared: a.Interner() != nil && a.Interner() == b.Interner()}
}

// render encodes one value. Only strings use the id fast path: their "s"
// prefix cannot collide with any literal rendering (null, true/false,
// digits, quotes, brackets), and id equality is exactly string equality
// under a shared Interner. Other kinds keep the literal form — numeric
// cross-kind folding (Int(2) vs Float(2.0)) must match the slow path.
func (tk tokener) render(kind graph.Kind, ref uint64, v graph.Value) string {
	if tk.shared && kind == graph.KindString {
		return "s" + strconv.FormatUint(ref, 36)
	}
	return v.String()
}

// identity renders the identity-property value for nodeKey, which reads
// single properties rather than iterating columns.
func (tk tokener) identity(br *graph.BulkReader, id graph.NodeID, key string, v graph.Value) string {
	if tk.shared && v.Kind() == graph.KindString {
		if kind, ref, ok := br.NodePropRef(id, key); ok && kind == graph.KindString {
			return "s" + strconv.FormatUint(ref, 36)
		}
	}
	return v.String()
}

func diff(ctx context.Context, a, b *graph.BulkReader, opts DiffOptions) (*DiffResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tok := newTokener(a, b)

	// Phase 1: node identity keys, dense by NodeID, per graph.
	keysA, err := nodeKeys(ctx, a, workers, tok)
	if err != nil {
		return nil, err
	}
	keysB, err := nodeKeys(ctx, b, workers, tok)
	if err != nil {
		return nil, err
	}

	// Phase 2: shard node and relationship entries by identity hash.
	nodesA, err := shardNodes(ctx, a, keysA, workers, tok)
	if err != nil {
		return nil, err
	}
	nodesB, err := shardNodes(ctx, b, keysB, workers, tok)
	if err != nil {
		return nil, err
	}
	relsA, err := shardRels(ctx, a, keysA, workers, tok)
	if err != nil {
		return nil, err
	}
	relsB, err := shardRels(ctx, b, keysB, workers, tok)
	if err != nil {
		return nil, err
	}

	// Phase 3: diff each shard independently, then merge commutatively.
	res := &DiffResult{}
	byLabel := map[string]*GroupDelta{}
	byType := map[string]*GroupDelta{}
	byDS := map[string]*GroupDelta{}

	type shardOut struct {
		nodes, rels          Totals
		label, rtype, dsname map[string]Totals
		err                  error
	}
	outs := make([]shardOut, diffShards)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for s := 0; s < diffShards; s++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				outs[s].err = err
				return
			}
			o := &outs[s]
			o.label, o.rtype, o.dsname = map[string]Totals{}, map[string]Totals{}, map[string]Totals{}
			o.nodes = diffNodeShard(nodesA[s], nodesB[s], o.label)
			o.rels = diffRelShard(relsA[s], relsB[s], o.rtype, o.dsname)
		}(s)
	}
	wg.Wait()
	for s := range outs {
		o := &outs[s]
		if o.err != nil {
			return nil, o.err
		}
		addTotals(&res.Nodes, o.nodes)
		addTotals(&res.Rels, o.rels)
		mergeGroups(byLabel, o.label)
		mergeGroups(byType, o.rtype)
		mergeGroups(byDS, o.dsname)
	}
	res.ByLabel = sortGroups(byLabel)
	res.ByRelType = sortGroups(byType)
	res.ByDataset = sortGroups(byDS)
	return res, nil
}

func addTotals(dst *Totals, t Totals) {
	dst.Added += t.Added
	dst.Removed += t.Removed
	dst.Changed += t.Changed
}

func mergeGroups(dst map[string]*GroupDelta, src map[string]Totals) {
	for name, t := range src {
		g := dst[name]
		if g == nil {
			g = &GroupDelta{Name: name}
			dst[name] = g
		}
		g.Added += t.Added
		g.Removed += t.Removed
		g.Changed += t.Changed
	}
}

func sortGroups(m map[string]*GroupDelta) []GroupDelta {
	out := make([]GroupDelta, 0, len(m))
	for _, g := range m {
		if g.Added == 0 && g.Removed == 0 && g.Changed == 0 {
			continue
		}
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// nodeKeys computes every live node's identity key in parallel ID-range
// chunks; the result is a dense slice indexed by NodeID.
func nodeKeys(ctx context.Context, br *graph.BulkReader, workers int, tok tokener) ([]string, error) {
	max := int(br.MaxNodeID())
	keys := make([]string, max+1)
	chunk := (max + workers) / workers
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for lo := 1; lo <= max; lo += chunk {
		hi := lo + chunk - 1
		if hi > max {
			hi = max
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for id := lo; id <= hi; id++ {
				nid := graph.NodeID(id)
				if !br.NodeAlive(nid) {
					continue
				}
				keys[id] = nodeKey(br, nid, tok)
			}
		}(lo, hi)
	}
	wg.Wait()
	return keys, ctx.Err()
}

// nodeKey derives a node's cross-generation identity: the first ontology
// label (sorted order) whose identity property is present, plus its value.
func nodeKey(br *graph.BulkReader, id graph.NodeID, tok tokener) string {
	labels := br.NodeLabels(id)
	for _, l := range labels {
		ik := ontology.IdentityKey(l)
		if ik == "" {
			continue
		}
		v := br.NodeProp(id, ik)
		if !v.IsNull() {
			return "N\x1f" + l + "\x1f" + ik + "\x1f" + tok.identity(br, id, ik, v)
		}
	}
	// No ontology identity: the node is its label set plus content.
	return "N\x1f" + strings.Join(labels, ",") + "\x1f\x1f" + nodeFingerprint(br, id, labels, tok)
}

// nodeFingerprint encodes the node's labels and full property map
// canonically (sorted keys, equality-preserving value tokens).
func nodeFingerprint(br *graph.BulkReader, id graph.NodeID, labels []string, tok tokener) string {
	var kv []string
	br.EachNodePropRef(id, func(k string, kind graph.Kind, ref uint64, v graph.Value) {
		kv = append(kv, k+"="+tok.render(kind, ref, v))
	})
	sort.Strings(kv)
	return strings.Join(labels, ",") + "\x1e" + strings.Join(kv, "\x1e")
}

// relFingerprint encodes the relationship's full property map canonically.
func relFingerprint(br *graph.BulkReader, id graph.RelID, tok tokener) string {
	var kv []string
	br.EachRelPropRef(id, func(k string, kind graph.Kind, ref uint64, v graph.Value) {
		kv = append(kv, k+"="+tok.render(kind, ref, v))
	})
	sort.Strings(kv)
	return strings.Join(kv, "\x1e")
}

func shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % diffShards)
}

// shardNodes buckets every live node's entry by identity hash. Workers
// scan disjoint ID ranges into private buckets; buckets concatenate in
// worker order, which is ID order — deterministic at any worker count up
// to within-shard ordering, which diffNodeShard re-sorts anyway.
func shardNodes(ctx context.Context, br *graph.BulkReader, keys []string, workers int, tok tokener) ([][]nodeEntry, error) {
	max := len(keys) - 1
	chunk := (max + workers) / workers
	if chunk < 1 {
		chunk = 1
	}
	type part struct {
		lo      int
		buckets [][]nodeEntry
	}
	var parts []*part
	var wg sync.WaitGroup
	for lo := 1; lo <= max; lo += chunk {
		hi := lo + chunk - 1
		if hi > max {
			hi = max
		}
		p := &part{lo: lo, buckets: make([][]nodeEntry, diffShards)}
		parts = append(parts, p)
		wg.Add(1)
		go func(lo, hi int, p *part) {
			defer wg.Done()
			for id := lo; id <= hi; id++ {
				key := keys[id]
				if key == "" {
					continue
				}
				nid := graph.NodeID(id)
				labels := br.NodeLabels(nid)
				e := nodeEntry{key: key, fp: nodeFingerprint(br, nid, labels, tok), labels: labels}
				s := shardOf(key)
				p.buckets[s] = append(p.buckets[s], e)
			}
		}(lo, hi, p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	shards := make([][]nodeEntry, diffShards)
	for _, p := range parts {
		for s := range p.buckets {
			shards[s] = append(shards[s], p.buckets[s]...)
		}
	}
	return shards, nil
}

// shardRels buckets every live relationship's entry by identity hash.
func shardRels(ctx context.Context, br *graph.BulkReader, keys []string, workers int, tok tokener) ([][]relEntry, error) {
	// Collect IDs first so ranges can be split evenly.
	var ids []graph.RelID
	var typs []uint16
	var froms, tos []graph.NodeID
	br.EachRel(func(id graph.RelID, typ uint16, from, to graph.NodeID) bool {
		ids = append(ids, id)
		typs = append(typs, typ)
		froms = append(froms, from)
		tos = append(tos, to)
		return true
	})
	n := len(ids)
	chunk := (n + workers) / workers
	if chunk < 1 {
		chunk = 1
	}
	type part struct {
		buckets [][]relEntry
	}
	var parts []*part
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p := &part{buckets: make([][]relEntry, diffShards)}
		parts = append(parts, p)
		wg.Add(1)
		go func(lo, hi int, p *part) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				id := ids[i]
				typ := br.TypeName(typs[i])
				ds := ""
				if v, ok := br.RelProp(id, ontology.PropReferenceName).AsString(); ok {
					ds = v
				}
				key := "R\x1f" + typ + "\x1f" + keys[froms[i]] + "\x1f" + keys[tos[i]] + "\x1f" + ds
				if ds == "" {
					ds = "(none)"
				}
				e := relEntry{key: key, fp: relFingerprint(br, id, tok), typ: typ, ds: ds}
				s := shardOf(key)
				p.buckets[s] = append(p.buckets[s], e)
			}
		}(lo, hi, p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	shards := make([][]relEntry, diffShards)
	for _, p := range parts {
		for s := range p.buckets {
			shards[s] = append(shards[s], p.buckets[s]...)
		}
	}
	return shards, nil
}

// diffNodeShard diffs one shard's node multisets, accumulating per-label
// counters into byLabel and returning the shard's entity totals.
func diffNodeShard(a, b []nodeEntry, byLabel map[string]Totals) Totals {
	var tot Totals
	groupA := map[string][]nodeEntry{}
	for _, e := range a {
		groupA[e.key] = append(groupA[e.key], e)
	}
	groupB := map[string][]nodeEntry{}
	for _, e := range b {
		groupB[e.key] = append(groupB[e.key], e)
	}
	count := func(labels []string, bump func(*Totals)) {
		for _, l := range labels {
			t := byLabel[l]
			bump(&t)
			byLabel[l] = t
		}
	}
	for key, ea := range groupA {
		eb := groupB[key]
		restA, restB := unmatchedNodes(ea, eb)
		// Paired leftovers changed; the excess was removed/added.
		m := min(len(restA), len(restB))
		tot.Changed += m
		for i := 0; i < m; i++ {
			count(restB[i].labels, func(t *Totals) { t.Changed++ })
		}
		tot.Removed += len(restA) - m
		for _, e := range restA[m:] {
			count(e.labels, func(t *Totals) { t.Removed++ })
		}
		tot.Added += len(restB) - m
		for _, e := range restB[m:] {
			count(e.labels, func(t *Totals) { t.Added++ })
		}
	}
	for key, eb := range groupB {
		if _, ok := groupA[key]; ok {
			continue
		}
		tot.Added += len(eb)
		for _, e := range eb {
			count(e.labels, func(t *Totals) { t.Added++ })
		}
	}
	return tot
}

// unmatchedNodes removes exact fingerprint matches (as multisets) and
// returns both leftovers sorted by fingerprint.
func unmatchedNodes(a, b []nodeEntry) (restA, restB []nodeEntry) {
	sort.Slice(a, func(i, j int) bool { return a[i].fp < a[j].fp })
	sort.Slice(b, func(i, j int) bool { return b[i].fp < b[j].fp })
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].fp == b[j].fp:
			i++
			j++
		case a[i].fp < b[j].fp:
			restA = append(restA, a[i])
			i++
		default:
			restB = append(restB, b[j])
			j++
		}
	}
	restA = append(restA, a[i:]...)
	restB = append(restB, b[j:]...)
	return restA, restB
}

// diffRelShard is diffNodeShard for relationships, grouping by type and
// provenance dataset.
func diffRelShard(a, b []relEntry, byType, byDS map[string]Totals) Totals {
	var tot Totals
	groupA := map[string][]relEntry{}
	for _, e := range a {
		groupA[e.key] = append(groupA[e.key], e)
	}
	groupB := map[string][]relEntry{}
	for _, e := range b {
		groupB[e.key] = append(groupB[e.key], e)
	}
	count := func(e relEntry, bump func(*Totals)) {
		t := byType[e.typ]
		bump(&t)
		byType[e.typ] = t
		d := byDS[e.ds]
		bump(&d)
		byDS[e.ds] = d
	}
	for key, ea := range groupA {
		eb := groupB[key]
		restA, restB := unmatchedRels(ea, eb)
		m := min(len(restA), len(restB))
		tot.Changed += m
		for i := 0; i < m; i++ {
			count(restB[i], func(t *Totals) { t.Changed++ })
		}
		tot.Removed += len(restA) - m
		for _, e := range restA[m:] {
			count(e, func(t *Totals) { t.Removed++ })
		}
		tot.Added += len(restB) - m
		for _, e := range restB[m:] {
			count(e, func(t *Totals) { t.Added++ })
		}
	}
	for key, eb := range groupB {
		if _, ok := groupA[key]; ok {
			continue
		}
		tot.Added += len(eb)
		for _, e := range eb {
			count(e, func(t *Totals) { t.Added++ })
		}
	}
	return tot
}

func unmatchedRels(a, b []relEntry) (restA, restB []relEntry) {
	sort.Slice(a, func(i, j int) bool { return a[i].fp < a[j].fp })
	sort.Slice(b, func(i, j int) bool { return b[i].fp < b[j].fp })
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].fp == b[j].fp:
			i++
			j++
		case a[i].fp < b[j].fp:
			restA = append(restA, a[i])
			i++
		default:
			restB = append(restB, b[j])
			j++
		}
	}
	restA = append(restA, a[i:]...)
	restB = append(restB, b[j:]...)
	return restA, restB
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
