package temporal

import (
	"fmt"

	"iyp/internal/cypher"
	"iyp/internal/graph"
)

// CALL temporal.diff({from: 3, to: 5}) YIELD kind, name, added, removed,
// changed — the generation-diff engine behind a query surface. `from` is
// required; `to` defaults to the generation the query runs against.
// Generations are pinned through ProcContext.Resolve, so both the
// in-memory retain window and the persisted history (when attached) are
// reachable. The stream is one row per group, totals first:
//
//	kind "total"   name "nodes" | "rels"
//	kind "label"   name — node label
//	kind "reltype" name — relationship type
//	kind "dataset" name — provenance dataset (reference_name)
func init() {
	cypher.RegisterProc(cypher.ProcSpec{
		Name: "temporal.diff",
		Cols: []string{"kind", "name", "added", "removed", "changed"},
		Help: "Diff two generations: nodes/relationships added, removed and changed, by label, reltype and dataset.",
		Impl: diffProc,
	})
}

func diffProc(pc cypher.ProcContext, cfg map[string]cypher.Val, emit func([]cypher.Val) error) error {
	from := cypher.CfgInt(cfg, "from", 0)
	if from <= 0 {
		return fmt.Errorf("temporal.diff: config key `from` (a generation number) is required")
	}
	to := cypher.CfgInt(cfg, "to", 0)
	workers := int(cypher.CfgInt(cfg, "workers", 0))
	if pc.Resolve == nil {
		return fmt.Errorf("temporal.diff: no generation resolver in this execution context (run through iyp.DB or the HTTP API)")
	}

	fromG, releaseFrom, err := pc.Resolve(uint64(from))
	if err != nil {
		return fmt.Errorf("temporal.diff: from: %w", err)
	}
	defer releaseFrom()
	toG := pc.Graph
	if to > 0 {
		g, release, err := pc.Resolve(uint64(to))
		if err != nil {
			return fmt.Errorf("temporal.diff: to: %w", err)
		}
		defer release()
		toG = g
	}

	res, err := Diff(pc.Ctx, fromG, toG, DiffOptions{Workers: workers})
	if err != nil {
		return err
	}
	row := func(kind, name string, t Totals) error {
		return emit([]cypher.Val{
			cypher.ScalarVal(graph.String(kind)),
			cypher.ScalarVal(graph.String(name)),
			cypher.ScalarVal(graph.Int(int64(t.Added))),
			cypher.ScalarVal(graph.Int(int64(t.Removed))),
			cypher.ScalarVal(graph.Int(int64(t.Changed))),
		})
	}
	if err := row("total", "nodes", res.Nodes); err != nil {
		return err
	}
	if err := row("total", "rels", res.Rels); err != nil {
		return err
	}
	for _, g := range res.ByLabel {
		if err := row("label", g.Name, Totals{g.Added, g.Removed, g.Changed}); err != nil {
			return err
		}
	}
	for _, g := range res.ByRelType {
		if err := row("reltype", g.Name, Totals{g.Added, g.Removed, g.Changed}); err != nil {
			return err
		}
	}
	for _, g := range res.ByDataset {
		if err := row("dataset", g.Name, Totals{g.Added, g.Removed, g.Changed}); err != nil {
			return err
		}
	}
	return nil
}
