package temporal

import (
	"os"
	"strings"
	"sync"
	"testing"

	"iyp/internal/graph"
)

// histStore writes n distinguishable generations (a single AS node whose
// asn is the sequence number) into a fresh store with the given retention.
func histStore(t *testing.T, n, keep int) *graph.Store {
	t.Helper()
	st, err := graph.OpenStore(t.TempDir(), graph.StoreOptions{Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := st.Save(genGraph(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func genGraph(seq int64) *graph.Graph {
	g := graph.New()
	g.AddNode([]string{"AS"}, graph.Props{"asn": graph.Int(seq)})
	return g
}

// asnOf reads back the marker property that identifies which generation a
// materialized graph came from.
func asnOf(t *testing.T, g *graph.Graph) int64 {
	t.Helper()
	var got int64 = -1
	g.EachNode(func(id graph.NodeID) bool {
		if v, ok := g.NodeProp(id, "asn").AsInt(); ok {
			got = v
		}
		return true
	})
	return got
}

func TestHistoryMaterializesAndCachesGenerations(t *testing.T) {
	st := histStore(t, 3, 3)
	h := NewHistory(st, 2)

	g, release, err := h.AcquireHistorical(1)
	if err != nil {
		t.Fatal(err)
	}
	if asnOf(t, g) != 1 {
		t.Fatalf("generation 1 materialized wrong content (marker %d)", asnOf(t, g))
	}
	release()

	// Second acquire is a cache hit, not a second disk load.
	g2, release2, err := h.AcquireHistorical(1)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Error("cache hit returned a different graph instance")
	}
	release2()
	if s := h.Stats(); s.Loads != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 load and 1 hit", s)
	}

	if _, _, err := h.AcquireHistorical(99); err == nil || !strings.Contains(err.Error(), "not present") {
		t.Fatalf("acquiring absent generation: err = %v", err)
	}
}

func TestHistoryLRUPinDrainEviction(t *testing.T) {
	st := histStore(t, 3, 3)
	h := NewHistory(st, 1)

	g1, release1, err := h.AcquireHistorical(1)
	if err != nil {
		t.Fatal(err)
	}
	// Generation 1 is pinned: materializing generation 2 overshoots the
	// budget of 1 instead of evicting a graph someone is reading.
	_, release2, err := h.AcquireHistorical(2)
	if err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.Resident != 2 || s.Pinned != 2 {
		t.Fatalf("stats = %+v while both pinned, want overshoot to 2 resident", s)
	}

	// Pin drain: releasing a pin re-runs eviction; the unpinned entry is
	// the only eligible victim, so the budget holds again — and the still
	// pinned generation 1 survives even though it is the older one.
	release2()
	if s := h.Stats(); s.Resident != 1 || s.Evictions == 0 {
		t.Fatalf("after pin drain: stats = %+v, want 1 resident after eviction", s)
	}
	g1b, release1b, err := h.AcquireHistorical(1)
	if err != nil {
		t.Fatal(err)
	}
	if g1b != g1 {
		t.Error("pinned generation was evicted: re-acquire returned a new instance")
	}
	release1b()
	release1()
}

func TestHistoryProtectsResidentGenerationsFromPruning(t *testing.T) {
	st := histStore(t, 2, 2) // keep-2: the next save prunes the oldest unprotected
	h := NewHistory(st, 1)

	g, release, err := h.AcquireHistorical(1)
	if err != nil {
		t.Fatal(err)
	}
	path := ""
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	for _, gen := range gens {
		if gen.Seq == 1 {
			path = gen.Path
		}
	}
	if path == "" {
		t.Fatal("generation 1 not listed while materialized")
	}

	// Publish more generations: keep-2 wants generation 1 gone, but it is
	// resident in the history cache — the snapshot file must survive.
	for i := 3; i <= 5; i++ {
		if _, err := st.Save(genGraph(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("pinned generation's snapshot deleted by pruning: %v", err)
	}
	if asnOf(t, g) != 1 {
		t.Fatal("materialized generation mutated")
	}

	// Evict generation 1 (release, then materialize another so the LRU
	// budget of 1 pushes it out): the next save may prune it.
	release()
	_, release2, err := h.AcquireHistorical(5)
	if err != nil {
		t.Fatal(err)
	}
	release2()
	if _, err := st.Save(genGraph(6)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("unprotected generation 1 still on disk after pruning (stat err = %v)", err)
	}
}

func TestHistorySingleFlightLoads(t *testing.T) {
	st := histStore(t, 1, 3)
	h := NewHistory(st, 2)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, release, err := h.AcquireHistorical(1)
			if err != nil {
				t.Error(err)
				return
			}
			if asnOf(t, g) != 1 {
				t.Error("wrong generation materialized")
			}
			release()
		}()
	}
	wg.Wait()
	if s := h.Stats(); s.Loads != 1 {
		t.Fatalf("loads = %d, want 1 (single-flight)", s.Loads)
	}
}

// TestStoreOpenFallsBackWithHistoryResident: Store.Open's newest-good
// fallback must keep working while the history cache holds older
// generations resident (and therefore protected from pruning).
func TestStoreOpenFallsBackWithHistoryResident(t *testing.T) {
	st := histStore(t, 3, 3)
	h := NewHistory(st, 2)

	_, release, err := h.AcquireHistorical(1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Damage the newest generation on disk; Open must fall back to 2.
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if gens[0].Seq != 3 {
		t.Fatalf("newest generation = %d, want 3", gens[0].Seq)
	}
	if err := os.WriteFile(gens[0].Path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	g, report, err := st.Open()
	if err != nil {
		t.Fatal(err)
	}
	if report.Loaded.Seq != 2 || asnOf(t, g) != 2 {
		t.Fatalf("fallback loaded generation %d (marker %d), want 2", report.Loaded.Seq, asnOf(t, g))
	}
	if len(report.Skipped) != 1 || report.Skipped[0].Seq != 3 {
		t.Fatalf("skip report = %+v", report.Skipped)
	}
	// And the resident historical generation is still readable.
	g1, release1, err := h.AcquireHistorical(1)
	if err != nil {
		t.Fatal(err)
	}
	defer release1()
	if asnOf(t, g1) != 1 {
		t.Fatal("resident generation unreadable after fallback open")
	}
}
