package server

// Tests for the replica-facing surface: GET /v1/ready, the iyp_replica_*
// metrics family, and the cost-estimate calibration histogram.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"iyp/internal/graph"
	"iyp/internal/replica"
)

func TestReadySingleProcess(t *testing.T) {
	srv := newTestServer(testGraph())
	w := get(t, srv, "/v1/ready")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp readyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Generation != 1 {
		t.Fatalf("ready = %+v", resp)
	}
}

// newReplicaServer builds a follower over a fresh store plus a server
// configured as a replica over it. The follower is not started: tests
// drive Poll directly for determinism.
func newReplicaServer(t *testing.T, cfg replica.Config) (*graph.Store, *replica.Follower, *Server) {
	t.Helper()
	st, err := graph.OpenStore(t.TempDir(), graph.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mv := graph.NewMVStore(graph.New())
	f := replica.New(st, mv, cfg)
	return st, f, New(mv, Config{Replica: f})
}

func TestReadyReplicaLifecycle(t *testing.T) {
	st, f, srv := newReplicaServer(t, replica.Config{})

	// Before the first good load: 503, not_ready.
	w := get(t, srv, "/v1/ready")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-load status = %d: %s", w.Code, w.Body)
	}
	var resp readyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "not_ready" {
		t.Fatalf("pre-load ready = %+v", resp)
	}

	// After the follower serves a generation: 200 ok, builder seq exposed.
	if _, err := st.Save(testGraph()); err != nil {
		t.Fatal(err)
	}
	if out := f.Poll(); !out.Loaded {
		t.Fatalf("poll = %+v", out)
	}
	w = get(t, srv, "/v1/ready")
	if w.Code != http.StatusOK {
		t.Fatalf("post-load status = %d: %s", w.Code, w.Body)
	}
	resp = readyResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.BuilderGeneration != 1 || resp.Generation != 2 {
		t.Fatalf("post-load ready = %+v", resp)
	}

	// And the swapped generation actually serves queries.
	qw := post(t, srv, "/v1/query", `{"query": "MATCH (x:AS) RETURN count(x) AS n"}`)
	if qw.Code != http.StatusOK || !strings.Contains(qw.Body.String(), `"n":2`) {
		t.Fatalf("query on replica: %d %s", qw.Code, qw.Body)
	}
}

func TestReadyReplicaDegraded(t *testing.T) {
	st, err := graph.OpenStore(t.TempDir(), graph.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mv := graph.NewMVStore(graph.New())
	// A follower that was last fed an hour ago (simulated clock).
	now := time.Unix(5000, 0)
	f := replica.New(st, mv, replica.Config{
		StaleAfter: time.Minute,
		Now:        func() time.Time { return now },
	})
	srv := New(mv, Config{Replica: f})

	if _, err := st.Save(testGraph()); err != nil {
		t.Fatal(err)
	}
	f.Poll()
	now = now.Add(time.Hour)

	w := get(t, srv, "/v1/ready")
	if w.Code != http.StatusOK {
		t.Fatalf("degraded status = %d (degraded replicas keep serving): %s", w.Code, w.Body)
	}
	var resp readyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "degraded" || resp.AgeSeconds != 3600 {
		t.Fatalf("degraded ready = %+v", resp)
	}
}

func TestMetricsReplicaFamily(t *testing.T) {
	st, f, srv := newReplicaServer(t, replica.Config{})
	if _, err := st.Save(testGraph()); err != nil {
		t.Fatal(err)
	}
	f.Poll()

	body := get(t, srv, "/metrics").Body.String()
	for _, want := range []string{
		"iyp_replica_last_good_generation 1",
		"iyp_replica_generation_age_seconds",
		`iyp_replica_reloads_total{result="ok"} 1`,
		`iyp_replica_reloads_total{result="corrupt"} 0`,
		"iyp_replica_polls_total 1",
		"iyp_replica_ready 1",
		"iyp_replica_degraded 0",
		"iyp_replica_dict_strings_total",
		"iyp_replica_dict_reused_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestMetricsOmitReplicaFamilyWhenSingleProcess(t *testing.T) {
	srv := newTestServer(testGraph())
	body := get(t, srv, "/metrics").Body.String()
	if strings.Contains(body, "iyp_replica_") {
		t.Fatalf("single-process metrics expose replica family:\n%s", body)
	}
}

func TestMetricsCostEstimateRatio(t *testing.T) {
	srv := newTestServer(testGraph())

	// A label-count query: the estimate and the actual are both derived
	// from the same statistics, so the ratio lands in a finite bucket.
	w := post(t, srv, "/v1/query", `{"query": "MATCH (x:AS) RETURN x.asn AS asn"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body)
	}

	body := get(t, srv, "/metrics").Body.String()
	if !strings.Contains(body, "iyp_cost_estimate_ratio_bucket") {
		t.Fatalf("metrics missing the cost-estimate histogram:\n%s", body)
	}
	if !strings.Contains(body, "iyp_cost_estimate_ratio_count 1") {
		t.Fatalf("ratio histogram did not observe the query:\n%s", body)
	}
	// The +Inf bucket always closes the histogram at the total count.
	if !strings.Contains(body, `iyp_cost_estimate_ratio_bucket{le="+Inf"} 1`) {
		t.Fatalf("ratio histogram +Inf bucket wrong:\n%s", body)
	}
}

func TestMetricsCostEstimateRatioSkipsAnalytics(t *testing.T) {
	srv := newTestServer(testGraph())
	w := post(t, srv, "/v1/query", `{"query": "CALL algo.wcc()"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("analytics query: %d %s", w.Code, w.Body)
	}
	body := get(t, srv, "/metrics").Body.String()
	if !strings.Contains(body, "iyp_cost_estimate_ratio_count 0") {
		t.Fatalf("analytics query should not feed the ratio histogram:\n%s", body)
	}
}
