package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestAdmissionQueueCancelReleasesSlot is the client-disconnect hygiene
// check: a request cancelled while queued must leave no queue position or
// slot behind, and the capacity must be fully usable afterwards.
func TestAdmissionQueueCancelReleasesSlot(t *testing.T) {
	a := newAdmission(1, 4, time.Minute, 0, 0, time.Minute, time.Minute)
	if !a.tryAcquire() {
		t.Fatal("first acquire should succeed")
	}

	const waiters = 3
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, waiters)
	var started sync.WaitGroup
	started.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			started.Done()
			errs <- a.acquire(ctx)
		}()
	}
	started.Wait()
	// Wait until all waiters are registered in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for a.queued.Load() != waiters {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want %d", a.queued.Load(), waiters)
		}
		time.Sleep(time.Millisecond)
	}

	cancel()
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("queued waiter: got %v, want context.Canceled", err)
		}
	}
	if q := a.queued.Load(); q != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", q)
	}

	a.release()
	if a.inflight() != 0 {
		t.Fatalf("inflight = %d after release, want 0", a.inflight())
	}
	// Full capacity must be reusable: slot plus queue.
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after drain: %v", err)
	}
	a.release()
}

func TestAdmissionQueueFullAndTimeout(t *testing.T) {
	// queueCap 0 disables queueing entirely.
	a := newAdmission(1, 0, time.Minute, 0, 0, time.Minute, time.Minute)
	if !a.tryAcquire() {
		t.Fatal("first acquire should succeed")
	}
	if err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("got %v, want errQueueFull", err)
	}
	a.release()

	// A bounded queue rejects the waiter beyond capacity and times out
	// waiters that overstay maxWait.
	a = newAdmission(1, 1, 20*time.Millisecond, 0, 0, time.Minute, time.Minute)
	if !a.tryAcquire() {
		t.Fatal("first acquire should succeed")
	}
	first := make(chan error, 1)
	go func() { first <- a.acquire(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for a.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("over-capacity waiter: got %v, want errQueueFull", err)
	}
	if err := <-first; !errors.Is(err, errQueueTimeout) {
		t.Fatalf("queued waiter: got %v, want errQueueTimeout", err)
	}
	if q := a.queued.Load(); q != 0 {
		t.Fatalf("queued = %d, want 0", q)
	}
}

func TestClientBucketsTakeRefund(t *testing.T) {
	cb := newClientBuckets(1, 2) // 1 token/s, burst 2
	now := time.Unix(1000, 0)
	cb.now = func() time.Time { return now }

	if ok, _ := cb.take("a"); !ok {
		t.Fatal("take 1 should succeed (burst)")
	}
	if ok, _ := cb.take("a"); !ok {
		t.Fatal("take 2 should succeed (burst)")
	}
	ok, retry := cb.take("a")
	if ok {
		t.Fatal("take 3 should fail: bucket empty")
	}
	if retry <= 0 || retry > 2*time.Second {
		t.Fatalf("retryAfter = %v, want (0, 2s]", retry)
	}

	// A refund restores one request without waiting.
	cb.refund("a")
	if ok, _ := cb.take("a"); !ok {
		t.Fatal("take after refund should succeed")
	}

	// Time refills at the configured rate.
	now = now.Add(1500 * time.Millisecond)
	if ok, _ := cb.take("a"); !ok {
		t.Fatal("take after refill should succeed")
	}

	// Separate clients have separate budgets.
	if ok, _ := cb.take("b"); !ok {
		t.Fatal("fresh client should have a full bucket")
	}
}

func TestClientBucketsEviction(t *testing.T) {
	cb := newClientBuckets(1000, 1)
	now := time.Unix(1000, 0)
	cb.now = func() time.Time { return now }
	for i := 0; i < maxTrackedClients; i++ {
		cb.take(string(rune('a')) + time.Unix(int64(i), 0).String())
	}
	if len(cb.m) != maxTrackedClients {
		t.Fatalf("tracked %d clients, want %d", len(cb.m), maxTrackedClients)
	}
	// All buckets refill to full after a second at 1000 tokens/s, so the
	// next new client evicts them instead of growing the map.
	now = now.Add(time.Second)
	cb.take("fresh")
	if len(cb.m) > 1 {
		t.Fatalf("map holds %d buckets after eviction, want 1", len(cb.m))
	}
}

func TestQuarantineTTL(t *testing.T) {
	q := newQuarantine(time.Minute)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	if _, blocked := q.blocked("MATCH (n) RETURN n"); blocked {
		t.Fatal("fresh quarantine should block nothing")
	}
	q.trip("MATCH (n) RETURN n")
	left, blocked := q.blocked("MATCH (n) RETURN n")
	if !blocked {
		t.Fatal("tripped query should be blocked")
	}
	if left <= 0 || left > time.Minute {
		t.Fatalf("remaining TTL = %v, want (0, 1m]", left)
	}
	if _, blocked := q.blocked("RETURN 1"); blocked {
		t.Fatal("other queries must not be blocked")
	}

	now = now.Add(61 * time.Second)
	if _, blocked := q.blocked("MATCH (n) RETURN n"); blocked {
		t.Fatal("quarantine should expire after the TTL")
	}
	if q.size() != 0 {
		t.Fatalf("size = %d after expiry check, want 0", q.size())
	}
}

func TestQuarantineBounded(t *testing.T) {
	q := newQuarantine(time.Hour)
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }
	for i := 0; i < maxQuarantined+50; i++ {
		q.trip(time.Unix(int64(i), 0).String())
	}
	if n := q.size(); n > maxQuarantined {
		t.Fatalf("quarantine holds %d entries, cap is %d", n, maxQuarantined)
	}
}

func TestWatchdogScanOverdue(t *testing.T) {
	a := newAdmission(4, 0, time.Minute, 0, 0, time.Minute, time.Second)
	var cancelled atomic32
	deadline := time.Now().Add(-2 * time.Second) // already past deadline+grace
	// track itself runs an opportunistic scan, which must catch this one.
	id := a.track(deadline, func() { cancelled.add(1) })
	if cancelled.load() == 0 {
		t.Fatal("watchdog never called cancel")
	}
	// A runaway is killed and counted exactly once.
	if again := a.scanOverdue(time.Now()); again != 0 {
		t.Fatalf("second scan killed %d, want 0", again)
	}
	if got := a.watchdogKills.Load(); got != 1 {
		t.Fatalf("watchdogKills = %d, want 1", got)
	}
	a.untrack(id)

	// A query within deadline+grace is left alone.
	id = a.track(time.Now().Add(time.Minute), func() { t.Error("healthy query cancelled") })
	if killed := a.scanOverdue(time.Now()); killed != 0 {
		t.Fatalf("healthy scan killed %d, want 0", killed)
	}
	a.untrack(id)
}

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest("POST", "/v1/query", nil)
	r.RemoteAddr = "192.0.2.7:4242"
	if got := clientKey(r); got != "192.0.2.7" {
		t.Fatalf("clientKey = %q, want 192.0.2.7", got)
	}
	r.Header.Set("X-Forwarded-For", " 203.0.113.9 , 10.0.0.1")
	if got := clientKey(r); got != "203.0.113.9" {
		t.Fatalf("clientKey with XFF = %q, want 203.0.113.9", got)
	}
}

func TestLatencyRingP99(t *testing.T) {
	var r latencyRing
	if r.p99() != 0 {
		t.Fatal("empty ring should report 0")
	}
	for i := 0; i < 100; i++ {
		r.observe(time.Duration(i) * time.Millisecond)
	}
	if p := r.p99(); p < 90*time.Millisecond {
		t.Fatalf("p99 = %v, want >= 90ms", p)
	}
}

func TestDegradeLevelLadder(t *testing.T) {
	srv := newTestServer(testGraph(), Config{MaxConcurrent: 4, QueueDepth: 4})
	if lvl := srv.degradeLevel(); lvl != 0 {
		t.Fatalf("idle level = %d, want 0", lvl)
	}
	// 2/4 slots in use → 50% utilization → level 1.
	srv.adm.slots <- struct{}{}
	srv.adm.slots <- struct{}{}
	if lvl := srv.degradeLevel(); lvl != 1 {
		t.Fatalf("level at 50%% = %d, want 1", lvl)
	}
	srv.adm.slots <- struct{}{}
	if lvl := srv.degradeLevel(); lvl != 2 {
		t.Fatalf("level at 75%% = %d, want 2", lvl)
	}
	srv.adm.slots <- struct{}{}
	if lvl := srv.degradeLevel(); lvl != 3 {
		t.Fatalf("level at 100%% = %d, want 3", lvl)
	}
	for i := 0; i < 4; i++ {
		<-srv.adm.slots
	}
	// Level-2 tightening: the cost threshold shrinks under heavier load.
	if t2, t0 := srv.costThreshold(2), srv.costThreshold(0); t2 >= t0 {
		t.Fatalf("costThreshold(2) = %v not below costThreshold(0) = %v", t2, t0)
	}

	// DisableGovernance pins the ladder at 0 regardless of load.
	off := newTestServer(testGraph(), Config{MaxConcurrent: 1, DisableGovernance: true})
	off.adm.slots <- struct{}{}
	if lvl := off.degradeLevel(); lvl != 0 {
		t.Fatalf("ungoverned level = %d, want 0", lvl)
	}
	<-off.adm.slots
}

// atomic32 is a tiny test-local counter safe for use from the watchdog.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
