package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control and resource governance for the public query API.
// Between decoding a request and executing it, the server now runs an
// admission pipeline instead of a bare semaphore:
//
//	per-client token bucket  → 429 budget_exhausted (+ Retry-After)
//	plan quarantine          → 503 plan_quarantined (+ Retry-After)
//	degrade ladder           → 503 overloaded for queries too expensive
//	                           for the current load level
//	bounded admission queue  → wait (deadline- and cancel-aware), or
//	                           503 overloaded when the queue is full
//
// The degrade ladder is driven by a load index computed from executing
// slots, queue depth and the recent latency tail:
//
//	level 0  everything admitted
//	level 1  CALL algo.* and above-threshold cost estimates shed
//	level 2  additionally, parallel matches forced serial
//	level 3  only index-only anchored queries admitted
//
// A watchdog registry tracks every executing query with its deadline and
// cancel function; queries overstaying deadline+grace are hard-cancelled
// (their context is cancelled again and the kill counted — a worker that
// ignores cancellation is surfaced rather than silently hogging a slot).
// The scan runs on demand from the admission, health and metrics paths, so
// governance adds no background goroutine to leak.

// Shed reasons, used as the metrics label and mapped onto response codes.
const (
	shedReasonBudget     = "budget"     // per-client token bucket empty (429)
	shedReasonQueueFull  = "queue_full" // admission queue at capacity (503)
	shedReasonCost       = "cost"       // estimate above the degrade threshold (503)
	shedReasonAnalytics  = "analytics"  // CALL algo.* shed under load (503)
	shedReasonIndexOnly  = "index_only" // non-index-anchored query at level 3 (503)
	shedReasonQuarantine = "quarantine" // plan tripped the panic breaker (503)
)

// shedReasons fixes the metrics exposition order (an array so the metrics
// counters can be sized from it at compile time).
var shedReasons = [...]string{
	shedReasonBudget, shedReasonQueueFull, shedReasonCost,
	shedReasonAnalytics, shedReasonIndexOnly, shedReasonQuarantine,
}

var (
	errQueueFull    = errors.New("admission queue is full")
	errQueueTimeout = errors.New("admission queue wait exceeded the limit")
)

// admission is the per-server governance state.
type admission struct {
	slots    chan struct{} // executing-query slots (cap = MaxConcurrent)
	queueCap int           // waiters allowed beyond the slots
	maxWait  time.Duration // longest a request may sit queued
	queued   atomic.Int64  // current waiters

	buckets *clientBuckets // nil = per-client budgets disabled
	quar    *quarantine
	lat     *latencyRing

	level atomic.Int64 // last computed degrade level (gauge)

	// Watchdog registry of executing queries.
	wmu           sync.Mutex
	running       map[uint64]*runningQuery
	nextID        uint64
	grace         time.Duration
	watchdogKills atomic.Uint64
}

type runningQuery struct {
	deadline time.Time
	cancel   context.CancelFunc
	killed   bool
}

func newAdmission(slots, queueCap int, maxWait time.Duration, clientQPS, clientBurst float64, quarantineFor, grace time.Duration) *admission {
	a := &admission{
		slots:    make(chan struct{}, slots),
		queueCap: queueCap,
		maxWait:  maxWait,
		quar:     newQuarantine(quarantineFor),
		lat:      &latencyRing{},
		running:  make(map[uint64]*runningQuery),
		grace:    grace,
	}
	if clientQPS > 0 {
		a.buckets = newClientBuckets(clientQPS, clientBurst)
	}
	return a
}

// tryAcquire takes an executing slot without waiting.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// acquire takes an executing slot, queueing up to queueCap waiters for at
// most maxWait. A context cancelled while queued returns immediately and
// releases the queue position — the caller refunds any budget tokens.
func (a *admission) acquire(ctx context.Context) error {
	if a.tryAcquire() {
		return nil
	}
	if a.queueCap <= 0 {
		return errQueueFull
	}
	if int(a.queued.Add(1)) > a.queueCap {
		a.queued.Add(-1)
		return errQueueFull
	}
	defer a.queued.Add(-1)
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return errQueueTimeout
	}
}

func (a *admission) release() { <-a.slots }

// inflight is the number of executing queries (slots in use).
func (a *admission) inflight() int { return len(a.slots) }

// track registers an executing query with the watchdog and opportunistically
// scans for runaways.
func (a *admission) track(deadline time.Time, cancel context.CancelFunc) uint64 {
	a.wmu.Lock()
	a.nextID++
	id := a.nextID
	a.running[id] = &runningQuery{deadline: deadline, cancel: cancel}
	a.wmu.Unlock()
	a.scanOverdue(time.Now())
	return id
}

func (a *admission) untrack(id uint64) {
	a.wmu.Lock()
	delete(a.running, id)
	a.wmu.Unlock()
}

// scanOverdue hard-cancels queries that overstayed deadline+grace. The
// normal deadline already fires through the context; a query still running
// this far past it is ignoring cancellation, so the watchdog cancels again
// (freeing any descendants that do listen) and counts the kill for the
// operator. Each runaway is killed and counted once.
func (a *admission) scanOverdue(now time.Time) int {
	a.wmu.Lock()
	defer a.wmu.Unlock()
	killed := 0
	for _, rq := range a.running {
		if !rq.killed && now.After(rq.deadline.Add(a.grace)) {
			rq.killed = true
			rq.cancel()
			a.watchdogKills.Add(1)
			killed++
		}
	}
	return killed
}

// --- per-client token buckets ---

// clientBuckets rate-limits query admission per client key (the remote IP,
// or the first X-Forwarded-For hop when present) with standard token
// buckets: rate tokens/second, burst capacity, one token per request.
type clientBuckets struct {
	mu    sync.Mutex
	m     map[string]*bucket
	rate  float64
	burst float64
	now   func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxTrackedClients bounds the bucket map; when full, stale full buckets
// are evicted (a full bucket carries no throttling state worth keeping).
const maxTrackedClients = 4096

func newClientBuckets(rate, burst float64) *clientBuckets {
	if burst <= 0 {
		burst = 2 * rate
		if burst < 10 {
			burst = 10
		}
	}
	return &clientBuckets{m: make(map[string]*bucket), rate: rate, burst: burst, now: time.Now}
}

// take spends one token for key. When the bucket is empty it reports the
// duration after which one token will be available.
func (cb *clientBuckets) take(key string) (ok bool, retryAfter time.Duration) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	now := cb.now()
	b := cb.m[key]
	if b == nil {
		if len(cb.m) >= maxTrackedClients {
			cb.evictLocked(now)
		}
		b = &bucket{tokens: cb.burst, last: now}
		cb.m[key] = b
	}
	cb.refillLocked(b, now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / cb.rate * float64(time.Second))
}

// refund returns one token to key's bucket, used when an admitted request
// is abandoned before execution (client disconnected while queued).
func (cb *clientBuckets) refund(key string) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if b := cb.m[key]; b != nil {
		cb.refillLocked(b, cb.now())
		if b.tokens += 1; b.tokens > cb.burst {
			b.tokens = cb.burst
		}
	}
}

func (cb *clientBuckets) refillLocked(b *bucket, now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * cb.rate
		if b.tokens > cb.burst {
			b.tokens = cb.burst
		}
	}
	b.last = now
}

func (cb *clientBuckets) evictLocked(now time.Time) {
	for k, b := range cb.m {
		cb.refillLocked(b, now)
		if b.tokens >= cb.burst {
			delete(cb.m, k)
		}
	}
}

// clientKey identifies the client for budget purposes: the first
// X-Forwarded-For hop when present (the instance sits behind a proxy),
// otherwise the remote IP.
func clientKey(r *http.Request) string {
	if xf := r.Header.Get("X-Forwarded-For"); xf != "" {
		if i := strings.IndexByte(xf, ','); i >= 0 {
			xf = xf[:i]
		}
		return strings.TrimSpace(xf)
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// --- plan quarantine ---

// quarantine is the panic circuit breaker: a query text whose execution
// panicked is blocked for ttl, so a crashing plan cannot be replayed in a
// tight retry loop while the underlying bug stands.
type quarantine struct {
	mu    sync.Mutex
	until map[string]time.Time
	ttl   time.Duration
	trips atomic.Uint64
	now   func() time.Time // test hook
}

// maxQuarantined bounds the map; beyond it the oldest entries are evicted
// (the breaker is a brake, not a ledger).
const maxQuarantined = 256

func newQuarantine(ttl time.Duration) *quarantine {
	return &quarantine{until: make(map[string]time.Time), ttl: ttl, now: time.Now}
}

// blocked reports whether text is quarantined and for how much longer.
func (q *quarantine) blocked(text string) (time.Duration, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.until[text]
	if !ok {
		return 0, false
	}
	if left := t.Sub(q.now()); left > 0 {
		return left, true
	}
	delete(q.until, text)
	return 0, false
}

// trip quarantines text for the configured ttl.
func (q *quarantine) trip(text string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	if len(q.until) >= maxQuarantined {
		for k, t := range q.until {
			if !t.After(now) {
				delete(q.until, k)
			}
		}
		for k := range q.until {
			if len(q.until) < maxQuarantined {
				break
			}
			delete(q.until, k)
		}
	}
	q.until[text] = now.Add(q.ttl)
	q.trips.Add(1)
}

func (q *quarantine) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.until)
}

// --- recent-latency ring ---

// latencyRing keeps the most recent executed-query latencies for the load
// index's p99 term. Sized so the quantile is cheap to compute on demand.
type latencyRing struct {
	mu  sync.Mutex
	buf [128]time.Duration
	n   int // filled entries
	i   int // next write position
}

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.i] = d
	r.i = (r.i + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// p99 returns the 99th-percentile of the retained window (0 when fewer
// than a handful of samples exist — no tail signal yet).
func (r *latencyRing) p99() time.Duration {
	r.mu.Lock()
	n := r.n
	tmp := make([]time.Duration, n)
	copy(tmp, r.buf[:n])
	r.mu.Unlock()
	if n < 8 {
		return 0
	}
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	idx := (99*n - 1) / 100
	if idx >= n {
		idx = n - 1
	}
	return tmp[idx]
}

// --- degrade ladder ---

// degradeLevel computes the current level from slot utilization, queue
// depth and the recent latency tail, and records it for the metrics gauge.
func (s *Server) degradeLevel() int {
	if s.cfg.DisableGovernance {
		return 0
	}
	util := float64(s.adm.inflight()) / float64(cap(s.adm.slots))
	if s.adm.queueCap > 0 {
		if qu := float64(s.adm.queued.Load()) / float64(s.adm.queueCap); qu > util {
			util = qu
		}
	}
	level := 0
	switch {
	case util >= 0.9:
		level = 3
	case util >= 0.75:
		level = 2
	case util >= 0.5:
		level = 1
	}
	// A saturated latency tail bumps the ladder one rung even when slots
	// look free: long-running queries occupy few slots but ruin everyone's
	// p99.
	if level < 3 && s.adm.lat.p99() > 2*s.cfg.SlowQuery {
		level++
	}
	s.adm.level.Store(int64(level))
	return level
}

// costThreshold is the estimate above which a query counts as expensive for
// the degrade ladder: Config.MaxQueryCost, or one full pass over the graph
// by default. Higher levels tighten it.
func (s *Server) costThreshold(level int) float64 {
	t := s.cfg.MaxQueryCost
	if t <= 0 {
		g := s.st.Current()
		t = float64(g.NumNodes() + g.NumRels())
		if t < 1000 {
			t = 1000
		}
	}
	if level >= 2 {
		t /= 8
	}
	return t
}

// retrySeconds renders a Retry-After value: at least 1s, rounded up.
func retrySeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
