// Package server implements the HTTP query API of the public IYP instance
// (paper §3.1): a JSON endpoint for Cypher queries plus schema and
// statistics endpoints. It is the reproduction's equivalent of the Neo4j
// HTTP API the paper's public deployment exposes.
package server

import (
	"encoding/json"
	"net/http"
	"time"

	"iyp/internal/cypher"
	"iyp/internal/graph"
	"iyp/internal/ontology"
)

// Server serves read-only query access to a graph.
type Server struct {
	g   *graph.Graph
	mux *http.ServeMux
	// MaxRows caps the number of rows returned per query (0 = 100000).
	MaxRows int
}

// New builds the API handler.
func New(g *graph.Graph) *Server {
	s := &Server{g: g, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /db/query", s.handleQuery)
	s.mux.HandleFunc("POST /db/explain", s.handleExplain)
	s.mux.HandleFunc("GET /db/schema", s.handleSchema)
	s.mux.HandleFunc("GET /db/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type queryRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params"`
}

type queryResponse struct {
	Columns []string         `json:"columns"`
	Rows    []map[string]any `json:"rows"`
	Count   int              `json:"count"`
	TookMS  int64            `json:"took_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid request body: " + err.Error()})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing query"})
		return
	}
	params := map[string]graph.Value{}
	for k, v := range req.Params {
		params[k] = graph.Of(normalizeParam(v))
	}
	t0 := time.Now()
	res, err := cypher.Run(s.g, req.Query, params)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	maxRows := s.MaxRows
	if maxRows <= 0 {
		maxRows = 100000
	}
	rows := res.Native()
	if len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Columns: res.Columns,
		Rows:    rows,
		Count:   res.Len(),
		TookMS:  time.Since(t0).Milliseconds(),
	})
}

// normalizeParam converts JSON numbers (float64) with integral values to
// ints, matching how Cypher parameters behave in practice.
func normalizeParam(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
	case []any:
		for i, e := range x {
			x[i] = normalizeParam(e)
		}
	}
	return v
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid request body: " + err.Error()})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing query"})
		return
	}
	plan, err := cypher.Explain(s.g, req.Query)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan})
}

type schemaResponse struct {
	Entities      []ontology.EntityDef `json:"entities"`
	Relationships []ontology.RelDef    `json:"relationships"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, schemaResponse{
		Entities:      ontology.Entities(),
		Relationships: ontology.Relationships(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.g.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
