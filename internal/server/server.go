// Package server implements the HTTP query API of the public IYP instance
// (paper §3.1): a JSON endpoint for Cypher queries plus schema, statistics
// and metrics endpoints. It is the reproduction's equivalent of the Neo4j
// HTTP API the paper's public deployment exposes, hardened for arbitrary
// user Cypher under heavy load: every query runs under a deadline and a
// row budget, a concurrency limiter sheds load instead of queueing it, a
// plan cache parses each distinct query text once, and GET /metrics
// exposes the serving counters.
//
// The server reads through the MVCC generation store: every query pins one
// immutable generation for its whole execution — lock-free reads, no
// torn results while ingestion publishes new generations — and clients can
// pin an explicit generation across requests with the "generation" request
// field (GET /v1/generations lists what is available). The API is
// read-only; write queries are rejected with code "read_only".
//
// Endpoints are versioned under /v1/ (POST /v1/query, POST /v1/explain,
// GET /v1/schema, GET /v1/stats, GET /v1/generations); the original /db/*
// paths remain as deprecated aliases for existing clients — they emit
// Deprecation/Sunset headers and can be disabled entirely with
// Config.DisableLegacy (iyp-serve -legacy=false), turning them into 410s.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"iyp/internal/cypher"
	"iyp/internal/graph"
	"iyp/internal/ontology"
	"iyp/internal/replica"
	"iyp/internal/temporal"
)

// Config tunes the serving layer. The zero value serves with production
// defaults; see the field comments for each.
type Config struct {
	// Cache is the plan cache to use (nil = a fresh cache of
	// cypher.DefaultPlanCacheSize entries). Sharing one cache between
	// the HTTP server and embedded DB queries maximizes hit rate.
	Cache *cypher.PlanCache
	// DefaultTimeout bounds queries that don't request their own
	// timeout_ms (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms field (0 = 2m).
	MaxTimeout time.Duration
	// DefaultMaxRows bounds result rows when the request doesn't set
	// max_rows (0 = 100000).
	DefaultMaxRows int
	// HardMaxRows caps the per-request max_rows field (0 = 1000000).
	HardMaxRows int
	// MaxConcurrent bounds queries executing at once; excess requests
	// queue up to QueueDepth, then shed with 503 (0 = 64).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot beyond
	// MaxConcurrent (0 = 2×MaxConcurrent; < 0 disables queueing — at
	// capacity requests shed immediately).
	QueueDepth int
	// MaxQueueWait bounds how long a request may wait queued before it is
	// shed with 503 + Retry-After (0 = 2s).
	MaxQueueWait time.Duration
	// ClientQPS is the per-client sustained admission rate (token bucket
	// keyed by client IP / first X-Forwarded-For hop). 0 disables
	// per-client budgets.
	ClientQPS float64
	// ClientBurst is the bucket capacity for ClientQPS (0 = max(10,
	// 2×ClientQPS)).
	ClientBurst float64
	// MaxQueryMem bounds the memory one query may materialize (rows,
	// aggregation buffers, sort keys); exceeding it aborts the query with
	// code "memory_budget" (0 = 256 MiB; < 0 disables the budget).
	MaxQueryMem int64
	// MaxQueryCost is the pre-execution cost estimate above which a query
	// counts as expensive for the degrade ladder (0 = one full pass over
	// the current graph, nodes+rels).
	MaxQueryCost float64
	// QuarantineFor is how long a query text whose plan panicked stays
	// quarantined (0 = 1m).
	QuarantineFor time.Duration
	// WatchdogGrace is how far past its deadline an executing query may
	// run before the watchdog hard-cancels it (0 = 5s).
	WatchdogGrace time.Duration
	// DisableGovernance reverts admission to the bare semaphore (instant
	// shed at MaxConcurrent, no budgets, no cost shedding, no degrade
	// ladder). Exists for the iyp-bench -overload baseline; production
	// servers should leave it off.
	DisableGovernance bool
	// SlowQuery is the latency above which a completed query is logged
	// through Logf (0 = 1s).
	SlowQuery time.Duration
	// DisableLegacy turns the deprecated /db/* aliases into 410 Gone
	// responses instead of serving them (with deprecation headers).
	DisableLegacy bool
	// Replica, when set, marks this server as a read replica following a
	// generation store. GET /v1/ready answers from its status (503 until
	// the first good load, "degraded" past the staleness threshold) and
	// GET /metrics grows the iyp_replica_* family. Nil on single-process
	// servers; /v1/ready then mirrors /v1/health's view.
	Replica *replica.Follower
	// Logf receives slow-query and lifecycle logs (nil = silent).
	Logf func(format string, args ...any)
}

// legacySunset is the advertised retirement date of the /db/* aliases,
// sent in the Sunset header (RFC 8594) alongside Deprecation (RFC 9745).
const legacySunset = "Sun, 01 Nov 2026 00:00:00 GMT"

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.DefaultMaxRows <= 0 {
		c.DefaultMaxRows = 100000
	}
	if c.HardMaxRows <= 0 {
		c.HardMaxRows = 1000000
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 2 * time.Second
	}
	if c.MaxQueryMem == 0 {
		c.MaxQueryMem = 256 << 20
	}
	if c.MaxQueryMem < 0 {
		c.MaxQueryMem = 0
	}
	if c.QuarantineFor <= 0 {
		c.QuarantineFor = time.Minute
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = 5 * time.Second
	}
	if c.SlowQuery <= 0 {
		c.SlowQuery = time.Second
	}
	return c
}

// Server serves read-only query access to the MVCC generation store.
type Server struct {
	st    *graph.MVStore
	mux   *http.ServeMux
	cfg   Config
	cache *cypher.PlanCache
	adm   *admission // admission queue, budgets, quarantine, watchdog
	met   metrics
}

// New builds the API handler over a generation store. An optional Config
// tunes timeouts, budgets and the shared plan cache; New(st) uses
// production defaults.
func New(st *graph.MVStore, cfgs ...Config) *Server {
	var cfg Config
	if len(cfgs) > 0 {
		cfg = cfgs[0]
	}
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		cache = cypher.NewPlanCache(0)
	}
	s := &Server{
		st:    st,
		mux:   http.NewServeMux(),
		cfg:   cfg,
		cache: cache,
		adm: newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, cfg.MaxQueueWait,
			cfg.ClientQPS, cfg.ClientBurst, cfg.QuarantineFor, cfg.WatchdogGrace),
	}
	endpoints := []struct {
		pattern string // method + path, relative to the prefix
		h       http.HandlerFunc
	}{
		{"POST %s/query", s.handleQuery},
		{"POST %s/explain", s.handleExplain},
		{"GET %s/schema", s.handleSchema},
		{"GET %s/stats", s.handleStats},
		{"GET %s/generations", s.handleGenerations},
		{"GET %s/diff", s.handleDiff},
	}
	for _, ep := range endpoints {
		s.mux.HandleFunc(fmt.Sprintf(ep.pattern, "/v1"), ep.h)
		s.mux.HandleFunc(fmt.Sprintf(ep.pattern, "/db"), s.legacy(ep.h))
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/ready", s.handleReady)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return s
}

// legacy wraps a handler for the deprecated /db/* aliases: it advertises
// the deprecation on every response and, when the aliases are disabled,
// answers 410 Gone pointing clients at the /v1 path.
func (s *Server) legacy(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		successor := "/v1" + strings.TrimPrefix(r.URL.Path, "/db")
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", legacySunset)
		w.Header().Set("Link", `<`+successor+`>; rel="successor-version"`)
		if s.cfg.DisableLegacy {
			writeError(w, http.StatusGone, "legacy_disabled",
				"the /db/* aliases are disabled on this server; use "+successor)
			return
		}
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type queryRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params"`
	// TimeoutMS overrides the server's default query deadline, capped at
	// Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms"`
	// MaxRows overrides the server's default row budget, capped at
	// Config.HardMaxRows.
	MaxRows int `json:"max_rows"`
	// Parallelism bounds the worker count for morsel-parallel MATCH
	// execution: 0 uses all CPUs, 1 forces serial execution. Results are
	// identical at any setting. Capped at the server's CPU count.
	Parallelism int `json:"parallelism"`
	// Generation pins the query to a specific generation (see
	// GET /v1/generations); 0 means the current one. When the store has
	// persisted history attached, generations beyond the in-memory retain
	// window are materialized from disk; otherwise queries against a
	// reclaimed generation fail with code "generation_gone". The in-query
	// `AS OF <gen>` suffix is equivalent (and must agree when both are
	// given).
	Generation uint64 `json:"generation"`
}

type queryResponse struct {
	Columns []string         `json:"columns"`
	Rows    []map[string]any `json:"rows"`
	// Count is the number of rows in this response. When Truncated is
	// true, more rows matched than the row budget allowed.
	Count     int   `json:"count"`
	Truncated bool  `json:"truncated"`
	TookMS    int64 `json:"took_ms"`
	// Generation is the generation the query actually read — echo it back
	// in the next request's "generation" field to keep reading the same
	// immutable view across requests.
	Generation uint64 `json:"generation"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is a stable, machine-readable error class: bad_request,
	// parse_error, query_error, timeout, canceled, overloaded,
	// budget_exhausted, plan_quarantined, memory_budget, internal_panic,
	// read_only, generation_gone, legacy_disabled. Responses with status
	// 429 or 503 also carry a Retry-After header (seconds).
	Code string `json:"code"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Decode before admitting: shedding decisions are cost-aware, and a
	// 1 MiB-capped JSON decode is noise next to query execution.
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing query")
		return
	}

	governed := !s.cfg.DisableGovernance
	client := clientKey(r)
	// Per-client budget first: one token per request, parse errors
	// included — the budget is for server attention, not successes.
	if governed && s.adm.buckets != nil {
		if ok, retry := s.adm.buckets.take(client); !ok {
			s.met.shed(shedReasonBudget)
			writeShed(w, http.StatusTooManyRequests, "budget_exhausted",
				"client query budget exhausted, slow down", retry)
			return
		}
	}

	params := make(map[string]cypher.Val, len(req.Params))
	for k, v := range req.Params {
		pv, err := cypher.ValOf(normalizeParam(v))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "parameter $"+k+": "+err.Error())
			return
		}
		params[k] = pv
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	maxRows := s.cfg.DefaultMaxRows
	if req.MaxRows > 0 {
		maxRows = req.MaxRows
		if maxRows > s.cfg.HardMaxRows {
			maxRows = s.cfg.HardMaxRows
		}
	}
	parallelism := req.Parallelism
	if parallelism < 0 {
		parallelism = 1
	}
	if max := runtime.GOMAXPROCS(0); parallelism > max {
		parallelism = max
	}

	t0 := time.Now()
	plan, err := s.cache.Get(req.Query)
	if err != nil {
		s.met.observe(time.Since(t0))
		s.met.errors.Add(1)
		writeError(w, http.StatusBadRequest, "parse_error", err.Error())
		return
	}
	// The public instance is read-only: writes would fork the generation
	// history out from under every other client.
	if plan.IsWrite() {
		s.met.errors.Add(1)
		writeError(w, http.StatusBadRequest, "read_only",
			"this server is read-only: CREATE/MERGE/SET/DELETE/REMOVE are not allowed")
		return
	}
	// A trailing `AS OF <gen>` suffix is the in-language equivalent of the
	// "generation" request field; both at once must agree.
	if asOf, ok, err := cypher.AsOfGeneration(plan, cypher.ExecOptions{ParamVals: params}); err != nil {
		s.met.errors.Add(1)
		writeError(w, http.StatusBadRequest, "query_error", err.Error())
		return
	} else if ok {
		if req.Generation > 0 && req.Generation != asOf {
			s.met.errors.Add(1)
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("AS OF %d conflicts with request generation %d", asOf, req.Generation))
			return
		}
		req.Generation = asOf
	}
	// Plans that panicked recently are circuit-broken: replaying a
	// crashing query in a retry loop buys nothing and costs a slot each
	// time.
	if governed {
		if left, blocked := s.adm.quar.blocked(req.Query); blocked {
			s.met.shed(shedReasonQuarantine)
			writeShed(w, http.StatusServiceUnavailable, "plan_quarantined",
				"this query recently crashed its plan and is quarantined, retry later", left)
			return
		}
	}

	// Pin one immutable generation for the whole query: reads are
	// lock-free and cannot observe concurrent ingestion.
	var g *graph.Graph
	var gen uint64
	var release func()
	if req.Generation > 0 {
		var err error
		g, release, err = s.st.AcquireGen(req.Generation)
		if err != nil {
			writeError(w, http.StatusNotFound, "generation_gone", err.Error())
			return
		}
		gen = req.Generation
	} else {
		g, gen, release = s.st.Acquire()
	}
	defer release()

	// Degrade ladder: under load, expensive work is refused up front so
	// cheap indexed lookups keep their latency. The estimate comes from
	// the same planner that will execute the query.
	if governed {
		if level := s.degradeLevel(); level >= 1 {
			est := cypher.EstimateQuery(g, plan, params)
			retry := s.shedRetryAfter()
			switch {
			case est.Analytics:
				s.met.shed(shedReasonAnalytics)
				writeShed(w, http.StatusServiceUnavailable, "overloaded",
					"server is under load and shedding CALL algo.* analytics, retry later", retry)
				return
			case est.Cost > s.costThreshold(level):
				s.met.shed(shedReasonCost)
				writeShed(w, http.StatusServiceUnavailable, "overloaded",
					"server is under load and shedding expensive queries (estimated cost too high), retry later", retry)
				return
			case level >= 3 && !est.IndexOnly:
				s.met.shed(shedReasonIndexOnly)
				writeShed(w, http.StatusServiceUnavailable, "overloaded",
					"server is heavily loaded and serving only index-anchored queries, retry later", retry)
				return
			}
			if level >= 2 {
				parallelism = 1 // keep CPUs for the queue, not per-query fan-out
			}
		}
	}

	// Admission: take an executing slot, queueing (deadline- and
	// cancellation-aware) when governed, shedding instantly otherwise.
	if governed {
		if err := s.adm.acquire(r.Context()); err != nil {
			if r.Context().Err() != nil {
				// Client disconnected while queued: give the budget token
				// back — the server never did the work it was spent on.
				if s.adm.buckets != nil {
					s.adm.buckets.refund(client)
				}
				s.met.canceled.Add(1)
				writeError(w, http.StatusRequestTimeout, "canceled", "client canceled the request while queued")
				return
			}
			s.met.shed(shedReasonQueueFull)
			writeShed(w, http.StatusServiceUnavailable, "overloaded",
				"server is at capacity and its admission queue is full, retry later", s.shedRetryAfter())
			return
		}
	} else if !s.adm.tryAcquire() {
		s.met.shed(shedReasonQueueFull)
		writeShed(w, http.StatusServiceUnavailable, "overloaded",
			"server is at its concurrent query limit, retry later", s.shedRetryAfter())
		return
	}
	defer s.adm.release()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// Watchdog: if this query ignores its deadline, the scan cancels it
	// again and counts the runaway.
	wid := s.adm.track(time.Now().Add(timeout), cancel)
	defer s.adm.untrack(wid)

	res, err := cypher.Exec(ctx, g, plan, cypher.ExecOptions{
		ParamVals:   params,
		MaxRows:     maxRows,
		Parallelism: parallelism,
		MaxMemBytes: s.cfg.MaxQueryMem,
		GenResolver: s.st.AcquireGen,
	})
	took := time.Since(t0)
	s.met.observe(took)
	s.adm.lat.observe(took)
	if err != nil {
		switch {
		case errors.Is(err, cypher.ErrQueryPanic):
			// The executor recovered the panic; quarantine the plan so the
			// crash is not replayed while the bug stands.
			s.met.panics.Add(1)
			s.met.errors.Add(1)
			if governed {
				s.adm.quar.trip(req.Query)
			}
			s.logf("query panic recovered (plan quarantined): query=%q err=%v", req.Query, err)
			writeError(w, http.StatusInternalServerError, "internal_panic", err.Error())
		case errors.Is(err, cypher.ErrMemoryBudget):
			s.met.memKills.Add(1)
			s.met.errors.Add(1)
			s.logf("query killed by memory budget: limit=%d query=%q", s.cfg.MaxQueryMem, req.Query)
			writeError(w, http.StatusUnprocessableEntity, "memory_budget", err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			s.logf("slow query killed: deadline=%s query=%q", timeout, req.Query)
			writeError(w, http.StatusGatewayTimeout, "timeout", err.Error())
		case errors.Is(err, context.Canceled):
			s.met.canceled.Add(1)
			writeError(w, http.StatusRequestTimeout, "canceled", err.Error())
		default:
			s.met.errors.Add(1)
			writeError(w, http.StatusBadRequest, "query_error", err.Error())
		}
		return
	}
	rows := res.Native()
	s.met.rows.Add(uint64(len(rows)))
	if res.Truncated {
		s.met.truncated.Add(1)
	}
	// Planner calibration: record actual÷estimated rows so drift in the
	// cost model (which drives the degrade ladder's shedding) is visible.
	// Analytics calls are skipped (their cardinality is kernel-defined, not
	// pattern-derived), as are truncated results (the true count is unknown)
	// and zero estimates (the ratio is undefined).
	if est := cypher.EstimateQuery(g, plan, params); !est.Analytics && !res.Truncated && est.Rows > 0 {
		s.met.observeRatio(float64(len(rows)) / est.Rows)
	}
	if took >= s.cfg.SlowQuery {
		s.logf("slow query: took_ms=%d rows=%d truncated=%v query=%q",
			took.Milliseconds(), len(rows), res.Truncated, req.Query)
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Columns:    res.Columns,
		Rows:       rows,
		Count:      len(rows),
		Truncated:  res.Truncated,
		TookMS:     took.Milliseconds(),
		Generation: gen,
	})
}

// shedRetryAfter suggests when a shed client should retry: the recent p99
// approximates how long the backlog takes to drain, floored at one second.
func (s *Server) shedRetryAfter() time.Duration {
	if p := s.adm.lat.p99(); p > time.Second {
		return p
	}
	return time.Second
}

// healthResponse is the GET /v1/health payload, shaped for load balancers:
// degrade_level > 0 means the server is shedding some query classes, and
// queue_depth / capacity show how much headroom is left.
type healthResponse struct {
	Status       string `json:"status"` // "ok" or "degraded"
	DegradeLevel int    `json:"degrade_level"`
	QueueDepth   int    `json:"queue_depth"`
	InFlight     int    `json:"in_flight"`
	Capacity     int    `json:"capacity"`
	Generation   uint64 `json:"generation"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.adm.scanOverdue(time.Now()) // piggyback the watchdog on health probes
	level := s.degradeLevel()
	status := "ok"
	if level > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:       status,
		DegradeLevel: level,
		QueueDepth:   int(s.adm.queued.Load()),
		InFlight:     s.adm.inflight(),
		Capacity:     cap(s.adm.slots),
		Generation:   s.st.CurrentGen(),
	})
}

// readyResponse is the GET /v1/ready payload, shaped for load-balancer
// readiness checks on replicas: a follower answers 503 until its first good
// load (a replica with no data must not take traffic), then 200 — "ok"
// normally, "degraded" once the serving generation is older than the
// staleness threshold (still serving; stale-but-consistent beats
// fresh-but-broken, but the balancer may prefer fresher peers).
type readyResponse struct {
	Status string `json:"status"` // "ok", "degraded" or "not_ready"
	// Generation is the MVCC chain generation serving reads.
	Generation uint64 `json:"generation"`
	// BuilderGeneration is the builder store seq being served (replicas
	// only; 0 on single-process servers and before the first load).
	BuilderGeneration uint64 `json:"builder_generation,omitempty"`
	// AgeSeconds is how long ago that generation was swapped live
	// (replicas only).
	AgeSeconds float64 `json:"age_seconds,omitempty"`
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Replica == nil {
		// Single-process: the graph was loaded before the listener opened,
		// so serving at all means ready.
		writeJSON(w, http.StatusOK, readyResponse{Status: "ok", Generation: s.st.CurrentGen()})
		return
	}
	st := s.cfg.Replica.Status()
	resp := readyResponse{
		Status:            "ok",
		Generation:        st.ServingChainGen,
		BuilderGeneration: st.LastGoodGen,
		AgeSeconds:        st.Age.Seconds(),
	}
	switch {
	case !st.Ready:
		resp.Status = "not_ready"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	case st.Degraded:
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDiff serves GET /v1/diff?from=N[&to=M][&workers=K]: the
// generation-diff engine over HTTP. `to` defaults to the current
// generation. Both generations resolve through AcquireGen, so persisted
// history (when attached) is reachable; an unavailable generation answers
// 404 generation_gone. The diff runs under the server's default query
// deadline and is deterministic at any worker count.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "missing or invalid `from` generation")
		return
	}
	var to uint64
	if ts := q.Get("to"); ts != "" {
		if to, err = strconv.ParseUint(ts, 10, 64); err != nil || to == 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "invalid `to` generation")
			return
		}
	}
	workers, _ := strconv.Atoi(q.Get("workers"))

	fromG, releaseFrom, err := s.st.AcquireGen(from)
	if err != nil {
		writeError(w, http.StatusNotFound, "generation_gone", err.Error())
		return
	}
	defer releaseFrom()
	var toG *graph.Graph
	if to > 0 {
		g, release, err := s.st.AcquireGen(to)
		if err != nil {
			writeError(w, http.StatusNotFound, "generation_gone", err.Error())
			return
		}
		defer release()
		toG = g
	} else {
		g, gen, release := s.st.Acquire()
		defer release()
		toG, to = g, gen
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	t0 := time.Now()
	res, err := temporal.Diff(ctx, fromG, toG, temporal.DiffOptions{Workers: workers})
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "timeout", err.Error())
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusRequestTimeout, "canceled", err.Error())
		default:
			writeError(w, http.StatusInternalServerError, "query_error", err.Error())
		}
		return
	}
	res.From, res.To = from, to
	s.met.observe(time.Since(t0))
	writeJSON(w, http.StatusOK, res)
}

// generationsResponse is the GET /v1/generations payload.
type generationsResponse struct {
	Current     uint64          `json:"current"`
	Generations []graph.GenInfo `json:"generations"`
}

func (s *Server) handleGenerations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, generationsResponse{
		Current:     s.st.CurrentGen(),
		Generations: s.st.Generations(),
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// normalizeParam converts JSON numbers (float64) with integral values to
// ints, matching how Cypher parameters behave in practice. It recurses
// through lists and objects so nested numbers normalize the same way as
// top-level ones.
func normalizeParam(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
	case []any:
		for i, e := range x {
			x[i] = normalizeParam(e)
		}
	case map[string]any:
		for k, e := range x {
			x[k] = normalizeParam(e)
		}
	}
	return v
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing query")
		return
	}
	plan, err := cypher.Explain(s.st.Current(), req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", err.Error())
		return
	}
	// Surface how the plan cache would treat this text: repeated clients
	// should see "hit"; CALL queries always report "bypass".
	outcome := s.cache.Outcome(req.Query)
	plan += "plan cache: " + outcome + "\n"
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan, "plan_cache": outcome})
}

type schemaResponse struct {
	Entities      []ontology.EntityDef `json:"entities"`
	Relationships []ontology.RelDef    `json:"relationships"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, schemaResponse{
		Entities:      ontology.Entities(),
		Relationships: ontology.Relationships(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.st.Current().Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.adm.scanOverdue(time.Now()) // piggyback the watchdog on scrapes
	s.degradeLevel()              // refresh the gauge
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var repl *replica.Status
	if s.cfg.Replica != nil {
		st := s.cfg.Replica.Status()
		repl = &st
	}
	s.met.write(w, s.cache.Stats(), genStats{
		current:   s.st.CurrentGen(),
		live:      s.st.Live(),
		reclaimed: s.st.Reclaimed(),
	}, admStats{
		queued:        s.adm.queued.Load(),
		level:         s.adm.level.Load(),
		quarantined:   s.adm.quar.size(),
		watchdogKills: s.adm.watchdogKills.Load(),
	}, repl)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

// writeShed writes a load-shedding error with the Retry-After header every
// 429/503 carries, so well-behaved clients back off instead of spinning.
func writeShed(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retrySeconds(retryAfter)))
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
