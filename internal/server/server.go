// Package server implements the HTTP query API of the public IYP instance
// (paper §3.1): a JSON endpoint for Cypher queries plus schema, statistics
// and metrics endpoints. It is the reproduction's equivalent of the Neo4j
// HTTP API the paper's public deployment exposes, hardened for arbitrary
// user Cypher under heavy load: every query runs under a deadline and a
// row budget, a concurrency limiter sheds load instead of queueing it, a
// plan cache parses each distinct query text once, and GET /metrics
// exposes the serving counters.
//
// The server reads through the MVCC generation store: every query pins one
// immutable generation for its whole execution — lock-free reads, no
// torn results while ingestion publishes new generations — and clients can
// pin an explicit generation across requests with the "generation" request
// field (GET /v1/generations lists what is available). The API is
// read-only; write queries are rejected with code "read_only".
//
// Endpoints are versioned under /v1/ (POST /v1/query, POST /v1/explain,
// GET /v1/schema, GET /v1/stats, GET /v1/generations); the original /db/*
// paths remain as deprecated aliases for existing clients — they emit
// Deprecation/Sunset headers and can be disabled entirely with
// Config.DisableLegacy (iyp-serve -legacy=false), turning them into 410s.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	"iyp/internal/cypher"
	"iyp/internal/graph"
	"iyp/internal/ontology"
)

// Config tunes the serving layer. The zero value serves with production
// defaults; see the field comments for each.
type Config struct {
	// Cache is the plan cache to use (nil = a fresh cache of
	// cypher.DefaultPlanCacheSize entries). Sharing one cache between
	// the HTTP server and embedded DB queries maximizes hit rate.
	Cache *cypher.PlanCache
	// DefaultTimeout bounds queries that don't request their own
	// timeout_ms (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms field (0 = 2m).
	MaxTimeout time.Duration
	// DefaultMaxRows bounds result rows when the request doesn't set
	// max_rows (0 = 100000).
	DefaultMaxRows int
	// HardMaxRows caps the per-request max_rows field (0 = 1000000).
	HardMaxRows int
	// MaxConcurrent bounds queries executing at once; excess requests
	// get 429 immediately rather than queueing (0 = 64).
	MaxConcurrent int
	// SlowQuery is the latency above which a completed query is logged
	// through Logf (0 = 1s).
	SlowQuery time.Duration
	// DisableLegacy turns the deprecated /db/* aliases into 410 Gone
	// responses instead of serving them (with deprecation headers).
	DisableLegacy bool
	// Logf receives slow-query and lifecycle logs (nil = silent).
	Logf func(format string, args ...any)
}

// legacySunset is the advertised retirement date of the /db/* aliases,
// sent in the Sunset header (RFC 8594) alongside Deprecation (RFC 9745).
const legacySunset = "Sun, 01 Nov 2026 00:00:00 GMT"

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.DefaultMaxRows <= 0 {
		c.DefaultMaxRows = 100000
	}
	if c.HardMaxRows <= 0 {
		c.HardMaxRows = 1000000
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.SlowQuery <= 0 {
		c.SlowQuery = time.Second
	}
	return c
}

// Server serves read-only query access to the MVCC generation store.
type Server struct {
	st    *graph.MVStore
	mux   *http.ServeMux
	cfg   Config
	cache *cypher.PlanCache
	sem   chan struct{} // concurrency limiter (len == queries in flight)
	met   metrics
}

// New builds the API handler over a generation store. An optional Config
// tunes timeouts, budgets and the shared plan cache; New(st) uses
// production defaults.
func New(st *graph.MVStore, cfgs ...Config) *Server {
	var cfg Config
	if len(cfgs) > 0 {
		cfg = cfgs[0]
	}
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		cache = cypher.NewPlanCache(0)
	}
	s := &Server{
		st:    st,
		mux:   http.NewServeMux(),
		cfg:   cfg,
		cache: cache,
		sem:   make(chan struct{}, cfg.MaxConcurrent),
	}
	endpoints := []struct {
		pattern string // method + path, relative to the prefix
		h       http.HandlerFunc
	}{
		{"POST %s/query", s.handleQuery},
		{"POST %s/explain", s.handleExplain},
		{"GET %s/schema", s.handleSchema},
		{"GET %s/stats", s.handleStats},
		{"GET %s/generations", s.handleGenerations},
	}
	for _, ep := range endpoints {
		s.mux.HandleFunc(fmt.Sprintf(ep.pattern, "/v1"), ep.h)
		s.mux.HandleFunc(fmt.Sprintf(ep.pattern, "/db"), s.legacy(ep.h))
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return s
}

// legacy wraps a handler for the deprecated /db/* aliases: it advertises
// the deprecation on every response and, when the aliases are disabled,
// answers 410 Gone pointing clients at the /v1 path.
func (s *Server) legacy(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		successor := "/v1" + strings.TrimPrefix(r.URL.Path, "/db")
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", legacySunset)
		w.Header().Set("Link", `<`+successor+`>; rel="successor-version"`)
		if s.cfg.DisableLegacy {
			writeError(w, http.StatusGone, "legacy_disabled",
				"the /db/* aliases are disabled on this server; use "+successor)
			return
		}
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type queryRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params"`
	// TimeoutMS overrides the server's default query deadline, capped at
	// Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms"`
	// MaxRows overrides the server's default row budget, capped at
	// Config.HardMaxRows.
	MaxRows int `json:"max_rows"`
	// Parallelism bounds the worker count for morsel-parallel MATCH
	// execution: 0 uses all CPUs, 1 forces serial execution. Results are
	// identical at any setting. Capped at the server's CPU count.
	Parallelism int `json:"parallelism"`
	// Generation pins the query to a specific retained generation (see
	// GET /v1/generations); 0 means the current one. Queries against a
	// reclaimed generation fail with code "generation_gone".
	Generation uint64 `json:"generation"`
}

type queryResponse struct {
	Columns []string         `json:"columns"`
	Rows    []map[string]any `json:"rows"`
	// Count is the number of rows in this response. When Truncated is
	// true, more rows matched than the row budget allowed.
	Count     int   `json:"count"`
	Truncated bool  `json:"truncated"`
	TookMS    int64 `json:"took_ms"`
	// Generation is the generation the query actually read — echo it back
	// in the next request's "generation" field to keep reading the same
	// immutable view across requests.
	Generation uint64 `json:"generation"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is a stable, machine-readable error class: bad_request,
	// parse_error, query_error, timeout, canceled, too_many_requests,
	// read_only, generation_gone, legacy_disabled.
	Code string `json:"code"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Shed load immediately when at capacity: a public instance must not
	// build an unbounded queue of expensive queries.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.met.rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "too_many_requests", "server is at its concurrent query limit, retry later")
		return
	}
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing query")
		return
	}
	params := make(map[string]cypher.Val, len(req.Params))
	for k, v := range req.Params {
		pv, err := cypher.ValOf(normalizeParam(v))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "parameter $"+k+": "+err.Error())
			return
		}
		params[k] = pv
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	maxRows := s.cfg.DefaultMaxRows
	if req.MaxRows > 0 {
		maxRows = req.MaxRows
		if maxRows > s.cfg.HardMaxRows {
			maxRows = s.cfg.HardMaxRows
		}
	}
	parallelism := req.Parallelism
	if parallelism < 0 {
		parallelism = 1
	}
	if max := runtime.GOMAXPROCS(0); parallelism > max {
		parallelism = max
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	t0 := time.Now()
	plan, err := s.cache.Get(req.Query)
	if err != nil {
		s.met.observe(time.Since(t0))
		s.met.errors.Add(1)
		writeError(w, http.StatusBadRequest, "parse_error", err.Error())
		return
	}
	// The public instance is read-only: writes would fork the generation
	// history out from under every other client.
	if plan.IsWrite() {
		s.met.errors.Add(1)
		writeError(w, http.StatusBadRequest, "read_only",
			"this server is read-only: CREATE/MERGE/SET/DELETE/REMOVE are not allowed")
		return
	}

	// Pin one immutable generation for the whole query: reads are
	// lock-free and cannot observe concurrent ingestion.
	var g *graph.Graph
	var gen uint64
	var release func()
	if req.Generation > 0 {
		var err error
		g, release, err = s.st.AcquireGen(req.Generation)
		if err != nil {
			writeError(w, http.StatusNotFound, "generation_gone", err.Error())
			return
		}
		gen = req.Generation
	} else {
		g, gen, release = s.st.Acquire()
	}
	defer release()

	res, err := cypher.Exec(ctx, g, plan, cypher.ExecOptions{ParamVals: params, MaxRows: maxRows, Parallelism: parallelism})
	took := time.Since(t0)
	s.met.observe(took)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
			s.logf("slow query killed: deadline=%s query=%q", timeout, req.Query)
			writeError(w, http.StatusGatewayTimeout, "timeout", err.Error())
		case errors.Is(err, context.Canceled):
			s.met.canceled.Add(1)
			writeError(w, http.StatusRequestTimeout, "canceled", err.Error())
		default:
			s.met.errors.Add(1)
			writeError(w, http.StatusBadRequest, "query_error", err.Error())
		}
		return
	}
	rows := res.Native()
	s.met.rows.Add(uint64(len(rows)))
	if res.Truncated {
		s.met.truncated.Add(1)
	}
	if took >= s.cfg.SlowQuery {
		s.logf("slow query: took_ms=%d rows=%d truncated=%v query=%q",
			took.Milliseconds(), len(rows), res.Truncated, req.Query)
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Columns:    res.Columns,
		Rows:       rows,
		Count:      len(rows),
		Truncated:  res.Truncated,
		TookMS:     took.Milliseconds(),
		Generation: gen,
	})
}

// generationsResponse is the GET /v1/generations payload.
type generationsResponse struct {
	Current     uint64          `json:"current"`
	Generations []graph.GenInfo `json:"generations"`
}

func (s *Server) handleGenerations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, generationsResponse{
		Current:     s.st.CurrentGen(),
		Generations: s.st.Generations(),
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// normalizeParam converts JSON numbers (float64) with integral values to
// ints, matching how Cypher parameters behave in practice. It recurses
// through lists and objects so nested numbers normalize the same way as
// top-level ones.
func normalizeParam(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
	case []any:
		for i, e := range x {
			x[i] = normalizeParam(e)
		}
	case map[string]any:
		for k, e := range x {
			x[k] = normalizeParam(e)
		}
	}
	return v
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid request body: "+err.Error())
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing query")
		return
	}
	plan, err := cypher.Explain(s.st.Current(), req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", err.Error())
		return
	}
	// Surface how the plan cache would treat this text: repeated clients
	// should see "hit"; CALL queries always report "bypass".
	outcome := s.cache.Outcome(req.Query)
	plan += "plan cache: " + outcome + "\n"
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan, "plan_cache": outcome})
}

type schemaResponse struct {
	Entities      []ontology.EntityDef `json:"entities"`
	Relationships []ontology.RelDef    `json:"relationships"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, schemaResponse{
		Entities:      ontology.Entities(),
		Relationships: ontology.Relationships(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.st.Current().Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.cache.Stats(), genStats{
		current:   s.st.CurrentGen(),
		live:      s.st.Live(),
		reclaimed: s.st.Reclaimed(),
	})
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
