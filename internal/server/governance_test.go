package server

// End-to-end tests for the overload-governance pipeline: panic recovery and
// plan quarantine, per-query memory budgets, per-client request budgets,
// the degrade ladder and the health endpoint.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"iyp/internal/cypher"
)

func init() {
	// A procedure that always panics, injected once for the whole test
	// binary: the executor must convert the panic into a typed error
	// instead of letting it kill the process.
	cypher.RegisterProc(cypher.ProcSpec{
		Name: "test.panic",
		Cols: []string{"x"},
		Help: "Always panics (crash-recovery tests).",
		Impl: func(pc cypher.ProcContext, cfg map[string]cypher.Val, emit func([]cypher.Val) error) error {
			panic("injected test panic")
		},
	})
}

func TestPanicRecoveryAndQuarantine(t *testing.T) {
	srv := newTestServer(testGraph(), Config{QuarantineFor: time.Minute})
	const crash = `{"query": "CALL test.panic() YIELD x RETURN x"}`

	// First execution: the panic is recovered into a typed 500 and the
	// process (this test binary) survives.
	w := post(t, srv, "/v1/query", crash)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking query: status = %d, want 500 (body %s)", w.Code, w.Body)
	}
	var e errResp
	_ = json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "internal_panic" {
		t.Fatalf("code = %q, want internal_panic", e.Code)
	}

	// Replay: the plan is quarantined, so the crash is not re-executed.
	w = post(t, srv, "/v1/query", crash)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined replay: status = %d, want 503 (body %s)", w.Code, w.Body)
	}
	_ = json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "plan_quarantined" {
		t.Fatalf("replay code = %q, want plan_quarantined", e.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("quarantine response is missing Retry-After")
	}

	// Other queries are untouched by the breaker.
	w = post(t, srv, "/v1/query", `{"query": "MATCH (a:AS {asn: 2497}) RETURN a.asn AS asn"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("healthy query after panic: status = %d (body %s)", w.Code, w.Body)
	}

	// The metrics surface both the recovery and the quarantine.
	body := get(t, srv, "/metrics").Body.String()
	for _, want := range []string{
		"iyp_query_panics_recovered_total 1",
		"iyp_quarantined_plans 1",
		`iyp_sheds_total{reason="quarantine"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestMemoryBudgetEndpoint(t *testing.T) {
	// A 4 KiB budget cannot hold 5000 materialized rows.
	srv := newTestServer(bigGraph(5000), Config{MaxQueryMem: 4096})
	w := post(t, srv, "/v1/query", `{"query": "MATCH (n:N) RETURN n.i AS i"}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %s)", w.Code, w.Body)
	}
	var e errResp
	_ = json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "memory_budget" {
		t.Fatalf("code = %q, want memory_budget", e.Code)
	}
	if !strings.Contains(e.Error, "memory budget") {
		t.Fatalf("error message %q does not mention the budget", e.Error)
	}
	if body := get(t, srv, "/metrics").Body.String(); !strings.Contains(body, "iyp_memory_budget_kills_total 1") {
		t.Error("metrics missing iyp_memory_budget_kills_total 1")
	}

	// A query under the budget is unaffected. (Aggregations still charge
	// their input rows, so even count(n) over 5000 nodes would trip a 4 KiB
	// budget — the budget bounds materialized work, not result size.)
	w = post(t, srv, "/v1/query", `{"query": "RETURN 1 AS c"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("cheap query under budget: status = %d (body %s)", w.Code, w.Body)
	}
}

func TestClientBudget429(t *testing.T) {
	srv := newTestServer(testGraph(), Config{ClientQPS: 0.001, ClientBurst: 2})
	q := `{"query": "RETURN 1 AS n"}`
	for i := 0; i < 2; i++ {
		if w := post(t, srv, "/v1/query", q); w.Code != http.StatusOK {
			t.Fatalf("burst request %d: status = %d", i, w.Code)
		}
	}
	w := post(t, srv, "/v1/query", q)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status = %d, want 429", w.Code)
	}
	var e errResp
	_ = json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "budget_exhausted" {
		t.Fatalf("code = %q, want budget_exhausted", e.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 response is missing Retry-After")
	}
	if body := get(t, srv, "/metrics").Body.String(); !strings.Contains(body, `iyp_sheds_total{reason="budget"} 1`) {
		t.Error("metrics missing budget shed counter")
	}
}

func TestDegradeLadderSheds(t *testing.T) {
	srv := newTestServer(testGraph(), Config{MaxConcurrent: 4, QueueDepth: 4})
	// Occupy half the slots: level 1, where analytics and expensive
	// estimates shed but cheap queries still run.
	srv.adm.slots <- struct{}{}
	srv.adm.slots <- struct{}{}

	w := post(t, srv, "/v1/query", `{"query": "CALL algo.pagerank() YIELD node, score RETURN score LIMIT 1"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("analytics at level 1: status = %d, want 503 (body %s)", w.Code, w.Body)
	}
	var e errResp
	_ = json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "overloaded" {
		t.Fatalf("code = %q, want overloaded", e.Code)
	}

	// An indexed lookup still serves at level 1.
	w = post(t, srv, "/v1/query", `{"query": "MATCH (a:AS {asn: 2497}) RETURN a.asn AS asn"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("indexed query at level 1: status = %d (body %s)", w.Code, w.Body)
	}

	// Fill all slots: level 3 admits only index-anchored queries; a label
	// scan sheds even though it is cheap in absolute terms.
	srv.adm.slots <- struct{}{}
	srv.adm.slots <- struct{}{}
	w = post(t, srv, "/v1/query", `{"query": "MATCH (n:AS) RETURN n.asn AS asn"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("label scan at level 3: status = %d, want 503 (body %s)", w.Code, w.Body)
	}
	for i := 0; i < 4; i++ {
		<-srv.adm.slots
	}
	body := get(t, srv, "/metrics").Body.String()
	if !strings.Contains(body, `iyp_sheds_total{reason="analytics"} 1`) {
		t.Error("metrics missing analytics shed counter")
	}
	if !strings.Contains(body, `iyp_sheds_total{reason="index_only"} 1`) {
		t.Error("metrics missing index_only shed counter")
	}
}

func TestHealthEndpoint(t *testing.T) {
	srv := newTestServer(testGraph(), Config{MaxConcurrent: 4, QueueDepth: 4})
	w := get(t, srv, "/v1/health")
	if w.Code != http.StatusOK {
		t.Fatalf("health status = %d", w.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatalf("health payload: %v", err)
	}
	if h.Status != "ok" || h.DegradeLevel != 0 || h.Capacity != 4 || h.InFlight != 0 {
		t.Fatalf("idle health = %+v", h)
	}

	// Under load the endpoint reports degradation but stays 200: load
	// balancers should route away gradually, not mark the node dead.
	srv.adm.slots <- struct{}{}
	srv.adm.slots <- struct{}{}
	srv.adm.slots <- struct{}{}
	w = get(t, srv, "/v1/health")
	if w.Code != http.StatusOK {
		t.Fatalf("loaded health status = %d, want 200", w.Code)
	}
	_ = json.Unmarshal(w.Body.Bytes(), &h)
	if h.Status != "degraded" || h.DegradeLevel < 1 || h.InFlight != 3 {
		t.Fatalf("loaded health = %+v", h)
	}
	for i := 0; i < 3; i++ {
		<-srv.adm.slots
	}
}

func TestGovernanceDisabled(t *testing.T) {
	// DisableGovernance restores the bare semaphore: no budgets, no
	// ladder, instant shed at capacity.
	srv := newTestServer(testGraph(), Config{
		MaxConcurrent: 1, ClientQPS: 0.001, ClientBurst: 1, DisableGovernance: true,
	})
	for i := 0; i < 5; i++ {
		if w := post(t, srv, "/v1/query", `{"query": "RETURN 1 AS n"}`); w.Code != http.StatusOK {
			t.Fatalf("ungoverned request %d: status = %d (budgets must be off)", i, w.Code)
		}
	}
	srv.adm.slots <- struct{}{}
	w := post(t, srv, "/v1/query", `{"query": "RETURN 1 AS n"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("ungoverned at capacity: status = %d, want 503", w.Code)
	}
	<-srv.adm.slots
}
