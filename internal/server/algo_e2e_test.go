package server

import (
	"encoding/json"
	"strings"
	"testing"

	"iyp/internal/algo"
	"iyp/internal/graph"
)

// End-to-end coverage of the analytics procedures through the public
// HTTP API: CALL algo.* must stream through /v1/query under the same row
// budgets, deadlines and metrics as plain Cypher.

func TestQueryCallWCC(t *testing.T) {
	g := testGraph()
	defer algo.InvalidateViews(g)
	srv := newTestServer(g)

	w := post(t, srv, "/v1/query", `{"query": "CALL algo.wcc()"}`)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Columns) != 2 || resp.Columns[0] != "node" || resp.Columns[1] != "component" {
		t.Fatalf("columns = %v", resp.Columns)
	}
	// testGraph is a,b,p all connected: one component, three rows.
	if resp.Count != 3 {
		t.Fatalf("count = %d, want 3", resp.Count)
	}
	comps := map[any]bool{}
	for _, row := range resp.Rows {
		comps[row["component"]] = true
	}
	if len(comps) != 1 {
		t.Fatalf("component labels = %v, want a single component", comps)
	}
}

func TestQueryCallPageRankComposed(t *testing.T) {
	g := testGraph()
	defer algo.InvalidateViews(g)
	srv := newTestServer(g)

	w := post(t, srv, "/v1/query",
		`{"query": "CALL algo.pagerank() YIELD node, score RETURN node, score ORDER BY score DESC LIMIT 1"}`)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 {
		t.Fatalf("count = %d, want 1", resp.Count)
	}
	if resp.Rows[0]["score"].(float64) <= 0 {
		t.Fatalf("top pagerank score not positive: %v", resp.Rows[0])
	}
}

func TestQueryCallMaxRows(t *testing.T) {
	g := testGraph()
	defer algo.InvalidateViews(g)
	srv := newTestServer(g)

	w := post(t, srv, "/v1/query", `{"query": "CALL algo.wcc()", "max_rows": 2}`)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || !resp.Truncated {
		t.Fatalf("count=%d truncated=%v, want 2 rows and truncation", resp.Count, resp.Truncated)
	}
}

// chainGraph is a long directed path — the k-reach dependency kernel on
// it with unbounded reach is quadratic, which makes it a reliable
// deadline victim.
func chainGraph(n int) *graph.Graph {
	g := graph.New()
	prev := g.AddNode([]string{"N"}, nil)
	for i := 1; i < n; i++ {
		cur := g.AddNode([]string{"N"}, nil)
		_, _ = g.AddRel("NEXT", prev, cur, nil)
		prev = cur
	}
	return g
}

func TestQueryCallTimeout(t *testing.T) {
	g := chainGraph(3000)
	defer algo.InvalidateViews(g)
	srv := newTestServer(g)

	w := post(t, srv, "/v1/query",
		`{"query": "CALL algo.dependency({k: 3000, maxReach: -1})", "timeout_ms": 1}`)
	if w.Code != 504 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp errorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != "timeout" {
		t.Fatalf("error code %q, want timeout", resp.Code)
	}
}

func TestExplainCallReportsBypass(t *testing.T) {
	g := testGraph()
	srv := newTestServer(g)

	w := post(t, srv, "/v1/explain", `{"query": "CALL algo.wcc() YIELD node RETURN node"}`)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["plan_cache"] != "bypass" {
		t.Fatalf("plan_cache = %q, want bypass", resp["plan_cache"])
	}
	if !strings.Contains(resp["plan"], "algo.wcc") || !strings.Contains(resp["plan"], "not cacheable") {
		t.Fatalf("plan missing CALL description:\n%s", resp["plan"])
	}

	// A plain query reports miss before caching, hit once cached.
	w = post(t, srv, "/v1/explain", `{"query": "MATCH (a:AS) RETURN a.asn"}`)
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if resp["plan_cache"] != "miss" {
		t.Fatalf("plan_cache = %q, want miss", resp["plan_cache"])
	}
	post(t, srv, "/v1/query", `{"query": "MATCH (a:AS) RETURN a.asn"}`)
	w = post(t, srv, "/v1/explain", `{"query": "MATCH (a:AS) RETURN a.asn"}`)
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if resp["plan_cache"] != "hit" {
		t.Fatalf("plan_cache = %q, want hit", resp["plan_cache"])
	}
}

func TestMetricsIncludeAlgoCounters(t *testing.T) {
	g := testGraph()
	defer algo.InvalidateViews(g)
	srv := newTestServer(g)

	post(t, srv, "/v1/query", `{"query": "CALL algo.wcc()"}`)
	w := get(t, srv, "/metrics")
	body := w.Body.String()
	for _, want := range []string{
		`iyp_algo_kernel_runs_total{kernel="wcc"}`,
		"iyp_algo_view_builds_total",
		"iyp_algo_view_build_seconds_total",
		"iyp_plan_cache_bypasses_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}
