package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"iyp/internal/graph"
	"iyp/internal/temporal"
)

// twoGenServer publishes a second generation (one more AS and ORIGINATE)
// on top of testGraph so there is something to diff.
func twoGenServer(t *testing.T) *Server {
	t.Helper()
	st := graph.NewMVStore(testGraph())
	if _, err := st.Update(func(g *graph.Graph) error {
		n := g.AddNode([]string{"AS"}, graph.Props{"asn": graph.Int(3333)})
		p := g.AddNode([]string{"Prefix"}, graph.Props{"prefix": graph.String("198.51.100.0/24")})
		_, err := g.AddRel("ORIGINATE", n, p, nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	st.SetRetain(4)
	return New(st)
}

func TestDiffEndpoint(t *testing.T) {
	srv := twoGenServer(t)

	w := get(t, srv, "/v1/diff?from=1")
	if w.Code != http.StatusOK {
		t.Fatalf("diff status = %d: %s", w.Code, w.Body)
	}
	var res temporal.DiffResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.From != 1 || res.To != 2 {
		t.Fatalf("diff range = %d -> %d, want 1 -> 2 (to defaults to head)", res.From, res.To)
	}
	if res.Nodes.Added != 2 || res.Rels.Added != 1 {
		t.Fatalf("diff totals = %+v / %+v, want 2 nodes and 1 rel added", res.Nodes, res.Rels)
	}

	// Explicit to, reversed: the additions become removals.
	w = get(t, srv, "/v1/diff?from=2&to=1")
	if w.Code != http.StatusOK {
		t.Fatalf("reverse diff status = %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Nodes.Removed != 2 || res.Rels.Removed != 1 {
		t.Fatalf("reverse diff totals = %+v / %+v", res.Nodes, res.Rels)
	}

	// A generation diffed against itself is empty.
	w = get(t, srv, "/v1/diff?from=2&to=2")
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Empty() {
		t.Fatalf("self-diff not empty: %+v", res)
	}
}

func TestDiffEndpointErrors(t *testing.T) {
	srv := twoGenServer(t)
	if w := get(t, srv, "/v1/diff"); w.Code != http.StatusBadRequest {
		t.Fatalf("missing from: status = %d", w.Code)
	}
	if w := get(t, srv, "/v1/diff?from=banana"); w.Code != http.StatusBadRequest {
		t.Fatalf("non-numeric from: status = %d", w.Code)
	}
	if w := get(t, srv, "/v1/diff?from=99"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown generation: status = %d", w.Code)
	}
	if w := get(t, srv, "/v1/diff?from=1&to=99"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown to generation: status = %d", w.Code)
	}
}

// The same engine must be reachable from Cypher over HTTP: CALL
// temporal.diff resolves generations through the server's GenResolver.
func TestQueryCallTemporalDiff(t *testing.T) {
	srv := twoGenServer(t)
	w := post(t, srv, "/v1/query",
		`{"query": "CALL temporal.diff({from: 1}) YIELD kind, name, added WHERE kind = 'total' RETURN kind, name, added"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp queryResp
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 2 {
		t.Fatalf("rows = %v, want the nodes and rels totals", resp.Rows)
	}
}

// AS OF over HTTP: the suffix pins the statement exactly like the
// "generation" request field.
func TestQueryAsOfSuffix(t *testing.T) {
	srv := twoGenServer(t)
	for _, body := range []string{
		`{"query": "MATCH (n:AS) RETURN count(n) AS n AS OF 1"}`,
		`{"query": "MATCH (n:AS) RETURN count(n) AS n", "generation": 1}`,
	} {
		w := post(t, srv, "/v1/query", body)
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", w.Code, w.Body)
		}
		var resp queryResp
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Generation != 1 {
			t.Fatalf("response generation = %d, want 1", resp.Generation)
		}
		if len(resp.Rows) != 1 || resp.Rows[0]["n"] != float64(2) {
			t.Fatalf("rows = %v, want n=2 (generation 1 had 2 ASes)", resp.Rows)
		}
	}
}
