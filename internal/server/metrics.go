package server

// Serving metrics for the public query API, exposed at GET /metrics in
// the Prometheus text exposition format. Everything is lock-free atomics:
// the metrics path must cost nothing compared to query execution.

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"iyp/internal/algo"
	"iyp/internal/cypher"
	"iyp/internal/replica"
)

// latencyBuckets are the upper bounds (seconds) of the query-duration
// histogram, chosen to straddle the paper instance's interactive range:
// sub-millisecond index lookups up to multi-second analytical scans.
var latencyBuckets = [...]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// ratioBuckets are the upper bounds of the cost-estimate accuracy histogram
// (actual result rows ÷ planner-estimated rows). A well-calibrated planner
// piles mass around 1; mass at the edges means the degrade ladder is
// shedding (or admitting) the wrong queries.
var ratioBuckets = [...]float64{0.01, 0.1, 0.25, 0.5, 1, 2, 4, 10, 100}

type metrics struct {
	queries   atomic.Uint64 // completed query requests (any outcome)
	errors    atomic.Uint64 // parse/runtime failures
	timeouts  atomic.Uint64 // deadline-exceeded queries
	canceled  atomic.Uint64 // client-cancelled queries
	truncated atomic.Uint64 // responses with truncated=true
	rows      atomic.Uint64 // result rows returned to clients
	inflight  atomic.Int64  // queries currently executing

	// Admission-control outcomes (see admission.go).
	sheds    [len(shedReasons)]atomic.Uint64 // indexed like shedReasons
	memKills atomic.Uint64                   // queries killed by the memory budget
	panics   atomic.Uint64                   // query panics recovered by the executor

	// Histogram: buckets[i] counts observations <= latencyBuckets[i];
	// buckets[len] is the +Inf overflow. Non-cumulative internally,
	// accumulated at render time per Prometheus convention.
	buckets    [len(latencyBuckets) + 1]atomic.Uint64
	durationNS atomic.Uint64

	// Cost-estimate accuracy histogram (actual rows ÷ estimated rows),
	// same internal layout. The sum is kept in micro-units so it fits an
	// atomic counter without float CAS loops.
	ratios        [len(ratioBuckets) + 1]atomic.Uint64
	ratioSumMicro atomic.Uint64
}

// observeRatio records one actual÷estimated row-count ratio.
func (m *metrics) observeRatio(ratio float64) {
	m.ratioSumMicro.Add(uint64(ratio * 1e6))
	for i, ub := range ratioBuckets {
		if ratio <= ub {
			m.ratios[i].Add(1)
			return
		}
	}
	m.ratios[len(ratioBuckets)].Add(1)
}

// shed counts one request shed for the given reason (a shedReasons value).
func (m *metrics) shed(reason string) {
	for i, r := range shedReasons {
		if r == reason {
			m.sheds[i].Add(1)
			return
		}
	}
}

func (m *metrics) observe(d time.Duration) {
	m.queries.Add(1)
	m.durationNS.Add(uint64(d.Nanoseconds()))
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			m.buckets[i].Add(1)
			return
		}
	}
	m.buckets[len(latencyBuckets)].Add(1)
}

// genStats carries the MVCC generation-store gauges into the renderer.
type genStats struct {
	current   uint64 // generation currently serving reads
	live      int    // generations tracked (current + retained + pinned)
	reclaimed uint64 // superseded generations reclaimed so far
}

// admStats carries the admission-layer gauges into the renderer.
type admStats struct {
	queued        int64  // requests waiting in the admission queue
	level         int64  // current degrade-ladder level (0-3)
	quarantined   int    // query texts currently quarantined
	watchdogKills uint64 // runaway queries hard-cancelled by the watchdog
}

// write renders the Prometheus text format, folding in plan-cache stats,
// the generation-store and admission gauges, and (on a replica) the
// follower's health. repl is nil on single-process servers.
func (m *metrics) write(w io.Writer, cache cypher.CacheStats, gens genStats, adm admStats, repl *replica.Status) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("iyp_queries_total", "Completed query requests.", m.queries.Load())
	counter("iyp_query_errors_total", "Queries that failed to parse or execute.", m.errors.Load())
	counter("iyp_query_timeouts_total", "Queries stopped by a deadline.", m.timeouts.Load())
	counter("iyp_query_canceled_total", "Queries stopped by client cancellation.", m.canceled.Load())
	counter("iyp_query_truncated_total", "Responses truncated by a row budget.", m.truncated.Load())
	counter("iyp_rows_returned_total", "Result rows returned to clients.", m.rows.Load())
	gauge("iyp_queries_in_flight", "Queries currently executing.", m.inflight.Load())

	// Admission control and resource governance.
	fmt.Fprintf(w, "# HELP iyp_sheds_total Requests shed by admission control, by reason.\n# TYPE iyp_sheds_total counter\n")
	for i, r := range shedReasons {
		fmt.Fprintf(w, "iyp_sheds_total{reason=%q} %d\n", r, m.sheds[i].Load())
	}
	counter("iyp_memory_budget_kills_total", "Queries aborted by the per-query memory budget.", m.memKills.Load())
	counter("iyp_query_panics_recovered_total", "Query panics recovered by the executor (plan quarantined).", m.panics.Load())
	counter("iyp_watchdog_kills_total", "Runaway queries hard-cancelled past deadline+grace.", adm.watchdogKills)
	gauge("iyp_admission_queue_depth", "Requests waiting in the admission queue.", adm.queued)
	gauge("iyp_degrade_level", "Current degrade-ladder level (0 = full service).", adm.level)
	gauge("iyp_quarantined_plans", "Query texts currently quarantined by the panic breaker.", int64(adm.quarantined))

	counter("iyp_plan_cache_hits_total", "Plan cache hits.", cache.Hits)
	counter("iyp_plan_cache_misses_total", "Plan cache misses.", cache.Misses)
	counter("iyp_plan_cache_bypasses_total", "Queries never cached (CALL statements).", cache.Bypasses)
	gauge("iyp_plan_cache_size", "Parsed plans currently cached.", int64(cache.Size))
	gauge("iyp_plan_cache_capacity", "Plan cache capacity.", int64(cache.Capacity))

	// MVCC generation store.
	gauge("iyp_generation_current", "Generation number currently serving reads.", int64(gens.current))
	gauge("iyp_generations_live", "Generations tracked by the store (current + retained + pinned).", int64(gens.live))
	counter("iyp_generations_reclaimed_total", "Superseded generations reclaimed after their last reader released.", gens.reclaimed)

	// Replica follower (present only with -follow).
	if repl != nil {
		gauge("iyp_replica_last_good_generation", "Builder generation currently serving reads (0 = never loaded).", int64(repl.LastGoodGen))
		fmt.Fprintf(w, "# HELP iyp_replica_generation_age_seconds Age of the serving generation.\n# TYPE iyp_replica_generation_age_seconds gauge\n")
		fmt.Fprintf(w, "iyp_replica_generation_age_seconds %g\n", repl.Age.Seconds())
		fmt.Fprintf(w, "# HELP iyp_replica_reloads_total Reload attempts by result.\n# TYPE iyp_replica_reloads_total counter\n")
		for i, r := range replica.ReloadResults {
			fmt.Fprintf(w, "iyp_replica_reloads_total{result=%q} %d\n", r, repl.Reloads[i])
		}
		counter("iyp_replica_polls_total", "Store watch iterations.", repl.Polls)
		counter("iyp_replica_backoffs_total", "Backoff sleeps taken after faulted polls.", repl.Backoffs)
		counter("iyp_replica_dict_strings_total", "Dictionary entries decoded across successful reloads.", repl.DictStrings)
		counter("iyp_replica_dict_reused_total", "Dictionary entries shared with the previous generation instead of re-allocated.", repl.DictReused)
		var ready, degraded int64
		if repl.Ready {
			ready = 1
		}
		if repl.Degraded {
			degraded = 1
		}
		gauge("iyp_replica_ready", "1 once a generation has been loaded and served.", ready)
		gauge("iyp_replica_degraded", "1 when the serving generation is older than the staleness threshold.", degraded)
	}

	// Per-kernel analytics counters (CALL algo.* procedures).
	algo.WriteProm(w)

	// Morsel-parallel MATCH execution counters.
	cypher.WriteMatchMetrics(w)

	fmt.Fprintf(w, "# HELP iyp_query_duration_seconds Query latency.\n# TYPE iyp_query_duration_seconds histogram\n")
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += m.buckets[i].Load()
		fmt.Fprintf(w, "iyp_query_duration_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.buckets[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "iyp_query_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "iyp_query_duration_seconds_sum %g\n", float64(m.durationNS.Load())/1e9)
	fmt.Fprintf(w, "iyp_query_duration_seconds_count %d\n", cum)

	fmt.Fprintf(w, "# HELP iyp_cost_estimate_ratio Actual result rows divided by planner-estimated rows, per completed query.\n# TYPE iyp_cost_estimate_ratio histogram\n")
	cum = 0
	for i, ub := range ratioBuckets {
		cum += m.ratios[i].Load()
		fmt.Fprintf(w, "iyp_cost_estimate_ratio_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.ratios[len(ratioBuckets)].Load()
	fmt.Fprintf(w, "iyp_cost_estimate_ratio_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "iyp_cost_estimate_ratio_sum %g\n", float64(m.ratioSumMicro.Load())/1e6)
	fmt.Fprintf(w, "iyp_cost_estimate_ratio_count %d\n", cum)
}
