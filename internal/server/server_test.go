package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iyp/internal/graph"
)

// newTestServer wraps a freshly-built graph in an MVCC store, the only
// form New accepts (the server always reads through pinned generations).
func newTestServer(g *graph.Graph, cfgs ...Config) *Server {
	return New(graph.NewMVStore(g), cfgs...)
}

func testGraph() *graph.Graph {
	g := graph.New()
	a := g.AddNode([]string{"AS"}, graph.Props{"asn": graph.Int(2497)})
	b := g.AddNode([]string{"AS"}, graph.Props{"asn": graph.Int(65001)})
	p := g.AddNode([]string{"Prefix"}, graph.Props{"prefix": graph.String("192.0.2.0/24")})
	_, _ = g.AddRel("ORIGINATE", a, p, nil)
	_, _ = g.AddRel("PEERS_WITH", a, b, nil)
	return g
}

// bigGraph is large enough that cartesian products are effectively
// unbounded work, for deadline/cancellation tests.
func bigGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode([]string{"N"}, graph.Props{"i": graph.Int(int64(i))})
	}
	return g
}

func post(t *testing.T, srv http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, srv http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

type queryResp struct {
	Columns    []string         `json:"columns"`
	Rows       []map[string]any `json:"rows"`
	Count      int              `json:"count"`
	Truncated  bool             `json:"truncated"`
	TookMS     int64            `json:"took_ms"`
	Generation uint64           `json:"generation"`
}

type errResp struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func TestQueryEndpoint(t *testing.T) {
	srv := newTestServer(testGraph())
	// The v1 path and the legacy alias serve the identical API.
	for _, path := range []string{"/v1/query", "/db/query"} {
		w := post(t, srv, path, `{"query": "MATCH (x:AS) RETURN x.asn AS asn ORDER BY asn"}`)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", path, w.Code, w.Body)
		}
		var resp queryResp
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Count != 2 || len(resp.Rows) != 2 || resp.Truncated {
			t.Fatalf("%s: resp = %+v", path, resp)
		}
		if resp.Rows[0]["asn"] != float64(2497) { // JSON numbers decode as float64
			t.Errorf("%s: first row = %v", path, resp.Rows[0])
		}
	}
}

func TestQueryEndpointWithParams(t *testing.T) {
	srv := newTestServer(testGraph())
	w := post(t, srv, "/v1/query", `{"query": "MATCH (x:AS {asn: $asn}) RETURN count(x) AS n", "params": {"asn": 2497}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp queryResp
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	// JSON integer params must coerce to graph ints for index lookups.
	if resp.Rows[0]["n"] != float64(1) {
		t.Errorf("param query = %v", resp.Rows[0])
	}
}

func TestNormalizeParamNestedMap(t *testing.T) {
	// Integral JSON numbers inside nested objects and lists must arrive
	// as ints, not floats.
	v := normalizeParam(map[string]any{
		"asn":  float64(2497),
		"deep": map[string]any{"n": float64(3), "f": 1.5},
		"list": []any{float64(1), map[string]any{"m": float64(2)}},
	})
	m := v.(map[string]any)
	if _, ok := m["asn"].(int64); !ok {
		t.Errorf("top-level integral number = %T, want int64", m["asn"])
	}
	deep := m["deep"].(map[string]any)
	if _, ok := deep["n"].(int64); !ok {
		t.Errorf("nested integral number = %T, want int64", deep["n"])
	}
	if _, ok := deep["f"].(float64); !ok {
		t.Errorf("nested fractional number = %T, want float64", deep["f"])
	}
	list := m["list"].([]any)
	if _, ok := list[0].(int64); !ok {
		t.Errorf("list integral number = %T, want int64", list[0])
	}
	inner := list[1].(map[string]any)
	if _, ok := inner["m"].(int64); !ok {
		t.Errorf("map-in-list integral number = %T, want int64", inner["m"])
	}
}

func TestNestedMapParamThroughEndpoint(t *testing.T) {
	srv := newTestServer(testGraph())
	w := post(t, srv, "/v1/query",
		`{"query": "MATCH (x:AS {asn: $o.asn}) RETURN count(x) AS n", "params": {"o": {"asn": 2497}}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp queryResp
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if len(resp.Rows) != 1 || resp.Rows[0]["n"] != float64(1) {
		t.Errorf("nested map param rows = %v", resp.Rows)
	}
}

func TestQueryEndpointNodeSerialization(t *testing.T) {
	srv := newTestServer(testGraph())
	w := post(t, srv, "/v1/query", `{"query": "MATCH (x:AS {asn: 2497}) RETURN x"}`)
	var resp queryResp
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	node, ok := resp.Rows[0]["x"].(map[string]any)
	if !ok {
		t.Fatalf("node row = %v", resp.Rows[0])
	}
	if node["labels"].([]any)[0] != "AS" {
		t.Errorf("node labels = %v", node["labels"])
	}
	props := node["properties"].(map[string]any)
	if props["asn"] != float64(2497) {
		t.Errorf("node props = %v", props)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	srv := newTestServer(testGraph())
	cases := []struct {
		body string
		code int
		errc string
	}{
		{`{"query": "MATCH (x:AS RETURN x"}`, http.StatusBadRequest, "parse_error"},
		{`{"query": ""}`, http.StatusBadRequest, "bad_request"},
		{`not json`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		w := post(t, srv, "/v1/query", tc.body)
		if w.Code != tc.code {
			t.Errorf("body %q: status %d, want %d", tc.body, w.Code, tc.code)
		}
		var e errResp
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("body %q: error payload missing: %s", tc.body, w.Body)
		} else if e.Code != tc.errc {
			t.Errorf("body %q: code = %q, want %q", tc.body, e.Code, tc.errc)
		}
	}
	// GET on the query endpoint is not allowed.
	w := get(t, srv, "/v1/query")
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query = %d", w.Code)
	}
}

func TestMaxRowsTruncationFlag(t *testing.T) {
	srv := newTestServer(bigGraph(50), Config{DefaultMaxRows: 10})
	w := post(t, srv, "/v1/query", `{"query": "MATCH (n:N) RETURN n.i AS i"}`)
	var resp queryResp
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if len(resp.Rows) != 10 {
		t.Errorf("rows = %d, want capped 10", len(resp.Rows))
	}
	// The response must not lie: count matches the rows actually
	// returned, and truncation is explicit.
	if resp.Count != 10 {
		t.Errorf("count = %d, want 10 (returned rows)", resp.Count)
	}
	if !resp.Truncated {
		t.Error("truncated flag not set on a capped response")
	}

	// Per-request max_rows narrows the budget further.
	w = post(t, srv, "/v1/query", `{"query": "MATCH (n:N) RETURN n.i AS i", "max_rows": 3}`)
	resp = queryResp{}
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Count != 3 || !resp.Truncated {
		t.Errorf("max_rows=3: count = %d truncated = %v", resp.Count, resp.Truncated)
	}

	// Under the budget: full result, no flag.
	w = post(t, srv, "/v1/query", `{"query": "MATCH (n:N) RETURN n.i AS i", "max_rows": 100}`)
	resp = queryResp{}
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Count != 50 || resp.Truncated {
		t.Errorf("max_rows=100: count = %d truncated = %v", resp.Count, resp.Truncated)
	}
}

func TestQueryDeadlineReturns504(t *testing.T) {
	srv := newTestServer(bigGraph(300))
	t0 := time.Now()
	w := post(t, srv, "/v1/query",
		`{"query": "MATCH (a:N), (b:N), (c:N), (d:N) RETURN count(*)", "timeout_ms": 1}`)
	took := time.Since(t0)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var e errResp
	_ = json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "timeout" {
		t.Errorf("code = %q, want timeout", e.Code)
	}
	if took > time.Second {
		t.Errorf("deadline response took %v", took)
	}
}

func TestQueryCancellationMidQuery(t *testing.T) {
	srv := newTestServer(bigGraph(300))
	// Cancel the request context shortly after the query starts — the
	// same signal a dropped client connection produces.
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/query",
		bytes.NewReader([]byte(`{"query": "MATCH (a:N), (b:N), (c:N), (d:N) RETURN count(*)"}`))).WithContext(ctx)
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var e errResp
	_ = json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "canceled" {
		t.Errorf("code = %q, want canceled", e.Code)
	}
}

func TestConcurrencyLimiterRejects(t *testing.T) {
	// QueueDepth < 0 disables queueing: at capacity, requests shed
	// immediately with 503 + Retry-After — the old semaphore behaviour
	// with the new envelope.
	srv := newTestServer(testGraph(), Config{MaxConcurrent: 2, QueueDepth: -1})
	// Fill the slots directly: deterministic stand-in for two
	// long-running queries in flight.
	srv.adm.slots <- struct{}{}
	srv.adm.slots <- struct{}{}
	w := post(t, srv, "/v1/query", `{"query": "RETURN 1 AS n"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Errorf("shed response is missing Retry-After")
	}
	var e errResp
	_ = json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "overloaded" {
		t.Errorf("code = %q", e.Code)
	}
	// Draining a slot admits queries again.
	<-srv.adm.slots
	w = post(t, srv, "/v1/query", `{"query": "RETURN 1 AS n"}`)
	if w.Code != http.StatusOK {
		t.Errorf("after drain: status = %d", w.Code)
	}
	<-srv.adm.slots
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(testGraph())
	// Repeat one query so the plan cache records hits.
	for i := 0; i < 3; i++ {
		if w := post(t, srv, "/v1/query", `{"query": "MATCH (x:AS) RETURN count(x) AS n"}`); w.Code != 200 {
			t.Fatalf("query %d: %d", i, w.Code)
		}
	}
	post(t, srv, "/v1/query", `{"query": "MATCH (x:AS RETURN"}`) // one parse error

	w := get(t, srv, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	body := w.Body.String()
	metric := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err == nil {
				return v
			}
		}
		t.Fatalf("metric %s not found in:\n%s", name, body)
		return 0
	}
	if n := metric("iyp_queries_total"); n != 4 {
		t.Errorf("iyp_queries_total = %g, want 4", n)
	}
	if n := metric("iyp_plan_cache_hits_total"); n <= 0 {
		t.Errorf("iyp_plan_cache_hits_total = %g, want > 0 after repeated query", n)
	}
	if n := metric("iyp_query_errors_total"); n != 1 {
		t.Errorf("iyp_query_errors_total = %g, want 1", n)
	}
	if n := metric("iyp_rows_returned_total"); n != 3 {
		t.Errorf("iyp_rows_returned_total = %g, want 3", n)
	}
	if n := metric("iyp_queries_in_flight"); n != 0 {
		t.Errorf("iyp_queries_in_flight = %g, want 0 at rest", n)
	}
	if !strings.Contains(body, `iyp_query_duration_seconds_bucket{le="+Inf"} 4`) {
		t.Error("latency histogram +Inf bucket missing or wrong")
	}
}

func TestSlowQueryLogging(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	srv := newTestServer(testGraph(), Config{
		SlowQuery: time.Nanosecond, // everything is slow
		Logf: func(format string, args ...any) {
			mu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	post(t, srv, "/v1/query", `{"query": "MATCH (x:AS) RETURN x.asn AS a"}`)
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 || !strings.Contains(logged[0], "slow query") || !strings.Contains(logged[0], "took_ms=") {
		t.Errorf("slow-query log = %q", logged)
	}
}

func TestConcurrentQueriesRace(t *testing.T) {
	// Hammer one server from many goroutines; meaningful mainly under
	// `go test -race`, which CI runs.
	srv := newTestServer(testGraph(), Config{MaxConcurrent: 32})
	queries := []string{
		`{"query": "MATCH (x:AS) RETURN x.asn AS asn ORDER BY asn"}`,
		`{"query": "MATCH (x:AS)-[:ORIGINATE]-(p:Prefix) RETURN count(p) AS n"}`,
		`{"query": "MATCH (x:AS {asn: $asn}) RETURN x", "params": {"asn": 2497}}`,
		`{"query": "RETURN 1 + 1 AS two"}`,
	}
	var wg sync.WaitGroup
	for wk := 0; wk < 8; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				body := queries[(wk+i)%len(queries)]
				req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader([]byte(body)))
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("worker %d: status %d: %s", wk, w.Code, w.Body)
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	if st := srv.cache.Stats(); st.Hits == 0 {
		t.Error("no plan-cache hits after hammering identical queries")
	}
}

func TestSchemaEndpoint(t *testing.T) {
	srv := newTestServer(testGraph())
	for _, path := range []string{"/v1/schema", "/db/schema"} {
		w := get(t, srv, path)
		if w.Code != http.StatusOK {
			t.Fatalf("%s status = %d", path, w.Code)
		}
		var resp struct {
			Entities      []struct{ Name string } `json:"entities"`
			Relationships []struct{ Name string } `json:"relationships"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Entities) != 24 || len(resp.Relationships) != 24 {
			t.Errorf("%s sizes: %d entities, %d relationships", path, len(resp.Entities), len(resp.Relationships))
		}
	}
}

func TestStatsAndHealthEndpoints(t *testing.T) {
	srv := newTestServer(testGraph())
	w := get(t, srv, "/v1/stats")
	var st struct {
		Nodes int
		Rels  int
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 3 || st.Rels != 2 {
		t.Errorf("stats = %+v", st)
	}
	if w := get(t, srv, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz = %d", w.Code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := newTestServer(testGraph())
	w := post(t, srv, "/v1/explain", `{"query": "MATCH (x:AS)-[:ORIGINATE]->(p:Prefix) RETURN p"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Plan string `json:"plan"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Plan == "" {
		t.Error("empty plan")
	}
	// Parse errors surface as 400.
	if w := post(t, srv, "/v1/explain", `{"query": "MATCH ("}`); w.Code != http.StatusBadRequest {
		t.Errorf("bad query explain status = %d", w.Code)
	}
}

func TestLegacyAliasDeprecationHeaders(t *testing.T) {
	srv := newTestServer(testGraph())
	w := post(t, srv, "/db/query", `{"query": "RETURN 1 AS n"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("legacy alias status = %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("Deprecation"); got != "true" {
		t.Errorf("Deprecation header = %q", got)
	}
	if w.Header().Get("Sunset") == "" {
		t.Error("Sunset header missing on legacy alias")
	}
	if link := w.Header().Get("Link"); !strings.Contains(link, "/v1/query") || !strings.Contains(link, "successor-version") {
		t.Errorf("Link header = %q, want successor-version pointing at /v1/query", link)
	}
	// The v1 path must NOT carry deprecation headers.
	w = post(t, srv, "/v1/query", `{"query": "RETURN 1 AS n"}`)
	if w.Header().Get("Deprecation") != "" || w.Header().Get("Sunset") != "" {
		t.Error("deprecation headers leaked onto the /v1 path")
	}
}

func TestLegacyAliasDisabled(t *testing.T) {
	srv := newTestServer(testGraph(), Config{DisableLegacy: true})
	for _, tc := range []struct{ method, path string }{
		{http.MethodPost, "/db/query"},
		{http.MethodGet, "/db/schema"},
		{http.MethodGet, "/db/stats"},
	} {
		req := httptest.NewRequest(tc.method, tc.path, bytes.NewReader([]byte(`{"query":"RETURN 1 AS n"}`)))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusGone {
			t.Errorf("%s %s = %d, want 410", tc.method, tc.path, w.Code)
		}
		var e errResp
		_ = json.Unmarshal(w.Body.Bytes(), &e)
		if e.Code != "legacy_disabled" {
			t.Errorf("%s: code = %q", tc.path, e.Code)
		}
	}
	// v1 still serves.
	if w := post(t, srv, "/v1/query", `{"query": "RETURN 1 AS n"}`); w.Code != http.StatusOK {
		t.Errorf("/v1/query with legacy disabled = %d", w.Code)
	}
}

func TestWriteQueryRejectedReadOnly(t *testing.T) {
	srv := newTestServer(testGraph())
	for _, q := range []string{
		`{"query": "CREATE (n:X) RETURN n"}`,
		`{"query": "MATCH (x:AS) SET x.seen = true"}`,
		`{"query": "MATCH (x:AS) DELETE x"}`,
		`{"query": "MERGE (n:X {k: 1}) RETURN n"}`,
		`{"query": "MATCH (x:AS) REMOVE x.asn"}`,
		`{"query": "RETURN 1 AS n UNION MATCH (x) SET x.k = 1 RETURN 1 AS n"}`,
	} {
		w := post(t, srv, "/v1/query", q)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, w.Code)
		}
		var e errResp
		_ = json.Unmarshal(w.Body.Bytes(), &e)
		if e.Code != "read_only" {
			t.Errorf("%s: code = %q, want read_only", q, e.Code)
		}
	}
}

func TestGenerationsEndpointAndPinning(t *testing.T) {
	st := graph.NewMVStore(testGraph())
	srv := New(st)

	// Initially one generation.
	w := get(t, srv, "/v1/generations")
	if w.Code != http.StatusOK {
		t.Fatalf("generations status = %d", w.Code)
	}
	var gens generationsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &gens); err != nil {
		t.Fatal(err)
	}
	if gens.Current != 1 || len(gens.Generations) != 1 || !gens.Generations[0].Current {
		t.Fatalf("initial generations = %+v", gens)
	}

	// Every query response reports the generation it read.
	w = post(t, srv, "/v1/query", `{"query": "MATCH (x:AS) RETURN count(x) AS n"}`)
	var resp queryResp
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Generation != 1 {
		t.Fatalf("query generation = %d, want 1", resp.Generation)
	}

	// Publish generation 2 out-of-band (the ingest path).
	if _, err := st.Update(func(g *graph.Graph) error {
		g.AddNode([]string{"AS"}, graph.Props{"asn": graph.Int(64999)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Unpinned queries see the new generation...
	w = post(t, srv, "/v1/query", `{"query": "MATCH (x:AS) RETURN count(x) AS n"}`)
	resp = queryResp{}
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Generation != 2 || resp.Rows[0]["n"] != float64(3) {
		t.Fatalf("unpinned after write: gen=%d rows=%v", resp.Generation, resp.Rows)
	}
	// ...while an explicitly pinned request still reads generation 1.
	w = post(t, srv, "/v1/query", `{"query": "MATCH (x:AS) RETURN count(x) AS n", "generation": 1}`)
	resp = queryResp{}
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if resp.Generation != 1 || resp.Rows[0]["n"] != float64(2) {
		t.Fatalf("pinned read: gen=%d rows=%v", resp.Generation, resp.Rows)
	}

	// /v1/generations now lists both.
	w = get(t, srv, "/v1/generations")
	gens = generationsResponse{}
	_ = json.Unmarshal(w.Body.Bytes(), &gens)
	if gens.Current != 2 || len(gens.Generations) != 2 {
		t.Fatalf("generations after write = %+v", gens)
	}

	// A reclaimed/unknown generation is a clean 404.
	w = post(t, srv, "/v1/query", `{"query": "RETURN 1 AS n", "generation": 99}`)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown generation status = %d, want 404", w.Code)
	}
	var e errResp
	_ = json.Unmarshal(w.Body.Bytes(), &e)
	if e.Code != "generation_gone" {
		t.Errorf("code = %q, want generation_gone", e.Code)
	}
}

func TestMetricsGenerationGauges(t *testing.T) {
	st := graph.NewMVStore(testGraph())
	srv := New(st)
	if _, err := st.Update(func(g *graph.Graph) error {
		g.AddNode([]string{"AS"}, nil)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	w := get(t, srv, "/metrics")
	body := w.Body.String()
	for _, want := range []string{
		"iyp_generation_current 2",
		"iyp_generations_live 2",
		"iyp_generations_reclaimed_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
