package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"iyp/internal/graph"
)

func testGraph() *graph.Graph {
	g := graph.New()
	a := g.AddNode([]string{"AS"}, graph.Props{"asn": graph.Int(2497)})
	b := g.AddNode([]string{"AS"}, graph.Props{"asn": graph.Int(65001)})
	p := g.AddNode([]string{"Prefix"}, graph.Props{"prefix": graph.String("192.0.2.0/24")})
	_, _ = g.AddRel("ORIGINATE", a, p, nil)
	_, _ = g.AddRel("PEERS_WITH", a, b, nil)
	return g
}

func post(t *testing.T, srv http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/db/query", bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func TestQueryEndpoint(t *testing.T) {
	srv := New(testGraph())
	w := post(t, srv, `{"query": "MATCH (x:AS) RETURN x.asn AS asn ORDER BY asn"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Columns []string         `json:"columns"`
		Rows    []map[string]any `json:"rows"`
		Count   int              `json:"count"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || len(resp.Rows) != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Rows[0]["asn"] != float64(2497) { // JSON numbers decode as float64
		t.Errorf("first row = %v", resp.Rows[0])
	}
}

func TestQueryEndpointWithParams(t *testing.T) {
	srv := New(testGraph())
	w := post(t, srv, `{"query": "MATCH (x:AS {asn: $asn}) RETURN count(x) AS n", "params": {"asn": 2497}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Rows []map[string]any `json:"rows"`
	}
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	// JSON integer params must coerce to graph ints for index lookups.
	if resp.Rows[0]["n"] != float64(1) {
		t.Errorf("param query = %v", resp.Rows[0])
	}
}

func TestQueryEndpointNodeSerialization(t *testing.T) {
	srv := New(testGraph())
	w := post(t, srv, `{"query": "MATCH (x:AS {asn: 2497}) RETURN x"}`)
	var resp struct {
		Rows []map[string]any `json:"rows"`
	}
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	node, ok := resp.Rows[0]["x"].(map[string]any)
	if !ok {
		t.Fatalf("node row = %v", resp.Rows[0])
	}
	if node["labels"].([]any)[0] != "AS" {
		t.Errorf("node labels = %v", node["labels"])
	}
	props := node["properties"].(map[string]any)
	if props["asn"] != float64(2497) {
		t.Errorf("node props = %v", props)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	srv := New(testGraph())
	cases := []struct {
		body string
		code int
	}{
		{`{"query": "MATCH (x:AS RETURN x"}`, http.StatusBadRequest}, // parse error
		{`{"query": ""}`, http.StatusBadRequest},                     // missing query
		{`not json`, http.StatusBadRequest},                          // bad body
	}
	for _, tc := range cases {
		w := post(t, srv, tc.body)
		if w.Code != tc.code {
			t.Errorf("body %q: status %d, want %d", tc.body, w.Code, tc.code)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("body %q: error payload missing: %s", tc.body, w.Body)
		}
	}
	// GET on the query endpoint is not allowed.
	req := httptest.NewRequest(http.MethodGet, "/db/query", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /db/query = %d", w.Code)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	srv := New(testGraph())
	req := httptest.NewRequest(http.MethodGet, "/db/schema", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp struct {
		Entities      []struct{ Name string } `json:"entities"`
		Relationships []struct{ Name string } `json:"relationships"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Entities) != 24 || len(resp.Relationships) != 24 {
		t.Errorf("schema sizes: %d entities, %d relationships", len(resp.Entities), len(resp.Relationships))
	}
}

func TestStatsAndHealthEndpoints(t *testing.T) {
	srv := New(testGraph())
	req := httptest.NewRequest(http.MethodGet, "/db/stats", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	var st struct {
		Nodes int
		Rels  int
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 3 || st.Rels != 2 {
		t.Errorf("stats = %+v", st)
	}
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Errorf("healthz = %d", w.Code)
	}
}

func TestMaxRowsCap(t *testing.T) {
	g := graph.New()
	for i := 0; i < 50; i++ {
		g.AddNode([]string{"N"}, graph.Props{"i": graph.Int(int64(i))})
	}
	srv := New(g)
	srv.MaxRows = 10
	w := post(t, srv, `{"query": "MATCH (n:N) RETURN n.i AS i"}`)
	var resp struct {
		Rows  []map[string]any `json:"rows"`
		Count int              `json:"count"`
	}
	_ = json.Unmarshal(w.Body.Bytes(), &resp)
	if len(resp.Rows) != 10 {
		t.Errorf("rows = %d, want capped 10", len(resp.Rows))
	}
	if resp.Count != 50 {
		t.Errorf("count = %d, want full 50", resp.Count)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := New(testGraph())
	req := httptest.NewRequest(http.MethodPost, "/db/explain",
		bytes.NewReader([]byte(`{"query": "MATCH (x:AS)-[:ORIGINATE]->(p:Prefix) RETURN p"}`)))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Plan string `json:"plan"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Plan == "" {
		t.Error("empty plan")
	}
	// Parse errors surface as 400.
	req = httptest.NewRequest(http.MethodPost, "/db/explain", bytes.NewReader([]byte(`{"query": "MATCH ("}`)))
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("bad query explain status = %d", w.Code)
	}
}
