package studies

import (
	"context"
	"sort"

	"iyp/internal/algo"
	"iyp/internal/graph"
)

// Dependency types in the DNS resolution chain (paper §5.2).
const (
	DepDirect       = "direct"
	DepThirdParty   = "thirdparty"
	DepHierarchical = "hierarchical"
)

// SPoFEntry is one bar of Figures 5/6: how many domains have this
// country (or AS) as a single point of failure, per dependency type.
type SPoFEntry struct {
	// Key is a country code (Figure 5) or "AS<asn> <name>" (Figure 6).
	Key          string
	Direct       int
	ThirdParty   int
	Hierarchical int
}

// Total is the entry's overall SPoF count.
func (e SPoFEntry) Total() int { return e.Direct + e.ThirdParty + e.Hierarchical }

// SPoFResult is the full Figure 5 or Figure 6 series for one top list.
type SPoFResult struct {
	List    string // ranking name
	Level   string // "country" or "AS"
	Entries []SPoFEntry
	// Domains is the number of domains analyzed.
	Domains int
}

// SPoF computes country- or AS-level single points of failure in the DNS
// chain of the given top list (Figure 5 when level == "country", Figure 6
// when level == "AS"). A domain contributes a SPoF for a dependency type
// when every one of its dependencies of that type maps to a single
// country/AS — losing it breaks resolution.
//
// The study runs on the analytics engine: one bulk scan harvests, per
// dependency type, a derived bipartite domain→key graph (keys are the
// registration countries from the RIR delegated files, or "AS<asn> name"
// strings), and the K=1 dependency kernel counts, per key, the domains
// for which it is the sole reachable sink — exactly the "set size == 1"
// SPoF condition.
func SPoF(g *graph.Graph, list, level string, topN int) (SPoFResult, error) {
	out := SPoFResult{List: list, Level: level}
	types := []string{DepDirect, DepThirdParty, DepHierarchical}

	bp := newBipartite()
	edges := map[string][][2]int32{} // dep type -> (domain, key) index pairs

	g.BulkRead(func(br *graph.BulkReader) {
		rankT, okRank := br.TypeID("RANK")
		depT, okDep := br.TypeID("DEPENDS_ON")
		countryT, _ := br.TypeID("COUNTRY")
		nameT, _ := br.TypeID("NAME")
		domL, okDom := br.LabelID("DomainName")
		asL, okAS := br.LabelID("AS")
		countryL, _ := br.LabelID("Country")
		nameL, _ := br.LabelID("Name")
		if !okRank || !okDep || !okDom || !okAS {
			return
		}
		ranking := findRanking(br, list)
		if ranking == 0 {
			return
		}

		// The key of an AS node. Matching the original non-optional Cypher
		// join, an AS without a delegated-stats country yields no key even
		// at the AS level.
		keyCache := map[graph.NodeID]string{}
		keyOf := func(a graph.NodeID) string {
			if k, ok := keyCache[a]; ok {
				return k
			}
			cc := ""
			br.EachRelOf(a, graph.DirBoth, func(rid graph.RelID, typ uint16, other graph.NodeID) bool {
				if typ != countryT || !br.NodeHasLabelID(other, countryL) {
					return true
				}
				if ref, _ := br.RelProp(rid, "reference_name").AsString(); ref != "nro.delegated_stats" {
					return true
				}
				cc, _ = br.NodeProp(other, "country_code").AsString()
				return cc == ""
			})
			k := ""
			if cc != "" {
				if level == "country" {
					k = cc
				} else {
					asn, _ := br.NodeProp(a, "asn").AsInt()
					name := ""
					br.EachRelOf(a, graph.DirBoth, func(rid graph.RelID, typ uint16, other graph.NodeID) bool {
						if typ != nameT || !br.NodeHasLabelID(other, nameL) {
							return true
						}
						if ref, _ := br.RelProp(rid, "reference_name").AsString(); ref != "bgptools.as_names" {
							return true
						}
						name, _ = br.NodeProp(other, "name").AsString()
						return name == ""
					})
					k = asKey(asn, name)
				}
			}
			keyCache[a] = k
			return k
		}

		seen := map[graph.NodeID]bool{}
		br.EachRelOf(ranking, graph.DirBoth, func(_ graph.RelID, typ uint16, d graph.NodeID) bool {
			if typ != rankT || !br.NodeHasLabelID(d, domL) || seen[d] {
				return true
			}
			seen[d] = true
			br.EachRelOf(d, graph.DirOut, func(rid graph.RelID, t2 uint16, a graph.NodeID) bool {
				if t2 != depT || !br.NodeHasLabelID(a, asL) {
					return true
				}
				dt, _ := br.RelProp(rid, "dep_type").AsString()
				if dt == "" {
					return true
				}
				k := keyOf(a)
				if k == "" {
					return true
				}
				edges[dt] = append(edges[dt], [2]int32{bp.domain(d), bp.key(k)})
				return true
			})
			return true
		})
	})
	out.Domains = bp.numDomains()

	// One derived view and one kernel run per dependency type: keys are
	// the sinks; count[key] = domains whose every type-typ dependency
	// lands on that single key.
	nd := bp.numDomains()
	counts := map[string]*SPoFEntry{}
	bump := func(key, typ string, n int) {
		e := counts[key]
		if e == nil {
			e = &SPoFEntry{Key: key}
			counts[key] = e
		}
		switch typ {
		case DepDirect:
			e.Direct += n
		case DepThirdParty:
			e.ThirdParty += n
		case DepHierarchical:
			e.Hierarchical += n
		}
	}
	ctx := context.Background()
	for _, typ := range types {
		pairs := edges[typ]
		if len(pairs) == 0 {
			continue
		}
		from := make([]int32, len(pairs))
		to := make([]int32, len(pairs))
		for i, p := range pairs {
			from[i] = p[0]
			to[i] = int32(nd) + p[1]
		}
		v := algo.NewDerived(bp.n(), from, to, nil)
		count, err := algo.Dependency(ctx, v, bp.sources(), algo.DependencyOptions{K: 1})
		if err != nil {
			return out, err
		}
		for j, key := range bp.keys {
			if c := count[nd+j]; c > 0 {
				bump(key, typ, int(c))
			}
		}
	}

	for _, e := range counts {
		out.Entries = append(out.Entries, *e)
	}
	sort.Slice(out.Entries, func(i, j int) bool {
		if out.Entries[i].Total() != out.Entries[j].Total() {
			return out.Entries[i].Total() > out.Entries[j].Total()
		}
		return out.Entries[i].Key < out.Entries[j].Key
	})
	if topN > 0 && len(out.Entries) > topN {
		out.Entries = out.Entries[:topN]
	}
	return out, nil
}

func asKey(asn int64, name string) string {
	if name == "" {
		return formatASN(asn)
	}
	return formatASN(asn) + " " + name
}

func formatASN(asn int64) string {
	// Tiny integer formatting without fmt in the hot path.
	if asn == 0 {
		return "AS0"
	}
	var buf [24]byte
	i := len(buf)
	n := asn
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return "AS" + string(buf[i:])
}
