package studies

import (
	"sort"

	"iyp/internal/graph"
)

// Dependency types in the DNS resolution chain (paper §5.2).
const (
	DepDirect       = "direct"
	DepThirdParty   = "thirdparty"
	DepHierarchical = "hierarchical"
)

// SPoFEntry is one bar of Figures 5/6: how many domains have this
// country (or AS) as a single point of failure, per dependency type.
type SPoFEntry struct {
	// Key is a country code (Figure 5) or "AS<asn> <name>" (Figure 6).
	Key          string
	Direct       int
	ThirdParty   int
	Hierarchical int
}

// Total is the entry's overall SPoF count.
func (e SPoFEntry) Total() int { return e.Direct + e.ThirdParty + e.Hierarchical }

// SPoFResult is the full Figure 5 or Figure 6 series for one top list.
type SPoFResult struct {
	List    string // ranking name
	Level   string // "country" or "AS"
	Entries []SPoFEntry
	// Domains is the number of domains analyzed.
	Domains int
}

// spofQuery pulls, per ranked domain, its DNS-chain dependencies with
// type, AS and registration country (RIR delegated files, as the paper
// specifies).
const spofQuery = `
MATCH (:Ranking {name:$list})-[:RANK]-(d:DomainName)-[dep:DEPENDS_ON]->(a:AS)
MATCH (a)-[:COUNTRY {reference_name:'nro.delegated_stats'}]-(c:Country)
OPTIONAL MATCH (a)-[:NAME {reference_name:'bgptools.as_names'}]-(n:Name)
RETURN d.name AS domain, dep.dep_type AS typ, a.asn AS asn, c.country_code AS cc, n.name AS asname`

// SPoF computes country- or AS-level single points of failure in the DNS
// chain of the given top list (Figure 5 when level == "country", Figure 6
// when level == "AS"). A domain contributes a SPoF for a dependency type
// when every one of its dependencies of that type maps to a single
// country/AS — losing it breaks resolution.
func SPoF(g *graph.Graph, list, level string, topN int) (SPoFResult, error) {
	out := SPoFResult{List: list, Level: level}
	res, err := run(g, "spof", spofQuery, map[string]graph.Value{"list": graph.String(list)})
	if err != nil {
		return out, err
	}
	// domain -> dep type -> set of keys.
	type depSet map[string]map[string]bool
	domains := map[string]depSet{}
	for i := range res.Rows {
		dv, _ := res.Get(i, "domain")
		tv, _ := res.Get(i, "typ")
		domain, _ := dv.AsString()
		typ, _ := tv.AsString()
		var key string
		if level == "country" {
			cv, _ := res.Get(i, "cc")
			key, _ = cv.AsString()
		} else {
			av, _ := res.Get(i, "asn")
			asn, _ := av.AsInt()
			nv, _ := res.Get(i, "asname")
			name, _ := nv.AsString()
			key = asKey(asn, name)
		}
		if key == "" || typ == "" {
			continue
		}
		ds := domains[domain]
		if ds == nil {
			ds = depSet{}
			domains[domain] = ds
		}
		if ds[typ] == nil {
			ds[typ] = map[string]bool{}
		}
		ds[typ][key] = true
	}
	out.Domains = len(domains)

	counts := map[string]*SPoFEntry{}
	bump := func(key, typ string) {
		e := counts[key]
		if e == nil {
			e = &SPoFEntry{Key: key}
			counts[key] = e
		}
		switch typ {
		case DepDirect:
			e.Direct++
		case DepThirdParty:
			e.ThirdParty++
		case DepHierarchical:
			e.Hierarchical++
		}
	}
	for _, ds := range domains {
		for typ, keys := range ds {
			if len(keys) != 1 {
				continue // redundancy across countries/ASes: no SPoF
			}
			for key := range keys {
				bump(key, typ)
			}
		}
	}
	for _, e := range counts {
		out.Entries = append(out.Entries, *e)
	}
	sort.Slice(out.Entries, func(i, j int) bool {
		if out.Entries[i].Total() != out.Entries[j].Total() {
			return out.Entries[i].Total() > out.Entries[j].Total()
		}
		return out.Entries[i].Key < out.Entries[j].Key
	})
	if topN > 0 && len(out.Entries) > topN {
		out.Entries = out.Entries[:topN]
	}
	return out, nil
}

func asKey(asn int64, name string) string {
	if name == "" {
		return formatASN(asn)
	}
	return formatASN(asn) + " " + name
}

func formatASN(asn int64) string {
	// Tiny integer formatting without fmt in the hot path.
	if asn == 0 {
		return "AS0"
	}
	var buf [24]byte
	i := len(buf)
	n := asn
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return "AS" + string(buf[i:])
}
