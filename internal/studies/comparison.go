package studies

import (
	"fmt"
	"sort"
	"strings"

	"iyp/internal/graph"
)

// Dataset comparison (paper §6.1, "Datasets comparison"): because the
// knowledge graph unifies datasets while keeping each one addressable via
// reference_name, diffing two datasets that should agree is a short pair
// of queries. The paper reports discovering a real error affecting IPv6
// prefixes in the BGPKIT feed this way and getting it fixed upstream; the
// simulated BGPKIT feed carries the same class of error (see
// simnet.Config.PlantedOriginErrors), which this study must surface.

// OriginDiscrepancy is one prefix whose origin sets differ between two
// origin datasets.
type OriginDiscrepancy struct {
	Prefix string
	AF     int64
	// OnlyInA / OnlyInB list origin ASNs claimed by exactly one dataset.
	OnlyInA []int64
	OnlyInB []int64
}

// ComparisonResult is the outcome of diffing two origin datasets.
type ComparisonResult struct {
	DatasetA, DatasetB string
	// PrefixesCompared counts prefixes present in both datasets.
	PrefixesCompared int
	Discrepancies    []OriginDiscrepancy
}

// String renders the comparison like the discussion in §6.1.
func (r ComparisonResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "compared %d prefixes between %s and %s: %d discrepancies\n",
		r.PrefixesCompared, r.DatasetA, r.DatasetB, len(r.Discrepancies))
	for _, d := range r.Discrepancies {
		fmt.Fprintf(&sb, "  %-26s (af %d)  only in %s: %v  only in %s: %v\n",
			d.Prefix, d.AF, r.DatasetA, d.OnlyInA, r.DatasetB, d.OnlyInB)
	}
	return sb.String()
}

// originSet fetches prefix → origin-AS set for one dataset.
func originSet(g *graph.Graph, query string) (map[string]map[int64]bool, map[string]int64, error) {
	res, err := run(g, "dataset-comparison", query, nil)
	if err != nil {
		return nil, nil, err
	}
	origins := map[string]map[int64]bool{}
	afs := map[string]int64{}
	for i := range res.Rows {
		pv, _ := res.Get(i, "prefix")
		av, _ := res.Get(i, "asn")
		fv, _ := res.Get(i, "af")
		prefix, _ := pv.AsString()
		asn, ok := av.AsInt()
		if prefix == "" || !ok {
			continue
		}
		set := origins[prefix]
		if set == nil {
			set = map[int64]bool{}
			origins[prefix] = set
		}
		set[asn] = true
		if af, ok := fv.AsInt(); ok {
			afs[prefix] = af
		}
	}
	return origins, afs, nil
}

// CompareOriginDatasets diffs the BGPKIT pfx2asn originations against the
// origins recorded by IHR's ROV dataset, reporting every prefix on which
// they disagree. Healthy feeds agree everywhere; disagreements are
// data-quality findings to report upstream (paper §2.3/§6.1).
func CompareOriginDatasets(g *graph.Graph) (ComparisonResult, error) {
	out := ComparisonResult{DatasetA: "bgpkit.pfx2asn", DatasetB: "ihr.rov"}

	bgpkit, afA, err := originSet(g, `
MATCH (a:AS)-[:ORIGINATE {reference_name:'bgpkit.pfx2asn'}]->(p:Prefix)
RETURN DISTINCT p.prefix AS prefix, a.asn AS asn, p.af AS af`)
	if err != nil {
		return out, err
	}
	ihr, afB, err := originSet(g, `
MATCH (p:Prefix)-[c:CATEGORIZED {reference_name:'ihr.rov'}]-(:Tag)
RETURN DISTINCT p.prefix AS prefix, c.origin_asn AS asn, p.af AS af`)
	if err != nil {
		return out, err
	}

	for prefix, setA := range bgpkit {
		setB, ok := ihr[prefix]
		if !ok {
			continue // not comparable: the prefix is absent from B
		}
		out.PrefixesCompared++
		var onlyA, onlyB []int64
		for asn := range setA {
			if !setB[asn] {
				onlyA = append(onlyA, asn)
			}
		}
		for asn := range setB {
			if !setA[asn] {
				onlyB = append(onlyB, asn)
			}
		}
		if len(onlyA) == 0 && len(onlyB) == 0 {
			continue
		}
		sort.Slice(onlyA, func(i, j int) bool { return onlyA[i] < onlyA[j] })
		sort.Slice(onlyB, func(i, j int) bool { return onlyB[i] < onlyB[j] })
		af := afA[prefix]
		if af == 0 {
			af = afB[prefix]
		}
		out.Discrepancies = append(out.Discrepancies, OriginDiscrepancy{
			Prefix: prefix, AF: af, OnlyInA: onlyA, OnlyInB: onlyB,
		})
	}
	sort.Slice(out.Discrepancies, func(i, j int) bool {
		return out.Discrepancies[i].Prefix < out.Discrepancies[j].Prefix
	})
	return out, nil
}
