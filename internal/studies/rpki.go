// Package studies reproduces the paper's evaluation on top of the
// knowledge graph: the RiPKI study (§4.1, Table 2), the DNS-robustness
// study (§4.2, Tables 3-4), their extensions (Table 5, §5.1), and the
// SPoF-in-the-DNS-chain analysis (§5.2, Figures 5-6). Every study is a
// handful of IYP queries plus a few lines of aggregation, exactly like the
// paper's Jupyter notebooks.
package studies

import (
	"fmt"
	"strings"

	"iyp/internal/cypher"
	"iyp/internal/graph"
)

// TrancoRankingName is the Ranking node the studies pivot on.
const TrancoRankingName = "Tranco top 1M"

// run executes a query, wrapping errors with the study context.
func run(g *graph.Graph, study, q string, params map[string]graph.Value) (*cypher.Result, error) {
	res, err := cypher.Run(g, q, params)
	if err != nil {
		return nil, fmt.Errorf("studies: %s: %w", study, err)
	}
	return res, nil
}

// rpkiCovered reports whether an IHR ROV tag label means "covered by a
// ROA" (valid or invalid — everything except NotFound).
func rpkiCovered(label string) bool {
	return strings.HasPrefix(label, "RPKI") && label != "RPKI NotFound"
}

// rpkiInvalid reports whether a tag label is one of the two invalid
// states.
func rpkiInvalid(label string) bool {
	return strings.HasPrefix(label, "RPKI Invalid")
}

// RPKIResult is the 2024 column of Table 2, plus the max-length share of
// invalids quoted in §4.1.3.
type RPKIResult struct {
	// TotalPrefixes is the number of distinct prefixes hosting Tranco
	// domains (the denominator of CoveredPct/InvalidPct).
	TotalPrefixes int
	// InvalidPct is the share of prefixes with an RPKI-invalid
	// announcement (paper: 0.12%).
	InvalidPct float64
	// InvalidMaxLenPct is the share of invalids caused by a wrong max
	// length (paper: 75%).
	InvalidMaxLenPct float64
	// CoveredPct is the share of prefixes covered by RPKI (paper: 52.2%).
	CoveredPct float64
	// Top100kPct / Bottom100kPct are coverage for the first and last
	// tenth of the ranking (paper: 55.2% / 61.5%).
	Top100kPct    float64
	Bottom100kPct float64
	// CDNPct is coverage over prefixes originated by
	// 'Content Delivery Network'-tagged ASes hosting Tranco domains
	// (paper: 68.4%).
	CDNPct float64
}

// rpkiPrefixQuery returns the distinct (prefix, RPKI tag) pairs for
// domains in a rank window (0,0 = all). It follows the paper's Listing 4:
// ranked domain -> hostname -> OpenINTEL resolution -> covering prefix ->
// IHR ROV tag.
const rpkiPrefixQuery = `
MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK]-(d:DomainName)
WHERE r.rank >= $lo AND r.rank <= $hi
MATCH (d)-[:PART_OF]-(h:HostName)-[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI'
RETURN DISTINCT pfx.prefix AS prefix, t.label AS label`

// rpkiCDNQuery restricts the prefixes to CDN-originated ones, using the
// BGP.Tools tag as in §4.1.3.
const rpkiCDNQuery = `
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)
MATCH (d)-[:PART_OF]-(h:HostName)-[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI'
MATCH (pfx)-[:ORIGINATE]-(:AS)-[:CATEGORIZED]-(:Tag {label:'Content Delivery Network'})
RETURN DISTINCT pfx.prefix AS prefix, t.label AS label`

// prefixCoverage folds (prefix,label) rows into coverage statistics. A
// prefix counts as covered/invalid if any of its origins is.
func prefixCoverage(res *cypher.Result) (total int, coveredPct, invalidPct, invalidMaxLenPct float64) {
	type state struct{ covered, invalid, moreSpecific bool }
	byPrefix := map[string]*state{}
	for i := range res.Rows {
		pv, _ := res.Get(i, "prefix")
		lv, _ := res.Get(i, "label")
		prefix, ok1 := pv.AsString()
		label, ok2 := lv.AsString()
		if !ok1 || !ok2 {
			continue
		}
		st := byPrefix[prefix]
		if st == nil {
			st = &state{}
			byPrefix[prefix] = st
		}
		if rpkiCovered(label) {
			st.covered = true
		}
		if rpkiInvalid(label) {
			st.invalid = true
			if label == "RPKI Invalid, more specific" {
				st.moreSpecific = true
			}
		}
	}
	total = len(byPrefix)
	if total == 0 {
		return 0, 0, 0, 0
	}
	var covered, invalid, moreSpecific int
	for _, st := range byPrefix {
		if st.covered {
			covered++
		}
		if st.invalid {
			invalid++
			if st.moreSpecific {
				moreSpecific++
			}
		}
	}
	coveredPct = pct(covered, total)
	invalidPct = pct(invalid, total)
	if invalid > 0 {
		invalidMaxLenPct = pct(moreSpecific, invalid)
	}
	return total, coveredPct, invalidPct, invalidMaxLenPct
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// trancoSize returns the number of ranked Tranco domains.
func trancoSize(g *graph.Graph) (int, error) {
	res, err := run(g, "tranco-size",
		`MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName) RETURN count(DISTINCT d) AS n`, nil)
	if err != nil {
		return 0, err
	}
	n, err := res.ScalarInt()
	return int(n), err
}

// RPKI reproduces the RiPKI study (Table 2's 2024 row). The "Top 100k" and
// "Bottom 100k" windows scale to the first and last tenth of the simulated
// list, preserving the paper's 100k-out-of-1M proportions.
func RPKI(g *graph.Graph) (RPKIResult, error) {
	var out RPKIResult
	n, err := trancoSize(g)
	if err != nil {
		return out, err
	}
	window := func(lo, hi int) (*cypher.Result, error) {
		return run(g, "ripki", rpkiPrefixQuery, map[string]graph.Value{
			"lo": graph.Int(int64(lo)), "hi": graph.Int(int64(hi)),
		})
	}

	all, err := window(1, n)
	if err != nil {
		return out, err
	}
	out.TotalPrefixes, out.CoveredPct, out.InvalidPct, out.InvalidMaxLenPct = prefixCoverage(all)

	top, err := window(1, n/10)
	if err != nil {
		return out, err
	}
	_, out.Top100kPct, _, _ = prefixCoverage(top)

	bottom, err := window(n-n/10+1, n)
	if err != nil {
		return out, err
	}
	_, out.Bottom100kPct, _, _ = prefixCoverage(bottom)

	cdn, err := run(g, "ripki-cdn", rpkiCDNQuery, nil)
	if err != nil {
		return out, err
	}
	_, out.CDNPct, _, _ = prefixCoverage(cdn)
	return out, nil
}

// CategoryCoverage is one row of the §4.1.4 analysis: RPKI coverage of
// prefixes originated by ASes carrying a BGP.Tools tag.
type CategoryCoverage struct {
	Tag        string
	Prefixes   int
	CoveredPct float64
}

// RPKIByCategory reproduces §4.1.4: RPKI deployment per AS classification
// tag (paper: Academic 16%, Government 21%, DDoS Mitigation 76%).
func RPKIByCategory(g *graph.Graph, tags []string) ([]CategoryCoverage, error) {
	const q = `
MATCH (pfx:Prefix)-[:ORIGINATE]-(:AS)-[:CATEGORIZED {reference_name:'bgptools.tags'}]-(:Tag {label:$tag})
MATCH (pfx)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI'
RETURN DISTINCT pfx.prefix AS prefix, t.label AS label`
	var out []CategoryCoverage
	for _, tag := range tags {
		res, err := run(g, "rpki-by-category", q, map[string]graph.Value{"tag": graph.String(tag)})
		if err != nil {
			return nil, err
		}
		total, covered, _, _ := prefixCoverage(res)
		out = append(out, CategoryCoverage{Tag: tag, Prefixes: total, CoveredPct: covered})
	}
	return out, nil
}

// NameserverRPKIResult is §5.1.1: RPKI coverage of the DNS infrastructure.
type NameserverRPKIResult struct {
	// PrefixCoveredPct is the share of nameserver-hosting prefixes
	// covered by RPKI (paper: 48%).
	PrefixCoveredPct float64
	// DomainCoveredPct is the share of Tranco domains served by at least
	// one RPKI-covered nameserver (paper: 84%).
	DomainCoveredPct float64
	// Prefixes and Domains are the respective denominators.
	Prefixes int
	Domains  int
}

// NameserverRPKI reproduces §5.1.1 by swapping the hostname branch of the
// RiPKI query for the MANAGED_BY branch (the paper's description of the
// reused query).
func NameserverRPKI(g *graph.Graph) (NameserverRPKIResult, error) {
	const q = `
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)-[:MANAGED_BY]-(ns:AuthoritativeNameServer)
MATCH (ns)-[:RESOLVES_TO]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI'
RETURN d.name AS domain, pfx.prefix AS prefix, t.label AS label`
	var out NameserverRPKIResult
	res, err := run(g, "nameserver-rpki", q, nil)
	if err != nil {
		return out, err
	}
	prefixCovered := map[string]bool{}
	domainCovered := map[string]bool{}
	for i := range res.Rows {
		dv, _ := res.Get(i, "domain")
		pv, _ := res.Get(i, "prefix")
		lv, _ := res.Get(i, "label")
		domain, _ := dv.AsString()
		prefix, _ := pv.AsString()
		label, _ := lv.AsString()
		cov := rpkiCovered(label)
		prefixCovered[prefix] = prefixCovered[prefix] || cov
		domainCovered[domain] = domainCovered[domain] || cov
	}
	out.Prefixes = len(prefixCovered)
	out.Domains = len(domainCovered)
	var pc, dc int
	for _, v := range prefixCovered {
		if v {
			pc++
		}
	}
	for _, v := range domainCovered {
		if v {
			dc++
		}
	}
	out.PrefixCoveredPct = pct(pc, out.Prefixes)
	out.DomainCoveredPct = pct(dc, out.Domains)
	return out, nil
}

// DomainWeightedRPKIResult is §5.1.2: counting domains instead of
// prefixes.
type DomainWeightedRPKIResult struct {
	// TrancoPct is the share of Tranco domains hosted on RPKI-covered
	// prefixes (paper: 78.8% vs 52.2% prefix-weighted).
	TrancoPct float64
	// CDNPct is the same over CDN-hosted domains (paper: 96% vs 68.4%).
	CDNPct float64
	// Domains / CDNDomains are the denominators.
	Domains    int
	CDNDomains int
}

// DomainWeightedRPKI reproduces §5.1.2 by changing the RETURN statement of
// the RiPKI query to count hostnames (domains) instead of prefixes.
func DomainWeightedRPKI(g *graph.Graph) (DomainWeightedRPKIResult, error) {
	var out DomainWeightedRPKIResult
	const q = `
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)
MATCH (d)-[:PART_OF]-(h:HostName)-[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI'
RETURN d.name AS domain, pfx.prefix AS prefix, t.label AS label`
	res, err := run(g, "domain-weighted-rpki", q, nil)
	if err != nil {
		return out, err
	}
	covered := map[string]bool{}
	for i := range res.Rows {
		dv, _ := res.Get(i, "domain")
		lv, _ := res.Get(i, "label")
		domain, _ := dv.AsString()
		label, _ := lv.AsString()
		covered[domain] = covered[domain] || rpkiCovered(label)
	}
	out.Domains = len(covered)
	var c int
	for _, v := range covered {
		if v {
			c++
		}
	}
	out.TrancoPct = pct(c, out.Domains)

	const qCDN = `
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)
MATCH (d)-[:PART_OF]-(h:HostName)-[:RESOLVES_TO {reference_name:'openintel.tranco1m'}]-(:IP)-[:PART_OF]-(pfx:Prefix)-[:CATEGORIZED]-(t:Tag)
WHERE t.label STARTS WITH 'RPKI'
MATCH (pfx)-[:ORIGINATE]-(:AS)-[:CATEGORIZED]-(:Tag {label:'Content Delivery Network'})
RETURN d.name AS domain, pfx.prefix AS prefix, t.label AS label`
	resCDN, err := run(g, "domain-weighted-rpki-cdn", qCDN, nil)
	if err != nil {
		return out, err
	}
	coveredCDN := map[string]bool{}
	for i := range resCDN.Rows {
		dv, _ := resCDN.Get(i, "domain")
		lv, _ := resCDN.Get(i, "label")
		domain, _ := dv.AsString()
		label, _ := lv.AsString()
		coveredCDN[domain] = coveredCDN[domain] || rpkiCovered(label)
	}
	out.CDNDomains = len(coveredCDN)
	c = 0
	for _, v := range coveredCDN {
		if v {
			c++
		}
	}
	out.CDNPct = pct(c, out.CDNDomains)
	return out, nil
}
