package studies

import (
	"fmt"
	"sort"
	"strings"

	"iyp/internal/graph"
	"iyp/internal/ontology"
)

// SneakPeek reproduces the spirit of the paper's Figure 4: starting from a
// popular domain name, walk the fused graph a few hops and report every
// relationship together with the dataset it came from, demonstrating how
// many independent datasets meet around a single resource (13 in the
// paper's example).
type SneakPeekResult struct {
	Domain   string
	Lines    []string
	Datasets []string // distinct reference_name values encountered
}

// SneakPeek expands maxHops hops around the domain with the given Tranco
// rank (rank 1 = most popular).
func SneakPeek(g *graph.Graph, rank, maxHops int) (SneakPeekResult, error) {
	var out SneakPeekResult
	res, err := run(g, "sneakpeek", `
MATCH (:Ranking {name:'Tranco top 1M'})-[r:RANK {rank:$rank}]-(d:DomainName)
RETURN d.name AS name LIMIT 1`, map[string]graph.Value{"rank": graph.Int(int64(rank))})
	if err != nil {
		return out, err
	}
	if res.Len() == 0 {
		return out, fmt.Errorf("studies: no domain at rank %d", rank)
	}
	name, _ := res.Rows[0][0].AsString()
	out.Domain = name

	start := g.NodesByProp(ontology.DomainName, "name", graph.String(name))
	if len(start) == 0 {
		return out, fmt.Errorf("studies: domain node %q not found", name)
	}

	type qItem struct {
		id   graph.NodeID
		hops int
	}
	seenNodes := map[graph.NodeID]bool{start[0]: true}
	seenRels := map[graph.RelID]bool{}
	datasets := map[string]bool{}
	queue := []qItem{{start[0], 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hops >= maxHops {
			continue
		}
		for _, rid := range g.Rels(cur.id, graph.DirBoth, nil, nil) {
			if seenRels[rid] {
				continue
			}
			seenRels[rid] = true
			from, to := g.RelEndpoints(rid)
			other := from
			if from == cur.id {
				other = to
			}
			ref, _ := g.RelProp(rid, ontology.PropReferenceName).AsString()
			if ref != "" {
				datasets[ref] = true
			}
			out.Lines = append(out.Lines, fmt.Sprintf("%s -[%s {%s}]- %s",
				nodeLabel(g, cur.id), g.RelType(rid), ref, nodeLabel(g, other)))
			if !seenNodes[other] {
				seenNodes[other] = true
				queue = append(queue, qItem{other, cur.hops + 1})
			}
		}
	}
	for d := range datasets {
		out.Datasets = append(out.Datasets, d)
	}
	sort.Strings(out.Datasets)
	return out, nil
}

// nodeLabel renders a node as (:Label {identity}) for the walk output.
func nodeLabel(g *graph.Graph, id graph.NodeID) string {
	labels := g.NodeLabels(id)
	identity := ""
	for _, l := range labels {
		if key := ontology.IdentityKey(l); key != "" {
			if v := g.NodeProp(id, key); !v.IsNull() {
				identity = v.String()
				break
			}
		}
	}
	return fmt.Sprintf("(:%s %s)", strings.Join(labels, ":"), identity)
}
