package studies

import (
	"sort"
	"strings"

	"iyp/internal/algo"
	"iyp/internal/cypher"
	"iyp/internal/graph"
	"iyp/internal/netutil"
)

// DNSBestPracticeResult is Table 3: RFC 2182 nameserver best practice over
// the .com/.net/.org portion of the Tranco list.
type DNSBestPracticeResult struct {
	// CoveragePct is the share of Tranco domains under .com/.net/.org
	// (paper: 49%).
	CoveragePct float64
	// DiscardedPct is the share of those domains without usable glue
	// (paper: 10%).
	DiscardedPct float64
	// MeetPct have exactly two nameservers (paper: 18%).
	MeetPct float64
	// ExceedPct have more than two (paper: 67%).
	ExceedPct float64
	// NotMeetPct have a single nameserver (paper: 4%).
	NotMeetPct float64
	// InZoneGluePct is the share of kept domains with in-zone glue
	// (paper: 76%).
	InZoneGluePct float64
	// Domains is the number of studied (.com/.net/.org) domains.
	Domains int
}

// harvestDomainNS walks the zone cuts added at refinement in one bulk
// scan: ranked .com/.net/.org domains with their distinct nameserver name
// sets. It replaces the study's original Cypher harvest.
func harvestDomainNS(g *graph.Graph) (nsNames [][]string) {
	g.BulkRead(func(br *graph.BulkReader) {
		rankT, okRank := br.TypeID("RANK")
		parentT, okParent := br.TypeID("PARENT")
		managedT, okManaged := br.TypeID("MANAGED_BY")
		domL, okDom := br.LabelID("DomainName")
		nsL, okNS := br.LabelID("AuthoritativeNameServer")
		if !okRank || !okParent || !okDom {
			return
		}
		ranking := findRanking(br, TrancoRankingName)
		if ranking == 0 {
			return
		}
		seen := map[graph.NodeID]bool{}
		br.EachRelOf(ranking, graph.DirBoth, func(_ graph.RelID, typ uint16, d graph.NodeID) bool {
			if typ != rankT || !br.NodeHasLabelID(d, domL) || seen[d] {
				return true
			}
			seen[d] = true
			inStudy := false
			br.EachRelOf(d, graph.DirOut, func(_ graph.RelID, t2 uint16, tld graph.NodeID) bool {
				if t2 != parentT || !br.NodeHasLabelID(tld, domL) {
					return true
				}
				n, _ := br.NodeProp(tld, "name").AsString()
				if n == "com" || n == "net" || n == "org" {
					inStudy = true
					return false
				}
				return true
			})
			if !inStudy {
				return true
			}
			var names []string
			if okManaged && okNS {
				nameSeen := map[string]bool{}
				br.EachRelOf(d, graph.DirBoth, func(_ graph.RelID, t2 uint16, ns graph.NodeID) bool {
					if t2 != managedT || !br.NodeHasLabelID(ns, nsL) {
						return true
					}
					n, _ := br.NodeProp(ns, "name").AsString()
					if n != "" && !nameSeen[n] {
						nameSeen[n] = true
						names = append(names, n)
					}
					return true
				})
			}
			nsNames = append(nsNames, names)
			return true
		})
	})
	return nsNames
}

// DNSBestPractice reproduces Table 3. The nameserver-count classes come
// from the out-degrees of a derived domain→nameserver bipartite view
// compiled by the analytics engine.
func DNSBestPractice(g *graph.Graph) (DNSBestPracticeResult, error) {
	var out DNSBestPracticeResult
	total, err := trancoSize(g)
	if err != nil {
		return out, err
	}
	nsNames := harvestDomainNS(g)

	nd := len(nsNames)
	nsIdx := map[string]int32{}
	var from, to []int32
	for i, names := range nsNames {
		for _, n := range names {
			j, ok := nsIdx[n]
			if !ok {
				j = int32(len(nsIdx))
				nsIdx[n] = j
			}
			from = append(from, int32(i))
			to = append(to, int32(nd)+j)
		}
	}
	v := algo.NewDerived(nd+len(nsIdx), from, to, nil)

	var discarded, meet, exceed, notMeet, inZone, kept int
	for i, names := range nsNames {
		switch v.OutDegree(int32(i)) {
		case 0:
			discarded++
			continue
		case 1:
			notMeet++
		case 2:
			meet++
		default:
			exceed++
		}
		kept++
		for _, n := range names {
			tld := netutil.TopLevelDomain(n)
			if tld == "com" || tld == "net" || tld == "org" {
				inZone++
				break
			}
		}
	}
	out.Domains = nd
	out.CoveragePct = pct(out.Domains, total)
	out.DiscardedPct = pct(discarded, out.Domains)
	out.MeetPct = pct(meet, out.Domains)
	out.ExceedPct = pct(exceed, out.Domains)
	out.NotMeetPct = pct(notMeet, out.Domains)
	out.InZoneGluePct = pct(inZone, kept)
	return out, nil
}

// stringList extracts string elements from a (possibly nested) list Val.
func stringList(v cypher.Val) []string {
	list, ok := v.AsList()
	if !ok {
		return nil
	}
	out := make([]string, 0, len(list))
	for _, e := range list {
		if s, ok := e.AsString(); ok && s != "" {
			out = append(out, s)
		}
	}
	return out
}

// GroupStats summarizes a shared-infrastructure grouping: domains grouped
// by an identical key set (nameserver set, /24 set, or BGP-prefix set).
type GroupStats struct {
	// Groups is the number of distinct groups.
	Groups int
	// MedianGroupSize is the median, over domains, of the size of the
	// group the domain belongs to (the paper's "half the domains share
	// ... with at least N others").
	MedianGroupSize int
	// MaxGroupSize is the size of the largest group.
	MaxGroupSize int
}

// groupDomains groups domains by the canonical form of their key sets.
func groupDomains(keysByDomain map[string][]string) GroupStats {
	groups := map[string]int{}
	domainGroup := map[string]string{}
	for domain, keys := range keysByDomain {
		if len(keys) == 0 {
			continue
		}
		ks := append([]string(nil), keys...)
		sort.Strings(ks)
		// Deduplicate: the same /24 or prefix reached through several
		// nameservers is one element of the key set.
		uniq := ks[:0]
		for i, k := range ks {
			if i == 0 || k != ks[i-1] {
				uniq = append(uniq, k)
			}
		}
		key := strings.Join(uniq, "|")
		groups[key]++
		domainGroup[domain] = key
	}
	var sizes []int
	for _, key := range domainGroup {
		sizes = append(sizes, groups[key])
	}
	sort.Ints(sizes)
	st := GroupStats{Groups: len(groups)}
	if len(sizes) > 0 {
		st.MedianGroupSize = sizes[len(sizes)/2]
		st.MaxGroupSize = sizes[len(sizes)-1]
	}
	return st
}

// SharedInfraResult is Table 4 (plus Table 5's extensions): DNS
// infrastructure sharing at several granularities.
type SharedInfraResult struct {
	// ByNS groups .com/.net/.org domains by exact nameserver set
	// (paper 2024: median 9, max 6k).
	ByNS GroupStats
	// BySlash24 groups by the /24 prefixes of the nameservers
	// (paper 2024: median 3.9k, max 114k).
	BySlash24 GroupStats
	// ByBGPPrefix groups by the BGP prefixes of the nameservers —
	// Table 5 row 1 (paper: median 4.1k, max 114k).
	ByBGPPrefix GroupStats
	// AllByNS / AllByBGPPrefix drop the 3-TLD restriction — Table 5
	// rows 2-3 (paper: 15/25k and 6k/187k).
	AllByNS        GroupStats
	AllByBGPPrefix GroupStats
}

// nsInfraQuery returns one row per (domain, nameserver) with the
// nameserver's IPv4 addresses and covering BGP prefixes. The com/net/org
// variant replicates the original study's zone-file limitation.
const nsInfraComNetOrg = `
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)-[:PARENT]->(tld:DomainName)
WHERE tld.name IN ['com', 'net', 'org']
MATCH (d)-[:MANAGED_BY]-(ns:AuthoritativeNameServer)
OPTIONAL MATCH (ns)-[:RESOLVES_TO]-(ip:IP {af:4})-[:PART_OF]-(pfx:Prefix)
RETURN d.name AS domain, ns.name AS ns, collect(DISTINCT ip.ip) AS ips, collect(DISTINCT pfx.prefix) AS prefixes`

// nsInfraAll is the Table 5 variant over the whole list (the paper's
// Listing 6, without the /24 computation).
const nsInfraAll = `
MATCH (:Ranking {name:'Tranco top 1M'})-[:RANK]-(d:DomainName)-[:MANAGED_BY]-(ns:AuthoritativeNameServer)
OPTIONAL MATCH (ns)-[:RESOLVES_TO]-(ip:IP {af:4})-[:PART_OF]-(pfx:Prefix)
RETURN d.name AS domain, ns.name AS ns, collect(DISTINCT ip.ip) AS ips, collect(DISTINCT pfx.prefix) AS prefixes`

// foldInfraRows accumulates the per-(domain, nameserver) rows into the
// three grouping key sets.
func foldInfraRows(res *cypher.Result) (byNS, bySlash24, byPrefix map[string][]string) {
	byNS = map[string][]string{}
	bySlash24 = map[string][]string{}
	byPrefix = map[string][]string{}
	for i := range res.Rows {
		dv, _ := res.Get(i, "domain")
		nv, _ := res.Get(i, "ns")
		domain, _ := dv.AsString()
		ns, _ := nv.AsString()
		ipsV, _ := res.Get(i, "ips")
		pfxV, _ := res.Get(i, "prefixes")
		byNS[domain] = append(byNS[domain], ns)
		for _, ip := range stringList(ipsV) {
			if s24, err := netutil.Slash24(ip); err == nil {
				bySlash24[domain] = append(bySlash24[domain], s24)
			}
		}
		byPrefix[domain] = append(byPrefix[domain], stringList(pfxV)...)
	}
	return byNS, bySlash24, byPrefix
}

// SharedInfraComNetOrg reproduces Table 4 (plus the BGP-prefix row of
// Table 5): grouping restricted to .com/.net/.org, as the original study's
// zone files were.
func SharedInfraComNetOrg(g *graph.Graph) (byNS, bySlash24, byPrefix GroupStats, err error) {
	res, err := run(g, "shared-infra", nsInfraComNetOrg, nil)
	if err != nil {
		return byNS, bySlash24, byPrefix, err
	}
	ns, s24, pfx := foldInfraRows(res)
	return groupDomains(ns), groupDomains(s24), groupDomains(pfx), nil
}

// SharedInfraAllTranco reproduces Table 5's all-Tranco rows (the paper's
// Listing 6 without the TLD restriction).
func SharedInfraAllTranco(g *graph.Graph) (byNS, byPrefix GroupStats, err error) {
	res, err := run(g, "shared-infra-all", nsInfraAll, nil)
	if err != nil {
		return byNS, byPrefix, err
	}
	ns, _, pfx := foldInfraRows(res)
	return groupDomains(ns), groupDomains(pfx), nil
}

// SharedInfrastructure reproduces Table 4 and Table 5 together.
func SharedInfrastructure(g *graph.Graph) (SharedInfraResult, error) {
	var out SharedInfraResult
	var err error
	if out.ByNS, out.BySlash24, out.ByBGPPrefix, err = SharedInfraComNetOrg(g); err != nil {
		return out, err
	}
	if out.AllByNS, out.AllByBGPPrefix, err = SharedInfraAllTranco(g); err != nil {
		return out, err
	}
	return out, nil
}
