package studies

import (
	"iyp/internal/graph"
)

// Bulk-read harvest helpers. The SPoF and DNS-robustness studies were
// originally written as Cypher row harvests; they now walk the store once
// under graph.BulkRead to build the derived bipartite graphs the
// internal/algo kernels consume, which keeps their numbers identical
// while replacing millions of per-row lock round-trips with one locked
// scan plus parallel kernels.

// findRanking locates the Ranking node with the given name (0 = absent).
func findRanking(br *graph.BulkReader, name string) graph.NodeID {
	for _, id := range br.NodesByLabel("Ranking") {
		if s, _ := br.NodeProp(id, "name").AsString(); s == name {
			return id
		}
	}
	return 0
}

// bipartite accumulates a derived domain→key edge list for the analytics
// kernels: the first len(doms) internal indexes are source (domain)
// nodes, the rest are key nodes. Indexes are assigned in encounter
// order, which is deterministic because BulkReader iteration follows
// store order.
type bipartite struct {
	domIdx map[graph.NodeID]int32
	keyIdx map[string]int32
	keys   []string
}

func newBipartite() *bipartite {
	return &bipartite{domIdx: map[graph.NodeID]int32{}, keyIdx: map[string]int32{}}
}

func (b *bipartite) domain(id graph.NodeID) int32 {
	i, ok := b.domIdx[id]
	if !ok {
		i = int32(len(b.domIdx))
		b.domIdx[id] = i
	}
	return i
}

func (b *bipartite) key(k string) int32 {
	i, ok := b.keyIdx[k]
	if !ok {
		i = int32(len(b.keys))
		b.keyIdx[k] = i
		b.keys = append(b.keys, k)
	}
	return i
}

// n is the total node count of the derived graph; key j lives at internal
// index numDomains+j.
func (b *bipartite) n() int { return len(b.domIdx) + len(b.keys) }

func (b *bipartite) numDomains() int { return len(b.domIdx) }

// sources lists every domain index, the kernel's source set.
func (b *bipartite) sources() []int32 {
	s := make([]int32, len(b.domIdx))
	for i := range s {
		s[i] = int32(i)
	}
	return s
}
