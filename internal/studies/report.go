package studies

import (
	"fmt"
	"strings"

	"iyp/internal/graph"
)

// Paper2024 holds the paper's published 2024-side numbers, for
// side-by-side comparison in reports and EXPERIMENTS.md.
var Paper2024 = struct {
	RPKI           RPKIResult
	NameserverRPKI NameserverRPKIResult
	DomainWeighted DomainWeightedRPKIResult
	BestPractice   DNSBestPracticeResult
}{
	RPKI: RPKIResult{
		InvalidPct: 0.12, InvalidMaxLenPct: 75, CoveredPct: 52.2,
		Top100kPct: 55.2, Bottom100kPct: 61.5, CDNPct: 68.4,
	},
	NameserverRPKI: NameserverRPKIResult{PrefixCoveredPct: 48, DomainCoveredPct: 84},
	DomainWeighted: DomainWeightedRPKIResult{TrancoPct: 78.8, CDNPct: 96},
	BestPractice: DNSBestPracticeResult{
		CoveragePct: 49, DiscardedPct: 10, MeetPct: 18, ExceedPct: 67,
		NotMeetPct: 4, InZoneGluePct: 76,
	},
}

// Paper2015RiPKI holds the original RiPKI (2015) numbers from Table 2.
var Paper2015RiPKI = RPKIResult{
	InvalidPct: 0.09, CoveredPct: 6, Top100kPct: 4, Bottom100kPct: 5.5, CDNPct: 0.9,
}

// Report runs every study and renders the paper's tables and figures as
// text, with the paper's values alongside for comparison.
type Report struct {
	RPKI           RPKIResult
	Categories     []CategoryCoverage
	NameserverRPKI NameserverRPKIResult
	DomainWeighted DomainWeightedRPKIResult
	BestPractice   DNSBestPracticeResult
	SharedInfra    SharedInfraResult
	CountrySPoF    SPoFResult
	ASSPoF         SPoFResult
	Comparison     ComparisonResult
}

// RunAll executes all studies against the graph.
func RunAll(g *graph.Graph) (*Report, error) {
	var (
		r   Report
		err error
	)
	if r.RPKI, err = RPKI(g); err != nil {
		return nil, err
	}
	tags := []string{"Academic", "Government", "DDoS Mitigation", "Content Delivery Network"}
	if r.Categories, err = RPKIByCategory(g, tags); err != nil {
		return nil, err
	}
	if r.NameserverRPKI, err = NameserverRPKI(g); err != nil {
		return nil, err
	}
	if r.DomainWeighted, err = DomainWeightedRPKI(g); err != nil {
		return nil, err
	}
	if r.BestPractice, err = DNSBestPractice(g); err != nil {
		return nil, err
	}
	if r.SharedInfra, err = SharedInfrastructure(g); err != nil {
		return nil, err
	}
	if r.CountrySPoF, err = SPoF(g, TrancoRankingName, "country", 10); err != nil {
		return nil, err
	}
	if r.ASSPoF, err = SPoF(g, TrancoRankingName, "AS", 10); err != nil {
		return nil, err
	}
	if r.Comparison, err = CompareOriginDatasets(g); err != nil {
		return nil, err
	}
	return &r, nil
}

// String renders every table and figure.
func (r *Report) String() string {
	var sb strings.Builder

	sb.WriteString("== Table 2: RiPKI reproduction (RPKI status of prefixes hosting Tranco domains) ==\n")
	fmt.Fprintf(&sb, "%-22s %10s %10s %10s %12s %8s\n", "", "Invalid", "Covered", "Top 100k", "Bottom 100k", "CDN")
	p15 := Paper2015RiPKI
	fmt.Fprintf(&sb, "%-22s %9.2f%% %9.1f%% %9.1f%% %11.1f%% %7.1f%%\n", "RiPKI (2015, paper)",
		p15.InvalidPct, p15.CoveredPct, p15.Top100kPct, p15.Bottom100kPct, p15.CDNPct)
	p24 := Paper2024.RPKI
	fmt.Fprintf(&sb, "%-22s %9.2f%% %9.1f%% %9.1f%% %11.1f%% %7.1f%%\n", "IYP (2024, paper)",
		p24.InvalidPct, p24.CoveredPct, p24.Top100kPct, p24.Bottom100kPct, p24.CDNPct)
	fmt.Fprintf(&sb, "%-22s %9.2f%% %9.1f%% %9.1f%% %11.1f%% %7.1f%%\n", "this reproduction",
		r.RPKI.InvalidPct, r.RPKI.CoveredPct, r.RPKI.Top100kPct, r.RPKI.Bottom100kPct, r.RPKI.CDNPct)
	fmt.Fprintf(&sb, "invalids due to max-length: %.0f%% (paper: 75%%); distinct prefixes: %d\n\n",
		r.RPKI.InvalidMaxLenPct, r.RPKI.TotalPrefixes)

	sb.WriteString("== §4.1.4: RPKI coverage by BGP.Tools AS category ==\n")
	fmt.Fprintf(&sb, "%-28s %10s %10s\n", "category", "prefixes", "covered")
	for _, c := range r.Categories {
		fmt.Fprintf(&sb, "%-28s %10d %9.1f%%\n", c.Tag, c.Prefixes, c.CoveredPct)
	}
	sb.WriteString("(paper: Academic 16%, Government 21%, DDoS Mitigation 76%)\n\n")

	sb.WriteString("== §5.1.1: RPKI coverage of the DNS infrastructure ==\n")
	fmt.Fprintf(&sb, "nameserver prefixes covered: %.1f%% of %d (paper: 48%%)\n",
		r.NameserverRPKI.PrefixCoveredPct, r.NameserverRPKI.Prefixes)
	fmt.Fprintf(&sb, "domains behind covered nameservers: %.1f%% of %d (paper: 84%%)\n\n",
		r.NameserverRPKI.DomainCoveredPct, r.NameserverRPKI.Domains)

	sb.WriteString("== §5.1.2: domain-weighted RPKI coverage ==\n")
	fmt.Fprintf(&sb, "Tranco domains on covered prefixes: %.1f%% of %d (paper: 78.8%% vs 52.2%% prefix-weighted)\n",
		r.DomainWeighted.TrancoPct, r.DomainWeighted.Domains)
	fmt.Fprintf(&sb, "CDN-hosted domains on covered prefixes: %.1f%% of %d (paper: 96%% vs 68.4%%)\n\n",
		r.DomainWeighted.CDNPct, r.DomainWeighted.CDNDomains)

	sb.WriteString("== Table 3: DNS best practice (.com/.net/.org) ==\n")
	fmt.Fprintf(&sb, "%-22s %9s %10s %6s %7s %9s %8s\n", "", "coverage", "discarded", "meet", "exceed", "not meet", "in-zone")
	bp := Paper2024.BestPractice
	fmt.Fprintf(&sb, "%-22s %8.0f%% %9.0f%% %5.0f%% %6.0f%% %8.0f%% %7.0f%%\n", "IYP (2024, paper)",
		bp.CoveragePct, bp.DiscardedPct, bp.MeetPct, bp.ExceedPct, bp.NotMeetPct, bp.InZoneGluePct)
	fmt.Fprintf(&sb, "%-22s %8.1f%% %9.1f%% %5.1f%% %6.1f%% %8.1f%% %7.1f%%\n", "this reproduction",
		r.BestPractice.CoveragePct, r.BestPractice.DiscardedPct, r.BestPractice.MeetPct,
		r.BestPractice.ExceedPct, r.BestPractice.NotMeetPct, r.BestPractice.InZoneGluePct)
	sb.WriteByte('\n')

	sb.WriteString("== Table 4/5: DNS shared infrastructure (group sizes) ==\n")
	fmt.Fprintf(&sb, "%-44s %8s %8s\n", "grouping", "median", "max")
	rows := []struct {
		name string
		st   GroupStats
	}{
		{".com/.net/.org grouped by NS set", r.SharedInfra.ByNS},
		{".com/.net/.org grouped by /24", r.SharedInfra.BySlash24},
		{".com/.net/.org grouped by BGP prefix", r.SharedInfra.ByBGPPrefix},
		{"all Tranco grouped by NS set", r.SharedInfra.AllByNS},
		{"all Tranco grouped by BGP prefix", r.SharedInfra.AllByBGPPrefix},
	}
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-44s %8d %8d\n", row.name, row.st.MedianGroupSize, row.st.MaxGroupSize)
	}
	sb.WriteString("(paper 2024, at 1M scale: NS 9/6k, /24 3.9k/114k, BGP prefix 4.1k/114k, all-NS 15/25k, all-prefix 6k/187k)\n\n")

	sb.WriteString(spofTable("Figure 5: country-based SPoF in the DNS chain", r.CountrySPoF))
	sb.WriteString("(paper: third-party concentrated on US; hierarchical led by ccTLD countries RU/CN/GB)\n\n")
	sb.WriteString(spofTable("Figure 6: AS-based SPoF in the DNS chain", r.ASSPoF))
	sb.WriteString("(paper: infrastructure operators mostly third-party; registrar DNS mostly direct)\n\n")

	sb.WriteString("== §6.1: dataset comparison (bgpkit.pfx2asn vs ihr.rov origins) ==\n")
	sb.WriteString(r.Comparison.String())
	sb.WriteString("(paper: this workflow exposed a real IPv6 origin bug in the BGPKIT feed)\n")
	return sb.String()
}

func spofTable(title string, r SPoFResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s (%s, %d domains) ==\n", title, r.List, r.Domains)
	fmt.Fprintf(&sb, "%-36s %8s %12s %14s\n", r.Level, "direct", "third-party", "hierarchical")
	for _, e := range r.Entries {
		fmt.Fprintf(&sb, "%-36s %8d %12d %14d\n", e.Key, e.Direct, e.ThirdParty, e.Hierarchical)
	}
	return sb.String()
}
