package studies

import (
	"context"
	"strings"
	"sync"
	"testing"

	"iyp/internal/core"
	"iyp/internal/graph"
	"iyp/internal/simnet"
)

// The studies are validated against a 0.25-scale knowledge graph built
// once per package run. Assertions check the *shape* constraints the paper
// reports, with bands wide enough for the reduced scale.
var (
	buildOnce sync.Once
	buildG    *graph.Graph
	buildNet  *simnet.Internet
)

func studyGraph(t *testing.T) *graph.Graph {
	t.Helper()
	buildOnce.Do(func() {
		res, err := core.Build(context.Background(), core.BuildOptions{
			Config: simnet.DefaultConfig().Scale(0.25),
		})
		if err != nil {
			t.Fatal(err)
		}
		if failed := res.Report.Failed(); len(failed) > 0 {
			t.Fatalf("datasets failed: %+v", failed)
		}
		buildG = res.Graph
		buildNet = res.Internet
	})
	return buildG
}

// studyInternet returns the ground-truth model behind studyGraph.
func studyInternet(t *testing.T) *simnet.Internet {
	t.Helper()
	studyGraph(t)
	return buildNet
}

func between(t *testing.T, name string, v, lo, hi float64) {
	t.Helper()
	if v < lo || v > hi {
		t.Errorf("%s = %.2f, want in [%.1f, %.1f]", name, v, lo, hi)
	}
}

func TestRPKIShape(t *testing.T) {
	r, err := RPKI(studyGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 2, 2024 side: invalid rate tiny, about half the
	// prefixes covered, CDN clearly above average, bottom 100k above (or
	// at least not far below) top 100k.
	between(t, "InvalidPct", r.InvalidPct, 0.01, 1.5)
	between(t, "CoveredPct", r.CoveredPct, 45, 65)
	between(t, "CDNPct", r.CDNPct, 60, 90)
	if r.CDNPct <= r.CoveredPct {
		t.Errorf("CDN coverage %.1f should exceed overall %.1f", r.CDNPct, r.CoveredPct)
	}
	if r.Bottom100kPct < r.Top100kPct-6 {
		t.Errorf("bottom-100k %.1f far below top-100k %.1f (paper: bottom > top)", r.Bottom100kPct, r.Top100kPct)
	}
	if r.TotalPrefixes < 100 {
		t.Errorf("only %d distinct prefixes back the statistic", r.TotalPrefixes)
	}
	// 2024 is radically better than 2015 — the paper's headline.
	if r.CoveredPct < Paper2015RiPKI.CoveredPct*4 {
		t.Errorf("2024 coverage %.1f not clearly above the 2015 baseline %.1f", r.CoveredPct, Paper2015RiPKI.CoveredPct)
	}
}

func TestRPKIByCategoryShape(t *testing.T) {
	cats, err := RPKIByCategory(studyGraph(t), []string{"Academic", "Government", "DDoS Mitigation"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 3 {
		t.Fatalf("categories = %d", len(cats))
	}
	byTag := map[string]CategoryCoverage{}
	for _, c := range cats {
		byTag[c.Tag] = c
		if c.Prefixes == 0 {
			t.Errorf("category %s matched no prefixes", c.Tag)
		}
	}
	// §4.1.4: DDoS mitigation far above academic and government.
	if byTag["DDoS Mitigation"].CoveredPct < byTag["Academic"].CoveredPct+20 {
		t.Errorf("DDoS %.1f should far exceed Academic %.1f",
			byTag["DDoS Mitigation"].CoveredPct, byTag["Academic"].CoveredPct)
	}
	between(t, "Academic", byTag["Academic"].CoveredPct, 5, 35)
	between(t, "Government", byTag["Government"].CoveredPct, 5, 40)
	between(t, "DDoS", byTag["DDoS Mitigation"].CoveredPct, 60, 95)
}

func TestNameserverRPKIShape(t *testing.T) {
	r, err := NameserverRPKI(studyGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	// §5.1.1: prefix-level below hostname-level coverage; domain-level
	// far above prefix-level (provider concentration).
	between(t, "NS PrefixCoveredPct", r.PrefixCoveredPct, 35, 65)
	between(t, "NS DomainCoveredPct", r.DomainCoveredPct, 70, 99)
	if r.DomainCoveredPct < r.PrefixCoveredPct+15 {
		t.Errorf("domain-level %.1f should far exceed prefix-level %.1f",
			r.DomainCoveredPct, r.PrefixCoveredPct)
	}
}

func TestDomainWeightedRPKIShape(t *testing.T) {
	g := studyGraph(t)
	dw, err := DomainWeightedRPKI(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RPKI(g)
	if err != nil {
		t.Fatal(err)
	}
	// §5.1.2: counting domains instead of prefixes raises coverage, and
	// CDN-hosted domains are nearly all covered.
	if dw.TrancoPct <= r.CoveredPct {
		t.Errorf("domain-weighted %.1f should exceed prefix-weighted %.1f", dw.TrancoPct, r.CoveredPct)
	}
	if dw.CDNPct <= dw.TrancoPct {
		t.Errorf("CDN domain coverage %.1f should exceed overall %.1f", dw.CDNPct, dw.TrancoPct)
	}
	between(t, "CDN domain coverage", dw.CDNPct, 75, 100)
}

func TestDNSBestPracticeShape(t *testing.T) {
	r, err := DNSBestPractice(studyGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 3, 2024 side.
	between(t, "CoveragePct", r.CoveragePct, 42, 56)
	between(t, "DiscardedPct", r.DiscardedPct, 5, 15)
	between(t, "MeetPct", r.MeetPct, 10, 26)
	between(t, "ExceedPct", r.ExceedPct, 55, 80)
	between(t, "NotMeetPct", r.NotMeetPct, 1, 9)
	between(t, "InZoneGluePct", r.InZoneGluePct, 65, 90)
	// Exceed dominates meet — the 2018->2024 trend reversal the paper
	// highlights.
	if r.ExceedPct < r.MeetPct*2 {
		t.Errorf("exceed %.1f should dwarf meet %.1f", r.ExceedPct, r.MeetPct)
	}
	total := r.DiscardedPct + r.MeetPct + r.ExceedPct + r.NotMeetPct
	if total < 98 || total > 102 {
		t.Errorf("buckets sum to %.1f%%", total)
	}
}

func TestSharedInfrastructureShape(t *testing.T) {
	r, err := SharedInfrastructure(studyGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	// Table 4: /24 groups far bigger than exact-NS-set groups.
	if r.BySlash24.MaxGroupSize < r.ByNS.MaxGroupSize {
		t.Errorf("/24 max %d < NS max %d", r.BySlash24.MaxGroupSize, r.ByNS.MaxGroupSize)
	}
	if r.BySlash24.MedianGroupSize < r.ByNS.MedianGroupSize {
		t.Errorf("/24 median %d < NS median %d", r.BySlash24.MedianGroupSize, r.ByNS.MedianGroupSize)
	}
	// Table 5: BGP-prefix grouping approximates /24 grouping (the
	// paper's validation of the original study's assumption).
	ratio := float64(r.ByBGPPrefix.MaxGroupSize) / float64(r.BySlash24.MaxGroupSize)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("BGP-prefix max %d vs /24 max %d: ratio %.2f not ~1",
			r.ByBGPPrefix.MaxGroupSize, r.BySlash24.MaxGroupSize, ratio)
	}
	// All-Tranco groups exceed the 3-TLD-restricted ones.
	if r.AllByBGPPrefix.MaxGroupSize < r.ByBGPPrefix.MaxGroupSize {
		t.Errorf("all-Tranco max %d < com/net/org max %d",
			r.AllByBGPPrefix.MaxGroupSize, r.ByBGPPrefix.MaxGroupSize)
	}
	if r.ByNS.Groups == 0 || r.BySlash24.Groups == 0 {
		t.Error("empty groupings")
	}
}

func TestSPoFShape(t *testing.T) {
	g := studyGraph(t)
	country, err := SPoF(g, TrancoRankingName, "country", 10)
	if err != nil {
		t.Fatal(err)
	}
	if country.Domains == 0 || len(country.Entries) == 0 {
		t.Fatal("empty SPoF result")
	}
	// Figure 5: the US leads third-party dependencies.
	usThird, maxThird := 0, 0
	for _, e := range country.Entries {
		if e.Key == "US" {
			usThird = e.ThirdParty
		}
		if e.ThirdParty > maxThird {
			maxThird = e.ThirdParty
		}
	}
	if usThird == 0 || usThird != maxThird {
		t.Errorf("US should lead third-party SPoF (US=%d, max=%d)", usThird, maxThird)
	}
	// ccTLD countries appear with hierarchical dependencies.
	hier := map[string]int{}
	for _, e := range country.Entries {
		hier[e.Key] = e.Hierarchical
	}
	for _, cc := range []string{"RU", "CN"} {
		if hier[cc] == 0 {
			t.Errorf("country %s missing hierarchical SPoF (got %v)", cc, hier)
		}
	}

	// Figure 6: infrastructure DNS mostly third-party, registry ASes
	// exclusively hierarchical.
	as, err := SPoF(g, TrancoRankingName, "AS", 10)
	if err != nil {
		t.Fatal(err)
	}
	var sawThirdPartyHeavy, sawRegistry bool
	for _, e := range as.Entries {
		if e.ThirdParty > 0 && e.ThirdParty >= e.Direct {
			sawThirdPartyHeavy = true
		}
		if strings.Contains(e.Key, "REGISTRY") && e.Hierarchical > 0 && e.Direct == 0 {
			sawRegistry = true
		}
	}
	if !sawThirdPartyHeavy {
		t.Error("no third-party-dominant AS in the top entries (paper: Akamai-like operators)")
	}
	if !sawRegistry {
		t.Error("no registry AS with pure hierarchical SPoF")
	}
	// TopN honored.
	if len(as.Entries) > 10 {
		t.Errorf("topN not applied: %d entries", len(as.Entries))
	}
}

func TestSPoFUmbrellaList(t *testing.T) {
	res, err := SPoF(studyGraph(t), "Cisco Umbrella Top 1M", "country", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Domains == 0 {
		t.Error("Umbrella SPoF analyzed no domains")
	}
}

func TestSneakPeek(t *testing.T) {
	sp, err := SneakPeek(studyGraph(t), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Domain == "" || len(sp.Lines) == 0 {
		t.Fatal("empty sneak peek")
	}
	// The paper's Figure 4 walk touches 13 datasets; a 3-hop walk in the
	// reproduction should fuse a comparable number.
	if len(sp.Datasets) < 8 {
		t.Errorf("sneak peek fused %d datasets (%v), want >= 8", len(sp.Datasets), sp.Datasets)
	}
}

func TestRunAllAndReportRendering(t *testing.T) {
	rep, err := RunAll(studyGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{
		"Table 2", "Table 3", "Table 4/5", "Figure 5", "Figure 6",
		"§4.1.4", "§5.1.1", "§5.1.2", "RiPKI (2015, paper)", "this reproduction",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestCompareOriginDatasetsFindsPlantedErrors(t *testing.T) {
	// Paper §6.1: diffing BGPKIT's pfx2asn against IHR's ROV data exposed
	// an IPv6 origin bug in the real feed. The simulator plants the same
	// class of error; the comparison must surface exactly those prefixes.
	g := studyGraph(t)
	res, err := CompareOriginDatasets(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefixesCompared < 1000 {
		t.Fatalf("compared only %d prefixes", res.PrefixesCompared)
	}
	found := map[string]bool{}
	for _, d := range res.Discrepancies {
		found[d.Prefix] = true
		if d.AF != 6 {
			t.Errorf("discrepancy on %s has af %d; the planted bug is IPv6-only", d.Prefix, d.AF)
		}
		if len(d.OnlyInA) == 0 || len(d.OnlyInB) == 0 {
			t.Errorf("discrepancy %+v should disagree on origins in both directions", d)
		}
	}
	for _, e := range studyInternet(t).PlantedErrors {
		if !found[e.Prefix] {
			t.Errorf("planted error on %s not found (got %v)", e.Prefix, found)
		}
	}
	if len(res.Discrepancies) != len(studyInternet(t).PlantedErrors) {
		t.Errorf("discrepancies = %d, planted = %d (false positives?)",
			len(res.Discrepancies), len(studyInternet(t).PlantedErrors))
	}
	if !strings.Contains(res.String(), "discrepancies") {
		t.Error("comparison rendering broken")
	}
}

func TestTable2BothRowsGenerated(t *testing.T) {
	// Table 2's 2015 row, generated: the same study against an Internet
	// whose RPKI deployment is calibrated to the RiPKI-era measurements.
	res, err := core.Build(context.Background(), core.BuildOptions{
		Config: simnet.Config2015().Scale(0.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	r15, err := RPKI(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	between(t, "2015 CoveredPct", r15.CoveredPct, 1, 13)
	between(t, "2015 CDNPct", r15.CDNPct, 0, 8)
	r24, err := RPKI(studyGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	growth := r24.CoveredPct / r15.CoveredPct
	if growth < 4 {
		t.Errorf("2015->2024 coverage growth %.1fx, want the paper's ~9x order", growth)
	}
	// In 2015 CDNs lagged badly (0.9%); in 2024 they lead.
	if r15.CDNPct >= r15.CoveredPct {
		t.Errorf("2015 CDN coverage %.1f should lag overall %.1f", r15.CDNPct, r15.CoveredPct)
	}
	if r24.CDNPct <= r24.CoveredPct {
		t.Errorf("2024 CDN coverage %.1f should lead overall %.1f", r24.CDNPct, r24.CoveredPct)
	}
}
