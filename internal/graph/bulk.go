package graph

import "sort"

// Bulk-read access for the analytics layer. Compiling a CSR view touches
// every node and relationship once; doing that through the public
// accessors would take and release the store's RWMutex millions of times.
// BulkRead instead holds the read lock exactly once and hands the caller a
// BulkReader whose accessors are lock-free, turning view compilation into
// a straight array walk.

// Version reports the store's mutation counter. It is bumped by every
// write (node/relationship creation, deletion, property and label
// changes), so a reader can cheaply detect whether anything changed since
// a derived structure — an analytics view, a cached statistic — was built
// from the graph.
func (g *Graph) Version() uint64 {
	g.rlock()
	defer g.runlock()
	return g.version
}

// BulkRead runs fn while holding the store's read lock once. The
// BulkReader passed to fn reads the live store without further locking;
// it must not escape fn, and fn must not call any mutating Graph method
// (the write lock would deadlock against the held read lock). On a frozen
// generation no lock is taken at all — the graph is immutable.
func (g *Graph) BulkRead(fn func(*BulkReader)) {
	g.rlock()
	defer g.runlock()
	fn(&BulkReader{g: g})
}

// BulkReader is the lock-free view handed out by BulkRead.
type BulkReader struct {
	g *Graph
}

// Version is the store's mutation counter at lock time.
func (br *BulkReader) Version() uint64 { return br.g.version }

// MaxNodeID is the highest node ID ever allocated (dead IDs included);
// live IDs are in [1, MaxNodeID].
func (br *BulkReader) MaxNodeID() NodeID { return NodeID(len(br.g.nodes)) }

// NumNodes is the live node count.
func (br *BulkReader) NumNodes() int { return br.g.nodeCount }

// NumRels is the live relationship count.
func (br *BulkReader) NumRels() int { return br.g.relCount }

// NodeAlive reports whether id refers to a live node.
func (br *BulkReader) NodeAlive(id NodeID) bool { return br.g.node(id) != nil }

// Interner exposes the graph's dictionary, letting callers (the temporal
// diff kernel) detect that two readers share payload ids.
func (br *BulkReader) Interner() *Interner { return br.g.dict }

// LabelID resolves a label name; ok is false when the label was never
// used (it then matches no node).
func (br *BulkReader) LabelID(label string) (uint16, bool) {
	id, ok := br.g.labelIDs[label]
	return uint16(id), ok
}

// NodeHasLabelID reports whether the node carries the (resolved) label.
func (br *BulkReader) NodeHasLabelID(id NodeID, lid uint16) bool {
	n := br.g.node(id)
	if n == nil {
		return false
	}
	for _, l := range br.g.lsets[n.lset] {
		if l == labelID(lid) {
			return true
		}
		if l > labelID(lid) {
			return false
		}
	}
	return false
}

// NodeProp returns a node property (Null when absent or node missing).
func (br *BulkReader) NodeProp(id NodeID, key string) Value {
	n := br.g.node(id)
	if n == nil {
		return Null()
	}
	keyID, ok := br.g.dict.lookupStr(key)
	if !ok {
		return Null()
	}
	if i, had := findEntry(n.cprops, keyID); had {
		return br.g.decEntry(n.cprops[i])
	}
	return Null()
}

// NodePropRef returns the raw columnar payload of a node property: its
// kind and the fixed-size num field (string/list payloads appear as
// Interner ids, bools as 0/1). For two readers sharing an Interner, equal
// (kind, num) pairs mean equal values without materializing either — the
// temporal diff identity fast path. ok is false when the property is
// absent.
func (br *BulkReader) NodePropRef(id NodeID, key string) (Kind, uint64, bool) {
	n := br.g.node(id)
	if n == nil {
		return KindNull, 0, false
	}
	keyID, ok := br.g.dict.lookupStr(key)
	if !ok {
		return KindNull, 0, false
	}
	i, had := findEntry(n.cprops, keyID)
	if !had {
		return KindNull, 0, false
	}
	e := n.cprops[i]
	if e.kind == KindBool {
		return KindBool, uint64(e.flag), true
	}
	return e.kind, e.num, true
}

// NodeLabels returns the node's label names, sorted (nil for a dead id).
func (br *BulkReader) NodeLabels(id NodeID) []string {
	n := br.g.node(id)
	if n == nil {
		return nil
	}
	ls := br.g.lsets[n.lset]
	out := make([]string, len(ls))
	for i, lid := range ls {
		out[i] = br.g.labelNames[lid]
	}
	sort.Strings(out)
	return out
}

// EachNodeProp calls fn for every property of the node, in key-id order.
func (br *BulkReader) EachNodeProp(id NodeID, fn func(key string, v Value)) {
	n := br.g.node(id)
	if n == nil {
		return
	}
	for _, e := range n.cprops {
		fn(br.g.dict.str(e.key), br.g.decEntry(e))
	}
}

// EachNodePropRef is EachNodeProp plus each value's raw columnar payload:
// ref carries string and list payloads as Interner ids and bools as 0/1.
// Two readers sharing an Interner can compare string values by ref alone.
func (br *BulkReader) EachNodePropRef(id NodeID, fn func(key string, kind Kind, ref uint64, v Value)) {
	n := br.g.node(id)
	if n == nil {
		return
	}
	for _, e := range n.cprops {
		ref := e.num
		if e.kind == KindBool {
			ref = uint64(e.flag)
		}
		fn(br.g.dict.str(e.key), e.kind, ref, br.g.decEntry(e))
	}
}

// EachNode calls fn for every live node in ascending ID order until fn
// returns false.
func (br *BulkReader) EachNode(fn func(NodeID) bool) {
	for _, n := range br.g.nodes {
		if n == nil {
			continue
		}
		if !fn(n.id) {
			return
		}
	}
}

// TypeID resolves a relationship type name; ok is false when the type was
// never used.
func (br *BulkReader) TypeID(typ string) (uint16, bool) {
	id, ok := br.g.typeIDs[typ]
	return uint16(id), ok
}

// EachRel calls fn for every live relationship in ascending ID order with
// its type id and endpoints, until fn returns false.
func (br *BulkReader) EachRel(fn func(id RelID, typ uint16, from, to NodeID) bool) {
	for _, r := range br.g.rels {
		if r == nil {
			continue
		}
		if !fn(r.id, uint16(r.typ), r.from, r.to) {
			return
		}
	}
}

// TypeName resolves a relationship type id to its name.
func (br *BulkReader) TypeName(t uint16) string { return br.g.typeNames[typeID(t)] }

// EachRelProp calls fn for every property of the relationship, in key-id
// order.
func (br *BulkReader) EachRelProp(id RelID, fn func(key string, v Value)) {
	r := br.g.rel(id)
	if r == nil {
		return
	}
	for _, e := range r.cprops {
		fn(br.g.dict.str(e.key), br.g.decEntry(e))
	}
}

// EachRelPropRef is EachNodePropRef for relationship properties.
func (br *BulkReader) EachRelPropRef(id RelID, fn func(key string, kind Kind, ref uint64, v Value)) {
	r := br.g.rel(id)
	if r == nil {
		return
	}
	for _, e := range r.cprops {
		ref := e.num
		if e.kind == KindBool {
			ref = uint64(e.flag)
		}
		fn(br.g.dict.str(e.key), e.kind, ref, br.g.decEntry(e))
	}
}

// RelProp returns a relationship property (Null when absent).
func (br *BulkReader) RelProp(id RelID, key string) Value {
	r := br.g.rel(id)
	if r == nil {
		return Null()
	}
	keyID, ok := br.g.dict.lookupStr(key)
	if !ok {
		return Null()
	}
	if i, had := findEntry(r.cprops, keyID); had {
		return br.g.decEntry(r.cprops[i])
	}
	return Null()
}

// RelPropRef is NodePropRef for relationship properties.
func (br *BulkReader) RelPropRef(id RelID, key string) (Kind, uint64, bool) {
	r := br.g.rel(id)
	if r == nil {
		return KindNull, 0, false
	}
	keyID, ok := br.g.dict.lookupStr(key)
	if !ok {
		return KindNull, 0, false
	}
	i, had := findEntry(r.cprops, keyID)
	if !had {
		return KindNull, 0, false
	}
	e := r.cprops[i]
	if e.kind == KindBool {
		return KindBool, uint64(e.flag), true
	}
	return e.kind, e.num, true
}

// EachRelOf calls fn for each relationship incident to id in the given
// direction (self-loops reported once under DirBoth), until fn returns
// false. other is the far endpoint.
func (br *BulkReader) EachRelOf(id NodeID, dir Dir, fn func(rid RelID, typ uint16, other NodeID) bool) {
	n := br.g.node(id)
	if n == nil {
		return
	}
	if dir == DirOut || dir == DirBoth {
		for _, rid := range n.out {
			if r := br.g.rel(rid); r != nil {
				if !fn(rid, uint16(r.typ), r.to) {
					return
				}
			}
		}
	}
	if dir == DirIn || dir == DirBoth {
		for _, rid := range n.in {
			if r := br.g.rel(rid); r != nil {
				if dir == DirBoth && r.from == r.to {
					continue // already seen in the out scan
				}
				if !fn(rid, uint16(r.typ), r.from) {
					return
				}
			}
		}
	}
}

// NodesByLabel returns the live nodes carrying label, ascending. When the
// label bucket has no pending delta this is the index's own dense base
// slice — callers must treat the result as read-only.
func (br *BulkReader) NodesByLabel(label string) []NodeID {
	lid, ok := br.g.labelIDs[label]
	if !ok {
		return nil
	}
	set := br.g.labelIdx[lid]
	if set == nil {
		return nil
	}
	return set.sorted()
}
