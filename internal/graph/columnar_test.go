package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// This file is the columnar layout's equivalence suite: the columnar store
// must be observationally identical to the boxed (map-of-Values) layout it
// replaced. A shadow model maintains the boxed view alongside every
// mutation; the store, its snapshots, and dictionary-seeded reloads are
// all checked against it.

// boxedModel is the reference implementation: plain maps, no interning.
type boxedModel struct {
	labels map[NodeID][]string
	props  map[NodeID]Props
}

func newBoxedModel() *boxedModel {
	return &boxedModel{labels: map[NodeID][]string{}, props: map[NodeID]Props{}}
}

func (m *boxedModel) add(id NodeID, labels []string, props Props) {
	m.labels[id] = append([]string(nil), labels...)
	p := Props{}
	for k, v := range props {
		p[k] = v
	}
	m.props[id] = p
}

func (m *boxedModel) set(id NodeID, key string, v Value) {
	if v.IsNull() {
		delete(m.props[id], key)
		return
	}
	m.props[id][key] = v
}

func (m *boxedModel) check(t *testing.T, g *Graph, when string) {
	t.Helper()
	for id, want := range m.props {
		got := g.NodeProps(id)
		if len(got) != len(want) {
			t.Fatalf("%s: node %d has %d props, model has %d (%v vs %v)", when, id, len(got), len(want), got, want)
		}
		for k, v := range want {
			gv := g.NodeProp(id, k)
			if !gv.Equal(v) {
				t.Fatalf("%s: node %d prop %s = %v (kind %d), model %v (kind %d)", when, id, k, gv, gv.Kind(), v, v.Kind())
			}
			// Kind fidelity is stronger than Equal (Int(2).Equal(Float(2))):
			// the columnar encode/decode must round-trip the exact kind.
			if gv.Kind() != v.Kind() {
				t.Fatalf("%s: node %d prop %s kind %d, model kind %d", when, id, k, gv.Kind(), v.Kind())
			}
		}
		wantL := m.labels[id]
		gotL := g.NodeLabels(id)
		if len(gotL) != len(wantL) {
			t.Fatalf("%s: node %d labels %v, model %v", when, id, gotL, wantL)
		}
		for _, l := range wantL {
			if !g.NodeHasLabel(id, l) {
				t.Fatalf("%s: node %d lost label %s", when, id, l)
			}
		}
	}
}

// zooValue produces values across every kind, biased toward collisions:
// repeated strings (interning), numbers that straddle the int/float fold,
// lists mixing kinds, negative and extreme numerics.
func zooValue(r *rand.Rand) Value {
	switch r.Intn(12) {
	case 0:
		return Int(int64(r.Intn(10)))
	case 1:
		return Int(-1 << 62)
	case 2:
		return Float(float64(r.Intn(10))) // integral float: folds with Int in indexes
	case 3:
		return Float(r.NormFloat64())
	case 4:
		return Bool(r.Intn(2) == 0)
	case 5:
		return String(fmt.Sprintf("shared-%d", r.Intn(5)))
	case 6:
		return String(fmt.Sprintf("https://example.net/very/long/provenance/url/%d", r.Intn(50)))
	case 7:
		return String("") // empty string is a valid, distinct payload
	case 8:
		return List(Int(2), String("x"))
	case 9:
		return List(Float(2), String("x")) // same rendering as above, different kinds
	case 10:
		return List()
	default:
		return List(String(fmt.Sprintf("t%d", r.Intn(3))), Bool(true), Float(0.5))
	}
}

// buildZoo builds a randomized graph and its boxed shadow model.
func buildZoo(t *testing.T, g *Graph, seed int64, nodes int) *boxedModel {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	m := newBoxedModel()
	labels := []string{"AS", "Prefix", "IP", "HostName", "Tag", "Org"}
	keys := []string{"id", "name", "score", "flag", "tags", "cc", "ref"}
	var ids []NodeID
	for i := 0; i < nodes; i++ {
		props := Props{"id": Int(int64(i))}
		for _, k := range keys[1:] {
			if r.Intn(3) == 0 {
				props[k] = zooValue(r)
			}
		}
		nl := []string{labels[r.Intn(len(labels))]}
		if r.Intn(3) == 0 {
			nl = append(nl, labels[r.Intn(len(labels))])
		}
		id := g.AddNode(nl, props)
		ids = append(ids, id)
		m.add(id, g.NodeLabels(id), props)
	}
	// Overwrites, clears, and late label additions.
	for i := 0; i < nodes; i++ {
		id := ids[r.Intn(len(ids))]
		k := keys[r.Intn(len(keys))]
		var v Value
		if r.Intn(4) == 0 {
			v = Null()
		} else {
			v = zooValue(r)
		}
		if err := g.SetNodeProp(id, k, v); err != nil {
			t.Fatal(err)
		}
		m.set(id, k, v)
		if r.Intn(8) == 0 {
			l := labels[r.Intn(len(labels))]
			if err := g.AddLabel(id, l); err != nil {
				t.Fatal(err)
			}
			m.labels[id] = g.NodeLabels(id)
		}
	}
	types := []string{"ORIGINATE", "RESOLVES_TO", "MEMBER_OF"}
	for i := 0; i < nodes*2; i++ {
		props := Props{"w": Int(int64(i))}
		if r.Intn(2) == 0 {
			props["reference_name"] = String(fmt.Sprintf("dataset.%d", r.Intn(4)))
		}
		if _, err := g.AddRel(types[r.Intn(len(types))], ids[r.Intn(len(ids))], ids[r.Intn(len(ids))], props); err != nil {
			t.Fatal(err)
		}
	}
	// Deletions leave tombstone slots for the snapshot to carry.
	for i := 0; i < nodes/10; i++ {
		id := ids[r.Intn(len(ids))]
		if err := g.DeleteNode(id); err == nil {
			delete(m.props, id)
			delete(m.labels, id)
		}
	}
	g.EnsureIndex("AS", "id")
	g.EnsureIndex("Prefix", "name")
	return m
}

// TestColumnarMatchesBoxedModel drives randomized mutations through the
// columnar store and checks the public property/label API against the
// boxed shadow model, live and across a snapshot round-trip — with both a
// fresh and a seeded (pre-populated, foreign-id) dictionary.
func TestColumnarMatchesBoxedModel(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := New()
		m := buildZoo(t, g, seed, 300)
		m.check(t, g, fmt.Sprintf("seed %d live", seed))

		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatal(err)
		}

		fresh, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		m.check(t, fresh, fmt.Sprintf("seed %d fresh load", seed))
		graphsEquivalent(t, g, fresh)

		// A seeded dictionary already holding unrelated strings forces the
		// loader's file-id → global-id remap onto non-contiguous ids.
		dict := NewInterner()
		for i := 0; i < 100; i++ {
			dict.intern(fmt.Sprintf("unrelated-%d", i))
		}
		seeded, rep, err := LoadWith(bytes.NewReader(buf.Bytes()), LoadOptions{Dict: dict})
		if err != nil {
			t.Fatal(err)
		}
		if rep.DictStrings == 0 || rep.DictReused != 0 {
			t.Fatalf("seeded load report = %+v, want strings > 0, reused 0", rep)
		}
		m.check(t, seeded, fmt.Sprintf("seed %d seeded load", seed))
		graphsEquivalent(t, g, seeded)

		// Loading again with the now-warm dictionary reuses every string.
		warm, rep2, err := LoadWith(bytes.NewReader(buf.Bytes()), LoadOptions{Dict: dict})
		if err != nil {
			t.Fatal(err)
		}
		if rep2.DictReused != rep2.DictStrings {
			t.Fatalf("warm load reused %d of %d strings, want all", rep2.DictReused, rep2.DictStrings)
		}
		m.check(t, warm, fmt.Sprintf("seed %d warm load", seed))
	}
}

// TestColumnarIndexLookupsMatchScan cross-checks NodesByProp (interned
// bucket keys) against a full scan with Value.Equal for every stored value
// — including the Int/Float fold and list payloads — plus probes for
// values that were never stored (the dictionary-miss fast path).
func TestColumnarIndexLookupsMatchScan(t *testing.T) {
	g := New()
	buildZoo(t, g, 99, 300)
	g.EnsureIndex("AS", "name")
	g.EnsureIndex("AS", "score")
	g.EnsureIndex("AS", "tags")

	scan := func(label, key string, v Value) map[NodeID]bool {
		want := map[NodeID]bool{}
		for _, id := range g.NodesByLabel(label) {
			if g.NodeProp(id, key).Equal(v) {
				want[id] = true
			}
		}
		return want
	}
	check := func(label, key string, v Value) {
		t.Helper()
		want := scan(label, key, v)
		got := map[NodeID]bool{}
		for _, id := range g.NodesByProp(label, key, v) {
			got[id] = true
		}
		if len(got) != len(want) {
			t.Fatalf("NodesByProp(%s,%s,%v) = %d nodes, scan %d", label, key, v, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("NodesByProp(%s,%s,%v) missing node %d", label, key, v, id)
			}
		}
	}

	probes := []Value{
		String("shared-1"), String(""), String("never-stored"),
		Int(3), Float(3), Float(0.5), Bool(true),
		List(Int(2), String("x")), List(Float(2), String("x")), List(),
	}
	for _, v := range probes {
		check("AS", "name", v)
		check("AS", "score", v)
		check("AS", "tags", v)
	}
}

// TestCOWStormSharedInterner is the -race gate over the shared dictionary:
// concurrent clones of one frozen generation intern overlapping string
// sets while readers hammer the frozen parent's lookups, scans, and index
// probes. Any unsynchronized access to the shared intern table or the
// structurally-shared columns is a data race the race detector flags.
func TestCOWStormSharedInterner(t *testing.T) {
	base := New()
	var asIDs []NodeID
	for i := 0; i < 200; i++ {
		asIDs = append(asIDs, base.AddNode([]string{"AS"}, Props{
			"asn":  Int(int64(i)),
			"name": String(fmt.Sprintf("AS Example %d", i)),
		}))
	}
	base.EnsureIndex("AS", "asn")
	base.Freeze()

	const writers, readers, rounds = 4, 4, 50
	var wg sync.WaitGroup
	clones := make([]*Graph, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := base.Clone()
			clones[w] = c
			for i := 0; i < rounds; i++ {
				// Half the strings overlap across writers (contended
				// intern appends), half are writer-private.
				shared := fmt.Sprintf("storm-shared-%d", i%10)
				private := fmt.Sprintf("storm-w%d-%d", w, i)
				id := c.AddNode([]string{"Tag"}, Props{"label": String(shared), "own": String(private)})
				if err := c.SetNodeProp(id, "extra", List(String(shared), Int(int64(i)))); err != nil {
					panic(err)
				}
				if err := c.SetNodeProp(asIDs[i%len(asIDs)], "name", String(shared)); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Frozen-parent reads race only if sharing is broken.
				id := asIDs[(i*7+rd)%len(asIDs)]
				if v := base.NodeProp(id, "name"); v.IsNull() {
					panic("frozen node lost its name")
				}
				base.NodesByProp("AS", "asn", Int(int64(i%200)))
				base.BulkRead(func(br *BulkReader) {
					br.EachNodeProp(id, func(string, Value) {})
				})
				if n := base.CountByLabel("AS"); n != 200 {
					panic(fmt.Sprintf("frozen CountByLabel = %d", n))
				}
			}
		}(rd)
	}
	wg.Wait()

	// Every clone saw only its own writes on top of the shared base.
	for w, c := range clones {
		if got := c.CountByLabel("Tag"); got != rounds {
			t.Fatalf("clone %d has %d Tag nodes, want %d", w, got, rounds)
		}
		if got := c.CountByLabel("AS"); got != 200 {
			t.Fatalf("clone %d has %d AS nodes, want 200", w, got)
		}
	}
	if base.NumNodes() != 200 {
		t.Fatalf("frozen base mutated: %d nodes", base.NumNodes())
	}
	// And all clones share one dictionary with the base.
	for w, c := range clones {
		if c.Interner() != base.Interner() {
			t.Fatalf("clone %d does not share the base dictionary", w)
		}
	}
}
