package graph

import (
	"errors"
	"fmt"
)

// ErrFrozen is returned when a write batch targets a frozen (published)
// generation. Writers must go through an MVStore, which clones the head
// generation and applies batches to the mutable clone.
var ErrFrozen = errors.New("graph: generation is frozen (apply writes through the MVStore)")

// Batch is a staging write-buffer for graph mutations. Writes are recorded
// against virtual node handles and applied to a Graph in a single
// ApplyBatch call, which takes the store lock once and costs O(staged
// writes) — not O(graph). Until ApplyBatch runs, the graph is untouched;
// discarding a batch (dropping the reference) discards every staged write.
//
// This is the substrate of the ingestion layer's atomic crawler commits: a
// crawler stages its whole dataset into a Batch and the pipeline applies it
// only when the crawler finished cleanly, so a failed dataset contributes
// zero nodes and zero relationships.
//
// A Batch is not safe for concurrent use; each writer stages into its own.
type Batch struct {
	merges []stagedMerge
	ops    []stagedOp
	rels   int
}

// stagedMerge is one MergeNode upsert; its index+1 is the virtual NodeID
// handed back to the caller.
type stagedMerge struct {
	label       string
	key         string
	val         Value
	extraLabels []string
	props       Props
}

type opKind uint8

const (
	opSetNodeProp opKind = iota
	opAddLabel
	opAddRel
)

// stagedOp is an ordered mutation referencing virtual node handles.
type stagedOp struct {
	kind  opKind
	node  NodeID // virtual handle
	to    NodeID // virtual handle (opAddRel)
	name  string // property key, label, or relationship type
	val   Value
	props Props
}

// NewBatch returns an empty staging buffer.
func NewBatch() *Batch { return &Batch{} }

// MergeNode stages an identity upsert (same semantics as Graph.MergeNode)
// and returns a virtual handle valid only within this batch. Callers are
// expected to deduplicate identities themselves (the ingest session does);
// staging the same identity twice yields two handles that resolve to the
// same graph node at apply time.
func (b *Batch) MergeNode(label, key string, v Value, extraLabels []string, props Props) NodeID {
	b.merges = append(b.merges, stagedMerge{
		label:       label,
		key:         key,
		val:         v,
		extraLabels: append([]string(nil), extraLabels...),
		props:       props.Clone(),
	})
	return NodeID(len(b.merges))
}

// check validates a virtual handle.
func (b *Batch) check(id NodeID) error {
	if id == 0 || int(id) > len(b.merges) {
		return fmt.Errorf("graph: batch: invalid staged node handle %d", id)
	}
	return nil
}

// MergeProps stages creation-time properties for a staged node: at apply
// time they merge with existing-values-win semantics, and within the batch
// the first staged value for a key wins.
func (b *Batch) MergeProps(id NodeID, props Props) error {
	if err := b.check(id); err != nil {
		return err
	}
	m := &b.merges[id-1]
	if m.props == nil {
		m.props = Props{}
	}
	for k, v := range props {
		if _, ok := m.props[k]; !ok {
			m.props[k] = v
		}
	}
	return nil
}

// SetNodeProp stages an unconditional property write on a staged node.
func (b *Batch) SetNodeProp(id NodeID, key string, v Value) error {
	if err := b.check(id); err != nil {
		return err
	}
	b.ops = append(b.ops, stagedOp{kind: opSetNodeProp, node: id, name: key, val: v})
	return nil
}

// AddLabel stages an extra label on a staged node.
func (b *Batch) AddLabel(id NodeID, label string) error {
	if err := b.check(id); err != nil {
		return err
	}
	b.ops = append(b.ops, stagedOp{kind: opAddLabel, node: id, name: label})
	return nil
}

// AddRel stages a relationship between two staged nodes.
func (b *Batch) AddRel(typ string, from, to NodeID, props Props) error {
	if err := b.check(from); err != nil {
		return err
	}
	if err := b.check(to); err != nil {
		return err
	}
	b.ops = append(b.ops, stagedOp{kind: opAddRel, node: from, to: to, name: typ, props: props.Clone()})
	b.rels++
	return nil
}

// Staged returns the number of staged node upserts and relationships.
func (b *Batch) Staged() (nodes, rels int) { return len(b.merges), b.rels }

// BatchResult summarizes an applied batch.
type BatchResult struct {
	// NodesCreated counts staged upserts that created a node (the rest
	// merged into nodes that already existed).
	NodesCreated int
	// RelsCreated counts relationships added.
	RelsCreated int
	// IDs maps each virtual handle (index+1) to the graph node it resolved
	// to, letting callers translate staged handles after the fact.
	IDs []NodeID
}

// ApplyBatch applies every staged write under one lock, in staging order:
// node upserts first (resolving virtual handles to graph IDs), then the
// ordered property/label/relationship ops. Handles are validated at staging
// time, so apply cannot fail halfway on caller input; an error here means a
// corrupted batch and reports how far the apply got.
func (g *Graph) ApplyBatch(b *Batch) (BatchResult, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var res BatchResult
	if g.frozen {
		return res, ErrFrozen
	}
	ids := make([]NodeID, len(b.merges))
	res.IDs = ids
	for i, m := range b.merges {
		id, created := g.mergeNodeLocked(m.label, m.key, m.val, m.extraLabels, m.props)
		ids[i] = id
		if created {
			res.NodesCreated++
		}
	}
	for _, op := range b.ops {
		if int(op.node) > len(ids) {
			return res, fmt.Errorf("graph: batch: op references unknown handle %d", op.node)
		}
		switch op.kind {
		case opSetNodeProp:
			g.setNodePropLocked(ids[op.node-1], op.name, op.val)
		case opAddLabel:
			g.addLabelLocked(ids[op.node-1], op.name)
		case opAddRel:
			if int(op.to) > len(ids) {
				return res, fmt.Errorf("graph: batch: op references unknown handle %d", op.to)
			}
			if _, err := g.addRelLocked(op.name, ids[op.node-1], ids[op.to-1], op.props); err != nil {
				return res, err
			}
			res.RelsCreated++
		}
	}
	return res, nil
}
