package graph

import (
	"sync"
	"sync/atomic"
)

// Interner is the dictionary behind the columnar property layout: an
// append-only table of property-key and string-value payloads (plus interned
// list payloads), shared structurally across every generation of a graph
// lineage. Nodes and relationships store fixed-size ids into it instead of
// boxed strings, so a COW clone shares all string storage with its parent
// and Freeze/Clone stay O(changed).
//
// Concurrency contract: lookups and id→payload resolution are lock-free and
// safe from any goroutine (including readers of frozen generations);
// appends serialize on a mutex. Payload slots are published through the
// lookup map (or through a graph publication such as MVStore's atomic head
// store), both of which provide the happens-before edge readers need.
//
// The table is content-addressed — an id means the same payload to every
// graph that references this Interner — so sharing one Interner across
// independently-loaded generations (a replica following a store, a delta
// build seeded from its parent) is always safe. The cost of sharing is that
// strings interned by discarded clones are retained until the whole lineage
// is dropped; the table is append-only by design.
type Interner struct {
	mu sync.Mutex // serializes appends

	strLookup  sync.Map // string → uint32
	listLookup sync.Map // normalized encoding (string) → uint32

	strChunks  atomic.Pointer[[][]string]
	listChunks atomic.Pointer[[][][]Value]

	strCount  atomic.Uint64
	listCount atomic.Uint64
}

// internChunkShift sizes arena chunks (1<<shift payloads each). Chunks are
// allocated at full length up front and filled by index, so readers can
// index any published id without observing a slice append.
const internChunkShift = 12

const internChunkSize = 1 << internChunkShift

// NewInterner returns an empty dictionary.
func NewInterner() *Interner {
	return &Interner{}
}

// Len reports how many distinct strings the table holds.
func (in *Interner) Len() int { return int(in.strCount.Load()) }

// ListLen reports how many distinct list payloads the table holds.
func (in *Interner) ListLen() int { return int(in.listCount.Load()) }

// lookupStr probes for s without interning it. ok is false when s has never
// been interned — for a read path that means no stored value can equal it.
func (in *Interner) lookupStr(s string) (uint32, bool) {
	v, ok := in.strLookup.Load(s)
	if !ok {
		return 0, false
	}
	return v.(uint32), true
}

// intern returns the id for s, appending it on first sight.
func (in *Interner) intern(s string) uint32 {
	id, _ := in.internHit(s)
	return id
}

// internHit is intern plus a reuse report: existed is true when s was
// already in the table (the loader counts these as dictionary reuse hits).
func (in *Interner) internHit(s string) (id uint32, existed bool) {
	if v, ok := in.strLookup.Load(s); ok {
		return v.(uint32), true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if v, ok := in.strLookup.Load(s); ok {
		return v.(uint32), true
	}
	n := uint32(in.strCount.Load())
	chunk, slot := n>>internChunkShift, n&(internChunkSize-1)
	chunks := in.strChunks.Load()
	if chunks == nil || int(chunk) >= len(*chunks) {
		var grown [][]string
		if chunks != nil {
			grown = append(grown, *chunks...)
		}
		grown = append(grown, make([]string, internChunkSize))
		in.strChunks.Store(&grown)
		chunks = &grown
	}
	(*chunks)[chunk][slot] = s
	in.strCount.Store(uint64(n) + 1)
	in.strLookup.Store(s, n)
	return n, false
}

// str resolves an id to its string. The id must have been produced by this
// Interner; resolution is lock-free.
func (in *Interner) str(id uint32) string {
	chunks := in.strChunks.Load()
	return (*chunks)[id>>internChunkShift][id&(internChunkSize-1)]
}

// internListKey interns a list payload under its pre-computed dedup key
// (the exact snapshot value encoding — see listDedupKey — so Int(2) and
// Float(2.0) elements stay distinct payloads and round-trip their kinds).
func (in *Interner) internListKey(key string, vs []Value) uint32 {
	if v, ok := in.listLookup.Load(key); ok {
		return v.(uint32)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if v, ok := in.listLookup.Load(key); ok {
		return v.(uint32)
	}
	n := uint32(in.listCount.Load())
	chunk, slot := n>>internChunkShift, n&(internChunkSize-1)
	chunks := in.listChunks.Load()
	if chunks == nil || int(chunk) >= len(*chunks) {
		var grown [][][]Value
		if chunks != nil {
			grown = append(grown, *chunks...)
		}
		grown = append(grown, make([][]Value, internChunkSize))
		in.listChunks.Store(&grown)
		chunks = &grown
	}
	cp := make([]Value, len(vs))
	copy(cp, vs)
	(*chunks)[chunk][slot] = cp
	in.listCount.Store(uint64(n) + 1)
	in.listLookup.Store(key, n)
	return n
}

// list resolves a list id to its (shared, do-not-mutate) payload.
func (in *Interner) list(id uint32) []Value {
	chunks := in.listChunks.Load()
	return (*chunks)[id>>internChunkShift][id&(internChunkSize-1)]
}

// listDedupKey is the content address of a list payload: the exact bytes
// the snapshot encoder would write for the value. Using the byte encoding
// (rather than a display form) keeps semantically-distinct payloads — e.g.
// [2] as ints vs floats — from colliding and corrupting a round-trip.
func listDedupKey(vs []Value) string {
	var e encBuf
	for _, v := range vs {
		e.value(v)
	}
	return e.b.String()
}
