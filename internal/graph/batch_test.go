package graph

import "testing"

func TestBatchStagesWithoutTouchingGraph(t *testing.T) {
	g := New()
	b := NewBatch()
	a := b.MergeNode("AS", "asn", Int(1), nil, nil)
	p := b.MergeNode("Prefix", "prefix", String("10.0.0.0/8"), nil, nil)
	if err := b.AddRel("ORIGINATE", a, p, Props{"count": Int(1)}); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumRels() != 0 {
		t.Fatal("staging must not touch the graph")
	}
	nodes, rels := b.Staged()
	if nodes != 2 || rels != 1 {
		t.Errorf("staged = %d nodes, %d rels", nodes, rels)
	}

	res, err := g.ApplyBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesCreated != 2 || res.RelsCreated != 1 {
		t.Errorf("result = %+v", res)
	}
	if g.NumNodes() != 2 || g.NumRels() != 1 {
		t.Errorf("graph = %d nodes, %d rels", g.NumNodes(), g.NumRels())
	}
}

func TestBatchMergesIntoExistingNodes(t *testing.T) {
	g := New()
	existing, _ := g.MergeNode("AS", "asn", Int(64500), nil, Props{"name": String("KEEP")})

	b := NewBatch()
	h := b.MergeNode("AS", "asn", Int(64500), []string{"Anycast"}, Props{"name": String("LOSE"), "rank": Int(7)})
	res, err := g.ApplyBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesCreated != 0 {
		t.Errorf("existing node counted as created: %+v", res)
	}
	_ = h
	if g.NumNodes() != 1 {
		t.Errorf("nodes = %d, want 1 (identity merge)", g.NumNodes())
	}
	if v, _ := g.NodeProp(existing, "name").AsString(); v != "KEEP" {
		t.Errorf("existing prop overwritten: %q", v)
	}
	if v, _ := g.NodeProp(existing, "rank").AsInt(); v != 7 {
		t.Errorf("new prop not merged: %v", v)
	}
	if !g.NodeHasLabel(existing, "Anycast") {
		t.Error("extra label not applied")
	}
}

func TestBatchOrderedOps(t *testing.T) {
	g := New()
	b := NewBatch()
	n := b.MergeNode("AS", "asn", Int(1), nil, nil)
	if err := b.SetNodeProp(n, "hegemony", Float(0.25)); err != nil {
		t.Fatal(err)
	}
	if err := b.SetNodeProp(n, "hegemony", Float(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLabel(n, "Transit"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	id := g.NodesByProp("AS", "asn", Int(1))[0]
	if v, _ := g.NodeProp(id, "hegemony").AsFloat(); v != 0.5 {
		t.Errorf("last SetNodeProp must win, got %v", v)
	}
	if !g.NodeHasLabel(id, "Transit") {
		t.Error("AddLabel not applied")
	}
	// SetNodeProp must keep property indexes consistent.
	g.EnsureIndex("AS", "hegemony")
	if got := g.NodesByProp("AS", "hegemony", Float(0.5)); len(got) != 1 {
		t.Errorf("indexed lookup after batch = %d nodes", len(got))
	}
}

func TestBatchMergePropsFirstStagedWins(t *testing.T) {
	g := New()
	b := NewBatch()
	n := b.MergeNode("AtlasProbe", "id", Int(9), nil, Props{"status": String("Connected")})
	if err := b.MergeProps(n, Props{"status": String("Abandoned"), "af": Int(4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	id := g.NodesByProp("AtlasProbe", "id", Int(9))[0]
	if v, _ := g.NodeProp(id, "status").AsString(); v != "Connected" {
		t.Errorf("status = %q, want first staged value", v)
	}
	if v, _ := g.NodeProp(id, "af").AsInt(); v != 4 {
		t.Errorf("af = %v", v)
	}
}

func TestBatchRejectsInvalidHandles(t *testing.T) {
	b := NewBatch()
	n := b.MergeNode("AS", "asn", Int(1), nil, nil)
	if err := b.AddRel("PEERS_WITH", n, n+1, nil); err == nil {
		t.Error("out-of-range handle must be rejected at staging time")
	}
	if err := b.SetNodeProp(0, "x", Int(1)); err == nil {
		t.Error("zero handle must be rejected")
	}
	if err := b.AddLabel(99, "X"); err == nil {
		t.Error("unknown handle must be rejected")
	}
}

func TestBatchDiscardLeavesGraphUntouched(t *testing.T) {
	g := New()
	before := g.Stats()
	b := NewBatch()
	a := b.MergeNode("AS", "asn", Int(1), nil, nil)
	c := b.MergeNode("Country", "country_code", String("JP"), nil, nil)
	_ = b.AddRel("COUNTRY", a, c, nil)
	// Dropping b without ApplyBatch is the discard path.
	b = nil
	after := g.Stats()
	if before.Nodes != after.Nodes || before.Rels != after.Rels {
		t.Error("discarded batch mutated the graph")
	}
}
