package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randomGraph builds a pseudo-random graph for round-trip testing.
func randomGraph(seed int64, nodes, rels int) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New()
	labels := []string{"AS", "Prefix", "IP", "HostName", "Tag"}
	var ids []NodeID
	for i := 0; i < nodes; i++ {
		props := Props{
			"id": Int(int64(i)),
		}
		switch r.Intn(4) {
		case 0:
			props["name"] = String("n" + string(rune('a'+r.Intn(26))))
		case 1:
			props["score"] = Float(r.Float64())
		case 2:
			props["flag"] = Bool(r.Intn(2) == 0)
		case 3:
			props["tags"] = Strings("x", "y")
		}
		nl := []string{labels[r.Intn(len(labels))]}
		if r.Intn(3) == 0 {
			nl = append(nl, labels[r.Intn(len(labels))])
		}
		ids = append(ids, g.AddNode(nl, props))
	}
	types := []string{"ORIGINATE", "RESOLVES_TO", "PART_OF"}
	for i := 0; i < rels; i++ {
		from := ids[r.Intn(len(ids))]
		to := ids[r.Intn(len(ids))]
		_, _ = g.AddRel(types[r.Intn(len(types))], from, to, Props{"w": Int(int64(i))})
	}
	// A few deletions exercise tombstone slots.
	for i := 0; i < nodes/10; i++ {
		_ = g.DeleteNode(ids[r.Intn(len(ids))])
	}
	g.EnsureIndex("AS", "id")
	return g
}

// graphsEquivalent compares two graphs structurally.
func graphsEquivalent(t *testing.T, a, b *Graph) {
	t.Helper()
	sa, sb := a.Stats(), b.Stats()
	if sa.Nodes != sb.Nodes || sa.Rels != sb.Rels {
		t.Fatalf("counts differ: %d/%d vs %d/%d", sa.Nodes, sa.Rels, sb.Nodes, sb.Rels)
	}
	for l, n := range sa.ByLabel {
		if sb.ByLabel[l] != n {
			t.Fatalf("label %s: %d vs %d", l, n, sb.ByLabel[l])
		}
	}
	for ty, n := range sa.ByRelType {
		if sb.ByRelType[ty] != n {
			t.Fatalf("type %s: %d vs %d", ty, n, sb.ByRelType[ty])
		}
	}
	// Node-by-node comparison (IDs are preserved by snapshots).
	a.EachNode(func(id NodeID) bool {
		if !b.HasNode(id) {
			t.Fatalf("node %d missing after load", id)
		}
		al, bl := a.NodeLabels(id), b.NodeLabels(id)
		if len(al) != len(bl) {
			t.Fatalf("node %d labels differ: %v vs %v", id, al, bl)
		}
		ap, bp := a.NodeProps(id), b.NodeProps(id)
		if len(ap) != len(bp) {
			t.Fatalf("node %d props differ", id)
		}
		for k, v := range ap {
			if !bp[k].Equal(v) {
				t.Fatalf("node %d prop %s: %v vs %v", id, k, v, bp[k])
			}
		}
		// Adjacency preserved.
		if len(a.Rels(id, DirBoth, nil, nil)) != len(b.Rels(id, DirBoth, nil, nil)) {
			t.Fatalf("node %d degree differs", id)
		}
		return true
	})
	a.EachRel(func(id RelID) bool {
		if a.RelType(id) != b.RelType(id) {
			t.Fatalf("rel %d type differs", id)
		}
		af, at := a.RelEndpoints(id)
		bf, bt := b.RelEndpoints(id)
		if af != bf || at != bt {
			t.Fatalf("rel %d endpoints differ", id)
		}
		return true
	})
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomGraph(seed, 200, 400)
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		graphsEquivalent(t, g, loaded)
		// Index declarations survive the round trip.
		if !loaded.HasIndex("AS", "id") {
			t.Error("index lost in snapshot")
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	g := randomGraph(9, 100, 150)
	var b1, b2 bytes.Buffer
	if err := g.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := g.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two saves of the same graph differ byte-wise")
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := New()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != 0 || loaded.NumRels() != 0 {
		t.Error("empty graph round-trip not empty")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("Load(garbage) should fail")
	}
	// Valid gzip, wrong magic.
	g := New()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncations must error, not panic.
	for _, n := range []int{1, 5, 10, len(data) / 2} {
		if n >= len(data) {
			continue
		}
		if _, err := Load(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("Load(truncated to %d) should fail", n)
		}
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.snapshot")
	g := randomGraph(4, 50, 80)
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Atomic write: no .tmp residue.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsEquivalent(t, g, loaded)
	if _, err := LoadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("LoadFile(missing) should fail")
	}
}
