package graph

import (
	"bytes"
	"os"
	"testing"
)

// FuzzLoad throws arbitrary bytes at the snapshot loader. The invariant is
// the corruption suite's, universally quantified: Load returns a graph or
// an error — it never panics, hangs, or allocates beyond what the input
// can back. Seeds cover both format versions, their truncations, and the
// journal format (whose magic Load rejects).
func FuzzLoad(f *testing.F) {
	for _, fixture := range []string{"testdata/v1-golden.snapshot", "testdata/v1-empty.snapshot"} {
		data, err := os.ReadFile(fixture)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	var v2 bytes.Buffer
	if err := fixtureGraph().Save(&v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	var empty bytes.Buffer
	if err := New().Save(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte(snapshotMagic))
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte(batchMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must round-trip: save it and load it back.
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("accepted graph does not re-save: %v", err)
		}
		if _, err := Load(&buf); err != nil {
			t.Fatalf("accepted graph does not round-trip: %v", err)
		}
	})
}

// FuzzReadBatch does the same for the checkpoint journal decoder.
func FuzzReadBatch(f *testing.F) {
	b := NewBatch()
	n1 := b.MergeNode("AS", "asn", Int(64500), []string{"BGPCollector"}, Props{"name": String("TEST-AS")})
	n2 := b.MergeNode("Prefix", "prefix", String("192.0.2.0/24"), nil, nil)
	_ = b.SetNodeProp(n1, "rank", Int(7))
	_ = b.AddLabel(n2, "RPKI")
	_ = b.AddRel("ORIGINATE", n1, n2, Props{"count": Int(3)})
	var buf bytes.Buffer
	if err := WriteBatch(&buf, b); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	f.Add([]byte(batchMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		rb, err := ReadBatch(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must apply cleanly: every handle was validated.
		if _, err := New().ApplyBatch(rb); err != nil {
			t.Fatalf("accepted journal fails to apply: %v", err)
		}
	})
}
