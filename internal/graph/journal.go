package graph

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Batch journal: the on-disk form of one staged Batch — the unit the
// resumable build checkpoints after every successful crawler commit. A
// journal replays into an identical ApplyBatch call, so a build resumed
// from journals produces the same graph as the uninterrupted build that
// would have applied the live batches.
//
// Layout:
//
//	magic "IYPJ" | version u8 = 1
//	crc32c(compressed body) u32le | compressed len u64le |
//	uncompressed len u64le | gzip(body)
//
// Body:
//
//	merges: uvarint count, per merge:
//	    label string, key string, identity value,
//	    uvarint extra-label count + strings, props
//	ops: uvarint count, per op:
//	    kind u8, node uvarint, to uvarint, name string, value, props
//
// The CRC is verified before decompression and every handle is validated
// against the merge count, so a damaged journal yields ErrCorrupt rather
// than a half-replayed batch.
const (
	batchMagic   = "IYPJ"
	batchVersion = 1
)

// WriteBatch encodes b to w.
func WriteBatch(w io.Writer, b *Batch) error {
	var enc encBuf
	enc.uvarint(uint64(len(b.merges)))
	for _, m := range b.merges {
		enc.string(m.label)
		enc.string(m.key)
		enc.value(m.val)
		enc.uvarint(uint64(len(m.extraLabels)))
		for _, l := range m.extraLabels {
			enc.string(l)
		}
		enc.props(m.props)
	}
	enc.uvarint(uint64(len(b.ops)))
	for _, op := range b.ops {
		enc.byte(byte(op.kind))
		enc.uvarint(uint64(op.node))
		enc.uvarint(uint64(op.to))
		enc.string(op.name)
		enc.value(op.val)
		enc.props(op.props)
	}

	var comp bytes.Buffer
	zw := gzip.NewWriter(&comp)
	if _, err := zw.Write(enc.b.Bytes()); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}

	var hdr [len(batchMagic) + 1 + 4 + 8 + 8]byte
	copy(hdr[:], batchMagic)
	hdr[len(batchMagic)] = batchVersion
	binary.LittleEndian.PutUint32(hdr[len(batchMagic)+1:], crc32.Checksum(comp.Bytes(), castagnoli))
	binary.LittleEndian.PutUint64(hdr[len(batchMagic)+5:], uint64(comp.Len()))
	binary.LittleEndian.PutUint64(hdr[len(batchMagic)+13:], uint64(enc.b.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(comp.Bytes())
	return err
}

// ReadBatch decodes a journal written by WriteBatch, validating the
// checksum before decompression and every staged handle before returning.
// Damaged input yields an error wrapping ErrCorrupt.
func ReadBatch(r io.Reader) (*Batch, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: batch journal read: %w", err)
	}
	const hdrSize = len(batchMagic) + 1 + 4 + 8 + 8
	if len(data) < hdrSize {
		return nil, corruptf("batch journal too short (%d bytes)", len(data))
	}
	if string(data[:len(batchMagic)]) != batchMagic {
		return nil, fmt.Errorf("graph: not a batch journal (bad magic %q)", data[:len(batchMagic)])
	}
	if v := data[len(batchMagic)]; v != batchVersion {
		return nil, fmt.Errorf("graph: unsupported batch journal version %d", v)
	}
	wantCRC := binary.LittleEndian.Uint32(data[len(batchMagic)+1:])
	clen := binary.LittleEndian.Uint64(data[len(batchMagic)+5:])
	ulen := binary.LittleEndian.Uint64(data[len(batchMagic)+13:])
	if clen != uint64(len(data)-hdrSize) {
		return nil, corruptf("batch journal length %d does not match remaining %d bytes", clen, len(data)-hdrSize)
	}
	if ulen > clen*1032+1024 {
		return nil, corruptf("batch journal uncompressed length %d implausible for %d compressed bytes", ulen, clen)
	}
	comp := data[hdrSize:]
	if got := crc32.Checksum(comp, castagnoli); got != wantCRC {
		return nil, corruptf("batch journal checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, corruptf("batch journal: %v", err)
	}
	defer zr.Close()
	var body bytes.Buffer
	n, err := io.Copy(&body, io.LimitReader(zr, int64(ulen)+1))
	if err != nil {
		return nil, corruptf("batch journal: %v", err)
	}
	if uint64(n) != ulen {
		return nil, corruptf("batch journal decompressed to %d bytes, header claims %d", n, ulen)
	}

	d := &sliceReader{data: body.Bytes()}
	b := NewBatch()
	nMerges, err := readUvarint(d)
	if err != nil {
		return nil, err
	}
	if nMerges > d.limit() {
		return nil, corruptf("batch journal merge count %d exceeds input", nMerges)
	}
	for i := uint64(0); i < nMerges; i++ {
		var m stagedMerge
		if m.label, err = readString(d); err != nil {
			return nil, err
		}
		if m.key, err = readString(d); err != nil {
			return nil, err
		}
		if m.val, err = readValue(d); err != nil {
			return nil, err
		}
		ne, err := readUvarint(d)
		if err != nil {
			return nil, err
		}
		if ne > d.limit() {
			return nil, corruptf("batch journal extra-label count %d exceeds input", ne)
		}
		for j := uint64(0); j < ne; j++ {
			l, err := readString(d)
			if err != nil {
				return nil, err
			}
			m.extraLabels = append(m.extraLabels, l)
		}
		if m.props, err = readProps(d); err != nil {
			return nil, err
		}
		b.merges = append(b.merges, m)
	}
	nOps, err := readUvarint(d)
	if err != nil {
		return nil, err
	}
	if nOps > d.limit() {
		return nil, corruptf("batch journal op count %d exceeds input", nOps)
	}
	for i := uint64(0); i < nOps; i++ {
		var op stagedOp
		kb, err := d.ReadByte()
		if err != nil {
			return nil, asCorrupt(err)
		}
		if kb > byte(opAddRel) {
			return nil, corruptf("batch journal op kind %d unknown", kb)
		}
		op.kind = opKind(kb)
		node, err := readUvarint(d)
		if err != nil {
			return nil, err
		}
		to, err := readUvarint(d)
		if err != nil {
			return nil, err
		}
		if node == 0 || node > nMerges {
			return nil, corruptf("batch journal op references handle %d of %d", node, nMerges)
		}
		if op.kind == opAddRel && (to == 0 || to > nMerges) {
			return nil, corruptf("batch journal op references handle %d of %d", to, nMerges)
		}
		op.node, op.to = NodeID(node), NodeID(to)
		if op.name, err = readString(d); err != nil {
			return nil, err
		}
		if op.val, err = readValue(d); err != nil {
			return nil, err
		}
		if op.props, err = readProps(d); err != nil {
			return nil, err
		}
		if op.kind == opAddRel {
			b.rels++
		}
		b.ops = append(b.ops, op)
	}
	if d.remaining() != 0 {
		return nil, corruptf("batch journal has %d trailing bytes", d.remaining())
	}
	return b, nil
}
