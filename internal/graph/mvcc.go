package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// MVStore is the multi-version concurrency layer over immutable graph
// generations — the piece that turns the engine from "stop-the-world
// builds" into "serve queries during ingestion" (the paper's IYP is
// rebuilt weekly but queried continuously, so this is the production
// read path).
//
// The design is single-writer / many-readers:
//
//   - The current generation ("head") is a frozen Graph published through
//     an atomic pointer. Readers pin it with Acquire and then run entirely
//     lock-free: frozen graphs elide the store RWMutex in every accessor.
//   - A writer (Update / ApplyBatch) takes the writer mutex, Clones the
//     head (copy-on-write: O(slots) pointer copies, structural sharing of
//     nodes, relationships and index buckets), mutates the private clone,
//     freezes it, and publishes it with one atomic swap. Readers pinned to
//     the old head are unaffected; new readers see the new head.
//   - Superseded generations are reclaimed with a pin-count epoch scheme:
//     each generation counts its pinned readers, and once a retired
//     generation's count drains to zero (and it has aged out of the retain
//     window) the store drops its reference and notifies OnRetire hooks so
//     derived caches (the analytics CSR views) release theirs too. The Go
//     GC frees the memory; "reclamation" here means the store stops
//     keeping superseded versions alive.
//
// The retain window keeps the most recent generations available to
// AcquireGen even with no reader pinned — the foundation for AS-OF
// queries and the HTTP API's explicit "generation" pinning.
type MVStore struct {
	// writeMu serializes writers: one clone-mutate-publish cycle at a time.
	writeMu sync.Mutex

	head atomic.Pointer[mvGen]

	// mu guards retained and onRetire.
	mu       sync.Mutex
	retained map[uint64]*mvGen
	retain   int
	onRetire []func(*Graph)

	// history, when set, resolves generations that have aged out of the
	// in-memory retain window from persistent storage (the generation
	// store). AcquireGen falls back to it after an in-memory miss.
	history atomic.Pointer[HistorySource]

	reclaimed atomic.Uint64
}

// HistorySource resolves generations that are no longer retained in
// memory — typically by materializing gen-NNNNNN.snapshot files from the
// on-disk generation store. AcquireHistorical returns a frozen graph for
// gen, pinned until release is called. Implementations must be safe for
// concurrent use.
type HistorySource interface {
	AcquireHistorical(gen uint64) (*Graph, func(), error)
}

// mvGen is one published generation and its reader bookkeeping.
type mvGen struct {
	gen     uint64
	g       *Graph
	pins    atomic.Int64
	retired atomic.Bool
}

// DefaultRetain is how many recent generations an MVStore keeps available
// to AcquireGen beyond the current one, absent a SetRetain override.
const DefaultRetain = 4

// NewMVStore takes ownership of g, freezes it as generation 1 and returns
// the versioned store. The caller must not mutate g afterwards; all writes
// go through Update or ApplyBatch.
func NewMVStore(g *Graph) *MVStore { return NewMVStoreAt(g, 1) }

// NewMVStoreAt is NewMVStore with an explicit starting generation number.
// When the graph was loaded from a generation store, passing the store's
// head sequence aligns the in-memory chain with the on-disk one, so AS-OF
// reads of older numbers can be resolved from disk through a HistorySource.
func NewMVStoreAt(g *Graph, gen uint64) *MVStore {
	if gen == 0 {
		gen = 1
	}
	st := &MVStore{
		retained: make(map[uint64]*mvGen),
		retain:   DefaultRetain,
	}
	g.Freeze()
	e := &mvGen{gen: gen, g: g}
	st.retained[gen] = e
	st.head.Store(e)
	return st
}

// SetHistory installs (or, with nil, removes) the fallback source AcquireGen
// consults for generations outside the in-memory retain window.
func (st *MVStore) SetHistory(h HistorySource) {
	if h == nil {
		st.history.Store(nil)
		return
	}
	st.history.Store(&h)
}

// SetRetain sets how many generations beyond the current are kept for
// AcquireGen even when unpinned (minimum 0). Lowering it reclaims eagerly.
func (st *MVStore) SetRetain(n int) {
	if n < 0 {
		n = 0
	}
	st.mu.Lock()
	st.retain = n
	st.mu.Unlock()
	st.tryReclaim()
}

// OnRetire registers fn to run when a superseded generation is reclaimed
// (last pin released and aged out of the retain window). Used to drop
// derived per-generation caches; fn must not call back into the store.
func (st *MVStore) OnRetire(fn func(*Graph)) {
	st.mu.Lock()
	st.onRetire = append(st.onRetire, fn)
	st.mu.Unlock()
}

// Acquire pins the current generation and returns it with its generation
// number and a release function. The returned graph is frozen — every read
// accessor on it is lock-free — and is guaranteed to stay available until
// release is called. release is idempotent.
func (st *MVStore) Acquire() (*Graph, uint64, func()) {
	for {
		e := st.head.Load()
		e.pins.Add(1)
		// A writer may have published a new head (and retired e) between
		// the load and the pin. Re-check: if e is still head, or not yet
		// retired, the pin is effective — a retired generation is only
		// reclaimed once its pin count drains, and our pin is already
		// counted. Only when e was retired before we pinned do we retry,
		// because its reclamation may already be in flight.
		if st.head.Load() == e || !e.retired.Load() {
			return e.g, e.gen, st.releaseFunc(e)
		}
		e.pins.Add(-1)
	}
}

// AcquireGen pins a specific generation (the AS-OF read path). Recent
// generations are served from the in-memory retain window; older ones fall
// back to the HistorySource (when one is installed), which materializes the
// persisted snapshot. It fails when gen is not in memory and the history
// cannot supply it either.
func (st *MVStore) AcquireGen(gen uint64) (*Graph, func(), error) {
	st.mu.Lock()
	e, ok := st.retained[gen]
	if ok {
		e.pins.Add(1)
	}
	st.mu.Unlock()
	if ok {
		return e.g, st.releaseFunc(e), nil
	}
	if hp := st.history.Load(); hp != nil {
		g, release, err := (*hp).AcquireHistorical(gen)
		if err == nil {
			return g, release, nil
		}
		return nil, nil, fmt.Errorf("graph: generation %d is not in the retain window and could not be loaded from history (current is %d): %w", gen, st.CurrentGen(), err)
	}
	return nil, nil, fmt.Errorf("graph: generation %d is not available (reclaimed or never published; current is %d)", gen, st.CurrentGen())
}

// releaseFunc returns an idempotent unpin for e that triggers reclamation
// when the last pin on a retired generation drains.
func (st *MVStore) releaseFunc(e *mvGen) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			if e.pins.Add(-1) == 0 && e.retired.Load() {
				st.tryReclaim()
			}
		})
	}
}

// Current returns the current generation's graph without pinning it. The
// graph is immutable and safe to read indefinitely; "unpinned" only means
// the store may stop tracking it for AcquireGen once superseded.
func (st *MVStore) Current() *Graph { return st.head.Load().g }

// CurrentGen returns the current generation number.
func (st *MVStore) CurrentGen() uint64 { return st.head.Load().gen }

// Reclaimed returns how many superseded generations have been reclaimed.
func (st *MVStore) Reclaimed() uint64 { return st.reclaimed.Load() }

// Live returns how many generations the store currently tracks (current +
// retained + pinned-but-retired).
func (st *MVStore) Live() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.retained)
}

// Update runs fn against a private mutable clone of the current generation
// and, if fn succeeds, publishes the result as the next generation,
// returning its number. If fn returns an error the clone is discarded and
// the store is untouched — writes are all-or-nothing at generation
// granularity. Updates are serialized; readers are never blocked.
func (st *MVStore) Update(fn func(*Graph) error) (uint64, error) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()

	cur := st.head.Load()
	next := cur.g.Clone()
	if err := fn(next); err != nil {
		return 0, err
	}
	next.Freeze()

	e := &mvGen{gen: cur.gen + 1, g: next}
	st.mu.Lock()
	st.retained[e.gen] = e
	st.mu.Unlock()

	st.head.Store(e)
	cur.retired.Store(true)
	st.tryReclaim()
	return e.gen, nil
}

// Swap publishes g — a complete graph built elsewhere, typically loaded
// from a snapshot — as the next generation, replacing the head without the
// clone-mutate cycle. This is the replica reload path: a follower loads and
// verifies a new builder generation off the serving path, then swaps it in
// with one atomic publish. Readers pinned to the old head finish on it;
// the old generation drains through the usual pin-count reclamation. Swap
// takes ownership of g (it is frozen here) and returns the new generation
// number.
func (st *MVStore) Swap(g *Graph) uint64 {
	return st.SwapAt(g, 0)
}

// SwapAt is Swap with an explicit generation number: the new head is
// published as gen when that keeps the chain strictly increasing, and as
// head+1 otherwise (gen 0 always means "next"). Followers use it to keep
// the chain numbering aligned with the builder's on-disk sequence numbers,
// so that AS-OF targets and the persisted-history fallback agree about
// what generation N means.
func (st *MVStore) SwapAt(g *Graph, gen uint64) uint64 {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()

	g.Freeze()
	cur := st.head.Load()
	if gen <= cur.gen {
		gen = cur.gen + 1
	}
	e := &mvGen{gen: gen, g: g}
	st.mu.Lock()
	st.retained[e.gen] = e
	st.mu.Unlock()

	st.head.Store(e)
	cur.retired.Store(true)
	st.tryReclaim()
	return e.gen
}

// ApplyBatch applies a staged write-batch as one new generation (see
// Graph.ApplyBatch for the batch semantics) and returns the apply result
// and the generation it produced.
func (st *MVStore) ApplyBatch(b *Batch) (BatchResult, uint64, error) {
	var res BatchResult
	gen, err := st.Update(func(g *Graph) error {
		var err error
		res, err = g.ApplyBatch(b)
		return err
	})
	return res, gen, err
}

// tryReclaim drops retired generations that have no pinned readers and
// have aged out of the retain window, then runs the OnRetire hooks for
// each outside the store lock.
func (st *MVStore) tryReclaim() {
	cur := st.head.Load().gen
	var freed []*mvGen
	st.mu.Lock()
	for gen, e := range st.retained {
		if !e.retired.Load() || e.pins.Load() > 0 {
			continue
		}
		if cur-gen <= uint64(st.retain) {
			continue // recent: kept for AcquireGen / AS-OF reads
		}
		delete(st.retained, gen)
		freed = append(freed, e)
	}
	hooks := st.onRetire
	st.mu.Unlock()
	for _, e := range freed {
		st.reclaimed.Add(1)
		for _, fn := range hooks {
			fn(e.g)
		}
	}
}

// GenInfo describes one tracked generation (the /v1/generations payload).
type GenInfo struct {
	Gen     uint64 `json:"generation"`
	Nodes   int    `json:"nodes"`
	Rels    int    `json:"rels"`
	Pins    int64  `json:"pinned_readers"`
	Current bool   `json:"current"`
}

// Generations lists the tracked generations, ascending.
func (st *MVStore) Generations() []GenInfo {
	cur := st.head.Load().gen
	st.mu.Lock()
	out := make([]GenInfo, 0, len(st.retained))
	for _, e := range st.retained {
		out = append(out, GenInfo{
			Gen:     e.gen,
			Nodes:   e.g.NumNodes(),
			Rels:    e.g.NumRels(),
			Pins:    e.pins.Load(),
			Current: e.gen == cur,
		})
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Gen < out[j].Gen })
	return out
}
