package graph

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testStore(t *testing.T, keep int) *Store {
	t.Helper()
	st, err := OpenStore(t.TempDir(), StoreOptions{Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustSaveGen(t *testing.T, st *Store, g *Graph) Generation {
	t.Helper()
	gen, err := st.Save(g)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestStoreSaveOpenRoundTrip(t *testing.T) {
	st := testStore(t, 3)
	g := fixtureGraph()
	gen := mustSaveGen(t, st, g)
	if gen.Seq != 1 {
		t.Fatalf("first generation seq = %d", gen.Seq)
	}
	loaded, report, err := st.Open()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Skipped) != 0 || report.Loaded.Seq != 1 {
		t.Fatalf("report = %+v", report)
	}
	graphsEquivalent(t, g, loaded)
}

func TestStoreKeepsNGenerationsAndPrunes(t *testing.T) {
	st := testStore(t, 3)
	for i := 0; i < 5; i++ {
		mustSaveGen(t, st, randomGraph(int64(i+1), 20, 30))
	}
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 {
		t.Fatalf("retained %d generations, want 3", len(gens))
	}
	if gens[0].Seq != 5 || gens[2].Seq != 3 {
		t.Fatalf("retained seqs: %d..%d, want 5..3", gens[0].Seq, gens[2].Seq)
	}
	// Pruned files are really gone.
	for _, seq := range []uint64{1, 2} {
		if _, err := os.Stat(filepath.Join(st.Dir(), genFileName(seq))); !os.IsNotExist(err) {
			t.Errorf("generation %d not pruned (err=%v)", seq, err)
		}
	}
}

// corruptTail flips a byte near the end of a file (inside the v2 trailer
// CRC region, so the damage is always fatal for that generation).
func corruptTail(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreOpenFallsBackOverCorruptNewest(t *testing.T) {
	st := testStore(t, 3)
	good := randomGraph(1, 30, 40)
	mustSaveGen(t, st, good)
	latest := mustSaveGen(t, st, randomGraph(2, 30, 40))

	corruptTail(t, latest.Path)
	g, report, err := st.Open()
	if err != nil {
		t.Fatalf("Open with one bad generation: %v", err)
	}
	if report.Loaded.Seq != 1 {
		t.Fatalf("loaded generation %d, want fallback to 1", report.Loaded.Seq)
	}
	if len(report.Skipped) != 1 || report.Skipped[0].Seq != 2 {
		t.Fatalf("skipped = %+v", report.Skipped)
	}
	if !strings.Contains(report.Skipped[0].Reason, "mismatch") {
		t.Errorf("skip reason does not explain the damage: %q", report.Skipped[0].Reason)
	}
	graphsEquivalent(t, good, g)
}

func TestStoreOpenFallsBackOverTruncatedNewest(t *testing.T) {
	st := testStore(t, 3)
	good := randomGraph(1, 30, 40)
	mustSaveGen(t, st, good)
	latest := mustSaveGen(t, st, randomGraph(2, 30, 40))

	data, err := os.ReadFile(latest.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(latest.Path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	g, report, err := st.Open()
	if err != nil {
		t.Fatal(err)
	}
	if report.Loaded.Seq != 1 || len(report.Skipped) != 1 {
		t.Fatalf("report = %+v", report)
	}
	graphsEquivalent(t, good, g)
}

func TestStoreOpenFallsBackOverMissingNewest(t *testing.T) {
	st := testStore(t, 3)
	mustSaveGen(t, st, randomGraph(1, 30, 40))
	latest := mustSaveGen(t, st, randomGraph(2, 30, 40))
	if err := os.Remove(latest.Path); err != nil {
		t.Fatal(err)
	}
	_, report, err := st.Open()
	if err != nil {
		t.Fatal(err)
	}
	if report.Loaded.Seq != 1 || len(report.Skipped) != 1 {
		t.Fatalf("report = %+v", report)
	}
}

func TestStoreOpenAllGenerationsBad(t *testing.T) {
	st := testStore(t, 3)
	for i := 0; i < 2; i++ {
		gen := mustSaveGen(t, st, randomGraph(int64(i+1), 10, 10))
		corruptTail(t, gen.Path)
	}
	_, report, err := st.Open()
	if !errors.Is(err, ErrNoGenerations) {
		t.Fatalf("err = %v, want ErrNoGenerations", err)
	}
	if len(report.Skipped) != 2 {
		t.Fatalf("skipped = %+v", report.Skipped)
	}
}

func TestStoreOpenEmpty(t *testing.T) {
	st := testStore(t, 3)
	if _, _, err := st.Open(); !errors.Is(err, ErrNoGenerations) {
		t.Fatalf("err = %v, want ErrNoGenerations", err)
	}
}

func TestStoreRecoversUnmanifestedGeneration(t *testing.T) {
	// Crash window: the snapshot rename completed but the manifest update
	// never happened. The dir scan must surface the orphan generation, and
	// Open must serve it (its own internal checksums vouch for it).
	st := testStore(t, 3)
	mustSaveGen(t, st, randomGraph(1, 20, 20))
	orphan := fixtureGraph()
	if err := orphan.SaveFile(filepath.Join(st.Dir(), genFileName(7))); err != nil {
		t.Fatal(err)
	}
	g, report, err := st.Open()
	if err != nil {
		t.Fatal(err)
	}
	if report.Loaded.Seq != 7 {
		t.Fatalf("loaded generation %d, want the newer unmanifested 7", report.Loaded.Seq)
	}
	graphsEquivalent(t, orphan, g)

	// The next Save sequences after the orphan and re-manifests everything.
	gen := mustSaveGen(t, st, randomGraph(2, 20, 20))
	if gen.Seq != 8 {
		t.Fatalf("next save seq = %d, want 8", gen.Seq)
	}
}

func TestStoreToleratesTornManifestTail(t *testing.T) {
	st := testStore(t, 3)
	good := randomGraph(1, 30, 40)
	mustSaveGen(t, st, good)
	f, err := os.OpenFile(filepath.Join(st.Dir(), storeManifest), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("gen 99 gen-000099.snap"); err != nil { // torn mid-append
		t.Fatal(err)
	}
	f.Close()
	g, report, err := st.Open()
	if err != nil {
		t.Fatal(err)
	}
	if report.Loaded.Seq != 1 {
		t.Fatalf("loaded %d", report.Loaded.Seq)
	}
	graphsEquivalent(t, good, g)
}

func TestStoreGarbageCollectsTempFiles(t *testing.T) {
	st := testStore(t, 3)
	stale := filepath.Join(st.Dir(), "gen-000001.snapshot.tmp-12345")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustSaveGen(t, st, randomGraph(1, 10, 10))
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived Save (err=%v)", err)
	}
}

func TestStoreSaveDoesNotDisturbOldGenerationsOnNewWrite(t *testing.T) {
	st := testStore(t, 2)
	g1 := randomGraph(1, 20, 20)
	gen1 := mustSaveGen(t, st, g1)
	before, err := os.ReadFile(gen1.Path)
	if err != nil {
		t.Fatal(err)
	}
	mustSaveGen(t, st, randomGraph(2, 20, 20))
	after, err := os.ReadFile(gen1.Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("previous generation bytes changed")
	}
}

// markerGen builds a tiny graph identified by seq: one Marker node plus a
// few filler nodes, so a concurrent reader can check which generation it
// got and that the generation is internally consistent.
func markerGen(seq uint64) *Graph {
	g := New()
	items := int(seq%4) + 2
	g.AddNode([]string{"Marker"}, Props{"gen": Int(int64(seq)), "items": Int(int64(items))})
	for i := 0; i < items; i++ {
		g.AddNode([]string{"Item"}, Props{"gen": Int(int64(seq))})
	}
	return g
}

// checkMarkerGraph asserts the loaded graph is one whole markerGen — the
// marker's recorded item count matches the Item nodes present, i.e. the
// reader never sees a half-published generation.
func checkMarkerGraph(t *testing.T, g *Graph, seq uint64) {
	t.Helper()
	markers := g.NodesByLabel("Marker")
	if len(markers) != 1 {
		t.Fatalf("generation %d: %d Marker nodes, want 1", seq, len(markers))
	}
	gen, _ := g.NodeProp(markers[0], "gen").AsInt()
	items, _ := g.NodeProp(markers[0], "items").AsInt()
	if uint64(gen) != seq {
		t.Fatalf("loaded generation says gen=%d, store says seq=%d", gen, seq)
	}
	if got := len(g.NodesByLabel("Item")); got != int(items) {
		t.Fatalf("generation %d: marker records %d items, graph has %d", seq, items, got)
	}
}

// TestGenerationsSafeDuringConcurrentPublish is the follower's view of a
// live builder: one goroutine publishes (and prunes) generations in the
// same directory another lists and opens. Listing must never error, heads
// must be monotone, every load must be a whole generation, and the only
// acceptable skip reason is a file pruned between listing and loading.
func TestGenerationsSafeDuringConcurrentPublish(t *testing.T) {
	dir := t.TempDir()
	builder, err := OpenStore(dir, StoreOptions{Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	follower, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const pubs = 30
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= pubs; i++ {
			if _, err := builder.Save(markerGen(uint64(i))); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
		}
	}()

	checkOnce := func(lastHead uint64) uint64 {
		gens, err := follower.Generations()
		if err != nil {
			t.Fatalf("Generations during publish: %v", err)
		}
		for i := 1; i < len(gens); i++ {
			if gens[i-1].Seq <= gens[i].Seq {
				t.Fatalf("listing not strictly newest-first: %d then %d", gens[i-1].Seq, gens[i].Seq)
			}
		}
		g, report, err := follower.Open()
		if err != nil {
			if errors.Is(err, ErrNoGenerations) && lastHead == 0 {
				return 0 // builder hasn't landed the first generation yet
			}
			t.Fatalf("Open during publish: %v", err)
		}
		for _, s := range report.Skipped {
			if !strings.Contains(s.Reason, "missing") && !strings.Contains(s.Reason, "no such file") {
				t.Fatalf("generation %d skipped for %q; concurrent publish must only ever race as a vanished file", s.Seq, s.Reason)
			}
		}
		if report.Loaded.Seq < lastHead {
			t.Fatalf("head went backwards: %d after %d", report.Loaded.Seq, lastHead)
		}
		checkMarkerGraph(t, g, report.Loaded.Seq)
		return report.Loaded.Seq
	}

	var head uint64
	for {
		select {
		case <-done:
			if final := checkOnce(head); final != pubs {
				t.Fatalf("after publishing finished, Open loaded %d, want %d", final, pubs)
			}
			return
		default:
			head = checkOnce(head)
		}
	}
}

func TestStoreMTimeMovesOnSave(t *testing.T) {
	st := testStore(t, 3)
	if _, ok := st.MTime(); ok {
		t.Fatal("empty store reported a manifest mtime")
	}
	mustSaveGen(t, st, fixtureGraph())
	mt1, ok := st.MTime()
	if !ok {
		t.Fatal("no manifest mtime after save")
	}
	mustSaveGen(t, st, fixtureGraph())
	mt2, ok := st.MTime()
	if !ok {
		t.Fatal("no manifest mtime after second save")
	}
	if !mt2.After(mt1) && !mt2.Equal(mt1) {
		t.Fatalf("mtime went backwards: %v -> %v", mt1, mt2)
	}
	if mt2.Equal(mt1) {
		t.Log("filesystem mtime granularity too coarse to distinguish saves (not a failure)")
	}
}
