// Package graph implements the labeled property graph that backs IYP — the
// reproduction's stand-in for Neo4j. It stores labeled nodes, typed directed
// relationships, and arbitrary properties on both; maintains per-(label,
// property) hash indexes and unique identity constraints; and persists to
// compressed binary snapshots.
package graph

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the property value types the graph can store. The set
// mirrors what the IYP importers need: Cypher literals plus homogeneous or
// mixed lists.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindList
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a tagged union of the property types. The zero Value is Null.
// Values are immutable by convention: accessors return copies of list
// contents where mutation could leak.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	list []Value
}

// Constructors.

// Null returns the null value.
func Null() Value { return Value{} }

// Bool wraps a boolean.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int wraps an integer.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String wraps a string.
func String(s string) Value { return Value{kind: KindString, s: s} }

// List wraps a list of values. The slice is used directly; callers must not
// mutate it afterwards.
func List(vs ...Value) Value { return Value{kind: KindList, list: vs} }

// Strings builds a list value from strings.
func Strings(ss ...string) Value {
	vs := make([]Value, len(ss))
	for i, s := range ss {
		vs[i] = String(s)
	}
	return List(vs...)
}

// Of converts a native Go value (bool, integer kinds, floats, string,
// []any, []string, []int, nil, or Value itself) into a Value. It panics on
// unsupported types; use it only with trusted inputs.
func Of(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null()
	case Value:
		return x
	case bool:
		return Bool(x)
	case int:
		return Int(int64(x))
	case int32:
		return Int(int64(x))
	case int64:
		return Int(x)
	case uint32:
		return Int(int64(x))
	case uint64:
		return Int(int64(x))
	case float32:
		return Float(float64(x))
	case float64:
		return Float(x)
	case string:
		return String(x)
	case []string:
		return Strings(x...)
	case []int:
		vs := make([]Value, len(x))
		for i, n := range x {
			vs[i] = Int(int64(n))
		}
		return List(vs...)
	case []any:
		vs := make([]Value, len(x))
		for i, e := range x {
			vs[i] = Of(e)
		}
		return List(vs...)
	case []Value:
		return List(x...)
	default:
		panic(fmt.Sprintf("graph: unsupported property type %T", v))
	}
}

// Accessors.

// Kind returns the value's kind tag.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; ok is false for other kinds.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer payload; ok is false for other kinds.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns a float payload, converting ints; ok is false otherwise.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	}
	return 0, false
}

// AsString returns the string payload; ok is false for other kinds.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsList returns the list payload; ok is false for other kinds. The
// returned slice must not be mutated.
func (v Value) AsList() ([]Value, bool) { return v.list, v.kind == KindList }

// Native converts a Value back into a plain Go value for JSON encoding and
// user-facing APIs.
func (v Value) Native() any {
	switch v.kind {
	case KindNull:
		return nil
	case KindBool:
		return v.b
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindString:
		return v.s
	case KindList:
		out := make([]any, len(v.list))
		for i, e := range v.list {
			out[i] = e.Native()
		}
		return out
	}
	return nil
}

// String renders the value roughly as a Cypher literal.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.list {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(']')
		return sb.String()
	}
	return "?"
}

// Equal reports deep semantic equality. Ints and floats compare
// numerically (Int(2) equals Float(2.0)), matching Cypher semantics.
func (v Value) Equal(o Value) bool {
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		// Exact int comparison when both are ints avoids float rounding.
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return a == b
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindString:
		return v.s == o.s
	case KindList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders two values: -1, 0, +1. Cross-kind comparisons order by
// kind tag (null < bool < numeric < string < list), numerics compare
// numerically. The second return is false when the values are not
// meaningfully comparable in Cypher (we still produce a stable order for
// sorting).
func (v Value) Compare(o Value) (int, bool) {
	if v.isNumeric() && o.isNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind != o.kind {
		ka, kb := kindOrder(v.kind), kindOrder(o.kind)
		switch {
		case ka < kb:
			return -1, false
		case ka > kb:
			return 1, false
		default:
			return 0, false
		}
	}
	switch v.kind {
	case KindNull:
		return 0, false
	case KindBool:
		switch {
		case !v.b && o.b:
			return -1, true
		case v.b && !o.b:
			return 1, true
		default:
			return 0, true
		}
	case KindString:
		return strings.Compare(v.s, o.s), true
	case KindList:
		n := min(len(v.list), len(o.list))
		for i := 0; i < n; i++ {
			if c, _ := v.list[i].Compare(o.list[i]); c != 0 {
				return c, true
			}
		}
		switch {
		case len(v.list) < len(o.list):
			return -1, true
		case len(v.list) > len(o.list):
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

func kindOrder(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	case KindList:
		return 4
	}
	return 5
}

// indexKey is a comparable encoding of a Value for use as a map key in
// property indexes and DISTINCT/grouping sets. Lists are flattened into a
// string encoding; floats that are integral normalize to the int encoding
// so Int(2) and Float(2.0) collide, consistent with Equal.
type indexKey struct {
	kind Kind
	b    bool
	i    int64
	s    string
}

func (v Value) key() indexKey {
	switch v.kind {
	case KindNull:
		return indexKey{kind: KindNull}
	case KindBool:
		return indexKey{kind: KindBool, b: v.b}
	case KindInt:
		return indexKey{kind: KindInt, i: v.i}
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			return indexKey{kind: KindInt, i: int64(v.f)}
		}
		return indexKey{kind: KindFloat, i: int64(math.Float64bits(v.f))}
	case KindString:
		return indexKey{kind: KindString, s: v.s}
	case KindList:
		var sb strings.Builder
		for i, e := range v.list {
			if i > 0 {
				sb.WriteByte(0)
			}
			k := e.key()
			fmt.Fprintf(&sb, "%d:%v:%d:%s", k.kind, k.b, k.i, k.s)
		}
		return indexKey{kind: KindList, s: sb.String()}
	}
	return indexKey{}
}

// Props is a property map attached to a node or relationship.
type Props map[string]Value

// Clone returns a shallow copy of the map (values are immutable).
func (p Props) Clone() Props {
	if p == nil {
		return nil
	}
	out := make(Props, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Keys returns the sorted property names.
func (p Props) Keys() []string {
	ks := make([]string, 0, len(p))
	for k := range p {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
