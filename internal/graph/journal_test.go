package graph

import (
	"bytes"
	"errors"
	"testing"
)

// journalFixtureBatch stages a batch exercising every op kind and value
// shape the journal must round-trip.
func journalFixtureBatch(t *testing.T) *Batch {
	t.Helper()
	b := NewBatch()
	as := b.MergeNode("AS", "asn", Int(64500), []string{"BGPCollector"}, Props{"name": String("TEST-AS")})
	pfx := b.MergeNode("Prefix", "prefix", String("192.0.2.0/24"), nil, nil)
	tag := b.MergeNode("Tag", "label", String("anycast"), nil, Props{
		"score": Float(0.5),
		"seen":  Bool(true),
		"alts":  Strings("a", "b"),
		"none":  Null(),
	})
	if err := b.MergeProps(as, Props{"rank": Int(12)}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetNodeProp(pfx, "visibility", Float(99.5)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLabel(pfx, "RPKI"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRel("ORIGINATE", as, pfx, Props{"count": Int(3)}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRel("CATEGORIZED", pfx, tag, nil); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBatchJournalRoundTrip(t *testing.T) {
	b := journalFixtureBatch(t)
	var buf bytes.Buffer
	if err := WriteBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBatch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Applying original and decoded batches to fresh graphs must produce
	// identical results — that is the whole resume guarantee.
	g1, g2 := New(), New()
	r1, err := g1.ApplyBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g2.ApplyBatch(rb)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NodesCreated != r2.NodesCreated || r1.RelsCreated != r2.RelsCreated {
		t.Fatalf("apply results differ: %+v vs %+v", r1, r2)
	}
	graphsEquivalent(t, g1, g2)

	// Byte-stable: re-encoding the decoded batch reproduces the journal.
	var buf2 bytes.Buffer
	if err := WriteBatch(&buf2, rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("journal is not byte-stable across a decode/encode cycle")
	}
}

func TestBatchJournalEmptyBatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatch(&buf, NewBatch()); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBatch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n, r := rb.Staged(); n != 0 || r != 0 {
		t.Fatalf("empty journal decoded to %d nodes, %d rels", n, r)
	}
}

func TestBatchJournalTruncationSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatch(&buf, journalFixtureBatch(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 0; i < len(data); i++ {
		if _, err := ReadBatch(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("journal truncated at %d/%d bytes accepted", i, len(data))
		}
	}
}

func TestBatchJournalBitFlipSweep(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatch(&buf, journalFixtureBatch(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 0; i < len(data); i++ {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 1 << (i % 8)
		if _, err := ReadBatch(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("journal bit flip at byte %d accepted", i)
		}
	}
}

func TestBatchJournalRejectsBadHandles(t *testing.T) {
	// Hand-craft a journal whose op references a merge handle that does not
	// exist: decode must reject it rather than let ApplyBatch fail later.
	b := NewBatch()
	n := b.MergeNode("AS", "asn", Int(1), nil, nil)
	if err := b.SetNodeProp(n, "x", Int(1)); err != nil {
		t.Fatal(err)
	}
	b.ops[0].node = 99 // corrupt the staged handle pre-encode
	var buf bytes.Buffer
	if err := WriteBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBatch(bytes.NewReader(buf.Bytes()))
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad handle not rejected as corrupt: %v", err)
	}
}
