package graph

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot format: the paper distributes IYP as weekly Neo4j dumps (§3.1);
// Save/Load provide the equivalent distribution channel for this
// reproduction. Dumps are reloaded months after they were written, so the
// format is self-verifying: v2 carries a CRC32C per section plus a trailer
// with a whole-file checksum and entity counts, letting Load distinguish a
// good snapshot from a torn or bit-flipped one before trusting any of it.
//
// Format v2 (current, columnar):
//
//	magic "IYPG" | version u8 = 2
//	6 sections, in order (labels, types, dict, nodes, rels, indexes), each:
//	    id u8 | crc32c(compressed) u32le | compressed len u64le |
//	    uncompressed len u64le | gzip(section body)
//	trailer:
//	    0xFF u8 | node count u64le | rel count u64le | label count u64le |
//	    type count u64le | index count u64le |
//	    crc32c(file[0:here]) u32le | end magic "GPYI"
//
// Section bodies:
//
//	label table:  uvarint count, strings
//	type table:   uvarint count, strings
//	dictionary:   uvarint count, strings — every property key and string
//	              value the snapshot references, dense file-local ids in
//	              first-use order
//	node slots:   uvarint count, per slot: present u8,
//	              [label count + label ids, prop count + prop entries]
//	rel slots:    uvarint count, per slot: present u8,
//	              [type, from, to, prop count + prop entries]
//	index list:   uvarint count, per entry: label string, key string
//
// A prop entry is: uvarint dict-id of the key, kind u8, then the payload —
// nothing for null, one byte for bool, uvarint bits for int/float, a
// uvarint dict-id for string, and an inline element-count + element values
// for list. Loads therefore materialize the columnar layout directly, and
// a loader seeded with an existing Interner (replica reloads, delta
// builds) reuses unchanged strings instead of re-allocating them.
//
// v2 files written before the dictionary section (nodes follow types
// directly, properties are inline key/value pairs) still load: the decoder
// dispatches on the section id that follows the type table.
//
// Format v1 (legacy, still loadable): one gzip stream wrapping
// magic | version u8 = 1 | label/type/node/rel/index bodies with inline
// properties, no checksums. v1 files start with the gzip magic, v2 files
// with "IYPG" — Load dispatches on the first two bytes.
const (
	snapshotMagic    = "IYPG"
	snapshotEndMagic = "GPYI"
	snapshotV1       = 1
	snapshotV2       = 2
)

// Section identifiers, in file order (secDict is absent from pre-columnar
// v2 files).
const (
	secLabels  byte = 1
	secTypes   byte = 2
	secNodes   byte = 3
	secRels    byte = 4
	secIndexes byte = 5
	secDict    byte = 6
	secTrailer byte = 0xFF
)

// trailerSize is the fixed byte size of the v2 trailer:
// marker + five u64 counts + total CRC + end magic.
const trailerSize = 1 + 5*8 + 4 + 4

// Decoder sanity caps. Length prefixes are validated against the remaining
// input (v2) or these absolute bounds (v1) before any allocation, so a
// corrupt file can never trigger a multi-GiB allocation.
const (
	maxStringLen   = 1 << 28 // one interned string or blob
	maxTableLen    = 1 << 16 // label/type tables (ids are u16)
	initialSlotCap = 1 << 16 // node/rel slice pre-allocation cap
	initialListCap = 1 << 12 // list value pre-allocation cap
	initialPropCap = 1 << 10 // props map pre-allocation cap
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a snapshot (or batch journal) that failed structural or
// checksum validation: truncated, bit-flipped, or otherwise damaged input.
// Callers test with errors.Is; the Store uses it to fall back to an older
// generation.
var ErrCorrupt = errors.New("graph: snapshot corrupt")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// asCorrupt folds I/O-level failures (unexpected EOF, bad gzip data) into
// the typed ErrCorrupt without double-wrapping.
func asCorrupt(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}

// --- encoding ---

// encBuf encodes section bodies into memory. Writes cannot fail.
type encBuf struct {
	b       bytes.Buffer
	scratch []byte
}

func (e *encBuf) uvarint(v uint64) {
	e.scratch = binary.AppendUvarint(e.scratch[:0], v)
	e.b.Write(e.scratch)
}

func (e *encBuf) byte(b byte) { e.b.WriteByte(b) }

func (e *encBuf) string(s string) {
	e.uvarint(uint64(len(s)))
	e.b.WriteString(s)
}

func (e *encBuf) value(v Value) {
	e.byte(byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		if v.b {
			e.byte(1)
		} else {
			e.byte(0)
		}
	case KindInt:
		e.uvarint(uint64(v.i)) // two's complement round-trips through uint64
	case KindFloat:
		e.uvarint(math.Float64bits(v.f))
	case KindString:
		e.string(v.s)
	case KindList:
		e.uvarint(uint64(len(v.list)))
		for _, el := range v.list {
			e.value(el)
		}
	}
}

func (e *encBuf) props(p Props) {
	e.uvarint(uint64(len(p)))
	// Deterministic order keeps snapshots byte-stable for identical graphs.
	for _, k := range p.Keys() {
		e.string(k)
		e.value(p[k])
	}
}

// dictRemap assigns dense file-local ids to the Interner strings a
// snapshot actually references. The lineage-shared Interner may hold
// strings from sibling generations or discarded clones; remapping keeps
// the on-disk dictionary exactly as large as this graph's working set and
// makes the bytes a function of graph content alone.
type dictRemap struct {
	ids  map[uint32]uint32
	strs []string
}

func newDictRemap() *dictRemap {
	return &dictRemap{ids: make(map[uint32]uint32)}
}

func (dr *dictRemap) file(globalID uint32, in *Interner) uint32 {
	if id, ok := dr.ids[globalID]; ok {
		return id
	}
	id := uint32(len(dr.strs))
	dr.strs = append(dr.strs, in.str(globalID))
	dr.ids[globalID] = id
	return id
}

// centry encodes one columnar prop entry: remapped key id, kind, payload.
func (e *encBuf) centry(g *Graph, dr *dictRemap, ce centry) {
	e.uvarint(uint64(dr.file(ce.key, g.dict)))
	e.byte(byte(ce.kind))
	switch ce.kind {
	case KindNull:
	case KindBool:
		e.byte(ce.flag)
	case KindInt, KindFloat:
		e.uvarint(ce.num)
	case KindString:
		e.uvarint(uint64(dr.file(uint32(ce.num), g.dict)))
	case KindList:
		list := g.dict.list(uint32(ce.num))
		e.uvarint(uint64(len(list)))
		for _, el := range list {
			e.value(el)
		}
	}
}

// crcWriter tracks the running CRC32C of everything written through it.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	return cw.w.Write(p)
}

func (cw *crcWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := cw.Write(b[:])
	return err
}

func (cw *crcWriter) u64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := cw.Write(b[:])
	return err
}

// Save writes a format-v2 columnar snapshot of the graph to w.
func (g *Graph) Save(w io.Writer) error {
	g.rlock()
	defer g.runlock()

	// Pass 1: encode the node and relationship bodies into memory,
	// collecting every referenced dictionary string in first-use order.
	// The dictionary section precedes them in the file (the decoder needs
	// it first), so the bodies are buffered until it is written.
	dr := newDictRemap()
	// Columns are sorted by global dictionary id, which reflects interning
	// history (op order, or a previous snapshot's file order after a
	// reload). Serializing in key-NAME order instead makes the bytes a pure
	// function of graph content, so a resumed build and an uninterrupted
	// one emit identical snapshots.
	var scratch []centry
	emitProps := func(e *encBuf, cp []centry) {
		scratch = append(scratch[:0], cp...)
		sort.Slice(scratch, func(i, j int) bool {
			return g.dict.str(scratch[i].key) < g.dict.str(scratch[j].key)
		})
		e.uvarint(uint64(len(scratch)))
		for _, ce := range scratch {
			e.centry(g, dr, ce)
		}
	}
	var nodesBody, relsBody encBuf
	nodesBody.uvarint(uint64(len(g.nodes)))
	for _, n := range g.nodes {
		if n == nil {
			nodesBody.byte(0)
			continue
		}
		nodesBody.byte(1)
		ls := g.lsets[n.lset]
		nodesBody.uvarint(uint64(len(ls)))
		for _, l := range ls {
			nodesBody.uvarint(uint64(l))
		}
		emitProps(&nodesBody, n.cprops)
	}
	relsBody.uvarint(uint64(len(g.rels)))
	for _, r := range g.rels {
		if r == nil {
			relsBody.byte(0)
			continue
		}
		relsBody.byte(1)
		relsBody.uvarint(uint64(r.typ))
		relsBody.uvarint(uint64(r.from))
		relsBody.uvarint(uint64(r.to))
		emitProps(&relsBody, r.cprops)
	}

	out := &crcWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := out.Write([]byte(snapshotMagic)); err != nil {
		return err
	}
	if _, err := out.Write([]byte{snapshotV2}); err != nil {
		return err
	}

	var comp bytes.Buffer
	writeSection := func(id byte, body []byte) error {
		comp.Reset()
		zw := gzip.NewWriter(&comp)
		if _, err := zw.Write(body); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		if _, err := out.Write([]byte{id}); err != nil {
			return err
		}
		if err := out.u32(crc32.Checksum(comp.Bytes(), castagnoli)); err != nil {
			return err
		}
		if err := out.u64(uint64(comp.Len())); err != nil {
			return err
		}
		if err := out.u64(uint64(len(body))); err != nil {
			return err
		}
		_, err := out.Write(comp.Bytes())
		return err
	}
	writeFilled := func(id byte, fill func(e *encBuf)) error {
		var enc encBuf
		fill(&enc)
		return writeSection(id, enc.b.Bytes())
	}

	if err := writeFilled(secLabels, func(e *encBuf) {
		e.uvarint(uint64(len(g.labelNames)))
		for _, s := range g.labelNames {
			e.string(s)
		}
	}); err != nil {
		return err
	}
	if err := writeFilled(secTypes, func(e *encBuf) {
		e.uvarint(uint64(len(g.typeNames)))
		for _, s := range g.typeNames {
			e.string(s)
		}
	}); err != nil {
		return err
	}
	if err := writeFilled(secDict, func(e *encBuf) {
		e.uvarint(uint64(len(dr.strs)))
		for _, s := range dr.strs {
			e.string(s)
		}
	}); err != nil {
		return err
	}
	if err := writeSection(secNodes, nodesBody.b.Bytes()); err != nil {
		return err
	}
	if err := writeSection(secRels, relsBody.b.Bytes()); err != nil {
		return err
	}
	if err := writeFilled(secIndexes, func(e *encBuf) {
		// propIdx is a map; sort the entries so identical graphs produce
		// byte-identical snapshots.
		entries := make([]propIdxID, 0, len(g.propIdx))
		for pid := range g.propIdx {
			entries = append(entries, pid)
		}
		sort.Slice(entries, func(i, j int) bool {
			li, lj := g.labelNames[entries[i].label], g.labelNames[entries[j].label]
			if li != lj {
				return li < lj
			}
			return g.dict.str(entries[i].key) < g.dict.str(entries[j].key)
		})
		e.uvarint(uint64(len(entries)))
		for _, pid := range entries {
			e.string(g.labelNames[pid.label])
			e.string(g.dict.str(pid.key))
		}
	}); err != nil {
		return err
	}

	// Trailer: counts, then the total CRC over everything before it.
	if _, err := out.Write([]byte{secTrailer}); err != nil {
		return err
	}
	for _, c := range [...]uint64{
		uint64(g.nodeCount),
		uint64(g.relCount),
		uint64(len(g.labelNames)),
		uint64(len(g.typeNames)),
		uint64(len(g.propIdx)),
	} {
		if err := out.u64(c); err != nil {
			return err
		}
	}
	if err := out.u32(out.crc); err != nil {
		return err
	}
	if _, err := out.Write([]byte(snapshotEndMagic)); err != nil {
		return err
	}
	return out.w.Flush()
}

// --- decoding ---

// snapReader abstracts the two decode sources: the v1 gzip stream and v2
// in-memory section bodies. Implementations bound allocations: readFull
// grows incrementally and limit reports how many more items could possibly
// be encoded in the remaining input.
type snapReader interface {
	io.ByteReader
	readFull(n uint64) ([]byte, error)
	limit() uint64
}

// sliceReader decodes a fully-materialized section body with strict bounds.
type sliceReader struct {
	data []byte
	off  int
}

func (s *sliceReader) remaining() int { return len(s.data) - s.off }

func (s *sliceReader) limit() uint64 { return uint64(s.remaining()) }

func (s *sliceReader) ReadByte() (byte, error) {
	if s.off >= len(s.data) {
		return 0, corruptf("truncated section")
	}
	b := s.data[s.off]
	s.off++
	return b, nil
}

func (s *sliceReader) readFull(n uint64) ([]byte, error) {
	if n > uint64(s.remaining()) {
		return nil, corruptf("length prefix %d exceeds remaining %d bytes", n, s.remaining())
	}
	b := s.data[s.off : s.off+int(n)]
	s.off += int(n)
	return b, nil
}

// streamReader decodes the legacy v1 gzip stream. The remaining input size
// is unknown, so limit is unbounded and readFull grows its buffer as data
// actually arrives — a lying length prefix costs at most the real payload.
type streamReader struct {
	r *bufio.Reader
}

func (s *streamReader) limit() uint64 { return math.MaxUint64 }

func (s *streamReader) ReadByte() (byte, error) { return s.r.ReadByte() }

func (s *streamReader) readFull(n uint64) ([]byte, error) {
	if n > maxStringLen {
		return nil, corruptf("length prefix %d too large", n)
	}
	// ReadAll grows incrementally: a corrupt length prefix larger than the
	// actual stream allocates only what the stream really contains.
	b, err := io.ReadAll(io.LimitReader(s.r, int64(n)))
	if err != nil {
		return nil, asCorrupt(err)
	}
	if uint64(len(b)) != n {
		return nil, corruptf("need %d bytes, stream ended after %d", n, len(b))
	}
	return b, nil
}

func readUvarint(d snapReader) (uint64, error) {
	v, err := binary.ReadUvarint(d)
	if err != nil {
		return 0, asCorrupt(err)
	}
	return v, nil
}

func readString(d snapReader) (string, error) {
	n, err := readUvarint(d)
	if err != nil {
		return "", err
	}
	if n > maxStringLen || n > d.limit() {
		return "", corruptf("string length %d too large", n)
	}
	b, err := d.readFull(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func readValue(d snapReader) (Value, error) {
	kb, err := d.ReadByte()
	if err != nil {
		return Null(), asCorrupt(err)
	}
	switch Kind(kb) {
	case KindNull:
		return Null(), nil
	case KindBool:
		b, err := d.ReadByte()
		if err != nil {
			return Null(), asCorrupt(err)
		}
		return Bool(b != 0), nil
	case KindInt:
		u, err := readUvarint(d)
		if err != nil {
			return Null(), err
		}
		return Int(int64(u)), nil
	case KindFloat:
		u, err := readUvarint(d)
		if err != nil {
			return Null(), err
		}
		return Float(math.Float64frombits(u)), nil
	case KindString:
		s, err := readString(d)
		if err != nil {
			return Null(), err
		}
		return String(s), nil
	case KindList:
		n, err := readUvarint(d)
		if err != nil {
			return Null(), err
		}
		// Each element is at least one byte.
		if n > d.limit() {
			return Null(), corruptf("list length %d too large", n)
		}
		vs := make([]Value, 0, min(n, initialListCap))
		for i := uint64(0); i < n; i++ {
			v, err := readValue(d)
			if err != nil {
				return Null(), err
			}
			vs = append(vs, v)
		}
		return List(vs...), nil
	}
	return Null(), corruptf("unknown value kind %d", kb)
}

func readProps(d snapReader) (Props, error) {
	n, err := readUvarint(d)
	if err != nil {
		return nil, err
	}
	// Each entry takes at least two bytes (key length + value kind).
	if n > d.limit() {
		return nil, corruptf("property count %d too large", n)
	}
	p := make(Props, min(n, initialPropCap))
	for i := uint64(0); i < n; i++ {
		k, err := readString(d)
		if err != nil {
			return nil, err
		}
		v, err := readValue(d)
		if err != nil {
			return nil, err
		}
		p[k] = v
	}
	return p, nil
}

// fileDict is the decoded dictionary section: file-local id → Interner id.
type fileDict struct {
	ids []uint32
}

// readCProps decodes a columnar prop-entry list into a sorted column.
func readCProps(g *Graph, d snapReader, fd *fileDict) ([]centry, error) {
	n, err := readUvarint(d)
	if err != nil {
		return nil, err
	}
	// Each entry takes at least two bytes (key id + kind).
	if n > d.limit() {
		return nil, corruptf("property count %d too large", n)
	}
	cp := make([]centry, 0, min(n, initialPropCap))
	for i := uint64(0); i < n; i++ {
		keyRef, err := readUvarint(d)
		if err != nil {
			return nil, err
		}
		if keyRef >= uint64(len(fd.ids)) {
			return nil, corruptf("property key id %d out of dictionary range %d", keyRef, len(fd.ids))
		}
		e := centry{key: fd.ids[keyRef]}
		kb, err := d.ReadByte()
		if err != nil {
			return nil, asCorrupt(err)
		}
		e.kind = Kind(kb)
		switch e.kind {
		case KindNull:
		case KindBool:
			b, err := d.ReadByte()
			if err != nil {
				return nil, asCorrupt(err)
			}
			if b != 0 {
				e.flag = 1
			}
		case KindInt, KindFloat:
			if e.num, err = readUvarint(d); err != nil {
				return nil, err
			}
		case KindString:
			ref, err := readUvarint(d)
			if err != nil {
				return nil, err
			}
			if ref >= uint64(len(fd.ids)) {
				return nil, corruptf("string id %d out of dictionary range %d", ref, len(fd.ids))
			}
			e.num = uint64(fd.ids[ref])
		case KindList:
			cnt, err := readUvarint(d)
			if err != nil {
				return nil, err
			}
			if cnt > d.limit() {
				return nil, corruptf("list length %d too large", cnt)
			}
			vs := make([]Value, 0, min(cnt, initialListCap))
			for j := uint64(0); j < cnt; j++ {
				v, err := readValue(d)
				if err != nil {
					return nil, err
				}
				vs = append(vs, v)
			}
			e.num = uint64(g.dict.internListKey(listDedupKey(vs), vs))
		default:
			return nil, corruptf("unknown value kind %d", kb)
		}
		cp = append(cp, e)
	}
	// Entries are sorted by the graph's global key ids; with a seeded
	// dictionary those need not follow file order.
	sort.Slice(cp, func(i, j int) bool { return cp[i].key < cp[j].key })
	return cp, nil
}

// decodeStringTable reads a label or type table (bounded by maxTableLen,
// since ids are u16).
func decodeStringTable(d snapReader, what string) ([]string, error) {
	n, err := readUvarint(d)
	if err != nil {
		return nil, err
	}
	if n > maxTableLen || n > d.limit() {
		return nil, corruptf("%s table size %d too large", what, n)
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := readString(d)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// decodeDict reads the dictionary section, interning every string into the
// graph's (possibly seeded) Interner and recording reuse statistics.
func decodeDict(g *Graph, d snapReader, rep *LoadReport) (*fileDict, error) {
	n, err := readUvarint(d)
	if err != nil {
		return nil, err
	}
	// Each string takes at least one byte (its length prefix).
	if n > d.limit() {
		return nil, corruptf("dictionary size %d exceeds input", n)
	}
	fd := &fileDict{ids: make([]uint32, 0, min(n, uint64(initialSlotCap)))}
	for i := uint64(0); i < n; i++ {
		s, err := readString(d)
		if err != nil {
			return nil, err
		}
		id, existed := g.dict.internHit(s)
		fd.ids = append(fd.ids, id)
		rep.DictStrings++
		if existed {
			rep.DictReused++
		}
	}
	return fd, nil
}

// readNodeLabels decodes and validates one node's label-id list, returning
// the graph's label-set id for it.
func readNodeLabels(g *Graph, d snapReader, slot uint64) (lsetID, error) {
	nLabels := uint64(len(g.labelNames))
	nl, err := readUvarint(d)
	if err != nil {
		return 0, err
	}
	if nl > nLabels {
		return 0, corruptf("node %d: label count %d exceeds table size %d", slot+1, nl, nLabels)
	}
	var ls []labelID
	for j := uint64(0); j < nl; j++ {
		l, err := readUvarint(d)
		if err != nil {
			return 0, err
		}
		if l >= nLabels {
			return 0, corruptf("label id %d out of range", l)
		}
		ls = insertLabel(ls, labelID(l))
	}
	return g.internLset(ls), nil
}

// decodeNodes reads a legacy (inline-property) node section into g,
// converting each boxed property map to the columnar layout.
func decodeNodes(g *Graph, d snapReader) error {
	nNodes, err := readUvarint(d)
	if err != nil {
		return err
	}
	// Each slot takes at least one byte.
	if nNodes > d.limit() {
		return corruptf("node count %d exceeds input", nNodes)
	}
	g.nodes = make([]*Node, 0, min(nNodes, initialSlotCap))
	for i := uint64(0); i < nNodes; i++ {
		present, err := d.ReadByte()
		if err != nil {
			return asCorrupt(err)
		}
		if present == 0 {
			g.nodes = append(g.nodes, nil)
			continue
		}
		n := &Node{id: NodeID(i + 1), owner: g.owner}
		if n.lset, err = readNodeLabels(g, d, i); err != nil {
			return err
		}
		props, err := readProps(d)
		if err != nil {
			return err
		}
		n.cprops = g.encodeProps(props)
		g.nodes = append(g.nodes, n)
		g.nodeCount++
	}
	return nil
}

// decodeNodesColumnar reads the columnar node section into g.
func decodeNodesColumnar(g *Graph, d snapReader, fd *fileDict) error {
	nNodes, err := readUvarint(d)
	if err != nil {
		return err
	}
	if nNodes > d.limit() {
		return corruptf("node count %d exceeds input", nNodes)
	}
	g.nodes = make([]*Node, 0, min(nNodes, initialSlotCap))
	for i := uint64(0); i < nNodes; i++ {
		present, err := d.ReadByte()
		if err != nil {
			return asCorrupt(err)
		}
		if present == 0 {
			g.nodes = append(g.nodes, nil)
			continue
		}
		n := &Node{id: NodeID(i + 1), owner: g.owner}
		if n.lset, err = readNodeLabels(g, d, i); err != nil {
			return err
		}
		if n.cprops, err = readCProps(g, d, fd); err != nil {
			return err
		}
		g.nodes = append(g.nodes, n)
		g.nodeCount++
	}
	return nil
}

// decodeRels reads a legacy relationship section into g, validating
// endpoints against the already-decoded nodes.
func decodeRels(g *Graph, d snapReader) error {
	return decodeRelsWith(g, d, func(d snapReader) ([]centry, error) {
		props, err := readProps(d)
		if err != nil {
			return nil, err
		}
		return g.encodeProps(props), nil
	})
}

// decodeRelsColumnar reads the columnar relationship section.
func decodeRelsColumnar(g *Graph, d snapReader, fd *fileDict) error {
	return decodeRelsWith(g, d, func(d snapReader) ([]centry, error) {
		return readCProps(g, d, fd)
	})
}

func decodeRelsWith(g *Graph, d snapReader, props func(snapReader) ([]centry, error)) error {
	nTypes := uint64(len(g.typeNames))
	nRels, err := readUvarint(d)
	if err != nil {
		return err
	}
	if nRels > d.limit() {
		return corruptf("relationship count %d exceeds input", nRels)
	}
	g.rels = make([]*Rel, 0, min(nRels, initialSlotCap))
	for i := uint64(0); i < nRels; i++ {
		present, err := d.ReadByte()
		if err != nil {
			return asCorrupt(err)
		}
		if present == 0 {
			g.rels = append(g.rels, nil)
			continue
		}
		typ, err := readUvarint(d)
		if err != nil {
			return err
		}
		if typ >= nTypes {
			return corruptf("type id %d out of range", typ)
		}
		from, err := readUvarint(d)
		if err != nil {
			return err
		}
		to, err := readUvarint(d)
		if err != nil {
			return err
		}
		cp, err := props(d)
		if err != nil {
			return err
		}
		r := &Rel{id: RelID(i + 1), owner: g.owner, typ: typeID(typ), from: NodeID(from), to: NodeID(to), cprops: cp}
		fn, tn := g.node(r.from), g.node(r.to)
		if fn == nil || tn == nil {
			return corruptf("relationship %d references missing node", r.id)
		}
		g.rels = append(g.rels, r)
		g.relCount++
		fn.out = append(fn.out, r.id)
		tn.in = append(tn.in, r.id)
	}
	return nil
}

// decodeIndexes reads the index declarations and rebuilds each index.
func decodeIndexes(g *Graph, d snapReader) error {
	nIdx, err := readUvarint(d)
	if err != nil {
		return err
	}
	if nIdx > d.limit() {
		return corruptf("index count %d exceeds input", nIdx)
	}
	for i := uint64(0); i < nIdx; i++ {
		label, err := readString(d)
		if err != nil {
			return err
		}
		key, err := readString(d)
		if err != nil {
			return err
		}
		g.ensureIndexLocked(label, key)
	}
	return nil
}

// rebuildLabelIndex repopulates labelIdx from the decoded nodes. It must run
// before decodeIndexes, which backfills property indexes from it. Nodes are
// walked in ascending ID order, so every bucket fills through the idSet
// in-order append fast path: dense sorted base slices, no delta maps.
func rebuildLabelIndex(g *Graph) {
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		for _, lid := range g.lsets[n.lset] {
			set := g.labelIdx[lid]
			if set == nil {
				set = newIDSet(g.owner)
				g.labelIdx[lid] = set
			}
			set.add(n.id)
		}
	}
}

// LoadOptions tunes a snapshot load.
type LoadOptions struct {
	// Dict seeds the loaded graph's dictionary. A loader given the
	// previous generation's Interner reuses every unchanged string
	// (replica hot-swap reloads, delta builds); nil starts fresh.
	Dict *Interner
}

// LoadReport describes what a load did with the dictionary.
type LoadReport struct {
	// DictStrings is the number of dictionary entries the snapshot
	// carries (zero for legacy formats, which inline their strings).
	DictStrings int
	// DictReused counts the entries already present in the seeded
	// dictionary — strings that were NOT re-allocated.
	DictReused int
}

// Load reads a snapshot written by Save (any format version) and returns
// the reconstructed graph, including rebuilt adjacency, label indexes, and
// property indexes. Corrupt input of any version — truncated, bit-flipped,
// or with lying length prefixes — yields an error wrapping ErrCorrupt;
// Load never panics and never allocates beyond what the real input can
// back.
func Load(r io.Reader) (*Graph, error) {
	g, _, err := LoadWith(r, LoadOptions{})
	return g, err
}

// LoadWith is Load with options (dictionary seeding) and a reuse report.
func LoadWith(r io.Reader, opts LoadOptions) (*Graph, LoadReport, error) {
	var rep LoadReport
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(2)
	if err != nil {
		return nil, rep, corruptf("snapshot header: %v", err)
	}
	if head[0] == 0x1f && head[1] == 0x8b { // gzip magic: a legacy v1 stream
		g, err := loadV1(br, opts)
		return g, rep, err
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, rep, fmt.Errorf("graph: snapshot read: %w", err)
	}
	g, err := loadV2(data, opts, &rep)
	return g, rep, err
}

func loadV1(r io.Reader, opts LoadOptions) (*Graph, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, corruptf("snapshot: %v", err)
	}
	defer zr.Close()
	d := &streamReader{r: bufio.NewReaderSize(zr, 1<<16)}

	magic, err := d.readFull(uint64(len(snapshotMagic)))
	if err != nil {
		return nil, err
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("graph: not a snapshot (bad magic %q)", magic)
	}
	ver, err := d.ReadByte()
	if err != nil {
		return nil, asCorrupt(err)
	}
	if ver != snapshotV1 {
		return nil, fmt.Errorf("graph: unsupported snapshot version %d", ver)
	}

	g := NewWithInterner(opts.Dict)
	labels, err := decodeStringTable(d, "label")
	if err != nil {
		return nil, err
	}
	for _, s := range labels {
		g.internLabel(s)
	}
	types, err := decodeStringTable(d, "type")
	if err != nil {
		return nil, err
	}
	for _, s := range types {
		g.internType(s)
	}
	if err := decodeNodes(g, d); err != nil {
		return nil, err
	}
	if err := decodeRels(g, d); err != nil {
		return nil, err
	}
	rebuildLabelIndex(g)
	if err := decodeIndexes(g, d); err != nil {
		return nil, err
	}
	g.rebuildStatsLocked()
	// Drain to EOF: this forces the gzip reader to see (and verify) its
	// footer checksum, catching a file truncated inside the trailing bytes
	// that the section decode alone would never touch.
	if _, err := d.r.ReadByte(); err != io.EOF {
		if err == nil {
			return nil, corruptf("trailing data after snapshot sections")
		}
		return nil, asCorrupt(err)
	}
	return g, nil
}

func loadV2(data []byte, opts LoadOptions, rep *LoadReport) (*Graph, error) {
	headerSize := len(snapshotMagic) + 1
	if len(data) < headerSize+trailerSize {
		return nil, corruptf("file too short (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("graph: not a snapshot (bad magic %q)", data[:len(snapshotMagic)])
	}
	if v := data[len(snapshotMagic)]; v != snapshotV2 {
		return nil, fmt.Errorf("graph: unsupported snapshot version %d", v)
	}

	// Whole-file integrity first: a missing end marker means a torn write,
	// a total-CRC mismatch means bit rot somewhere — reject before parsing.
	if string(data[len(data)-len(snapshotEndMagic):]) != snapshotEndMagic {
		return nil, corruptf("missing end marker (torn or truncated file)")
	}
	crcOff := len(data) - len(snapshotEndMagic) - 4
	wantCRC := binary.LittleEndian.Uint32(data[crcOff:])
	if got := crc32.Checksum(data[:crcOff], castagnoli); got != wantCRC {
		return nil, corruptf("total checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	trailerOff := len(data) - trailerSize
	if data[trailerOff] != secTrailer {
		return nil, corruptf("bad trailer marker %#x", data[trailerOff])
	}
	var wantCounts [5]uint64
	for i := range wantCounts {
		wantCounts[i] = binary.LittleEndian.Uint64(data[trailerOff+1+8*i:])
	}

	g := NewWithInterner(opts.Dict)
	off := headerSize
	next := func(id byte) (*sliceReader, error) {
		body, n, err := readSection(data[off:trailerOff], id)
		if err != nil {
			return nil, err
		}
		off += n
		return &sliceReader{data: body}, nil
	}
	finish := func(d *sliceReader, id byte) error {
		if d.remaining() != 0 {
			return corruptf("section %d has %d trailing bytes", id, d.remaining())
		}
		return nil
	}
	decode := func(id byte, fn func(*sliceReader) error) error {
		d, err := next(id)
		if err != nil {
			return err
		}
		if err := fn(d); err != nil {
			return err
		}
		return finish(d, id)
	}

	if err := decode(secLabels, func(d *sliceReader) error {
		labels, err := decodeStringTable(d, "label")
		if err != nil {
			return err
		}
		for _, s := range labels {
			g.internLabel(s)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := decode(secTypes, func(d *sliceReader) error {
		types, err := decodeStringTable(d, "type")
		if err != nil {
			return err
		}
		for _, s := range types {
			g.internType(s)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// The section after the type table decides the layout: columnar files
	// carry a dictionary (secDict) before their node section; files from
	// before the columnar layout go straight to secNodes with inline
	// properties. Both remain loadable.
	if off >= trailerOff {
		return nil, corruptf("sections end after type table")
	}
	if data[off] == secDict {
		var fd *fileDict
		if err := decode(secDict, func(d *sliceReader) error {
			var err error
			fd, err = decodeDict(g, d, rep)
			return err
		}); err != nil {
			return nil, err
		}
		if err := decode(secNodes, func(d *sliceReader) error {
			if err := decodeNodesColumnar(g, d, fd); err != nil {
				return err
			}
			rebuildLabelIndex(g)
			return nil
		}); err != nil {
			return nil, err
		}
		if err := decode(secRels, func(d *sliceReader) error {
			return decodeRelsColumnar(g, d, fd)
		}); err != nil {
			return nil, err
		}
	} else {
		if err := decode(secNodes, func(d *sliceReader) error {
			if err := decodeNodes(g, d); err != nil {
				return err
			}
			rebuildLabelIndex(g)
			return nil
		}); err != nil {
			return nil, err
		}
		if err := decode(secRels, func(d *sliceReader) error {
			return decodeRels(g, d)
		}); err != nil {
			return nil, err
		}
	}
	if err := decode(secIndexes, func(d *sliceReader) error {
		return decodeIndexes(g, d)
	}); err != nil {
		return nil, err
	}
	if off != trailerOff {
		return nil, corruptf("%d unexpected bytes between sections and trailer", trailerOff-off)
	}

	// The trailer counts double-check the decode.
	gotCounts := [5]uint64{
		uint64(g.nodeCount),
		uint64(g.relCount),
		uint64(len(g.labelNames)),
		uint64(len(g.typeNames)),
		uint64(len(g.propIdx)),
	}
	if gotCounts != wantCounts {
		return nil, corruptf("trailer counts %v do not match decoded contents %v", wantCounts, gotCounts)
	}
	g.rebuildStatsLocked()
	return g, nil
}

// readSection parses one v2 section from the front of data: it validates the
// header, checks the payload CRC before decompressing, and returns the
// decompressed body plus the number of bytes consumed.
func readSection(data []byte, wantID byte) ([]byte, int, error) {
	const hdr = 1 + 4 + 8 + 8
	if len(data) < hdr {
		return nil, 0, corruptf("section %d: truncated header", wantID)
	}
	if data[0] != wantID {
		return nil, 0, corruptf("expected section %d, found %#x", wantID, data[0])
	}
	wantCRC := binary.LittleEndian.Uint32(data[1:])
	clen := binary.LittleEndian.Uint64(data[5:])
	ulen := binary.LittleEndian.Uint64(data[13:])
	if clen > uint64(len(data)-hdr) {
		return nil, 0, corruptf("section %d: compressed length %d exceeds remaining %d bytes", wantID, clen, len(data)-hdr)
	}
	// DEFLATE expands at most ~1032:1; a larger claim is a lying header.
	if ulen > clen*1032+1024 {
		return nil, 0, corruptf("section %d: uncompressed length %d implausible for %d compressed bytes", wantID, ulen, clen)
	}
	comp := data[hdr : hdr+int(clen)]
	if got := crc32.Checksum(comp, castagnoli); got != wantCRC {
		return nil, 0, corruptf("section %d: checksum mismatch (stored %08x, computed %08x)", wantID, wantCRC, got)
	}
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, 0, corruptf("section %d: %v", wantID, err)
	}
	defer zr.Close()
	// Grow-as-read keeps allocation bounded by the real decompressed size.
	var body bytes.Buffer
	n, err := io.Copy(&body, io.LimitReader(zr, int64(ulen)+1))
	if err != nil {
		return nil, 0, corruptf("section %d: %v", wantID, err)
	}
	if uint64(n) != ulen {
		return nil, 0, corruptf("section %d: decompressed to %d bytes, header claims %d", wantID, n, ulen)
	}
	return body.Bytes(), hdr + int(clen), nil
}

// --- files ---

// SaveFile writes a snapshot to path durably: the snapshot is written to a
// temp file in the same directory, fsync'd, renamed over path, and the
// parent directory is fsync'd so the rename itself survives a crash. A
// failure at any step leaves the previous snapshot at path untouched.
func (g *Graph) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := g.Save(f); err != nil {
		return fail(err)
	}
	// Sync file contents before the rename: rename-before-data-reaches-disk
	// is exactly the crash window that loses a "successfully" saved snapshot.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Graph, error) {
	g, _, err := LoadFileWith(path, LoadOptions{})
	return g, err
}

// LoadFileWith reads a snapshot from path with options (dictionary
// seeding) and a reuse report.
func LoadFileWith(path string, opts LoadOptions) (*Graph, LoadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, LoadReport{}, err
	}
	defer f.Close()
	return LoadWith(f, opts)
}
