package graph

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot format: the paper distributes IYP as weekly Neo4j dumps (§3.1);
// Save/Load provide the equivalent distribution channel for this
// reproduction. Dumps are reloaded months after they were written, so the
// format is self-verifying: v2 carries a CRC32C per section plus a trailer
// with a whole-file checksum and entity counts, letting Load distinguish a
// good snapshot from a torn or bit-flipped one before trusting any of it.
//
// Format v2 (current):
//
//	magic "IYPG" | version u8 = 2
//	5 sections, in order (labels, types, nodes, rels, indexes), each:
//	    id u8 | crc32c(compressed) u32le | compressed len u64le |
//	    uncompressed len u64le | gzip(section body)
//	trailer:
//	    0xFF u8 | node count u64le | rel count u64le | label count u64le |
//	    type count u64le | index count u64le |
//	    crc32c(file[0:here]) u32le | end magic "GPYI"
//
// Section bodies use the same length-prefixed encoding as v1:
//
//	label table:  uvarint count, strings
//	type table:   uvarint count, strings
//	node slots:   uvarint count, per slot: present u8, [labels, props]
//	rel slots:    uvarint count, per slot: present u8, [type, from, to, props]
//	index list:   uvarint count, per entry: label string, key string
//
// Format v1 (legacy, still loadable): one gzip stream wrapping
// magic | version u8 = 1 | the five section bodies, no checksums.
// v1 files start with the gzip magic, v2 files with "IYPG" — Load
// dispatches on the first two bytes.
const (
	snapshotMagic    = "IYPG"
	snapshotEndMagic = "GPYI"
	snapshotV1       = 1
	snapshotV2       = 2
)

// Section identifiers, in file order.
const (
	secLabels  byte = 1
	secTypes   byte = 2
	secNodes   byte = 3
	secRels    byte = 4
	secIndexes byte = 5
	secTrailer byte = 0xFF
)

var sectionOrder = [...]byte{secLabels, secTypes, secNodes, secRels, secIndexes}

// trailerSize is the fixed byte size of the v2 trailer:
// marker + five u64 counts + total CRC + end magic.
const trailerSize = 1 + 5*8 + 4 + 4

// Decoder sanity caps. Length prefixes are validated against the remaining
// input (v2) or these absolute bounds (v1) before any allocation, so a
// corrupt file can never trigger a multi-GiB allocation.
const (
	maxStringLen   = 1 << 28 // one interned string or blob
	maxTableLen    = 1 << 16 // label/type tables (ids are u16)
	initialSlotCap = 1 << 16 // node/rel slice pre-allocation cap
	initialListCap = 1 << 12 // list value pre-allocation cap
	initialPropCap = 1 << 10 // props map pre-allocation cap
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a snapshot (or batch journal) that failed structural or
// checksum validation: truncated, bit-flipped, or otherwise damaged input.
// Callers test with errors.Is; the Store uses it to fall back to an older
// generation.
var ErrCorrupt = errors.New("graph: snapshot corrupt")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// asCorrupt folds I/O-level failures (unexpected EOF, bad gzip data) into
// the typed ErrCorrupt without double-wrapping.
func asCorrupt(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}

// --- encoding ---

// encBuf encodes section bodies into memory. Writes cannot fail.
type encBuf struct {
	b       bytes.Buffer
	scratch []byte
}

func (e *encBuf) uvarint(v uint64) {
	e.scratch = binary.AppendUvarint(e.scratch[:0], v)
	e.b.Write(e.scratch)
}

func (e *encBuf) byte(b byte) { e.b.WriteByte(b) }

func (e *encBuf) string(s string) {
	e.uvarint(uint64(len(s)))
	e.b.WriteString(s)
}

func (e *encBuf) value(v Value) {
	e.byte(byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		if v.b {
			e.byte(1)
		} else {
			e.byte(0)
		}
	case KindInt:
		e.uvarint(uint64(v.i)) // two's complement round-trips through uint64
	case KindFloat:
		e.uvarint(math.Float64bits(v.f))
	case KindString:
		e.string(v.s)
	case KindList:
		e.uvarint(uint64(len(v.list)))
		for _, el := range v.list {
			e.value(el)
		}
	}
}

func (e *encBuf) props(p Props) {
	e.uvarint(uint64(len(p)))
	// Deterministic order keeps snapshots byte-stable for identical graphs.
	for _, k := range p.Keys() {
		e.string(k)
		e.value(p[k])
	}
}

// crcWriter tracks the running CRC32C of everything written through it.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	return cw.w.Write(p)
}

func (cw *crcWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := cw.Write(b[:])
	return err
}

func (cw *crcWriter) u64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := cw.Write(b[:])
	return err
}

// Save writes a format-v2 snapshot of the graph to w.
func (g *Graph) Save(w io.Writer) error {
	g.rlock()
	defer g.runlock()

	out := &crcWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := out.Write([]byte(snapshotMagic)); err != nil {
		return err
	}
	if _, err := out.Write([]byte{snapshotV2}); err != nil {
		return err
	}

	var enc encBuf
	var comp bytes.Buffer
	writeSection := func(id byte, fill func(e *encBuf)) error {
		enc.b.Reset()
		fill(&enc)
		comp.Reset()
		zw := gzip.NewWriter(&comp)
		if _, err := zw.Write(enc.b.Bytes()); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		if _, err := out.Write([]byte{id}); err != nil {
			return err
		}
		if err := out.u32(crc32.Checksum(comp.Bytes(), castagnoli)); err != nil {
			return err
		}
		if err := out.u64(uint64(comp.Len())); err != nil {
			return err
		}
		if err := out.u64(uint64(enc.b.Len())); err != nil {
			return err
		}
		_, err := out.Write(comp.Bytes())
		return err
	}

	if err := writeSection(secLabels, func(e *encBuf) {
		e.uvarint(uint64(len(g.labelNames)))
		for _, s := range g.labelNames {
			e.string(s)
		}
	}); err != nil {
		return err
	}
	if err := writeSection(secTypes, func(e *encBuf) {
		e.uvarint(uint64(len(g.typeNames)))
		for _, s := range g.typeNames {
			e.string(s)
		}
	}); err != nil {
		return err
	}
	if err := writeSection(secNodes, func(e *encBuf) {
		e.uvarint(uint64(len(g.nodes)))
		for _, n := range g.nodes {
			if n == nil {
				e.byte(0)
				continue
			}
			e.byte(1)
			e.uvarint(uint64(len(n.labels)))
			for _, l := range n.labels {
				e.uvarint(uint64(l))
			}
			e.props(n.props)
		}
	}); err != nil {
		return err
	}
	if err := writeSection(secRels, func(e *encBuf) {
		e.uvarint(uint64(len(g.rels)))
		for _, r := range g.rels {
			if r == nil {
				e.byte(0)
				continue
			}
			e.byte(1)
			e.uvarint(uint64(r.typ))
			e.uvarint(uint64(r.from))
			e.uvarint(uint64(r.to))
			e.props(r.props)
		}
	}); err != nil {
		return err
	}
	if err := writeSection(secIndexes, func(e *encBuf) {
		// propIdx is a map; sort the entries so identical graphs produce
		// byte-identical snapshots.
		entries := make([]propIdxID, 0, len(g.propIdx))
		for pid := range g.propIdx {
			entries = append(entries, pid)
		}
		sort.Slice(entries, func(i, j int) bool {
			li, lj := g.labelNames[entries[i].label], g.labelNames[entries[j].label]
			if li != lj {
				return li < lj
			}
			return entries[i].key < entries[j].key
		})
		e.uvarint(uint64(len(entries)))
		for _, pid := range entries {
			e.string(g.labelNames[pid.label])
			e.string(pid.key)
		}
	}); err != nil {
		return err
	}

	// Trailer: counts, then the total CRC over everything before it.
	if _, err := out.Write([]byte{secTrailer}); err != nil {
		return err
	}
	for _, c := range [...]uint64{
		uint64(g.nodeCount),
		uint64(g.relCount),
		uint64(len(g.labelNames)),
		uint64(len(g.typeNames)),
		uint64(len(g.propIdx)),
	} {
		if err := out.u64(c); err != nil {
			return err
		}
	}
	if err := out.u32(out.crc); err != nil {
		return err
	}
	if _, err := out.Write([]byte(snapshotEndMagic)); err != nil {
		return err
	}
	return out.w.Flush()
}

// --- decoding ---

// snapReader abstracts the two decode sources: the v1 gzip stream and v2
// in-memory section bodies. Implementations bound allocations: readFull
// grows incrementally and limit reports how many more items could possibly
// be encoded in the remaining input.
type snapReader interface {
	io.ByteReader
	readFull(n uint64) ([]byte, error)
	limit() uint64
}

// sliceReader decodes a fully-materialized section body with strict bounds.
type sliceReader struct {
	data []byte
	off  int
}

func (s *sliceReader) remaining() int { return len(s.data) - s.off }

func (s *sliceReader) limit() uint64 { return uint64(s.remaining()) }

func (s *sliceReader) ReadByte() (byte, error) {
	if s.off >= len(s.data) {
		return 0, corruptf("truncated section")
	}
	b := s.data[s.off]
	s.off++
	return b, nil
}

func (s *sliceReader) readFull(n uint64) ([]byte, error) {
	if n > uint64(s.remaining()) {
		return nil, corruptf("length prefix %d exceeds remaining %d bytes", n, s.remaining())
	}
	b := s.data[s.off : s.off+int(n)]
	s.off += int(n)
	return b, nil
}

// streamReader decodes the legacy v1 gzip stream. The remaining input size
// is unknown, so limit is unbounded and readFull grows its buffer as data
// actually arrives — a lying length prefix costs at most the real payload.
type streamReader struct {
	r *bufio.Reader
}

func (s *streamReader) limit() uint64 { return math.MaxUint64 }

func (s *streamReader) ReadByte() (byte, error) { return s.r.ReadByte() }

func (s *streamReader) readFull(n uint64) ([]byte, error) {
	if n > maxStringLen {
		return nil, corruptf("length prefix %d too large", n)
	}
	// ReadAll grows incrementally: a corrupt length prefix larger than the
	// actual stream allocates only what the stream really contains.
	b, err := io.ReadAll(io.LimitReader(s.r, int64(n)))
	if err != nil {
		return nil, asCorrupt(err)
	}
	if uint64(len(b)) != n {
		return nil, corruptf("need %d bytes, stream ended after %d", n, len(b))
	}
	return b, nil
}

func readUvarint(d snapReader) (uint64, error) {
	v, err := binary.ReadUvarint(d)
	if err != nil {
		return 0, asCorrupt(err)
	}
	return v, nil
}

func readString(d snapReader) (string, error) {
	n, err := readUvarint(d)
	if err != nil {
		return "", err
	}
	if n > maxStringLen || n > d.limit() {
		return "", corruptf("string length %d too large", n)
	}
	b, err := d.readFull(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func readValue(d snapReader) (Value, error) {
	kb, err := d.ReadByte()
	if err != nil {
		return Null(), asCorrupt(err)
	}
	switch Kind(kb) {
	case KindNull:
		return Null(), nil
	case KindBool:
		b, err := d.ReadByte()
		if err != nil {
			return Null(), asCorrupt(err)
		}
		return Bool(b != 0), nil
	case KindInt:
		u, err := readUvarint(d)
		if err != nil {
			return Null(), err
		}
		return Int(int64(u)), nil
	case KindFloat:
		u, err := readUvarint(d)
		if err != nil {
			return Null(), err
		}
		return Float(math.Float64frombits(u)), nil
	case KindString:
		s, err := readString(d)
		if err != nil {
			return Null(), err
		}
		return String(s), nil
	case KindList:
		n, err := readUvarint(d)
		if err != nil {
			return Null(), err
		}
		// Each element is at least one byte.
		if n > d.limit() {
			return Null(), corruptf("list length %d too large", n)
		}
		vs := make([]Value, 0, min(n, initialListCap))
		for i := uint64(0); i < n; i++ {
			v, err := readValue(d)
			if err != nil {
				return Null(), err
			}
			vs = append(vs, v)
		}
		return List(vs...), nil
	}
	return Null(), corruptf("unknown value kind %d", kb)
}

func readProps(d snapReader) (Props, error) {
	n, err := readUvarint(d)
	if err != nil {
		return nil, err
	}
	// Each entry takes at least two bytes (key length + value kind).
	if n > d.limit() {
		return nil, corruptf("property count %d too large", n)
	}
	p := make(Props, min(n, initialPropCap))
	for i := uint64(0); i < n; i++ {
		k, err := readString(d)
		if err != nil {
			return nil, err
		}
		v, err := readValue(d)
		if err != nil {
			return nil, err
		}
		p[k] = v
	}
	return p, nil
}

// decodeStringTable reads a label or type table (bounded by maxTableLen,
// since ids are u16).
func decodeStringTable(d snapReader, what string) ([]string, error) {
	n, err := readUvarint(d)
	if err != nil {
		return nil, err
	}
	if n > maxTableLen || n > d.limit() {
		return nil, corruptf("%s table size %d too large", what, n)
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := readString(d)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// decodeNodes reads the node-slot section into g (callers hold no locks;
// g is still private to the loader).
func decodeNodes(g *Graph, d snapReader) error {
	nLabels := uint64(len(g.labelNames))
	nNodes, err := readUvarint(d)
	if err != nil {
		return err
	}
	// Each slot takes at least one byte.
	if nNodes > d.limit() {
		return corruptf("node count %d exceeds input", nNodes)
	}
	g.nodes = make([]*Node, 0, min(nNodes, initialSlotCap))
	for i := uint64(0); i < nNodes; i++ {
		present, err := d.ReadByte()
		if err != nil {
			return asCorrupt(err)
		}
		if present == 0 {
			g.nodes = append(g.nodes, nil)
			continue
		}
		nl, err := readUvarint(d)
		if err != nil {
			return err
		}
		if nl > nLabels {
			return corruptf("node %d: label count %d exceeds table size %d", i+1, nl, nLabels)
		}
		n := &Node{id: NodeID(i + 1), owner: g.owner, labels: make([]labelID, nl)}
		for j := range n.labels {
			l, err := readUvarint(d)
			if err != nil {
				return err
			}
			if l >= nLabels {
				return corruptf("label id %d out of range", l)
			}
			n.labels[j] = labelID(l)
		}
		if n.props, err = readProps(d); err != nil {
			return err
		}
		g.nodes = append(g.nodes, n)
		g.nodeCount++
	}
	return nil
}

// decodeRels reads the relationship-slot section into g, validating
// endpoints against the already-decoded nodes.
func decodeRels(g *Graph, d snapReader) error {
	nTypes := uint64(len(g.typeNames))
	nRels, err := readUvarint(d)
	if err != nil {
		return err
	}
	if nRels > d.limit() {
		return corruptf("relationship count %d exceeds input", nRels)
	}
	g.rels = make([]*Rel, 0, min(nRels, initialSlotCap))
	for i := uint64(0); i < nRels; i++ {
		present, err := d.ReadByte()
		if err != nil {
			return asCorrupt(err)
		}
		if present == 0 {
			g.rels = append(g.rels, nil)
			continue
		}
		typ, err := readUvarint(d)
		if err != nil {
			return err
		}
		if typ >= nTypes {
			return corruptf("type id %d out of range", typ)
		}
		from, err := readUvarint(d)
		if err != nil {
			return err
		}
		to, err := readUvarint(d)
		if err != nil {
			return err
		}
		props, err := readProps(d)
		if err != nil {
			return err
		}
		r := &Rel{id: RelID(i + 1), owner: g.owner, typ: typeID(typ), from: NodeID(from), to: NodeID(to), props: props}
		fn, tn := g.node(r.from), g.node(r.to)
		if fn == nil || tn == nil {
			return corruptf("relationship %d references missing node", r.id)
		}
		g.rels = append(g.rels, r)
		g.relCount++
		fn.out = append(fn.out, r.id)
		tn.in = append(tn.in, r.id)
	}
	return nil
}

// decodeIndexes reads the index declarations and rebuilds each index.
func decodeIndexes(g *Graph, d snapReader) error {
	nIdx, err := readUvarint(d)
	if err != nil {
		return err
	}
	if nIdx > d.limit() {
		return corruptf("index count %d exceeds input", nIdx)
	}
	for i := uint64(0); i < nIdx; i++ {
		label, err := readString(d)
		if err != nil {
			return err
		}
		key, err := readString(d)
		if err != nil {
			return err
		}
		g.ensureIndexLocked(label, key)
	}
	return nil
}

// rebuildLabelIndex repopulates labelIdx from the decoded nodes. It must run
// before decodeIndexes, which backfills property indexes from it.
func rebuildLabelIndex(g *Graph) {
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		for _, lid := range n.labels {
			set := g.labelIdx[lid]
			if set == nil {
				set = newIDSet(g.owner)
				g.labelIdx[lid] = set
			}
			set.ids[n.id] = struct{}{}
		}
	}
}

// Load reads a snapshot written by Save (either format version) and returns
// the reconstructed graph, including rebuilt adjacency, label indexes, and
// property indexes. Corrupt input of either version — truncated,
// bit-flipped, or with lying length prefixes — yields an error wrapping
// ErrCorrupt; Load never panics and never allocates beyond what the real
// input can back.
func Load(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(2)
	if err != nil {
		return nil, corruptf("snapshot header: %v", err)
	}
	if head[0] == 0x1f && head[1] == 0x8b { // gzip magic: a legacy v1 stream
		return loadV1(br)
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("graph: snapshot read: %w", err)
	}
	return loadV2(data)
}

func loadV1(r io.Reader) (*Graph, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, corruptf("snapshot: %v", err)
	}
	defer zr.Close()
	d := &streamReader{r: bufio.NewReaderSize(zr, 1<<16)}

	magic, err := d.readFull(uint64(len(snapshotMagic)))
	if err != nil {
		return nil, err
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("graph: not a snapshot (bad magic %q)", magic)
	}
	ver, err := d.ReadByte()
	if err != nil {
		return nil, asCorrupt(err)
	}
	if ver != snapshotV1 {
		return nil, fmt.Errorf("graph: unsupported snapshot version %d", ver)
	}

	g := New()
	labels, err := decodeStringTable(d, "label")
	if err != nil {
		return nil, err
	}
	for _, s := range labels {
		g.internLabel(s)
	}
	types, err := decodeStringTable(d, "type")
	if err != nil {
		return nil, err
	}
	for _, s := range types {
		g.internType(s)
	}
	if err := decodeNodes(g, d); err != nil {
		return nil, err
	}
	if err := decodeRels(g, d); err != nil {
		return nil, err
	}
	rebuildLabelIndex(g)
	if err := decodeIndexes(g, d); err != nil {
		return nil, err
	}
	g.rebuildStatsLocked()
	// Drain to EOF: this forces the gzip reader to see (and verify) its
	// footer checksum, catching a file truncated inside the trailing bytes
	// that the section decode alone would never touch.
	if _, err := d.r.ReadByte(); err != io.EOF {
		if err == nil {
			return nil, corruptf("trailing data after snapshot sections")
		}
		return nil, asCorrupt(err)
	}
	return g, nil
}

func loadV2(data []byte) (*Graph, error) {
	headerSize := len(snapshotMagic) + 1
	if len(data) < headerSize+trailerSize {
		return nil, corruptf("file too short (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("graph: not a snapshot (bad magic %q)", data[:len(snapshotMagic)])
	}
	if v := data[len(snapshotMagic)]; v != snapshotV2 {
		return nil, fmt.Errorf("graph: unsupported snapshot version %d", v)
	}

	// Whole-file integrity first: a missing end marker means a torn write,
	// a total-CRC mismatch means bit rot somewhere — reject before parsing.
	if string(data[len(data)-len(snapshotEndMagic):]) != snapshotEndMagic {
		return nil, corruptf("missing end marker (torn or truncated file)")
	}
	crcOff := len(data) - len(snapshotEndMagic) - 4
	wantCRC := binary.LittleEndian.Uint32(data[crcOff:])
	if got := crc32.Checksum(data[:crcOff], castagnoli); got != wantCRC {
		return nil, corruptf("total checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	trailerOff := len(data) - trailerSize
	if data[trailerOff] != secTrailer {
		return nil, corruptf("bad trailer marker %#x", data[trailerOff])
	}
	var wantCounts [5]uint64
	for i := range wantCounts {
		wantCounts[i] = binary.LittleEndian.Uint64(data[trailerOff+1+8*i:])
	}

	g := New()
	off := headerSize
	for _, id := range sectionOrder {
		body, n, err := readSection(data[off:trailerOff], id)
		if err != nil {
			return nil, err
		}
		off += n
		d := &sliceReader{data: body}
		switch id {
		case secLabels:
			labels, err := decodeStringTable(d, "label")
			if err != nil {
				return nil, err
			}
			for _, s := range labels {
				g.internLabel(s)
			}
		case secTypes:
			types, err := decodeStringTable(d, "type")
			if err != nil {
				return nil, err
			}
			for _, s := range types {
				g.internType(s)
			}
		case secNodes:
			if err := decodeNodes(g, d); err != nil {
				return nil, err
			}
			rebuildLabelIndex(g)
		case secRels:
			if err := decodeRels(g, d); err != nil {
				return nil, err
			}
		case secIndexes:
			if err := decodeIndexes(g, d); err != nil {
				return nil, err
			}
		}
		if d.remaining() != 0 {
			return nil, corruptf("section %d has %d trailing bytes", id, d.remaining())
		}
	}
	if off != trailerOff {
		return nil, corruptf("%d unexpected bytes between sections and trailer", trailerOff-off)
	}

	// The trailer counts double-check the decode.
	gotCounts := [5]uint64{
		uint64(g.nodeCount),
		uint64(g.relCount),
		uint64(len(g.labelNames)),
		uint64(len(g.typeNames)),
		uint64(len(g.propIdx)),
	}
	if gotCounts != wantCounts {
		return nil, corruptf("trailer counts %v do not match decoded contents %v", wantCounts, gotCounts)
	}
	g.rebuildStatsLocked()
	return g, nil
}

// readSection parses one v2 section from the front of data: it validates the
// header, checks the payload CRC before decompressing, and returns the
// decompressed body plus the number of bytes consumed.
func readSection(data []byte, wantID byte) ([]byte, int, error) {
	const hdr = 1 + 4 + 8 + 8
	if len(data) < hdr {
		return nil, 0, corruptf("section %d: truncated header", wantID)
	}
	if data[0] != wantID {
		return nil, 0, corruptf("expected section %d, found %#x", wantID, data[0])
	}
	wantCRC := binary.LittleEndian.Uint32(data[1:])
	clen := binary.LittleEndian.Uint64(data[5:])
	ulen := binary.LittleEndian.Uint64(data[13:])
	if clen > uint64(len(data)-hdr) {
		return nil, 0, corruptf("section %d: compressed length %d exceeds remaining %d bytes", wantID, clen, len(data)-hdr)
	}
	// DEFLATE expands at most ~1032:1; a larger claim is a lying header.
	if ulen > clen*1032+1024 {
		return nil, 0, corruptf("section %d: uncompressed length %d implausible for %d compressed bytes", wantID, ulen, clen)
	}
	comp := data[hdr : hdr+int(clen)]
	if got := crc32.Checksum(comp, castagnoli); got != wantCRC {
		return nil, 0, corruptf("section %d: checksum mismatch (stored %08x, computed %08x)", wantID, wantCRC, got)
	}
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, 0, corruptf("section %d: %v", wantID, err)
	}
	defer zr.Close()
	// Grow-as-read keeps allocation bounded by the real decompressed size.
	var body bytes.Buffer
	n, err := io.Copy(&body, io.LimitReader(zr, int64(ulen)+1))
	if err != nil {
		return nil, 0, corruptf("section %d: %v", wantID, err)
	}
	if uint64(n) != ulen {
		return nil, 0, corruptf("section %d: decompressed to %d bytes, header claims %d", wantID, n, ulen)
	}
	return body.Bytes(), hdr + int(clen), nil
}

// --- files ---

// SaveFile writes a snapshot to path durably: the snapshot is written to a
// temp file in the same directory, fsync'd, renamed over path, and the
// parent directory is fsync'd so the rename itself survives a crash. A
// failure at any step leaves the previous snapshot at path untouched.
func (g *Graph) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := g.Save(f); err != nil {
		return fail(err)
	}
	// Sync file contents before the rename: rename-before-data-reaches-disk
	// is exactly the crash window that loses a "successfully" saved snapshot.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
