package graph

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Snapshot format: a gzip stream wrapping a simple length-prefixed binary
// layout. The paper distributes IYP as weekly Neo4j dumps (§3.1); Save/Load
// provide the equivalent distribution channel for this reproduction.
//
//	magic "IYPG" | version u8
//	label table:  uvarint count, strings
//	type table:   uvarint count, strings
//	node slots:   uvarint count, per slot: present u8, [labels, props]
//	rel slots:    uvarint count, per slot: present u8, [type, from, to, props]
//	index list:   uvarint count, per entry: label string, key string

const (
	snapshotMagic   = "IYPG"
	snapshotVersion = 1
)

type snapshotWriter struct {
	w   *bufio.Writer
	buf []byte
	err error
}

func (sw *snapshotWriter) uvarint(v uint64) {
	if sw.err != nil {
		return
	}
	sw.buf = binary.AppendUvarint(sw.buf[:0], v)
	_, sw.err = sw.w.Write(sw.buf)
}

func (sw *snapshotWriter) byte(b byte) {
	if sw.err != nil {
		return
	}
	sw.err = sw.w.WriteByte(b)
}

func (sw *snapshotWriter) string(s string) {
	sw.uvarint(uint64(len(s)))
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.WriteString(s)
}

func (sw *snapshotWriter) value(v Value) {
	sw.byte(byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		if v.b {
			sw.byte(1)
		} else {
			sw.byte(0)
		}
	case KindInt:
		sw.uvarint(uint64(v.i)) // two's complement round-trips through uint64
	case KindFloat:
		sw.uvarint(math.Float64bits(v.f))
	case KindString:
		sw.string(v.s)
	case KindList:
		sw.uvarint(uint64(len(v.list)))
		for _, e := range v.list {
			sw.value(e)
		}
	}
}

func (sw *snapshotWriter) props(p Props) {
	sw.uvarint(uint64(len(p)))
	// Deterministic order keeps snapshots byte-stable for identical graphs.
	for _, k := range p.Keys() {
		sw.string(k)
		sw.value(p[k])
	}
}

// Save writes the graph snapshot to w.
func (g *Graph) Save(w io.Writer) error {
	g.mu.RLock()
	defer g.mu.RUnlock()

	zw := gzip.NewWriter(w)
	sw := &snapshotWriter{w: bufio.NewWriterSize(zw, 1<<16)}

	if _, err := sw.w.WriteString(snapshotMagic); err != nil {
		return err
	}
	sw.byte(snapshotVersion)

	sw.uvarint(uint64(len(g.labelNames)))
	for _, s := range g.labelNames {
		sw.string(s)
	}
	sw.uvarint(uint64(len(g.typeNames)))
	for _, s := range g.typeNames {
		sw.string(s)
	}

	sw.uvarint(uint64(len(g.nodes)))
	for _, n := range g.nodes {
		if n == nil {
			sw.byte(0)
			continue
		}
		sw.byte(1)
		sw.uvarint(uint64(len(n.labels)))
		for _, l := range n.labels {
			sw.uvarint(uint64(l))
		}
		sw.props(n.props)
	}

	sw.uvarint(uint64(len(g.rels)))
	for _, r := range g.rels {
		if r == nil {
			sw.byte(0)
			continue
		}
		sw.byte(1)
		sw.uvarint(uint64(r.typ))
		sw.uvarint(uint64(r.from))
		sw.uvarint(uint64(r.to))
		sw.props(r.props)
	}

	sw.uvarint(uint64(len(g.propIdx)))
	for pid := range g.propIdx {
		sw.string(g.labelNames[pid.label])
		sw.string(pid.key)
	}

	if sw.err != nil {
		return fmt.Errorf("graph: snapshot write: %w", sw.err)
	}
	if err := sw.w.Flush(); err != nil {
		return err
	}
	return zw.Close()
}

type snapshotReader struct {
	r *bufio.Reader
}

func (sr *snapshotReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(sr.r)
}

func (sr *snapshotReader) byte() (byte, error) {
	return sr.r.ReadByte()
}

func (sr *snapshotReader) string() (string, error) {
	n, err := sr.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("graph: snapshot string length %d too large", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(sr.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (sr *snapshotReader) value() (Value, error) {
	kb, err := sr.byte()
	if err != nil {
		return Null(), err
	}
	switch Kind(kb) {
	case KindNull:
		return Null(), nil
	case KindBool:
		b, err := sr.byte()
		if err != nil {
			return Null(), err
		}
		return Bool(b != 0), nil
	case KindInt:
		u, err := sr.uvarint()
		if err != nil {
			return Null(), err
		}
		return Int(int64(u)), nil
	case KindFloat:
		u, err := sr.uvarint()
		if err != nil {
			return Null(), err
		}
		return Float(math.Float64frombits(u)), nil
	case KindString:
		s, err := sr.string()
		if err != nil {
			return Null(), err
		}
		return String(s), nil
	case KindList:
		n, err := sr.uvarint()
		if err != nil {
			return Null(), err
		}
		if n > 1<<24 {
			return Null(), fmt.Errorf("graph: snapshot list length %d too large", n)
		}
		vs := make([]Value, n)
		for i := range vs {
			if vs[i], err = sr.value(); err != nil {
				return Null(), err
			}
		}
		return List(vs...), nil
	}
	return Null(), fmt.Errorf("graph: snapshot: unknown value kind %d", kb)
}

func (sr *snapshotReader) props() (Props, error) {
	n, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	p := make(Props, n)
	for i := uint64(0); i < n; i++ {
		k, err := sr.string()
		if err != nil {
			return nil, err
		}
		v, err := sr.value()
		if err != nil {
			return nil, err
		}
		p[k] = v
	}
	return p, nil
}

// Load reads a snapshot written by Save and returns the reconstructed
// graph, including rebuilt adjacency, label indexes, and property indexes.
func Load(r io.Reader) (*Graph, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("graph: snapshot: %w", err)
	}
	defer zr.Close()
	sr := &snapshotReader{r: bufio.NewReaderSize(zr, 1<<16)}

	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(sr.r, magic); err != nil {
		return nil, fmt.Errorf("graph: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("graph: not a snapshot (bad magic %q)", magic)
	}
	ver, err := sr.byte()
	if err != nil {
		return nil, err
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("graph: unsupported snapshot version %d", ver)
	}

	g := New()

	nLabels, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nLabels; i++ {
		s, err := sr.string()
		if err != nil {
			return nil, err
		}
		g.internLabel(s)
	}
	nTypes, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTypes; i++ {
		s, err := sr.string()
		if err != nil {
			return nil, err
		}
		g.internType(s)
	}

	nNodes, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	g.nodes = make([]*Node, 0, nNodes)
	for i := uint64(0); i < nNodes; i++ {
		present, err := sr.byte()
		if err != nil {
			return nil, err
		}
		if present == 0 {
			g.nodes = append(g.nodes, nil)
			continue
		}
		nl, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		n := &Node{id: NodeID(i + 1), labels: make([]labelID, nl)}
		for j := range n.labels {
			l, err := sr.uvarint()
			if err != nil {
				return nil, err
			}
			if l >= nLabels {
				return nil, fmt.Errorf("graph: snapshot: label id %d out of range", l)
			}
			n.labels[j] = labelID(l)
		}
		if n.props, err = sr.props(); err != nil {
			return nil, err
		}
		g.nodes = append(g.nodes, n)
		g.nodeCount++
	}

	nRels, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	g.rels = make([]*Rel, 0, nRels)
	for i := uint64(0); i < nRels; i++ {
		present, err := sr.byte()
		if err != nil {
			return nil, err
		}
		if present == 0 {
			g.rels = append(g.rels, nil)
			continue
		}
		typ, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		if typ >= nTypes {
			return nil, fmt.Errorf("graph: snapshot: type id %d out of range", typ)
		}
		from, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		to, err := sr.uvarint()
		if err != nil {
			return nil, err
		}
		props, err := sr.props()
		if err != nil {
			return nil, err
		}
		r := &Rel{id: RelID(i + 1), typ: typeID(typ), from: NodeID(from), to: NodeID(to), props: props}
		fn, tn := g.node(r.from), g.node(r.to)
		if fn == nil || tn == nil {
			return nil, fmt.Errorf("graph: snapshot: relationship %d references missing node", r.id)
		}
		g.rels = append(g.rels, r)
		g.relCount++
		fn.out = append(fn.out, r.id)
		tn.in = append(tn.in, r.id)
	}

	// Rebuild label index.
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		for _, lid := range n.labels {
			set := g.labelIdx[lid]
			if set == nil {
				set = make(map[NodeID]struct{})
				g.labelIdx[lid] = set
			}
			set[n.id] = struct{}{}
		}
	}

	nIdx, err := sr.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nIdx; i++ {
		label, err := sr.string()
		if err != nil {
			return nil, err
		}
		key, err := sr.string()
		if err != nil {
			return nil, err
		}
		g.ensureIndexLocked(label, key)
	}

	return g, nil
}

// SaveFile writes a snapshot to path atomically (temp file + rename).
func (g *Graph) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := g.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
