package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node. IDs are assigned sequentially starting at 1; 0
// is never a valid ID.
type NodeID uint64

// RelID identifies a relationship, with the same conventions as NodeID.
type RelID uint64

type labelID uint16
type typeID uint16

// ownerTokens hands out ownership stamps for the copy-on-write machinery.
// Every Graph (fresh, loaded, or cloned) gets a unique token; a node,
// relationship, or index bucket whose stamp differs from its graph's token
// is structurally shared with an older generation and must be copied
// before it is mutated.
var ownerTokens atomic.Uint64

func newOwnerToken() uint64 { return ownerTokens.Add(1) }

// Node is a labeled property vertex. Fields are unexported; all access goes
// through methods so the store can synchronize and maintain indexes.
type Node struct {
	id     NodeID
	owner  uint64    // COW stamp: which graph generation may mutate this struct
	labels []labelID // sorted
	props  Props
	out    []RelID
	in     []RelID
}

// Rel is a typed, directed edge with properties.
type Rel struct {
	id    RelID
	owner uint64 // COW stamp, as on Node
	typ   typeID
	from  NodeID
	to    NodeID
	props Props
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// ID returns the relationship's identifier.
func (r *Rel) ID() RelID { return r.id }

// From returns the source node ID.
func (r *Rel) From() NodeID { return r.from }

// To returns the destination node ID.
func (r *Rel) To() NodeID { return r.to }

// Other returns the endpoint of r that is not n.
func (r *Rel) Other(n NodeID) NodeID {
	if r.from == n {
		return r.to
	}
	return r.from
}

// clone returns a deep-enough copy of n owned by the given generation:
// label/adjacency slices and the property map are copied, property values
// (immutable) are shared.
func (n *Node) clone(owner uint64) *Node {
	return &Node{
		id:     n.id,
		owner:  owner,
		labels: append([]labelID(nil), n.labels...),
		props:  n.props.Clone(),
		out:    append([]RelID(nil), n.out...),
		in:     append([]RelID(nil), n.in...),
	}
}

func (r *Rel) clone(owner uint64) *Rel {
	return &Rel{
		id:    r.id,
		owner: owner,
		typ:   r.typ,
		from:  r.from,
		to:    r.to,
		props: r.props.Clone(),
	}
}

type propIdxID struct {
	label labelID
	key   string
}

// idSet is a node-ID set with a COW ownership stamp — the bucket type of
// the label index and of each property-index value bucket.
type idSet struct {
	owner uint64
	ids   map[NodeID]struct{}
}

func newIDSet(owner uint64) *idSet {
	return &idSet{owner: owner, ids: make(map[NodeID]struct{})}
}

func (s *idSet) clone(owner uint64) *idSet {
	c := &idSet{owner: owner, ids: make(map[NodeID]struct{}, len(s.ids))}
	for id := range s.ids {
		c.ids[id] = struct{}{}
	}
	return c
}

// propIndex is one (label, key) hash index: value bucket map plus a COW
// stamp for the bucket map itself (leaf sets carry their own stamps).
type propIndex struct {
	owner   uint64
	buckets map[indexKey]*idSet
}

// Graph is the in-memory property graph. All exported methods are safe for
// concurrent use; reads on a live graph proceed in parallel under an
// RWMutex, while reads on a frozen graph (see Freeze) skip the lock
// entirely — a frozen graph is an immutable generation and its read path
// is lock-free by construction.
type Graph struct {
	mu sync.RWMutex

	// frozen marks the graph an immutable generation: reads skip the lock,
	// mutations panic (ApplyBatch returns ErrFrozen). Set once by Freeze,
	// which must happen-before the graph is shared with lock-free readers
	// (MVStore publishes frozen graphs through an atomic pointer, which
	// provides that ordering).
	frozen bool
	// owner is this graph's COW stamp (see ownerTokens).
	owner uint64

	labelNames []string
	labelIDs   map[string]labelID
	typeNames  []string
	typeIDs    map[string]typeID

	nodes []*Node // index id-1; nil = deleted
	rels  []*Rel

	labelIdx map[labelID]*idSet
	propIdx  map[propIdxID]*propIndex

	nodeCount int
	relCount  int

	// Planner statistics, maintained incrementally alongside the indexes
	// (and rebuilt in one pass on snapshot load): live relationship count
	// per type, and the number of nodes per (label, property-key) pair.
	// Guarded by mu; see stats.go for the read API.
	typeCounts    []int
	labelKeyCount map[propIdxID]int

	// version counts mutations; derived read-optimized structures (the
	// analytics CSR views) key their caches on it. Guarded by mu.
	version uint64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		owner:         newOwnerToken(),
		labelIDs:      make(map[string]labelID),
		typeIDs:       make(map[string]typeID),
		labelIdx:      make(map[labelID]*idSet),
		propIdx:       make(map[propIdxID]*propIndex),
		labelKeyCount: make(map[propIdxID]int),
	}
}

// --- freezing & copy-on-write cloning (the MVCC substrate) ---

// Freeze marks the graph an immutable generation. From then on every read
// accessor is lock-free and every mutation panics (ApplyBatch returns
// ErrFrozen instead). Freeze must not race with writers: callers freeze a
// graph only once it has a single owner (a finished build, or a clone
// about to be published). It returns g for chaining.
func (g *Graph) Freeze() *Graph {
	g.mu.Lock()
	g.frozen = true
	g.mu.Unlock()
	return g
}

// Frozen reports whether the graph is an immutable generation.
func (g *Graph) Frozen() bool { return g.frozen }

// Clone returns a mutable copy-on-write graph derived from a frozen
// generation: top-level tables (slot slices, interning, statistics, index
// directories) are copied eagerly — O(nodes + rels) pointer copies — while
// nodes, relationships and index buckets are shared with the parent and
// copied lazily the first time this clone mutates them. The parent stays
// frozen and is never touched; this is how a writer builds generation N+1
// while generation N keeps serving lock-free readers.
func (g *Graph) Clone() *Graph {
	if !g.frozen {
		panic("graph: Clone of a live graph (Freeze it first — only immutable generations can be cloned safely)")
	}
	ng := &Graph{
		owner:         newOwnerToken(),
		labelNames:    append([]string(nil), g.labelNames...),
		labelIDs:      make(map[string]labelID, len(g.labelIDs)),
		typeNames:     append([]string(nil), g.typeNames...),
		typeIDs:       make(map[string]typeID, len(g.typeIDs)),
		nodes:         append([]*Node(nil), g.nodes...),
		rels:          append([]*Rel(nil), g.rels...),
		labelIdx:      make(map[labelID]*idSet, len(g.labelIdx)),
		propIdx:       make(map[propIdxID]*propIndex, len(g.propIdx)),
		nodeCount:     g.nodeCount,
		relCount:      g.relCount,
		typeCounts:    append([]int(nil), g.typeCounts...),
		labelKeyCount: make(map[propIdxID]int, len(g.labelKeyCount)),
		version:       g.version,
	}
	for k, v := range g.labelIDs {
		ng.labelIDs[k] = v
	}
	for k, v := range g.typeIDs {
		ng.typeIDs[k] = v
	}
	for k, v := range g.labelIdx {
		ng.labelIdx[k] = v // shared; mutLabelSet copies on first write
	}
	for k, v := range g.propIdx {
		ng.propIdx[k] = v // shared; mutIndex copies on first write
	}
	for k, v := range g.labelKeyCount {
		ng.labelKeyCount[k] = v
	}
	return ng
}

// checkMutable panics when the graph is frozen. Called (with mu held) at
// the top of every mutating method: writing to a published generation is a
// programming error, never a recoverable condition.
func (g *Graph) checkMutable() {
	if g.frozen {
		panic("graph: mutation of a frozen generation (Clone it to build the next one)")
	}
}

// rlock/runlock take the read lock only on live graphs; frozen generations
// are immutable, so their readers skip the lock entirely.
func (g *Graph) rlock() {
	if !g.frozen {
		g.mu.RLock()
	}
}

func (g *Graph) runlock() {
	if !g.frozen {
		g.mu.RUnlock()
	}
}

// --- COW mutation helpers (callers hold mu on a live graph) ---

// mutNode returns the node for id, first copying it into this generation
// if it is still shared with a frozen parent. Returns nil for dead IDs.
func (g *Graph) mutNode(id NodeID) *Node {
	n := g.node(id)
	if n == nil || n.owner == g.owner {
		return n
	}
	c := n.clone(g.owner)
	g.nodes[id-1] = c
	return c
}

// mutRel is mutNode for relationships.
func (g *Graph) mutRel(id RelID) *Rel {
	r := g.rel(id)
	if r == nil || r.owner == g.owner {
		return r
	}
	c := r.clone(g.owner)
	g.rels[id-1] = c
	return c
}

// mutLabelSet returns the label bucket for lid, creating it if absent and
// copying it into this generation if shared.
func (g *Graph) mutLabelSet(lid labelID) *idSet {
	s := g.labelIdx[lid]
	if s == nil {
		s = newIDSet(g.owner)
		g.labelIdx[lid] = s
		return s
	}
	if s.owner != g.owner {
		s = s.clone(g.owner)
		g.labelIdx[lid] = s
	}
	return s
}

// mutIndex returns the property index for pid with its bucket directory
// owned by this generation (leaf sets stay shared until mutBucket). Nil
// when no index exists on pid.
func (g *Graph) mutIndex(pid propIdxID) *propIndex {
	idx := g.propIdx[pid]
	if idx == nil {
		return nil
	}
	if idx.owner != g.owner {
		c := &propIndex{owner: g.owner, buckets: make(map[indexKey]*idSet, len(idx.buckets))}
		for k, v := range idx.buckets {
			c.buckets[k] = v
		}
		idx = c
		g.propIdx[pid] = idx
	}
	return idx
}

// mutBucket returns the (owned) leaf set for k in an owned index, creating
// or copying as needed.
func (idx *propIndex) mutBucket(k indexKey, owner uint64) *idSet {
	s := idx.buckets[k]
	if s == nil {
		s = newIDSet(owner)
		idx.buckets[k] = s
		return s
	}
	if s.owner != owner {
		s = s.clone(owner)
		idx.buckets[k] = s
	}
	return s
}

// --- interning (callers hold mu) ---

func (g *Graph) internLabel(name string) labelID {
	if id, ok := g.labelIDs[name]; ok {
		return id
	}
	id := labelID(len(g.labelNames))
	g.labelNames = append(g.labelNames, name)
	g.labelIDs[name] = id
	return id
}

func (g *Graph) internType(name string) typeID {
	if id, ok := g.typeIDs[name]; ok {
		return id
	}
	id := typeID(len(g.typeNames))
	g.typeNames = append(g.typeNames, name)
	g.typeCounts = append(g.typeCounts, 0)
	g.typeIDs[name] = id
	return id
}

// Labels returns all label names ever used, sorted.
func (g *Graph) Labels() []string {
	g.rlock()
	defer g.runlock()
	out := make([]string, len(g.labelNames))
	copy(out, g.labelNames)
	sort.Strings(out)
	return out
}

// RelTypes returns all relationship type names ever used, sorted.
func (g *Graph) RelTypes() []string {
	g.rlock()
	defer g.runlock()
	out := make([]string, len(g.typeNames))
	copy(out, g.typeNames)
	sort.Strings(out)
	return out
}

// --- node lifecycle ---

// AddNode creates a node with the given labels and a copy of props.
func (g *Graph) AddNode(labels []string, props Props) NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	return g.addNodeLocked(labels, props)
}

func (g *Graph) addNodeLocked(labels []string, props Props) NodeID {
	g.version++
	n := &Node{
		id:    NodeID(len(g.nodes) + 1),
		owner: g.owner,
		props: props.Clone(),
	}
	if n.props == nil {
		n.props = Props{}
	}
	for _, l := range labels {
		n.labels = insertLabel(n.labels, g.internLabel(l))
	}
	g.nodes = append(g.nodes, n)
	g.nodeCount++
	for _, lid := range n.labels {
		g.indexNodeLabelLocked(n, lid)
	}
	return n.id
}

func insertLabel(ls []labelID, l labelID) []labelID {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	if i < len(ls) && ls[i] == l {
		return ls
	}
	ls = append(ls, 0)
	copy(ls[i+1:], ls[i:])
	ls[i] = l
	return ls
}

func (g *Graph) indexNodeLabelLocked(n *Node, lid labelID) {
	g.mutLabelSet(lid).ids[n.id] = struct{}{}
	// Populate any property indexes that exist for this label, and count
	// the node into the (label, key) statistics.
	for key, v := range n.props {
		g.propIndexAddLocked(lid, key, v, n.id)
		g.labelKeyCount[propIdxID{lid, key}]++
	}
}

func (g *Graph) propIndexAddLocked(lid labelID, key string, v Value, id NodeID) {
	pid := propIdxID{lid, key}
	if g.propIdx[pid] == nil {
		return
	}
	idx := g.mutIndex(pid)
	idx.mutBucket(v.key(), g.owner).ids[id] = struct{}{}
}

func (g *Graph) propIndexRemoveLocked(lid labelID, key string, v Value, id NodeID) {
	pid := propIdxID{lid, key}
	idx := g.propIdx[pid]
	if idx == nil {
		return
	}
	k := v.key()
	s := idx.buckets[k]
	if s == nil {
		return
	}
	if _, present := s.ids[id]; !present {
		return
	}
	idx = g.mutIndex(pid)
	if len(s.ids) == 1 {
		// Removing the last member: drop the bucket from the (owned)
		// directory; the shared leaf set itself is untouched.
		delete(idx.buckets, k)
		return
	}
	delete(idx.mutBucket(k, g.owner).ids, id)
}

// node returns the live node for id (callers hold mu).
func (g *Graph) node(id NodeID) *Node {
	if id == 0 || int(id) > len(g.nodes) {
		return nil
	}
	return g.nodes[id-1]
}

func (g *Graph) rel(id RelID) *Rel {
	if id == 0 || int(id) > len(g.rels) {
		return nil
	}
	return g.rels[id-1]
}

// HasNode reports whether id refers to a live node.
func (g *Graph) HasNode(id NodeID) bool {
	g.rlock()
	defer g.runlock()
	return g.node(id) != nil
}

// AddLabel adds a label to an existing node.
func (g *Graph) AddLabel(id NodeID, label string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	if g.node(id) == nil {
		return fmt.Errorf("graph: no node %d", id)
	}
	g.addLabelLocked(id, label)
	return nil
}

func (g *Graph) addLabelLocked(id NodeID, label string) {
	g.version++
	n := g.mutNode(id)
	lid := g.internLabel(label)
	before := len(n.labels)
	n.labels = insertLabel(n.labels, lid)
	if len(n.labels) != before {
		g.indexNodeLabelLocked(n, lid)
	}
}

// NodeLabels returns the node's labels, sorted by name.
func (g *Graph) NodeLabels(id NodeID) []string {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return nil
	}
	out := make([]string, len(n.labels))
	for i, lid := range n.labels {
		out[i] = g.labelNames[lid]
	}
	sort.Strings(out)
	return out
}

// NodeHasLabel reports whether the node carries label.
func (g *Graph) NodeHasLabel(id NodeID, label string) bool {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return false
	}
	lid, ok := g.labelIDs[label]
	if !ok {
		return false
	}
	i := sort.Search(len(n.labels), func(i int) bool { return n.labels[i] >= lid })
	return i < len(n.labels) && n.labels[i] == lid
}

// SetNodeProp sets (or with a Null value, clears) a node property,
// maintaining any property indexes.
func (g *Graph) SetNodeProp(id NodeID, key string, v Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	if g.node(id) == nil {
		return fmt.Errorf("graph: no node %d", id)
	}
	g.setNodePropLocked(id, key, v)
	return nil
}

func (g *Graph) setNodePropLocked(id NodeID, key string, v Value) {
	g.version++
	n := g.mutNode(id)
	old, had := n.props[key]
	if had {
		for _, lid := range n.labels {
			g.propIndexRemoveLocked(lid, key, old, id)
		}
	}
	if v.IsNull() {
		if had {
			delete(n.props, key)
			for _, lid := range n.labels {
				g.statPropRemoveLocked(lid, key)
			}
		}
		return
	}
	n.props[key] = v
	for _, lid := range n.labels {
		g.propIndexAddLocked(lid, key, v, id)
		if !had {
			g.labelKeyCount[propIdxID{lid, key}]++
		}
	}
}

// statPropRemoveLocked decrements the (label, key) node count, dropping the
// entry at zero so the statistics map doesn't accumulate dead pairs.
func (g *Graph) statPropRemoveLocked(lid labelID, key string) {
	pid := propIdxID{lid, key}
	if c := g.labelKeyCount[pid]; c <= 1 {
		delete(g.labelKeyCount, pid)
	} else {
		g.labelKeyCount[pid] = c - 1
	}
}

// NodeProp returns a node property (Null when absent or node missing).
func (g *Graph) NodeProp(id NodeID, key string) Value {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return Null()
	}
	return n.props[key]
}

// NodeProps returns a copy of the node's property map.
func (g *Graph) NodeProps(id NodeID) Props {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return nil
	}
	return n.props.Clone()
}

// DeleteNode removes a node and all its relationships (DETACH DELETE).
func (g *Graph) DeleteNode(id NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	n := g.node(id)
	if n == nil {
		return fmt.Errorf("graph: no node %d", id)
	}
	g.version++
	for _, rid := range append(append([]RelID{}, n.out...), n.in...) {
		if r := g.rel(rid); r != nil {
			g.deleteRelLocked(r)
		}
	}
	// deleteRelLocked may have COW-copied the node (self-loops); n itself
	// is only read below, so the stale pointer is fine for props/labels.
	for _, lid := range n.labels {
		delete(g.mutLabelSet(lid).ids, id)
		for key, v := range n.props {
			g.propIndexRemoveLocked(lid, key, v, id)
			g.statPropRemoveLocked(lid, key)
		}
	}
	g.nodes[id-1] = nil
	g.nodeCount--
	return nil
}

// --- relationships ---

// AddRel creates a relationship of the given type from→to with a copy of
// props.
func (g *Graph) AddRel(typ string, from, to NodeID, props Props) (RelID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	return g.addRelLocked(typ, from, to, props)
}

func (g *Graph) addRelLocked(typ string, from, to NodeID, props Props) (RelID, error) {
	if g.node(from) == nil || g.node(to) == nil {
		return 0, fmt.Errorf("graph: relationship %s endpoints %d->%d: missing node", typ, from, to)
	}
	g.version++
	r := &Rel{
		id:    RelID(len(g.rels) + 1),
		owner: g.owner,
		typ:   g.internType(typ),
		from:  from,
		to:    to,
		props: props.Clone(),
	}
	if r.props == nil {
		r.props = Props{}
	}
	g.rels = append(g.rels, r)
	g.relCount++
	g.typeCounts[r.typ]++
	fn := g.mutNode(from)
	fn.out = append(fn.out, r.id)
	tn := g.mutNode(to)
	tn.in = append(tn.in, r.id)
	return r.id, nil
}

func (g *Graph) deleteRelLocked(r *Rel) {
	g.version++
	if fn := g.mutNode(r.from); fn != nil {
		fn.out = removeID(fn.out, r.id)
	}
	if tn := g.mutNode(r.to); tn != nil {
		tn.in = removeID(tn.in, r.id)
	}
	g.rels[r.id-1] = nil
	g.relCount--
	g.typeCounts[r.typ]--
}

func removeID(ids []RelID, id RelID) []RelID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// DeleteRel removes a relationship.
func (g *Graph) DeleteRel(id RelID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	r := g.rel(id)
	if r == nil {
		return fmt.Errorf("graph: no relationship %d", id)
	}
	g.deleteRelLocked(r)
	return nil
}

// RelType returns the relationship's type name.
func (g *Graph) RelType(id RelID) string {
	g.rlock()
	defer g.runlock()
	r := g.rel(id)
	if r == nil {
		return ""
	}
	return g.typeNames[r.typ]
}

// RelEndpoints returns the from and to node IDs (0,0 when missing).
func (g *Graph) RelEndpoints(id RelID) (NodeID, NodeID) {
	g.rlock()
	defer g.runlock()
	r := g.rel(id)
	if r == nil {
		return 0, 0
	}
	return r.from, r.to
}

// SetRelProp sets (or clears, with Null) a relationship property.
func (g *Graph) SetRelProp(id RelID, key string, v Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	if g.rel(id) == nil {
		return fmt.Errorf("graph: no relationship %d", id)
	}
	g.version++
	r := g.mutRel(id)
	if v.IsNull() {
		delete(r.props, key)
	} else {
		r.props[key] = v
	}
	return nil
}

// RelProp returns a relationship property (Null when absent).
func (g *Graph) RelProp(id RelID, key string) Value {
	g.rlock()
	defer g.runlock()
	r := g.rel(id)
	if r == nil {
		return Null()
	}
	return r.props[key]
}

// RelProps returns a copy of the relationship's property map.
func (g *Graph) RelProps(id RelID) Props {
	g.rlock()
	defer g.runlock()
	r := g.rel(id)
	if r == nil {
		return nil
	}
	return r.props.Clone()
}

// --- traversal ---

// Dir selects traversal direction relative to a node.
type Dir uint8

const (
	// DirOut follows relationships leaving the node.
	DirOut Dir = iota
	// DirIn follows relationships entering the node.
	DirIn
	// DirBoth follows relationships in either direction.
	DirBoth
)

// Rels appends to buf the IDs of relationships incident to node id in the
// given direction, optionally filtered to the named types (nil/empty =
// all). It returns the extended buffer, enabling allocation reuse in the
// query executor's hot path.
func (g *Graph) Rels(id NodeID, dir Dir, types []string, buf []RelID) []RelID {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return buf
	}
	var want []typeID
	if len(types) > 0 {
		want = make([]typeID, 0, len(types))
		for _, t := range types {
			tid, ok := g.typeIDs[t]
			if !ok {
				continue // type never used: matches nothing
			}
			want = append(want, tid)
		}
		if len(want) == 0 {
			return buf
		}
	}
	match := func(r *Rel) bool {
		if want == nil {
			return true
		}
		for _, w := range want {
			if r.typ == w {
				return true
			}
		}
		return false
	}
	if dir == DirOut || dir == DirBoth {
		for _, rid := range n.out {
			if r := g.rel(rid); r != nil && match(r) {
				buf = append(buf, rid)
			}
		}
	}
	if dir == DirIn || dir == DirBoth {
		for _, rid := range n.in {
			if r := g.rel(rid); r != nil && match(r) {
				// A self-loop already appeared in the out scan.
				if dir == DirBoth && r.from == r.to {
					continue
				}
				buf = append(buf, rid)
			}
		}
	}
	return buf
}

// Degree returns the number of incident relationships in the given
// direction, optionally filtered by type.
func (g *Graph) Degree(id NodeID, dir Dir, types []string) int {
	return len(g.Rels(id, dir, types, nil))
}

// --- scans & indexes ---

// EachNode calls fn for every live node until fn returns false.
func (g *Graph) EachNode(fn func(NodeID) bool) {
	g.rlock()
	defer g.runlock()
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		if !fn(n.id) {
			return
		}
	}
}

// EachRel calls fn for every live relationship until fn returns false.
func (g *Graph) EachRel(fn func(RelID) bool) {
	g.rlock()
	defer g.runlock()
	for _, r := range g.rels {
		if r == nil {
			continue
		}
		if !fn(r.id) {
			return
		}
	}
}

// NodesByLabel returns the IDs of all nodes carrying label, in ascending
// order.
func (g *Graph) NodesByLabel(label string) []NodeID {
	g.rlock()
	defer g.runlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return nil
	}
	var out []NodeID
	if set := g.labelIdx[lid]; set != nil {
		out = make([]NodeID, 0, len(set.ids))
		for id := range set.ids {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountByLabel returns the number of nodes carrying label.
func (g *Graph) CountByLabel(label string) int {
	g.rlock()
	defer g.runlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return 0
	}
	if set := g.labelIdx[lid]; set != nil {
		return len(set.ids)
	}
	return 0
}

// EnsureIndex creates (and backfills) a hash index on (label, property) if
// it does not already exist.
func (g *Graph) EnsureIndex(label, key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	g.ensureIndexLocked(label, key)
}

func (g *Graph) ensureIndexLocked(label, key string) *propIndex {
	lid := g.internLabel(label)
	pid := propIdxID{lid, key}
	if idx, ok := g.propIdx[pid]; ok {
		return idx
	}
	idx := &propIndex{owner: g.owner, buckets: make(map[indexKey]*idSet)}
	g.propIdx[pid] = idx
	if set := g.labelIdx[lid]; set != nil {
		for id := range set.ids {
			n := g.node(id)
			if n == nil {
				continue
			}
			if v, ok := n.props[key]; ok {
				idx.mutBucket(v.key(), g.owner).ids[id] = struct{}{}
			}
		}
	}
	return idx
}

// HasIndex reports whether an index exists on (label, key).
func (g *Graph) HasIndex(label, key string) bool {
	g.rlock()
	defer g.runlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return false
	}
	_, ok = g.propIdx[propIdxID{lid, key}]
	return ok
}

// NodesByProp returns nodes with label whose property key equals v. It uses
// the (label,key) index when present and otherwise falls back to scanning
// the label's nodes.
func (g *Graph) NodesByProp(label, key string, v Value) []NodeID {
	g.rlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		g.runlock()
		return nil
	}
	if idx, ok := g.propIdx[propIdxID{lid, key}]; ok {
		var out []NodeID
		if set := idx.buckets[v.key()]; set != nil {
			out = make([]NodeID, 0, len(set.ids))
			for id := range set.ids {
				out = append(out, id)
			}
		}
		g.runlock()
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	var out []NodeID
	if set := g.labelIdx[lid]; set != nil {
		for id := range set.ids {
			n := g.node(id)
			if n == nil {
				continue
			}
			if pv, ok := n.props[key]; ok && pv.Equal(v) {
				out = append(out, id)
			}
		}
	}
	g.runlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MergeNode finds the node with the given label whose identity property
// key equals v, creating it (with extraLabels and props) when absent.
// It reports whether the node was created. When the node exists, props are
// merged in (existing values win) and extraLabels are added — mirroring the
// upsert semantics of the IYP importers.
func (g *Graph) MergeNode(label, key string, v Value, extraLabels []string, props Props) (NodeID, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	return g.mergeNodeLocked(label, key, v, extraLabels, props)
}

func (g *Graph) mergeNodeLocked(label, key string, v Value, extraLabels []string, props Props) (NodeID, bool) {
	// Identity lookups always deserve an index.
	idx := g.ensureIndexLocked(label, key)
	if set := idx.buckets[v.key()]; set != nil && len(set.ids) > 0 {
		g.version++ // merged labels/props below mutate the node in place
		var id NodeID
		for nid := range set.ids {
			if id == 0 || nid < id {
				id = nid
			}
		}
		n := g.mutNode(id)
		for _, l := range extraLabels {
			elid := g.internLabel(l)
			before := len(n.labels)
			n.labels = insertLabel(n.labels, elid)
			if len(n.labels) != before {
				g.indexNodeLabelLocked(n, elid)
			}
		}
		for k, pv := range props {
			if _, exists := n.props[k]; !exists {
				n.props[k] = pv
				for _, l := range n.labels {
					g.propIndexAddLocked(l, k, pv, id)
					g.labelKeyCount[propIdxID{l, k}]++
				}
			}
		}
		return id, false
	}
	all := props.Clone()
	if all == nil {
		all = Props{}
	}
	all[key] = v
	labels := append([]string{label}, extraLabels...)
	id := g.addNodeLocked(labels, all)
	return id, true
}

// NumNodes returns the live node count.
func (g *Graph) NumNodes() int {
	g.rlock()
	defer g.runlock()
	return g.nodeCount
}

// NumRels returns the live relationship count.
func (g *Graph) NumRels() int {
	g.rlock()
	defer g.runlock()
	return g.relCount
}
