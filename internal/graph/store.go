package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node. IDs are assigned sequentially starting at 1; 0
// is never a valid ID.
type NodeID uint64

// RelID identifies a relationship, with the same conventions as NodeID.
type RelID uint64

type labelID uint16
type typeID uint16

// Node is a labeled property vertex. Fields are unexported; all access goes
// through methods so the store can synchronize and maintain indexes.
type Node struct {
	id     NodeID
	labels []labelID // sorted
	props  Props
	out    []RelID
	in     []RelID
}

// Rel is a typed, directed edge with properties.
type Rel struct {
	id    RelID
	typ   typeID
	from  NodeID
	to    NodeID
	props Props
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// ID returns the relationship's identifier.
func (r *Rel) ID() RelID { return r.id }

// From returns the source node ID.
func (r *Rel) From() NodeID { return r.from }

// To returns the destination node ID.
func (r *Rel) To() NodeID { return r.to }

// Other returns the endpoint of r that is not n.
func (r *Rel) Other(n NodeID) NodeID {
	if r.from == n {
		return r.to
	}
	return r.from
}

type propIdxID struct {
	label labelID
	key   string
}

// Graph is the in-memory property graph. All exported methods are safe for
// concurrent use; reads proceed in parallel under an RWMutex.
type Graph struct {
	mu sync.RWMutex

	labelNames []string
	labelIDs   map[string]labelID
	typeNames  []string
	typeIDs    map[string]typeID

	nodes []*Node // index id-1; nil = deleted
	rels  []*Rel

	labelIdx map[labelID]map[NodeID]struct{}
	propIdx  map[propIdxID]map[indexKey]map[NodeID]struct{}

	nodeCount int
	relCount  int

	// Planner statistics, maintained incrementally alongside the indexes
	// (and rebuilt in one pass on snapshot load): live relationship count
	// per type, and the number of nodes per (label, property-key) pair.
	// Guarded by mu; see stats.go for the read API.
	typeCounts    []int
	labelKeyCount map[propIdxID]int

	// version counts mutations; derived read-optimized structures (the
	// analytics CSR views) key their caches on it. Guarded by mu.
	version uint64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		labelIDs:      make(map[string]labelID),
		typeIDs:       make(map[string]typeID),
		labelIdx:      make(map[labelID]map[NodeID]struct{}),
		propIdx:       make(map[propIdxID]map[indexKey]map[NodeID]struct{}),
		labelKeyCount: make(map[propIdxID]int),
	}
}

// --- interning (callers hold mu) ---

func (g *Graph) internLabel(name string) labelID {
	if id, ok := g.labelIDs[name]; ok {
		return id
	}
	id := labelID(len(g.labelNames))
	g.labelNames = append(g.labelNames, name)
	g.labelIDs[name] = id
	return id
}

func (g *Graph) internType(name string) typeID {
	if id, ok := g.typeIDs[name]; ok {
		return id
	}
	id := typeID(len(g.typeNames))
	g.typeNames = append(g.typeNames, name)
	g.typeCounts = append(g.typeCounts, 0)
	g.typeIDs[name] = id
	return id
}

// Labels returns all label names ever used, sorted.
func (g *Graph) Labels() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, len(g.labelNames))
	copy(out, g.labelNames)
	sort.Strings(out)
	return out
}

// RelTypes returns all relationship type names ever used, sorted.
func (g *Graph) RelTypes() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, len(g.typeNames))
	copy(out, g.typeNames)
	sort.Strings(out)
	return out
}

// --- node lifecycle ---

// AddNode creates a node with the given labels and a copy of props.
func (g *Graph) AddNode(labels []string, props Props) NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addNodeLocked(labels, props)
}

func (g *Graph) addNodeLocked(labels []string, props Props) NodeID {
	g.version++
	n := &Node{
		id:    NodeID(len(g.nodes) + 1),
		props: props.Clone(),
	}
	if n.props == nil {
		n.props = Props{}
	}
	for _, l := range labels {
		n.labels = insertLabel(n.labels, g.internLabel(l))
	}
	g.nodes = append(g.nodes, n)
	g.nodeCount++
	for _, lid := range n.labels {
		g.indexNodeLabelLocked(n, lid)
	}
	return n.id
}

func insertLabel(ls []labelID, l labelID) []labelID {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	if i < len(ls) && ls[i] == l {
		return ls
	}
	ls = append(ls, 0)
	copy(ls[i+1:], ls[i:])
	ls[i] = l
	return ls
}

func (g *Graph) indexNodeLabelLocked(n *Node, lid labelID) {
	set := g.labelIdx[lid]
	if set == nil {
		set = make(map[NodeID]struct{})
		g.labelIdx[lid] = set
	}
	set[n.id] = struct{}{}
	// Populate any property indexes that exist for this label, and count
	// the node into the (label, key) statistics.
	for key, v := range n.props {
		g.propIndexAddLocked(lid, key, v, n.id)
		g.labelKeyCount[propIdxID{lid, key}]++
	}
}

func (g *Graph) propIndexAddLocked(lid labelID, key string, v Value, id NodeID) {
	idx, ok := g.propIdx[propIdxID{lid, key}]
	if !ok {
		return
	}
	k := v.key()
	set := idx[k]
	if set == nil {
		set = make(map[NodeID]struct{})
		idx[k] = set
	}
	set[id] = struct{}{}
}

func (g *Graph) propIndexRemoveLocked(lid labelID, key string, v Value, id NodeID) {
	idx, ok := g.propIdx[propIdxID{lid, key}]
	if !ok {
		return
	}
	k := v.key()
	if set := idx[k]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(idx, k)
		}
	}
}

// node returns the live node for id (callers hold mu).
func (g *Graph) node(id NodeID) *Node {
	if id == 0 || int(id) > len(g.nodes) {
		return nil
	}
	return g.nodes[id-1]
}

func (g *Graph) rel(id RelID) *Rel {
	if id == 0 || int(id) > len(g.rels) {
		return nil
	}
	return g.rels[id-1]
}

// HasNode reports whether id refers to a live node.
func (g *Graph) HasNode(id NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.node(id) != nil
}

// AddLabel adds a label to an existing node.
func (g *Graph) AddLabel(id NodeID, label string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.node(id)
	if n == nil {
		return fmt.Errorf("graph: no node %d", id)
	}
	g.addLabelLocked(n, label)
	return nil
}

func (g *Graph) addLabelLocked(n *Node, label string) {
	g.version++
	lid := g.internLabel(label)
	before := len(n.labels)
	n.labels = insertLabel(n.labels, lid)
	if len(n.labels) != before {
		g.indexNodeLabelLocked(n, lid)
	}
}

// NodeLabels returns the node's labels, sorted by name.
func (g *Graph) NodeLabels(id NodeID) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := g.node(id)
	if n == nil {
		return nil
	}
	out := make([]string, len(n.labels))
	for i, lid := range n.labels {
		out[i] = g.labelNames[lid]
	}
	sort.Strings(out)
	return out
}

// NodeHasLabel reports whether the node carries label.
func (g *Graph) NodeHasLabel(id NodeID, label string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := g.node(id)
	if n == nil {
		return false
	}
	lid, ok := g.labelIDs[label]
	if !ok {
		return false
	}
	i := sort.Search(len(n.labels), func(i int) bool { return n.labels[i] >= lid })
	return i < len(n.labels) && n.labels[i] == lid
}

// SetNodeProp sets (or with a Null value, clears) a node property,
// maintaining any property indexes.
func (g *Graph) SetNodeProp(id NodeID, key string, v Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.node(id)
	if n == nil {
		return fmt.Errorf("graph: no node %d", id)
	}
	g.setNodePropLocked(n, id, key, v)
	return nil
}

func (g *Graph) setNodePropLocked(n *Node, id NodeID, key string, v Value) {
	g.version++
	old, had := n.props[key]
	if had {
		for _, lid := range n.labels {
			g.propIndexRemoveLocked(lid, key, old, id)
		}
	}
	if v.IsNull() {
		if had {
			delete(n.props, key)
			for _, lid := range n.labels {
				g.statPropRemoveLocked(lid, key)
			}
		}
		return
	}
	n.props[key] = v
	for _, lid := range n.labels {
		g.propIndexAddLocked(lid, key, v, id)
		if !had {
			g.labelKeyCount[propIdxID{lid, key}]++
		}
	}
}

// statPropRemoveLocked decrements the (label, key) node count, dropping the
// entry at zero so the statistics map doesn't accumulate dead pairs.
func (g *Graph) statPropRemoveLocked(lid labelID, key string) {
	pid := propIdxID{lid, key}
	if c := g.labelKeyCount[pid]; c <= 1 {
		delete(g.labelKeyCount, pid)
	} else {
		g.labelKeyCount[pid] = c - 1
	}
}

// NodeProp returns a node property (Null when absent or node missing).
func (g *Graph) NodeProp(id NodeID, key string) Value {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := g.node(id)
	if n == nil {
		return Null()
	}
	return n.props[key]
}

// NodeProps returns a copy of the node's property map.
func (g *Graph) NodeProps(id NodeID) Props {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := g.node(id)
	if n == nil {
		return nil
	}
	return n.props.Clone()
}

// DeleteNode removes a node and all its relationships (DETACH DELETE).
func (g *Graph) DeleteNode(id NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.node(id)
	if n == nil {
		return fmt.Errorf("graph: no node %d", id)
	}
	g.version++
	for _, rid := range append(append([]RelID{}, n.out...), n.in...) {
		if r := g.rel(rid); r != nil {
			g.deleteRelLocked(r)
		}
	}
	for _, lid := range n.labels {
		delete(g.labelIdx[lid], id)
		for key, v := range n.props {
			g.propIndexRemoveLocked(lid, key, v, id)
			g.statPropRemoveLocked(lid, key)
		}
	}
	g.nodes[id-1] = nil
	g.nodeCount--
	return nil
}

// --- relationships ---

// AddRel creates a relationship of the given type from→to with a copy of
// props.
func (g *Graph) AddRel(typ string, from, to NodeID, props Props) (RelID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addRelLocked(typ, from, to, props)
}

func (g *Graph) addRelLocked(typ string, from, to NodeID, props Props) (RelID, error) {
	fn, tn := g.node(from), g.node(to)
	if fn == nil || tn == nil {
		return 0, fmt.Errorf("graph: relationship %s endpoints %d->%d: missing node", typ, from, to)
	}
	g.version++
	r := &Rel{
		id:    RelID(len(g.rels) + 1),
		typ:   g.internType(typ),
		from:  from,
		to:    to,
		props: props.Clone(),
	}
	if r.props == nil {
		r.props = Props{}
	}
	g.rels = append(g.rels, r)
	g.relCount++
	g.typeCounts[r.typ]++
	fn.out = append(fn.out, r.id)
	tn.in = append(tn.in, r.id)
	return r.id, nil
}

func (g *Graph) deleteRelLocked(r *Rel) {
	g.version++
	if fn := g.node(r.from); fn != nil {
		fn.out = removeID(fn.out, r.id)
	}
	if tn := g.node(r.to); tn != nil {
		tn.in = removeID(tn.in, r.id)
	}
	g.rels[r.id-1] = nil
	g.relCount--
	g.typeCounts[r.typ]--
}

func removeID(ids []RelID, id RelID) []RelID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// DeleteRel removes a relationship.
func (g *Graph) DeleteRel(id RelID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.rel(id)
	if r == nil {
		return fmt.Errorf("graph: no relationship %d", id)
	}
	g.deleteRelLocked(r)
	return nil
}

// RelType returns the relationship's type name.
func (g *Graph) RelType(id RelID) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r := g.rel(id)
	if r == nil {
		return ""
	}
	return g.typeNames[r.typ]
}

// RelEndpoints returns the from and to node IDs (0,0 when missing).
func (g *Graph) RelEndpoints(id RelID) (NodeID, NodeID) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r := g.rel(id)
	if r == nil {
		return 0, 0
	}
	return r.from, r.to
}

// SetRelProp sets (or clears, with Null) a relationship property.
func (g *Graph) SetRelProp(id RelID, key string, v Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.rel(id)
	if r == nil {
		return fmt.Errorf("graph: no relationship %d", id)
	}
	g.version++
	if v.IsNull() {
		delete(r.props, key)
	} else {
		r.props[key] = v
	}
	return nil
}

// RelProp returns a relationship property (Null when absent).
func (g *Graph) RelProp(id RelID, key string) Value {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r := g.rel(id)
	if r == nil {
		return Null()
	}
	return r.props[key]
}

// RelProps returns a copy of the relationship's property map.
func (g *Graph) RelProps(id RelID) Props {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r := g.rel(id)
	if r == nil {
		return nil
	}
	return r.props.Clone()
}

// --- traversal ---

// Dir selects traversal direction relative to a node.
type Dir uint8

const (
	// DirOut follows relationships leaving the node.
	DirOut Dir = iota
	// DirIn follows relationships entering the node.
	DirIn
	// DirBoth follows relationships in either direction.
	DirBoth
)

// Rels appends to buf the IDs of relationships incident to node id in the
// given direction, optionally filtered to the named types (nil/empty =
// all). It returns the extended buffer, enabling allocation reuse in the
// query executor's hot path.
func (g *Graph) Rels(id NodeID, dir Dir, types []string, buf []RelID) []RelID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := g.node(id)
	if n == nil {
		return buf
	}
	var want []typeID
	if len(types) > 0 {
		want = make([]typeID, 0, len(types))
		for _, t := range types {
			tid, ok := g.typeIDs[t]
			if !ok {
				continue // type never used: matches nothing
			}
			want = append(want, tid)
		}
		if len(want) == 0 {
			return buf
		}
	}
	match := func(r *Rel) bool {
		if want == nil {
			return true
		}
		for _, w := range want {
			if r.typ == w {
				return true
			}
		}
		return false
	}
	if dir == DirOut || dir == DirBoth {
		for _, rid := range n.out {
			if r := g.rel(rid); r != nil && match(r) {
				buf = append(buf, rid)
			}
		}
	}
	if dir == DirIn || dir == DirBoth {
		for _, rid := range n.in {
			if r := g.rel(rid); r != nil && match(r) {
				// A self-loop already appeared in the out scan.
				if dir == DirBoth && r.from == r.to {
					continue
				}
				buf = append(buf, rid)
			}
		}
	}
	return buf
}

// Degree returns the number of incident relationships in the given
// direction, optionally filtered by type.
func (g *Graph) Degree(id NodeID, dir Dir, types []string) int {
	return len(g.Rels(id, dir, types, nil))
}

// --- scans & indexes ---

// EachNode calls fn for every live node until fn returns false.
func (g *Graph) EachNode(fn func(NodeID) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		if !fn(n.id) {
			return
		}
	}
}

// EachRel calls fn for every live relationship until fn returns false.
func (g *Graph) EachRel(fn func(RelID) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, r := range g.rels {
		if r == nil {
			continue
		}
		if !fn(r.id) {
			return
		}
	}
}

// NodesByLabel returns the IDs of all nodes carrying label, in ascending
// order.
func (g *Graph) NodesByLabel(label string) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return nil
	}
	set := g.labelIdx[lid]
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountByLabel returns the number of nodes carrying label.
func (g *Graph) CountByLabel(label string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return 0
	}
	return len(g.labelIdx[lid])
}

// EnsureIndex creates (and backfills) a hash index on (label, property) if
// it does not already exist.
func (g *Graph) EnsureIndex(label, key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensureIndexLocked(label, key)
}

func (g *Graph) ensureIndexLocked(label, key string) map[indexKey]map[NodeID]struct{} {
	lid := g.internLabel(label)
	pid := propIdxID{lid, key}
	if idx, ok := g.propIdx[pid]; ok {
		return idx
	}
	idx := make(map[indexKey]map[NodeID]struct{})
	g.propIdx[pid] = idx
	for id := range g.labelIdx[lid] {
		n := g.node(id)
		if n == nil {
			continue
		}
		if v, ok := n.props[key]; ok {
			g.propIndexAddLocked(lid, key, v, id)
		}
	}
	return idx
}

// HasIndex reports whether an index exists on (label, key).
func (g *Graph) HasIndex(label, key string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return false
	}
	_, ok = g.propIdx[propIdxID{lid, key}]
	return ok
}

// NodesByProp returns nodes with label whose property key equals v. It uses
// the (label,key) index when present and otherwise falls back to scanning
// the label's nodes.
func (g *Graph) NodesByProp(label, key string, v Value) []NodeID {
	g.mu.RLock()
	lid, ok := g.labelIDs[label]
	if !ok {
		g.mu.RUnlock()
		return nil
	}
	if idx, ok := g.propIdx[propIdxID{lid, key}]; ok {
		set := idx[v.key()]
		out := make([]NodeID, 0, len(set))
		for id := range set {
			out = append(out, id)
		}
		g.mu.RUnlock()
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	var out []NodeID
	for id := range g.labelIdx[lid] {
		n := g.node(id)
		if n == nil {
			continue
		}
		if pv, ok := n.props[key]; ok && pv.Equal(v) {
			out = append(out, id)
		}
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MergeNode finds the node with the given label whose identity property
// key equals v, creating it (with extraLabels and props) when absent.
// It reports whether the node was created. When the node exists, props are
// merged in (existing values win) and extraLabels are added — mirroring the
// upsert semantics of the IYP importers.
func (g *Graph) MergeNode(label, key string, v Value, extraLabels []string, props Props) (NodeID, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.mergeNodeLocked(label, key, v, extraLabels, props)
}

func (g *Graph) mergeNodeLocked(label, key string, v Value, extraLabels []string, props Props) (NodeID, bool) {
	// Identity lookups always deserve an index.
	idx := g.ensureIndexLocked(label, key)
	if set := idx[v.key()]; len(set) > 0 {
		g.version++ // merged labels/props below mutate the node in place
		var id NodeID
		for nid := range set {
			if id == 0 || nid < id {
				id = nid
			}
		}
		n := g.node(id)
		for _, l := range extraLabels {
			elid := g.internLabel(l)
			before := len(n.labels)
			n.labels = insertLabel(n.labels, elid)
			if len(n.labels) != before {
				g.indexNodeLabelLocked(n, elid)
			}
		}
		for k, pv := range props {
			if _, exists := n.props[k]; !exists {
				n.props[k] = pv
				for _, l := range n.labels {
					g.propIndexAddLocked(l, k, pv, id)
					g.labelKeyCount[propIdxID{l, k}]++
				}
			}
		}
		return id, false
	}
	all := props.Clone()
	if all == nil {
		all = Props{}
	}
	all[key] = v
	labels := append([]string{label}, extraLabels...)
	id := g.addNodeLocked(labels, all)
	return id, true
}

// NumNodes returns the live node count.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodeCount
}

// NumRels returns the live relationship count.
func (g *Graph) NumRels() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.relCount
}
