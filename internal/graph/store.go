package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node. IDs are assigned sequentially starting at 1; 0
// is never a valid ID.
type NodeID uint64

// RelID identifies a relationship, with the same conventions as NodeID.
type RelID uint64

type labelID uint16
type typeID uint16

// lsetID names one distinct sorted label combination in the graph's
// label-set dictionary (g.lsets); 0 is always the empty set. Real graphs
// have millions of nodes but only dozens of label combinations, so a node
// carries one 4-byte id instead of a heap-allocated label slice.
type lsetID uint32

// ownerTokens hands out ownership stamps for the copy-on-write machinery.
// Every Graph (fresh, loaded, or cloned) gets a unique token; a node,
// relationship, or index bucket whose stamp differs from its graph's token
// is structurally shared with an older generation and must be copied
// before it is mutated.
var ownerTokens atomic.Uint64

func newOwnerToken() uint64 { return ownerTokens.Add(1) }

// centry is one property in the columnar layout: an interned key id, the
// value kind, and a fixed-size payload. Strings and lists live in the
// lineage-shared Interner and are referenced by id, so a property entry is
// 16 bytes regardless of payload size and values shared across generations
// (or repeated across nodes — provenance strings, dataset URLs) are stored
// once. Entries are kept sorted by key id.
type centry struct {
	key  uint32
	kind Kind
	flag uint8  // bool payload
	num  uint64 // int bits / float bits / string id / list id
}

// Node is a labeled property vertex. Fields are unexported; all access goes
// through methods so the store can synchronize and maintain indexes.
type Node struct {
	id     NodeID
	owner  uint64 // COW stamp: which graph generation may mutate this struct
	lset   lsetID // label-set id into the graph's label-set dictionary
	cprops []centry
	out    []RelID
	in     []RelID
}

// Rel is a typed, directed edge with properties.
type Rel struct {
	id     RelID
	owner  uint64 // COW stamp, as on Node
	typ    typeID
	from   NodeID
	to     NodeID
	cprops []centry
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// ID returns the relationship's identifier.
func (r *Rel) ID() RelID { return r.id }

// From returns the source node ID.
func (r *Rel) From() NodeID { return r.from }

// To returns the destination node ID.
func (r *Rel) To() NodeID { return r.to }

// Other returns the endpoint of r that is not n.
func (r *Rel) Other(n NodeID) NodeID {
	if r.from == n {
		return r.to
	}
	return r.from
}

// clone returns a deep-enough copy of n owned by the given generation:
// the property column and adjacency slices are copied; interned payloads
// (immutable) are shared through the dictionary.
func (n *Node) clone(owner uint64) *Node {
	return &Node{
		id:     n.id,
		owner:  owner,
		lset:   n.lset,
		cprops: append([]centry(nil), n.cprops...),
		out:    append([]RelID(nil), n.out...),
		in:     append([]RelID(nil), n.in...),
	}
}

func (r *Rel) clone(owner uint64) *Rel {
	return &Rel{
		id:     r.id,
		owner:  owner,
		typ:    r.typ,
		from:   r.from,
		to:     r.to,
		cprops: append([]centry(nil), r.cprops...),
	}
}

// propIdxID names one (label, property-key) index; the key is an Interner
// string id, so building and probing indexes never hashes key strings.
type propIdxID struct {
	label labelID
	key   uint32
}

// idSet is a node-ID set with a COW ownership stamp — the bucket type of
// the label index and of each property-index value bucket. It is a hybrid
// of a sorted immutable base slice and a small delta map: bulk builds and
// snapshot loads append monotonically increasing IDs straight onto the
// base (dense, cache-friendly, and shared wholesale by COW clones), while
// out-of-order additions and deletions land in the delta. A clone shares
// the base and copies only the delta, so cloning a million-node label
// bucket is O(delta), not O(members).
type idSet struct {
	owner uint64
	base  []NodeID        // sorted ascending
	dirty map[NodeID]bool // overrides: true = added (not in base), false = removed from base
	n     int             // live membership count
}

func newIDSet(owner uint64) *idSet {
	return &idSet{owner: owner}
}

func (s *idSet) clone(owner uint64) *idSet {
	c := &idSet{
		owner: owner,
		// Full slice expression: a sibling clone appending to the shared
		// base array must reallocate rather than write into our view.
		base: s.base[:len(s.base):len(s.base)],
		n:    s.n,
	}
	if len(s.dirty) > 0 {
		c.dirty = make(map[NodeID]bool, len(s.dirty))
		for id, v := range s.dirty {
			c.dirty[id] = v
		}
	}
	return c
}

func (s *idSet) inBase(id NodeID) bool {
	i := sort.Search(len(s.base), func(i int) bool { return s.base[i] >= id })
	return i < len(s.base) && s.base[i] == id
}

func (s *idSet) has(id NodeID) bool {
	if v, ok := s.dirty[id]; ok {
		return v
	}
	return s.inBase(id)
}

func (s *idSet) add(id NodeID) {
	if v, ok := s.dirty[id]; ok {
		if v {
			return
		}
		delete(s.dirty, id) // back into the base
		s.n++
		return
	}
	if s.inBase(id) {
		return
	}
	s.n++
	if len(s.base) == 0 || id > s.base[len(s.base)-1] {
		s.base = append(s.base, id) // in-order fast path
		return
	}
	if s.dirty == nil {
		s.dirty = make(map[NodeID]bool)
	}
	s.dirty[id] = true
}

func (s *idSet) remove(id NodeID) {
	if v, ok := s.dirty[id]; ok {
		if !v {
			return
		}
		delete(s.dirty, id)
		s.n--
		return
	}
	if !s.inBase(id) {
		return
	}
	if s.dirty == nil {
		s.dirty = make(map[NodeID]bool)
	}
	s.dirty[id] = false
	s.n--
}

// sorted returns the live members ascending. When the set has no delta the
// base is returned directly — callers must treat the result as read-only.
func (s *idSet) sorted() []NodeID {
	if len(s.dirty) == 0 {
		return s.base
	}
	var added []NodeID
	for id, v := range s.dirty {
		if v {
			added = append(added, id)
		}
	}
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	out := make([]NodeID, 0, s.n)
	ai := 0
	for _, id := range s.base {
		for ai < len(added) && added[ai] < id {
			out = append(out, added[ai])
			ai++
		}
		if v, ok := s.dirty[id]; ok && !v {
			continue
		}
		out = append(out, id)
	}
	out = append(out, added[ai:]...)
	return out
}

// each calls fn for every live member in ascending order until fn returns
// false.
func (s *idSet) each(fn func(NodeID) bool) {
	for _, id := range s.sorted() {
		if !fn(id) {
			return
		}
	}
}

// min returns the smallest live member (0 when empty).
func (s *idSet) min() NodeID {
	if len(s.dirty) == 0 {
		if len(s.base) == 0 {
			return 0
		}
		return s.base[0]
	}
	var best NodeID
	s.each(func(id NodeID) bool {
		best = id
		return false
	})
	return best
}

// propIndex is one (label, key) hash index: value bucket map plus a COW
// stamp for the bucket map itself (leaf sets carry their own stamps).
type propIndex struct {
	owner   uint64
	buckets map[ckey]*idSet
}

// ckey is the columnar index-bucket key: the value kind plus a fixed-size
// payload in which strings and lists appear as Interner ids. Probing an
// index with a string no node carries therefore fails at the dictionary
// lookup, before touching any bucket. Integral floats normalize to the int
// encoding so Int(2) and Float(2.0) collide, matching Value.Equal — the
// same invariant indexKey (value.go) maintains for DISTINCT/grouping.
type ckey struct {
	kind Kind
	b    bool
	num  uint64
}

// Graph is the in-memory property graph. All exported methods are safe for
// concurrent use; reads on a live graph proceed in parallel under an
// RWMutex, while reads on a frozen graph (see Freeze) skip the lock
// entirely — a frozen graph is an immutable generation and its read path
// is lock-free by construction.
type Graph struct {
	mu sync.RWMutex

	// frozen marks the graph an immutable generation: reads skip the lock,
	// mutations panic (ApplyBatch returns ErrFrozen). Set once by Freeze,
	// which must happen-before the graph is shared with lock-free readers
	// (MVStore publishes frozen graphs through an atomic pointer, which
	// provides that ordering).
	frozen bool
	// owner is this graph's COW stamp (see ownerTokens).
	owner uint64

	// dict is the lineage-shared string/list dictionary. Clones share it;
	// loaders may be seeded with an existing one (replica reloads, delta
	// builds) so unchanged strings are reused instead of re-allocated.
	dict *Interner

	labelNames []string
	labelIDs   map[string]labelID
	typeNames  []string
	typeIDs    map[string]typeID

	// lsets is the label-set dictionary: lsetID → sorted label ids.
	// Entry 0 is the empty set. Append-only; clones share the table
	// (capacity-capped) and copy the small lookup map.
	lsets   [][]labelID
	lsetIDs map[string]lsetID

	nodes []*Node // index id-1; nil = deleted
	rels  []*Rel

	labelIdx map[labelID]*idSet
	propIdx  map[propIdxID]*propIndex

	nodeCount int
	relCount  int

	// Planner statistics, maintained incrementally alongside the indexes
	// (and rebuilt in one pass on snapshot load): live relationship count
	// per type, and the number of nodes per (label, property-key) pair.
	// Guarded by mu; see stats.go for the read API.
	typeCounts    []int
	labelKeyCount map[propIdxID]int

	// version counts mutations; derived read-optimized structures (the
	// analytics CSR views) key their caches on it. Guarded by mu.
	version uint64
}

// New returns an empty graph with a fresh dictionary.
func New() *Graph {
	return NewWithInterner(NewInterner())
}

// NewWithInterner returns an empty graph whose string/list payloads intern
// into dict. Sharing a dictionary across graphs is always safe (ids are
// content-addressed); it is how replicas and delta builds reuse a previous
// generation's strings.
func NewWithInterner(dict *Interner) *Graph {
	if dict == nil {
		dict = NewInterner()
	}
	return &Graph{
		owner:         newOwnerToken(),
		dict:          dict,
		labelIDs:      make(map[string]labelID),
		typeIDs:       make(map[string]typeID),
		lsets:         make([][]labelID, 1), // entry 0: the empty label set
		lsetIDs:       make(map[string]lsetID),
		labelIdx:      make(map[labelID]*idSet),
		propIdx:       make(map[propIdxID]*propIndex),
		labelKeyCount: make(map[propIdxID]int),
	}
}

// Interner returns the graph's dictionary. Callers use it to seed another
// load (replica delta reloads) or to detect that two graphs share payload
// ids (temporal diff's interned fast path).
func (g *Graph) Interner() *Interner { return g.dict }

// --- freezing & copy-on-write cloning (the MVCC substrate) ---

// Freeze marks the graph an immutable generation. From then on every read
// accessor is lock-free and every mutation panics (ApplyBatch returns
// ErrFrozen instead). Freeze must not race with writers: callers freeze a
// graph only once it has a single owner (a finished build, or a clone
// about to be published). It returns g for chaining.
func (g *Graph) Freeze() *Graph {
	g.mu.Lock()
	g.frozen = true
	g.mu.Unlock()
	return g
}

// Frozen reports whether the graph is an immutable generation.
func (g *Graph) Frozen() bool { return g.frozen }

// Clone returns a mutable copy-on-write graph derived from a frozen
// generation: top-level tables (slot slices, interning, statistics, index
// directories) are copied eagerly — O(nodes + rels) pointer copies — while
// nodes, relationships, index buckets, the string dictionary and the
// label-set table are shared with the parent and copied lazily (or, for
// the append-only dictionaries, never). The parent stays frozen and is
// never touched; this is how a writer builds generation N+1 while
// generation N keeps serving lock-free readers.
func (g *Graph) Clone() *Graph {
	if !g.frozen {
		panic("graph: Clone of a live graph (Freeze it first — only immutable generations can be cloned safely)")
	}
	ng := &Graph{
		owner:         newOwnerToken(),
		dict:          g.dict,
		labelNames:    append([]string(nil), g.labelNames...),
		labelIDs:      make(map[string]labelID, len(g.labelIDs)),
		typeNames:     append([]string(nil), g.typeNames...),
		typeIDs:       make(map[string]typeID, len(g.typeIDs)),
		lsets:         g.lsets[:len(g.lsets):len(g.lsets)],
		lsetIDs:       make(map[string]lsetID, len(g.lsetIDs)),
		nodes:         append([]*Node(nil), g.nodes...),
		rels:          append([]*Rel(nil), g.rels...),
		labelIdx:      make(map[labelID]*idSet, len(g.labelIdx)),
		propIdx:       make(map[propIdxID]*propIndex, len(g.propIdx)),
		nodeCount:     g.nodeCount,
		relCount:      g.relCount,
		typeCounts:    append([]int(nil), g.typeCounts...),
		labelKeyCount: make(map[propIdxID]int, len(g.labelKeyCount)),
		version:       g.version,
	}
	for k, v := range g.labelIDs {
		ng.labelIDs[k] = v
	}
	for k, v := range g.typeIDs {
		ng.typeIDs[k] = v
	}
	for k, v := range g.lsetIDs {
		ng.lsetIDs[k] = v
	}
	for k, v := range g.labelIdx {
		ng.labelIdx[k] = v // shared; mutLabelSet copies on first write
	}
	for k, v := range g.propIdx {
		ng.propIdx[k] = v // shared; mutIndex copies on first write
	}
	for k, v := range g.labelKeyCount {
		ng.labelKeyCount[k] = v
	}
	return ng
}

// checkMutable panics when the graph is frozen. Called (with mu held) at
// the top of every mutating method: writing to a published generation is a
// programming error, never a recoverable condition.
func (g *Graph) checkMutable() {
	if g.frozen {
		panic("graph: mutation of a frozen generation (Clone it to build the next one)")
	}
}

// rlock/runlock take the read lock only on live graphs; frozen generations
// are immutable, so their readers skip the lock entirely.
func (g *Graph) rlock() {
	if !g.frozen {
		g.mu.RLock()
	}
}

func (g *Graph) runlock() {
	if !g.frozen {
		g.mu.RUnlock()
	}
}

// --- COW mutation helpers (callers hold mu on a live graph) ---

// mutNode returns the node for id, first copying it into this generation
// if it is still shared with a frozen parent. Returns nil for dead IDs.
func (g *Graph) mutNode(id NodeID) *Node {
	n := g.node(id)
	if n == nil || n.owner == g.owner {
		return n
	}
	c := n.clone(g.owner)
	g.nodes[id-1] = c
	return c
}

// mutRel is mutNode for relationships.
func (g *Graph) mutRel(id RelID) *Rel {
	r := g.rel(id)
	if r == nil || r.owner == g.owner {
		return r
	}
	c := r.clone(g.owner)
	g.rels[id-1] = c
	return c
}

// mutLabelSet returns the label bucket for lid, creating it if absent and
// copying it into this generation if shared.
func (g *Graph) mutLabelSet(lid labelID) *idSet {
	s := g.labelIdx[lid]
	if s == nil {
		s = newIDSet(g.owner)
		g.labelIdx[lid] = s
		return s
	}
	if s.owner != g.owner {
		s = s.clone(g.owner)
		g.labelIdx[lid] = s
	}
	return s
}

// mutIndex returns the property index for pid with its bucket directory
// owned by this generation (leaf sets stay shared until mutBucket). Nil
// when no index exists on pid.
func (g *Graph) mutIndex(pid propIdxID) *propIndex {
	idx := g.propIdx[pid]
	if idx == nil {
		return nil
	}
	if idx.owner != g.owner {
		c := &propIndex{owner: g.owner, buckets: make(map[ckey]*idSet, len(idx.buckets))}
		for k, v := range idx.buckets {
			c.buckets[k] = v
		}
		idx = c
		g.propIdx[pid] = idx
	}
	return idx
}

// mutBucket returns the (owned) leaf set for k in an owned index, creating
// or copying as needed.
func (idx *propIndex) mutBucket(k ckey, owner uint64) *idSet {
	s := idx.buckets[k]
	if s == nil {
		s = newIDSet(owner)
		idx.buckets[k] = s
		return s
	}
	if s.owner != owner {
		s = s.clone(owner)
		idx.buckets[k] = s
	}
	return s
}

// --- interning (callers hold mu) ---

func (g *Graph) internLabel(name string) labelID {
	if id, ok := g.labelIDs[name]; ok {
		return id
	}
	id := labelID(len(g.labelNames))
	g.labelNames = append(g.labelNames, name)
	g.labelIDs[name] = id
	return id
}

func (g *Graph) internType(name string) typeID {
	if id, ok := g.typeIDs[name]; ok {
		return id
	}
	id := typeID(len(g.typeNames))
	g.typeNames = append(g.typeNames, name)
	g.typeCounts = append(g.typeCounts, 0)
	g.typeIDs[name] = id
	return id
}

// internLset returns the label-set id for the (sorted) label combination,
// appending a new dictionary entry on first sight. The append copies the
// table when it is shared with a frozen parent (capacity-capped by Clone),
// so a parent generation's table is never written through.
func (g *Graph) internLset(ls []labelID) lsetID {
	if len(ls) == 0 {
		return 0
	}
	key := lsetKey(ls)
	if id, ok := g.lsetIDs[key]; ok {
		return id
	}
	id := lsetID(len(g.lsets))
	g.lsets = append(g.lsets, append([]labelID(nil), ls...))
	g.lsetIDs[key] = id
	return id
}

func lsetKey(ls []labelID) string {
	b := make([]byte, 2*len(ls))
	for i, l := range ls {
		b[2*i] = byte(l >> 8)
		b[2*i+1] = byte(l)
	}
	return string(b)
}

// nodeLabels resolves a node's label-set id to the (shared, do-not-mutate)
// sorted label-id slice.
func (g *Graph) nodeLabels(n *Node) []labelID { return g.lsets[n.lset] }

// Labels returns all label names ever used, sorted.
func (g *Graph) Labels() []string {
	g.rlock()
	defer g.runlock()
	out := make([]string, len(g.labelNames))
	copy(out, g.labelNames)
	sort.Strings(out)
	return out
}

// RelTypes returns all relationship type names ever used, sorted.
func (g *Graph) RelTypes() []string {
	g.rlock()
	defer g.runlock()
	out := make([]string, len(g.typeNames))
	copy(out, g.typeNames)
	sort.Strings(out)
	return out
}

// --- columnar value encoding (callers hold mu on live graphs) ---

// encEntry encodes a property value into a 16-byte column entry, interning
// string and list payloads.
func (g *Graph) encEntry(key uint32, v Value) centry {
	e := centry{key: key, kind: v.kind}
	switch v.kind {
	case KindBool:
		if v.b {
			e.flag = 1
		}
	case KindInt:
		e.num = uint64(v.i)
	case KindFloat:
		e.num = math.Float64bits(v.f)
	case KindString:
		e.num = uint64(g.dict.intern(v.s))
	case KindList:
		e.num = uint64(g.dict.internListKey(listDedupKey(v.list), v.list))
	}
	return e
}

// decEntry materializes a column entry back into a Value. String and list
// payloads are shared with the dictionary, not copied.
func (g *Graph) decEntry(e centry) Value {
	switch e.kind {
	case KindBool:
		return Value{kind: KindBool, b: e.flag != 0}
	case KindInt:
		return Value{kind: KindInt, i: int64(e.num)}
	case KindFloat:
		return Value{kind: KindFloat, f: math.Float64frombits(e.num)}
	case KindString:
		return Value{kind: KindString, s: g.dict.str(uint32(e.num))}
	case KindList:
		return Value{kind: KindList, list: g.dict.list(uint32(e.num))}
	}
	return Value{}
}

// entryKey converts a stored column entry to its index-bucket key without
// materializing the value: interned ids pass through, integral floats
// normalize to the int encoding (the Value.Equal invariant).
func (g *Graph) entryKey(e centry) ckey {
	switch e.kind {
	case KindBool:
		return ckey{kind: KindBool, b: e.flag != 0}
	case KindInt:
		return ckey{kind: KindInt, num: e.num}
	case KindFloat:
		f := math.Float64frombits(e.num)
		if f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64 {
			return ckey{kind: KindInt, num: uint64(int64(f))}
		}
		return ckey{kind: KindFloat, num: e.num}
	case KindList:
		// Lists key by their normalized flattened encoding (see Value.key)
		// so numerically-equal elements of different kinds still collide.
		return ckey{kind: KindList, num: uint64(g.dict.intern(g.decEntry(e).key().s))}
	case KindString:
		return ckey{kind: KindString, num: e.num}
	}
	return ckey{kind: KindNull}
}

// internKey converts a Value to its index-bucket key on the write path,
// interning payloads as needed.
func (g *Graph) internKey(v Value) ckey {
	switch v.kind {
	case KindBool:
		return ckey{kind: KindBool, b: v.b}
	case KindInt:
		return ckey{kind: KindInt, num: uint64(v.i)}
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
			return ckey{kind: KindInt, num: uint64(int64(v.f))}
		}
		return ckey{kind: KindFloat, num: math.Float64bits(v.f)}
	case KindString:
		return ckey{kind: KindString, num: uint64(g.dict.intern(v.s))}
	case KindList:
		return ckey{kind: KindList, num: uint64(g.dict.intern(v.key().s))}
	}
	return ckey{kind: KindNull}
}

// probeKey converts a Value to its index-bucket key on the read path. ok is
// false when the value's payload is not in the dictionary — no stored value
// can equal it, so the probe can return empty without touching a bucket.
func (g *Graph) probeKey(v Value) (ckey, bool) {
	switch v.kind {
	case KindString:
		id, ok := g.dict.lookupStr(v.s)
		if !ok {
			return ckey{}, false
		}
		return ckey{kind: KindString, num: uint64(id)}, true
	case KindList:
		id, ok := g.dict.lookupStr(v.key().s)
		if !ok {
			return ckey{}, false
		}
		return ckey{kind: KindList, num: uint64(id)}, true
	default:
		return g.internKey(v), true
	}
}

// findEntry locates keyID in a sorted property column.
func findEntry(cp []centry, keyID uint32) (int, bool) {
	i := sort.Search(len(cp), func(i int) bool { return cp[i].key >= keyID })
	if i < len(cp) && cp[i].key == keyID {
		return i, true
	}
	return i, false
}

// encodeProps converts a boxed property map into a sorted column.
func (g *Graph) encodeProps(p Props) []centry {
	if len(p) == 0 {
		return nil
	}
	// Intern in sorted-key order: global dictionary ids are assigned on
	// first sight, so iterating the map directly would make id assignment
	// (and with it snapshot bytes) depend on map iteration order.
	cp := make([]centry, 0, len(p))
	for _, k := range p.Keys() {
		cp = append(cp, g.encEntry(g.dict.intern(k), p[k]))
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i].key < cp[j].key })
	return cp
}

// decodeProps materializes a column back into a boxed map (the public
// NodeProps/RelProps view).
func (g *Graph) decodeProps(cp []centry) Props {
	out := make(Props, len(cp))
	for _, e := range cp {
		out[g.dict.str(e.key)] = g.decEntry(e)
	}
	return out
}

// --- node lifecycle ---

// AddNode creates a node with the given labels and a copy of props.
func (g *Graph) AddNode(labels []string, props Props) NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	return g.addNodeLocked(labels, props)
}

func (g *Graph) addNodeLocked(labels []string, props Props) NodeID {
	g.version++
	n := &Node{
		id:     NodeID(len(g.nodes) + 1),
		owner:  g.owner,
		cprops: g.encodeProps(props),
	}
	var ls []labelID
	for _, l := range labels {
		ls = insertLabel(ls, g.internLabel(l))
	}
	n.lset = g.internLset(ls)
	g.nodes = append(g.nodes, n)
	g.nodeCount++
	for _, lid := range ls {
		g.indexNodeLabelLocked(n, lid)
	}
	return n.id
}

func insertLabel(ls []labelID, l labelID) []labelID {
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= l })
	if i < len(ls) && ls[i] == l {
		return ls
	}
	ls = append(ls, 0)
	copy(ls[i+1:], ls[i:])
	ls[i] = l
	return ls
}

func (g *Graph) indexNodeLabelLocked(n *Node, lid labelID) {
	g.mutLabelSet(lid).add(n.id)
	// Populate any property indexes that exist for this label, and count
	// the node into the (label, key) statistics.
	for _, e := range n.cprops {
		g.propIndexAddLocked(lid, e, n.id)
		g.labelKeyCount[propIdxID{lid, e.key}]++
	}
}

func (g *Graph) propIndexAddLocked(lid labelID, e centry, id NodeID) {
	pid := propIdxID{lid, e.key}
	if g.propIdx[pid] == nil {
		return
	}
	idx := g.mutIndex(pid)
	idx.mutBucket(g.entryKey(e), g.owner).add(id)
}

func (g *Graph) propIndexRemoveLocked(lid labelID, e centry, id NodeID) {
	pid := propIdxID{lid, e.key}
	idx := g.propIdx[pid]
	if idx == nil {
		return
	}
	k := g.entryKey(e)
	s := idx.buckets[k]
	if s == nil || !s.has(id) {
		return
	}
	idx = g.mutIndex(pid)
	if s.n == 1 {
		// Removing the last member: drop the bucket from the (owned)
		// directory; the shared leaf set itself is untouched.
		delete(idx.buckets, k)
		return
	}
	idx.mutBucket(k, g.owner).remove(id)
}

// node returns the live node for id (callers hold mu).
func (g *Graph) node(id NodeID) *Node {
	if id == 0 || int(id) > len(g.nodes) {
		return nil
	}
	return g.nodes[id-1]
}

func (g *Graph) rel(id RelID) *Rel {
	if id == 0 || int(id) > len(g.rels) {
		return nil
	}
	return g.rels[id-1]
}

// HasNode reports whether id refers to a live node.
func (g *Graph) HasNode(id NodeID) bool {
	g.rlock()
	defer g.runlock()
	return g.node(id) != nil
}

// AddLabel adds a label to an existing node.
func (g *Graph) AddLabel(id NodeID, label string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	if g.node(id) == nil {
		return fmt.Errorf("graph: no node %d", id)
	}
	g.addLabelLocked(id, label)
	return nil
}

func (g *Graph) addLabelLocked(id NodeID, label string) {
	g.version++
	n := g.mutNode(id)
	lid := g.internLabel(label)
	old := g.nodeLabels(n)
	nl := insertLabel(append([]labelID(nil), old...), lid)
	if len(nl) == len(old) {
		return // already present
	}
	n.lset = g.internLset(nl)
	g.indexNodeLabelLocked(n, lid)
}

// NodeLabels returns the node's labels, sorted by name.
func (g *Graph) NodeLabels(id NodeID) []string {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return nil
	}
	ls := g.nodeLabels(n)
	out := make([]string, len(ls))
	for i, lid := range ls {
		out[i] = g.labelNames[lid]
	}
	sort.Strings(out)
	return out
}

// NodeHasLabel reports whether the node carries label.
func (g *Graph) NodeHasLabel(id NodeID, label string) bool {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return false
	}
	lid, ok := g.labelIDs[label]
	if !ok {
		return false
	}
	ls := g.nodeLabels(n)
	i := sort.Search(len(ls), func(i int) bool { return ls[i] >= lid })
	return i < len(ls) && ls[i] == lid
}

// SetNodeProp sets (or with a Null value, clears) a node property,
// maintaining any property indexes.
func (g *Graph) SetNodeProp(id NodeID, key string, v Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	if g.node(id) == nil {
		return fmt.Errorf("graph: no node %d", id)
	}
	g.setNodePropLocked(id, key, v)
	return nil
}

func (g *Graph) setNodePropLocked(id NodeID, key string, v Value) {
	g.version++
	n := g.mutNode(id)
	keyID := g.dict.intern(key)
	i, had := findEntry(n.cprops, keyID)
	if had {
		old := n.cprops[i]
		for _, lid := range g.nodeLabels(n) {
			g.propIndexRemoveLocked(lid, old, id)
		}
	}
	if v.IsNull() {
		if had {
			n.cprops = append(n.cprops[:i], n.cprops[i+1:]...)
			for _, lid := range g.nodeLabels(n) {
				g.statPropRemoveLocked(lid, keyID)
			}
		}
		return
	}
	e := g.encEntry(keyID, v)
	if had {
		n.cprops[i] = e
	} else {
		n.cprops = append(n.cprops, centry{})
		copy(n.cprops[i+1:], n.cprops[i:])
		n.cprops[i] = e
	}
	for _, lid := range g.nodeLabels(n) {
		g.propIndexAddLocked(lid, e, id)
		if !had {
			g.labelKeyCount[propIdxID{lid, keyID}]++
		}
	}
}

// statPropRemoveLocked decrements the (label, key) node count, dropping the
// entry at zero so the statistics map doesn't accumulate dead pairs.
func (g *Graph) statPropRemoveLocked(lid labelID, keyID uint32) {
	pid := propIdxID{lid, keyID}
	if c := g.labelKeyCount[pid]; c <= 1 {
		delete(g.labelKeyCount, pid)
	} else {
		g.labelKeyCount[pid] = c - 1
	}
}

// NodeProp returns a node property (Null when absent or node missing).
func (g *Graph) NodeProp(id NodeID, key string) Value {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return Null()
	}
	keyID, ok := g.dict.lookupStr(key)
	if !ok {
		return Null()
	}
	if i, had := findEntry(n.cprops, keyID); had {
		return g.decEntry(n.cprops[i])
	}
	return Null()
}

// NodeProps returns the node's properties as a boxed map (materialized
// from the property column; string payloads are shared, not copied).
func (g *Graph) NodeProps(id NodeID) Props {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return nil
	}
	return g.decodeProps(n.cprops)
}

// DeleteNode removes a node and all its relationships (DETACH DELETE).
func (g *Graph) DeleteNode(id NodeID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	n := g.node(id)
	if n == nil {
		return fmt.Errorf("graph: no node %d", id)
	}
	g.version++
	for _, rid := range append(append([]RelID{}, n.out...), n.in...) {
		if r := g.rel(rid); r != nil {
			g.deleteRelLocked(r)
		}
	}
	// deleteRelLocked may have COW-copied the node (self-loops); n itself
	// is only read below, so the stale pointer is fine for props/labels.
	for _, lid := range g.nodeLabels(n) {
		g.mutLabelSet(lid).remove(id)
		for _, e := range n.cprops {
			g.propIndexRemoveLocked(lid, e, id)
			g.statPropRemoveLocked(lid, e.key)
		}
	}
	g.nodes[id-1] = nil
	g.nodeCount--
	return nil
}

// --- relationships ---

// AddRel creates a relationship of the given type from→to with a copy of
// props.
func (g *Graph) AddRel(typ string, from, to NodeID, props Props) (RelID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	return g.addRelLocked(typ, from, to, props)
}

func (g *Graph) addRelLocked(typ string, from, to NodeID, props Props) (RelID, error) {
	if g.node(from) == nil || g.node(to) == nil {
		return 0, fmt.Errorf("graph: relationship %s endpoints %d->%d: missing node", typ, from, to)
	}
	g.version++
	r := &Rel{
		id:     RelID(len(g.rels) + 1),
		owner:  g.owner,
		typ:    g.internType(typ),
		from:   from,
		to:     to,
		cprops: g.encodeProps(props),
	}
	g.rels = append(g.rels, r)
	g.relCount++
	g.typeCounts[r.typ]++
	fn := g.mutNode(from)
	fn.out = append(fn.out, r.id)
	tn := g.mutNode(to)
	tn.in = append(tn.in, r.id)
	return r.id, nil
}

func (g *Graph) deleteRelLocked(r *Rel) {
	g.version++
	if fn := g.mutNode(r.from); fn != nil {
		fn.out = removeID(fn.out, r.id)
	}
	if tn := g.mutNode(r.to); tn != nil {
		tn.in = removeID(tn.in, r.id)
	}
	g.rels[r.id-1] = nil
	g.relCount--
	g.typeCounts[r.typ]--
}

func removeID(ids []RelID, id RelID) []RelID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// DeleteRel removes a relationship.
func (g *Graph) DeleteRel(id RelID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	r := g.rel(id)
	if r == nil {
		return fmt.Errorf("graph: no relationship %d", id)
	}
	g.deleteRelLocked(r)
	return nil
}

// RelType returns the relationship's type name.
func (g *Graph) RelType(id RelID) string {
	g.rlock()
	defer g.runlock()
	r := g.rel(id)
	if r == nil {
		return ""
	}
	return g.typeNames[r.typ]
}

// RelEndpoints returns the from and to node IDs (0,0 when missing).
func (g *Graph) RelEndpoints(id RelID) (NodeID, NodeID) {
	g.rlock()
	defer g.runlock()
	r := g.rel(id)
	if r == nil {
		return 0, 0
	}
	return r.from, r.to
}

// SetRelProp sets (or clears, with Null) a relationship property.
func (g *Graph) SetRelProp(id RelID, key string, v Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	if g.rel(id) == nil {
		return fmt.Errorf("graph: no relationship %d", id)
	}
	g.version++
	r := g.mutRel(id)
	keyID := g.dict.intern(key)
	i, had := findEntry(r.cprops, keyID)
	if v.IsNull() {
		if had {
			r.cprops = append(r.cprops[:i], r.cprops[i+1:]...)
		}
		return nil
	}
	e := g.encEntry(keyID, v)
	if had {
		r.cprops[i] = e
	} else {
		r.cprops = append(r.cprops, centry{})
		copy(r.cprops[i+1:], r.cprops[i:])
		r.cprops[i] = e
	}
	return nil
}

// RelProp returns a relationship property (Null when absent).
func (g *Graph) RelProp(id RelID, key string) Value {
	g.rlock()
	defer g.runlock()
	r := g.rel(id)
	if r == nil {
		return Null()
	}
	keyID, ok := g.dict.lookupStr(key)
	if !ok {
		return Null()
	}
	if i, had := findEntry(r.cprops, keyID); had {
		return g.decEntry(r.cprops[i])
	}
	return Null()
}

// RelProps returns the relationship's properties as a boxed map.
func (g *Graph) RelProps(id RelID) Props {
	g.rlock()
	defer g.runlock()
	r := g.rel(id)
	if r == nil {
		return nil
	}
	return g.decodeProps(r.cprops)
}

// --- traversal ---

// Dir selects traversal direction relative to a node.
type Dir uint8

const (
	// DirOut follows relationships leaving the node.
	DirOut Dir = iota
	// DirIn follows relationships entering the node.
	DirIn
	// DirBoth follows relationships in either direction.
	DirBoth
)

// Rels appends to buf the IDs of relationships incident to node id in the
// given direction, optionally filtered to the named types (nil/empty =
// all). It returns the extended buffer, enabling allocation reuse in the
// query executor's hot path.
func (g *Graph) Rels(id NodeID, dir Dir, types []string, buf []RelID) []RelID {
	g.rlock()
	defer g.runlock()
	n := g.node(id)
	if n == nil {
		return buf
	}
	var want []typeID
	if len(types) > 0 {
		want = make([]typeID, 0, len(types))
		for _, t := range types {
			tid, ok := g.typeIDs[t]
			if !ok {
				continue // type never used: matches nothing
			}
			want = append(want, tid)
		}
		if len(want) == 0 {
			return buf
		}
	}
	match := func(r *Rel) bool {
		if want == nil {
			return true
		}
		for _, w := range want {
			if r.typ == w {
				return true
			}
		}
		return false
	}
	if dir == DirOut || dir == DirBoth {
		for _, rid := range n.out {
			if r := g.rel(rid); r != nil && match(r) {
				buf = append(buf, rid)
			}
		}
	}
	if dir == DirIn || dir == DirBoth {
		for _, rid := range n.in {
			if r := g.rel(rid); r != nil && match(r) {
				// A self-loop already appeared in the out scan.
				if dir == DirBoth && r.from == r.to {
					continue
				}
				buf = append(buf, rid)
			}
		}
	}
	return buf
}

// Degree returns the number of incident relationships in the given
// direction, optionally filtered by type.
func (g *Graph) Degree(id NodeID, dir Dir, types []string) int {
	return len(g.Rels(id, dir, types, nil))
}

// --- scans & indexes ---

// EachNode calls fn for every live node until fn returns false.
func (g *Graph) EachNode(fn func(NodeID) bool) {
	g.rlock()
	defer g.runlock()
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		if !fn(n.id) {
			return
		}
	}
}

// EachRel calls fn for every live relationship until fn returns false.
func (g *Graph) EachRel(fn func(RelID) bool) {
	g.rlock()
	defer g.runlock()
	for _, r := range g.rels {
		if r == nil {
			continue
		}
		if !fn(r.id) {
			return
		}
	}
}

// NodesByLabel returns the IDs of all nodes carrying label, in ascending
// order.
func (g *Graph) NodesByLabel(label string) []NodeID {
	g.rlock()
	defer g.runlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return nil
	}
	set := g.labelIdx[lid]
	if set == nil {
		return nil
	}
	// Copy: the clean-set fast path of sorted() aliases the shared base.
	return append([]NodeID(nil), set.sorted()...)
}

// CountByLabel returns the number of nodes carrying label.
func (g *Graph) CountByLabel(label string) int {
	g.rlock()
	defer g.runlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return 0
	}
	if set := g.labelIdx[lid]; set != nil {
		return set.n
	}
	return 0
}

// EnsureIndex creates (and backfills) a hash index on (label, property) if
// it does not already exist.
func (g *Graph) EnsureIndex(label, key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	g.ensureIndexLocked(label, key)
}

func (g *Graph) ensureIndexLocked(label, key string) *propIndex {
	lid := g.internLabel(label)
	keyID := g.dict.intern(key)
	pid := propIdxID{lid, keyID}
	if idx, ok := g.propIdx[pid]; ok {
		return idx
	}
	idx := &propIndex{owner: g.owner, buckets: make(map[ckey]*idSet)}
	g.propIdx[pid] = idx
	if set := g.labelIdx[lid]; set != nil {
		set.each(func(id NodeID) bool {
			n := g.node(id)
			if n == nil {
				return true
			}
			if i, had := findEntry(n.cprops, keyID); had {
				idx.mutBucket(g.entryKey(n.cprops[i]), g.owner).add(id)
			}
			return true
		})
	}
	return idx
}

// HasIndex reports whether an index exists on (label, key).
func (g *Graph) HasIndex(label, key string) bool {
	g.rlock()
	defer g.runlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return false
	}
	keyID, ok := g.dict.lookupStr(key)
	if !ok {
		return false
	}
	_, ok = g.propIdx[propIdxID{lid, keyID}]
	return ok
}

// NodesByProp returns nodes with label whose property key equals v. It uses
// the (label,key) index when present and otherwise falls back to scanning
// the label's nodes. Either way the comparison is by interned id, so a
// probe string the graph has never seen returns empty without a scan.
func (g *Graph) NodesByProp(label, key string, v Value) []NodeID {
	g.rlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		g.runlock()
		return nil
	}
	keyID, keyKnown := g.dict.lookupStr(key)
	if !keyKnown {
		g.runlock()
		return nil
	}
	k, valKnown := g.probeKey(v)
	if idx, ok := g.propIdx[propIdxID{lid, keyID}]; ok {
		var out []NodeID
		if valKnown {
			if set := idx.buckets[k]; set != nil {
				out = append([]NodeID(nil), set.sorted()...)
			}
		}
		g.runlock()
		return out
	}
	var out []NodeID
	if valKnown {
		if set := g.labelIdx[lid]; set != nil {
			set.each(func(id NodeID) bool {
				n := g.node(id)
				if n == nil {
					return true
				}
				if i, had := findEntry(n.cprops, keyID); had && g.entryKey(n.cprops[i]) == k {
					out = append(out, id)
				}
				return true
			})
		}
	}
	g.runlock()
	return out
}

// MergeNode finds the node with the given label whose identity property
// key equals v, creating it (with extraLabels and props) when absent.
// It reports whether the node was created. When the node exists, props are
// merged in (existing values win) and extraLabels are added — mirroring the
// upsert semantics of the IYP importers.
func (g *Graph) MergeNode(label, key string, v Value, extraLabels []string, props Props) (NodeID, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.checkMutable()
	return g.mergeNodeLocked(label, key, v, extraLabels, props)
}

func (g *Graph) mergeNodeLocked(label, key string, v Value, extraLabels []string, props Props) (NodeID, bool) {
	// Identity lookups always deserve an index.
	idx := g.ensureIndexLocked(label, key)
	if set := idx.buckets[g.internKey(v)]; set != nil && set.n > 0 {
		g.version++ // merged labels/props below mutate the node in place
		id := set.min()
		n := g.mutNode(id)
		for _, l := range extraLabels {
			elid := g.internLabel(l)
			old := g.nodeLabels(n)
			nl := insertLabel(append([]labelID(nil), old...), elid)
			if len(nl) != len(old) {
				n.lset = g.internLset(nl)
				g.indexNodeLabelLocked(n, elid)
			}
		}
		for k, pv := range props {
			keyID := g.dict.intern(k)
			if i, exists := findEntry(n.cprops, keyID); !exists {
				e := g.encEntry(keyID, pv)
				n.cprops = append(n.cprops, centry{})
				copy(n.cprops[i+1:], n.cprops[i:])
				n.cprops[i] = e
				for _, l := range g.nodeLabels(n) {
					g.propIndexAddLocked(l, e, id)
					g.labelKeyCount[propIdxID{l, keyID}]++
				}
			}
		}
		return id, false
	}
	all := props.Clone()
	if all == nil {
		all = Props{}
	}
	all[key] = v
	labels := append([]string{label}, extraLabels...)
	id := g.addNodeLocked(labels, all)
	return id, true
}

// NumNodes returns the live node count.
func (g *Graph) NumNodes() int {
	g.rlock()
	defer g.runlock()
	return g.nodeCount
}

// NumRels returns the live relationship count.
func (g *Graph) NumRels() int {
	g.rlock()
	defer g.runlock()
	return g.relCount
}
