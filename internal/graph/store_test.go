package graph

import (
	"fmt"
	"sync"
	"testing"
)

func TestAddNodeAndLabels(t *testing.T) {
	g := New()
	id := g.AddNode([]string{"AS", "Tagged"}, Props{"asn": Int(2497)})
	if id == 0 || !g.HasNode(id) {
		t.Fatal("AddNode returned invalid id")
	}
	if got := g.NodeLabels(id); len(got) != 2 || got[0] != "AS" || got[1] != "Tagged" {
		t.Errorf("NodeLabels = %v", got)
	}
	if !g.NodeHasLabel(id, "AS") || g.NodeHasLabel(id, "Prefix") {
		t.Error("NodeHasLabel wrong")
	}
	if err := g.AddLabel(id, "Extra"); err != nil {
		t.Fatal(err)
	}
	if !g.NodeHasLabel(id, "Extra") {
		t.Error("AddLabel did not stick")
	}
	// Adding the same label twice is a no-op.
	if err := g.AddLabel(id, "Extra"); err != nil {
		t.Fatal(err)
	}
	if got := len(g.NodeLabels(id)); got != 3 {
		t.Errorf("labels after duplicate add = %d, want 3", got)
	}
	if err := g.AddLabel(999, "X"); err == nil {
		t.Error("AddLabel on missing node should fail")
	}
}

func TestNodeProps(t *testing.T) {
	g := New()
	id := g.AddNode([]string{"AS"}, Props{"asn": Int(1)})
	if v := g.NodeProp(id, "asn"); !v.Equal(Int(1)) {
		t.Errorf("NodeProp = %v", v)
	}
	if !g.NodeProp(id, "missing").IsNull() {
		t.Error("missing prop should be Null")
	}
	if err := g.SetNodeProp(id, "name", String("IIJ")); err != nil {
		t.Fatal(err)
	}
	if v := g.NodeProp(id, "name"); !v.Equal(String("IIJ")) {
		t.Errorf("after set, NodeProp = %v", v)
	}
	// Setting Null clears.
	if err := g.SetNodeProp(id, "name", Null()); err != nil {
		t.Fatal(err)
	}
	if !g.NodeProp(id, "name").IsNull() {
		t.Error("Null set should clear the property")
	}
	// NodeProps returns a copy.
	p := g.NodeProps(id)
	p["asn"] = Int(99)
	if !g.NodeProp(id, "asn").Equal(Int(1)) {
		t.Error("NodeProps exposed internal state")
	}
}

func TestRelationships(t *testing.T) {
	g := New()
	a := g.AddNode([]string{"AS"}, nil)
	b := g.AddNode([]string{"Prefix"}, nil)
	rid, err := g.AddRel("ORIGINATE", a, b, Props{"count": Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if g.RelType(rid) != "ORIGINATE" {
		t.Errorf("RelType = %q", g.RelType(rid))
	}
	from, to := g.RelEndpoints(rid)
	if from != a || to != b {
		t.Errorf("endpoints = %d->%d", from, to)
	}
	if v := g.RelProp(rid, "count"); !v.Equal(Int(2)) {
		t.Errorf("RelProp = %v", v)
	}
	if err := g.SetRelProp(rid, "count", Int(3)); err != nil {
		t.Fatal(err)
	}
	if v := g.RelProp(rid, "count"); !v.Equal(Int(3)) {
		t.Errorf("RelProp after set = %v", v)
	}
	// Missing endpoints rejected.
	if _, err := g.AddRel("X", a, 999, nil); err == nil {
		t.Error("AddRel with missing endpoint should fail")
	}

	// Traversal.
	out := g.Rels(a, DirOut, nil, nil)
	if len(out) != 1 || out[0] != rid {
		t.Errorf("Rels(out) = %v", out)
	}
	if got := g.Rels(a, DirIn, nil, nil); len(got) != 0 {
		t.Errorf("Rels(in) = %v", got)
	}
	if got := g.Rels(b, DirIn, []string{"ORIGINATE"}, nil); len(got) != 1 {
		t.Errorf("Rels(b, in, typed) = %v", got)
	}
	if got := g.Rels(b, DirBoth, []string{"NOPE"}, nil); len(got) != 0 {
		t.Errorf("Rels(wrong type) = %v", got)
	}
	if d := g.Degree(a, DirBoth, nil); d != 1 {
		t.Errorf("Degree = %d", d)
	}
}

func TestSelfLoopNotDoubleCounted(t *testing.T) {
	g := New()
	a := g.AddNode([]string{"N"}, nil)
	if _, err := g.AddRel("LOOP", a, a, nil); err != nil {
		t.Fatal(err)
	}
	if got := g.Rels(a, DirBoth, nil, nil); len(got) != 1 {
		t.Errorf("self-loop appears %d times in DirBoth, want 1", len(got))
	}
	if got := g.Rels(a, DirOut, nil, nil); len(got) != 1 {
		t.Errorf("self-loop out degree = %d", len(got))
	}
}

func TestDeleteRelAndNode(t *testing.T) {
	g := New()
	a := g.AddNode([]string{"A"}, nil)
	b := g.AddNode([]string{"B"}, nil)
	rid, _ := g.AddRel("R", a, b, nil)
	if err := g.DeleteRel(rid); err != nil {
		t.Fatal(err)
	}
	if g.NumRels() != 0 || len(g.Rels(a, DirBoth, nil, nil)) != 0 {
		t.Error("DeleteRel left residue")
	}
	if err := g.DeleteRel(rid); err == nil {
		t.Error("double delete should fail")
	}

	// DeleteNode detaches.
	rid2, _ := g.AddRel("R", a, b, nil)
	_ = rid2
	if err := g.DeleteNode(a); err != nil {
		t.Fatal(err)
	}
	if g.HasNode(a) {
		t.Error("node still present after delete")
	}
	if g.NumRels() != 0 {
		t.Error("DeleteNode did not detach relationships")
	}
	if len(g.NodesByLabel("A")) != 0 {
		t.Error("label index not updated on delete")
	}
	if err := g.DeleteNode(a); err == nil {
		t.Error("double node delete should fail")
	}
}

func TestNodesByLabelAndScan(t *testing.T) {
	g := New()
	var asIDs []NodeID
	for i := 0; i < 5; i++ {
		asIDs = append(asIDs, g.AddNode([]string{"AS"}, Props{"asn": Int(int64(i))}))
	}
	g.AddNode([]string{"Prefix"}, nil)
	if got := g.NodesByLabel("AS"); len(got) != 5 {
		t.Errorf("NodesByLabel = %d ids", len(got))
	}
	if got := g.CountByLabel("AS"); got != 5 {
		t.Errorf("CountByLabel = %d", got)
	}
	if got := g.CountByLabel("Nope"); got != 0 {
		t.Errorf("CountByLabel(Nope) = %d", got)
	}
	count := 0
	g.EachNode(func(NodeID) bool { count++; return true })
	if count != 6 {
		t.Errorf("EachNode visited %d", count)
	}
	count = 0
	g.EachNode(func(NodeID) bool { count++; return false })
	if count != 1 {
		t.Errorf("EachNode early stop visited %d", count)
	}
}

func TestPropIndexAndNodesByProp(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.AddNode([]string{"AS"}, Props{"asn": Int(int64(i % 3))})
	}
	// Unindexed lookup falls back to scanning.
	if got := g.NodesByProp("AS", "asn", Int(1)); len(got) != 3 {
		t.Errorf("scan NodesByProp = %d", len(got))
	}
	g.EnsureIndex("AS", "asn")
	if !g.HasIndex("AS", "asn") {
		t.Error("HasIndex after EnsureIndex = false")
	}
	if got := g.NodesByProp("AS", "asn", Int(1)); len(got) != 3 {
		t.Errorf("indexed NodesByProp = %d", len(got))
	}
	// Index follows updates.
	id := g.NodesByProp("AS", "asn", Int(1))[0]
	if err := g.SetNodeProp(id, "asn", Int(7)); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByProp("AS", "asn", Int(1)); len(got) != 2 {
		t.Errorf("after update NodesByProp(1) = %d", len(got))
	}
	if got := g.NodesByProp("AS", "asn", Int(7)); len(got) != 1 || got[0] != id {
		t.Errorf("after update NodesByProp(7) = %v", got)
	}
	// Index follows deletion.
	if err := g.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	if got := g.NodesByProp("AS", "asn", Int(7)); len(got) != 0 {
		t.Errorf("after delete NodesByProp(7) = %v", got)
	}
}

func TestMergeNode(t *testing.T) {
	g := New()
	id1, created := g.MergeNode("AS", "asn", Int(2497), nil, Props{"src": String("a")})
	if !created {
		t.Error("first merge should create")
	}
	id2, created := g.MergeNode("AS", "asn", Int(2497), []string{"Extra"}, Props{"src": String("b"), "new": Int(1)})
	if created || id1 != id2 {
		t.Errorf("second merge created=%v id=%d want existing %d", created, id2, id1)
	}
	// Existing property wins; new properties merge in.
	if v := g.NodeProp(id1, "src"); !v.Equal(String("a")) {
		t.Errorf("existing prop overwritten: %v", v)
	}
	if v := g.NodeProp(id1, "new"); !v.Equal(Int(1)) {
		t.Errorf("new prop not merged: %v", v)
	}
	if !g.NodeHasLabel(id1, "Extra") {
		t.Error("extra label not added on merge")
	}
	// Different identity creates a new node.
	id3, created := g.MergeNode("AS", "asn", Int(65001), nil, nil)
	if !created || id3 == id1 {
		t.Error("different identity should create")
	}
}

func TestMergeNodeConcurrent(t *testing.T) {
	// Concurrent upserts of the same identity must converge to one node
	// (the property that lets crawlers run in parallel).
	g := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.MergeNode("AS", "asn", Int(int64(i%50)), nil, nil)
			}
		}()
	}
	wg.Wait()
	if got := g.CountByLabel("AS"); got != 50 {
		t.Errorf("concurrent merge created %d nodes, want 50", got)
	}
}

func TestConcurrentMixedReadWrite(t *testing.T) {
	g := New()
	seed := g.AddNode([]string{"Seed"}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := g.AddNode([]string{"N"}, Props{"w": Int(int64(w))})
				if _, err := g.AddRel("R", seed, id, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g.Rels(seed, DirBoth, nil, nil)
				g.CountByLabel("N")
				g.Stats()
			}
		}()
	}
	wg.Wait()
	if g.NumNodes() != 401 || g.NumRels() != 400 {
		t.Errorf("final counts: %d nodes %d rels", g.NumNodes(), g.NumRels())
	}
}

func TestLabelsAndRelTypes(t *testing.T) {
	g := New()
	a := g.AddNode([]string{"B", "A"}, nil)
	b := g.AddNode([]string{"C"}, nil)
	if _, err := g.AddRel("Z", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddRel("Y", a, b, nil); err != nil {
		t.Fatal(err)
	}
	labels := g.Labels()
	if fmt.Sprint(labels) != "[A B C]" {
		t.Errorf("Labels = %v", labels)
	}
	if fmt.Sprint(g.RelTypes()) != "[Y Z]" {
		t.Errorf("RelTypes = %v", g.RelTypes())
	}
}

func TestStats(t *testing.T) {
	g := New()
	a := g.AddNode([]string{"AS"}, nil)
	b := g.AddNode([]string{"AS"}, nil)
	p := g.AddNode([]string{"Prefix"}, nil)
	_, _ = g.AddRel("ORIGINATE", a, p, nil)
	_, _ = g.AddRel("PEERS_WITH", a, b, nil)
	st := g.Stats()
	if st.Nodes != 3 || st.Rels != 2 {
		t.Errorf("Stats = %+v", st)
	}
	if st.ByLabel["AS"] != 2 || st.ByLabel["Prefix"] != 1 {
		t.Errorf("ByLabel = %v", st.ByLabel)
	}
	if st.ByRelType["ORIGINATE"] != 1 {
		t.Errorf("ByRelType = %v", st.ByRelType)
	}
	if s := st.String(); len(s) == 0 {
		t.Error("Stats.String empty")
	}
}
