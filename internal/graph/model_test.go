package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestStoreAgainstShadowModel drives the store with random operation
// sequences and cross-checks every observable against a naive shadow
// implementation: counts, label membership, property lookups, degrees,
// and index results must always agree.
func TestStoreAgainstShadowModel(t *testing.T) {
	type shadowNode struct {
		labels map[string]bool
		props  map[string]int64
	}
	type shadowRel struct {
		typ      string
		from, to NodeID
	}

	labels := []string{"A", "B", "C"}
	types := []string{"R", "S"}

	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := New()
		g.EnsureIndex("A", "v")

		nodes := map[NodeID]*shadowNode{}
		rels := map[RelID]*shadowRel{}
		var nodeIDs []NodeID
		var relIDs []RelID

		liveNodes := func() []NodeID {
			out := nodeIDs[:0:0]
			for _, id := range nodeIDs {
				if _, ok := nodes[id]; ok {
					out = append(out, id)
				}
			}
			return out
		}

		for op := 0; op < 600; op++ {
			switch r.Intn(10) {
			case 0, 1, 2: // add node
				l := labels[r.Intn(len(labels))]
				v := int64(r.Intn(5))
				id := g.AddNode([]string{l}, Props{"v": Int(v)})
				nodes[id] = &shadowNode{
					labels: map[string]bool{l: true},
					props:  map[string]int64{"v": v},
				}
				nodeIDs = append(nodeIDs, id)
			case 3, 4, 5: // add rel
				live := liveNodes()
				if len(live) < 2 {
					continue
				}
				from := live[r.Intn(len(live))]
				to := live[r.Intn(len(live))]
				ty := types[r.Intn(len(types))]
				id, err := g.AddRel(ty, from, to, nil)
				if err != nil {
					t.Fatal(err)
				}
				rels[id] = &shadowRel{ty, from, to}
				relIDs = append(relIDs, id)
			case 6: // set prop
				live := liveNodes()
				if len(live) == 0 {
					continue
				}
				id := live[r.Intn(len(live))]
				v := int64(r.Intn(5))
				if err := g.SetNodeProp(id, "v", Int(v)); err != nil {
					t.Fatal(err)
				}
				nodes[id].props["v"] = v
			case 7: // add label
				live := liveNodes()
				if len(live) == 0 {
					continue
				}
				id := live[r.Intn(len(live))]
				l := labels[r.Intn(len(labels))]
				if err := g.AddLabel(id, l); err != nil {
					t.Fatal(err)
				}
				nodes[id].labels[l] = true
			case 8: // delete node (detach)
				live := liveNodes()
				if len(live) == 0 {
					continue
				}
				id := live[r.Intn(len(live))]
				if err := g.DeleteNode(id); err != nil {
					t.Fatal(err)
				}
				delete(nodes, id)
				for rid, rel := range rels {
					if rel.from == id || rel.to == id {
						delete(rels, rid)
					}
				}
			case 9: // delete rel
				var live []RelID
				for _, id := range relIDs {
					if _, ok := rels[id]; ok {
						live = append(live, id)
					}
				}
				if len(live) == 0 {
					continue
				}
				id := live[r.Intn(len(live))]
				if err := g.DeleteRel(id); err != nil {
					t.Fatal(err)
				}
				delete(rels, id)
			}
		}

		// --- cross-check every observable ---
		if g.NumNodes() != len(nodes) {
			t.Fatalf("seed %d: NumNodes = %d, shadow %d", seed, g.NumNodes(), len(nodes))
		}
		if g.NumRels() != len(rels) {
			t.Fatalf("seed %d: NumRels = %d, shadow %d", seed, g.NumRels(), len(rels))
		}
		for _, l := range labels {
			want := 0
			for _, sn := range nodes {
				if sn.labels[l] {
					want++
				}
			}
			if got := g.CountByLabel(l); got != want {
				t.Fatalf("seed %d: CountByLabel(%s) = %d, shadow %d", seed, l, got, want)
			}
		}
		for id, sn := range nodes {
			for _, l := range labels {
				if g.NodeHasLabel(id, l) != sn.labels[l] {
					t.Fatalf("seed %d: node %d label %s mismatch", seed, id, l)
				}
			}
			if got, _ := g.NodeProp(id, "v").AsInt(); got != sn.props["v"] {
				t.Fatalf("seed %d: node %d prop v = %d, shadow %d", seed, id, got, sn.props["v"])
			}
			// Degree agrees.
			wantDeg := 0
			for _, rel := range rels {
				if rel.from == id {
					wantDeg++
				}
				if rel.to == id && rel.from != id {
					wantDeg++
				}
			}
			if got := g.Degree(id, DirBoth, nil); got != wantDeg {
				t.Fatalf("seed %d: node %d degree = %d, shadow %d", seed, id, got, wantDeg)
			}
		}
		// Indexed lookup agrees with a shadow scan.
		for v := int64(0); v < 5; v++ {
			want := 0
			for _, sn := range nodes {
				if sn.labels["A"] && sn.props["v"] == v {
					want++
				}
			}
			if got := len(g.NodesByProp("A", "v", Int(v))); got != want {
				t.Fatalf("seed %d: NodesByProp(A, v, %d) = %d, shadow %d", seed, v, got, want)
			}
		}
		// Snapshot round-trip preserves the final state.
		var equal bool
		func() {
			defer func() { equal = recover() == nil }()
			gg := mustRoundTrip(t, g)
			if gg.NumNodes() != len(nodes) || gg.NumRels() != len(rels) {
				panic("round-trip mismatch")
			}
		}()
		if !equal {
			t.Fatalf("seed %d: snapshot round-trip failed", seed)
		}
	}
}

func mustRoundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	gg, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return gg
}
