package graph

import (
	"bytes"
	"fmt"
	"testing"
)

// fixtureGraph rebuilds, in code, the exact graph behind the committed
// testdata/v1-golden.snapshot fixture (written once with the legacy v1
// writer). Keep in sync with the fixture — regenerating the fixture means
// regenerating it from this function.
func fixtureGraph() *Graph {
	g := New()
	labels := []string{"AS", "Prefix", "IP", "HostName", "Tag"}
	var ids []NodeID
	for i := 0; i < 40; i++ {
		props := Props{"id": Int(int64(i))}
		switch i % 4 {
		case 0:
			props["name"] = String(fmt.Sprintf("n%d", i))
		case 1:
			props["score"] = Float(float64(i) / 7.0)
		case 2:
			props["flag"] = Bool(i%8 == 2)
		case 3:
			props["tags"] = Strings("x", "y")
		}
		nl := []string{labels[i%len(labels)]}
		if i%3 == 0 {
			nl = append(nl, labels[(i+1)%len(labels)])
		}
		ids = append(ids, g.AddNode(nl, props))
	}
	types := []string{"ORIGINATE", "RESOLVES_TO", "PART_OF"}
	for i := 0; i < 60; i++ {
		from := ids[(i*7)%len(ids)]
		to := ids[(i*13+5)%len(ids)]
		if _, err := g.AddRel(types[i%len(types)], from, to, Props{"w": Int(int64(i))}); err != nil {
			panic(err)
		}
	}
	for _, i := range []int{4, 17, 29} {
		if err := g.DeleteNode(ids[i]); err != nil {
			panic(err)
		}
	}
	g.EnsureIndex("AS", "id")
	g.EnsureIndex("Prefix", "id")
	return g
}

// TestV1GoldenLoads is the backward-compatibility gate: the committed
// legacy-format fixture must keep loading, bit for bit, into the graph that
// produced it.
func TestV1GoldenLoads(t *testing.T) {
	g, err := LoadFile("testdata/v1-golden.snapshot")
	if err != nil {
		t.Fatalf("v1 golden fixture no longer loads: %v", err)
	}
	st := g.Stats()
	if st.Nodes != 37 || st.Rels != 50 {
		t.Fatalf("golden fixture decoded to %d nodes, %d rels; want 37, 50", st.Nodes, st.Rels)
	}
	wantByLabel := map[string]int{"AS": 11, "Prefix": 11, "IP": 10, "HostName": 10, "Tag": 9}
	for l, n := range wantByLabel {
		if st.ByLabel[l] != n {
			t.Errorf("label %s: %d nodes, want %d", l, st.ByLabel[l], n)
		}
	}
	for _, idx := range [][2]string{{"AS", "id"}, {"Prefix", "id"}} {
		if !g.HasIndex(idx[0], idx[1]) {
			t.Errorf("index %s.%s lost", idx[0], idx[1])
		}
	}
	// The decoded graph matches the in-code fixture node for node.
	graphsEquivalent(t, fixtureGraph(), g)
}

// TestV1GoldenResavesAsV2 checks the upgrade path: loading a v1 snapshot
// and re-saving it yields a v2 file describing the identical graph.
func TestV1GoldenResavesAsV2(t *testing.T) {
	g, err := LoadFile("testdata/v1-golden.snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if string(buf.Bytes()[:len(snapshotMagic)]) != snapshotMagic || buf.Bytes()[len(snapshotMagic)] != snapshotV2 {
		t.Fatal("re-save did not produce a v2 snapshot")
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatalf("v2 re-save does not load: %v", err)
	}
	graphsEquivalent(t, g, g2)
}

// TestV2BoxedGoldenLoads pins the pre-columnar v2 format: the committed
// fixture was written by the v2 encoder before the dictionary section
// existed (inline key/value properties, nodes directly after types). Those
// files are what deployed replicas and stores hold; they must keep loading.
func TestV2BoxedGoldenLoads(t *testing.T) {
	g, rep, err := LoadFileWith("testdata/v2-boxed.snapshot", LoadOptions{})
	if err != nil {
		t.Fatalf("pre-columnar v2 fixture no longer loads: %v", err)
	}
	if rep.DictStrings != 0 {
		t.Fatalf("boxed fixture reported %d dictionary strings; the format has no dictionary section", rep.DictStrings)
	}
	graphsEquivalent(t, fixtureGraph(), g)
	for _, idx := range [][2]string{{"AS", "id"}, {"Prefix", "id"}} {
		if !g.HasIndex(idx[0], idx[1]) {
			t.Errorf("index %s.%s lost", idx[0], idx[1])
		}
	}
	// Round-trip through the current (columnar) encoder.
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatalf("columnar re-save of boxed fixture does not load: %v", err)
	}
	graphsEquivalent(t, g, g2)
}

func TestV1EmptyLoads(t *testing.T) {
	g, err := LoadFile("testdata/v1-empty.snapshot")
	if err != nil {
		t.Fatalf("v1 empty fixture: %v", err)
	}
	if st := g.Stats(); st.Nodes != 0 || st.Rels != 0 {
		t.Fatalf("empty fixture decoded to %d nodes, %d rels", st.Nodes, st.Rels)
	}
}

// TestSnapshotByteStableWithMultipleIndexes pins the determinism the
// resumable-build guarantee rests on: two saves of equivalent graphs are
// byte-identical even with several property indexes (whose in-memory form
// is an unordered map).
func TestSnapshotByteStableWithMultipleIndexes(t *testing.T) {
	var a, b bytes.Buffer
	if err := fixtureGraph().Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := fixtureGraph().Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equivalent graphs produced different snapshot bytes")
	}
}
