package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() || Null().Kind() != KindNull {
		t.Error("Null() is not null")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("Bool round-trip failed")
	}
	if i, ok := Int(-42).AsInt(); !ok || i != -42 {
		t.Error("Int round-trip failed")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("Float round-trip failed")
	}
	// Ints convert to floats via AsFloat.
	if f, ok := Int(3).AsFloat(); !ok || f != 3.0 {
		t.Error("Int.AsFloat failed")
	}
	if s, ok := String("x").AsString(); !ok || s != "x" {
		t.Error("String round-trip failed")
	}
	l, ok := Strings("a", "b").AsList()
	if !ok || len(l) != 2 {
		t.Error("Strings round-trip failed")
	}
	// Wrong-kind accessors report !ok.
	if _, ok := Int(1).AsString(); ok {
		t.Error("Int.AsString should fail")
	}
	if _, ok := String("x").AsInt(); ok {
		t.Error("String.AsInt should fail")
	}
	if _, ok := String("x").AsFloat(); ok {
		t.Error("String.AsFloat should fail")
	}
}

func TestOf(t *testing.T) {
	tests := []struct {
		in   any
		want Value
	}{
		{nil, Null()},
		{true, Bool(true)},
		{int(7), Int(7)},
		{int32(7), Int(7)},
		{int64(7), Int(7)},
		{uint32(7), Int(7)},
		{uint64(7), Int(7)},
		{float32(1.5), Float(1.5)},
		{float64(1.5), Float(1.5)},
		{"s", String("s")},
		{[]string{"a"}, Strings("a")},
		{[]int{1, 2}, List(Int(1), Int(2))},
		{[]any{"a", 1}, List(String("a"), Int(1))},
		{Int(9), Int(9)},
	}
	for _, tc := range tests {
		if got := Of(tc.in); !got.Equal(tc.want) {
			t.Errorf("Of(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Of(struct{}{}) should panic")
		}
	}()
	Of(struct{}{})
}

func TestValueNativeRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Bool(true), Int(-3), Float(0.25), String("hello"),
		List(Int(1), String("two"), List(Bool(false))),
	}
	for _, v := range vals {
		back := Of(v.Native())
		if !v.Equal(back) {
			t.Errorf("Native round-trip: %v -> %v", v, back)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(2).Equal(Float(2.0)) {
		t.Error("Int(2) should equal Float(2.0) (Cypher numeric equality)")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("Int(2) should not equal Float(2.5)")
	}
	if Int(0).Equal(String("0")) {
		t.Error("Int(0) should not equal String(\"0\")")
	}
	if !List(Int(1), Int(2)).Equal(List(Int(1), Float(2))) {
		t.Error("lists should compare element-wise numerically")
	}
	if List(Int(1)).Equal(List(Int(1), Int(2))) {
		t.Error("lists of different length should differ")
	}
	if !Null().Equal(Null()) {
		t.Error("Null equals Null (value identity, not Cypher ternary)")
	}
}

func TestValueCompare(t *testing.T) {
	lt := func(a, b Value) {
		t.Helper()
		if c, _ := a.Compare(b); c >= 0 {
			t.Errorf("%v should be < %v", a, b)
		}
		if c, _ := b.Compare(a); c <= 0 {
			t.Errorf("%v should be > %v", b, a)
		}
	}
	lt(Int(1), Int(2))
	lt(Int(1), Float(1.5))
	lt(Float(-0.5), Int(0))
	lt(String("a"), String("b"))
	lt(Bool(false), Bool(true))
	lt(List(Int(1)), List(Int(1), Int(0)))
	lt(List(Int(1), Int(2)), List(Int(2)))
	if c, _ := Int(5).Compare(Float(5)); c != 0 {
		t.Error("Int(5) should compare equal to Float(5)")
	}
}

func TestValueCompareTotalOrderProperty(t *testing.T) {
	// Compare must be antisymmetric and transitive over random scalars:
	// the ORDER BY implementation relies on it.
	r := rand.New(rand.NewSource(5))
	randVal := func() Value {
		switch r.Intn(4) {
		case 0:
			return Int(int64(r.Intn(20) - 10))
		case 1:
			return Float(float64(r.Intn(40))/4 - 5)
		case 2:
			return String(string(rune('a' + r.Intn(5))))
		default:
			return Bool(r.Intn(2) == 0)
		}
	}
	for i := 0; i < 3000; i++ {
		a, b, c := randVal(), randVal(), randVal()
		ab, _ := a.Compare(b)
		ba, _ := b.Compare(a)
		if ab != -ba {
			t.Fatalf("antisymmetry violated: %v vs %v (%d, %d)", a, b, ab, ba)
		}
		bc, _ := b.Compare(c)
		ac, _ := a.Compare(c)
		if ab <= 0 && bc <= 0 && ac > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but a > c", a, b, c)
		}
	}
}

func TestIndexKeyConsistentWithEqual(t *testing.T) {
	// Equal values must produce equal index keys (index correctness);
	// checked over random int/float pairs including the integral-float
	// collision case.
	f := func(i int64) bool {
		a, b := Int(i), Float(float64(i))
		if math.Abs(float64(i)) > 1<<52 {
			return true // beyond float64 exactness
		}
		return a.Equal(b) == (a.key() == b.key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Int(1).key() == Int(2).key() {
		t.Error("distinct ints must not collide")
	}
	if String("a").key() == String("b").key() {
		t.Error("distinct strings must not collide")
	}
	if Strings("a", "b").key() != Strings("a", "b").key() {
		t.Error("equal lists must share a key")
	}
	if Strings("a", "b").key() == Strings("a", "c").key() {
		t.Error("distinct lists must not collide")
	}
}

func TestPropsCloneAndKeys(t *testing.T) {
	p := Props{"b": Int(1), "a": String("x")}
	c := p.Clone()
	c["c"] = Bool(true)
	if _, ok := p["c"]; ok {
		t.Error("Clone is not independent")
	}
	if !reflect.DeepEqual(p.Keys(), []string{"a", "b"}) {
		t.Errorf("Keys = %v", p.Keys())
	}
	if Props(nil).Clone() != nil {
		t.Error("nil Props clone should be nil")
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Bool(true), "true"},
		{Int(-7), "-7"},
		{String("a"), `"a"`},
		{List(Int(1), String("x")), `[1, "x"]`},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
