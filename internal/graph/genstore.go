package graph

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store keeps the last N graph snapshots ("generations") in one directory,
// mirroring how the paper's weekly IYP dumps accumulate: every Save writes
// a new gen-NNNNNN.snapshot durably and prunes the oldest beyond the
// retention count, and Open loads the newest generation that still passes
// verification — a torn or bit-flipped latest dump costs one generation,
// not the database.
//
// Layout:
//
//	dir/MANIFEST            text manifest, one "gen ..." line per generation
//	dir/gen-000001.snapshot snapshot files (format v2)
//	dir/*.tmp-*             in-flight writes; ignored and garbage-collected
//
// The manifest records each generation's size and whole-file CRC32C so Open
// can reject a damaged file before parsing it; the v2 snapshot's internal
// checksums are verified by Load regardless, so a stale or missing manifest
// (e.g. a crash between the snapshot rename and the manifest rename) only
// loses the fast pre-check, never correctness.
type Store struct {
	dir  string
	keep int

	// hookMu guards onSave and protect. Hooks are an in-process
	// convenience: a follower embedded in the builder's process gets woken
	// without polling; cross-process followers poll Head/Generations.
	hookMu  sync.Mutex
	onSave  []func(Generation)
	protect []func(seq uint64) bool
}

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// Keep is how many generations to retain (0 = 3).
	Keep int
}

// Generation describes one stored snapshot.
type Generation struct {
	Seq   uint64
	Path  string
	Size  int64
	CRC   uint32
	Nodes int
	Rels  int
	// manifested records whether the generation came from the manifest
	// (with a verifiable size+CRC) or a directory scan.
	manifested bool
}

// SkippedGeneration records a generation Open had to pass over, and why.
type SkippedGeneration struct {
	Seq    uint64
	Path   string
	Reason string
}

// OpenReport describes what Open loaded and what it skipped.
type OpenReport struct {
	Loaded  Generation
	Skipped []SkippedGeneration
}

// ErrNoGenerations is returned by Open when the store holds no loadable
// snapshot at all.
var ErrNoGenerations = errors.New("graph: store has no loadable generation")

// Typed verification failures, so a follower can classify why a generation
// was rejected (torn publish vs bit rot vs pruned-under-us) instead of
// pattern-matching reason strings. Checksum and structural damage are the
// existing ErrCorrupt.
var (
	// ErrGenMissing: the snapshot file is gone — pruned by the builder
	// between listing and loading, or never renamed into place.
	ErrGenMissing = errors.New("graph: generation file missing")
	// ErrGenTruncated: the file is shorter than its manifest record — a
	// torn write or partial copy still in flight.
	ErrGenTruncated = errors.New("graph: generation file truncated")
)

// Manifested reports whether the generation came from the manifest (with a
// verifiable size and CRC) rather than an orphan directory scan.
func (g Generation) Manifested() bool { return g.manifested }

const (
	storeManifest       = "MANIFEST"
	storeManifestHeader = "iyp-store v1"
)

// OpenStore opens (creating if needed) a generation store rooted at dir.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	keep := opts.Keep
	if keep <= 0 {
		keep = 3
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func genFileName(seq uint64) string { return fmt.Sprintf("gen-%06d.snapshot", seq) }

// parseGenSeq extracts NNNNNN from gen-NNNNNN.snapshot (ok=false otherwise).
func parseGenSeq(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "gen-%d.snapshot", &seq); n != 1 || err != nil {
		return 0, false
	}
	if name != genFileName(seq) {
		return 0, false
	}
	return seq, true
}

// readManifest parses the manifest, tolerating a missing file and ignoring
// malformed lines (a torn append truncates to the good prefix).
func (st *Store) readManifest() []Generation {
	data, err := os.ReadFile(filepath.Join(st.dir, storeManifest))
	if err != nil {
		return nil
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != storeManifestHeader {
		return nil
	}
	var gens []Generation
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var g Generation
		var file string
		var crc uint32
		if n, err := fmt.Sscanf(line, "gen %d %s %d %08x %d %d",
			&g.Seq, &file, &g.Size, &crc, &g.Nodes, &g.Rels); n != 6 || err != nil {
			continue
		}
		g.CRC = crc
		g.Path = filepath.Join(st.dir, file)
		g.manifested = true
		gens = append(gens, g)
	}
	return gens
}

// writeManifest durably replaces the manifest with the given generations.
func (st *Store) writeManifest(gens []Generation) error {
	var sb strings.Builder
	sb.WriteString(storeManifestHeader + "\n")
	for _, g := range gens {
		fmt.Fprintf(&sb, "gen %d %s %d %08x %d %d\n",
			g.Seq, filepath.Base(g.Path), g.Size, g.CRC, g.Nodes, g.Rels)
	}
	path := filepath.Join(st.dir, storeManifest)
	f, err := os.CreateTemp(st.dir, storeManifest+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.WriteString(sb.String()); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(st.dir)
}

// Generations lists the store's generations, newest first: the manifest's
// entries plus any complete-but-unmanifested snapshot files found on disk
// (a crash between the snapshot rename and the manifest update leaves one).
//
// Listing is safe while another process (or goroutine) is mid-Publish on
// the same directory: the manifest and every snapshot land via atomic
// rename, so each read sees a complete old or new file, never a torn one.
// The manifest read and the directory scan are two separate snapshots of a
// moving directory, though, so the combined view can be transiently stale —
// a just-published generation may appear as an orphan before its manifest
// entry is visible, and a just-pruned file may still be listed. Callers
// must treat every entry as a candidate to verify (VerifyGen / Open do),
// not as a promise the file is still there.
func (st *Store) Generations() ([]Generation, error) {
	gens := st.readManifest()
	seen := make(map[uint64]bool, len(gens))
	for _, g := range gens {
		seen[g.Seq] = true
	}
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		seq, ok := parseGenSeq(e.Name())
		if !ok || seen[seq] {
			continue
		}
		g := Generation{Seq: seq, Path: filepath.Join(st.dir, e.Name())}
		info, err := e.Info()
		if err != nil {
			// The file vanished between the directory read and the stat: a
			// concurrent Save pruned it. It was never manifested in the view
			// we read, so it is not a generation we can offer.
			continue
		}
		g.Size = info.Size()
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Seq > gens[j].Seq })
	return gens, nil
}

// Head returns the newest generation currently visible in the store (ok is
// false when the store is empty). This is the follower's poll target: cheap
// enough to call every few hundred milliseconds, and safe against a
// concurrent Publish — see Generations.
func (st *Store) Head() (Generation, bool, error) {
	gens, err := st.Generations()
	if err != nil || len(gens) == 0 {
		return Generation{}, false, err
	}
	return gens[0], true, nil
}

// MTime returns the manifest's modification time (ok=false when the store
// has no manifest yet). Every Save atomically replaces the manifest, so the
// mtime is a one-stat change signal: a cross-process follower can watch it
// at a fast cadence and run a full listing only when it moves — the
// cheap half of builder→replica push notification.
func (st *Store) MTime() (time.Time, bool) {
	info, err := os.Stat(filepath.Join(st.dir, storeManifest))
	if err != nil {
		return time.Time{}, false
	}
	return info.ModTime(), true
}

// Protect registers a predicate consulted before Save prunes a generation
// beyond the retention count: any generation whose sequence some registered
// predicate reports true for is kept on disk (and in the manifest, so its
// CRC record survives) until a later Save finds it unprotected. AS-OF
// history caches use this so pruning never deletes a snapshot that a
// pinned or materialized historical reader still depends on.
func (st *Store) Protect(fn func(seq uint64) bool) {
	st.hookMu.Lock()
	st.protect = append(st.protect, fn)
	st.hookMu.Unlock()
}

// protected reports whether any registered predicate claims seq.
func (st *Store) protected(seq uint64) bool {
	st.hookMu.Lock()
	fns := st.protect
	st.hookMu.Unlock()
	for _, fn := range fns {
		if fn(seq) {
			return true
		}
	}
	return false
}

// OnSave registers fn to run after every successful Save in this process,
// with the generation just published. Cross-process followers cannot use
// this (they poll Head); an embedded follower uses it to reload without
// waiting out its poll interval. fn must not call Save.
func (st *Store) OnSave(fn func(Generation)) {
	st.hookMu.Lock()
	st.onSave = append(st.onSave, fn)
	st.hookMu.Unlock()
}

// Save writes g as the next generation: snapshot to a temp file (fsync'd,
// CRC computed in-flight), atomic rename, directory fsync, then a durable
// manifest update and pruning down to the retention count. The previous
// generations are untouched until the new one is fully durable.
func (st *Store) Save(g *Graph) (Generation, error) {
	gens, err := st.Generations()
	if err != nil {
		return Generation{}, err
	}
	var seq uint64 = 1
	if len(gens) > 0 {
		seq = gens[0].Seq + 1
	}
	name := genFileName(seq)
	path := filepath.Join(st.dir, name)

	f, err := os.CreateTemp(st.dir, name+".tmp-*")
	if err != nil {
		return Generation{}, err
	}
	tmp := f.Name()
	fail := func(err error) (Generation, error) {
		f.Close()
		os.Remove(tmp)
		return Generation{}, err
	}
	h := crc32.New(castagnoli)
	cw := &countWriter{w: io.MultiWriter(f, h)}
	if err := g.Save(cw); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return Generation{}, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return Generation{}, err
	}
	if err := syncDir(st.dir); err != nil {
		return Generation{}, err
	}

	st.gcTempFiles()

	gen := Generation{
		Seq:        seq,
		Path:       path,
		Size:       cw.n,
		CRC:        h.Sum32(),
		Nodes:      g.NumNodes(),
		Rels:       g.NumRels(),
		manifested: true,
	}
	all := append([]Generation{gen}, gens...)
	keepGens := all
	var pruned []Generation
	if len(all) > st.keep {
		// Generations beyond the retention count are pruned unless a
		// Protect predicate claims them (a historical reader has the
		// snapshot pinned or materialized); protected ones stay in the
		// manifest so their CRC records survive until protection drains.
		keepGens = all[:st.keep:st.keep]
		for _, p := range all[st.keep:] {
			if st.protected(p.Seq) {
				keepGens = append(keepGens, p)
			} else {
				pruned = append(pruned, p)
			}
		}
	}
	// Manifest first, then prune: the manifest never references a deleted
	// file, and a crash in between only leaves orphans a later Save removes.
	if err := st.writeManifest(keepGens); err != nil {
		return Generation{}, err
	}
	for _, p := range pruned {
		os.Remove(p.Path)
	}
	st.hookMu.Lock()
	hooks := append([]func(Generation){}, st.onSave...)
	st.hookMu.Unlock()
	for _, fn := range hooks {
		fn(gen)
	}
	return gen, nil
}

// gcTempFiles removes leftover in-flight files from crashed writers.
func (st *Store) gcTempFiles() {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			os.Remove(filepath.Join(st.dir, e.Name()))
		}
	}
}

// Open loads the newest generation that passes verification, walking
// backwards over older generations when the latest is torn, bit-flipped, or
// missing. The report says which generation was loaded and which were
// skipped (and why); an error is returned only when no generation loads.
//
// A fast concurrent publisher can lap a reader: every generation in one
// listing may be pruned before Open reaches it. When all candidates
// vanished that way, Open re-lists (bounded) — by definition newer
// generations were published meanwhile.
func (st *Store) Open() (*Graph, OpenReport, error) {
	const relistAttempts = 3
	var report OpenReport
	for attempt := 1; ; attempt++ {
		report = OpenReport{}
		gens, err := st.Generations()
		if err != nil {
			return nil, report, err
		}
		if len(gens) == 0 {
			return nil, report, ErrNoGenerations
		}
		allVanished := true
		for _, gen := range gens {
			if err := st.VerifyGen(gen); err != nil {
				report.Skipped = append(report.Skipped, SkippedGeneration{Seq: gen.Seq, Path: gen.Path, Reason: err.Error()})
				if !errors.Is(err, ErrGenMissing) {
					allVanished = false
				}
				continue
			}
			g, err := LoadFile(gen.Path)
			if err != nil {
				report.Skipped = append(report.Skipped, SkippedGeneration{Seq: gen.Seq, Path: gen.Path, Reason: err.Error()})
				if !errors.Is(err, os.ErrNotExist) {
					allVanished = false
				}
				continue
			}
			gen.Nodes, gen.Rels = g.NumNodes(), g.NumRels()
			report.Loaded = gen
			return g, report, nil
		}
		if !allVanished || attempt >= relistAttempts {
			return nil, report, fmt.Errorf("%w (%d generation(s) failed verification)", ErrNoGenerations, len(report.Skipped))
		}
	}
}

// VerifyGen pre-checks a generation against its manifest record without
// loading it, returning a typed error a follower can classify: ErrGenMissing
// when the file is gone, ErrGenTruncated when it is shorter than the
// manifest says, ErrCorrupt on a checksum mismatch (or an over-long file —
// garbage appended past a valid snapshot is damage, not slack). A nil
// return means "try loading it": Load still verifies the snapshot's own
// internal checksums, so an unmanifested orphan (no recorded size/CRC)
// passes here and is judged by the loader.
func (st *Store) VerifyGen(gen Generation) error {
	info, err := os.Stat(gen.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrGenMissing, gen.Path)
		}
		return err
	}
	if !gen.manifested {
		return nil // no recorded size/CRC to compare against
	}
	if info.Size() < gen.Size {
		return fmt.Errorf("%w: manifest records %d bytes, file has %d", ErrGenTruncated, gen.Size, info.Size())
	}
	if info.Size() > gen.Size {
		return corruptf("file is %d bytes, manifest records %d", info.Size(), gen.Size)
	}
	f, err := os.Open(gen.Path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrGenMissing, gen.Path)
		}
		return err
	}
	defer f.Close()
	h := crc32.New(castagnoli)
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	if h.Sum32() != gen.CRC {
		return corruptf("checksum mismatch (manifest %08x, file %08x)", gen.CRC, h.Sum32())
	}
	return nil
}

// countWriter counts bytes written through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
