package graph

import (
	"bytes"
	"testing"
)

// bruteStats recomputes the planner statistics from scratch so the tests
// can assert the incrementally-maintained counters never drift.
func bruteStats(g *Graph) (typeCounts []int, labelKey map[propIdxID]int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	typeCounts = make([]int, len(g.typeNames))
	for _, r := range g.rels {
		if r != nil {
			typeCounts[r.typ]++
		}
	}
	labelKey = make(map[propIdxID]int)
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		for _, lid := range g.lsets[n.lset] {
			for _, e := range n.cprops {
				labelKey[propIdxID{lid, e.key}]++
			}
		}
	}
	return typeCounts, labelKey
}

func checkStats(t *testing.T, g *Graph, when string) {
	t.Helper()
	wantTypes, wantLK := bruteStats(g)
	g.mu.RLock()
	gotTypes := append([]int(nil), g.typeCounts...)
	gotLK := make(map[propIdxID]int, len(g.labelKeyCount))
	for k, v := range g.labelKeyCount {
		gotLK[k] = v
	}
	g.mu.RUnlock()
	if len(gotTypes) != len(wantTypes) {
		t.Fatalf("%s: typeCounts length = %d, want %d", when, len(gotTypes), len(wantTypes))
	}
	for i := range wantTypes {
		if gotTypes[i] != wantTypes[i] {
			t.Errorf("%s: typeCounts[%d] = %d, want %d", when, i, gotTypes[i], wantTypes[i])
		}
	}
	for k, want := range wantLK {
		if gotLK[k] != want {
			t.Errorf("%s: labelKeyCount[%v] = %d, want %d", when, k, gotLK[k], want)
		}
	}
	for k, got := range gotLK {
		if _, ok := wantLK[k]; !ok {
			t.Errorf("%s: labelKeyCount has stale entry %v = %d", when, k, got)
		}
		if got == 0 {
			t.Errorf("%s: labelKeyCount holds zero entry %v", when, k)
		}
	}
}

func TestStatsIncrementalMatchesBruteForce(t *testing.T) {
	g := New()
	checkStats(t, g, "empty")

	a := g.AddNode([]string{"AS"}, Props{"asn": Int(1), "name": String("one")})
	b := g.AddNode([]string{"AS", "Org"}, Props{"asn": Int(2)})
	c := g.AddNode([]string{"Prefix"}, Props{"prefix": String("10.0.0.0/8")})
	checkStats(t, g, "after adds")

	r1, err := g.AddRel("PEERS_WITH", a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddRel("ORIGINATE", a, c, Props{"count": Int(3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddRel("PEERS_WITH", b, a, nil); err != nil {
		t.Fatal(err)
	}
	checkStats(t, g, "after rels")

	// Property set, overwrite, and clear.
	if err := g.SetNodeProp(a, "country", String("NL")); err != nil {
		t.Fatal(err)
	}
	if err := g.SetNodeProp(a, "country", String("DE")); err != nil {
		t.Fatal(err)
	}
	checkStats(t, g, "after prop set/overwrite")
	if err := g.SetNodeProp(a, "name", Null()); err != nil {
		t.Fatal(err)
	}
	checkStats(t, g, "after prop clear")

	// Adding a label re-counts the node's props under the new label.
	if err := g.AddLabel(c, "Resource"); err != nil {
		t.Fatal(err)
	}
	checkStats(t, g, "after add label")

	// Indexes must not change the counters (they only add Distinct).
	g.EnsureIndex("AS", "asn")
	checkStats(t, g, "after EnsureIndex")

	if err := g.DeleteRel(r1); err != nil {
		t.Fatal(err)
	}
	checkStats(t, g, "after rel delete")

	// DETACH DELETE removes the node's props from every label's count and
	// its relationships from the type counts.
	if err := g.DeleteNode(a); err != nil {
		t.Fatal(err)
	}
	checkStats(t, g, "after node delete")
}

func TestStatsBatchApply(t *testing.T) {
	g := New()
	seed := g.AddNode([]string{"AS"}, Props{"asn": Int(10)})

	bt := NewBatch()
	n1 := bt.MergeNode("AS", "asn", Int(10), []string{"Anycast"}, Props{"name": String("ten")})
	n2 := bt.MergeNode("Prefix", "prefix", String("192.0.2.0/24"), nil, nil)
	if err := bt.AddRel("ORIGINATE", n1, n2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ApplyBatch(bt); err != nil {
		t.Fatal(err)
	}
	checkStats(t, g, "after batch")

	if got, _ := g.NodeProp(seed, "name").AsString(); got != "ten" {
		t.Fatalf("merge did not land on seed node: name = %q", got)
	}
}

func TestStatsSurviveSnapshotRoundTrip(t *testing.T) {
	g := New()
	a := g.AddNode([]string{"AS"}, Props{"asn": Int(64500), "name": String("x")})
	b := g.AddNode([]string{"AS"}, Props{"asn": Int(64501)})
	p := g.AddNode([]string{"Prefix"}, Props{"prefix": String("198.51.100.0/24")})
	if _, err := g.AddRel("PEERS_WITH", a, b, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddRel("ORIGINATE", a, p, nil); err != nil {
		t.Fatal(err)
	}
	g.EnsureIndex("AS", "asn")

	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	checkStats(t, g2, "after snapshot round trip")

	ps := g2.PropCardinality("AS", "asn")
	if ps.WithKey != 2 || !ps.Indexed || ps.Distinct != 2 {
		t.Fatalf("PropCardinality(AS, asn) = %+v, want WithKey=2 Indexed=true Distinct=2", ps)
	}
	if got := g2.RelTypeCardinality("PEERS_WITH"); got != 1 {
		t.Fatalf("RelTypeCardinality(PEERS_WITH) = %d, want 1", got)
	}
}

func TestPropCardinalityAPI(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.AddNode([]string{"AS"}, Props{"asn": Int(int64(i)), "cc": String("NL")})
	}
	g.AddNode([]string{"AS"}, nil) // no props

	ps := g.PropCardinality("AS", "asn")
	if ps.WithKey != 10 || ps.Indexed {
		t.Fatalf("before index: %+v, want WithKey=10 Indexed=false", ps)
	}
	if got := ps.Selectivity(); got != 10 {
		t.Fatalf("unindexed Selectivity = %v, want 10 (conservative)", got)
	}

	g.EnsureIndex("AS", "asn")
	g.EnsureIndex("AS", "cc")
	if ps = g.PropCardinality("AS", "asn"); !ps.Indexed || ps.Distinct != 10 {
		t.Fatalf("asn after index: %+v, want Distinct=10", ps)
	}
	if got := ps.Selectivity(); got != 1 {
		t.Fatalf("asn Selectivity = %v, want 1", got)
	}
	if ps = g.PropCardinality("AS", "cc"); ps.Distinct != 1 || ps.WithKey != 10 {
		t.Fatalf("cc after index: %+v, want WithKey=10 Distinct=1", ps)
	}

	if ps = g.PropCardinality("Nope", "x"); ps != (PropStats{}) {
		t.Fatalf("unknown label: %+v, want zero", ps)
	}
	if got := g.RelTypeCardinality("NONE"); got != 0 {
		t.Fatalf("RelTypeCardinality(NONE) = %d, want 0", got)
	}
	if got := g.RelTypeDegree("NONE"); got != 0 {
		t.Fatalf("RelTypeDegree(NONE) = %d, want 0", int(got))
	}
	if _, err := g.AddRel("PEERS_WITH", 1, 2, nil); err != nil {
		t.Fatal(err)
	}
	if got, want := g.RelTypeDegree("PEERS_WITH"), 1.0/11; got != want {
		t.Fatalf("RelTypeDegree(PEERS_WITH) = %v, want %v", got, want)
	}
}
