package graph

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func snapshotBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// seedGraph builds a small mutable graph with an index, some labels and
// relationships — enough to exercise every COW path.
func seedGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	g.EnsureIndex("AS", "asn")
	for i := 1; i <= 10; i++ {
		id, created := g.MergeNode("AS", "asn", Int(int64(i)), nil, Props{"name": String(fmt.Sprintf("AS%d", i))})
		if !created {
			t.Fatalf("seed: AS %d existed", i)
		}
		if i > 1 {
			if _, err := g.AddRel("PEERS_WITH", id-1, id, nil); err != nil {
				t.Fatalf("seed: rel: %v", err)
			}
		}
	}
	return g
}

func TestFrozenGraphRejectsWrites(t *testing.T) {
	g := seedGraph(t)
	g.Freeze()
	if !g.Frozen() {
		t.Fatal("graph not frozen")
	}
	if _, err := g.ApplyBatch(NewBatch()); !errors.Is(err, ErrFrozen) {
		t.Fatalf("ApplyBatch on frozen graph: err = %v, want ErrFrozen", err)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on frozen graph did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("AddNode", func() { g.AddNode([]string{"X"}, nil) })
	mustPanic("SetNodeProp", func() { _ = g.SetNodeProp(1, "k", Int(1)) })
	mustPanic("DeleteNode", func() { _ = g.DeleteNode(1) })
	mustPanic("AddRel", func() { _, _ = g.AddRel("T", 1, 2, nil) })
	mustPanic("EnsureIndex", func() { g.EnsureIndex("AS", "name") })
	mustPanic("MergeNode", func() { g.MergeNode("AS", "asn", Int(1), nil, nil) })
}

func TestCloneRequiresFrozen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clone of a live graph did not panic")
		}
	}()
	New().Clone()
}

// TestCloneCopyOnWriteIsolation is the core MVCC correctness test: mutating
// a clone must leave the frozen parent byte-identical, and the clone must
// end up byte-identical to a graph that had the same ops applied directly.
func TestCloneCopyOnWriteIsolation(t *testing.T) {
	// ops exercises every COW path: in-place merge on an indexed node,
	// property overwrite (index remove+add), new label on an existing node,
	// rel add/delete, node delete (detach), new node, index backfill.
	ops := func(g *Graph) {
		if _, created := g.MergeNode("AS", "asn", Int(3), []string{"RouteCollector"}, Props{"name": String("renamed")}); created {
			panic("merge created")
		}
		if err := g.SetNodeProp(3, "name", String("overwritten")); err != nil {
			panic(err)
		}
		if err := g.SetNodeProp(4, "country", String("JP")); err != nil {
			panic(err)
		}
		if err := g.AddLabel(5, "IXP"); err != nil {
			panic(err)
		}
		if _, err := g.AddRel("MEMBER_OF", 1, 5, Props{"w": Int(7)}); err != nil {
			panic(err)
		}
		if err := g.DeleteRel(2); err != nil {
			panic(err)
		}
		if err := g.DeleteNode(10); err != nil {
			panic(err)
		}
		g.AddNode([]string{"Prefix"}, Props{"prefix": String("10.0.0.0/8")})
		g.EnsureIndex("AS", "name")
		if err := g.SetNodeProp(6, "name", Null()); err != nil { // prop delete
			panic(err)
		}
	}

	parent := seedGraph(t)
	parent.Freeze()
	parentBefore := snapshotBytes(t, parent)

	clone := parent.Clone()
	ops(clone)

	if got := snapshotBytes(t, parent); !bytes.Equal(got, parentBefore) {
		t.Fatal("mutating the clone changed the frozen parent")
	}

	// A fresh graph with the same history must be byte-identical to the
	// clone (snapshots encode deterministically).
	want := seedGraph(t)
	ops(want)
	if !bytes.Equal(snapshotBytes(t, clone), snapshotBytes(t, want)) {
		t.Fatal("clone after ops differs from directly-built graph")
	}

	// And the clone's query-visible state must be correct.
	if got := clone.NodeProp(3, "name"); !got.Equal(String("overwritten")) {
		t.Fatalf("clone node 3 name = %v", got)
	}
	if !parent.NodeProp(3, "name").Equal(String("AS3")) {
		t.Fatal("parent node 3 renamed")
	}
	if !clone.NodeHasLabel(5, "IXP") || parent.NodeHasLabel(5, "IXP") {
		t.Fatal("IXP label leaked between generations")
	}
	if clone.HasNode(10) || !parent.HasNode(10) {
		t.Fatal("node 10 deletion leaked")
	}
	if got := clone.NodesByProp("AS", "asn", Int(3)); len(got) != 1 || got[0] != 3 {
		t.Fatalf("clone index lookup = %v", got)
	}
	if got := parent.NodesByProp("AS", "asn", Int(10)); len(got) != 1 || got[0] != 10 {
		t.Fatalf("parent index lookup after clone delete = %v", got)
	}
}

func TestMVStoreLifecycle(t *testing.T) {
	st := NewMVStore(seedGraph(t))
	if st.CurrentGen() != 1 {
		t.Fatalf("initial gen = %d", st.CurrentGen())
	}

	g1, gen1, release1 := st.Acquire()
	if gen1 != 1 || !g1.Frozen() {
		t.Fatalf("Acquire: gen=%d frozen=%v", gen1, g1.Frozen())
	}
	n1 := g1.NumNodes()

	b := NewBatch()
	h := b.MergeNode("AS", "asn", Int(99), nil, Props{"name": String("new")})
	if err := b.AddLabel(h, "Tagged"); err != nil {
		t.Fatal(err)
	}
	res, gen2, err := st.ApplyBatch(b)
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if gen2 != 2 || res.NodesCreated != 1 {
		t.Fatalf("ApplyBatch: gen=%d created=%d", gen2, res.NodesCreated)
	}

	// The pinned snapshot still sees the old state; the head sees the new.
	if g1.NumNodes() != n1 {
		t.Fatal("pinned generation changed under reader")
	}
	if st.Current().NumNodes() != n1+1 {
		t.Fatal("head missing the new node")
	}

	// AcquireGen can still reach generation 1.
	gOld, releaseOld, err := st.AcquireGen(1)
	if err != nil {
		t.Fatalf("AcquireGen(1): %v", err)
	}
	if gOld != g1 {
		t.Fatal("AcquireGen(1) returned a different graph")
	}
	releaseOld()
	release1()
	release1() // idempotent

	if _, _, err := st.AcquireGen(77); err == nil {
		t.Fatal("AcquireGen of unknown generation succeeded")
	}
}

func TestMVStoreUpdateErrorDiscardsClone(t *testing.T) {
	st := NewMVStore(seedGraph(t))
	before := snapshotBytes(t, st.Current())
	boom := errors.New("boom")
	if _, err := st.Update(func(g *Graph) error {
		g.AddNode([]string{"Junk"}, nil)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Update error = %v", err)
	}
	if st.CurrentGen() != 1 {
		t.Fatalf("failed update advanced generation to %d", st.CurrentGen())
	}
	if !bytes.Equal(snapshotBytes(t, st.Current()), before) {
		t.Fatal("failed update mutated the head")
	}
}

func TestMVStoreReclamation(t *testing.T) {
	st := NewMVStore(seedGraph(t))
	st.SetRetain(1)

	var retired int
	var mu sync.Mutex
	st.OnRetire(func(*Graph) {
		mu.Lock()
		retired++
		mu.Unlock()
	})

	// Pin generation 1, then publish 6 more generations.
	_, gen, release := st.Acquire()
	if gen != 1 {
		t.Fatalf("gen = %d", gen)
	}
	for i := 0; i < 6; i++ {
		if _, err := st.Update(func(g *Graph) error {
			g.AddNode([]string{"Churn"}, nil)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Generations 2..5 are retired, unpinned, and outside retain=1 → gone.
	// Generation 1 is pinned → must survive despite being superseded.
	if _, releaseG1, err := st.AcquireGen(1); err != nil {
		t.Fatalf("pinned generation 1 was reclaimed: %v", err)
	} else {
		releaseG1()
	}
	if _, _, err := st.AcquireGen(3); err == nil {
		t.Fatal("generation 3 should have been reclaimed")
	}
	if got := st.Reclaimed(); got < 3 {
		t.Fatalf("reclaimed = %d, want >= 3", got)
	}

	// Releasing the last pin lets generation 1 go too.
	release()
	st.SetRetain(1) // nudge reclamation
	if _, _, err := st.AcquireGen(1); err == nil {
		t.Fatal("generation 1 still available after release + reclaim")
	}
	mu.Lock()
	if retired < 4 {
		t.Fatalf("OnRetire ran %d times, want >= 4", retired)
	}
	mu.Unlock()

	// The store tracks only the retain window now.
	if live := st.Live(); live > 2 {
		t.Fatalf("live generations = %d, want <= 2 (current + retain 1)", live)
	}

	gens := st.Generations()
	if len(gens) == 0 || !gens[len(gens)-1].Current || gens[len(gens)-1].Gen != 7 {
		t.Fatalf("Generations() = %+v", gens)
	}
}

// TestMVStoreConcurrentReadersWriters hammers Acquire/release against
// Update from many goroutines; run with -race this is the core safety
// check that lock-free frozen reads never observe a mutation.
func TestMVStoreConcurrentReadersWriters(t *testing.T) {
	st := NewMVStore(seedGraph(t))
	st.SetRetain(0)

	const readers = 8
	const writes = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g, _, release := st.Acquire()
				// Exercise a read mix: counts, index lookups, traversal.
				nodes := g.NumNodes()
				byLabel := g.CountByLabel("AS")
				if byLabel > nodes {
					t.Errorf("label count %d exceeds node count %d", byLabel, nodes)
				}
				for _, id := range g.NodesByLabel("Churn") {
					if !g.HasNode(id) {
						t.Errorf("label index lists dead node %d", id)
					}
				}
				g.Rels(1, DirBoth, nil, nil)
				release()
			}
		}()
	}

	for i := 0; i < writes; i++ {
		if _, err := st.Update(func(g *Graph) error {
			id := g.AddNode([]string{"Churn"}, Props{"i": Int(int64(i))})
			if id%3 == 0 {
				return g.DeleteNode(id)
			}
			_, err := g.AddRel("PEERS_WITH", 1, id, nil)
			return err
		}); err != nil {
			t.Errorf("update %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if st.CurrentGen() != uint64(1+writes) {
		t.Fatalf("final gen = %d, want %d", st.CurrentGen(), 1+writes)
	}
}

func TestMVStoreSwapPublishesLoadedGraph(t *testing.T) {
	st := NewMVStore(seedGraph(t))
	oldG, oldGen, release := st.Acquire()
	if oldGen != 1 {
		t.Fatalf("initial generation = %d", oldGen)
	}

	next := New()
	next.AddNode([]string{"Replacement"}, Props{"v": Int(42)})
	if gen := st.Swap(next); gen != 2 {
		t.Fatalf("Swap returned generation %d, want 2", gen)
	}
	if st.Current() != next || st.CurrentGen() != 2 {
		t.Fatal("Swap did not publish the new graph as head")
	}
	// Swap takes ownership: the published graph is frozen.
	if !next.Frozen() {
		t.Fatal("Swap did not freeze the published graph")
	}
	// The pinned reader still sees the superseded generation, whole.
	if n := oldG.NumNodes(); n != 10 {
		t.Fatalf("pinned reader sees %d nodes after swap, want 10", n)
	}
	release()

	// A second swap retires generation 2 in turn.
	another := New()
	another.AddNode([]string{"Replacement"}, Props{"v": Int(43)})
	if gen := st.Swap(another); gen != 3 {
		t.Fatalf("second Swap returned %d, want 3", gen)
	}
}

// TestMVStorePinDrainUnderGenerationChurn is the replica reload pattern at
// stress pace: a follower swaps whole new generations in every few
// microseconds while readers continuously pin and release. Every retired
// generation must be reclaimed once its pins drain — no leaked pins, no
// generations kept alive forever.
func TestMVStorePinDrainUnderGenerationChurn(t *testing.T) {
	st := NewMVStore(seedGraph(t))
	st.SetRetain(0) // reclaim superseded generations as soon as pins drain

	const swaps = 300
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g, _, release := st.Acquire()
				if g.NumNodes() == 0 {
					t.Error("acquired an empty generation")
				}
				release()
			}
		}()
	}

	for i := 0; i < swaps; i++ {
		g := New()
		g.AddNode([]string{"Marker"}, Props{"gen": Int(int64(i))})
		st.Swap(g)
	}
	close(stop)
	wg.Wait()

	// Reclamation must catch up on its own: the final releases and swaps
	// already triggered it, so no nudge is allowed here. swaps generations
	// were retired (the seed plus all but the last marker); with retain 0
	// only the head may survive.
	for tries := 0; ; tries++ {
		if st.Live() == 1 && st.Reclaimed() == uint64(swaps) {
			break
		}
		if tries > 1000 {
			t.Fatalf("reclamation never caught up: live=%d reclaimed=%d (want 1, %d)",
				st.Live(), st.Reclaimed(), swaps)
		}
	}
	for _, gi := range st.Generations() {
		if gi.Pins != 0 {
			t.Errorf("generation %d leaked %d pins", gi.Gen, gi.Pins)
		}
	}
}
