package graph

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"runtime"
	"testing"
)

// corpusGraph is the deterministic graph behind the corruption sweeps:
// small enough that per-byte sweeps stay fast, rich enough to exercise
// every section (multi-label nodes, tombstones, every value kind, two
// indexes).
func corpusGraph() *Graph {
	return fixtureGraph()
}

func v2Bytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := corpusGraph().Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func v1Bytes(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile("testdata/v1-golden.snapshot")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mustFailLoad asserts Load rejects the input without panicking and without
// allocating beyond what the input can plausibly back.
func mustFailLoad(t *testing.T, data []byte, what string) {
	t.Helper()
	g, err := Load(bytes.NewReader(data))
	if err == nil {
		t.Fatalf("%s: Load accepted corrupt input (%d nodes)", what, g.NumNodes())
	}
}

func TestLoadV2TruncationSweep(t *testing.T) {
	data := v2Bytes(t)
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	for i := 0; i < len(data); i++ {
		_, err := Load(bytes.NewReader(data[:i]))
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", i, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error not ErrCorrupt: %v", i, err)
		}
	}
}

func TestLoadV1TruncationSweep(t *testing.T) {
	data := v1Bytes(t)
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine v1 snapshot rejected: %v", err)
	}
	for i := 0; i < len(data); i++ {
		_, err := Load(bytes.NewReader(data[:i]))
		if err == nil {
			t.Fatalf("v1 truncation at %d/%d bytes accepted", i, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("v1 truncation at %d: error not ErrCorrupt: %v", i, err)
		}
	}
}

func TestLoadV2BitFlipSweep(t *testing.T) {
	data := v2Bytes(t)
	for i := 0; i < len(data); i++ {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 1 << (i % 8)
		mustFailLoad(t, flipped, "bit flip")
	}
}

func TestLoadV1BitFlipSweep(t *testing.T) {
	// v1's only integrity check is the gzip payload CRC, which covers the
	// decompressed bytes — not the container. Flips in don't-care coding
	// bits (gzip header metadata, final-block bit padding) are invisible to
	// it; that blind spot is what format v2's whole-file checksum closes.
	// So the v1 guarantee under test is weaker but still real: every
	// single-bit flip either fails to load or decodes to the exact same
	// graph — never a silently different one.
	data := v1Bytes(t)
	var golden bytes.Buffer
	{
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Save(&golden); err != nil {
			t.Fatal(err)
		}
	}
	detected := 0
	for i := 0; i < len(data); i++ {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 1 << (i % 8)
		g, err := Load(bytes.NewReader(flipped))
		if err != nil {
			detected++
			continue
		}
		var resaved bytes.Buffer
		if err := g.Save(&resaved); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resaved.Bytes(), golden.Bytes()) {
			t.Fatalf("v1 flip at byte %d bit %d loaded a DIFFERENT graph undetected", i, i%8)
		}
	}
	// The vast majority of flips must be caught; only container don't-care
	// bits may pass (and those provably decode identically, checked above).
	if detected < len(data)*9/10 {
		t.Fatalf("only %d/%d flips detected", detected, len(data))
	}
}

// repatch recomputes the v2 total CRC after a mutation, so the test reaches
// the per-section defenses behind the whole-file checksum.
func repatch(data []byte, mutate func([]byte)) []byte {
	out := append([]byte(nil), data...)
	mutate(out)
	crcOff := len(out) - len(snapshotEndMagic) - 4
	binary.LittleEndian.PutUint32(out[crcOff:], crc32.Checksum(out[:crcOff], castagnoli))
	return out
}

func TestLoadV2LyingSectionHeaders(t *testing.T) {
	data := v2Bytes(t)
	// First section header sits right after magic+version: id u8 at 5,
	// crc u32 at 6, clen u64 at 10, ulen u64 at 18.
	cases := []struct {
		name   string
		mutate func([]byte)
	}{
		{"huge compressed length", func(b []byte) { binary.LittleEndian.PutUint64(b[10:], 1<<60) }},
		{"huge uncompressed length", func(b []byte) { binary.LittleEndian.PutUint64(b[18:], 1<<60) }},
		{"undersized uncompressed length", func(b []byte) { binary.LittleEndian.PutUint64(b[18:], 1) }},
		{"wrong section id", func(b []byte) { b[5] = secRels }},
		{"zeroed section crc", func(b []byte) { binary.LittleEndian.PutUint32(b[6:], 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := repatch(data, tc.mutate)
			g, err := Load(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("accepted (%d nodes)", g.NumNodes())
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error not ErrCorrupt: %v", err)
			}
		})
	}
}

func TestLoadV2LyingTrailerCounts(t *testing.T) {
	data := v2Bytes(t)
	trailerOff := len(data) - trailerSize
	bad := repatch(data, func(b []byte) {
		binary.LittleEndian.PutUint64(b[trailerOff+1:], 9999) // node count
	})
	if _, err := Load(bytes.NewReader(bad)); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying trailer counts: %v", err)
	}
}

func TestLoadRejectsDuplicatedFile(t *testing.T) {
	// A botched rename/append that doubles the file: the end magic is still
	// in place, but the whole-file checksum exposes it.
	data := v2Bytes(t)
	mustFailLoad(t, append(append([]byte(nil), data...), data...), "duplicated file")
	// Partial duplication: the file plus a prefix of itself.
	mustFailLoad(t, append(append([]byte(nil), data...), data[:len(data)/2]...), "partial duplication")
}

// v1Stream encodes a synthetic legacy-v1 snapshot stream; the v1 format has
// no checksums, so this is how lying length prefixes reach the decoder.
func v1Stream(t *testing.T, body func(e *encBuf)) []byte {
	t.Helper()
	var enc encBuf
	enc.b.WriteString(snapshotMagic)
	enc.byte(snapshotV1)
	body(&enc)
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(enc.b.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadV1LyingLengthsBoundAllocation(t *testing.T) {
	cases := []struct {
		name string
		body func(e *encBuf)
	}{
		{"huge label table", func(e *encBuf) { e.uvarint(1 << 40) }},
		{"huge string length", func(e *encBuf) {
			e.uvarint(1)       // one label...
			e.uvarint(1 << 62) // ...whose name claims 4 EiB
		}},
		{"huge node count", func(e *encBuf) {
			e.uvarint(0) // labels
			e.uvarint(0) // types
			e.uvarint(1 << 50)
		}},
		{"huge rel count", func(e *encBuf) {
			e.uvarint(0)
			e.uvarint(0)
			e.uvarint(0) // nodes
			e.uvarint(1 << 50)
		}},
		{"huge prop count", func(e *encBuf) {
			e.uvarint(1)
			e.string("AS")
			e.uvarint(0)
			e.uvarint(1)       // one node slot
			e.byte(1)          // present
			e.uvarint(0)       // no labels
			e.uvarint(1 << 40) // absurd property count
		}},
		{"huge list length", func(e *encBuf) {
			e.uvarint(0)
			e.uvarint(0)
			e.uvarint(1)
			e.byte(1)
			e.uvarint(0)
			e.uvarint(1) // one prop
			e.string("tags")
			e.byte(byte(KindList))
			e.uvarint(1 << 40)
		}},
	}
	var before, after runtime.MemStats
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := v1Stream(t, tc.body)
			runtime.GC()
			runtime.ReadMemStats(&before)
			g, err := Load(bytes.NewReader(data))
			runtime.ReadMemStats(&after)
			if err == nil {
				t.Fatalf("accepted (%d nodes)", g.NumNodes())
			}
			// The lying prefix claims exabytes; a bounded decoder allocates
			// a tiny fraction of that while failing.
			if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
				t.Fatalf("rejecting corrupt input allocated %d MiB", grew>>20)
			}
		})
	}
}

func TestLoadGarbageHeaders(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{0x00},
		[]byte("IY"),
		[]byte("IYPG"),                // magic, nothing else
		[]byte("IYPG\x03"),            // future version
		[]byte("NOPE not a snapshot"), // wrong magic entirely
		{0x1f, 0x8b},                  // bare gzip magic
		append([]byte{0x1f, 0x8b}, bytes.Repeat([]byte{0xAA}, 64)...),
	} {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Fatalf("garbage header %q accepted", data)
		}
	}
}
