package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the graph contents, the information `iyp-report
// inventory` prints and tests assert on.
type Stats struct {
	Nodes     int
	Rels      int
	ByLabel   map[string]int
	ByRelType map[string]int
}

// Stats computes a summary of the graph.
func (g *Graph) Stats() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := Stats{
		Nodes:     g.nodeCount,
		Rels:      g.relCount,
		ByLabel:   make(map[string]int, len(g.labelNames)),
		ByRelType: make(map[string]int, len(g.typeNames)),
	}
	for lid, set := range g.labelIdx {
		if len(set) > 0 {
			s.ByLabel[g.labelNames[lid]] = len(set)
		}
	}
	for _, r := range g.rels {
		if r == nil {
			continue
		}
		s.ByRelType[g.typeNames[r.typ]]++
	}
	return s
}

// String renders the stats as an aligned text table.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes: %d  relationships: %d\n", s.Nodes, s.Rels)
	sb.WriteString("node labels:\n")
	for _, k := range sortedKeys(s.ByLabel) {
		fmt.Fprintf(&sb, "  %-28s %d\n", k, s.ByLabel[k])
	}
	sb.WriteString("relationship types:\n")
	for _, k := range sortedKeys(s.ByRelType) {
		fmt.Fprintf(&sb, "  %-28s %d\n", k, s.ByRelType[k])
	}
	return sb.String()
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
