package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the graph contents, the information `iyp-report
// inventory` prints and tests assert on.
type Stats struct {
	Nodes     int
	Rels      int
	ByLabel   map[string]int
	ByRelType map[string]int
}

// Stats computes a summary of the graph.
func (g *Graph) Stats() Stats {
	g.rlock()
	defer g.runlock()
	s := Stats{
		Nodes:     g.nodeCount,
		Rels:      g.relCount,
		ByLabel:   make(map[string]int, len(g.labelNames)),
		ByRelType: make(map[string]int, len(g.typeNames)),
	}
	for lid, set := range g.labelIdx {
		if set != nil && set.n > 0 {
			s.ByLabel[g.labelNames[lid]] = set.n
		}
	}
	for tid, c := range g.typeCounts {
		if c > 0 {
			s.ByRelType[g.typeNames[tid]] = c
		}
	}
	return s
}

// --- planner statistics ---
//
// The Cypher planner chooses a MATCH anchor by comparing the estimated
// candidate count of each pattern node. These accessors expose the
// incrementally-maintained counters (see store.go) plus distinct-value
// counts read straight off the hash indexes, so every estimate is O(1).

// PropStats describes the population of one (label, property-key) pair for
// cardinality estimation.
type PropStats struct {
	// WithKey is the number of live nodes carrying the label that have
	// the property key set at all.
	WithKey int
	// Distinct is the number of distinct values the (label,key) hash
	// index currently holds. Zero when Indexed is false.
	Distinct int
	// Indexed reports whether a (label,key) index exists, i.e. whether
	// an equality lookup can avoid a scan.
	Indexed bool
}

// Selectivity estimates how many nodes an equality predicate on this
// (label,key) pair matches: WithKey spread uniformly over Distinct values.
// Without an index (no distinct-value count) it conservatively returns
// WithKey.
func (ps PropStats) Selectivity() float64 {
	if ps.Distinct <= 0 {
		return float64(ps.WithKey)
	}
	return float64(ps.WithKey) / float64(ps.Distinct)
}

// PropCardinality returns the statistics for (label, key).
func (g *Graph) PropCardinality(label, key string) PropStats {
	g.rlock()
	defer g.runlock()
	lid, ok := g.labelIDs[label]
	if !ok {
		return PropStats{}
	}
	keyID, ok := g.dict.lookupStr(key)
	if !ok {
		return PropStats{}
	}
	pid := propIdxID{lid, keyID}
	ps := PropStats{WithKey: g.labelKeyCount[pid]}
	if idx, ok := g.propIdx[pid]; ok {
		ps.Indexed = true
		ps.Distinct = len(idx.buckets)
	}
	return ps
}

// RelTypeCardinality returns the number of live relationships of typ.
func (g *Graph) RelTypeCardinality(typ string) int {
	g.rlock()
	defer g.runlock()
	tid, ok := g.typeIDs[typ]
	if !ok {
		return 0
	}
	return g.typeCounts[tid]
}

// RelTypeDegree returns the mean number of typ relationships per live node
// — the expansion fan-out estimate for a one-hop pattern edge. Zero for an
// empty graph or unknown type.
func (g *Graph) RelTypeDegree(typ string) float64 {
	g.rlock()
	defer g.runlock()
	tid, ok := g.typeIDs[typ]
	if !ok || g.nodeCount == 0 {
		return 0
	}
	return float64(g.typeCounts[tid]) / float64(g.nodeCount)
}

// rebuildStatsLocked recomputes typeCounts and labelKeyCount in one pass.
// The snapshot loaders build nodes and relationships directly (bypassing
// the locked mutation helpers that maintain the counters incrementally),
// so they call this once after decoding, mirroring rebuildLabelIndex.
func (g *Graph) rebuildStatsLocked() {
	g.typeCounts = make([]int, len(g.typeNames))
	for _, r := range g.rels {
		if r != nil {
			g.typeCounts[r.typ]++
		}
	}
	g.labelKeyCount = make(map[propIdxID]int)
	for _, n := range g.nodes {
		if n == nil {
			continue
		}
		for _, lid := range g.lsets[n.lset] {
			for _, e := range n.cprops {
				g.labelKeyCount[propIdxID{lid, e.key}]++
			}
		}
	}
}

// String renders the stats as an aligned text table.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes: %d  relationships: %d\n", s.Nodes, s.Rels)
	sb.WriteString("node labels:\n")
	for _, k := range sortedKeys(s.ByLabel) {
		fmt.Fprintf(&sb, "  %-28s %d\n", k, s.ByLabel[k])
	}
	sb.WriteString("relationship types:\n")
	for _, k := range sortedKeys(s.ByRelType) {
		fmt.Fprintf(&sb, "  %-28s %d\n", k, s.ByRelType[k])
	}
	return sb.String()
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
