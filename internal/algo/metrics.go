package algo

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Per-kernel serving metrics, rendered into the server's GET /metrics
// alongside the query counters: how often each kernel ran, how many rows
// it produced, wall time, and view build/cache behaviour. Everything is
// lock-free atomics so instrumentation costs nothing next to the kernels.

type kernelStat struct {
	runs atomic.Uint64
	rows atomic.Uint64
	ns   atomic.Uint64
}

// kernelNames fixes the exposition order.
var kernelNames = []string{"bfs", "wcc", "scc", "degree", "pagerank", "harmonic", "dependency"}

var metrics struct {
	kernels    map[string]*kernelStat
	viewBuilds atomic.Uint64
	viewNS     atomic.Uint64
	viewHits   atomic.Uint64
	viewMisses atomic.Uint64
}

func init() {
	metrics.kernels = make(map[string]*kernelStat, len(kernelNames))
	for _, k := range kernelNames {
		metrics.kernels[k] = &kernelStat{}
	}
}

// observeKernel records one kernel run.
func observeKernel(name string, rows int, d time.Duration) {
	s := metrics.kernels[name]
	if s == nil {
		return
	}
	s.runs.Add(1)
	s.rows.Add(uint64(rows))
	s.ns.Add(uint64(d.Nanoseconds()))
}

func observeViewBuild(v *View) {
	metrics.viewBuilds.Add(1)
	metrics.viewNS.Add(uint64(v.BuildTime.Nanoseconds()))
}

// KernelStat is a point-in-time snapshot of one kernel's counters.
type KernelStat struct {
	Kernel  string
	Runs    uint64
	Rows    uint64
	Seconds float64
}

// Snapshot returns per-kernel counters in exposition order.
func Snapshot() []KernelStat {
	out := make([]KernelStat, 0, len(kernelNames))
	for _, k := range kernelNames {
		s := metrics.kernels[k]
		out = append(out, KernelStat{
			Kernel:  k,
			Runs:    s.runs.Load(),
			Rows:    s.rows.Load(),
			Seconds: float64(s.ns.Load()) / 1e9,
		})
	}
	return out
}

// WriteProm renders the kernel and view metrics in the Prometheus text
// exposition format.
func WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP iyp_algo_kernel_runs_total Kernel executions.\n# TYPE iyp_algo_kernel_runs_total counter\n")
	for _, s := range Snapshot() {
		fmt.Fprintf(w, "iyp_algo_kernel_runs_total{kernel=%q} %d\n", s.Kernel, s.Runs)
	}
	fmt.Fprintf(w, "# HELP iyp_algo_kernel_rows_total Rows produced by kernels.\n# TYPE iyp_algo_kernel_rows_total counter\n")
	for _, s := range Snapshot() {
		fmt.Fprintf(w, "iyp_algo_kernel_rows_total{kernel=%q} %d\n", s.Kernel, s.Rows)
	}
	fmt.Fprintf(w, "# HELP iyp_algo_kernel_seconds_total Kernel wall time.\n# TYPE iyp_algo_kernel_seconds_total counter\n")
	for _, s := range Snapshot() {
		fmt.Fprintf(w, "iyp_algo_kernel_seconds_total{kernel=%q} %g\n", s.Kernel, s.Seconds)
	}
	fmt.Fprintf(w, "# HELP iyp_algo_view_builds_total CSR view compilations.\n# TYPE iyp_algo_view_builds_total counter\niyp_algo_view_builds_total %d\n", metrics.viewBuilds.Load())
	fmt.Fprintf(w, "# HELP iyp_algo_view_build_seconds_total Time spent compiling views.\n# TYPE iyp_algo_view_build_seconds_total counter\niyp_algo_view_build_seconds_total %g\n", float64(metrics.viewNS.Load())/1e9)
	fmt.Fprintf(w, "# HELP iyp_algo_view_cache_hits_total View cache hits.\n# TYPE iyp_algo_view_cache_hits_total counter\niyp_algo_view_cache_hits_total %d\n", metrics.viewHits.Load())
	fmt.Fprintf(w, "# HELP iyp_algo_view_cache_misses_total View cache misses.\n# TYPE iyp_algo_view_cache_misses_total counter\niyp_algo_view_cache_misses_total %d\n", metrics.viewMisses.Load())
}
